// Interactive steering: the accuracy an exploratory analysis needs
// becomes clear only during post-processing. The session starts with a
// loose guarantee (fast steps); when the scientist spots a feature worth
// resolving, the bound is tightened at runtime with Session.SetBound and
// Tango retrieves the extra augmentations — still adapting to the
// interference and still weight-assisted.
package main

import (
	"fmt"
	"log"

	"tango"
)

func main() {
	app := tango.XGCApp()
	field := app.Generate(513, 42)
	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: tango.LevelsForRatio(16, 2, 2),
		Bounds: []float64{1e-1, 1e-2, 1e-3},
	})
	if err != nil {
		log.Fatal(err)
	}

	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	tango.LaunchTableIVNoise(node, hdd, 6)
	scale := 2048.0 * 1024 * 1024 / float64(h.BaseBytes()+h.TotalAugBytes())
	store, err := tango.StageScaled(h, node.Tiers(), scale)
	if err != nil {
		log.Fatal(err)
	}

	sess, err := tango.NewSession("explorer", store, tango.SessionConfig{
		Policy:       tango.CrossLayer,
		ErrorControl: true,
		Bound:        1e-1, // start loose: quick look
		Priority:     tango.PriorityHigh,
		Steps:        30,
		// Refit quickly so adaptation engages within this short demo.
		Window:     8,
		RefitEvery: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		log.Fatal(err)
	}

	// At t=600 s the scientist spots blob activity and tightens to 1e-2;
	// at t=1200 s they zoom in further to 1e-3.
	node.Engine().After(600, func() {
		fmt.Println(">>> t=600s: tightening bound to 1e-2")
		if err := sess.SetBound(1e-2); err != nil {
			log.Fatal(err)
		}
	})
	node.Engine().After(1200, func() {
		fmt.Println(">>> t=1200s: tightening bound to 1e-3")
		if err := sess.SetBound(1e-3); err != nil {
			log.Fatal(err)
		}
	})
	if err := node.Engine().Run(30*60 + 3600); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%5s %9s %10s %12s %14s\n", "step", "t(s)", "io(s)", "DoF%", "outcome err")
	cache := map[int]float64{}
	for _, st := range sess.Stats() {
		if st.Step%3 != 0 {
			continue
		}
		oe, ok := cache[st.Cursor]
		if !ok {
			oe = app.OutcomeErr(field, h.Recompose(st.Cursor))
			cache[st.Cursor] = oe
		}
		fmt.Printf("%5d %9.0f %10.3f %11.1f%% %14.4f\n",
			st.Step, st.Start, st.IOTime, 100*h.DoFFraction(st.Cursor), oe)
	}
	fmt.Println("\nthe bound tightens mid-run without restarting the container, the weight")
	fmt.Println("function keeps pricing each bucket, and the error guarantee holds throughout.")
}
