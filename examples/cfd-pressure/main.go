// CFD pressure analysis with differentiated priorities: run the same
// high-pressure area/force analysis at priority 1 (offline batch), 5, and
// 10 (interactive) and show how the storage layer's weight function turns
// priority into lower retrieval latency for the accuracy level that
// matters first.
package main

import (
	"fmt"
	"log"

	"tango"
)

func main() {
	app := tango.CFDApp()
	field := app.Generate(513, 11)

	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: tango.LevelsForRatio(16, 2, 2),
		Bounds: []float64{1e-1, 1e-2, 1e-3},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CFD high-pressure analysis under interference, by priority:")
	fmt.Printf("  %-10s %-14s %-16s\n", "priority", "mean I/O (s)", "I/O std (s)")
	for _, p := range []float64{tango.PriorityLow, tango.PriorityMedium, tango.PriorityHigh} {
		node := tango.NewNode("node0")
		node.MustAddDevice(tango.SSD("ssd"))
		hdd := node.MustAddDevice(tango.HDD("hdd"))
		tango.LaunchTableIVNoise(node, hdd, 6)
		scale := 2048.0 * 1024 * 1024 / float64(h.BaseBytes()+h.TotalAugBytes())
		store, err := tango.StageScaled(h, node.Tiers(), scale)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := tango.NewSession("cfd", store, tango.SessionConfig{
			Policy:       tango.CrossLayer,
			ErrorControl: true,
			Bound:        0.01,
			Priority:     p,
			Steps:        60,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.Launch(node); err != nil {
			log.Fatal(err)
		}
		if err := node.Engine().Run(60*60 + 3600); err != nil {
			log.Fatal(err)
		}
		sum := sess.Summary(30)
		fmt.Printf("  %-10g %-14.3f %-16.3f\n", p, sum.MeanIO, sum.StdIO)
	}

	// What does the analysis actually report at the prescribed bound?
	ref := h.Recompose(h.TotalEntries())
	cur, err := h.CursorForBound(0.01)
	if err != nil {
		log.Fatal(err)
	}
	rec := h.Recompose(cur)
	fmt.Printf("\noutcome error at the prescribed bound (0.01): %.4f\n", app.OutcomeErr(ref, rec))
	fmt.Println("higher priority buys lower latency under the same error guarantee.")
}
