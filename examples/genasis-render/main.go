// GenASiS rendering quality: decompose the core-collapse velocity field,
// then measure SSIM and Dice of renderings recomposed at each accuracy
// level — the paper's data-quality measures for GenASiS.
package main

import (
	"fmt"
	"log"

	"tango"
	"tango/internal/analytics"
)

func main() {
	field := tango.GenASiSApp().Generate(513, 7)

	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: tango.LevelsForRatio(64, 2, 2),
		Bounds: []float64{1e-1, 1e-2, 1e-3, 1e-4},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rendering quality vs retrieved accuracy (SSIM / Dice of shock-interior mask):")
	fmt.Printf("  %-12s %-8s %-8s %-8s\n", "accuracy", "DoF%", "SSIM", "Dice")

	report := func(label string, cursor int) {
		q := analytics.CompareRenders(field, h.Recompose(cursor))
		fmt.Printf("  %-12s %-8.1f %-8.4f %-8.4f\n",
			label, 100*h.DoFFraction(cursor), q.SSIM, q.Dice)
	}
	report("base only", 0)
	for _, r := range h.Rungs() {
		report(fmt.Sprintf("eps=%g", r.Bound), r.Cursor)
	}
	report("full", h.TotalEntries())

	fmt.Println("\neven the base representation preserves the shock structure well enough")
	fmt.Println("for visualization (Motivation 3), while tight bounds recover it exactly.")
}
