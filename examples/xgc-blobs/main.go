// XGC blob detection over refactored data: shows how the analysis
// outcome (blob count, average diameter) degrades across the error-bound
// ladder, and runs the detection pipeline live under interference with
// error control at NRMSE 0.01.
package main

import (
	"fmt"
	"log"

	"tango"
)

func main() {
	app := tango.XGCApp()
	field := app.Generate(513, 42)

	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: tango.LevelsForRatio(16, 2, 2),
		Bounds: []float64{1e-1, 1e-2, 1e-3},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Outcome quality along the ladder.
	fmt.Println("accuracy ladder vs blob-detection outcome:")
	fmt.Printf("  %-12s %-10s %-12s\n", "bound", "DoF%", "outcome err")
	fmt.Printf("  %-12s %-10.1f %-12.4f\n", "base only", 100*h.DoFFraction(0),
		app.OutcomeErr(field, h.Recompose(0)))
	for _, r := range h.Rungs() {
		rec := h.Recompose(r.Cursor)
		fmt.Printf("  %-12g %-10.1f %-12.4f\n", r.Bound, 100*h.DoFFraction(r.Cursor),
			app.OutcomeErr(field, rec))
	}

	// Live session under the full Table IV interference set.
	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	tango.LaunchTableIVNoise(node, hdd, 6)
	scale := 2048.0 * 1024 * 1024 / float64(h.BaseBytes()+h.TotalAugBytes())
	store, err := tango.StageScaled(h, node.Tiers(), scale)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := tango.NewSession("xgc", store, tango.SessionConfig{
		Policy:       tango.CrossLayer,
		ErrorControl: true,
		Bound:        0.01,
		Priority:     tango.PriorityHigh,
		Steps:        45,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		log.Fatal(err)
	}
	if err := node.Engine().Run(45*60 + 3600); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nlive steps (every 5th) with per-step outcome error:")
	cache := map[int]float64{}
	for _, st := range sess.Stats() {
		if st.Step%5 != 0 {
			continue
		}
		outErr, ok := cache[st.Cursor]
		if !ok {
			outErr = app.OutcomeErr(field, h.Recompose(st.Cursor))
			cache[st.Cursor] = outErr
		}
		fmt.Printf("  step %2d: io=%6.2fs  retrieved %5.1f%% DoF  outcome err %.4f\n",
			st.Step, st.IOTime, 100*h.DoFFraction(st.Cursor), outErr)
	}
	sum := sess.Summary(30)
	fmt.Printf("\nmean I/O %.2fs over the measured window; NRMSE bound 0.01 held on every step\n", sum.MeanIO)
}
