// Custom scenario construction through the lower-level building blocks:
// a three-tier node (NVMe + SSD + HDD), throttled background containers,
// a custom augmentation-bandwidth plot, and a hand-rolled adaptive reader
// built directly on the substrate (no core.Session) — for users who want
// their own control loop.
package main

import (
	"fmt"
	"log"

	"tango"
	"tango/internal/abplot"
	"tango/internal/dftestim"
	"tango/internal/sim"
)

func main() {
	field := tango.GenASiSApp().Generate(257, 3)
	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: 4,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		log.Fatal(err)
	}

	node := tango.NewNode("node0")
	node.MustAddDevice(tango.NVMe("nvme"))
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))

	// Background: one Table IV interferer plus a throttled batch job —
	// cgroup throttles compose with proportional weights.
	tango.LaunchTableIVNoise(node, hdd, 1)
	batch := tango.LaunchNoise(node, hdd, tango.Noise{
		Name: "batch", Period: 90, CheckpointBytes: 2048 * tango.MB, Seed: 5,
	})
	batch.Cgroup().SetWriteBpsLimit(40 * tango.MB) // cap the batch job

	store, err := tango.StageScaled(h, node.Tiers(), 4096)
	if err != nil {
		log.Fatal(err)
	}

	// A custom control loop: tighter abplot window than the paper's, and
	// weight chosen directly instead of via the calibrated function.
	plot := abplot.Plot{BWLow: 50 * tango.MB, BWHigh: 100 * tango.MB}
	est := dftestim.NewEstimator()
	est.Window = 8

	var ioTimes []float64
	node.MustLaunch("custom-analytics", func(c *tango.Container, p *sim.Proc) {
		for step := 0; step < 24; step++ {
			start := p.Now()
			// Always fetch the base (NVMe) and the mandatory 0.1 rung.
			store.ReadBase(p, c.Cgroup())
			must, _ := h.CursorForBound(0.1)
			cursor := must
			if est.Ready() {
				degree := plot.Degree(est.Predict(step))
				if dyn := h.CursorForFraction(degree); dyn > cursor {
					cursor = dyn
				}
			} else {
				cursor = h.TotalEntries()
			}
			// Fixed aggressive weight while reading, default otherwise.
			c.SetWeight(800)
			ts := store.ReadRange(p, c.Cgroup(), 0, cursor)
			c.SetWeight(100)
			pt := store.Probe(p, c.Cgroup(), 4*tango.MB)
			pb, ptt := pt.Total()
			est.Observe(pb / ptt)
			if (step+1)%8 == 0 {
				if err := est.Fit(); err != nil {
					panic(err)
				}
			}
			_, tAug := ts.Total()
			ioTimes = append(ioTimes, p.Now()-start)
			_ = tAug
			if wait := 60 - (p.Now() - start); wait > 0 {
				p.Sleep(wait)
			}
		}
	})
	if err := node.Engine().Run(24*60 + 3600); err != nil {
		log.Fatal(err)
	}

	var sum float64
	for _, t := range ioTimes {
		sum += t
	}
	fmt.Printf("custom three-tier adaptive reader: %d steps, mean I/O %.2fs\n",
		len(ioTimes), sum/float64(len(ioTimes)))
	fmt.Println("built from: abplot.Plot + dftestim.Estimator + staging.Store + cgroup weights")
}
