// Quickstart: refactor a dataset, stage it on a simulated two-tier node
// shared with checkpointing containers, and compare Tango's cross-layer
// policy against conventional (non-adaptive) access.
package main

import (
	"fmt"
	"log"
	"math"

	"tango"
)

func main() {
	// 1. Some analysis data: a 257x257 smooth field with detail.
	const n = 257
	data := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			data[r*n+c] = math.Sin(8*math.Pi*float64(r)/n)*math.Cos(6*math.Pi*float64(c)/n) +
				0.2*math.Sin(40*math.Pi*float64(c)/n)
		}
	}

	// 2. Error-bounded refactorization: base + magnitude-ordered
	//    augmentations, bucketed for NRMSE bounds 0.1 and 0.01.
	h, err := tango.Decompose(data, []int{n, n}, tango.RefactorOptions{
		Levels: 3,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed %d points -> base %d points + %d augmentation entries\n",
		n*n, h.Base().Len(), h.TotalEntries())
	for _, r := range h.Rungs() {
		fmt.Printf("  eps=%-5g needs %.1f%% of the degrees of freedom\n",
			r.Bound, 100*h.DoFFraction(r.Cursor))
	}

	// 3. Run the same analysis under two policies on identical nodes.
	run := func(policy tango.Policy) tango.Summary {
		node := tango.NewNode("node0")
		node.MustAddDevice(tango.SSD("ssd"))
		hdd := node.MustAddDevice(tango.HDD("hdd"))
		tango.LaunchTableIVNoise(node, hdd, 6) // Table IV interference

		// Stage at a payload scale that makes the dataset 2 GB on disk.
		scale := 2048.0 * 1024 * 1024 / float64(h.BaseBytes()+h.TotalAugBytes())
		store, err := tango.StageScaled(h, node.Tiers(), scale)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := tango.NewSession("analytics", store, tango.SessionConfig{
			Policy:       policy,
			ErrorControl: true,
			Bound:        0.01,
			Priority:     tango.PriorityHigh,
			Steps:        60,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.Launch(node); err != nil {
			log.Fatal(err)
		}
		if err := node.Engine().Run(60*60 + 3600); err != nil {
			log.Fatal(err)
		}
		return sess.Summary(30) // skip the estimator warm-up
	}

	conventional := run(tango.NoAdapt)
	cross := run(tango.CrossLayer)

	fmt.Printf("\nconventional access: mean I/O %.2fs (±%.2fs) per step\n",
		conventional.MeanIO, conventional.StdIO)
	fmt.Printf("tango cross-layer:   mean I/O %.2fs (±%.2fs) per step\n",
		cross.MeanIO, cross.StdIO)
	fmt.Printf("improvement:         %.0f%%, while guaranteeing NRMSE <= 0.01\n",
		100*(1-cross.MeanIO/conventional.MeanIO))
}
