package tango_test

import (
	"bytes"
	"math"
	"testing"

	"tango"
	"tango/internal/lint"
)

// TestPublicAPIWorkflow walks the documented end-to-end workflow through
// the facade only.
func TestPublicAPIWorkflow(t *testing.T) {
	app := tango.XGCApp()
	field := app.Generate(129, 3)

	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: 3,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalEntries() == 0 || len(h.Rungs()) != 2 {
		t.Fatalf("hierarchy: %d entries, %d rungs", h.TotalEntries(), len(h.Rungs()))
	}

	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	tango.LaunchTableIVNoise(node, hdd, 3)

	store, err := tango.StageScaled(h, node.Tiers(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tango.NewSession("analytics", store, tango.SessionConfig{
		Policy:       tango.CrossLayer,
		ErrorControl: true,
		Bound:        0.01,
		Priority:     tango.PriorityHigh,
		Steps:        12,
		Window:       5,
		RefitEvery:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(12*60 + 600); err != nil {
		t.Fatal(err)
	}
	sum := sess.Summary(5)
	if sum.Steps != 7 || sum.MeanIO <= 0 {
		t.Fatalf("summary: %+v", sum)
	}

	// Error control holds: every step's reconstruction meets the bound.
	for _, st := range sess.Stats() {
		if acc := h.Achieved(field, st.Cursor); acc > 0.01+1e-12 {
			t.Fatalf("step %d achieved %v > bound", st.Step, acc)
		}
	}
}

func TestDecomposeFromRawSlice(t *testing.T) {
	data := make([]float64, 64*64)
	for i := range data {
		data[i] = math.Sin(float64(i) / 17)
	}
	h, err := tango.Decompose(data, []int{64, 64}, tango.RefactorOptions{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := h.Recompose(h.TotalEntries())
	orig := tango.TensorFromData(data, 64, 64)
	if rec.AbsDiffMax(orig) > 1e-12 {
		t.Fatal("round trip failed")
	}
}

func TestHierarchySerializationViaFacade(t *testing.T) {
	field := tango.GenASiSApp().Generate(65, 1)
	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{Levels: 3, Bounds: []float64{0.05}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := tango.DecodeHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.TotalEntries() != h.TotalEntries() {
		t.Fatal("mismatch after decode")
	}
}

func TestAppsViaFacade(t *testing.T) {
	if len(tango.Apps()) != 3 {
		t.Fatal("want 3 apps")
	}
	for _, app := range tango.Apps() {
		f := app.Generate(64, 9)
		if app.OutcomeErr(f, f.Clone()) > 1e-9 {
			t.Fatalf("%s: nonzero self outcome error", app.Name)
		}
	}
}

func TestTableIVNoiseClamped(t *testing.T) {
	if got := len(tango.TableIVNoise()); got != 6 {
		t.Fatalf("noise set = %d", got)
	}
	node := tango.NewNode("n")
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	if got := len(tango.LaunchTableIVNoise(node, hdd, 99)); got != 6 {
		t.Fatalf("launched %d", got)
	}
}

func TestLevelsForRatioFacade(t *testing.T) {
	if tango.LevelsForRatio(16, 2, 2) != 3 {
		t.Fatal("LevelsForRatio")
	}
}

// TestTangolintSelfCheck runs the project's static analyzers (see
// docs/determinism.md) over the repository's own source and requires
// zero findings, so the determinism and lock-discipline invariants hold
// on every `go test ./...` — not only when CI runs tangolint.
func TestTangolintSelfCheck(t *testing.T) {
	findings, err := lint.Run(lint.Options{Root: "."})
	if err != nil {
		t.Fatalf("tangolint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("tangolint found %d finding(s); fix them or add a reasoned //lint:ignore", len(findings))
	}
}

func TestBundleViaFacade(t *testing.T) {
	b, err := tango.DecomposeBundle([]tango.Var{
		{Name: "dpot", Data: tango.XGCApp().Generate(65, 1)},
		{Name: "density", Data: tango.XGCApp().Generate(65, 2)},
	}, tango.RefactorOptions{Levels: 3, Bounds: []float64{0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	recs, err := b.RecomposeAll(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %d", len(recs))
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := tango.DecodeBundle(&buf); err != nil {
		t.Fatal(err)
	}
}
