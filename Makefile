# Tango build/check targets. `make check` is what CI runs
# (.github/workflows/ci.yml); scripts/check.sh is the same sequence for
# environments without make.

GO ?= go

.PHONY: all build vet lint race test check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tangolint: the project's own static-analysis suite (internal/lint).
# See docs/determinism.md for the rules and the //lint:ignore escape
# hatch.
lint:
	$(GO) run ./cmd/tangolint ./...

race:
	$(GO) test -race ./...

test:
	$(GO) test ./...

check: build vet lint race

clean:
	$(GO) clean ./...
