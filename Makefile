# Tango build/check targets. `make check` is what CI runs
# (.github/workflows/ci.yml); scripts/check.sh is the same sequence for
# environments without make.

GO ?= go

.PHONY: all build vet lint lint-json race test check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tangolint: the project's own static-analysis suite (internal/lint).
# See docs/lint.md for the analyzers and the //lint:ignore escape hatch.
lint:
	$(GO) run ./cmd/tangolint ./...

# Machine-readable findings (file/line/analyzer/message/witness) for CI
# artifacts; writes tangolint.json and still fails on findings.
lint-json:
	$(GO) run ./cmd/tangolint -json ./... > tangolint.json

race:
	$(GO) test -race ./...

test:
	$(GO) test ./...

check: build vet lint race

clean:
	$(GO) clean ./...
