#!/bin/sh
# Full verification sequence — the same steps as `make check` and CI
# (.github/workflows/ci.yml), for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo '>> go build ./...'
go build ./...

echo '>> go vet ./...'
go vet ./...

echo '>> tangolint ./...'
go run ./cmd/tangolint ./...

echo '>> go test -race ./...'
go test -race ./...

echo 'check: ok'
