#!/bin/sh
# Diff two tangobench -json suite documents (e.g. the bench-suite.json
# artifacts CI uploads for two commits) and fail on >10% regressions of
# headline metrics. Usage:
#
#	scripts/benchdiff.sh old.json new.json
#	scripts/benchdiff.sh -threshold 5 -all old.json new.json
set -eu

cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
