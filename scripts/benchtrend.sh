#!/bin/sh
# Append one tangobench -json suite document to the append-only
# benchmark trajectory (benchmarks/trajectory.jsonl): one JSON line per
# recorded run, stamped with the commit it was built from and the UTC
# time it was recorded. benchdiff gates a single hop against the
# committed baseline; the trajectory keeps the whole walk, so slow drift
# that never trips the 10% gate is still visible to dashboards and
# bisection. Usage:
#
#	go run ./cmd/tangobench -json -parallel 4 -grid 129 -steps 40 -skip 10 -dataset 512 > bench-suite.json
#	scripts/benchtrend.sh bench-suite.json
set -eu

cd "$(dirname "$0")/.."
suite="${1:?usage: benchtrend.sh <bench-suite.json>}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
mkdir -p benchmarks
# The suite document is machine-generated JSON: newlines in it only ever
# separate tokens (encoded strings cannot contain raw newlines), so
# stripping them folds the document onto one line without touching any
# value.
printf '{"commit":"%s","recorded":"%s","suite":%s}\n' \
	"$commit" "$stamp" "$(tr -d '\n' < "$suite")" >> benchmarks/trajectory.jsonl
echo "benchtrend: recorded suite for $commit in benchmarks/trajectory.jsonl" >&2
