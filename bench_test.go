package tango_test

// One benchmark per table/figure of the paper's evaluation: each
// iteration regenerates the corresponding experiment through the harness
// (at reduced scale so `go test -bench=.` completes in minutes; use
// cmd/tangobench for full-scale tables). Micro-benchmarks for the core
// algorithms follow.

import (
	"fmt"
	"math"
	"testing"

	"tango"
	"tango/internal/blkio"
	"tango/internal/coordinator"
	"tango/internal/device"
	"tango/internal/dftestim"
	"tango/internal/harness"
	"tango/internal/sim"
	"tango/internal/tokenctl"
)

// benchCfg is the reduced-scale configuration for figure benchmarks.
func benchCfg() harness.Config {
	return harness.Config{GridN: 257, Seed: 42, Steps: 45, SkipWarmup: 30, DatasetMB: 2048}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1QoSSurvey(b *testing.B)         { runExperiment(b, "table1") }
func BenchmarkFig01EqualWeights(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig02DecimationAccuracy(b *testing.B) { runExperiment(b, "fig2") }
func BenchmarkFig07DFTEstimation(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig08CrossVsSingle(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig09ErrorControl(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10DataQuality(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkFig11DoFVsBound(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12NoiseScaling(b *testing.B)       { runExperiment(b, "fig12") }
func BenchmarkFig13WeightAblation(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14aPriority(b *testing.B)          { runExperiment(b, "fig14a") }
func BenchmarkFig14bErrorBound(b *testing.B)        { runExperiment(b, "fig14b") }
func BenchmarkFig15WeightTimeline(b *testing.B)     { runExperiment(b, "fig15") }
func BenchmarkFig16WeakScaling(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkHeadlineImprovement(b *testing.B)     { runExperiment(b, "headline") }
func BenchmarkAblationNoSeekThrash(b *testing.B)    { runExperiment(b, "ablation-seek") }
func BenchmarkAblationUnsortedBuckets(b *testing.B) { runExperiment(b, "ablation-sort") }
func BenchmarkAblationParallelReads(b *testing.B)   { runExperiment(b, "ablation-parallel") }
func BenchmarkExtCoexist(b *testing.B)              { runExperiment(b, "coexist") }
func BenchmarkExtRegimeChange(b *testing.B)         { runExperiment(b, "regime") }
func BenchmarkExtThrottleVsTango(b *testing.B)      { runExperiment(b, "throttle") }
func BenchmarkExtRandomNoise(b *testing.B)          { runExperiment(b, "random-noise") }

// BenchmarkExtFleet runs the fleet experiment at a reduced sweep scale
// (2% of the canonical 10→1000-node ladder) so `go test -bench=.` stays
// fast; cmd/tangobench runs it full-scale.
func BenchmarkExtFleet(b *testing.B) {
	e, ok := harness.Lookup("fleet")
	if !ok {
		b.Fatal("fleet experiment not registered")
	}
	cfg := benchCfg()
	cfg.FleetScale = 0.02
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if len(res.Rows) == 0 {
			b.Fatal("fleet produced no rows")
		}
	}
}

// ---- Core algorithm micro-benchmarks --------------------------------------

func benchField(n int) *tango.Tensor {
	t := tango.NewTensor(n, n)
	d := t.Data()
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			d[r*n+c] = math.Sin(8*math.Pi*float64(r)/float64(n)) *
				math.Cos(6*math.Pi*float64(c)/float64(n))
		}
	}
	return t
}

func BenchmarkDecompose257(b *testing.B) {
	f := benchField(257)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tango.DecomposeTensor(f, tango.RefactorOptions{Levels: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeWithLadder257(b *testing.B) {
	f := benchField(257)
	opts := tango.RefactorOptions{Levels: 3, Bounds: []float64{1e-1, 1e-2, 1e-3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tango.DecomposeTensor(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecomposeFull257(b *testing.B) {
	f := benchField(257)
	h, err := tango.DecomposeTensor(f, tango.RefactorOptions{Levels: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Recompose(h.TotalEntries())
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)/7), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dftestim.FFT(x)
	}
}

func BenchmarkEstimatorFitPredict(b *testing.B) {
	est := dftestim.NewEstimator()
	for i := 0; i < 30; i++ {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(i)/10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := est.Fit(); err != nil {
			b.Fatal(err)
		}
		est.Predict(31)
	}
}

func BenchmarkDeviceContention(b *testing.B) {
	// 8 concurrent weighted flows draining on one HDD: measures the
	// fluid-sharing scheduler's event processing.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		d := device.New(eng, device.HDD("hdd"))
		for j := 0; j < 8; j++ {
			cg := blkio.NewCgroup("cg")
			cg.SetWeight(100 + 100*j)
			eng.Spawn("f", func(p *sim.Proc) {
				d.Read(p, cg, 512*device.MB)
			})
		}
		if err := eng.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobDetection(b *testing.B) {
	app := tango.XGCApp()
	f := app.Generate(257, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e := app.OutcomeErr(f, f); e != 0 {
			b.Fatal("self outcome error")
		}
	}
}

func BenchmarkSessionStepCrossLayer(b *testing.B) {
	// Full controller step cost (sim time excluded — this measures the
	// wall-clock of simulating one 45-step session).
	app := tango.XGCApp()
	f := app.Generate(257, 1)
	h, err := tango.DecomposeTensor(f, tango.RefactorOptions{
		Levels: 3, Bounds: []float64{1e-1, 1e-2},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := tango.NewNode("n")
		node.MustAddDevice(tango.SSD("ssd"))
		hdd := node.MustAddDevice(tango.HDD("hdd"))
		tango.LaunchTableIVNoise(node, hdd, 6)
		store, err := tango.StageScaled(h, node.Tiers(), 2048)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := tango.NewSession("a", store, tango.SessionConfig{
			Policy: tango.CrossLayer, Steps: 45,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Launch(node); err != nil {
			b.Fatal(err)
		}
		if err := node.Engine().Run(45*60 + 3600); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtBlobTracking(b *testing.B) { runExperiment(b, "tracking") }

// benchCoordinatorRequest measures one Request/grant cycle on a hot
// session while n other sessions stay attached and active: the
// incremental max-desired tracking must keep the per-op cost flat in n
// (the seed allocator re-scanned and re-granted every session per call).
func benchCoordinatorRequest(b *testing.B, n int) {
	a := coordinator.New()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		if err := a.Attach(name, blkio.NewCgroup(name)); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Request(name, 200+(i%5)*100); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Request("s0", 150+(i%4)*50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordinatorRequest1k(b *testing.B)   { benchCoordinatorRequest(b, 1_000) }
func BenchmarkCoordinatorRequest10k(b *testing.B)  { benchCoordinatorRequest(b, 10_000) }
func BenchmarkCoordinatorRequest100k(b *testing.B) { benchCoordinatorRequest(b, 100_000) }

// BenchmarkTokenTakeBorrow measures the decentralized arm's steady-state
// Request cycle: a mid-window desire escalation that drains the
// session's own bucket and borrows the shortfall from idle peers. The
// whole cycle must stay allocation-free — it runs inside every
// session's control step.
func BenchmarkTokenTakeBorrow(b *testing.B) {
	now := 0.0
	c := tokenctl.New(func() float64 { return now }, tokenctl.Options{})
	var bk *tokenctl.Bucket
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("t%d", i)
		tb, err := c.Attach(name, blkio.NewCgroup(name))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bk = tb // the borrower; the rest stay idle and lendable
		}
	}
	for i := 0; i < 64; i++ { // reach ledger steady state before timing
		now += 7
		c.Request(bk, 300+(i%7)*100)
		c.Request(bk, 1000)
		c.Release(bk)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 7
		c.Request(bk, 300+(i%7)*100)
		c.Request(bk, 1000)
		c.Release(bk)
	}
	b.StopTimer()
	if c.Stats().Borrows == 0 {
		b.Fatal("benchmark never exercised the borrow path")
	}
}
