package tango_test

// Runnable godoc examples for the public API. Each runs as part of the
// test suite (the deterministic simulator makes outputs stable).

import (
	"fmt"
	"math"

	"tango"
)

// ExampleDecompose shows error-bounded refactorization of a raw grid.
func ExampleDecompose() {
	n := 65
	data := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			data[r*n+c] = math.Sin(4 * math.Pi * float64(r*n+c) / float64(n*n))
		}
	}
	h, err := tango.Decompose(data, []int{n, n}, tango.RefactorOptions{
		Levels: 3,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("levels: %d\n", h.Levels())
	fmt.Printf("base points: %d of %d\n", h.Base().Len(), n*n)
	for _, r := range h.Rungs() {
		fmt.Printf("bound %g satisfied: %v\n", r.Bound, r.Achieved <= r.Bound)
	}
	// Output:
	// levels: 3
	// base points: 289 of 4225
	// bound 0.1 satisfied: true
	// bound 0.01 satisfied: true
}

// ExampleHierarchy_Recompose reconstructs at a chosen accuracy.
func ExampleHierarchy_Recompose() {
	data := make([]float64, 33*33)
	for i := range data {
		data[i] = float64(i % 7)
	}
	h, err := tango.Decompose(data, []int{33, 33}, tango.RefactorOptions{Levels: 2})
	if err != nil {
		panic(err)
	}
	full := h.Recompose(h.TotalEntries())
	orig := tango.TensorFromData(data, 33, 33)
	fmt.Printf("lossless at full augmentation: %v\n", full.AbsDiffMax(orig) < 1e-9)
	// Output:
	// lossless at full augmentation: true
}

// ExampleNewNode builds a two-tier node and runs a custom container that
// reads from the capacity tier in virtual time.
func ExampleNewNode() {
	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))

	var elapsed float64
	node.MustLaunch("reader", func(c *tango.Container, p *tango.Proc) {
		elapsed = c.Read(p, hdd, 160*tango.MB)
	})
	if err := node.Engine().RunAll(); err != nil {
		panic(err)
	}
	fmt.Printf("tiers: %d\n", len(node.Tiers()))
	fmt.Printf("read 160 MB in about a second: %v\n", elapsed > 0.9 && elapsed < 1.2)
	// Output:
	// tiers: 2
	// read 160 MB in about a second: true
}

// ExampleLevelsForRatio converts the paper's decimation-ratio axis to a
// level count.
func ExampleLevelsForRatio() {
	fmt.Println(tango.LevelsForRatio(16, 2, 2))
	fmt.Println(tango.LevelsForRatio(8192, 2, 2))
	// Output:
	// 3
	// 8
}
