package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose steady-state cost budget is
// zero heap allocations. The annotation sits in the doc comment:
//
//	//tango:hotpath
//	func (e *Engine) Run() Time { ... }
//
// runHotPath computes everything reachable from annotated functions
// through static calls and interface dispatch (func-value edges are
// excluded: they model "anything of this shape", which would drag the
// entire program into the hot set through generic runners) and flags
// allocation-inducing constructs anywhere in that set, each finding
// carrying the call chain from the nearest annotated root as witness:
//
//   - function literals that escape (stored, passed, returned, spawned);
//   - bound method values (x.M used as a value allocates a closure);
//   - fmt.* calls (interface boxing plus formatting state);
//   - non-constant string concatenation;
//   - map and slice composite literals;
//   - go statements (a new goroutine is never free on a hot path);
//   - interface boxing: passing or converting a concrete non-pointer
//     value into an interface-typed slot;
//   - append through a local slice with no capacity evidence (a 3-arg
//     make or a reslice like buf[:0] assigned to it in the same
//     function). Appends to fields, parameters, and package-level
//     slices pass: those are the freelist/scratch-reuse idiom whose
//     cost amortizes to zero.
//
// Arguments of panic calls are exempt — a panicking path is already
// off the budget. make and new are deliberately not flagged: the
// freelist idiom allocates once at miss time by design; the analyzer
// polices per-event constructs, not pool refills.
const hotpathDirective = "//tango:hotpath"

func runHotPath(prog *Program, cfg *config, report progReportFunc) {
	g := prog.Graph()

	var roots []*FuncNode
	for _, n := range g.Nodes {
		if n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			if strings.HasPrefix(c.Text, hotpathDirective) {
				roots = append(roots, n)
				break
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	reach := g.Reach(roots, func(e Edge) bool {
		return e.Kind == EdgeCall || e.Kind == EdgeIface
	})

	for _, n := range g.sortedNodeSet(reach) {
		if n.Decl.Body == nil {
			continue
		}
		chain := Chain(reach, n)
		path := strings.Join(chain, " → ")
		hp := &hotScan{
			n:     n,
			chain: chain,
			report: func(pos token.Pos, format string, args ...any) {
				args = append(args, path)
				report(pos, chain, format+" [hot path %s]", args...)
			},
		}
		hp.scan()
	}
}

type hotScan struct {
	n      *FuncNode
	chain  []string
	report reportFunc

	panicSpans [][2]token.Pos
	immediate  map[*ast.FuncLit]bool
	capEvid    map[types.Object]bool
}

func (h *hotScan) scan() {
	body := h.n.Decl.Body
	info := h.n.Pkg.Info

	// Pre-passes: panic-argument spans (exempt), immediately-invoked
	// literals (shared budget, descend), and capacity evidence for local
	// slices (make with cap, or a reslice) anywhere in the function.
	h.immediate = map[*ast.FuncLit]bool{}
	h.capEvid = map[types.Object]bool{}
	ast.Inspect(body, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.CallExpr:
			if fl, ok := s.Fun.(*ast.FuncLit); ok {
				h.immediate[fl] = true
			}
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(s.Args) == 1 {
					h.panicSpans = append(h.panicSpans, [2]token.Pos{s.Args[0].Pos(), s.Args[0].End()})
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) || !capacityEvidence(info, rhs) {
					continue
				}
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						h.capEvid[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range s.Values {
				if i >= len(s.Names) || !capacityEvidence(info, v) {
					continue
				}
				if obj := info.ObjectOf(s.Names[i]); obj != nil {
					h.capEvid[obj] = true
				}
			}
		}
		return true
	})

	// Callee heads: distinguish x.M() from x.M-as-value.
	calleeHeads := map[ast.Node]bool{}
	ast.Inspect(body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			calleeHeads[unwrapFun(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(body, func(m ast.Node) bool {
		if m != nil && h.exempt(m.Pos()) {
			return false
		}
		switch e := m.(type) {
		case *ast.FuncLit:
			if h.immediate[e] {
				return true // runs inline; body shares the budget
			}
			h.report(e.Pos(), "escaping function literal allocates a closure per call; hoist it or predeclare the state it captures")
			return false // its body runs in whatever context invokes it
		case *ast.GoStmt:
			h.report(e.Pos(), "go statement spawns a goroutine on the hot path; move the spawn to setup and feed it through a preallocated queue")
			if fl, ok := e.Call.Fun.(*ast.FuncLit); ok {
				h.immediate[fl] = true // already reported the spawn; don't double-report the literal
			}
			return true
		case *ast.CompositeLit:
			t := info.TypeOf(e)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				h.report(e.Pos(), "map literal allocates; hoist the map to a struct field or package scope and reset it in place")
			case *types.Slice:
				h.report(e.Pos(), "slice literal allocates; reuse a preallocated scratch slice")
			}
			return true
		case *ast.BinaryExpr:
			if e.Op != token.ADD {
				return true
			}
			t := info.TypeOf(e)
			if t == nil || !isString(t) {
				return true
			}
			if tv, ok := info.Types[e]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			h.report(e.Pos(), "string concatenation allocates; preformat at setup or write into a reused []byte buffer")
			return true
		case *ast.SelectorExpr:
			if calleeHeads[e] {
				return true
			}
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
				if _, isFn := info.Uses[e.Sel].(*types.Func); isFn {
					h.report(e.Pos(), "bound method value %s allocates a closure; store the receiver and call the method directly", exprText(e))
				}
			}
			return true
		case *ast.CallExpr:
			h.checkCall(e)
			return true
		}
		return true
	})
}

// checkCall flags fmt calls, bare appends, and interface boxing at the
// arguments of one call (or interface conversion).
func (h *hotScan) checkCall(call *ast.CallExpr) {
	info := h.n.Pkg.Info

	// Explicit conversion: T(x) with T an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if boxes(info, call.Args[0]) {
				h.report(call.Pos(), "conversion to %s boxes a %s value (heap-allocates)", tv.Type.String(), info.TypeOf(call.Args[0]).String())
			}
		}
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if path, ok := importedPkgPath(info, sel.X); ok && path == "fmt" {
			h.report(call.Pos(), "fmt.%s allocates (boxing + formatting state); preformat at setup or use strconv.Append* into a reused buffer", sel.Sel.Name)
			return // don't double-flag the boxed variadic args
		}
	}

	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			if id.Name == "append" && len(call.Args) > 0 {
				h.checkAppend(call)
			}
			return
		}
	}

	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... forwards the slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if boxes(info, arg) {
			h.report(arg.Pos(), "passing %s as %s boxes it into an interface (heap-allocates); take a concrete type or pass a pointer",
				info.TypeOf(arg).String(), pt.String())
		}
	}
}

// checkAppend flags append through a local slice variable that has no
// capacity evidence in the function.
func (h *hotScan) checkAppend(call *ast.CallExpr) {
	info := h.n.Pkg.Info
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields / indexed slots: reuse idiom, capacity persists across calls
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if h.capEvid[v] {
		return
	}
	if v.Parent() == h.n.Pkg.Types.Scope() {
		return // package-level scratch
	}
	if isParam(h.n, v) {
		return // caller owns the capacity
	}
	h.report(call.Pos(), "append to %s without capacity evidence (no make(_, n, c) or reslice in this function) grows on the hot path; preallocate or reuse scratch", id.Name)
}

// capacityEvidence reports whether rhs demonstrates slice capacity:
// a three-argument make, or a reslice expression (buf[:0] keeps the
// backing array).
func capacityEvidence(info *types.Info, rhs ast.Expr) bool {
	switch e := rhs.(type) {
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
		return isBuiltin && len(e.Args) == 3
	case *ast.SliceExpr:
		return true
	}
	return false
}

func isParam(n *FuncNode, v *types.Var) bool {
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	if recv := sig.Recv(); recv == v {
		return true
	}
	// Named results count too: the caller sees them, the function may
	// legitimately build them up.
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i) == v {
			return true
		}
	}
	return false
}

// boxes reports whether placing arg into an interface-typed slot heap-
// allocates: its static type is concrete and not pointer-shaped.
func boxes(info *types.Info, arg ast.Expr) bool {
	t := info.TypeOf(arg)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // one pointer word; fits the interface data slot
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (h *hotScan) exempt(pos token.Pos) bool {
	for _, s := range h.panicSpans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}
