package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errDiscardAllowed lists callees whose error return is conventionally
// ignorable: terminal printing (errcheck's default exclusion) and
// writers documented never to fail.
var errDiscardAllowed = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

var errDiscardAllowedRecv = []string{
	"(*strings.Builder).",
	"(*bytes.Buffer).",
	"(*strings.Reader).", // e.g. Seek in tests/tools
	"(hash.Hash).",
}

// runErrDiscard flags expression statements in internal packages that
// call a function returning an error and drop it on the floor. Explicit
// discards (`_ = f()`) and defers are left alone: they are visible
// decisions, not accidents.
func runErrDiscard(p *Package, _ *config, report reportFunc) {
	if !strings.Contains("/"+p.Path+"/", "/internal/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !callReturnsError(p.Info, call) {
				return true
			}
			if name, ok := calleeName(p.Info, call); ok {
				if errDiscardAllowed[name] {
					return true
				}
				for _, prefix := range errDiscardAllowedRecv {
					if strings.HasPrefix(name, prefix) {
						return true
					}
				}
				report(call.Pos(), "error return of %s is silently discarded; handle it or assign to _ explicitly", name)
				return true
			}
			report(call.Pos(), "error return is silently discarded; handle it or assign to _ explicitly")
			return true
		})
	}
}

// callReturnsError reports whether any result of the call is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeName resolves the called function's qualified name, e.g.
// "fmt.Println" or "(*bytes.Buffer).WriteString".
func calleeName(info *types.Info, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn.FullName(), true
	}
	return "", false
}
