package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// runLockOrder lifts the per-function lock-state scan into a global
// lock-acquisition-order graph and reports cycles — the static shape of
// a potential deadlock.
//
// Locks are keyed by *class* (lockdep-style): the named type and field
// that declare the mutex ("core.Session.mu"), or the package and name
// for package-level mutexes. Within each function a source-order walk
// tracks the set of classes held; acquiring class B while holding class
// A adds the edge A → B. Calls transmit acquisitions interprocedurally:
// if g may (transitively) acquire B, then calling g while holding A also
// adds A → B, with the call chain down to the acquiring function kept as
// the witness. Goroutine bodies and escaping closures are walked as
// separate contexts with an empty held set (they do not inherit the
// spawner's locks); `defer mu.Unlock()` keeps the lock held to the end
// of the function, matching execution.
//
// A cycle A → B → … → A means two executions can acquire the same
// classes in opposite orders. Self-edges (acquiring a class while a lock
// of the same class is held) are reported too: they are exactly the
// instance-ordering hazard peer-to-peer designs (token borrowing between
// sessions) must rule out.
func runLockOrder(prog *Program, cfg *config, report progReportFunc) {
	g := prog.Graph()

	lo := &lockOrder{
		prog:    prog,
		g:       g,
		acq:     map[*FuncNode][]localAcq{},
		edges:   map[string]map[string]*orderEdge{},
		classes: []string{},
	}
	for _, n := range g.Nodes {
		if n.Decl.Body != nil {
			lo.collectLocal(n)
		}
	}
	lo.propagate()
	for _, n := range g.Nodes {
		if n.Decl.Body != nil {
			lo.walkHeld(n)
		}
	}
	lo.reportCycles(report)
}

// localAcq is one lock acquisition appearing literally in a function.
type localAcq struct {
	class string
	pos   token.Pos
}

// acqHop records how a function (transitively) acquires a class: either
// locally (next == nil) or through a call to next at via.
type acqHop struct {
	next *FuncNode
	via  token.Pos
	pos  token.Pos // local acquisition position (next == nil)
}

// orderEdge is the first-discovered witness that class `to` is acquired
// while `from` is held.
type orderEdge struct {
	from, to string
	pos      token.Pos // acquisition or call site in holder
	holder   *FuncNode
	chain    []string // call chain from holder's callee to the acquirer (empty when local)
}

type lockOrder struct {
	prog *Program
	g    *CallGraph

	acq map[*FuncNode][]localAcq // literal acquisitions per function

	// mayAcq[class][n] = how n transitively acquires class.
	mayAcq map[string]map[*FuncNode]acqHop

	edges   map[string]map[string]*orderEdge
	classes []string
}

// lockClass resolves the receiver expression of a (R)Lock/(R)Unlock call
// to a lock class, or "" when unclassifiable (local mutex aliases).
func lockClass(p *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// Field access s.mu: class by the receiver's named type.
		if tn := namedTypeDisplay(p.Info.TypeOf(x.X)); tn != "" {
			return tn + "." + x.Sel.Name
		}
		// Package-level var accessed as pkg.mu from outside.
		if path, ok := importedPkgPath(p.Info, x.X); ok {
			if i := strings.LastIndexByte(path, '/'); i >= 0 {
				path = path[i+1:]
			}
			return path + "." + x.Sel.Name
		}
	case *ast.Ident:
		v, ok := p.Info.ObjectOf(x).(*types.Var)
		if !ok {
			return ""
		}
		if !v.IsField() && v.Parent() == p.Types.Scope() {
			return p.Name + "." + x.Name // package-level mutex
		}
		// Receiver (or local) of a lock-embedding named type: s.Lock().
		if tn := namedTypeDisplay(v.Type()); tn != "" {
			return tn
		}
	}
	return ""
}

// namedTypeDisplay renders the named type behind t (through pointers) as
// "pkg.Type", skipping the bare sync primitives (a *sync.Mutex local is
// an alias, not a class).
func namedTypeDisplay(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if obj.Pkg().Path() == "sync" {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// lockOpOf classifies call as a sync.Mutex/RWMutex operation, returning
// the receiver expression, whether it locks (vs unlocks), and ok.
func lockOpOf(p *Package, call *ast.CallExpr) (recv ast.Expr, lock bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, false, false
	}
	full := fn.FullName()
	if !strings.HasPrefix(full, "(*sync.Mutex).") && !strings.HasPrefix(full, "(*sync.RWMutex).") {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return sel.X, true, true
	case "Unlock", "RUnlock":
		return sel.X, false, true
	}
	return nil, false, false
}

func (lo *lockOrder) collectLocal(n *FuncNode) {
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, lock, ok := lockOpOf(n.Pkg, call)
		if !ok || !lock {
			return true
		}
		if class := lockClass(n.Pkg, recv); class != "" {
			lo.acq[n] = append(lo.acq[n], localAcq{class: class, pos: call.Pos()})
		}
		return true
	})
}

// propagate computes mayAcq: for every class, the set of functions that
// may acquire it transitively (following static and interface-dispatch
// edges), with one witness hop each.
func (lo *lockOrder) propagate() {
	lo.mayAcq = map[string]map[*FuncNode]acqHop{}
	rev := map[*FuncNode][]Edge{} // callee -> (caller, pos)
	for _, n := range lo.g.Nodes {
		for _, e := range n.Out {
			if e.Kind != EdgeCall && e.Kind != EdgeIface {
				continue
			}
			rev[e.Callee] = append(rev[e.Callee], Edge{Callee: n, Pos: e.Pos})
		}
	}
	classSet := map[string]bool{}
	for _, n := range lo.g.Nodes {
		for _, a := range lo.acq[n] {
			classSet[a.class] = true
		}
	}
	for c := range classSet {
		lo.classes = append(lo.classes, c)
	}
	sort.Strings(lo.classes)
	for _, class := range lo.classes {
		m := map[*FuncNode]acqHop{}
		var queue []*FuncNode
		for _, n := range lo.g.Nodes {
			for _, a := range lo.acq[n] {
				if a.class == class {
					m[n] = acqHop{pos: a.pos}
					queue = append(queue, n)
					break
				}
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, in := range rev[n] {
				caller := in.Callee
				if _, ok := m[caller]; ok {
					continue
				}
				m[caller] = acqHop{next: n, via: in.Pos}
				queue = append(queue, caller)
			}
		}
		lo.mayAcq[class] = m
	}
}

// heldLock is one currently-held lock during the source-order walk.
type heldLock struct {
	instance string // receiver expression text, for unlock matching
	class    string
}

// walkHeld performs the source-order held-set walk over one function,
// adding order edges. Escaping/goroutine closures are queued as separate
// contexts with an empty held set.
func (lo *lockOrder) walkHeld(n *FuncNode) {
	// Call sites were already resolved by the graph builder; index the
	// call/iface edges by position so the walk can look up callees.
	callees := map[token.Pos][]*FuncNode{}
	for _, e := range n.Out {
		if e.Kind == EdgeCall || e.Kind == EdgeIface {
			callees[e.Pos] = append(callees[e.Pos], e.Callee)
		}
	}

	// Immediately-invoked literals share the caller's held set.
	immediate := map[*ast.FuncLit]bool{}
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if fl, ok := call.Fun.(*ast.FuncLit); ok {
				immediate[fl] = true
			}
		}
		return true
	})

	var contexts []ast.Node
	var walk func(body ast.Node, held *[]heldLock)
	walk = func(body ast.Node, held *[]heldLock) {
		ast.Inspect(body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.DeferStmt:
				if _, lock, ok := lockOpOf(n.Pkg, s.Call); ok && !lock {
					// Deferred unlock: the lock stays held to the end of
					// the function, which the walk models by never
					// popping it. Nothing to do at the defer site.
					return false
				}
				if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
					// A deferred closure runs with whatever is held at
					// exit; treating it as running here is the closest
					// source-order approximation.
					walk(fl.Body, held)
					return false
				}
				lo.callEdges(n, s.Call, callees, *held)
				return false
			case *ast.GoStmt:
				if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
					contexts = append(contexts, fl.Body)
					return false
				}
				// `go f(...)`: f runs without the spawner's locks, but
				// its own acquisition order still matters — it was
				// collected when walking f itself.
				return false
			case *ast.FuncLit:
				if immediate[s] {
					return true // body shares the held set
				}
				contexts = append(contexts, s.Body)
				return false
			case *ast.CallExpr:
				if recv, lock, ok := lockOpOf(n.Pkg, s); ok {
					inst := exprText(recv)
					if lock {
						class := lockClass(n.Pkg, recv)
						if class != "" {
							for _, h := range *held {
								lo.addEdge(h.class, class, s.Pos(), n, nil)
							}
							*held = append(*held, heldLock{instance: inst, class: class})
						}
						return false
					}
					for i := len(*held) - 1; i >= 0; i-- {
						if (*held)[i].instance == inst {
							*held = append((*held)[:i], (*held)[i+1:]...)
							break
						}
					}
					return false
				}
				lo.callEdges(n, s, callees, *held)
				return true
			}
			return true
		})
	}

	var held []heldLock
	walk(n.Decl.Body, &held)
	for len(contexts) > 0 {
		body := contexts[0]
		contexts = contexts[1:]
		var fresh []heldLock
		walk(body, &fresh)
	}
}

// callEdges adds order edges for every class the callees of one call may
// acquire while the given set is held.
func (lo *lockOrder) callEdges(n *FuncNode, call *ast.CallExpr, callees map[token.Pos][]*FuncNode, held []heldLock) {
	if len(held) == 0 {
		return
	}
	for _, callee := range callees[call.Pos()] {
		for _, class := range lo.classes {
			hop, ok := lo.mayAcq[class][callee]
			if !ok {
				continue
			}
			// Witness: the call chain from the callee down to the
			// function that performs the acquisition.
			chain := []string{callee.DisplayName()}
			for hop.next != nil {
				chain = append(chain, hop.next.DisplayName())
				hop = lo.mayAcq[class][hop.next]
			}
			for _, h := range held {
				lo.addEdge(h.class, class, call.Pos(), n, chain)
			}
		}
	}
}

func (lo *lockOrder) addEdge(from, to string, pos token.Pos, holder *FuncNode, chain []string) {
	m := lo.edges[from]
	if m == nil {
		m = map[string]*orderEdge{}
		lo.edges[from] = m
	}
	if _, ok := m[to]; ok {
		return
	}
	m[to] = &orderEdge{from: from, to: to, pos: pos, holder: holder, chain: chain}
}

// reportCycles finds strongly connected components of the class graph
// and reports one finding per cyclic component, with the witness chain
// for every edge on a representative cycle.
func (lo *lockOrder) reportCycles(report progReportFunc) {
	// Node universe: every class that appears on an edge.
	nodeSet := map[string]bool{}
	for from, m := range lo.edges {
		nodeSet[from] = true
		for to := range m {
			nodeSet[to] = true
		}
	}
	var nodes []string
	for c := range nodeSet {
		nodes = append(nodes, c)
	}
	sort.Strings(nodes)

	succ := func(c string) []string {
		m := lo.edges[c]
		out := make([]string, 0, len(m))
		for to := range m {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}

	// Tarjan SCC, deterministic by sorted node order.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, comp := range sccs {
		inComp := map[string]bool{}
		for _, c := range comp {
			inComp[c] = true
		}
		selfLoop := len(comp) == 1 && lo.edges[comp[0]] != nil && lo.edges[comp[0]][comp[0]] != nil
		if len(comp) < 2 && !selfLoop {
			continue
		}
		cycle := lo.findCycle(comp[0], inComp)
		if len(cycle) == 0 {
			continue
		}
		var desc []string
		var witness []string
		for i := 0; i+1 < len(cycle); i++ {
			e := lo.edges[cycle[i]][cycle[i+1]]
			desc = append(desc, fmt.Sprintf("%s → %s", e.from, e.to))
			w := fmt.Sprintf("%s → %s at %s in %s", e.from, e.to, posString(lo.prog.Fset, e.pos), e.holder.DisplayName())
			if len(e.chain) > 0 {
				w += " via " + strings.Join(e.chain, " → ")
			}
			witness = append(witness, w)
		}
		first := lo.edges[cycle[0]][cycle[1]]
		report(first.pos, witness,
			"lock-order cycle (potential deadlock): %s; two executions can acquire these locks in opposite orders — impose a global order or narrow a critical section [%s]",
			strings.Join(desc, ", "), strings.Join(witness, "; "))
	}
}

// findCycle returns a shortest cycle through start within the component,
// as a node list beginning and ending with start.
func (lo *lockOrder) findCycle(start string, inComp map[string]bool) []string {
	// BFS from start back to start.
	type pathNode struct {
		class  string
		parent int
	}
	queue := []pathNode{{class: start, parent: -1}}
	var all []pathNode
	visited := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		all = append(all, cur)
		curIdx := len(all) - 1
		m := lo.edges[cur.class]
		var outs []string
		for to := range m {
			outs = append(outs, to)
		}
		sort.Strings(outs)
		for _, to := range outs {
			if !inComp[to] {
				continue
			}
			if to == start {
				// Reconstruct.
				var rev []string
				rev = append(rev, start)
				for i := curIdx; i >= 0; i = all[i].parent {
					rev = append(rev, all[i].class)
				}
				out := make([]string, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if visited[to] {
				continue
			}
			visited[to] = true
			queue = append(queue, pathNode{class: to, parent: curIdx})
		}
	}
	return nil
}
