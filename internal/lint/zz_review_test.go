package lint

import "testing"

func TestZZReviewEdgeKinds(t *testing.T) {
	pkgs, err := loadFixtureDirs([]FixtureDir{{Dir: "/tmp/fx/a", ImportPath: "fx/a"}})
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(pkgs)
	g := prog.Graph()
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			t.Logf("%s -> %s [%s]", n.DisplayName(), e.Callee.DisplayName(), e.Kind)
		}
	}
	t.Logf("addrTaken check: rebuild")
	b := &graphBuilder{}
	_ = b
}
