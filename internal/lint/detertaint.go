package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// runDeterTaint propagates nondeterminism taint through the whole-program
// call graph. A function is tainted when it (or anything it can reach
// through calls, interface dispatch, stored callbacks, or func values)
// observes a nondeterminism source:
//
//   - the wall clock (time.Now, time.Sleep, …);
//   - global math/rand state;
//   - map iteration order that escapes the loop (see simdeterminism);
//   - a select over two or more channels (runtime picks a ready case
//     pseudo-randomly).
//
// simdeterminism already reports time/rand/map sources *inside* the
// sim-driven packages; detertaint is the interprocedural backstop. It
// reports (a) the frontier edge where a sim-driven function calls or
// captures a tainted function outside the sim-driven set — so a helper
// package cannot smuggle a wall-clock read past the per-package scan —
// and (b) multi-way selects written directly in sim-driven code, which
// the per-package scan does not cover.
func runDeterTaint(prog *Program, cfg *config, report progReportFunc) {
	g := prog.Graph()

	// Local sources per node.
	type srcInfo struct {
		pos      token.Pos
		desc     string
		isSelect bool
	}
	sources := map[*FuncNode][]srcInfo{}
	for _, n := range g.Nodes {
		if n.Decl.Body == nil {
			continue
		}
		var ss []srcInfo
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.CallExpr:
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path, ok := importedPkgPath(info, sel.X)
				if !ok {
					return true
				}
				switch {
				case path == "time" && wallClockFuncs[sel.Sel.Name]:
					ss = append(ss, srcInfo{pos: e.Pos(), desc: "reads the wall clock via time." + sel.Sel.Name})
				case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[sel.Sel.Name]:
					ss = append(ss, srcInfo{pos: e.Pos(), desc: "draws from global math/rand state via rand." + sel.Sel.Name})
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range e.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					ss = append(ss, srcInfo{pos: e.Pos(), desc: "selects across multiple channels (ready-case choice is nondeterministic)", isSelect: true})
				}
			}
			return true
		})
		for _, leak := range mapOrderLeaks(n.Pkg, n.Decl) {
			ss = append(ss, srcInfo{pos: leak.pos, desc: "leaks map iteration order (range over " + leak.mapExpr + ")"})
		}
		if len(ss) > 0 {
			sources[n] = ss
		}
	}

	// Propagate taint backwards: tainted[n] records the next hop towards
	// a source (nil hop = the source is local to n).
	type hop struct {
		next *FuncNode
		via  token.Pos
	}
	tainted := map[*FuncNode]hop{}
	rev := map[*FuncNode][]Edge{} // callee -> incoming edges (Callee field reused as caller)
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			rev[e.Callee] = append(rev[e.Callee], Edge{Callee: n, Pos: e.Pos, Kind: e.Kind})
		}
	}
	var queue []*FuncNode
	for _, n := range g.Nodes {
		if _, ok := sources[n]; ok {
			tainted[n] = hop{}
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, in := range rev[n] {
			caller := in.Callee
			if _, ok := tainted[caller]; ok {
				continue
			}
			tainted[caller] = hop{next: n, via: in.Pos}
			queue = append(queue, caller)
		}
	}

	// chainFrom builds the witness from a tainted node down to its source.
	chainFrom := func(n *FuncNode) (witness []string, srcDesc string, srcPos token.Pos) {
		cur := n
		for {
			witness = append(witness, cur.DisplayName())
			h := tainted[cur]
			if h.next == nil {
				break
			}
			cur = h.next
		}
		s := sources[cur][0]
		return witness, s.desc, s.pos
	}

	for _, n := range g.Nodes {
		if !cfg.simPackages[n.Pkg.Name] {
			continue
		}
		// Multi-way selects directly in sim-driven code.
		for _, s := range sources[n] {
			if s.isSelect {
				report(s.pos, []string{n.DisplayName()},
					"%s in sim-driven package %q; drain channels in a fixed order or add a deterministic arbiter", s.desc, n.Pkg.Name)
			}
		}
		// Frontier edges into tainted functions outside the sim set.
		seen := map[*FuncNode]bool{}
		for _, e := range n.Out {
			c := e.Callee
			if cfg.simPackages[c.Pkg.Name] || seen[c] {
				continue
			}
			if _, ok := tainted[c]; !ok {
				continue
			}
			seen[c] = true
			witness, srcDesc, srcPos := chainFrom(c)
			verb := "call into"
			if e.Kind == EdgeRef {
				verb = "captured reference to"
			}
			report(e.Pos, append([]string{n.DisplayName()}, witness...),
				"%s nondeterministic %s from sim-driven package %q: %s %s (%s); thread virtual time or an explicit seeded generator instead",
				verb, c.DisplayName(), n.Pkg.Name, strings.Join(witness, " → "), srcDesc, posString(prog.Fset, srcPos))
		}
	}
}

// posString renders file:line with the file shortened to its base name.
func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexAny(name, `/\`); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
