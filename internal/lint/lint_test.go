package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches fixture expectations: // want <analyzer> "substr"
var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

type wantLine struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

func parseWants(t *testing.T, dir string) []*wantLine {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantLine
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &wantLine{
					file: path, line: line, analyzer: m[1], substr: m[2],
				})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// TestFixtures runs each analyzer over its seeded-violation corpus and
// checks findings against the inline `// want` expectations, both ways:
// every want must be found, and every finding must be wanted.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer string
	}{
		{"simdet", "simdeterminism"},
		{"locks", "locksafety"},
		{"errs", "errdiscard"},
		{"parfix", "parhygiene"},
		{"lockfix", "lockorder"},
		{"hotfix", "hotpath"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			opts := Options{
				Analyzers: []string{tc.analyzer},
				// The fixtures play the roles of sim-driven and
				// goroutine-spawning packages respectively.
				SimPackages: append(append([]string{}, DefaultSimPackages...), "simdet"),
				ParPackages: append(append([]string{}, DefaultParPackages...), "parfix"),
			}
			findings, pkg, err := CheckFixtureDir(dir, "tango/internal/fixture/"+tc.dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrs) > 0 {
				t.Fatalf("fixture does not type-check: %v", pkg.TypeErrs)
			}
			wants := parseWants(t, dir)
			if len(wants) < 2 {
				t.Fatalf("fixture %s must seed at least 2 violations, has %d", tc.dir, len(wants))
			}
			for _, f := range findings {
				if f.Analyzer != tc.analyzer {
					t.Errorf("unexpected analyzer %q in finding %s", f.Analyzer, f)
				}
			}
			matchWants(t, findings, wants)
		})
	}
}

// matchWants asserts findings against `// want` expectations both ways:
// every want must be found, and every finding must be wanted.
func matchWants(t *testing.T, findings []Finding, wants []*wantLine) {
	t.Helper()
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.line == f.Pos.Line && filepath.Base(w.file) == filepath.Base(f.Pos.Filename) &&
				w.analyzer == f.Analyzer && strings.Contains(f.Message, w.substr) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unwanted finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding at %s:%d matching [%s] %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

// TestDeterTaintFixture loads the tickutil helper and the detfix sim
// package as one program, so the taint chain crosses a package boundary
// exactly the way a real helper package would smuggle a wall-clock read
// past the per-package scan. Every finding must carry a non-empty
// witness chain.
func TestDeterTaintFixture(t *testing.T) {
	dirs := []FixtureDir{
		{Dir: filepath.Join("testdata", "src", "tickutil"), ImportPath: "tango/internal/fixture/tickutil"},
		{Dir: filepath.Join("testdata", "src", "detfix"), ImportPath: "tango/internal/fixture/detfix"},
	}
	opts := Options{
		Analyzers:   []string{"detertaint"},
		SimPackages: append(append([]string{}, DefaultSimPackages...), "detfix"),
	}
	findings, pkgs, err := CheckFixtureProgram(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrs) > 0 {
			t.Fatalf("fixture %s does not type-check: %v", p.Path, p.TypeErrs)
		}
	}
	var wants []*wantLine
	for _, d := range dirs {
		wants = append(wants, parseWants(t, d.Dir)...)
	}
	matchWants(t, findings, wants)
	for _, f := range findings {
		if len(f.Witness) == 0 {
			t.Errorf("detertaint finding without witness: %s", f)
		}
	}
}

// TestHotpathWitness pins the acceptance contract for transitive hotpath
// findings: a violation in a function reached through a call chain must
// name the whole chain from the annotated root.
func TestHotpathWitness(t *testing.T) {
	dir := filepath.Join("testdata", "src", "hotfix")
	findings, _, err := CheckFixtureDir(dir, "tango/internal/fixture/hotfix", Options{Analyzers: []string{"hotpath"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("hotfix fixture produced no findings")
	}
	deep := false
	for _, f := range findings {
		if len(f.Witness) == 0 {
			t.Errorf("hotpath finding without witness: %s", f)
			continue
		}
		if f.Witness[0] != "(*hotfix.Sink).Emit" {
			t.Errorf("witness does not start at the annotated root: %v", f.Witness)
		}
		if len(f.Witness) >= 3 {
			deep = true
		}
	}
	if !deep {
		t.Error("no finding carries a multi-hop call-chain witness (root → … → violating function)")
	}
}

// TestSuppressionRequiresReason checks that a bare //lint:ignore (no
// reason) does NOT suppress, while a reasoned one does. The reasoned
// case is already exercised by the simdet fixture; here the degenerate
// directive is synthesized.
func TestSuppressionRequiresReason(t *testing.T) {
	dir := t.TempDir()
	src := `package simdet

import "time"

func f() int64 {
	//lint:ignore simdeterminism
	return time.Now().UnixNano()
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Analyzers:   []string{"simdeterminism"},
		SimPackages: []string{"simdet"},
	}
	findings, _, err := CheckFixtureDir(dir, "tango/internal/fixture/noreason", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("bare lint:ignore must not suppress; got %d findings, want 1", len(findings))
	}
}

// TestFindingFormat pins the CLI output contract: file:line: [analyzer]
// message.
func TestFindingFormat(t *testing.T) {
	f := Finding{Analyzer: "locksafety", Message: "m"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 12
	if got, want := f.String(), "a/b.go:12: [locksafety] m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestAnalyzerNames guards the documented analyzer set.
func TestAnalyzerNames(t *testing.T) {
	want := []string{
		"simdeterminism", "locksafety", "errdiscard", "parhygiene",
		"detertaint", "lockorder", "hotpath",
	}
	got := AnalyzerNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for _, n := range want {
		if AnalyzerDoc(n) == "" {
			t.Errorf("analyzer %s has no doc", n)
		}
	}
}

// TestRunUnknownAnalyzer checks option validation.
func TestRunUnknownAnalyzer(t *testing.T) {
	_, err := Run(Options{Root: "../..", Analyzers: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
}

// BenchmarkLintRepo measures a full-repo run of every analyzer —
// module load, type check, call-graph construction, and all seven
// analyzers. The whole-repo budget is a few seconds (the CI lint gate
// runs this exact configuration).
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Options{Root: "../.."}); err != nil {
			b.Fatal(err)
		}
	}
}
