package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches fixture expectations: // want <analyzer> "substr"
var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

type wantLine struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

func parseWants(t *testing.T, dir string) []*wantLine {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantLine
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &wantLine{
					file: path, line: line, analyzer: m[1], substr: m[2],
				})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// TestFixtures runs each analyzer over its seeded-violation corpus and
// checks findings against the inline `// want` expectations, both ways:
// every want must be found, and every finding must be wanted.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer string
	}{
		{"simdet", "simdeterminism"},
		{"locks", "locksafety"},
		{"errs", "errdiscard"},
		{"parfix", "parhygiene"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			opts := Options{
				Analyzers: []string{tc.analyzer},
				// The fixtures play the roles of sim-driven and
				// goroutine-spawning packages respectively.
				SimPackages: append(append([]string{}, DefaultSimPackages...), "simdet"),
				ParPackages: append(append([]string{}, DefaultParPackages...), "parfix"),
			}
			findings, pkg, err := CheckFixtureDir(dir, "tango/internal/fixture/"+tc.dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrs) > 0 {
				t.Fatalf("fixture does not type-check: %v", pkg.TypeErrs)
			}
			wants := parseWants(t, dir)
			if len(wants) < 2 {
				t.Fatalf("fixture %s must seed at least 2 violations, has %d", tc.dir, len(wants))
			}
			for _, f := range findings {
				if f.Analyzer != tc.analyzer {
					t.Errorf("unexpected analyzer %q in finding %s", f.Analyzer, f)
					continue
				}
				ok := false
				for _, w := range wants {
					if !w.matched && w.line == f.Pos.Line && filepath.Base(w.file) == filepath.Base(f.Pos.Filename) &&
						w.analyzer == f.Analyzer && strings.Contains(f.Message, w.substr) {
						w.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unwanted finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing finding at %s:%d matching [%s] %q", w.file, w.line, w.analyzer, w.substr)
				}
			}
		})
	}
}

// TestSuppressionRequiresReason checks that a bare //lint:ignore (no
// reason) does NOT suppress, while a reasoned one does. The reasoned
// case is already exercised by the simdet fixture; here the degenerate
// directive is synthesized.
func TestSuppressionRequiresReason(t *testing.T) {
	dir := t.TempDir()
	src := `package simdet

import "time"

func f() int64 {
	//lint:ignore simdeterminism
	return time.Now().UnixNano()
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Analyzers:   []string{"simdeterminism"},
		SimPackages: []string{"simdet"},
	}
	findings, _, err := CheckFixtureDir(dir, "tango/internal/fixture/noreason", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("bare lint:ignore must not suppress; got %d findings, want 1", len(findings))
	}
}

// TestFindingFormat pins the CLI output contract: file:line: [analyzer]
// message.
func TestFindingFormat(t *testing.T) {
	f := Finding{Analyzer: "locksafety", Message: "m"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 12
	if got, want := f.String(), "a/b.go:12: [locksafety] m"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestAnalyzerNames guards the documented analyzer set.
func TestAnalyzerNames(t *testing.T) {
	want := []string{"simdeterminism", "locksafety", "errdiscard", "parhygiene"}
	got := AnalyzerNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for _, n := range want {
		if AnalyzerDoc(n) == "" {
			t.Errorf("analyzer %s has no doc", n)
		}
	}
}

// TestRunUnknownAnalyzer checks option validation.
func TestRunUnknownAnalyzer(t *testing.T) {
	_, err := Run(Options{Root: "../..", Analyzers: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
}
