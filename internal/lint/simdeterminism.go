package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read or wait
// on the wall clock. Pure conversions/constructors (time.Duration,
// time.Unix) are fine: the ban is on *observing real time*, which the
// virtual-clock engine must never do.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand package-level functions that build
// explicit generators — the only allowed way to obtain randomness in
// sim-driven code.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 names, accepted so a future migration stays legal.
	"NewPCG": true, "NewChaCha8": true,
}

// runSimDeterminism enforces the determinism contract in sim-driven
// packages: no wall-clock reads, no global math/rand state, and no map
// iteration order flowing into appended/emitted results without an
// intervening sort.
func runSimDeterminism(p *Package, cfg *config, report reportFunc) {
	if !cfg.simPackages[p.Name] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := importedPkgPath(p.Info, sel.X)
			if !ok {
				return true
			}
			switch {
			case path == "time" && wallClockFuncs[sel.Sel.Name]:
				report(call.Pos(), "wall-clock call time.%s in sim-driven package %q; use the engine's virtual clock", sel.Sel.Name, p.Name)
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[sel.Sel.Name]:
				report(call.Pos(), "global math/rand call rand.%s in sim-driven package %q; thread an explicit *rand.Rand seeded from the config", sel.Sel.Name, p.Name)
			}
			return true
		})
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRangeOrder(p, fd, report)
		}
	}
}

// mapLeak is one range-over-map loop whose iteration order escapes the
// loop. Shared between simdeterminism (which reports it directly in
// sim-driven packages) and detertaint (which treats it as a taint source
// anywhere in the program).
type mapLeak struct {
	pos     token.Pos
	kind    string // "send" or "append"
	mapExpr string
	target  string // appended slice name (append leaks only)
}

// checkMapRangeOrder flags range-over-map loops whose iteration order
// escapes: appends to a slice declared outside the loop, or sends on a
// channel declared outside the loop, with no later sort of that slice in
// the same function. Order-insensitive folds (counting, summing, max)
// pass untouched.
func checkMapRangeOrder(p *Package, fd *ast.FuncDecl, report reportFunc) {
	for _, leak := range mapOrderLeaks(p, fd) {
		switch leak.kind {
		case "send":
			report(leak.pos, "channel send inside range over map %s leaks iteration order; collect and sort first", leak.mapExpr)
		case "append":
			report(leak.pos, "range over map %s appends to %s in iteration order with no later sort; sort keys first or sort %s after the loop", leak.mapExpr, leak.target, leak.target)
		}
	}
}

// mapOrderLeaks collects the order-escaping map ranges of one function.
func mapOrderLeaks(p *Package, fd *ast.FuncDecl) []mapLeak {
	info := p.Info
	var leaks []mapLeak
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// Collect outer-declared slice variables appended to inside the
		// body, and outer-declared channels sent on.
		var escapes []*ast.Ident
		var sendPos token.Pos
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(info, call) || i >= len(s.Lhs) {
						continue
					}
					id, ok := s.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.ObjectOf(id)
					if obj != nil && !nodeContains(rng, obj.Pos()) {
						escapes = append(escapes, id)
					}
				}
			case *ast.SendStmt:
				if id, ok := s.Chan.(*ast.Ident); ok {
					obj := info.ObjectOf(id)
					if obj != nil && !nodeContains(rng, obj.Pos()) {
						sendPos = s.Pos()
					}
				}
			}
			return true
		})
		if sendPos.IsValid() {
			leaks = append(leaks, mapLeak{pos: sendPos, kind: "send", mapExpr: exprText(rng.X)})
		}
		for _, id := range escapes {
			if sortedLater(info, fd, rng, info.ObjectOf(id)) {
				continue
			}
			leaks = append(leaks, mapLeak{pos: rng.Pos(), kind: "append", mapExpr: exprText(rng.X), target: id.Name})
		}
		return true
	})
	return leaks
}

// sortedLater reports whether obj (the appended slice) is passed to a
// sort/slices ordering function after the range statement, anywhere
// later in the function.
func sortedLater(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, ok := importedPkgPath(info, sel.X)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}
