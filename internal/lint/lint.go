// Package lint implements tangolint, the project's static-analysis
// suite. It enforces the cross-cutting correctness rules the simulator's
// results depend on (see docs/determinism.md):
//
//   - simdeterminism: sim-driven packages must not consult wall clocks,
//     global math/rand state, or map iteration order.
//   - locksafety: no copied mutexes, no Lock without an Unlock on every
//     return path, no access to `// guarded by <mu>` fields outside a
//     critical section.
//   - errdiscard: internal packages must not silently drop error returns.
//   - parhygiene: goroutine closures must own their loop variables and
//     must not write shared variables without synchronization.
//
// The implementation uses only the standard library (go/ast, go/parser,
// go/types); go.mod stays dependency-free. Findings can be suppressed
// with an explanatory comment on the offending line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnosis. Witness, set by the interprocedural
// analyzers, is the call-chain (or lock-cycle) evidence trail, outermost
// first; intra-procedural analyzers leave it nil.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Witness  []string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Options configures a lint run.
type Options struct {
	// Root is the module root directory.
	Root string
	// Dirs, when non-empty, restricts *reported* packages to those whose
	// module-relative directory equals or is under one of the entries.
	// All packages are still loaded (imports must type-check).
	Dirs []string
	// Analyzers, when non-empty, restricts which analyzers run.
	Analyzers []string
	// SimPackages overrides the package names subject to simdeterminism.
	SimPackages []string
	// ParPackages overrides the package names subject to parhygiene.
	ParPackages []string
}

// DefaultSimPackages are the sim-driven package names in which
// wall-clock time, global randomness, and map-order dependence are
// forbidden (DESIGN.md: the discrete-event engine and everything it
// schedules must be bit-reproducible for a fixed seed).
var DefaultSimPackages = []string{
	"sim", "device", "core", "coordinator", "harness", "dftestim", "weightfn",
	"fault", "staging", "cache", "resil", "runpool", "refactor", "errmetric",
	"fleet", "objstore", "tokenctl",
}

// DefaultParPackages are the package names parhygiene audits: every
// package that spawns goroutines itself (the engine, the chunked-loop
// and scenario-runner pools, the transform fan-outs) plus the sim-driven
// set those workers call into, and "main" so the cmd binaries stay
// covered.
var DefaultParPackages = []string{
	"sim", "device", "core", "coordinator", "harness", "dftestim", "weightfn",
	"fault", "staging", "cache", "resil", "par", "runpool", "refactor", "trace",
	"workload", "analytics", "lint", "main",
	"fleet", "objstore", "tokenctl",
}

type reportFunc func(pos token.Pos, format string, args ...any)

type analyzer struct {
	name string
	doc  string
	run  func(p *Package, cfg *config, report reportFunc)
}

// progReportFunc reports a whole-program finding with its witness chain.
type progReportFunc func(pos token.Pos, witness []string, format string, args ...any)

// programAnalyzer runs once over the whole loaded program (all packages
// plus the shared call graph), rather than per package.
type programAnalyzer struct {
	name string
	doc  string
	run  func(prog *Program, cfg *config, report progReportFunc)
}

// config is the resolved per-run analyzer configuration.
type config struct {
	simPackages map[string]bool
	parPackages map[string]bool
}

func analyzers() []*analyzer {
	return []*analyzer{
		{
			name: "simdeterminism",
			doc:  "forbid wall-clock time, global math/rand, and map-order-dependent emission in sim-driven packages",
			run:  runSimDeterminism,
		},
		{
			name: "locksafety",
			doc:  "forbid copied mutexes, unbalanced Lock/Unlock, and unguarded access to `// guarded by <mu>` fields",
			run:  runLockSafety,
		},
		{
			name: "errdiscard",
			doc:  "forbid silently discarded error returns in internal packages",
			run:  runErrDiscard,
		},
		{
			name: "parhygiene",
			doc:  "forbid goroutine closures capturing loop variables or writing shared state unsynchronized",
			run:  runParHygiene,
		},
	}
}

// programAnalyzers lists the interprocedural analyzers that run over the
// whole program (see callgraph.go).
func programAnalyzers() []*programAnalyzer {
	return []*programAnalyzer{
		{
			name: "detertaint",
			doc:  "propagate nondeterminism taint (wall clock, global rand, map order, multi-way select) through the call graph into sim-driven packages",
			run:  runDeterTaint,
		},
		{
			name: "lockorder",
			doc:  "report cycles in the global lock-acquisition-order graph (potential deadlocks) with the witness chain",
			run:  runLockOrder,
		},
		{
			name: "hotpath",
			doc:  "forbid allocation-inducing constructs in functions reachable from //tango:hotpath annotations",
			run:  runHotPath,
		},
	}
}

// AnalyzerNames lists the available analyzers.
func AnalyzerNames() []string {
	var names []string
	for _, a := range analyzers() {
		names = append(names, a.name)
	}
	for _, a := range programAnalyzers() {
		names = append(names, a.name)
	}
	return names
}

// AnalyzerDoc returns the one-line documentation for an analyzer name.
func AnalyzerDoc(name string) string {
	for _, a := range analyzers() {
		if a.name == name {
			return a.doc
		}
	}
	for _, a := range programAnalyzers() {
		if a.name == name {
			return a.doc
		}
	}
	return ""
}

func (o *Options) resolved() (*config, []*analyzer, []*programAnalyzer, error) {
	sim := o.SimPackages
	if sim == nil {
		sim = DefaultSimPackages
	}
	par := o.ParPackages
	if par == nil {
		par = DefaultParPackages
	}
	cfg := &config{simPackages: map[string]bool{}, parPackages: map[string]bool{}}
	for _, n := range sim {
		cfg.simPackages[n] = true
	}
	for _, n := range par {
		cfg.parPackages[n] = true
	}
	all := analyzers()
	allProg := programAnalyzers()
	if len(o.Analyzers) == 0 {
		return cfg, all, allProg, nil
	}
	byName := map[string]*analyzer{}
	for _, a := range all {
		byName[a.name] = a
	}
	progByName := map[string]*programAnalyzer{}
	for _, a := range allProg {
		progByName[a.name] = a
	}
	var sel []*analyzer
	var selProg []*programAnalyzer
	for _, n := range o.Analyzers {
		if a, ok := byName[n]; ok {
			sel = append(sel, a)
			continue
		}
		if a, ok := progByName[n]; ok {
			selProg = append(selProg, a)
			continue
		}
		return nil, nil, nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", n, strings.Join(AnalyzerNames(), ", "))
	}
	return cfg, sel, selProg, nil
}

// Run loads the module at opts.Root and applies the analyzers, returning
// unsuppressed findings sorted by position. Per-package analyzers run
// over the selected packages; interprocedural analyzers always see the
// whole program (cross-package evidence), with their findings filtered
// to the selected directories afterwards.
func Run(opts Options) ([]Finding, error) {
	cfg, sel, selProg, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	pkgs, err := loadModule(opts.Root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, p := range pkgs {
		if !dirSelected(p.RelDir, opts.Dirs) {
			continue
		}
		findings = append(findings, analyzePackage(p, cfg, sel)...)
	}
	if len(selProg) > 0 {
		prog := NewProgram(pkgs)
		byDir := map[string]*Package{}
		for _, p := range pkgs {
			byDir[p.Dir] = p
		}
		for _, f := range analyzeProgram(prog, cfg, selProg) {
			if p, ok := byDir[filepath.Dir(f.Pos.Filename)]; ok && !dirSelected(p.RelDir, opts.Dirs) {
				continue
			}
			findings = append(findings, f)
		}
	}
	sortFindings(findings)
	return findings, nil
}

// CheckFixtureDir analyzes one standalone directory as a package with
// the given synthetic import path (fixture corpora live outside the
// module build graph, under testdata/).
func CheckFixtureDir(dir, importPath string, opts Options) ([]Finding, *Package, error) {
	findings, pkgs, err := CheckFixtureProgram([]FixtureDir{{Dir: dir, ImportPath: importPath}}, opts)
	if err != nil {
		return nil, nil, err
	}
	return findings, pkgs[0], nil
}

// FixtureDir names one fixture directory and the synthetic import path it
// is loaded under.
type FixtureDir struct {
	Dir        string
	ImportPath string
}

// CheckFixtureProgram loads several standalone directories as one
// program, in order (later directories may import earlier ones by their
// synthetic paths), and applies both the per-package and the
// interprocedural analyzers. Fixture corpora for the call-graph
// analyzers use this to seed cross-package chains.
func CheckFixtureProgram(dirs []FixtureDir, opts Options) ([]Finding, []*Package, error) {
	cfg, sel, selProg, err := opts.resolved()
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := loadFixtureDirs(dirs)
	if err != nil {
		return nil, nil, err
	}
	var findings []Finding
	for _, p := range pkgs {
		findings = append(findings, analyzePackage(p, cfg, sel)...)
	}
	if len(selProg) > 0 {
		findings = append(findings, analyzeProgram(NewProgram(pkgs), cfg, selProg)...)
	}
	sortFindings(findings)
	return findings, pkgs, nil
}

// analyzeProgram runs the interprocedural analyzers over the whole
// program, applying //lint:ignore suppressions from every package.
func analyzeProgram(prog *Program, cfg *config, sel []*programAnalyzer) []Finding {
	sup := suppressions{}
	for _, p := range prog.Pkgs {
		for file, byLine := range collectSuppressions(p) {
			sup[file] = byLine
		}
	}
	var findings []Finding
	for _, a := range sel {
		a := a
		report := func(pos token.Pos, witness []string, format string, args ...any) {
			position := prog.Fset.Position(pos)
			if sup.suppressed(a.name, position) {
				return
			}
			findings = append(findings, Finding{
				Pos:      position,
				Analyzer: a.name,
				Message:  fmt.Sprintf(format, args...),
				Witness:  witness,
			})
		}
		a.run(prog, cfg, report)
	}
	return findings
}

func dirSelected(relDir string, dirs []string) bool {
	if len(dirs) == 0 {
		return true
	}
	for _, d := range dirs {
		d = filepath.Clean(d)
		if d == "." || relDir == d || strings.HasPrefix(relDir, d+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

func analyzePackage(p *Package, cfg *config, sel []*analyzer) []Finding {
	sup := collectSuppressions(p)
	var findings []Finding
	for _, a := range sel {
		a := a
		report := func(pos token.Pos, format string, args ...any) {
			position := p.Fset.Position(pos)
			if sup.suppressed(a.name, position) {
				return
			}
			findings = append(findings, Finding{
				Pos:      position,
				Analyzer: a.name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		a.run(p, cfg, report)
	}
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppressions maps file -> line -> analyzer names ("*" for all)
// suppressed on that line.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions gathers //lint:ignore directives. A directive
// suppresses matching findings on its own line and on the following
// line, so both trailing and leading comment placement work.
func collectSuppressions(p *Package) suppressions {
	sup := suppressions{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// A reason is mandatory; a bare directive is ignored.
					continue
				}
				name := fields[0]
				pos := p.Fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][name] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	byLine, ok := s[pos.Filename]
	if !ok {
		return false
	}
	names := byLine[pos.Line]
	return names[analyzer] || names["*"]
}

// --- shared AST/type helpers ---

// importedPkgPath reports the import path when e is a package-qualifier
// identifier (e.g. the `time` in time.Now).
func importedPkgPath(info *types.Info, e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// nodeContains reports whether the span of outer contains pos.
func nodeContains(outer ast.Node, pos token.Pos) bool {
	return outer != nil && outer.Pos() <= pos && pos < outer.End()
}

// exprText renders an expression compactly for messages and for keying
// mutexes by their receiver chain (e.g. "a.mu").
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}
