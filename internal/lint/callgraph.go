// Whole-program call graph shared by the interprocedural analyzers
// (detertaint, lockorder, hotpath). Resolution is CHA-style over the
// module's own types, stdlib-only:
//
//   - direct calls and concrete method calls resolve to their single
//     declared target;
//   - interface method calls resolve to every declared method of every
//     project type that implements the interface (class-hierarchy
//     analysis);
//   - references to named functions and bound-method values are recorded
//     as EdgeRef (the referent may be invoked later through the value);
//   - calls through func-typed values resolve to every address-taken
//     project function with a matching signature, restricted to packages
//     the caller's package (transitively) imports — the static shape of
//     "anything that could have been stored in this variable".
//
// Function literals are attributed to their enclosing declared function:
// a closure's call sites, taint sources, and allocation constructs
// belong to the function that created it.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call-graph edge was resolved.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call (including concrete method calls).
	EdgeCall EdgeKind = iota
	// EdgeIface is an interface-dispatch candidate (CHA over project types).
	EdgeIface
	// EdgeFuncVal is a dynamic call through a func-typed value, resolved
	// to address-taken project functions with a matching signature.
	EdgeFuncVal
	// EdgeRef records a function referenced as a value (address taken,
	// passed as a callback, stored in a field) without a visible call.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeIface:
		return "iface"
	case EdgeFuncVal:
		return "funcval"
	case EdgeRef:
		return "ref"
	default:
		return "edge(?)"
	}
}

// Edge is one resolved call (or reference) from a FuncNode.
type Edge struct {
	Callee *FuncNode
	Pos    token.Pos
	Kind   EdgeKind
}

// FuncNode is one declared project function or method.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []Edge
}

// DisplayName renders the node compactly for witness chains:
// "device.New" or "(*device.Device).reshape".
func (n *FuncNode) DisplayName() string {
	full := n.Obj.FullName()
	return shortenPkgPaths(full)
}

// shortenPkgPaths trims every import path in a types.Func full name down
// to its final element, so witnesses stay readable.
func shortenPkgPaths(full string) string {
	var b strings.Builder
	start := -1 // start of a path-like run
	flush := func(end int) {
		if start < 0 {
			return
		}
		seg := full[start:end]
		if i := strings.LastIndexByte(seg, '/'); i >= 0 {
			seg = seg[i+1:]
		}
		b.WriteString(seg)
		start = -1
	}
	for i := 0; i < len(full); i++ {
		c := full[i]
		if c == '(' || c == ')' || c == '*' || c == ' ' || c == ',' {
			flush(i)
			b.WriteByte(c)
			continue
		}
		if start < 0 {
			start = i
		}
	}
	flush(len(full))
	return b.String()
}

// CallGraph is the program-wide graph. Nodes is in deterministic order
// (package load order, then file, then declaration).
type CallGraph struct {
	Nodes []*FuncNode
	ByObj map[*types.Func]*FuncNode
}

// Program is the set of loaded packages presented to whole-program
// analyzers, with the call graph built on demand.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	graph *CallGraph
}

// NewProgram wraps loaded packages. All packages share one FileSet.
func NewProgram(pkgs []*Package) *Program {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	} else {
		fset = token.NewFileSet()
	}
	return &Program{Pkgs: pkgs, Fset: fset}
}

// Graph returns the call graph, building it on first use.
func (prog *Program) Graph() *CallGraph {
	if prog.graph == nil {
		prog.graph = buildCallGraph(prog)
	}
	return prog.graph
}

// --- construction ---

type graphBuilder struct {
	prog  *Program
	g     *CallGraph
	byPkg map[string]*Package // import path -> package

	// importClosure[pkg path] = module-local packages visible from it
	// (transitively imported, plus itself).
	importClosure map[string]map[string]bool

	// addrTaken indexes address-taken functions by normalized signature.
	// The enclosing node of an address-taken function literal is indexed
	// under the literal's signature (the literal is attributed to it).
	addrTaken map[string][]*FuncNode

	// pending dynamic calls awaiting the complete addrTaken index.
	pending []pendingDyn

	// ifaceCands caches CHA candidate lists per (interface, method).
	ifaceCands map[ifaceKey][]*FuncNode

	// namedTypes is every named (non-interface) project type, in
	// deterministic order, for CHA.
	namedTypes []*types.Named
}

type pendingDyn struct {
	caller *FuncNode
	pos    token.Pos
	sig    string
}

type ifaceKey struct {
	iface  *types.Interface
	method string
}

func buildCallGraph(prog *Program) *CallGraph {
	b := &graphBuilder{
		prog:          prog,
		g:             &CallGraph{ByObj: map[*types.Func]*FuncNode{}},
		byPkg:         map[string]*Package{},
		importClosure: map[string]map[string]bool{},
		addrTaken:     map[string][]*FuncNode{},
		ifaceCands:    map[ifaceKey][]*FuncNode{},
	}
	for _, p := range prog.Pkgs {
		b.byPkg[p.Path] = p
	}
	b.collectNodes()
	b.collectNamedTypes()
	b.computeImportClosures()
	for _, n := range b.g.Nodes {
		if n.Decl.Body != nil {
			b.walkBody(n)
		}
	}
	b.resolvePending()
	return b.g
}

func (b *graphBuilder) collectNodes() {
	for _, p := range b.prog.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: p}
				b.g.Nodes = append(b.g.Nodes, n)
				b.g.ByObj[obj] = n
			}
		}
	}
}

func (b *graphBuilder) collectNamedTypes() {
	for _, p := range b.prog.Pkgs {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			b.namedTypes = append(b.namedTypes, named)
		}
	}
}

// computeImportClosures walks the module-local import DAG once per
// package (memoized).
func (b *graphBuilder) computeImportClosures() {
	var visit func(p *Package) map[string]bool
	visit = func(p *Package) map[string]bool {
		if c, ok := b.importClosure[p.Path]; ok {
			return c
		}
		c := map[string]bool{p.Path: true}
		b.importClosure[p.Path] = c // break cycles defensively
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				dep, ok := b.byPkg[ip]
				if !ok {
					continue
				}
				for k := range visit(dep) {
					c[k] = true
				}
			}
		}
		return c
	}
	for _, p := range b.prog.Pkgs {
		visit(p)
	}
}

// sigKey normalizes a signature to parameter/result types only (receiver
// and parameter names excluded), so a bound-method value and a plain
// function with the same shape collide as intended.
func sigKey(sig *types.Signature) string {
	var sb strings.Builder
	if sig.Variadic() {
		sb.WriteByte('v')
	}
	sb.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sig.Params().At(i).Type().String())
	}
	sb.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sig.Results().At(i).Type().String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// walkBody records edges for every call and function reference in n's
// declaration, attributing nested function literals to n.
func (b *graphBuilder) walkBody(n *FuncNode) {
	info := n.Pkg.Info

	// Identify the callee-head identifier of each call so plain walks can
	// distinguish `f()` (call) from `g(f)` (reference).
	calleeHeads := map[ast.Node]bool{}
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		calleeHeads[unwrapFun(call.Fun)] = true
		return true
	})

	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.CallExpr:
			b.addCallEdges(n, e)
		case *ast.FuncLit:
			// Attributed to n; register n as address-taken under the
			// literal's signature so dynamic calls of that shape can
			// reach the closure's body (conservatively, via n).
			if sig, ok := info.TypeOf(e).(*types.Signature); ok && sig != nil {
				b.registerAddrTaken(sigKey(sig), n)
			}
		case *ast.Ident:
			if calleeHeads[e] {
				return true
			}
			if fn, ok := info.Uses[e].(*types.Func); ok {
				b.addRef(n, fn, e.Pos())
			}
		case *ast.SelectorExpr:
			if calleeHeads[e] {
				return true
			}
			// Bound-method value (x.M used as a value) or package-level
			// function reference (pkg.F passed as a callback).
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
				b.addRef(n, fn, e.Pos())
			}
		}
		return true
	})
}

// unwrapFun strips parens and generic instantiation from a call's Fun.
func unwrapFun(e ast.Expr) ast.Node {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

func (b *graphBuilder) addRef(n *FuncNode, fn *types.Func, pos token.Pos) {
	callee, ok := b.g.ByObj[fn]
	if !ok {
		return // external (stdlib) reference
	}
	n.Out = append(n.Out, Edge{Callee: callee, Pos: pos, Kind: EdgeRef})
	b.registerAddrTaken(sigKey(stripRecv(fn)), callee)
}

// stripRecv returns fn's signature without the receiver, the shape it has
// when used as a bound-method value.
func stripRecv(fn *types.Func) *types.Signature {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

func (b *graphBuilder) registerAddrTaken(key string, n *FuncNode) {
	for _, have := range b.addrTaken[key] {
		if have == n {
			return
		}
	}
	b.addrTaken[key] = append(b.addrTaken[key], n)
}

// addCallEdges classifies one call expression.
func (b *graphBuilder) addCallEdges(n *FuncNode, call *ast.CallExpr) {
	info := n.Pkg.Info
	fun := unwrapFun(call.Fun)

	// Type conversions and builtins are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			b.addStatic(n, obj, call.Pos())
			return
		case *types.Builtin, *types.TypeName:
			return
		case nil:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				b.addIfaceEdges(n, sel, f.Sel.Name, call.Pos())
				return
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				b.addStatic(n, fn, call.Pos())
				return
			}
		}
		// Package-qualified function or method expression.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			b.addStatic(n, fn, call.Pos())
			return
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already attributed
		// to n; no edge needed.
		return
	}

	// Dynamic call through a func-typed value.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		b.pending = append(b.pending, pendingDyn{caller: n, pos: call.Pos(), sig: sigKey(sig)})
	}
}

func (b *graphBuilder) addStatic(n *FuncNode, fn *types.Func, pos token.Pos) {
	callee, ok := b.g.ByObj[fn]
	if !ok {
		return // stdlib or generated; analyzers scan external calls locally
	}
	n.Out = append(n.Out, Edge{Callee: callee, Pos: pos, Kind: EdgeCall})
}

// addIfaceEdges adds CHA candidates for an interface method call.
func (b *graphBuilder) addIfaceEdges(n *FuncNode, sel *types.Selection, name string, pos token.Pos) {
	iface, ok := sel.Recv().Underlying().(*types.Interface)
	if !ok {
		return
	}
	key := ifaceKey{iface: iface, method: name}
	cands, cached := b.ifaceCands[key]
	if !cached {
		for _, named := range b.namedTypes {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if node, ok := b.g.ByObj[fn]; ok {
				cands = append(cands, node)
			}
		}
		b.ifaceCands[key] = cands
	}
	for _, c := range cands {
		n.Out = append(n.Out, Edge{Callee: c, Pos: pos, Kind: EdgeIface})
	}
}

// resolvePending resolves recorded dynamic calls against the complete
// address-taken index, restricted to the caller's import closure.
func (b *graphBuilder) resolvePending() {
	for _, pd := range b.pending {
		visible := b.importClosure[pd.caller.Pkg.Path]
		for _, cand := range b.addrTaken[pd.sig] {
			if !visible[cand.Pkg.Path] {
				continue
			}
			pd.caller.Out = append(pd.caller.Out, Edge{Callee: cand, Pos: pd.pos, Kind: EdgeFuncVal})
		}
	}
}

// --- traversal helpers ---

// ReachEntry records how a node was first reached during Reach.
type ReachEntry struct {
	Parent *FuncNode // nil for roots
	Via    token.Pos // call site in Parent
}

// Reach performs a deterministic BFS from roots following edges accepted
// by follow, returning the first-reach parent map (roots map to a
// zero-value entry).
func (g *CallGraph) Reach(roots []*FuncNode, follow func(Edge) bool) map[*FuncNode]ReachEntry {
	seen := map[*FuncNode]ReachEntry{}
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = ReachEntry{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if !follow(e) {
				continue
			}
			if _, ok := seen[e.Callee]; ok {
				continue
			}
			seen[e.Callee] = ReachEntry{Parent: n, Via: e.Pos}
			queue = append(queue, e.Callee)
		}
	}
	return seen
}

// Chain reconstructs the witness path root → … → n from a Reach result,
// as display names.
func Chain(reach map[*FuncNode]ReachEntry, n *FuncNode) []string {
	var rev []*FuncNode
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		entry, ok := reach[cur]
		if !ok {
			break
		}
		cur = entry.Parent
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i].DisplayName())
	}
	return out
}

// sortedNodeSet returns the nodes of set in graph order — analyzers use
// it to iterate deterministically.
func (g *CallGraph) sortedNodeSet(set map[*FuncNode]ReachEntry) []*FuncNode {
	idx := make(map[*FuncNode]int, len(g.Nodes))
	for i, n := range g.Nodes {
		idx[n] = i
	}
	out := make([]*FuncNode, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return idx[out[i]] < idx[out[j]] })
	return out
}
