package lint

import (
	"go/ast"
	"go/types"
)

// runParHygiene inspects `go func() { ... }` closures for the two
// fan-out mistakes that break determinism or race:
//
//  1. capturing a loop-header variable instead of passing it as a
//     parameter or rebinding it in the loop body (explicit per-iteration
//     ownership is required even under Go 1.22 loopvar semantics — it is
//     what makes the disjoint-write argument auditable);
//  2. assigning to a variable declared outside the closure without any
//     lock in the closure body (indexed writes to disjoint slots, the
//     par.For idiom, remain allowed).
func runParHygiene(p *Package, cfg *config, report reportFunc) {
	if !cfg.parPackages[p.Name] {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoClosures(p, fd.Body, report)
		}
	}
}

func checkGoClosures(p *Package, body *ast.BlockStmt, report reportFunc) {
	// First index every loop-header variable object in the function to
	// the loop statement that declares it.
	loopVars := map[types.Object]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						loopVars[obj] = s
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := p.Info.Defs[id]; obj != nil {
							loopVars[obj] = s
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkGoClosure(p, gs, fl, loopVars, report)
		return true
	})
}

func checkGoClosure(p *Package, gs *ast.GoStmt, fl *ast.FuncLit, loopVars map[types.Object]ast.Node, report reportFunc) {
	// Does the closure take a lock? If so, shared writes inside are
	// presumed synchronized and only loop-capture is checked.
	locksInside := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					locksInside = true
				}
			}
		}
		return !locksInside
	})

	reportedCapture := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			obj := p.Info.Uses[e]
			if obj == nil || reportedCapture[obj] {
				return true
			}
			loop, isLoopVar := loopVars[obj]
			// Only loops that *enclose* the go statement matter: a loop
			// inside the closure owns its own variables.
			if isLoopVar && nodeContains(loop, gs.Pos()) && !nodeContains(fl, obj.Pos()) {
				reportedCapture[obj] = true
				report(e.Pos(), "goroutine closure captures loop variable %s; pass it as a parameter or rebind it (`%s := %s`) inside the loop body", e.Name, e.Name, e.Name)
			}
		case *ast.AssignStmt:
			if locksInside {
				return true
			}
			for _, lhs := range e.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Uses[id] // plain assignment to an existing var
				if obj == nil || nodeContains(fl, obj.Pos()) {
					continue
				}
				report(id.Pos(), "goroutine closure assigns to shared variable %s without synchronization; write to a disjoint index/slot or guard it with a mutex", id.Name)
			}
		case *ast.IncDecStmt:
			if locksInside {
				return true
			}
			if id, ok := e.X.(*ast.Ident); ok {
				obj := p.Info.Uses[id]
				if obj != nil && !nodeContains(fl, obj.Pos()) {
					report(id.Pos(), "goroutine closure mutates shared variable %s without synchronization; write to a disjoint index/slot or guard it with a mutex", id.Name)
				}
			}
		}
		return true
	})
}
