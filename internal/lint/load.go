package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package presented to analyzers.
type Package struct {
	Name     string // package name (clause)
	Path     string // import path
	Dir      string // absolute directory
	RelDir   string // directory relative to the module root ("." for root)
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	TypeErrs []error
}

// moduleImporter resolves module-local import paths from the packages
// type-checked so far and delegates everything else (stdlib) to the
// go/importer source importer, which parses $GOROOT sources — keeping the
// whole pipeline free of external dependencies and of the go command.
type moduleImporter struct {
	src  types.ImporterFrom
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.src.ImportFrom(path, dir, mode)
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// skipDir reports whether a directory name is never analyzed.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		(strings.HasPrefix(name, ".") && name != ".") || name == "_"
}

type parsedPkg struct {
	name    string
	path    string
	dir     string
	relDir  string
	files   []*ast.File
	imports map[string]bool // module-local imports only
}

// parseDir parses the non-test Go files of one directory into a single
// package. Returns nil if the directory holds no non-test Go files.
func parseDir(fset *token.FileSet, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	p := &parsedPkg{dir: dir, imports: map[string]bool{}}
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if p.name == "" {
			p.name = f.Name.Name
		}
		p.files = append(p.files, f)
	}
	return p, nil
}

// loadModule discovers, parses, and type-checks every non-test package
// under root, in dependency order.
func loadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var pkgs []*parsedPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		p, err := parseDir(fset, path)
		if err != nil || p == nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		p.relDir = rel
		p.path = mod
		if rel != "." {
			p.path = mod + "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*parsedPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.path] = p
	}
	prefix := mod + "/"
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == mod || strings.HasPrefix(ip, prefix) {
					p.imports[ip] = true
				}
			}
		}
	}

	order, err := topoSort(pkgs, byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		src:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: map[string]*types.Package{},
	}
	var out []*Package
	for _, p := range order {
		pkg := typeCheck(fset, p, imp)
		imp.pkgs[p.path] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// topoSort orders packages so that every package follows its module-local
// imports.
func topoSort(pkgs []*parsedPkg, byPath map[string]*parsedPkg) ([]*parsedPkg, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[string]int{}
	var order []*parsedPkg
	var visit func(p *parsedPkg) error
	visit = func(p *parsedPkg) error {
		switch state[p.path] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", p.path)
		case black:
			return nil
		}
		state[p.path] = gray
		deps := make([]string, 0, len(p.imports))
		for ip := range p.imports {
			deps = append(deps, ip)
		}
		sort.Strings(deps)
		for _, ip := range deps {
			if dep, ok := byPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.path] = black
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs go/types over one parsed package, collecting (rather
// than failing on) type errors so syntactic analyzers still run.
func typeCheck(fset *token.FileSet, p *parsedPkg, imp types.ImporterFrom) *Package {
	out := &Package{
		Name: p.name, Path: p.path, Dir: p.dir, RelDir: p.relDir,
		Fset: fset, Files: p.files,
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { out.TypeErrs = append(out.TypeErrs, err) },
	}
	out.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, _ := conf.Check(p.path, fset, p.files, out.Info)
	if tpkg == nil {
		tpkg = types.NewPackage(p.path, p.name)
	}
	out.Types = tpkg
	return out
}

// loadFixtureDirs loads standalone directories as one program under
// synthetic import paths, in the given order — later directories may
// import earlier ones (everything else resolves to the stdlib). Used for
// fixture corpora, including the cross-package chains the interprocedural
// analyzers need.
func loadFixtureDirs(dirs []FixtureDir) ([]*Package, error) {
	fset := token.NewFileSet()
	imp := &moduleImporter{
		src:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: map[string]*types.Package{},
	}
	var out []*Package
	for _, fd := range dirs {
		p, err := parseDir(fset, fd.Dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", fd.Dir)
		}
		p.path = fd.ImportPath
		p.relDir = filepath.Base(fd.Dir)
		pkg := typeCheck(fset, p, imp)
		imp.pkgs[fd.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}
