// Package errs is a tangolint fixture: seeded violations of the
// errdiscard analyzer (silently dropped error returns in internal
// packages).
package errs

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func badDiscards(f *os.File) {
	mayFail()    // want errdiscard "mayFail is silently discarded"
	twoResults() // want errdiscard "twoResults is silently discarded"
	f.Close()    // want errdiscard "Close is silently discarded"
}

// --- forms that must stay silent ---

func goodHandling(f *os.File) error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail()   // explicit discard is a visible decision
	defer f.Close() // defers are conventional cleanup

	fmt.Println("terminal printing is excluded")

	var sb strings.Builder
	sb.WriteString("strings.Builder never fails")
	_, err := fmt.Sscan("1", new(int))
	return err
}
