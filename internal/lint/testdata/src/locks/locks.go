// Package locks is a tangolint fixture: seeded violations of the
// locksafety analyzer (copied mutexes, unbalanced Lock/Unlock, and
// `// guarded by <mu>` fields touched outside the critical section).
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// A value receiver copies the mutex with the struct.
func (c counter) badValueReceiver() int { // want locksafety "value receiver"
	return 0
}

// A value parameter does too.
func badParam(c counter) { // want locksafety "value parameter"
	_ = c
}

// Dereferencing copies the lock out of the shared value.
func badDeref(c *counter) {
	v := *c // want locksafety "assignment copies lock-bearing value"
	_ = v
}

// Early return with the lock still held.
func badEarlyReturn(c *counter, cond bool) int {
	c.mu.Lock() // want locksafety "not released on every return path"
	if cond {
		return 1
	}
	c.mu.Unlock()
	return 0
}

// Lock never released at all.
func badLeak(c *counter) {
	c.mu.Lock() // want locksafety "not released on every return path"
	c.n++
}

// Guarded field read outside any critical section.
func badUnguardedRead(c *counter) int {
	return c.n // want locksafety "guarded by c.mu but accessed without holding it"
}

// Guarded field write outside any critical section.
func badUnguardedWrite(c *counter) {
	c.n = 42 // want locksafety "guarded by c.mu but accessed without holding it"
}

// Package-level variables can be annotated too.
var (
	tableMu sync.Mutex
	table   = map[string]int{} // guarded by tableMu
)

func badVarAccess() int {
	return len(table) // want locksafety "guarded by tableMu but accessed without holding it"
}

// --- correct forms, which must stay silent ---

func goodDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func goodPaired(c *counter, cond bool) int {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return 1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// The *Locked suffix convention: callers hold the lock.
func bumpLocked(c *counter) { c.n++ }

func goodVarAccess() int {
	tableMu.Lock()
	defer tableMu.Unlock()
	return len(table)
}
