// Package tickutil is a tangolint fixture helper: a non-sim utility
// package that hides a wall-clock read behind a layer of calls, so the
// detfix fixture can assert the interprocedural taint chain
// (detfix → Stamp → now → time.Now).
package tickutil

import "time"

// Stamp returns a wall-clock timestamp — tainted transitively.
func Stamp() int64 { return now() }

func now() int64 { return time.Now().UnixNano() }

// Pure is taint-free: calling it from sim-driven code is fine.
func Pure(x int64) int64 { return x * 2 }
