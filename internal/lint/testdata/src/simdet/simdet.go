// Package simdet is a tangolint fixture: seeded violations of the
// simdeterminism analyzer. Every `// want <analyzer> "substr"` comment
// is asserted by lint_test.go, in both directions: each want must be
// reported, and each report must be wanted.
package simdet

import (
	"math/rand"
	"sort"
	"time"
)

// Wall-clock reads are forbidden in sim-driven packages: the engine has
// a virtual clock, and real time makes runs unreproducible.
func wallClock() float64 {
	t0 := time.Now()                  // want simdeterminism "wall-clock call time.Now"
	time.Sleep(10 * time.Millisecond) // want simdeterminism "wall-clock call time.Sleep"
	return time.Since(t0).Seconds()   // want simdeterminism "wall-clock call time.Since"
}

// Global math/rand functions draw from shared process-wide state.
func globalRand() int {
	x := rand.Intn(10)        // want simdeterminism "global math/rand call rand.Intn"
	if rand.Float64() > 0.5 { // want simdeterminism "global math/rand call rand.Float64"
		x++
	}
	return x
}

// Explicit, seeded generators are the allowed form.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Map iteration order must not flow into an appended result.
func mapOrderLeak(m map[string]int) []string {
	var keys []string
	for k := range m { // want simdeterminism "appends to keys in iteration order"
		keys = append(keys, k)
	}
	return keys
}

// Nor into a channel the consumer will drain in arrival order.
func mapOrderLeakChan(m map[string]int, out chan<- string) {
	for k := range m {
		out <- k // want simdeterminism "leaks iteration order"
	}
}

// Sorting after the loop restores a canonical order: allowed.
func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Order-insensitive folds over a map are allowed.
func mapCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// The escape hatch: an explained ignore silences the finding.
func suppressed() int64 {
	//lint:ignore simdeterminism fixture demonstrates the escape hatch
	return time.Now().UnixNano()
}
