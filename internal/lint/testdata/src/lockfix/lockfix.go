// Package lockfix is a tangolint fixture: seeded lock-order cycles for
// the lockorder analyzer. Each want-comment marks where the analyzer
// reports the representative cycle (the first edge of the cycle starting
// from the alphabetically-first class in the SCC).
package lockfix

import "sync"

// Alpha and Beta are locked in opposite orders by the two functions
// below — the textbook AB/BA deadlock.
type Alpha struct {
	mu sync.Mutex
	n  int
}

type Beta struct {
	mu sync.Mutex
	n  int
}

func AlphaThenBeta(a *Alpha, b *Beta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockorder "lock-order cycle"
	b.n++
	b.mu.Unlock()
}

func BetaThenAlpha(a *Alpha, b *Beta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

// Gamma and Delta form a cycle only interprocedurally: GammaThenDelta
// holds Gamma.mu across a call into lockDelta, which acquires Delta.mu.
type Gamma struct {
	mu sync.Mutex
	n  int
}

type Delta struct {
	mu sync.Mutex
	n  int
}

func lockDelta(d *Delta) {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

func GammaThenDelta(g *Gamma, d *Delta) {
	g.mu.Lock()
	lockDelta(d)
	g.mu.Unlock()
}

func DeltaThenGamma(g *Gamma, d *Delta) {
	d.mu.Lock()
	g.mu.Lock() // want lockorder "lock-order cycle"
	g.n++
	g.mu.Unlock()
	d.mu.Unlock()
}

// Consistent ordering across every execution: Alpha before Gamma,
// everywhere. No cycle, no finding.
func ConsistentOne(a *Alpha, g *Gamma) {
	a.mu.Lock()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	a.mu.Unlock()
}

func ConsistentTwo(a *Alpha, g *Gamma) {
	a.mu.Lock()
	defer a.mu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	a.n += g.n
}

// The *Locked suffix convention composes: bumpLocked runs under the
// caller's Beta.mu and acquires nothing itself, so calling it while a
// lock is held adds no ordering edge.
func (b *Beta) bumpLocked() { b.n++ }

func UnderBeta(b *Beta) {
	b.mu.Lock()
	b.bumpLocked()
	b.mu.Unlock()
}

// Rho nests two locks of the same class (parent then child). That is a
// real hazard in general — two goroutines walking the chain from
// different ends deadlock — and the analyzer reports it as a self-cycle;
// here the nesting is deliberate and suppressed with a reason.
type Rho struct {
	mu   sync.Mutex
	next *Rho
	n    int
}

func Chain2(r *Rho) {
	r.mu.Lock()
	//lint:ignore lockorder traversal always runs root-to-leaf, so same-class nesting is acyclic by construction
	r.next.mu.Lock()
	r.next.n++
	r.next.mu.Unlock()
	r.mu.Unlock()
}
