// Package detfix is a tangolint fixture: seeded violations of the
// detertaint analyzer. The package name is added to SimPackages by the
// test, so calls that smuggle nondeterminism in through the tickutil
// helper package — where simdeterminism's per-package scan cannot see
// them — must be flagged at the frontier, with the call chain down to
// the wall-clock read as witness.
package detfix

import "tango/internal/fixture/tickutil"

// Step leaks the wall clock through two layers of tickutil, and picks
// between two ready channels nondeterministically.
func Step(a, b chan int) int {
	t := tickutil.Stamp() // want detertaint "call into nondeterministic tickutil.Stamp"
	select {              // want detertaint "selects across multiple channels"
	case v := <-a:
		return v + int(t)
	case v := <-b:
		return v
	}
}

// clean calls a taint-free helper: no finding.
func clean(x int64) int64 { return tickutil.Pure(x) }

// A single-channel select (plus default) is deterministic: no finding.
func drain(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

// suppressed documents a deliberate frontier crossing.
func suppressed() int64 {
	//lint:ignore detertaint startup-only stamp; the value never reaches the scheduler
	return tickutil.Stamp()
}
