// Package parfix is a tangolint fixture: seeded violations of the
// parhygiene analyzer (goroutine closures capturing loop variables or
// writing shared state without synchronization).
package parfix

import "sync"

func badLoopCaptureRange(items []int, sink func(int)) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(items[i]) // want parhygiene "captures loop variable i"
		}()
	}
	wg.Wait()
}

func badLoopCaptureFor(n int, out []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i * i // want parhygiene "captures loop variable i"
		}()
	}
	wg.Wait()
}

func badSharedWrite(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += i // want parhygiene "assigns to shared variable total"
		}()
	}
	wg.Wait()
	return total
}

func badSharedIncrement(n int) int {
	count := 0
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count++ // want parhygiene "mutates shared variable count"
		}()
	}
	wg.Wait()
	return count
}

// --- correct forms, which must stay silent ---

// Passing the loop variable as a parameter gives the goroutine its own
// copy (the par.For idiom).
func goodParamPassing(items, res []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = items[i] * 2
		}(i)
	}
	wg.Wait()
}

// Rebinding in the loop body also gives per-iteration ownership.
func goodRebind(items, res []int) {
	var wg sync.WaitGroup
	for i := range items {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[i] = items[i] * 2
		}()
	}
	wg.Wait()
}

// Shared writes under a mutex are synchronized.
func goodMutex(n int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += i
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}
