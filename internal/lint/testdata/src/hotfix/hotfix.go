// Package hotfix is a tangolint fixture: seeded violations of the
// hotpath analyzer. Emit is the annotated root; record and format are
// reached transitively, so their findings must carry a call-chain
// witness from Emit.
package hotfix

import "fmt"

// Sink is a zero-alloc emitter with preallocated scratch state.
type Sink struct {
	buf   []byte
	items []int
	cb    func()
}

// Emit is the hot entry point; everything it reaches inherits the
// zero-allocation budget.
//
//tango:hotpath
func (s *Sink) Emit(v int) {
	s.record(v)
}

func (s *Sink) record(v int) {
	s.guard(v)
	msg := fmt.Sprintf("v=%d", v) // want hotpath "fmt.Sprintf allocates"
	_ = msg
	s.items = append(s.items, v) // field append: amortized reuse, allowed
	s.format(v, "x")
	s.evident(v)
}

func (s *Sink) format(v int, name string) {
	label := name + "!" // want hotpath "string concatenation allocates"
	_ = label
	m := map[string]int{"v": v} // want hotpath "map literal allocates"
	_ = m
	xs := []int{v} // want hotpath "slice literal allocates"
	_ = xs
	s.cb = func() { s.items = s.items[:0] } // want hotpath "escaping function literal"
	h := s.flush                            // want hotpath "bound method value s.flush"
	_ = h
	go s.flush() // want hotpath "go statement spawns a goroutine"
	var tmp []int
	tmp = append(tmp, v) // want hotpath "append to tmp without capacity evidence"
	_ = tmp
	accept(v) // want hotpath "passing int as any boxes"
	_ = s.annotate(nil)
}

func (s *Sink) flush() { s.items = s.items[:0] }

func accept(x any) { _ = x }

// Capacity evidence in the same function: allowed, even on the hot
// path.
func (s *Sink) evident(v int) {
	out := make([]int, 0, 8)
	out = append(out, v)
	kept := s.items[:0]
	kept = append(kept, out...)
	s.items = kept
}

// Panic arguments are cold by definition: the fmt call below is on the
// hot path yet draws no finding.
func (s *Sink) guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("hotfix: negative value %d", v))
	}
}

// A reasoned suppression keeps a deliberate allocation visible.
func (s *Sink) annotate(err error) string {
	//lint:ignore hotpath error path only; allocation is acceptable once per failure
	return fmt.Sprintf("sink failed: %v", err)
}

// cold is unreachable from any //tango:hotpath root: the same constructs
// draw no findings here.
func cold(v int) string {
	m := map[string]int{"v": v}
	return fmt.Sprint(m)
}
