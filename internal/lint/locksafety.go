package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runLockSafety enforces three rules:
//
//  1. no lock-bearing value is copied (value receivers/params/results,
//     dereference copies, range-value copies);
//  2. every sync.Mutex/RWMutex Lock has a deferred or path-covering
//     Unlock — no return while a lock is held;
//  3. struct fields annotated `// guarded by <mu>` are only touched
//     while <mu> is held (methods named *Locked are assumed to be
//     called with the lock held, the project's convention).
func runLockSafety(p *Package, _ *config, report reportFunc) {
	guards := collectGuards(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(p, fd, report)
			if fd.Body == nil {
				continue
			}
			sc := &lockScanner{
				p:           p,
				report:      report,
				guards:      guards,
				checkGuards: !strings.HasSuffix(fd.Name.Name, "Locked"),
				leaks:       map[token.Pos]string{},
			}
			st := newLockState()
			terminated := sc.scanStmts(fd.Body.List, st)
			if !terminated {
				sc.checkExit(st, fd.Body.Rbrace)
			}
			sc.flush()
		}
	}
}

// --- rule 1: copied locks ---

func checkLockCopies(p *Package, fd *ast.FuncDecl, report reportFunc) {
	checkFieldList := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil || !typeContainsLock(t, nil) {
				continue
			}
			report(field.Pos(), "%s of %s copies a lock; use a pointer", kind, fd.Name.Name)
		}
	}
	checkFieldList(fd.Recv, "value receiver")
	if fd.Type.Params != nil {
		checkFieldList(fd.Type.Params, "value parameter")
	}
	if fd.Type.Results != nil {
		checkFieldList(fd.Type.Results, "result")
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				// Assigning to the blank identifier is a visible
				// discard, not a copy anyone can misuse.
				if i < len(s.Lhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				switch rhs.(type) {
				case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
					t := p.Info.TypeOf(rhs)
					if t != nil && typeContainsLock(t, nil) {
						report(rhs.Pos(), "assignment copies lock-bearing value %s; use a pointer", exprText(rhs))
					}
				}
			}
		case *ast.RangeStmt:
			if s.Value != nil {
				t := p.Info.TypeOf(s.Value)
				if t != nil && typeContainsLock(t, nil) {
					report(s.Value.Pos(), "range value copies lock-bearing element; range over indices or pointers")
				}
			}
		}
		return true
	})
}

// typeContainsLock reports whether t (held by value) embeds sync
// primitive state that must not be copied.
func typeContainsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
		return typeContainsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeContainsLock(u.Elem(), seen)
	}
	return false
}

// --- guarded-by annotations ---

// collectGuards maps annotated field objects to the name of the mutex
// field that guards them. Annotation syntax (field doc or trailing
// comment): `// guarded by mu`.
func collectGuards(p *Package) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						mu := guardName(field.Doc)
						if mu == "" {
							mu = guardName(field.Comment)
						}
						if mu == "" {
							continue
						}
						for _, name := range field.Names {
							if obj := p.Info.Defs[name]; obj != nil {
								guards[obj] = mu
							}
						}
					}
				case *ast.ValueSpec:
					// Package-level vars: `// guarded by <mu>` on the spec.
					mu := guardName(sp.Doc)
					if mu == "" {
						mu = guardName(sp.Comment)
					}
					if mu == "" {
						continue
					}
					for _, name := range sp.Names {
						if obj := p.Info.Defs[name]; obj != nil {
							guards[obj] = mu
						}
					}
				}
			}
		}
	}
	return guards
}

func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "guarded by "); ok {
			// The mutex name ends at the first non-identifier character,
			// so prose may follow: `// guarded by mu; snapshot first`.
			name := strings.Fields(rest)[0]
			end := len(name)
			for i, r := range name {
				if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
					end = i
					break
				}
			}
			return name[:end]
		}
	}
	return ""
}

// --- rules 2 and 3: the lock-state scanner ---

// lockState is the set of mutexes that MUST be held at a program point
// (branch merges intersect, so it never over-claims).
type lockState struct {
	held     map[string]token.Pos // lock key -> Lock() call position
	deferred map[string]bool      // keys with a pending deferred unlock
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// intersect keeps only keys held in both states.
func (s *lockState) intersect(o *lockState) {
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			delete(s.held, k)
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

type lockScanner struct {
	p           *Package
	report      reportFunc
	guards      map[types.Object]string
	checkGuards bool
	leaks       map[token.Pos]string // Lock() pos -> message (deduped)
}

func (sc *lockScanner) flush() {
	for pos, msg := range sc.leaks {
		sc.report(pos, "%s", msg)
	}
}

// lockOp classifies a call as a sync lock operation on a receiver key.
// The key encodes the receiver expression and read/write mode.
func (sc *lockScanner) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := sc.p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	full := fn.FullName()
	if !strings.HasPrefix(full, "(*sync.Mutex).") && !strings.HasPrefix(full, "(*sync.RWMutex).") {
		return "", "", false
	}
	name := sel.Sel.Name
	key = exprText(sel.X)
	if name == "RLock" || name == "RUnlock" {
		key += ":r"
	}
	switch name {
	case "Lock", "RLock":
		return key, "lock", true
	case "Unlock", "RUnlock":
		return key, "unlock", true
	}
	return "", "", false
}

// scanStmts walks a statement list updating st; reports guard misuse and
// records Lock() leaks. Returns true if every path through the list
// terminates (return/panic).
func (sc *lockScanner) scanStmts(stmts []ast.Stmt, st *lockState) bool {
	for _, stmt := range stmts {
		if sc.scanStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (sc *lockScanner) scanStmt(stmt ast.Stmt, st *lockState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op, ok := sc.lockOp(call); ok {
				if op == "lock" {
					st.held[key] = call.Pos()
				} else {
					delete(st.held, key)
					delete(st.deferred, key)
				}
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				sc.visitExprs(s, st)
				return true
			}
		}
		sc.visitExprs(s, st)
	case *ast.DeferStmt:
		if key, op, ok := sc.lockOp(s.Call); ok && op == "unlock" {
			st.deferred[key] = true
			return false
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure that unlocks counts as a deferred
			// unlock for each mutex it releases.
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, op, ok := sc.lockOp(call); ok && op == "unlock" {
						st.deferred[key] = true
					}
				}
				return true
			})
			return false
		}
		sc.visitExprs(s, st)
	case *ast.ReturnStmt:
		sc.visitExprs(s, st)
		sc.checkExit(st, s.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto: treat as terminating this path for merge
		// purposes; loop-level flow is out of scope for the scanner.
		return true
	case *ast.BlockStmt:
		return sc.scanStmts(s.List, st)
	case *ast.LabeledStmt:
		return sc.scanStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, st)
		}
		sc.visitExprs(s.Cond, st)
		bodySt := st.clone()
		bodyTerm := sc.scanStmts(s.Body.List, bodySt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = sc.scanStmt(s.Else, elseSt)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			*st = *elseSt
		case elseTerm:
			*st = *bodySt
		default:
			bodySt.intersect(elseSt)
			*st = *bodySt
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, st)
		}
		if s.Cond != nil {
			sc.visitExprs(s.Cond, st)
		}
		body := st.clone()
		sc.scanStmts(s.Body.List, body)
		if s.Post != nil {
			sc.scanStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		sc.visitExprs(s.X, st)
		body := st.clone()
		sc.scanStmts(s.Body.List, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return sc.scanBranches(s, st)
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// Goroutines do not inherit the caller's locks.
			fresh := newLockState()
			if !sc.scanStmts(fl.Body.List, fresh) {
				sc.checkExit(fresh, fl.Body.Rbrace)
			}
			for _, arg := range s.Call.Args {
				sc.visitExprs(arg, st)
			}
			return false
		}
		sc.visitExprs(s, st)
	default:
		sc.visitExprs(stmt, st)
	}
	return false
}

// scanBranches handles switch/type-switch/select: each clause runs on a
// clone; fall-through state is the intersection of non-terminating
// clauses (plus the unchanged state when a switch has no default).
func (sc *lockScanner) scanBranches(stmt ast.Stmt, st *lockState) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, st)
		}
		if s.Tag != nil {
			sc.visitExprs(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, st)
		}
		sc.visitExprs(s.Assign, st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		hasDefault = true // select always executes exactly one clause
	}
	var live []*lockState
	allTerm := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			cs := st.clone()
			if c.Comm != nil {
				sc.scanStmt(c.Comm, cs)
			}
			if !sc.scanStmts(c.Body, cs) {
				live = append(live, cs)
				allTerm = false
			}
			continue
		}
		cs := st.clone()
		if !sc.scanStmts(stmts, cs) {
			live = append(live, cs)
			allTerm = false
		}
	}
	if !hasDefault {
		live = append(live, st.clone())
		allTerm = false
	}
	if allTerm && len(body.List) > 0 {
		return true
	}
	if len(live) > 0 {
		merged := live[0]
		for _, o := range live[1:] {
			merged.intersect(o)
		}
		*st = *merged
	}
	return false
}

// checkExit records a leak for every mutex still held (and not deferred)
// at a return or at the end of the function body.
func (sc *lockScanner) checkExit(st *lockState, _ token.Pos) {
	for key, lockPos := range st.held {
		if st.deferred[key] {
			continue
		}
		sc.leaks[lockPos] = "lock " + strings.TrimSuffix(key, ":r") +
			" is not released on every return path; add `defer " + unlockCallFor(key) + "` or unlock before returning"
	}
}

func unlockCallFor(key string) string {
	if recv, ok := strings.CutSuffix(key, ":r"); ok {
		return recv + ".RUnlock()"
	}
	return key + ".Unlock()"
}

// visitExprs checks guarded-field accesses in any expression tree and
// scans nested function literals.
func (sc *lockScanner) visitExprs(n ast.Node, st *lockState) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit:
			// A closure invoked in place sees the caller's locks; its own
			// extra locks must still balance by its end.
			inner := st.clone()
			if !sc.scanStmts(e.Body.List, inner) {
				leaked := newLockState()
				for k, pos := range inner.held {
					if _, preHeld := st.held[k]; !preHeld {
						leaked.held[k] = pos
					}
				}
				leaked.deferred = inner.deferred
				sc.checkExit(leaked, e.Body.Rbrace)
			}
			return false
		case *ast.SelectorExpr:
			sc.checkGuardedAccess(e, st)
		case *ast.Ident:
			sc.checkGuardedVar(e, st)
		}
		return true
	})
}

// checkGuardedVar reports an annotated package-level variable touched
// while its mutex is not held.
func (sc *lockScanner) checkGuardedVar(id *ast.Ident, st *lockState) {
	if !sc.checkGuards {
		return
	}
	obj := sc.p.Info.ObjectOf(id)
	v, isVar := obj.(*types.Var)
	if !isVar || v.IsField() {
		return
	}
	mu, guarded := sc.guards[obj]
	if !guarded {
		return
	}
	if _, w := st.held[mu]; w {
		return
	}
	if _, r := st.held[mu+":r"]; r {
		return
	}
	sc.report(id.Pos(), "variable %s is guarded by %s but accessed without holding it", id.Name, mu)
}

// checkGuardedAccess reports a guarded field touched while its mutex is
// not (must-)held.
func (sc *lockScanner) checkGuardedAccess(sel *ast.SelectorExpr, st *lockState) {
	if !sc.checkGuards {
		return
	}
	obj := sc.p.Info.ObjectOf(sel.Sel)
	mu, guarded := sc.guards[obj]
	if !guarded {
		return
	}
	base := exprText(sel.X)
	key := base + "." + mu
	if _, w := st.held[key]; w {
		return
	}
	if _, r := st.held[key+":r"]; r {
		return
	}
	sc.report(sel.Pos(), "field %s.%s is guarded by %s.%s but accessed without holding it", base, sel.Sel.Name, base, mu)
}
