package fleet

import (
	"reflect"
	"testing"

	"tango/internal/fault"
	"tango/internal/runpool"
	"tango/internal/tokenctl"
	"tango/internal/trace"
)

func TestSingleNodeSmoke(t *testing.T) {
	c, err := New(Config{Nodes: 1, Sessions: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.AggMBps <= 0 {
		t.Fatalf("no throughput: %+v", r)
	}
	if r.Kills != 0 || r.Migrations != 0 {
		t.Fatalf("single quiet node killed/migrated: %+v", r)
	}
	if r.Store.EgressBytes <= 0 {
		t.Fatal("sessions must warm from the store")
	}
	if r.RecoveryFrac != 1 {
		t.Fatalf("recovery %v without a kill", r.RecoveryFrac)
	}
}

func TestNoFaultZeroViolationsZeroMigrations(t *testing.T) {
	c, err := New(Config{Nodes: 4, Sessions: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 || r.ViolNodes != 0 {
		t.Fatalf("quiet fleet violated bounds: %+v", r)
	}
	if r.Migrations != 0 {
		t.Fatalf("quiet fleet migrated %d sessions", r.Migrations)
	}
	if r.SkippedSteps != 0 {
		t.Fatalf("quiet fleet skipped %d steps", r.SkippedSteps)
	}
	// Every session steps once per epoch: aggregate epoch throughput must
	// be flat once warm (cold epochs pay the store fetch but still
	// complete the same step bytes; summation order varies per epoch, so
	// compare to float tolerance, not bitwise).
	for e := 1; e < len(r.EpochMBps); e++ {
		if d := r.EpochMBps[e] - r.EpochMBps[0]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("epoch throughput drifted: %v", r.EpochMBps)
		}
	}
}

func TestPlacementSpreadsSessions(t *testing.T) {
	c, err := New(Config{Nodes: 8, Sessions: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range c.nodes {
		if len(nd.sessions) == 0 {
			t.Fatalf("node %s got no sessions", nd.name)
		}
	}
	// Cost-based placement: per-node load (frontend fraction) stays
	// within a factor of 2 of the mean.
	var total float64
	for _, nd := range c.nodes {
		total += nd.load
	}
	mean := total / float64(len(c.nodes))
	for _, nd := range c.nodes {
		if nd.load > 2*mean {
			t.Fatalf("node %s overloaded: %.4f vs mean %.4f", nd.name, nd.load, mean)
		}
	}
}

func killPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNodeKillRebalanceAndRecovery(t *testing.T) {
	rec := trace.New(4096)
	cfg := Config{
		Nodes: 4, Sessions: 32, Seed: 11,
		Plan:  killPlan(t, "node-kill@240:node=node1,dur=120"),
		Trace: rec,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kills != 1 {
		t.Fatalf("kills %d", r.Kills)
	}
	// The killed node's sessions restart cold on survivors, then migrate
	// back after revival: both count as migrations.
	if r.Migrations < 8 {
		t.Fatalf("expected orphan restarts plus settle-back, got %d migrations", r.Migrations)
	}
	if r.RecoveryFrac < 0.8 {
		t.Fatalf("fleet recovered only %.0f%% of pre-kill throughput", 100*r.RecoveryFrac)
	}
	// The revived node must be repopulated by the end.
	if got := len(c.nodes[1].sessions); got == 0 {
		t.Fatal("revived node never repopulated")
	}
	kinds := map[string]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	if kinds[trace.KindPlace] == 0 || kinds[trace.KindMigrate] == 0 ||
		kinds[trace.KindEgress] == 0 || kinds[trace.KindFault] < 2 {
		t.Fatalf("missing barrier events: %v", kinds)
	}
	// Migration traffic must show up in the store ledger as ingress.
	if r.Store.IngressBytes <= 0 {
		t.Fatal("migration drains must write to the store")
	}
}

func TestKillDuringWarmupNoPanic(t *testing.T) {
	// A kill landing at or before the warm-up boundary used to slice
	// epochMBps[WarmEpochs:killEpoch] with low > high and panic; there is
	// no measured pre-kill baseline, so recovery must default to 1.
	c, err := New(Config{Nodes: 3, Sessions: 9, Seed: 13,
		Plan: killPlan(t, "node-kill@0:node=node1,dur=120")})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kills != 1 {
		t.Fatalf("kills %d", r.Kills)
	}
	if r.RecoveryFrac != 1 {
		t.Fatalf("no measured pre-kill baseline: recovery must default to 1, got %v", r.RecoveryFrac)
	}
}

func TestHarvestCountsViolationsOnce(t *testing.T) {
	// viol is a per-epoch accumulator: a violation harvested in epoch k
	// must not be re-counted at every later barrier.
	c, err := New(Config{Nodes: 2, Sessions: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[1].viol = 1
	c.harvest(0)
	c.harvest(1)
	if c.violTotal != 1 {
		t.Fatalf("violation recounted across epochs: total %d", c.violTotal)
	}
	if c.nodes[1].viol != 0 {
		t.Fatal("harvest must reset the per-epoch violation accumulator")
	}
	r := c.report()
	if r.Violations != 1 || r.ViolNodes != 1 {
		t.Fatalf("report %d violations on %d nodes, want 1 on 1", r.Violations, r.ViolNodes)
	}
}

func TestShortRunsAndZeroWarmup(t *testing.T) {
	// Epochs <= 2 with the default warm-up must construct (the default
	// clamps to Epochs-1)...
	c, err := New(Config{Nodes: 1, Sessions: 2, Seed: 1, Epochs: 2})
	if err != nil {
		t.Fatalf("Epochs=2 with default warm-up must construct: %v", err)
	}
	if c.cfg.WarmEpochs != 1 {
		t.Fatalf("warm epochs should clamp to Epochs-1, got %d", c.cfg.WarmEpochs)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// ...and a negative WarmEpochs means no warm epochs at all.
	c2, err := New(Config{Nodes: 1, Sessions: 2, Seed: 1, Epochs: 1, WarmEpochs: -1})
	if err != nil {
		t.Fatalf("WarmEpochs=-1 must mean zero warm epochs: %v", err)
	}
	if c2.cfg.WarmEpochs != 0 {
		t.Fatalf("WarmEpochs -1 should resolve to 0, got %d", c2.cfg.WarmEpochs)
	}
	r, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.AggMBps <= 0 {
		t.Fatalf("single unwarmed epoch must still measure throughput: %+v", r)
	}
}

func TestKillUnknownNodeSkips(t *testing.T) {
	c, err := New(Config{Nodes: 2, Sessions: 4, Seed: 5,
		Plan: killPlan(t, "node-kill@60:node=node9,dur=60")})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kills != 0 || r.Migrations != 0 {
		t.Fatalf("unknown target must be a no-op: %+v", r)
	}
}

func TestDeviceFaultArmsOnNodes(t *testing.T) {
	// A local SSD bandwidth collapse on every node: throughput holds (the
	// store path dominates cold epochs) and nothing crashes.
	c, err := New(Config{Nodes: 2, Sessions: 8, Seed: 9,
		Plan: killPlan(t, "bw-collapse@70:dev=ssd,factor=0.25,dur=30")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// runReport runs one fixed faulted config at the given worker width and
// returns the report plus the trace event stream.
func runReport(t *testing.T, workers int) (*Report, []trace.Event) {
	t.Helper()
	prev := runpool.Workers()
	runpool.SetWorkers(workers)
	defer runpool.SetWorkers(prev)
	rec := trace.New(8192)
	c, err := New(Config{
		Nodes: 5, Sessions: 30, Seed: 17,
		Plan:  killPlan(t, "node-kill@240:node=node2,dur=120"),
		Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, rec.Events()
}

func TestClusterDeterministicAcrossWorkerWidths(t *testing.T) {
	r1, ev1 := runReport(t, 1)
	r4, ev4 := runReport(t, 4)
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("reports diverge across worker widths:\n%+v\n%+v", r1, r4)
	}
	if !reflect.DeepEqual(ev1, ev4) {
		t.Fatalf("trace streams diverge: %d vs %d events", len(ev1), len(ev4))
	}
}

// TestTokenModeSurvivesNodeKill: with decentralized token control the
// fleet keeps the kill/cold-restart/settle-back lifecycle intact — the
// rebuilt node gets a fresh controller of the same mode, orphaned
// buckets are dropped with their node, and the ledger shows traffic.
func TestTokenModeSurvivesNodeKill(t *testing.T) {
	for _, mode := range []tokenctl.Mode{tokenctl.ModeTokens, tokenctl.ModeHybrid} {
		c, err := New(Config{
			Nodes: 4, Sessions: 32, Seed: 11,
			Plan:    killPlan(t, "node-kill@240:node=node1,dur=120"),
			Control: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Kills != 1 || r.Migrations < 8 {
			t.Fatalf("%v: kills=%d migrations=%d", mode, r.Kills, r.Migrations)
		}
		if r.RecoveryFrac < 0.8 {
			t.Fatalf("%v: recovered only %.0f%% of pre-kill throughput", mode, 100*r.RecoveryFrac)
		}
		if r.Tokens.Writes == 0 {
			t.Fatalf("%v: token controllers issued no weight writes", mode)
		}
		for _, nd := range c.nodes {
			if nd.alloc != nil || nd.tok == nil {
				t.Fatalf("%v: node %s has wrong controller after rebuild", mode, nd.name)
			}
			for _, s := range nd.sessions {
				if s.tb == nil || nd.tok.Lookup(s.name) != s.tb {
					t.Fatalf("%v: session %s bucket not attached to its node's controller", mode, s.name)
				}
			}
		}
	}
}

// TestTokenModeDeterministicAcrossWorkerWidths: the token arm keeps the
// fleet's byte-identical determinism contract at any -parallel width.
func TestTokenModeDeterministicAcrossWorkerWidths(t *testing.T) {
	run := func(workers int) *Report {
		prev := runpool.Workers()
		runpool.SetWorkers(workers)
		defer runpool.SetWorkers(prev)
		c, err := New(Config{
			Nodes: 5, Sessions: 30, Seed: 17,
			Plan:    killPlan(t, "node-kill@240:node=node2,dur=120"),
			Control: tokenctl.ModeTokens,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r4 := run(1), run(4)
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("token-mode reports diverge across worker widths:\n%+v\n%+v", r1, r4)
	}
}
