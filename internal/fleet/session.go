package fleet

import (
	"fmt"
	"math/rand"

	"tango/internal/blkio"
	"tango/internal/sim"
	"tango/internal/tokenctl"
)

// session is one tenant workload placed somewhere on the fleet: a
// periodic analysis step that reads its working set — from local L2 when
// resident, from the object store (through the resilience-guarded
// fleet.read.objstore key) when not — and writes back a dirty fraction.
// Parameters are drawn once, seed-deterministically, at cluster
// construction; placement decides which node's engine runs the steps.
type session struct {
	id       int
	name     string
	priority int // {1, 5, 10}: weight = 100×priority

	workingSet float64 // bytes the session's analysis touches
	stepRead   float64 // bytes one step reads (≤ workingSet)
	dirtyFrac  float64 // fraction of a step written back to L2
	phase      float64 // step offset within the epoch (seconds)
	weight     int
	// cost is the placement score increment: the fraction of one node
	// frontend this session's steady-state demand occupies.
	cost float64

	// Mutable state. Owned by the session's current node: mutated either
	// from that node's engine context (step procs) or at a barrier while
	// the session is idle — never both at once (busy pins it).
	node     int // current node index, -1 while unplaced
	cg       *blkio.Cgroup
	tb       *tokenctl.Bucket // token-mode bucket (nil in central mode)
	resident float64          // bytes warm on the current node's L2
	restore  float64          // bytes to re-fetch from the store before stepping
	busy     bool             // a step proc is in flight

	// Persistent step machinery, rebuilt at attach: one proc runs all of
	// this session's steps on its current node, parking between epochs
	// (Suspend) and re-armed by the barrier committing a future resume
	// (WakeAt) — the Spawn-per-step pattern this replaces allocated a
	// proc, two channels, a goroutine, and two closures per session per
	// epoch, and cost an extra trampoline event per step. stepFn is the
	// proc body.
	proc   *sim.Proc
	stepFn func(p *sim.Proc)

	steps      int
	bytes      float64
	migrations int
}

// genSessions draws the session population. The generator is the only
// randomness in the fleet, fully determined by the seed.
func genSessions(n int, seed int64, epochSec, nodeBW float64) []*session {
	rng := rand.New(rand.NewSource(seed))
	prios := [3]int{1, 5, 10}
	out := make([]*session, n)
	for i := range out {
		ws := (16 + rng.Float64()*16) * mb
		step := (4 + rng.Float64()*8) * mb
		if step > ws {
			step = ws
		}
		s := &session{
			id:         i,
			name:       fmt.Sprintf("sess%d", i),
			priority:   prios[rng.Intn(3)],
			workingSet: ws,
			stepRead:   step,
			dirtyFrac:  0.05 + rng.Float64()*0.15,
			phase:      rng.Float64() * epochSec * 0.5,
			node:       -1,
		}
		s.weight = 100 * s.priority
		s.cost = step / epochSec / nodeBW
		out[i] = s
	}
	return out
}

// scheduleSteps arms this epoch's step for every idle session on the
// node. A session whose previous step is still in flight (an overrun:
// the step crossed one or more epoch boundaries) skips this period —
// back-pressure instead of pile-up, and the overrun itself is already
// counted as a bound violation when it completes.
// The barrier commits each session's resume directly at its step instant
// (SpawnAt on first arm, WakeAt thereafter): one event per step, taking
// the queue slot the per-step arm event used to occupy, so step bodies
// still run at the same instant and in the same barrier order.
func (c *Cluster) scheduleSteps(nd *node, t0 float64, measured bool) {
	eng := nd.cn.Engine()
	nd.measured = measured
	for _, s := range nd.sessions {
		if s.busy {
			nd.skips++
			continue
		}
		s.busy = true
		if s.proc == nil {
			s.proc = eng.SpawnAt(t0+s.phase, s.name, s.stepFn)
			nd.procs = append(nd.procs, s.proc)
		} else {
			eng.WakeAt(t0+s.phase, s.proc)
		}
	}
}

// runSession is a session's persistent step proc: it runs one step per
// wake-up and parks between epochs. It exits when its node starts
// draining (end of run) — a proc orphaned by a planned migration stays
// parked until then, because only the drain ever wakes a proc that is no
// longer armed. nd.measured is read at step start, inside the epoch that
// armed it, so it matches the value the barrier published.
func (nd *node) runSession(p *sim.Proc, s *session, epochSec float64) {
	for {
		if nd.draining {
			return
		}
		nd.step(p, s, epochSec, nd.measured)
		p.Suspend()
	}
}

// step runs one analysis period on the session's node:
//
//  1. restore — a planned migration left the working set store-side;
//     re-fetch it through the frontend and admit it to L2;
//  2. read — the resident fraction of the step comes from local L2, the
//     rest is a store miss (guarded by fleet.read.objstore) admitted to
//     L2 on the way in;
//  3. writeback — the dirty fraction of the step flushes to L2.
//
// Steps run entirely inside the node's engine window; the only
// cluster-visible effects are the Remote's traffic ledger and the
// node's epoch accumulators, both harvested at the next barrier.
func (nd *node) step(p *sim.Proc, s *session, epochSec float64, measured bool) {
	start := p.Now()
	if nd.tok != nil && s.tb != nil {
		// Token mode funds the weight per step: sessions idle between
		// steps accrue lendable surplus, and the grant reverts at step
		// end. Central mode keeps the attach-time weight in force.
		nd.tok.Request(s.tb, s.weight)
	}
	if s.restore > 0 {
		res := nd.kObj.Read(p, nd.rem.Device(), s.cg, s.restore)
		nd.rem.AccountGet(res.Moved)
		nd.demandBytes += res.Moved
		if res.Moved > 0 {
			nd.ssd.Write(p, s.cg, res.Moved)
			s.resident += res.Moved
			if s.resident > s.workingSet {
				s.resident = s.workingSet
			}
		}
		s.restore = 0
	}
	hit := s.stepRead * (s.resident / s.workingSet)
	if hit > 0 {
		nd.ssd.Read(p, s.cg, hit)
	}
	if miss := s.stepRead - hit; miss > 0 {
		res := nd.kObj.Read(p, nd.rem.Device(), s.cg, miss)
		nd.rem.AccountGet(res.Moved)
		nd.demandBytes += res.Moved
		if res.Moved > 0 {
			nd.ssd.Write(p, s.cg, res.Moved)
			s.resident += res.Moved
			if s.resident > s.workingSet {
				s.resident = s.workingSet
			}
		}
	}
	if dirty := s.stepRead * s.dirtyFrac; dirty > 0 {
		nd.ssd.Write(p, s.cg, dirty)
	}
	if nd.tok != nil && s.tb != nil {
		nd.tok.Release(s.tb)
	}
	if elapsed := p.Now() - start; elapsed > epochSec && measured {
		nd.viol++
	}
	nd.stepBytes += s.stepRead
	s.steps++
	s.bytes += s.stepRead
	s.busy = false
}
