package fleet

import (
	"reflect"
	"testing"

	"tango/internal/runpool"
	"tango/internal/trace"
)

// runSlidingReport runs one fixed faulted cluster with the sliding-DFT
// forecast mode at the given worker width.
func runSlidingReport(t *testing.T, workers int) (*Report, []trace.Event) {
	t.Helper()
	prev := runpool.Workers()
	runpool.SetWorkers(workers)
	defer runpool.SetWorkers(prev)
	rec := trace.New(8192)
	c, err := New(Config{
		Nodes: 5, Sessions: 30, Seed: 17,
		Plan:       killPlan(t, "node-kill@240:node=node2,dur=120"),
		Trace:      rec,
		SlidingDFT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, rec.Events()
}

// TestSlidingDFTDeterministicAcrossWorkerWidths is the sliding mode's
// own same-seed byte-match gate: opt-in incremental spectra must stay
// deterministic at any -parallel width, like the default mode. (It is
// not byte-identical to the default mode — the incremental summation
// order differs — which is why the mode is opt-in.)
func TestSlidingDFTDeterministicAcrossWorkerWidths(t *testing.T) {
	r1, ev1 := runSlidingReport(t, 1)
	r4, ev4 := runSlidingReport(t, 4)
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("sliding-mode reports diverge across worker widths:\n%+v\n%+v", r1, r4)
	}
	if !reflect.DeepEqual(ev1, ev4) {
		t.Fatalf("sliding-mode trace streams diverge: %d vs %d events", len(ev1), len(ev4))
	}
}

// TestSlidingDFTRefitsEveryEpoch: the flag must actually change forecast
// behavior — node estimators refit per harvested epoch instead of
// extrapolating the first fit.
func TestSlidingDFTRefitsEveryEpoch(t *testing.T) {
	c, err := New(Config{Nodes: 2, Sessions: 8, Seed: 3, Epochs: 8, SlidingDFT: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for _, nd := range c.nodes {
		if !nd.est.Ready() {
			t.Fatalf("%s estimator never fitted", nd.name)
		}
		// A per-epoch refit leaves the model spanning every harvested
		// sample (8 epochs), not the first-fit window of 4.
		if nd.est.ModelLen() != 8 {
			t.Fatalf("%s model len %d, want 8 (per-epoch refit missing)", nd.name, nd.est.ModelLen())
		}
	}
}
