package fleet

import (
	"testing"

	"tango/internal/objstore"
	"tango/internal/sim"
)

// BenchmarkFleetEpoch measures one full cluster run at a small fixed
// shape — the end-to-end cost of barriers + parallel windows.
func BenchmarkFleetEpoch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := New(Config{Nodes: 4, Sessions: 32, Seed: 7, Epochs: 4, WarmEpochs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetPlace measures cluster construction with a large
// session population — dominated by the heap placement pass and the
// per-session cgroup/coordinator attach.
func BenchmarkFleetPlace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{Nodes: 64, Sessions: 4096, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetBarrier1000 measures the barrier-only control plane at
// fleet scale: the shared-egress reshare plus a placement-score forecast
// sweep (heap push/pop with a DFT forecast per node) over 1000 nodes
// with warm estimators. The whole pass must be allocation-free — this is
// the loop every epoch serializes on, and the reason Fit/Predict carry
// //tango:hotpath and the barrier emits are nil-recorder guarded.
func BenchmarkFleetBarrier1000(b *testing.B) {
	c, err := New(Config{Nodes: 1000, Sessions: 10000, Seed: 7, Epochs: 2})
	if err != nil {
		b.Fatal(err)
	}
	nodeBW := c.cfg.Store.NodeBandwidth
	for _, nd := range c.nodes {
		for k := 0; k < 8; k++ {
			nd.est.Observe(float64(50+k%5) * mb)
		}
		if err := nd.est.Fit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.reshare(0, nodeBW)
		c.heap.reset(len(c.nodes))
		for _, nd := range c.nodes {
			if nd.alive {
				c.heap.push(nd.idx, nd.predictFrac(nodeBW)+nd.load)
			}
		}
		for c.heap.len() > 0 {
			c.heap.pop()
		}
	}
}

// BenchmarkObjstoreReshare measures the shared-egress water-filling pass
// across a large fleet — the per-barrier hot loop.
func BenchmarkObjstoreReshare(b *testing.B) {
	const n = 1024
	s := objstore.New(objstore.Default(n))
	demands := make([]float64, n)
	for i := range demands {
		s.Attach(sim.NewEngine())
		demands[i] = float64(i%17) * 16 * 1024 * 1024
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reshare(demands)
	}
}
