package fleet

import (
	"testing"

	"tango/internal/objstore"
	"tango/internal/sim"
)

// BenchmarkFleetEpoch measures one full cluster run at a small fixed
// shape — the end-to-end cost of barriers + parallel windows.
func BenchmarkFleetEpoch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := New(Config{Nodes: 4, Sessions: 32, Seed: 7, Epochs: 4, WarmEpochs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetPlace measures cluster construction with a large
// session population — dominated by the heap placement pass and the
// per-session cgroup/coordinator attach.
func BenchmarkFleetPlace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{Nodes: 64, Sessions: 4096, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjstoreReshare measures the shared-egress water-filling pass
// across a large fleet — the per-barrier hot loop.
func BenchmarkObjstoreReshare(b *testing.B) {
	const n = 1024
	s := objstore.New(objstore.Default(n))
	demands := make([]float64, n)
	for i := range demands {
		s.Attach(sim.NewEngine())
		demands[i] = float64(i%17) * 16 * 1024 * 1024
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reshare(demands)
	}
}
