// Package fleet scales the single-node Tango stack to an N-node cluster
// backed by a shared remote object store (internal/objstore). Each node
// is a full single-node deployment — its own sim engine, local SSD (the
// L2 ephemeral tier), blkio controller, weight coordinator, and
// resilience control plane — and the cluster coordinator ties them
// together with three barrier-time mechanisms:
//
//   - interference-aware placement: incoming (and rebalanced) sessions
//     go to the node with the lowest predicted load, where the per-node
//     L3 demand forecast reuses the DFT estimator the single-node
//     controller uses for interference prediction;
//   - fault rebalancing: fault.NodeKill events in the plan take nodes
//     out of service at epoch barriers; their sessions restart cold on
//     the survivors (ephemeral L2 does not outlive the node), and when
//     the node revives, planned migrations move sessions back, draining
//     dirty L2 state into the store and restoring it on the new node;
//   - shared-egress shaping: the store's cluster-wide egress is water-
//     filled across per-node demand forecasts every epoch, granting each
//     node's store frontend a bandwidth share (device.SetShare).
//
// Time advances in epochs. Within an epoch, every node's engine runs its
// window independently — internal/runpool executes the windows with any
// worker width — and all cross-node state (placement, migration, egress
// shares, ledger harvesting) mutates only at the sequential barrier
// between windows, in node-index order. That split is the determinism
// contract: same-seed runs are byte-identical at any -parallel width.
//
// A node killed mid-run abandons its engine wholesale: session steps
// parked mid-transfer on its devices are never resumed (their goroutines
// leak until process exit, bounded by kills × sessions-per-node), and a
// revived node is rebuilt from scratch with an empty L2 — exactly the
// semantics of losing the machine.
package fleet

import (
	"fmt"
	"slices"
	"strings"

	"tango/internal/container"
	"tango/internal/coordinator"
	"tango/internal/device"
	"tango/internal/dftestim"
	"tango/internal/fault"
	"tango/internal/objstore"
	"tango/internal/resil"
	"tango/internal/runpool"
	"tango/internal/sim"
	"tango/internal/tokenctl"
	"tango/internal/trace"
)

const mb = 1024 * 1024

// Config sizes one cluster run.
type Config struct {
	Nodes    int   // simulated nodes (>= 1)
	Sessions int   // sessions placed across the fleet (>= 1)
	Seed     int64 // drives session parameter generation
	// EpochSec is the epoch length in virtual seconds and every
	// session's analysis period: one step per session per epoch
	// (default 60, the paper's period).
	EpochSec float64
	// Epochs is the number of epochs to run (default 8).
	Epochs int
	// WarmEpochs are leading epochs excluded from violation counting and
	// throughput summaries while L2 warms from the store. Zero means the
	// default (2, clamped to Epochs-1 on short runs); a negative value
	// means no warm epochs at all.
	WarmEpochs int
	// Store overrides the object-store parameters (zero Name: sized by
	// objstore.Default(Nodes)).
	Store objstore.Params
	// Plan is a fault plan. NodeKill events (target "node<i>") are
	// interpreted by the cluster coordinator at epoch barriers; device
	// faults are armed on every node's local devices; other kinds are
	// ignored at fleet scope.
	Plan *fault.Plan
	// Trace receives barrier-time cluster events (KindPlace,
	// KindMigrate, KindEgress, KindFault). Session steps do not emit —
	// windows run in parallel and the recorder's lock order would not be
	// deterministic. May be nil.
	Trace *trace.Recorder
	// Control selects each node's weight-control mode: the central
	// coordinator (default), decentralized token buckets, or hybrid —
	// token buckets with a coordinator-style resync every 5 epochs (see
	// internal/tokenctl). The mode survives node kills: a rebuilt node
	// gets a fresh controller of the same mode.
	Control tokenctl.Mode
	// SlidingDFT enables the per-node demand estimators' opt-in
	// sliding-DFT mode: the spectrum advances incrementally with each
	// harvested epoch and the forecast refits every epoch (the default
	// mode fits once and extrapolates). Off by default — the incremental
	// summation order differs from the batch FFT, so cluster output is
	// not byte-identical to the default mode, though still deterministic
	// for a given seed at any -parallel width (the mode survives node
	// kills: rebuilt nodes inherit it).
	SlidingDFT bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Sessions == 0 {
		c.Sessions = c.Nodes * 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.EpochSec == 0 {
		c.EpochSec = 60
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	switch {
	case c.WarmEpochs < 0:
		c.WarmEpochs = 0
	case c.WarmEpochs == 0:
		c.WarmEpochs = 2
		if c.WarmEpochs >= c.Epochs {
			c.WarmEpochs = c.Epochs - 1
		}
	}
	if c.Store.Name == "" {
		c.Store = objstore.Default(c.Nodes)
	}
	return c
}

func (c Config) validate() error {
	if c.Nodes < 1 || c.Sessions < 1 {
		return fmt.Errorf("fleet: need at least one node and one session (%d/%d)", c.Nodes, c.Sessions)
	}
	if c.EpochSec <= 0 || c.Epochs < 1 || c.WarmEpochs < 0 || c.WarmEpochs >= c.Epochs {
		return fmt.Errorf("fleet: bad epoch shape (len %g, %d epochs, %d warm)",
			c.EpochSec, c.Epochs, c.WarmEpochs)
	}
	return nil
}

// Report is the outcome of one cluster run.
type Report struct {
	Nodes    int
	Sessions int
	Epochs   int

	// EpochMBps is the aggregate delivered session throughput per epoch
	// (MB/s, bytes counted at step completion).
	EpochMBps []float64
	// AggMBps is the mean over measured (post-warm) epochs.
	AggMBps float64
	// Violations counts session steps (post-warm) that exceeded the
	// period; ViolNodes counts nodes with at least one.
	Violations int
	ViolNodes  int
	// SkippedSteps counts steps not issued because the session's
	// previous step was still in flight (overrun back-pressure).
	SkippedSteps int
	// Migrations counts session moves (cold restarts after a kill plus
	// planned drain/restore moves); Kills counts nodes taken out.
	Migrations int
	Kills      int
	// Store is the harvested object-store ledger; StoreCost its dollar
	// cost.
	Store     objstore.Stats
	StoreCost float64
	// RecoveryFrac compares mean post-first-kill throughput to the mean
	// measured throughput before it (1 when the plan kills nothing).
	RecoveryFrac float64
	// Tokens aggregates the per-node token controllers' ledger traffic
	// (zero in central mode; counters on killed nodes die with them).
	Tokens tokenctl.Stats
}

// TotalsLine renders the one-line cluster summary the CLIs print.
func (r *Report) TotalsLine() string {
	return fmt.Sprintf(
		"cluster totals: %d nodes, %d sessions: agg %.1f MB/s, %d bound violations (%d nodes), %d migrations, %d kills, egress %s GB / ingress %s GB (%d reqs, $%.4f), recovery %.0f%%",
		r.Nodes, r.Sessions, r.AggMBps, r.Violations, r.ViolNodes, r.Migrations, r.Kills,
		objstore.FmtGB(r.Store.EgressBytes), objstore.FmtGB(r.Store.IngressBytes),
		r.Store.Requests, r.StoreCost, 100*r.RecoveryFrac)
}

// node is one fleet member: a full single-node stack plus the cluster
// coordinator's per-node bookkeeping. Killing the node drops the whole
// struct's engine-bound state; revival rebuilds it.
type node struct {
	idx  int
	name string

	cn    *container.Node
	ssd   *device.Device
	rem   *objstore.Remote
	alloc *coordinator.Allocator // central mode (nil otherwise)
	tok   *tokenctl.Controller   // tokens/hybrid mode (nil in central)
	rc    *resil.Controller
	kObj  *resil.Key

	est       *dftestim.Estimator
	demandSum float64 // observed L3 bytes/s, summed over epochs
	demandN   int

	sessions []*session // owned sessions, id-sorted
	load     float64    // Σ session step-cost (placement score term)

	alive     bool
	killUntil float64

	// measured mirrors the current epoch's measured flag (published at
	// the barrier, read by step procs inside the window); draining tells
	// parked step procs to exit at end of run; procs tracks every step
	// proc spawned on this node's engine so the drain can wake them.
	measured bool
	draining bool
	procs    []*sim.Proc

	// per-epoch accumulators; reset at each barrier. Written only from
	// this node's engine context (the parallel window) or the barrier.
	demandBytes float64 // bytes actually pulled from the store this epoch
	stepBytes   float64 // session bytes delivered this epoch
	viol        int
	skips       int
	weightErrs  int
}

// Cluster is an N-node fleet bound to one object store. Construct with
// New, run with Run; a Cluster is single-use.
type Cluster struct {
	cfg   Config
	store *objstore.Store
	nodes []*node
	sess  []*session
	rec   *trace.Recorder

	planApplied []bool // per plan event

	kills      int
	migrations int
	skips      int
	violTotal  int
	violByNode []int // cumulative per node index; survives node rebuilds
	epochMBps  []float64
	killEpoch  int // first epoch with a kill; -1 = none

	demandScratch []float64
	heap          placer
	tasks         []*runpool.Task[error] // per-epoch window tasks, reused
	// topoDirty is set when the alive set changes (kill, revive) and
	// cleared once settle has fully rebalanced: in a steady no-fault run
	// settle never fires and migrations stay at zero.
	topoDirty bool
}

// New builds the cluster: the store, the nodes, and the session
// population (parameters drawn seed-deterministically), and places every
// session by predicted interference. It returns an error on a bad
// config or plan.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Plan != nil {
		if err := cfg.Plan.Validate(); err != nil {
			return nil, err
		}
	}
	c := &Cluster{
		cfg:        cfg,
		store:      objstore.New(cfg.Store),
		rec:        cfg.Trace,
		killEpoch:  -1,
		violByNode: make([]int, cfg.Nodes),
		epochMBps:  make([]float64, 0, cfg.Epochs),
		tasks:      make([]*runpool.Task[error], 0, cfg.Nodes),
	}
	if cfg.Plan != nil {
		c.planApplied = make([]bool, len(cfg.Plan.Events))
	}
	c.nodes = make([]*node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = c.buildNode(i, true)
	}
	c.sess = genSessions(cfg.Sessions, cfg.Seed, cfg.EpochSec, cfg.Store.NodeBandwidth)
	c.place(c.sess, 0, "arrival")
	return c, nil
}

// buildNode constructs (or, with attach=false, rebuilds after a kill)
// the engine-bound state of node i.
func (c *Cluster) buildNode(i int, attach bool) *node {
	nd := &node{idx: i, name: fmt.Sprintf("node%d", i), alive: true}
	nd.cn = container.NewNode(nd.name)
	nd.ssd = nd.cn.MustAddDevice(device.SSD("ssd"))
	if attach {
		nd.rem = c.store.Attach(nd.cn.Engine())
	} else {
		nd.rem = c.store.Detach(i, nd.cn.Engine())
	}
	nd.rc = resil.New(nd.cn.Engine(), resil.Options{})
	nd.kObj = nd.rc.Key(resil.KeyFleetReadObjstore)
	if c.cfg.Control == tokenctl.ModeCentral {
		nd.alloc = coordinator.New()
		nd.alloc.SetResil(nd.rc)
	} else {
		var topts tokenctl.Options
		if c.cfg.Control == tokenctl.ModeHybrid {
			topts.EpochSec = 5 * c.cfg.EpochSec
		}
		nd.tok = tokenctl.New(nd.cn.Engine().Now, topts)
		nd.tok.SetResil(nd.rc)
	}
	nd.est = dftestim.NewEstimator()
	nd.est.Sliding = c.cfg.SlidingDFT
	if c.cfg.Plan != nil && attach {
		c.armDeviceFaults(nd)
	}
	return nd
}

// armDeviceFaults arms the plan's device-fault events on one node's
// local devices (every node sees the same local-fault schedule; node
// kills are handled by the cluster, everything else is skipped). Armed
// once at construction — a revived node does not replay old faults.
func (c *Cluster) armDeviceFaults(nd *node) {
	var sub fault.Plan
	for _, e := range c.cfg.Plan.Events {
		if e.Kind.DeviceFault() && nd.cn.Device(e.Target) != nil {
			sub.Events = append(sub.Events, e)
		}
	}
	if len(sub.Events) == 0 {
		return
	}
	inj := fault.NewInjector(nd.cn, nil, &sub)
	if err := inj.Arm(); err != nil {
		panic(err) // unreachable: targets checked above
	}
}

// predictFrac forecasts the node's next-epoch store demand as a fraction
// of its frontend bandwidth: the DFT forecast once fitted, the running
// mean before that, and "everything" for a node with no history (cold
// nodes want the largest share to warm up).
func (nd *node) predictFrac(nodeBW float64) float64 {
	switch {
	case nd.est.Ready():
		v := nd.est.PredictNext()
		if v < 0 {
			v = 0
		}
		return v / nodeBW
	case nd.demandN > 0:
		return nd.demandSum / float64(nd.demandN) / nodeBW
	default:
		return 1
	}
}

// Run executes the configured epochs and returns the report. Single
// use: a finished cluster holds drained engines.
func (c *Cluster) Run() (*Report, error) {
	cfg := c.cfg
	nodeBW := cfg.Store.NodeBandwidth
	lastEnd := 0.0
	for e := 0; e < cfg.Epochs; e++ {
		t0 := float64(e) * cfg.EpochSec
		end := t0 + cfg.EpochSec

		// ---- barrier: cluster mutation, node-index order ----
		c.applyPlan(e, t0)
		if c.topoDirty {
			c.settle(t0)
		}
		c.reshare(e, nodeBW)
		measured := e >= cfg.WarmEpochs
		for _, nd := range c.nodes {
			if nd.alive {
				c.scheduleSteps(nd, t0, measured)
			}
		}

		// ---- parallel: per-node windows, any worker width ----
		tasks := c.tasks[:0]
		for _, nd := range c.nodes {
			if !nd.alive {
				continue
			}
			eng := nd.cn.Engine()
			tasks = append(tasks, runpool.Submit(nd.name, func() error {
				return eng.Run(end)
			}))
		}
		for _, t := range tasks {
			if err := t.Wait(); err != nil {
				return nil, err
			}
		}

		// ---- barrier: harvest, node-index order ----
		c.harvest(e)
		lastEnd = end
	}
	if err := c.drainProcs(lastEnd); err != nil {
		return nil, err
	}
	return c.report(), nil
}

// drainProcs wakes every parked step proc on the alive nodes so its
// goroutine exits: without persistent procs the goroutine count equalled
// steps and self-drained; with them it equals sessions and needs this
// farewell wake. Procs mid-transfer past the final epoch either no-op
// the Wake (awaiting a resume already committed) or re-park in the
// transfer's suspend loop when woken (the flow never completes) — the
// same bounded leak the seed had for overrunning steps (and for killed
// nodes' engines).
func (c *Cluster) drainProcs(end float64) error {
	for _, nd := range c.nodes {
		if !nd.alive || len(nd.procs) == 0 {
			continue
		}
		nd.draining = true
		eng := nd.cn.Engine()
		for _, p := range nd.procs {
			eng.Wake(p)
		}
		if err := eng.Run(end); err != nil {
			return err
		}
	}
	return nil
}

// applyPlan interprets the fault plan at the barrier opening epoch e:
// kills whose time has come take their node out and restart its
// sessions cold on the survivors; nodes whose kill window has closed
// are rebuilt empty.
func (c *Cluster) applyPlan(epoch int, t0 float64) {
	if c.cfg.Plan == nil {
		return
	}
	for i, ev := range c.cfg.Plan.Events {
		if c.planApplied[i] || ev.Kind != fault.NodeKill || ev.At > t0 {
			continue
		}
		c.planApplied[i] = true
		idx, ok := nodeIndex(ev.Target)
		if !ok || idx < 0 || idx >= len(c.nodes) || !c.nodes[idx].alive {
			c.emit(t0, trace.KindFault, "skip node-kill node=%s (no such live node)", ev.Target)
			continue
		}
		nd := c.nodes[idx]
		nd.alive = false
		nd.killUntil = ev.At + ev.Duration
		c.kills++
		c.topoDirty = true
		if c.killEpoch < 0 {
			c.killEpoch = epoch
		}
		orphans := nd.sessions
		nd.sessions = nil
		nd.load = 0
		for _, s := range orphans {
			// The node is gone: in-flight steps are abandoned with it,
			// and the L2 working set is lost — the session restarts cold.
			s.busy = false
			s.resident = 0
			s.restore = 0
			s.node = -1
			s.cg = nil
			s.tb = nil // the bucket died with the node's controller
			s.migrations++
			c.migrations++
		}
		c.emit(t0, trace.KindFault, "node-kill node=%s sessions=%d until=%g", nd.name, len(orphans), nd.killUntil)
		c.place(orphans, t0, "cold")
	}
	for i, nd := range c.nodes {
		if !nd.alive && nd.killUntil <= t0 {
			c.nodes[i] = c.buildNode(i, false)
			c.topoDirty = true
			c.emit(t0, trace.KindFault, "node-revive node=%s", c.nodes[i].name)
		}
	}
}

// nodeIndex parses a "node<i>" target.
func nodeIndex(name string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(name, "node%d", &i); err != nil {
		return 0, false
	}
	return i, true
}

// place assigns the given sessions (id order) to alive nodes by
// predicted interference: each session goes to the node minimizing
// forecast store-demand fraction plus the load already placed on it,
// ties broken by node index. Heap-based, so placing the whole fleet's
// session population is O(S log N).
func (c *Cluster) place(list []*session, t float64, why string) {
	if len(list) == 0 {
		return
	}
	nodeBW := c.cfg.Store.NodeBandwidth
	c.heap.reset(len(c.nodes))
	for _, nd := range c.nodes {
		if nd.alive {
			c.heap.push(nd.idx, nd.predictFrac(nodeBW)+nd.load)
		}
	}
	if c.heap.len() == 0 {
		panic("fleet: no alive nodes to place on")
	}
	for _, s := range list {
		idx, score := c.heap.pop()
		nd := c.nodes[idx]
		c.attach(nd, s)
		c.heap.push(idx, score+s.cost)
	}
	for _, nd := range c.nodes {
		sortSessions(nd.sessions)
	}
	if c.rec != nil { // guard: the variadic emit boxes its args
		c.emit(t, trace.KindPlace, "placed=%d reason=%s alive=%d", len(list), why, c.aliveCount())
	}
}

// attach binds a session to a node: cgroup, coordinator weight, and the
// ownership links placement and stepping run on.
func (c *Cluster) attach(nd *node, s *session) {
	s.node = nd.idx
	cg := nd.cn.Cgroups().Lookup(s.name)
	if cg == nil {
		cg = nd.cn.Cgroups().MustCreate(s.name)
	}
	s.cg = cg
	if nd.tok != nil {
		tb, err := nd.tok.Attach(s.name, cg)
		if err != nil {
			panic(err) // unreachable: sessions detach before re-attaching
		}
		s.tb = tb
	} else {
		if err := nd.alloc.Attach(s.name, cg); err != nil {
			panic(err) // unreachable: sessions detach before re-attaching
		}
		if _, err := nd.alloc.Request(s.name, s.weight); err != nil {
			// A faulted weight write: the coordinator re-applies on the next
			// rebalance; the session runs at its previous weight meanwhile.
			nd.weightErrs++
		}
	}
	nd.sessions = append(nd.sessions, s)
	nd.load += s.cost
	// Rebind the persistent step machinery to this node: scheduleSteps
	// spawns the proc directly at its first step instant and wakes it at
	// each later one, inserting exactly one resume event per step at the
	// arm instant — the queue slot the old Spawn-per-step pattern's arm
	// event occupied, which is the byte-identity contract with it. A proc
	// left parked on a previous node stays there until that node drains.
	epochSec := c.cfg.EpochSec
	s.proc = nil
	s.stepFn = func(p *sim.Proc) { nd.runSession(p, s, epochSec) }
}

// detach unbinds a session from its current node (planned migrations
// only — killed nodes drop their whole allocator).
func (c *Cluster) detach(nd *node, s *session) {
	if nd.tok != nil {
		nd.tok.Detach(s.tb)
		s.tb = nil
	} else {
		nd.alloc.Detach(s.name)
	}
	kept := nd.sessions[:0]
	for _, o := range nd.sessions {
		if o != s {
			kept = append(kept, o)
		}
	}
	nd.sessions = kept
	nd.load -= s.cost
	s.node = -1
	s.cg = nil
	// The parked proc (and its step closure) belong to the old node's
	// engine; attach on the destination rebuilds them. The old proc exits
	// at that node's drain.
	s.proc = nil
	s.stepFn = nil
}

// settle rebalances session counts across alive nodes at a barrier:
// when the spread between the most and least loaded nodes exceeds one
// session (a revived node coming back empty, survivors overloaded after
// a kill), sessions migrate from the top to the bottom through the
// object store — dirty L2 state drains into the store at the source and
// the moved working set is restored from the store on the destination's
// L2 before its next step. Busy sessions (mid-step) do not move. In
// steady state the spread stays within one and nothing migrates.
func (c *Cluster) settle(t float64) {
	alive := c.aliveCount()
	if alive < 2 {
		return
	}
	total := 0
	for _, nd := range c.nodes {
		if nd.alive {
			total += len(nd.sessions)
		}
	}
	target := (total + alive - 1) / alive
	moved, drained, restored := 0, 0.0, 0.0
	blocked := false
	for {
		var src, dst *node
		for _, nd := range c.nodes { // index order: deterministic ties
			if !nd.alive {
				continue
			}
			if src == nil || len(nd.sessions) > len(src.sessions) {
				src = nd
			}
			if dst == nil || len(nd.sessions) < len(dst.sessions) {
				dst = nd
			}
		}
		if src == nil || dst == nil || src == dst ||
			len(src.sessions)-len(dst.sessions) <= 1 || len(src.sessions) <= target {
			break
		}
		// Highest-id idle session moves (newest work is cheapest to
		// shift; busy steps pin their session to the engine running it).
		var s *session
		for i := len(src.sessions) - 1; i >= 0; i-- {
			if !src.sessions[i].busy {
				s = src.sessions[i]
				break
			}
		}
		if s == nil {
			// Every candidate on the most loaded node is mid-step; try
			// again at the next barrier.
			blocked = true
			break
		}
		// Drain: dirty fraction of the resident set flushes store-side.
		// Restore: the moved working set re-fetches from the store on
		// the destination before the session's next step.
		drain := s.resident * s.dirtyFrac
		src.rem.AccountPut(drain)
		drained += drain
		s.restore += s.resident
		restored += s.resident
		s.resident = 0
		c.detach(src, s)
		c.attach(dst, s)
		s.migrations++
		c.migrations++
		moved++
	}
	c.topoDirty = blocked
	if moved > 0 {
		for _, nd := range c.nodes {
			sortSessions(nd.sessions)
		}
		c.emit(t, trace.KindMigrate, "moved=%d drained=%.0fMB restore=%.0fMB target=%d",
			moved, drained/mb, restored/mb, target)
	}
}

// reshare water-fills the store's shared egress across per-node demand
// forecasts (with 25% headroom) and emits the grant summary.
func (c *Cluster) reshare(epoch int, nodeBW float64) {
	if cap(c.demandScratch) < len(c.nodes) {
		c.demandScratch = make([]float64, len(c.nodes))
	}
	demands := c.demandScratch[:len(c.nodes)]
	for i, nd := range c.nodes {
		if !nd.alive {
			demands[i] = -1 // out of service: no grant, frontend untouched
			continue
		}
		demands[i] = nd.predictFrac(nodeBW) * nodeBW * 1.25
	}
	grants := c.store.Reshare(demands)
	if c.rec == nil {
		return // guard: the grant-summary scan and emit box/format per epoch
	}
	lo, hi := 0.0, 0.0
	first := true
	for i, g := range grants {
		if demands[i] < 0 {
			continue
		}
		if first || g < lo {
			lo = g
		}
		if first || g > hi {
			hi = g
		}
		first = false
	}
	c.emit(float64(epoch)*c.cfg.EpochSec, trace.KindEgress,
		"epoch=%d grants MB/s min=%.1f max=%.1f total=%.1f", epoch, lo/mb, hi/mb, c.cfg.Store.TotalEgress/mb)
}

// harvest folds per-node epoch accumulators into the cluster totals at
// the closing barrier, observes each node's store demand into its DFT
// estimator, and drains the store ledgers — all in node-index order.
func (c *Cluster) harvest(epoch int) {
	var bytes float64
	for _, nd := range c.nodes {
		if !nd.alive {
			continue
		}
		obs := nd.demandBytes / c.cfg.EpochSec
		nd.est.Observe(obs)
		nd.demandSum += obs
		nd.demandN++
		if !nd.est.Ready() && nd.est.Samples() >= 4 {
			if err := nd.est.Fit(); err != nil {
				panic(err) // unreachable: sample count checked
			}
		} else if c.cfg.SlidingDFT && nd.est.Ready() {
			// Sliding mode keeps the spectrum current per observation, so
			// a per-epoch refit is O(Window) and the forecast tracks demand
			// shifts instead of extrapolating the first fit forever.
			if err := nd.est.Fit(); err != nil {
				panic(err) // unreachable: Ready implies enough samples
			}
		}
		bytes += nd.stepBytes
		c.violTotal += nd.viol
		c.violByNode[nd.idx] += nd.viol
		c.skips += nd.skips
		nd.demandBytes, nd.stepBytes, nd.viol, nd.skips = 0, 0, 0, 0
	}
	c.epochMBps = append(c.epochMBps, bytes/c.cfg.EpochSec/mb)
	c.store.Harvest()
}

// report finalizes the run summary.
func (c *Cluster) report() *Report {
	cfg := c.cfg
	r := &Report{
		Nodes:        cfg.Nodes,
		Sessions:     cfg.Sessions,
		Epochs:       cfg.Epochs,
		EpochMBps:    c.epochMBps,
		Violations:   c.violTotal,
		SkippedSteps: c.skips,
		Migrations:   c.migrations,
		Kills:        c.kills,
		Store:        c.store.Totals(),
		StoreCost:    c.store.Cost(),
		RecoveryFrac: 1,
	}
	for _, v := range c.violByNode {
		if v > 0 {
			r.ViolNodes++
		}
	}
	for _, nd := range c.nodes {
		if nd.tok == nil {
			continue
		}
		st := nd.tok.Stats()
		r.Tokens.Borrows += st.Borrows
		r.Tokens.Repays += st.Repays
		r.Tokens.Recalls += st.Recalls
		r.Tokens.Writes += st.Writes
	}
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	r.AggMBps = mean(c.epochMBps[cfg.WarmEpochs:])
	if c.killEpoch > cfg.WarmEpochs {
		// A kill at or before the warm-up boundary leaves no measured
		// pre-kill baseline; RecoveryFrac stays at its default 1.
		pre := c.epochMBps[cfg.WarmEpochs:c.killEpoch]
		post := c.epochMBps[c.killEpoch:]
		if len(pre) > 0 && len(post) > 0 && mean(pre) > 0 {
			r.RecoveryFrac = mean(post) / mean(pre)
		}
	}
	return r
}

func (c *Cluster) aliveCount() int {
	n := 0
	for _, nd := range c.nodes {
		if nd.alive {
			n++
		}
	}
	return n
}

func (c *Cluster) emit(t float64, kind, format string, args ...any) {
	c.rec.Emit(t, "fleet", kind, format, args...)
}

func sortSessions(ss []*session) {
	// ids are unique, so this order is total and stability is moot;
	// slices.SortFunc avoids sort.Slice's reflect-based interface boxing.
	slices.SortFunc(ss, func(a, b *session) int { return a.id - b.id })
}

// placer is a tiny binary min-heap over (node index, score), ties broken
// by lowest index — the deterministic placement queue. Scratch slices
// are reused across barriers.
type placer struct {
	idx   []int
	score []float64 // by heap position, parallel to idx
}

func (h *placer) reset(capHint int) {
	if cap(h.idx) < capHint {
		h.idx = make([]int, 0, capHint)
		h.score = make([]float64, 0, capHint)
	}
	h.idx = h.idx[:0]
	h.score = h.score[:0]
}

func (h *placer) len() int { return len(h.idx) }

func (h *placer) less(a, b int) bool {
	if h.score[a] != h.score[b] {
		return h.score[a] < h.score[b]
	}
	return h.idx[a] < h.idx[b]
}

func (h *placer) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.score[a], h.score[b] = h.score[b], h.score[a]
}

//tango:hotpath
func (h *placer) push(idx int, score float64) {
	h.idx = append(h.idx, idx)
	h.score = append(h.score, score)
	i := len(h.idx) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

//tango:hotpath
func (h *placer) pop() (int, float64) {
	idx, score := h.idx[0], h.score[0]
	last := len(h.idx) - 1
	h.swap(0, last)
	h.idx = h.idx[:last]
	h.score = h.score[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(l, small) {
			small = l
		}
		if r < last && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return idx, score
}

// Describe renders a short per-node table (first max rows) for the CLI.
func (c *Cluster) Describe(max int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %9s %10s\n", "node", "alive", "sessions", "load")
	for i, nd := range c.nodes {
		if i >= max {
			fmt.Fprintf(&b, "... (%d more nodes)\n", len(c.nodes)-max)
			break
		}
		fmt.Fprintf(&b, "%-8s %-6t %9d %10.4f\n", nd.name, nd.alive, len(nd.sessions), nd.load)
	}
	return b.String()
}
