package runpool

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the pool temporarily at width n.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Workers()
	SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestResultsCollectInSubmissionOrder(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			const n = 50
			tasks := make([]*Task[int], n)
			for i := 0; i < n; i++ {
				i := i
				tasks[i] = Submit(fmt.Sprintf("job%d", i), func() int { return i * i })
			}
			for i, task := range tasks {
				if got := task.Wait(); got != i*i {
					t.Fatalf("w=%d task %d = %d, want %d", w, i, got, i*i)
				}
			}
		})
	}
}

func TestSequentialModeRunsInlineAtWait(t *testing.T) {
	withWorkers(t, 1, func() {
		var order []int
		a := Submit("a", func() int { order = append(order, 1); return 1 })
		b := Submit("b", func() int { order = append(order, 2); return 2 })
		// Nothing may run before Wait in sequential mode.
		if len(order) != 0 {
			t.Fatalf("jobs ran before Wait: %v", order)
		}
		// Out-of-order Wait still runs each job on this goroutine, at
		// Wait time — execution order is collection order.
		if b.Wait() != 2 || a.Wait() != 1 {
			t.Fatal("wrong results")
		}
		if order[0] != 2 || order[1] != 1 {
			t.Fatalf("inline execution order %v, want [2 1]", order)
		}
	})
}

func TestNestedSubmissionCompletes(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		withWorkers(t, w, func() {
			// Outer jobs each fan out inner jobs and wait on them; the
			// claim-or-wait rule must keep this deadlock-free at any width.
			outer := make([]*Task[int], 6)
			for i := range outer {
				i := i
				outer[i] = Submit(fmt.Sprintf("outer%d", i), func() int {
					inner := make([]*Task[int], 4)
					for j := range inner {
						j := j
						inner[j] = Submit(fmt.Sprintf("inner%d.%d", i, j), func() int { return i*10 + j })
					}
					sum := 0
					for _, task := range inner {
						sum += task.Wait()
					}
					return sum
				})
			}
			for i, task := range outer {
				want := 4*i*10 + 6
				if got := task.Wait(); got != want {
					t.Fatalf("w=%d outer %d = %d, want %d", w, i, got, want)
				}
			}
		})
	}
}

func TestJobPanicResurfacesAtWait(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			task := Submit("boom", func() int { panic("exploded") })
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("w=%d: panic did not resurface", w)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "boom") || !strings.Contains(msg, "exploded") {
					t.Fatalf("panic message %q lacks job name or cause", msg)
				}
			}()
			task.Wait()
		})
	}
}

func TestEachJobRunsExactlyOnce(t *testing.T) {
	withWorkers(t, 4, func() {
		const n = 200
		var runs atomic.Int32
		tasks := make([]*Task[struct{}], n)
		for i := 0; i < n; i++ {
			tasks[i] = Submit("once", func() struct{} {
				runs.Add(1)
				return struct{}{}
			})
		}
		for _, task := range tasks {
			task.Wait()
		}
		if got := runs.Load(); got != n {
			t.Fatalf("ran %d jobs, want %d", got, n)
		}
	})
}

func TestSetWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
