// Package runpool is the deterministic parallel scenario runner behind
// tangobench: a bounded worker pool whose jobs are independent simulation
// scenarios (each owning its own sim.Engine, trace.Recorder, and staged
// store), submitted as futures and collected in submission order.
//
// The determinism contract (docs/performance.md):
//
//   - Jobs must be independent: no shared mutable state beyond
//     synchronized, value-deterministic caches (e.g. the harness's
//     single-flight hierarchy memo). Each job builds everything else it
//     touches.
//   - Results are collected by Wait in submission order at the call site,
//     so tables, JSON suites, and byte-match determinism tests render
//     identically whatever the interleaving of job execution.
//   - With Workers() == 1 nothing runs concurrently at all: Submit only
//     records the job and Wait executes it inline on the caller's
//     goroutine, reproducing the exact sequential execution order.
//
// Nested submission is safe: a job may itself Submit sub-jobs and Wait on
// them. Wait executes a still-unclaimed task inline on the waiting
// goroutine (claim-or-wait), so progress never depends on a free worker
// and the pool cannot deadlock however deep the nesting.
//
// Scenario-level workers register with par.EnterBusy while a job runs, so
// kernel-level data parallelism (par.For) inside a job divides the
// remaining GOMAXPROCS instead of oversubscribing it.
package runpool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tango/internal/par"
)

// Task states, transitioned with atomic CAS so exactly one goroutine
// (a pool worker or the waiter) executes the job.
const (
	statePending int32 = iota
	stateRunning
	stateDone
)

// runnable is the untyped view of a Task the queue holds.
type runnable interface {
	// tryRun claims and executes the task; it reports false if another
	// goroutine had already claimed it.
	tryRun() bool
}

// Task is a submitted job: a future resolved by Wait.
type Task[T any] struct {
	name  string
	fn    func() T
	state atomic.Int32
	done  chan struct{}
	res   T
	panic any // non-nil if fn panicked; re-raised by Wait
}

// tryRun claims the task and runs it on the calling goroutine.
func (t *Task[T]) tryRun() bool {
	if !t.state.CompareAndSwap(statePending, stateRunning) {
		return false
	}
	par.EnterBusy()
	defer func() {
		par.ExitBusy()
		if r := recover(); r != nil {
			t.panic = r
		}
		t.state.Store(stateDone)
		close(t.done)
	}()
	t.res = t.fn()
	return true
}

// Wait blocks until the task has run and returns its result. If the task
// is still unclaimed, Wait executes it inline on the calling goroutine —
// this is what makes nested submission deadlock-free and what makes the
// single-worker pool identical to sequential execution. A panic raised by
// the job resurfaces from Wait on the waiting goroutine.
func (t *Task[T]) Wait() T {
	if !t.tryRun() {
		<-t.done
	}
	if t.panic != nil {
		panic(fmt.Sprintf("runpool: job %q: %v", t.name, t.panic))
	}
	return t.res
}

// Name returns the label the task was submitted under.
func (t *Task[T]) Name() string { return t.name }

// pool is the process-wide queue and worker accounting. Workers are
// spawned lazily up to the configured width and exit when the queue
// drains, so an idle pool holds no goroutines.
var pool struct {
	mu      sync.Mutex
	queue   []runnable // guarded by mu; FIFO of submitted, possibly claimed tasks
	workers int        // guarded by mu; configured width (0 = GOMAXPROCS)
	live    int        // guarded by mu; running worker goroutines
}

// SetWorkers configures the pool width: the maximum number of jobs
// executing concurrently (not counting Wait running a job inline).
// n <= 0 resets to GOMAXPROCS. Width 1 disables pooled execution
// entirely: jobs run inline at Wait, in collection order.
//
// Call between runs, not while jobs are in flight: tangobench sets it
// once from -parallel before submitting anything.
func SetWorkers(n int) {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	pool.workers = n
}

// Workers reports the configured pool width.
func Workers() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if pool.workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return pool.workers
}

// Submit registers a job and returns its future. With pool width 1 the
// job is only recorded — Wait runs it inline, preserving the sequential
// execution order exactly. Otherwise the job is queued and a worker is
// spawned if the pool is below width.
func Submit[T any](name string, fn func() T) *Task[T] {
	t := &Task[T]{name: name, fn: fn, done: make(chan struct{})}
	pool.mu.Lock()
	width := pool.workers
	if width == 0 {
		width = runtime.GOMAXPROCS(0)
	}
	if width <= 1 {
		pool.mu.Unlock()
		return t
	}
	pool.queue = append(pool.queue, t)
	spawn := pool.live < width
	if spawn {
		pool.live++
	}
	pool.mu.Unlock()
	if spawn {
		go work()
	}
	return t
}

// work drains the queue, claiming tasks FIFO, and exits when empty.
func work() {
	for {
		pool.mu.Lock()
		if len(pool.queue) == 0 {
			pool.live--
			pool.mu.Unlock()
			return
		}
		t := pool.queue[0]
		pool.queue[0] = nil
		pool.queue = pool.queue[1:]
		pool.mu.Unlock()
		t.tryRun() // false when the submitter already ran it inline via Wait
	}
}
