package cache

import (
	"math"
	"math/rand"
	"testing"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/sim"
	"tango/internal/staging"
	"tango/internal/tensor"
)

func field(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			t.Set(math.Sin(float64(r)/3)*math.Cos(float64(c)/5)+0.1*rng.NormFloat64(), r, c)
		}
	}
	return t
}

// rig is a staged two-tier setup: level-0 augmentation on the HDD (the
// only cacheable level), everything else on the SSD.
type rig struct {
	eng      *sim.Engine
	ssd, hdd *device.Device
	h        *refactor.Hierarchy
	store    *staging.Store
}

func newRig(t *testing.T, ssdCap float64) *rig {
	t.Helper()
	eng := sim.NewEngine()
	ssd := device.New(eng, device.Params{
		Name: "ssd", PeakBandwidth: 500 * device.MB, MinEfficiency: 1, Capacity: ssdCap,
	})
	hdd := device.New(eng, device.Params{
		Name: "hdd", PeakBandwidth: 100 * device.MB, MinEfficiency: 1,
	})
	h, err := refactor.Decompose(field(65, 3), refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := staging.Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, ssd: ssd, hdd: hdd, h: h, store: st}
}

// hddLevelRange returns the cursor range [lo, hi) of the HDD-resident
// level-0 entries and the level's entry count.
func (r *rig) hddLevelRange() (lo, hi, entries int) {
	for _, seg := range r.h.Segments(0, r.h.TotalEntries()) {
		n := seg.End - seg.Start
		if seg.Level == 0 {
			return lo, lo + n, n
		}
		lo += n
	}
	return 0, 0, 0
}

func TestPrefetchThenServe(t *testing.T) {
	rg := newRig(t, 0)
	c := New(rg.store, rg.ssd, Config{CapacityMB: 64})
	rg.store.SetCache(c)
	lo, hi, entries := rg.hddLevelRange()
	if entries == 0 {
		t.Fatal("no HDD-resident level")
	}

	// Nothing staged yet: Serve misses.
	if dev, n := c.Serve(0, 0, entries); dev != nil || n != 0 {
		t.Fatalf("cold cache served %d entries", n)
	}
	if c.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1", c.Stats().Misses)
	}

	cg := blkio.NewCgroup("bg")
	rg.eng.Spawn("prefetch", func(p *sim.Proc) {
		c.PrefetchTo(p, cg, hi, nil)
	})
	if err := rg.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := c.CachedEntries(); got != entries {
		t.Fatalf("cached %d entries, want %d", got, entries)
	}
	if c.Used() <= 0 || c.Used() > c.Capacity() {
		t.Fatalf("used %v out of (0, %v]", c.Used(), c.Capacity())
	}
	// The staged bytes moved HDD -> SSD through the background cgroup.
	if cg.BytesRead() <= 0 || cg.BytesWritten() != cg.BytesRead() {
		t.Fatalf("background flow read %v written %v", cg.BytesRead(), cg.BytesWritten())
	}

	dev, n := c.Serve(0, 0, entries)
	if dev != rg.ssd || n != entries {
		t.Fatalf("Serve = (%v, %d), want (ssd, %d)", dev, n, entries)
	}
	st := c.Stats()
	if st.Hits != 1 || st.HitBytes <= 0 {
		t.Fatalf("hits=%d hitBytes=%v", st.Hits, st.HitBytes)
	}
	_ = lo

	// Close releases everything and detaches service.
	used := rg.ssd.Used()
	c.Close()
	if rg.ssd.Used() >= used {
		t.Fatal("Close did not release device capacity")
	}
	if _, n := c.Serve(0, 0, entries); n != 0 {
		t.Fatal("closed cache still serving")
	}
}

// The store read path must split a segment into a fast-tier prefix and a
// home-tier remainder, and end-to-end reads must get faster.
func TestStoreReadsThroughCache(t *testing.T) {
	rg := newRig(t, 0)
	lo, hi, entries := rg.hddLevelRange()
	cg := blkio.NewCgroup("fg")

	readAll := func() (hddBytes, ssdBytes float64) {
		var ts *staging.TierStats
		rg.eng.Spawn("reader", func(p *sim.Proc) {
			ts = rg.store.ReadRange(p, cg, 0, rg.h.TotalEntries())
		})
		if err := rg.eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return ts.BytesOn(rg.hdd), ts.BytesOn(rg.ssd)
	}

	coldHDD, _ := readAll()
	if coldHDD <= 0 {
		t.Fatal("expected HDD traffic without a cache")
	}

	c := New(rg.store, rg.ssd, Config{CapacityMB: 64})
	rg.store.SetCache(c)
	// Stage only half the level: reads split cache prefix / HDD rest.
	half := lo + entries/2
	rg.eng.Spawn("prefetch", func(p *sim.Proc) {
		c.PrefetchTo(p, cg, half, nil)
	})
	if err := rg.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	warmHDD, warmSSD := readAll()
	if warmHDD >= coldHDD {
		t.Fatalf("cached read still moved %v HDD bytes (cold %v)", warmHDD, coldHDD)
	}
	if warmSSD <= 0 {
		t.Fatal("no SSD traffic on cached read")
	}
	_ = hi
}

func TestEvictionPrefersLowReuseAndKeepsMandatory(t *testing.T) {
	rg := newRig(t, 0)
	c := New(rg.store, rg.ssd, Config{CapacityMB: 64})
	lo, hi, entries := rg.hddLevelRange()
	c.SetMandatory(lo + entries/4) // first quarter is bound-mandated

	cg := blkio.NewCgroup("bg")
	rg.eng.Spawn("prefetch", func(p *sim.Proc) {
		c.PrefetchTo(p, cg, hi, nil)
	})
	if err := rg.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	r := c.runForLevel(0)
	if r == nil || r.prefix == 0 {
		t.Fatal("nothing staged")
	}

	// The mandatory prefix multiplies the keep-score 8x.
	sticky := c.score(r)
	c.SetMandatory(0)
	loose := c.score(r)
	if sticky != 8*loose {
		t.Fatalf("mandatory stickiness: score %v vs %v", sticky, loose)
	}

	// A run nobody requests decays toward zero reuse and scores lower.
	before := c.score(r)
	for i := 0; i < 20; i++ {
		c.EndStep() // no requests recorded
	}
	if after := c.score(r); after >= before {
		t.Fatalf("reuse did not decay: %v -> %v", before, after)
	}

	// makeRoom never evicts to fit lower-score data.
	if c.makeRoom(c.Capacity(), r) {
		t.Fatal("makeRoom evicted the only (equal-score) run for itself")
	}
}

// When the fast tier cannot hold base + cache headroom, the cache is the
// side that shrinks: staged base representations are never displaced.
func TestCapacityPressureShrinksCacheNotBase(t *testing.T) {
	rg := newRig(t, 0)
	// A fresh rig with a tight SSD: room for the staged data plus ~1 MB.
	tight := rg.ssd.Used() + 1*device.MB
	rg2 := newRig(t, tight)

	c := New(rg2.store, rg2.ssd, Config{CapacityMB: 64})
	if c.Capacity() > 1*device.MB {
		t.Fatalf("capacity %v not clamped to free space", c.Capacity())
	}
	if c.Stats().Shrinks != 1 {
		t.Fatalf("shrinks = %d, want 1 (construction clamp)", c.Stats().Shrinks)
	}
	baseUsed := rg2.ssd.Used()

	// Another tenant grabs the remaining headroom; the next prefetch
	// must shrink the cache instead of touching staged reservations.
	if err := rg2.ssd.Reserve(1 * device.MB); err != nil {
		t.Fatal(err)
	}
	_, hi, _ := rg2.hddLevelRange()
	cg := blkio.NewCgroup("bg")
	rg2.eng.Spawn("prefetch", func(p *sim.Proc) {
		c.PrefetchTo(p, cg, hi, nil)
	})
	if err := rg2.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != c.Used() {
		t.Fatalf("capacity %v != used %v after device-full shrink", c.Capacity(), c.Used())
	}
	if c.Stats().Shrinks != 2 {
		t.Fatalf("shrinks = %d, want 2", c.Stats().Shrinks)
	}
	if got := rg2.ssd.Used() - c.Used() - 1*device.MB; got != baseUsed {
		t.Fatalf("staged reservations changed: %v != %v", got, baseUsed)
	}
}
