package cache

import (
	"tango/internal/blkio"
	"tango/internal/container"
	"tango/internal/device"
	"tango/internal/resil"
	"tango/internal/sim"
	"tango/internal/trace"
)

// PrefetchStats counts the prefetcher's decisions.
type PrefetchStats struct {
	Ticks         int // wakeups considered
	NotReady      int // skipped: estimator has no fitted model yet
	Paused        int // skipped: observed bandwidth below PauseFrac × forecast
	Busy          int // skipped: forecast below LowWaterFrac × model peak
	Runs          int // ticks that staged at least one chunk
	Aborted       int // staging runs cut short by a mid-run pause
	WeightRetries int // floor-weight writes rejected by an injected fault
	WeightSkips   int // floor-weight writes suppressed by an open resil breaker
}

// Prefetcher drives the cache from inside the simulation: it wakes every
// Interval, re-asserts its background cgroup's floor weight and byte-rate
// caps (cross-layer: the prefetch flow must never steal bandwidth from
// foreground analytics), and stages upcoming augmentation only during
// predicted low-interference windows. The decision inputs are injected
// as closures so the package stays independent of the controller.
type Prefetcher struct {
	// Forecast returns the next-step capacity-tier bandwidth forecast,
	// the fitted model's peak, and whether a model is ready.
	Forecast func() (next, peak float64, ok bool)
	// Observed returns the most recent measured capacity-tier bandwidth
	// (0 when nothing has been measured yet).
	Observed func() float64
	// Target returns the global cursor to stage up to (the controller's
	// planned cursors over the lookahead horizon).
	Target func() int
	// Done reports that the owning session has exited; the prefetcher
	// stops at the next tick.
	Done func() bool
	// Resil, when non-nil, routes the heal loop's floor-weight writes
	// through the prefetch.weight.floor policy (breaker-gated per
	// cgroup: a wedged controller file is probed on the breaker's
	// schedule instead of hammered every tick) and the staging reads
	// through prefetch.stage (deadlined and budgeted). Set before Run.
	Resil *resil.Controller

	cache  *Cache
	cfg    Config
	stats  PrefetchStats
	kFloor *resil.Key
}

// NewPrefetcher builds a prefetcher over the cache, sharing its Config.
func NewPrefetcher(c *Cache, cfg Config) *Prefetcher {
	return &Prefetcher{cache: c, cfg: cfg.withDefaults()}
}

// Stats returns a snapshot of the decision counters.
func (pf *Prefetcher) Stats() PrefetchStats { return pf.stats }

// paused reports whether observed bandwidth has fallen below the trusted
// fraction of the forecast — the quiet window the model promised is not
// materializing, so staging must stop.
func (pf *Prefetcher) paused(forecast float64) bool {
	if pf.Observed == nil {
		return false
	}
	obs := pf.Observed()
	return obs > 0 && forecast > 0 && obs < pf.cfg.PauseFrac*forecast
}

func (pf *Prefetcher) emit(kind, format string, args ...any) {
	pf.cache.emit(kind, format, args...)
}

// Run is the container body of the background prefetch process. It
// returns (ending the container) once Done reports the session exited.
func (pf *Prefetcher) Run(c *container.Container, p *sim.Proc) {
	cg := c.Cgroup()
	bps := float64(pf.cfg.BpsLimitMB) * device.MB
	if pf.Resil != nil {
		pf.kFloor = pf.Resil.Key(resil.KeyPrefetchWeightFloor)
		pf.cache.SetResil(pf.Resil)
	}
	for {
		p.Sleep(pf.cfg.Interval)
		if pf.Done != nil && pf.Done() {
			return
		}
		pf.stats.Ticks++
		// Re-assert the floor weight and throttles every tick: an
		// injected weight-write fault may have swallowed an earlier
		// write, and a throttle-reset fault may have cleared the caps.
		// MinWeight pins the flow to the smallest proportional share the
		// controller can grant, so foreground weight boosts always win.
		// Through the control plane the write is breaker-gated: a wedged
		// cgroup is probed on the breaker's half-open schedule instead
		// of re-asserted blindly every tick.
		if pf.kFloor != nil {
			switch res := pf.kFloor.Weight(cg, blkio.MinWeight); {
			case res.Skipped:
				pf.stats.WeightSkips++
			case !res.OK:
				pf.stats.WeightRetries++
			}
		} else if err := cg.TrySetWeight(blkio.MinWeight); err != nil {
			pf.stats.WeightRetries++
		}
		cg.SetReadBpsLimit(bps)
		cg.SetWriteBpsLimit(bps)
		if pf.Forecast == nil || pf.Target == nil {
			pf.stats.NotReady++
			continue
		}
		next, peak, ok := pf.Forecast()
		if !ok {
			pf.stats.NotReady++
			continue
		}
		if pf.paused(next) {
			pf.stats.Paused++
			pf.emit(trace.KindPrefetch, "paused: observed %.0f B/s below %.0f%% of forecast %.0f B/s",
				pf.Observed(), pf.cfg.PauseFrac*100, next)
			continue
		}
		if next < pf.cfg.LowWaterFrac*peak {
			pf.stats.Busy++
			continue // not a quiet window: stay off the device
		}
		staged, aborted := pf.cache.PrefetchTo(p, cg, pf.Target(), func() bool { return !pf.paused(next) })
		if aborted {
			pf.stats.Aborted++
		}
		if staged > 0 {
			pf.stats.Runs++
			pf.emit(trace.KindPrefetch, "staged %.0f B (cache %.0f/%.0f B, %d entries)",
				staged, pf.cache.Used(), pf.cache.Capacity(), pf.cache.CachedEntries())
		}
	}
}
