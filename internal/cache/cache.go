// Package cache implements a capacity-bounded fast-tier augmentation
// cache plus a predictive prefetcher (see prefetch.go). The cache holds
// prefixes of capacity-tier augmentation levels on an SSD-class device so
// that Algorithm 1's bucket retrievals can be served at fast-tier
// bandwidth during high-interference windows. Admission is driven by the
// prefetcher during forecast quiet windows; eviction is cost-benefit
// aware — a cached run's keep-score is its expected reuse times the
// per-byte cost of refetching it from its home tier, with
// prescribed-bound (mandatory) prefixes made sticky — so coarse,
// always-needed levels stay resident while speculative fine-level data
// is shed first.
//
// The cache is a pure sim-side construct: it runs on the session's
// engine, reserves real capacity on the cache device (never displacing
// staged base representations — when the device cannot grant more, the
// cache shrinks), and is consulted by the staging read paths through the
// staging.CacheView interface.
package cache

import (
	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/resil"
	"tango/internal/sim"
	"tango/internal/staging"
	"tango/internal/trace"
)

// Config parameterizes the cache and its prefetcher. Zero values take the
// defaults noted per field.
type Config struct {
	// CapacityMB bounds the cache footprint on the fast tier (default
	// 512). The effective capacity is additionally clamped to the free
	// capacity of the cache device at construction, and shrinks at
	// runtime if the device fills up — the cache never displaces staged
	// data.
	CapacityMB int
	// ChunkMB is the transfer granularity of prefetch staging and the
	// trim granularity of eviction (default 32). Smaller chunks abort
	// faster when interference returns mid-transfer.
	ChunkMB int
	// ReuseDecay is the EWMA factor folding each step's observed request
	// fraction into a run's expected-reuse score (default 0.3).
	ReuseDecay float64

	// Interval is the prefetcher's tick period in virtual seconds
	// (default 15: four decision points per default 60 s analytics step).
	Interval float64
	// LowWaterFrac gates prefetching to predicted quiet windows: the
	// prefetcher stages only while the forecast bandwidth is at least
	// this fraction of the model's peak (default 0.75).
	LowWaterFrac float64
	// PauseFrac pauses staging when the observed capacity-tier bandwidth
	// drops below this fraction of the forecast — the forecast is wrong,
	// so the quiet window cannot be trusted (default 0.9).
	PauseFrac float64
	// BpsLimitMB caps the background flow's read and write byte rate
	// (blkio.throttle) in MB/s (default 32). Together with the
	// floor-pinned weight this keeps the prefetch flow from degrading
	// foreground bandwidth.
	BpsLimitMB int
	// Lookahead is how many future steps of planned cursors the
	// prefetch target covers (default 2).
	Lookahead int

	// Trace, when non-nil, receives cache hit/miss/evict and prefetch
	// events; Source labels them (the session name).
	Trace  *trace.Recorder
	Source string
}

func (c Config) withDefaults() Config {
	if c.CapacityMB == 0 {
		c.CapacityMB = 512
	}
	if c.ChunkMB == 0 {
		c.ChunkMB = 32
	}
	if c.ReuseDecay == 0 {
		c.ReuseDecay = 0.3
	}
	if c.Interval == 0 {
		c.Interval = 15
	}
	if c.LowWaterFrac == 0 {
		c.LowWaterFrac = 0.75
	}
	if c.PauseFrac == 0 {
		c.PauseFrac = 0.9
	}
	if c.BpsLimitMB == 0 {
		c.BpsLimitMB = 32
	}
	if c.Lookahead == 0 {
		c.Lookahead = 2
	}
	if c.Source == "" {
		c.Source = "cache"
	}
	return c
}

// DefaultConfig returns the defaults spelled out (useful for callers that
// tweak one field).
func DefaultConfig() Config { return Config{}.withDefaults() }

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits         int     // segment reads served (at least partly) from the cache
	Misses       int     // segment reads that (at least partly) went to the home tier
	HitBytes     float64 // bytes served from the cache device
	StagedBytes  float64 // bytes transferred home tier -> cache by prefetching
	EvictedBytes float64 // bytes trimmed by cost-benefit eviction
	Shrinks      int     // capacity reductions forced by device pressure
	StageFailures int    // staging reads abandoned by the resil policy
}

// run tracks the cached prefix of one augmentation level whose home tier
// is not the cache device. Entries are level-local indices; [0, prefix)
// is resident on the cache device.
type run struct {
	level       int
	home        *device.Device
	globalStart int     // cursor position where this level's entries begin
	total       int     // entries at this level
	prefix      int     // cached entries [0, prefix)
	bytes       float64 // reserved bytes backing the prefix (scaled)
	reuse       float64 // EWMA of per-step requested fraction of the level

	reqEntries int // entries requested this step (reset by EndStep)
}

// Cache is the fast-tier augmentation cache. It is driven entirely from
// sim context (single-threaded engine), so it needs no locking; the lint
// suite keeps it that way.
type Cache struct {
	cfg       Config
	h         *refactor.Hierarchy
	dev       *device.Device
	scale     float64
	runs      []*run // cursor order (coarse level first)
	capacity  float64
	used      float64
	mandatory int
	closed    bool
	stats     Stats
	kStage    *resil.Key // prefetch.stage handle (nil = plain reads)
}

// SetResil routes the staging reads PrefetchTo issues against the home
// tier through the prefetch.stage policy: deadlined, budgeted, and
// breaker-gated, so a faulted capacity tier pauses background staging
// instead of wedging the prefetch process. Pass nil to detach.
func (c *Cache) SetResil(rc *resil.Controller) {
	if rc == nil {
		c.kStage = nil
		return
	}
	c.kStage = rc.Key(resil.KeyPrefetchStage)
}

// New builds a cache over the staged hierarchy, holding data on dev (the
// fast tier). Only augmentation levels homed on other devices are
// cacheable. The requested capacity is clamped to dev's free capacity —
// staged base representations are never displaced; if the tier cannot
// hold base plus the full cache headroom, the cache is the side that
// shrinks.
func New(store *staging.Store, dev *device.Device, cfg Config) *Cache {
	if dev == nil {
		panic("cache: nil device")
	}
	cfg = cfg.withDefaults()
	h := store.Hierarchy()
	c := &Cache{
		cfg:      cfg,
		h:        h,
		dev:      dev,
		scale:    store.Scale(),
		capacity: float64(cfg.CapacityMB) * device.MB,
	}
	if cap := dev.Params().Capacity; cap > 0 {
		if free := cap - dev.Used(); c.capacity > free {
			c.capacity = free
			if c.capacity < 0 {
				c.capacity = 0
			}
			c.stats.Shrinks++
			c.emit(trace.KindCacheEvict, "capacity clamped to %.0f B free on %s (staged data keeps priority)", c.capacity, dev.Name())
		}
	}
	g := 0
	for _, seg := range h.Segments(0, h.TotalEntries()) {
		if home := store.DeviceForLevel(seg.Level); home != dev {
			c.runs = append(c.runs, &run{
				level:       seg.Level,
				home:        home,
				globalStart: g,
				total:       seg.End - seg.Start,
				reuse:       1, // optimistic: every level starts fully reusable
			})
		}
		g += seg.End - seg.Start
	}
	return c
}

// Device returns the device holding cached data.
func (c *Cache) Device() *device.Device { return c.dev }

// Capacity returns the current (possibly shrunk) byte budget.
func (c *Cache) Capacity() float64 { return c.capacity }

// Used returns the bytes currently resident.
func (c *Cache) Used() float64 { return c.used }

// CachedEntries returns the total augmentation entries resident.
func (c *Cache) CachedEntries() int {
	n := 0
	for _, r := range c.runs {
		n += r.prefix
	}
	return n
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetMandatory marks the cursor prefix the prescribed error bound
// requires: cached runs inside it are sticky under eviction (they will be
// re-requested every step by construction).
func (c *Cache) SetMandatory(cursor int) { c.mandatory = cursor }

func (c *Cache) emit(kind, format string, args ...any) {
	c.cfg.Trace.Emit(c.dev.Engine().Now(), c.cfg.Source, kind, format, args...)
}

// Serve implements staging.CacheView: it reports how many leading entries
// of the level-local range [start, end) are resident, and on which
// device. It also does the per-request bookkeeping (hit/miss counters,
// reuse statistics), so staging calls it exactly once per segment read.
func (c *Cache) Serve(level, start, end int) (*device.Device, int) {
	if c.closed || end <= start {
		return nil, 0
	}
	r := c.runForLevel(level)
	if r == nil {
		return nil, 0 // level homed on the cache device already
	}
	r.reqEntries += end - start
	served := 0
	if start < r.prefix {
		served = min(end, r.prefix) - start
	}
	if served > 0 {
		bytes := float64(c.h.LevelBytes(level, start, start+served)) * c.scale
		c.stats.Hits++
		c.stats.HitBytes += bytes
		c.emit(trace.KindCacheHit, "level=%d entries=[%d,%d) served=%d bytes=%.0f", level, start, end, served, bytes)
	}
	if served < end-start {
		c.stats.Misses++
		c.emit(trace.KindCacheMiss, "level=%d entries=[%d,%d) uncached=%d", level, start, end, end-start-served)
	}
	if served == 0 {
		return nil, 0
	}
	return c.dev, served
}

// EndStep folds the step's request pattern into each run's expected-reuse
// EWMA. The controller calls it once per analysis step.
func (c *Cache) EndStep() {
	for _, r := range c.runs {
		if r.total == 0 {
			continue
		}
		req := float64(r.reqEntries) / float64(r.total)
		if req > 1 {
			req = 1
		}
		r.reuse = (1-c.cfg.ReuseDecay)*r.reuse + c.cfg.ReuseDecay*req
		r.reqEntries = 0
	}
}

func (c *Cache) runForLevel(level int) *run {
	for _, r := range c.runs {
		if r.level == level {
			return r
		}
	}
	return nil
}

// score is the cost-benefit keep-score of a run, per byte: expected reuse
// times the per-byte cost of refetching from the home tier. Runs inside
// the mandatory (prescribed-bound) prefix are strongly sticky — they are
// re-read every step no matter what the interference does.
func (c *Cache) score(r *run) float64 {
	s := (0.1 + r.reuse) / r.home.Params().PeakBandwidth
	if r.globalStart < c.mandatory {
		s *= 8
	}
	return s
}

// chunkEntries converts the byte chunk size to an entry count for one
// run, using the level's mean entry encoding size.
func (c *Cache) chunkEntries(r *run) int {
	if r.total == 0 {
		return 1
	}
	avg := float64(c.h.LevelBytes(r.level, 0, r.total)) * c.scale / float64(r.total)
	if avg <= 0 {
		return r.total
	}
	n := int(float64(c.cfg.ChunkMB) * device.MB / avg)
	if n < 1 {
		n = 1
	}
	return n
}

// makeRoom evicts low-score tails until `need` more bytes fit, never
// trimming a run that scores at least as high as the incoming one.
// Returns false when the bytes cannot be freed.
func (c *Cache) makeRoom(need float64, incoming *run) bool {
	for c.used+need > c.capacity {
		var victim *run
		worst := 0.0
		for _, r := range c.runs {
			if r == incoming || r.prefix == 0 {
				continue
			}
			if s := c.score(r); victim == nil || s < worst {
				victim, worst = r, s
			}
		}
		if victim == nil || worst >= c.score(incoming) {
			return false
		}
		newPrefix := victim.prefix - c.chunkEntries(victim)
		if newPrefix < 0 {
			newPrefix = 0
		}
		freed := float64(c.h.LevelBytes(victim.level, newPrefix, victim.prefix)) * c.scale
		victim.prefix = newPrefix
		victim.bytes -= freed
		c.used -= freed
		c.dev.Release(freed)
		c.stats.EvictedBytes += freed
		c.emit(trace.KindCacheEvict, "level=%d trimmed to %d entries (freed %.0f B, score=%.3g)", victim.level, newPrefix, freed, worst)
	}
	return true
}

// shrink reduces the capacity to the current footprint after the device
// refused a reservation: something else (staged data) claimed the space,
// and staged data always wins over cache headroom.
func (c *Cache) shrink() {
	c.capacity = c.used
	c.stats.Shrinks++
	c.emit(trace.KindCacheEvict, "device %s full: capacity shrunk to %.0f B", c.dev.Name(), c.capacity)
}

// PrefetchTo stages augmentation up to the global cursor `target` into
// the cache, transferring home-tier bytes chunk by chunk under cg (the
// background cgroup). keepGoing, when non-nil, is polled between chunks
// so the prefetcher can abort mid-run when interference returns. Returns
// the bytes staged and whether the run was aborted.
func (c *Cache) PrefetchTo(p *sim.Proc, cg *blkio.Cgroup, target int, keepGoing func() bool) (staged float64, aborted bool) {
	if c.closed {
		return 0, false
	}
	for _, r := range c.runs {
		want := target - r.globalStart
		if want > r.total {
			want = r.total
		}
		for r.prefix < want {
			next := r.prefix + c.chunkEntries(r)
			if next > want {
				next = want
			}
			bytes := float64(c.h.LevelBytes(r.level, r.prefix, next)) * c.scale
			if bytes > 0 {
				if !c.makeRoom(bytes, r) {
					return staged, false // capacity-bound: higher-value data stays
				}
				if err := c.dev.Reserve(bytes); err != nil {
					// The device filled up underneath us (more data was
					// staged): the cache shrinks rather than displacing it.
					c.shrink()
					return staged, false
				}
				if c.kStage != nil {
					res := c.kStage.Read(p, r.home, cg, bytes)
					if !res.OK {
						// The home tier is faulted or the stage budget ran
						// out: give the reservation back and end this run —
						// the next quiet-window tick resumes from r.prefix.
						c.dev.Release(bytes)
						c.stats.StageFailures++
						return staged, true
					}
				} else {
					r.home.Read(p, cg, bytes)
				}
				c.dev.Write(p, cg, bytes)
				c.used += bytes
				r.bytes += bytes
				c.stats.StagedBytes += bytes
				staged += bytes
			}
			r.prefix = next
			if keepGoing != nil && !keepGoing() {
				return staged, true
			}
		}
	}
	return staged, false
}

// Close releases every reservation and detaches the cache from service:
// Serve misses and PrefetchTo is a no-op afterwards. Idempotent; called
// when the owning session exits (ephemeral data is erased).
func (c *Cache) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, r := range c.runs {
		if r.bytes > 0 {
			c.dev.Release(r.bytes)
			r.bytes = 0
			r.prefix = 0
		}
	}
	c.used = 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
