package abplot

import (
	"math"
	"testing"
	"testing/quick"
)

const mb = 1024 * 1024

func TestDefaultMatchesPaper(t *testing.T) {
	p := Default()
	if p.BWLow != 30*mb || p.BWHigh != 120*mb {
		t.Fatalf("default = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeEndpoints(t *testing.T) {
	p := Plot{BWLow: 30, BWHigh: 120}
	if p.Degree(0) != 0 || p.Degree(30) != 0 {
		t.Fatal("below/at BWLow must be 0")
	}
	if p.Degree(120) != 1 || p.Degree(1e9) != 1 {
		t.Fatal("at/above BWHigh must be 1")
	}
	if got := p.Degree(75); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("midpoint = %v", got)
	}
}

func TestDegreeLinearInterior(t *testing.T) {
	p := Plot{BWLow: 30, BWHigh: 120}
	k1, b1 := p.Coefficients()
	for bw := 31.0; bw < 120; bw += 7 {
		if got, want := p.Degree(bw), k1*bw+b1; math.Abs(got-want) > 1e-12 {
			t.Fatalf("Degree(%v) = %v, want linear %v", bw, got, want)
		}
	}
}

func TestDegreeBoundedAndMonotoneProperty(t *testing.T) {
	p := Plot{BWLow: 25, BWHigh: 140}
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		da, db := p.Degree(a), p.Degree(b)
		if da < 0 || da > 1 || db < 0 || db > 1 {
			return false
		}
		if a < b && da > db {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadThresholds(t *testing.T) {
	for _, p := range []Plot{
		{BWLow: -1, BWHigh: 10},
		{BWLow: 10, BWHigh: 10},
		{BWLow: 20, BWHigh: 10},
	} {
		if p.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", p)
		}
	}
}
