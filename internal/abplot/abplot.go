// Package abplot implements the paper's augmentation–bandwidth plot
// (§III-C step 2): a linear map from the estimated available bandwidth
// B̃W_s to the degree of augmentation in [0,1].
//
//	B̃W_s <= BWLow  -> 0 (heavily loaded: no optional augmentation)
//	B̃W_s >= BWHigh -> 1 (lightly loaded: full augmentation)
//	otherwise       -> linear interpolation between the two
package abplot

import "fmt"

// Plot is an augmentation-bandwidth plot with the two thresholds in
// bytes/sec. The paper's defaults are BWLow = 30 MB/s, BWHigh = 120 MB/s
// (§IV-A).
type Plot struct {
	BWLow  float64
	BWHigh float64
}

// Default returns the paper's configuration.
func Default() Plot {
	const mb = 1024 * 1024
	return Plot{BWLow: 30 * mb, BWHigh: 120 * mb}
}

// Validate reports configuration errors.
func (p Plot) Validate() error {
	if p.BWLow < 0 || p.BWHigh <= p.BWLow {
		return fmt.Errorf("abplot: need 0 <= BWLow < BWHigh, have %v, %v", p.BWLow, p.BWHigh)
	}
	return nil
}

// Degree returns the augmentation degree abplot(B̃W) ∈ [0,1] for an
// estimated bandwidth.
func (p Plot) Degree(bw float64) float64 {
	switch {
	case bw <= p.BWLow:
		return 0
	case bw >= p.BWHigh:
		return 1
	default:
		return (bw - p.BWLow) / (p.BWHigh - p.BWLow)
	}
}

// Coefficients returns the (k1, b1) of the paper's linear form
// abplot(BW) = k1·BW + b1 on the interior interval.
func (p Plot) Coefficients() (k1, b1 float64) {
	k1 = 1 / (p.BWHigh - p.BWLow)
	b1 = -p.BWLow * k1
	return k1, b1
}
