package core

import (
	"fmt"
	"math"

	"tango/internal/blkio"
	"tango/internal/cache"
	"tango/internal/container"
	"tango/internal/dftestim"
	"tango/internal/errmetric"
	"tango/internal/refactor"
	"tango/internal/resil"
	"tango/internal/sim"
	"tango/internal/staging"
	"tango/internal/tokenctl"
	"tango/internal/trace"
	"tango/internal/weightfn"
)

// BucketStat records the retrieval of one augmentation bucket Aug_{ε_m}:
// its accuracy level, cursor range, the blkio weight in force (0 when the
// policy does not adjust weights), and its start time and duration. The
// Fig 13 latency and Fig 15 weight-timeline experiments read these.
type BucketStat struct {
	Bound    float64 // accuracy level being elevated toward (NaN if none)
	From, To int
	Weight   int // 0 = weight not adjusted (default share)
	Start    float64
	Elapsed  float64
}

// StepStats records one analysis step.
type StepStats struct {
	Step      int
	Start     float64
	IOTime    float64 // total retrieval time (base + augmentation + probe)
	BaseTime  float64 // time to retrieve the base representation
	Bytes     float64 // total bytes retrieved
	SlowBW    float64 // measured capacity-tier bandwidth sample (B/s)
	Predicted float64 // estimator prediction used (0 before the model is ready)
	Degree    float64 // abplot degree applied (1 when not adapting)
	Cursor    int     // augmentation entries retrieved (achieved, not planned)
	Retries   int     // read requests retried after transient errors
	Degraded  bool    // optional augmentation shed after exhausting retries
	Buckets   []BucketStat

	// Fast-tier cache effect on this step (zero without a cache).
	CacheHits     int     // segment reads served at least partly from cache
	CacheMisses   int     // segment reads that touched the home tier
	CacheHitBytes float64 // bytes served from the cache device
}

// TimeToBound returns the elapsed time from step start until the bucket
// elevating to `bound` finished retrieving, or NaN if the step never
// reached that accuracy. This is Fig 13's "latency to retrieve the
// augmentation that elevates the accuracy to ε".
func (st StepStats) TimeToBound(bound float64) float64 {
	for _, b := range st.Buckets {
		if b.Bound == bound {
			return b.Start + b.Elapsed - st.Start
		}
	}
	return math.NaN()
}

// Session runs one data-analytics container under a policy over a staged
// hierarchy.
type Session struct {
	Name   string
	Config Config

	store  *staging.Store
	wf     *weightfn.Func
	wfSize *weightfn.Func // cardinality-only pricing (StorageOnly policy)
	est    *dftestim.Estimator

	stats    []StepStats
	cont     *container.Container
	stopped  bool
	finished bool // set when the step loop exits (stops the prefetcher)

	cache *cache.Cache
	pf    *cache.Prefetcher

	regimeStreak  int  // consecutive mispredicted steps (regime detector)
	weightPending bool // a weight write failed; re-apply on next success

	tb *tokenctl.Bucket // this session's bucket (nil without Config.Tokens)

	kWeight *resil.Key // blkio.weight.apply handle (nil without Config.Resil)
}

// NewSession validates the configuration against the staged hierarchy and
// calibrates the weight function from the hierarchy's ladder (§III-C: the
// extreme cardinality/accuracy/priority corners map onto the container
// weight range).
func NewSession(name string, store *staging.Store, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h := store.Hierarchy()
	if cfg.ErrorControl {
		if _, err := boundCursor(h, cfg); err != nil {
			return nil, fmt.Errorf("core: prescribed bound: %w", err)
		}
	}
	wf, err := calibrate(h, cfg)
	if err != nil {
		return nil, err
	}
	// StorageOnly prices the retrieval by size alone (the paper's
	// "weight set proportionally according to the augmentation size",
	// equal to cross-layer with cardinality only — Fig 13 note).
	sizeCfg := cfg
	sizeCfg.DisablePriorityTerm = true
	sizeCfg.DisableAccuracyTerm = true
	wfSize, err := calibrate(h, sizeCfg)
	if err != nil {
		return nil, err
	}
	est := dftestim.NewEstimator()
	est.ThreshFrac = cfg.ThreshFrac
	est.Window = cfg.Window
	est.Sliding = cfg.SlidingDFT
	return &Session{Name: name, Config: cfg, store: store, wf: wf, wfSize: wfSize, est: est}, nil
}

// calibrate solves the weight function's (k2, b2) from the hierarchy.
func calibrate(h *refactor.Hierarchy, cfg Config) (*weightfn.Func, error) {
	rungs := h.Rungs()
	bounds := h.Opts().Bounds
	cal := weightfn.Calibration{
		Metric:      h.Opts().Metric,
		MaxPriority: weightfn.PriorityHigh,
		MinPriority: weightfn.PriorityLow,
	}
	if len(bounds) > 0 {
		cal.LoosestBound = bounds[0]
		cal.TightestBound = bounds[len(bounds)-1]
	} else if h.Opts().Metric == errmetric.PSNR {
		cal.LoosestBound, cal.TightestBound = 20, 100
	} else {
		cal.LoosestBound, cal.TightestBound = 0.5, 1e-6
	}
	maxCard, minCard := 1.0, math.Inf(1)
	for _, r := range rungs {
		c := float64(r.Cardinality)
		if c > maxCard {
			maxCard = c
		}
		if c > 0 && c < minCard {
			minCard = c
		}
	}
	if total := float64(h.TotalEntries()); total > maxCard {
		maxCard = total
	}
	if math.IsInf(minCard, 1) {
		minCard = 1
	}
	cal.MaxCardinality = maxCard
	cal.MinCardinality = minCard
	wf, err := weightfn.New(cal)
	if err != nil {
		return nil, err
	}
	if cfg.DisablePriorityTerm {
		wf.DisablePriority()
	}
	if cfg.DisableAccuracyTerm || len(bounds) == 0 {
		// Without a ladder there is no accuracy level to price.
		wf.DisableAccuracy()
	}
	return wf, nil
}

// Stats returns the per-step records collected so far.
func (s *Session) Stats() []StepStats { return s.stats }

// Container returns the running container (nil before Launch).
func (s *Session) Container() *container.Container { return s.cont }

// Estimator exposes the session's bandwidth estimator (read-only use).
func (s *Session) Estimator() *dftestim.Estimator { return s.est }

// WeightFunc exposes the calibrated weight function.
func (s *Session) WeightFunc() *weightfn.Func { return s.wf }

// SetBound changes the prescribed error bound at runtime — the paper's
// exploratory-analytics scenario, where the accuracy a user needs becomes
// clear only during post-processing and can be elevated on the fly. The
// bound must be one of the hierarchy's ladder bounds; it takes effect at
// the next step. Must be called from sim context.
func (s *Session) SetBound(bound float64) error {
	cfg := s.Config
	cfg.Bound = bound
	if _, err := boundCursor(s.store.Hierarchy(), cfg); err != nil {
		return err
	}
	s.Config.ErrorControl = true
	s.Config.Bound = bound
	if s.cache != nil {
		s.cache.SetMandatory(s.mandatoryCursor())
	}
	return nil
}

// Stop makes the session exit after the step currently in progress (the
// analysis campaign was cut short); the ephemeral staging is still
// released. Must be called from sim context (another process or event
// callback on the same engine).
func (s *Session) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Session) Stopped() bool { return s.stopped }

// Launch starts the analytics container on node. The container executes
// Config.Steps steps, each period seconds apart (start-to-start), and
// records StepStats.
func (s *Session) Launch(node *container.Node) error {
	if rc := s.Config.Resil; rc != nil {
		// Route the store's guarded reads/probes and this session's
		// weight writes through the resilience control plane, and give
		// its hedging decision the session's demand forecast.
		s.store.SetResil(rc)
		s.kWeight = rc.Key(resil.KeyWeightApply)
		rc.SetForecast(s.forecast)
		if s.Config.Allocator != nil {
			s.Config.Allocator.SetResil(rc)
		}
		if s.Config.Tokens != nil {
			s.Config.Tokens.SetResil(rc)
		}
	}
	cont, err := node.Launch(s.Name, func(c *container.Container, p *sim.Proc) {
		for step := 0; step < s.Config.Steps && !s.stopped; step++ {
			s.runStep(c, p, step)
		}
		s.finished = true
		if s.cache != nil {
			s.cache.Close()
		}
		s.store.Release()
		if s.Config.Allocator != nil {
			s.Config.Allocator.Detach(s.Name)
		}
		if s.Config.Tokens != nil {
			s.Config.Tokens.Detach(s.tb)
			s.tb = nil
		}
	})
	if err != nil {
		return err
	}
	s.cont = cont
	if s.Config.Allocator != nil {
		if err := s.Config.Allocator.Attach(s.Name, cont.Cgroup()); err != nil {
			return err
		}
	}
	if s.Config.Tokens != nil {
		tb, err := s.Config.Tokens.Attach(s.Name, cont.Cgroup())
		if err != nil {
			return err
		}
		s.tb = tb
	}
	if s.Config.Cache != nil {
		if err := s.launchPrefetcher(node); err != nil {
			return err
		}
	}
	return nil
}

// Cache exposes the fast-tier cache (nil unless Config.Cache is set and
// the session has been launched).
func (s *Session) Cache() *cache.Cache { return s.cache }

// Prefetcher exposes the background prefetcher (nil without a cache).
func (s *Session) Prefetcher() *cache.Prefetcher { return s.pf }

// launchPrefetcher builds the fast-tier cache over the session's store
// and starts the background prefetch container. The cache lives on the
// store's base (fastest) device; the prefetcher's decision inputs are
// wired to the session's estimator and planner so internal/cache stays
// free of controller dependencies.
func (s *Session) launchPrefetcher(node *container.Node) error {
	ccfg := *s.Config.Cache
	if ccfg.Trace == nil {
		ccfg.Trace = s.Config.Trace
	}
	if ccfg.Source == "" {
		ccfg.Source = s.Name + "-prefetch"
	}
	cc := cache.New(s.store, s.store.BaseDevice(), ccfg)
	cc.SetMandatory(s.mandatoryCursor())
	s.store.SetCache(cc)
	s.cache = cc
	pf := cache.NewPrefetcher(cc, ccfg)
	pf.Forecast = s.forecast
	if s.Config.Resil != nil {
		pf.Resil = s.Config.Resil
	}
	pf.Observed = func() float64 {
		if len(s.stats) == 0 {
			return 0
		}
		return s.stats[len(s.stats)-1].SlowBW
	}
	pf.Target = s.prefetchTarget
	pf.Done = func() bool { return s.finished }
	s.pf = pf
	_, err := node.Launch(s.Name+"-prefetch", pf.Run)
	return err
}

// forecast reports the estimator's next-window demand prediction and the
// model peak; the prefetcher times its idle-window staging off it, and
// the resilience control plane uses the same signal for its hedging
// decision (hedge inside predicted-contended windows).
func (s *Session) forecast() (next, peak float64, ok bool) {
	if !s.est.Ready() {
		return 0, 0, false
	}
	for i, n := 0, s.est.ModelLen(); i < n; i++ {
		if v := s.est.ModelAt(i); v > peak {
			peak = v
		}
	}
	return s.est.PredictNext(), peak, true
}

// prefetchTarget is the global cursor the prefetcher should stage up to:
// the maximum cursor the controller would plan over the next Lookahead
// steps, floored by the prescribed bound's rung. Mirrors planCursor.
func (s *Session) prefetchTarget() int {
	target := s.mandatoryCursor()
	if !s.est.Ready() {
		return target
	}
	h := s.store.Hierarchy()
	n := s.est.Samples()
	boost := 1.0
	if s.Config.Policy.crossLayer() {
		boost = s.weightBoost()
	}
	la := 2
	if s.Config.Cache != nil && s.Config.Cache.Lookahead > 0 {
		la = s.Config.Cache.Lookahead
	}
	for i := 0; i < la; i++ {
		deg := s.Config.Plot.Degree(s.est.Predict(n+i) * boost)
		if cur := h.CursorForFraction(deg); cur > target {
			target = cur
		}
	}
	return target
}

// mandatoryCursor is the cursor the prescribed bound requires: its
// rung's, or the curve-interpolated prefix under InterpolateBound.
func (s *Session) mandatoryCursor() int {
	if !s.Config.ErrorControl {
		return 0
	}
	cur, err := boundCursor(s.store.Hierarchy(), s.Config)
	if err != nil {
		panic(err) // validated at NewSession / SetBound
	}
	return cur
}

// boundCursor resolves cfg.Bound to a retrieval cursor. An exact ladder
// rung always wins (same cursors and byte ranges the paper's ladder
// semantics prescribe); with InterpolateBound, a bound between rungs
// falls back to the decomposition sweep's accuracy curve, landing
// between the bracketing rungs instead of snapping up to the tighter
// one.
func boundCursor(h *refactor.Hierarchy, cfg Config) (int, error) {
	cur, err := h.CursorForBound(cfg.Bound)
	if err == nil || !cfg.InterpolateBound {
		return cur, err
	}
	return h.CursorForAccuracy(cfg.Bound)
}

// planCursor implements lines 6–7 of Algorithm 1: the augmentation degree
// from the estimated bandwidth, floored by the prescribed bound.
//
// The estimate B̃W is the default-weight share. CrossLayer plans against
// the share its elevated weight will actually earn (the paper's "retrieve
// more augmentations assisted by a higher allocation in the storage
// layer"): boosting from the default weight to w turns a share
// 100/(100+W) into w/(w+W); against one default-weight competitor that is
// a factor 2w/(w+100). We use the previous step's applied average weight
// as w (1.0 boost before any weight has been applied).
func (s *Session) planCursor(step int) (cursor int, predicted, degree float64) {
	h := s.store.Hierarchy()
	total := h.TotalEntries()
	switch s.Config.Policy {
	case NoAdapt, StorageOnly:
		return total, 0, 1
	}
	if !s.est.Ready() {
		// Early steps: retrieve fully while collecting history.
		return total, 0, 1
	}
	predicted = s.est.Predict(step)
	planBW := predicted
	if s.Config.Policy.crossLayer() {
		planBW *= s.weightBoost()
	}
	degree = s.Config.Plot.Degree(planBW)
	cursor = h.CursorForFraction(degree)
	if m := s.mandatoryCursor(); cursor < m {
		cursor = m
	}
	return cursor, predicted, degree
}

// weightBoost estimates how much more bandwidth the session's elevated
// weight earns versus the default share, from the last step's applied
// weights.
func (s *Session) weightBoost() float64 {
	if len(s.stats) == 0 {
		return 1
	}
	last := s.stats[len(s.stats)-1]
	var sum float64
	var n int
	for _, b := range last.Buckets {
		if b.Weight > 0 {
			sum += float64(b.Weight)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	w := sum / float64(n)
	return 2 * w / (w + blkio.DefaultWeight)
}

// buckets splits the retrieval [0, cursor) at rung boundaries, assigning
// each piece the accuracy level it is elevating toward (the paper's
// Aug_{ε_m} buckets).
type bucket struct {
	from, to int
	bound    float64
}

func (s *Session) buckets(cursor int) []bucket {
	h := s.store.Hierarchy()
	rungs := h.Rungs()
	var out []bucket
	prev := 0
	tightest := math.NaN()
	for _, r := range rungs {
		tightest = r.Bound
		if r.Cursor > cursor {
			// The tail below lands inside this rung's range: it is
			// partial progress toward this rung's accuracy.
			if cursor > prev {
				out = append(out, bucket{prev, cursor, r.Bound})
				prev = cursor
			}
			break
		}
		if r.Cursor > prev {
			out = append(out, bucket{prev, r.Cursor, r.Bound})
			prev = r.Cursor
		}
	}
	if cursor > prev {
		b := tightest
		if math.IsNaN(b) {
			// No ladder: price the whole stream at a nominal bound.
			if h.Opts().Metric == errmetric.PSNR {
				b = 30
			} else {
				b = 0.01
			}
		}
		out = append(out, bucket{prev, cursor, b})
	}
	return out
}

// applyWeight writes w to the container's cgroup, tolerating injected
// weight-write faults: a failed write leaves the previous weight in
// force (recorded as a recovery decision), and the first write that
// lands after a failure is recorded as the re-apply. Returns the weight
// actually in force. With the resilience control plane attached the
// write goes through the blkio.weight.apply policy instead: the breaker
// suppresses writes to a wedged cgroup until its half-open probe lands,
// and the control plane records the per-attempt timeline.
func (s *Session) applyWeight(c *container.Container, now float64, w int) int {
	if s.kWeight != nil {
		res := s.kWeight.Weight(c.Cgroup(), w)
		if !res.OK {
			s.weightPending = true
			return c.Cgroup().Weight()
		}
		s.weightPending = false
		return w
	}
	if err := c.Cgroup().TrySetWeight(w); err != nil {
		s.weightPending = true
		s.Config.Trace.Emit(now, s.Name, trace.KindRecover,
			"weight write failed (w=%d): continuing at w=%d, will re-apply", w, c.Cgroup().Weight())
		return c.Cgroup().Weight()
	}
	if s.weightPending {
		s.weightPending = false
		s.Config.Trace.Emit(now, s.Name, trace.KindRecover, "weight write recovered: re-applied w=%d", w)
	}
	return w
}

func (s *Session) runStep(c *container.Container, p *sim.Proc, step int) {
	cfg := s.Config
	start := p.Now()
	st := StepStats{Step: step, Start: start}
	var cs0 cache.Stats
	if s.cache != nil {
		cs0 = s.cache.Stats()
	}

	cursor, predicted, degree := s.planCursor(step)
	st.Cursor, st.Predicted, st.Degree = cursor, predicted, degree

	tier := &staging.TierStats{}
	notify := func(kind, msg string) { cfg.Trace.Emit(p.Now(), s.Name, kind, msg) }
	mandatory := s.mandatoryCursor()

	// Line 1: retrieve the base representation from the fastest tier.
	// The base is always mandatory, so its guarded read retries through
	// transient faults rather than failing.
	baseStats, baseOut := s.store.ReadBaseGuarded(p, c.Cgroup(), cfg.Retry, notify)
	_, st.BaseTime = baseStats.Total()
	st.Retries += baseOut.Retries
	tier.Merge(baseStats)

	// Lines 9–13: bucket-wise retrieval; CrossLayer additionally applies
	// the weight function per bucket, StorageOnly applies a single
	// size-proportional weight over the whole retrieval. The sequential
	// path reads guarded: transient read errors retry with backoff, and
	// augmentation beyond the prescribed bound degrades (is shed) once
	// the retry budget is spent. Returns false when the step degraded —
	// remaining buckets are above-bound augmentation and are skipped too.
	slow := s.store.SlowestDevice()
	readBucket := func(b bucket, weight int) bool {
		bs := BucketStat{Bound: b.bound, From: b.from, To: b.to, Weight: weight, Start: p.Now()}
		if weight > 0 {
			cfg.Trace.Emit(p.Now(), s.Name, trace.KindWeight, "w=%d bound=%g card=%d", weight, b.bound, b.to-b.from)
		}
		if cfg.ParallelTierReads {
			tier.Merge(s.store.ReadRangeParallel(p, c.Cgroup(), b.from, b.to))
			st.Cursor = b.to
		} else {
			ts, out := s.store.ReadRangeGuarded(p, c.Cgroup(), b.from, b.to, mandatory, cfg.Retry, notify)
			tier.Merge(ts)
			st.Retries += out.Retries
			st.Cursor = out.Cursor
			st.Degraded = out.Degraded
		}
		bs.Elapsed = p.Now() - bs.Start
		st.Buckets = append(st.Buckets, bs)
		cfg.Trace.Emit(p.Now(), s.Name, trace.KindBucket, "bound=%g entries=[%d,%d) took=%.3fs", b.bound, b.from, b.to, bs.Elapsed)
		return !st.Degraded
	}
	// setWeight routes through the node-level allocator when configured
	// (weight arbitration across concurrent sessions), through the
	// decentralized token controller when that mode is selected, directly
	// to the cgroup otherwise. It returns the weight actually in force.
	setWeight := func(w int) int {
		if cfg.Allocator != nil {
			granted, err := cfg.Allocator.Request(s.Name, w)
			if err != nil {
				panic(err) // attached at Launch
			}
			return granted
		}
		if cfg.Tokens != nil {
			return cfg.Tokens.Request(s.tb, w)
		}
		return s.applyWeight(c, p.Now(), w)
	}
	switch cfg.Policy {
	case NoAdapt:
		readBucket(bucket{0, cursor, math.NaN()}, 0)
	case StorageOnly:
		w := setWeight(s.wfSize.Weight(float64(cursor), 0, 1))
		readBucket(bucket{0, cursor, math.NaN()}, w)
	case AppOnly:
		for _, b := range s.buckets(cursor) {
			if !readBucket(b, 0) {
				break
			}
		}
	case CrossLayer, CrossLayerPrefetch:
		for _, b := range s.buckets(cursor) {
			card := b.to - b.from
			w := setWeight(s.wf.Weight(float64(card), b.bound, cfg.Priority))
			if !readBucket(b, w) {
				break
			}
		}
	}
	// Weight reverts to the default outside the retrieval window.
	if cfg.Policy.adjustsWeights() {
		switch {
		case cfg.Allocator != nil:
			cfg.Allocator.Release(s.Name)
		case cfg.Tokens != nil:
			cfg.Tokens.Release(s.tb)
		default:
			s.applyWeight(c, p.Now(), blkio.DefaultWeight)
		}
	}

	// Feed the estimator with the capacity-tier bandwidth at the DEFAULT
	// weight share — the quantity abplot's BW_low/BW_high thresholds
	// describe. Policies that boost their weight perceive inflated
	// bandwidth during their own reads, so they sample via a small probe
	// read issued after the weight has reverted to the default. Policies
	// that never adjust weights sample from their retrieval directly
	// (probing only when the step barely touched the capacity tier).
	weightAdjusting := cfg.Policy.adjustsWeights()
	if weightAdjusting && cfg.ProbeBytes > 0 {
		pt := s.store.Probe(p, c.Cgroup(), cfg.ProbeBytes)
		bytes, elapsed := pt.Total()
		tier.Merge(pt)
		if elapsed > 0 {
			st.SlowBW = bytes / elapsed
		}
	} else {
		if cfg.ProbeBytes > 0 && tier.BytesOn(slow) < cfg.ProbeBytes {
			tier.Merge(s.store.Probe(p, c.Cgroup(), cfg.ProbeBytes))
		}
		if slowBytes, slowTime := tier.BytesOn(slow), tier.TimeOn(slow); slowTime > 0 && slowBytes > 0 {
			st.SlowBW = slowBytes / slowTime
		}
	}
	if st.SlowBW > 0 {
		s.est.Observe(st.SlowBW)
	} else {
		// Nothing measured: repeat the last sample to keep step indexing
		// aligned (one sample per step).
		last := 0.0
		if n := s.est.Samples(); n > 0 && len(s.stats) > 0 {
			last = s.stats[len(s.stats)-1].SlowBW
		}
		st.SlowBW = last
		s.est.Observe(last)
	}
	refitted := false
	if (step+1)%cfg.RefitEvery == 0 && s.est.Samples() >= 4 {
		if err := s.est.Fit(); err != nil {
			panic(err) // unreachable: sample count checked
		}
		cfg.Trace.Emit(p.Now(), s.Name, trace.KindRefit, "samples=%d window=%d thresh=%.2f", s.est.Samples(), cfg.Window, cfg.ThreshFrac)
		refitted = true
		s.regimeStreak = 0
	}
	// Regime-change detection: a model fit against a vanished
	// interference regime (a collapsed device, churned competitors)
	// mispredicts persistently until the next periodic refit. When the
	// relative error stays above RegimeTol for RegimeRun consecutive
	// steps, refit now instead of waiting out RefitEvery.
	if cfg.RegimeRun > 0 && !refitted && st.Predicted > 0 && st.SlowBW > 0 {
		relErr := math.Abs(st.Predicted-st.SlowBW) / math.Max(st.Predicted, st.SlowBW)
		if relErr > cfg.RegimeTol {
			s.regimeStreak++
		} else {
			s.regimeStreak = 0
		}
		if s.regimeStreak >= cfg.RegimeRun && s.est.Samples() >= 4 {
			if err := s.est.Fit(); err != nil {
				panic(err) // unreachable: sample count checked
			}
			cfg.Trace.Emit(p.Now(), s.Name, trace.KindRefit,
				"regime change: relerr=%.2f for %d steps, refit (samples=%d)", relErr, s.regimeStreak, s.est.Samples())
			s.regimeStreak = 0
		}
	}

	// Fold the step's cache effect into the record and let the cache
	// update its per-run reuse statistics.
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheHits = cs.Hits - cs0.Hits
		st.CacheMisses = cs.Misses - cs0.Misses
		st.CacheHitBytes = cs.HitBytes - cs0.HitBytes
		s.cache.EndStep()
	}

	// IOTime is wall-clock retrieval time (base + buckets + probe). For
	// serial retrieval it equals the sum of device times; with parallel
	// tier reads the overlapped portion counts once.
	st.Bytes, _ = tier.Total()
	st.IOTime = p.Now() - start
	s.stats = append(s.stats, st)
	cfg.Trace.Emit(p.Now(), s.Name, trace.KindStep, "step=%d io=%.3fs bytes=%.0f cursor=%d pred=%.0f degree=%.2f",
		step, st.IOTime, st.Bytes, st.Cursor, st.Predicted, st.Degree)

	// Compute/render phase: the remainder of the period.
	if wait := cfg.Period - (p.Now() - start); wait > 0 {
		p.Sleep(wait)
	}
}
