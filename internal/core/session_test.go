package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"tango/internal/blkio"
	"tango/internal/container"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/staging"
	"tango/internal/tensor"
	"tango/internal/workload"
)

// testField builds a 513x513 analysis field — large enough that transfer
// time (not per-request latency) dominates, so interference effects are
// visible at test scale.
func testField(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	n := 513
	t := tensor.New(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := math.Sin(6*math.Pi*float64(r)/float64(n))*math.Cos(4*math.Pi*float64(c)/float64(n)) +
				0.25*math.Sin(24*math.Pi*float64(c)/float64(n)) + 0.03*rng.NormFloat64()
			t.Set(v, r, c)
		}
	}
	return t
}

var (
	hierOnce sync.Once
	hierVal  *refactor.Hierarchy
)

// testHierarchy is shared across tests (decomposition is deterministic
// and read-only at analysis time).
func testHierarchy(t *testing.T) *refactor.Hierarchy {
	t.Helper()
	hierOnce.Do(func() {
		h, err := refactor.Decompose(testField(1), refactor.Options{
			Levels: 4,
			Bounds: []float64{0.05, 0.01, 0.001},
		})
		if err != nil {
			t.Fatal(err)
		}
		hierVal = h
	})
	if hierVal == nil {
		t.Skip("hierarchy construction failed earlier")
	}
	return hierVal
}

// scenario builds a node with SSD+HDD tiers and nNoise interferers.
func scenario(t *testing.T, nNoise int) (*container.Node, *staging.Store) {
	t.Helper()
	node := container.NewNode("n0")
	ssd := node.MustAddDevice(device.SSD("ssd"))
	hdd := node.MustAddDevice(device.HDD("hdd"))
	_ = ssd
	set := workload.PaperNoiseSet()
	if nNoise > len(set) {
		nNoise = len(set)
	}
	workload.LaunchNoiseSet(node, hdd, set[:nNoise])
	st, err := staging.Stage(testHierarchy(t), node.Tiers())
	if err != nil {
		t.Fatal(err)
	}
	return node, st
}

func runSession(t *testing.T, policy Policy, nNoise, steps int, mut func(*Config)) *Session {
	t.Helper()
	node, st := scenario(t, nNoise)
	cfg := Config{Policy: policy, Steps: steps}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewSession("analytics", st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(float64(steps)*s.Config.Period + 1000); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Stats()); got != steps {
		t.Fatalf("completed %d of %d steps", got, steps)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	_, st := scenario(t, 0)
	if _, err := NewSession("a", st, Config{Steps: 0}); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := NewSession("a", st, Config{Steps: 1, Priority: -1}); err == nil {
		t.Fatal("negative priority accepted")
	}
	if _, err := NewSession("a", st, Config{Steps: 1, ThreshFrac: 2}); err == nil {
		t.Fatal("bad thresh accepted")
	}
	if _, err := NewSession("a", st, Config{Steps: 1, ErrorControl: true, Bound: 0.42}); err == nil {
		t.Fatal("unknown bound accepted")
	}
	if _, err := NewSession("a", st, Config{Steps: 1, ErrorControl: true, Bound: 0.01}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNoAdaptRetrievesFullAtDefaultWeight(t *testing.T) {
	s := runSession(t, NoAdapt, 3, 5, nil)
	total := s.store.Hierarchy().TotalEntries()
	for _, st := range s.Stats() {
		if st.Cursor != total {
			t.Fatalf("step %d cursor %d, want full %d", st.Step, st.Cursor, total)
		}
		for _, b := range st.Buckets {
			if b.Weight != 0 {
				t.Fatal("no-adaptivity must not adjust weights")
			}
		}
		if st.BaseTime <= 0 {
			t.Fatal("base retrieval time missing")
		}
	}
}

func TestStorageOnlySetsProportionalWeight(t *testing.T) {
	s := runSession(t, StorageOnly, 3, 5, nil)
	total := s.store.Hierarchy().TotalEntries()
	for _, st := range s.Stats() {
		if st.Cursor != total {
			t.Fatal("storage-only must retrieve fully")
		}
		if len(st.Buckets) != 1 {
			t.Fatalf("storage-only should read one bucket per step, got %d", len(st.Buckets))
		}
		w := st.Buckets[0].Weight
		if w < blkio.MinWeight || w > blkio.MaxWeight {
			t.Fatalf("weight %d out of range", w)
		}
		if w <= blkio.DefaultWeight {
			t.Fatalf("full-size retrieval should weigh above default, got %d", w)
		}
	}
}

func TestAppAdaptivityReducesRetrievalUnderInterference(t *testing.T) {
	steps := 45
	s := runSession(t, CrossLayer, 6, steps, func(c *Config) {
		c.RefitEvery = 10
		c.Window = 10
	})
	total := s.store.Hierarchy().TotalEntries()
	// Warm-up steps retrieve fully.
	for _, st := range s.Stats()[:10] {
		if st.Cursor != total {
			t.Fatalf("warm-up step %d cursor %d", st.Step, st.Cursor)
		}
		if st.Predicted != 0 {
			t.Fatal("no prediction should be used before the first fit")
		}
	}
	// After fitting, under 6 interferers the HDD bandwidth share sits
	// below BWHigh, so at least some steps must back off.
	reduced := 0
	for _, st := range s.Stats()[10:] {
		if st.Predicted <= 0 {
			t.Fatalf("step %d missing prediction", st.Step)
		}
		if st.Cursor < total {
			reduced++
		}
	}
	if reduced == 0 {
		t.Fatal("no adaptive backoff despite heavy interference")
	}
}

func TestErrorControlFloorsCursor(t *testing.T) {
	steps := 45
	s := runSession(t, CrossLayer, 6, steps, func(c *Config) {
		c.RefitEvery = 10
		c.Window = 10
		c.ErrorControl = true
		c.Bound = 0.01
	})
	floor, err := s.store.Hierarchy().CursorForBound(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range s.Stats() {
		if st.Cursor < floor {
			t.Fatalf("step %d cursor %d below error-control floor %d", st.Step, st.Cursor, floor)
		}
	}
}

func TestCrossLayerWeightEventsPerBucket(t *testing.T) {
	s := runSession(t, CrossLayer, 3, 5, func(c *Config) {
		c.ErrorControl = true
		c.Bound = 0.001
	})
	for _, st := range s.Stats() {
		if len(st.Buckets) == 0 {
			t.Fatal("cross-layer step recorded no buckets")
		}
		for _, b := range st.Buckets {
			if b.Weight < blkio.MinWeight || b.Weight > blkio.MaxWeight {
				t.Fatalf("weight %d out of range", b.Weight)
			}
			if b.To-b.From <= 0 {
				t.Fatalf("bucket cardinality %d", b.To-b.From)
			}
			if b.Elapsed < 0 {
				t.Fatal("negative bucket elapsed")
			}
		}
		// Time-to-bound must be measurable for the tightest bound and
		// exceed the base retrieval time.
		if lt := st.TimeToBound(0.001); math.IsNaN(lt) || lt <= 0 {
			t.Fatalf("TimeToBound = %v", lt)
		}
	}
	// Weight must revert to default between steps.
	if got := s.Container().Cgroup().Weight(); got != blkio.DefaultWeight {
		t.Fatalf("weight left at %d after step", got)
	}
}

func TestBucketsPartitionCursorRange(t *testing.T) {
	_, st := scenario(t, 0)
	s, err := NewSession("a", st, Config{Policy: CrossLayer, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := st.Hierarchy()
	for _, cursor := range []int{0, 1, h.Rungs()[0].Cursor, h.Rungs()[1].Cursor + 5, h.TotalEntries()} {
		bks := s.buckets(cursor)
		prev := 0
		for _, b := range bks {
			if b.from != prev {
				t.Fatalf("cursor %d: bucket gap at %d (got from=%d)", cursor, prev, b.from)
			}
			if b.to <= b.from {
				t.Fatalf("cursor %d: empty bucket", cursor)
			}
			if math.IsNaN(b.bound) {
				t.Fatalf("cursor %d: NaN bound", cursor)
			}
			prev = b.to
		}
		if prev != cursor {
			t.Fatalf("cursor %d: buckets cover up to %d", cursor, prev)
		}
	}
}

func TestCrossLayerBeatsNoAdaptivity(t *testing.T) {
	steps := 60
	skip := 15
	mut := func(c *Config) { c.RefitEvery = 10; c.Window = 10; c.ProbeBytes = 256 * 1024 }
	base := runSession(t, NoAdapt, 6, steps, mut).Summary(skip)
	cross := runSession(t, CrossLayer, 6, steps, mut).Summary(skip)
	if !(cross.MeanIO < base.MeanIO) {
		t.Fatalf("cross-layer %.4fs should beat no-adaptivity %.4fs", cross.MeanIO, base.MeanIO)
	}
}

func TestCrossLayerBeatsSingleLayer(t *testing.T) {
	steps := 60
	skip := 15
	mut := func(c *Config) { c.RefitEvery = 10; c.Window = 10; c.ProbeBytes = 256 * 1024 }
	app := runSession(t, AppOnly, 6, steps, mut).Summary(skip)
	storage := runSession(t, StorageOnly, 6, steps, mut).Summary(skip)
	cross := runSession(t, CrossLayer, 6, steps, mut).Summary(skip)
	if !(cross.MeanIO <= app.MeanIO*1.05) {
		t.Fatalf("cross-layer %.4fs should not lose to app-only %.4fs", cross.MeanIO, app.MeanIO)
	}
	if !(cross.MeanIO < storage.MeanIO) {
		t.Fatalf("cross-layer %.4fs should beat storage-only %.4fs", cross.MeanIO, storage.MeanIO)
	}
}

func TestHigherPriorityNoSlower(t *testing.T) {
	steps := 45
	mut := func(p float64) func(*Config) {
		return func(c *Config) {
			c.RefitEvery = 10
			c.Window = 10
			c.ErrorControl = true
			c.Bound = 0.01
			c.Priority = p
		}
	}
	low := runSession(t, CrossLayer, 6, steps, mut(1)).Summary(15)
	high := runSession(t, CrossLayer, 6, steps, mut(10)).Summary(15)
	if !(high.MeanIO <= low.MeanIO*1.05) {
		t.Fatalf("high priority %.4fs should not be slower than low %.4fs", high.MeanIO, low.MeanIO)
	}
}

func TestSummaryStatistics(t *testing.T) {
	stats := []StepStats{
		{IOTime: 1, Bytes: 10},
		{IOTime: 3, Bytes: 30},
		{IOTime: 2, Bytes: 20},
	}
	s := Summarize(stats, 0)
	if s.Steps != 3 || s.MeanIO != 2 || s.MinIO != 1 || s.MaxIO != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdIO-1) > 1e-12 {
		t.Fatalf("std = %v", s.StdIO)
	}
	if got := Summarize(stats, 2).Steps; got != 1 {
		t.Fatalf("skip: %d", got)
	}
	if got := Summarize(stats, 10); got.Steps != 0 || got.MeanIO != 0 {
		t.Fatalf("over-skip: %+v", got)
	}
	if got := Summarize(nil, -1); got.Steps != 0 {
		t.Fatalf("nil stats: %+v", got)
	}
}

func TestEstimatorFedEveryStep(t *testing.T) {
	s := runSession(t, CrossLayer, 3, 12, func(c *Config) { c.RefitEvery = 5; c.Window = 5 })
	if got := s.Estimator().Samples(); got != 12 {
		t.Fatalf("estimator samples = %d, want 12", got)
	}
	for _, st := range s.Stats() {
		if st.SlowBW <= 0 {
			t.Fatalf("step %d has no bandwidth sample", st.Step)
		}
	}
}

func TestDeterministicSessions(t *testing.T) {
	run := func() []float64 {
		s := runSession(t, CrossLayer, 4, 20, func(c *Config) { c.RefitEvery = 5; c.Window = 5 })
		out := make([]float64, 0, 20)
		for _, st := range s.Stats() {
			out = append(out, st.IOTime)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if len(AllPolicies()) != 4 {
		t.Fatal("policy list")
	}
	names := map[string]bool{}
	for _, p := range AllPolicies() {
		names[p.String()] = true
	}
	if len(names) != 4 {
		t.Fatal("policy names collide")
	}
}

// TestInterpolateBound checks the curve-interpolated error control: a
// bound between two ladder rungs is rejected by default, accepted with
// InterpolateBound, and floors the retrieval at a cursor between the
// bracketing rungs.
func TestInterpolateBound(t *testing.T) {
	h := testHierarchy(t)
	node := container.NewNode("n-interp")
	node.MustAddDevice(device.SSD("ssd"))
	node.MustAddDevice(device.HDD("hdd"))
	st, err := staging.Stage(h, node.Tiers())
	if err != nil {
		t.Fatal(err)
	}
	// 0.005 sits between the 0.01 and 0.001 rungs.
	const target = 0.005
	if _, err := NewSession("a", st, Config{Steps: 1, ErrorControl: true, Bound: target}); err == nil {
		t.Fatal("expected off-ladder bound to be rejected without InterpolateBound")
	}
	s, err := NewSession("a", st, Config{Steps: 1, ErrorControl: true, Bound: target, InterpolateBound: true})
	if err != nil {
		t.Fatalf("InterpolateBound session: %v", err)
	}
	tightest, err := h.CursorForBound(0.001)
	if err != nil {
		t.Fatal(err)
	}
	m := s.mandatoryCursor()
	// The interpolated prefix satisfies the target (curve drift allows a
	// sliver) without snapping all the way up to the tighter rung.
	if acc := h.Achieved(testField(1), m); acc > target*(1+1e-6) {
		t.Fatalf("cursor %d achieves %v, wanted <= %v", m, acc, target)
	}
	if m > tightest {
		t.Fatalf("interpolated mandatory cursor %d beyond tightest rung's %d", m, tightest)
	}
	// An exact rung still resolves to the rung cursor under the flag.
	s.Config.Bound = 0.001
	if got := s.mandatoryCursor(); got != tightest {
		t.Fatalf("exact rung under InterpolateBound: cursor %d, want %d", got, tightest)
	}
	// SetBound accepts an off-ladder bound only with the flag.
	s2, err := NewSession("b", st, Config{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.SetBound(target); err == nil {
		t.Fatal("expected SetBound to reject off-ladder bound without InterpolateBound")
	}
	s2.Config.InterpolateBound = true
	if err := s2.SetBound(target); err != nil {
		t.Fatalf("SetBound with InterpolateBound: %v", err)
	}
	if got := s2.mandatoryCursor(); got != m {
		t.Fatalf("SetBound mandatory cursor %d, want %d", got, m)
	}
}
