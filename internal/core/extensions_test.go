package core

import (
	"math"
	"testing"

	"tango/internal/container"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/staging"
	"tango/internal/trace"
)

func TestParallelTierReadsFasterSteps(t *testing.T) {
	steps := 10
	mut := func(parallel bool) func(*Config) {
		return func(c *Config) {
			c.ErrorControl = true
			c.Bound = 0.001
			c.ParallelTierReads = parallel
		}
	}
	seq := runSession(t, CrossLayer, 0, steps, mut(false)) // no noise: pure overlap effect
	par := runSession(t, CrossLayer, 0, steps, mut(true))
	sseq := seq.Summary(0)
	spar := par.Summary(0)
	if !(spar.MeanIO < sseq.MeanIO) {
		t.Fatalf("parallel %v should beat sequential %v without contention", spar.MeanIO, sseq.MeanIO)
	}
	// The same data must have been retrieved.
	if sseq.MeanBytes != spar.MeanBytes {
		t.Fatalf("bytes differ: %v vs %v", sseq.MeanBytes, spar.MeanBytes)
	}
}

func TestTraceRecordsControllerEvents(t *testing.T) {
	rec := trace.New(1 << 14)
	s := runSession(t, CrossLayer, 2, 8, func(c *Config) {
		c.ErrorControl = true
		c.Bound = 0.01
		c.RefitEvery = 4
		c.Window = 4
		c.Trace = rec
	})
	if got := len(rec.Filter(trace.KindStep)); got != 8 {
		t.Fatalf("step events = %d, want 8", got)
	}
	if len(rec.Filter(trace.KindWeight)) == 0 {
		t.Fatal("no weight events")
	}
	if len(rec.Filter(trace.KindBucket)) == 0 {
		t.Fatal("no bucket events")
	}
	if got := len(rec.Filter(trace.KindRefit)); got != 2 {
		t.Fatalf("refit events = %d, want 2", got)
	}
	_ = s
}

func TestNilTraceIsSafe(t *testing.T) {
	// Default config has no recorder; the emission call sites must not
	// panic (covered implicitly by every other test, asserted here
	// explicitly for the cross-layer path that emits the most).
	s := runSession(t, CrossLayer, 1, 3, func(c *Config) {
		c.ErrorControl = true
		c.Bound = 0.01
	})
	if len(s.Stats()) != 3 {
		t.Fatal("session did not complete")
	}
}

func TestWeightBoostBounds(t *testing.T) {
	_, st := scenario(t, 0)
	s, err := NewSession("a", st, Config{Policy: CrossLayer, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Before any stats: neutral boost.
	if got := s.weightBoost(); got != 1 {
		t.Fatalf("initial boost = %v", got)
	}
	// Synthetic last step with known weights.
	s.stats = append(s.stats, StepStats{Buckets: []BucketStat{
		{Weight: 300}, {Weight: 500},
	}})
	boost := s.weightBoost()
	want := 2.0 * 400 / (400 + 100)
	if math.Abs(boost-want) > 1e-12 {
		t.Fatalf("boost = %v, want %v", boost, want)
	}
	if boost < 1 || boost >= 2 {
		t.Fatalf("boost %v outside [1,2)", boost)
	}
	// Steps without weight adjustments: neutral.
	s.stats = append(s.stats, StepStats{Buckets: []BucketStat{{Weight: 0}}})
	if got := s.weightBoost(); got != 1 {
		t.Fatalf("unweighted boost = %v", got)
	}
}

func TestTimeToBoundNaNForMissingBound(t *testing.T) {
	st := StepStats{Buckets: []BucketStat{{Bound: 0.01, Start: 1, Elapsed: 2}}}
	if got := st.TimeToBound(0.5); !math.IsNaN(got) {
		t.Fatalf("missing bound = %v, want NaN", got)
	}
	st.Start = 0.5
	if got := st.TimeToBound(0.01); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("TimeToBound = %v", got)
	}
}

func TestStopEndsSessionEarlyAndReleases(t *testing.T) {
	node, st := scenario(t, 1)
	s, err := NewSession("a", st, Config{Policy: CrossLayer, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(node); err != nil {
		t.Fatal(err)
	}
	node.Engine().After(150, func() { s.Stop() }) // during step 2
	if err := node.Engine().Run(100*60 + 600); err != nil {
		t.Fatal(err)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	got := len(s.Stats())
	if got >= 100 || got < 3 {
		t.Fatalf("steps after stop = %d", got)
	}
	// Ephemeral staging released on exit.
	if used := node.Device("ssd").Used() + node.Device("hdd").Used(); used != 0 {
		t.Fatalf("staging not released: %v bytes", used)
	}
	if !s.Container().Proc().Done() {
		t.Fatal("container still running")
	}
}

func TestSetBoundAtRuntime(t *testing.T) {
	node, st := scenario(t, 0)
	h := st.Hierarchy()
	s, err := NewSession("a", st, Config{
		Policy: CrossLayer, ErrorControl: true, Bound: 0.05, Steps: 8,
		Window: 3, RefitEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(node); err != nil {
		t.Fatal(err)
	}
	node.Engine().After(4*60+1, func() {
		if err := s.SetBound(0.001); err != nil {
			t.Errorf("SetBound: %v", err)
		}
		if err := s.SetBound(0.42); err == nil {
			t.Error("bogus bound accepted")
		}
	})
	if err := node.Engine().Run(8*60 + 600); err != nil {
		t.Fatal(err)
	}
	loose, err := h.CursorForBound(0.05)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := h.CursorForBound(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if loose >= tight {
		t.Skip("ladder degenerate at this scale")
	}
	// After the bound tightened, every step must honor the new floor.
	for _, stp := range s.Stats()[5:] {
		if stp.Cursor < tight {
			t.Fatalf("step %d cursor %d below tightened floor %d", stp.Step, stp.Cursor, tight)
		}
	}
}

func TestProbeDisabledCarriesForwardSamples(t *testing.T) {
	s := runSession(t, CrossLayer, 2, 6, func(c *Config) {
		c.ProbeBytes = -1 // disable probing
		c.Window = 3
		c.RefitEvery = 3
	})
	// Warm-up steps read everything (HDD touched), so samples exist;
	// adaptive steps that skip the HDD reuse the last sample.
	for i, st := range s.Stats() {
		if st.SlowBW <= 0 {
			t.Fatalf("step %d sample = %v", i, st.SlowBW)
		}
	}
	if s.Estimator().Samples() != 6 {
		t.Fatalf("samples = %d", s.Estimator().Samples())
	}
}

func TestSessionOnBoundlessHierarchy(t *testing.T) {
	// A hierarchy without a bound ladder: only fraction-driven
	// augmentation is available; error control must be rejected.
	field := testField(2)
	h, err := refactor.Decompose(field, refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	node := container.NewNode("nb")
	node.MustAddDevice(device.SSD("ssd"))
	node.MustAddDevice(device.HDD("hdd"))
	st, err := staging.Stage(h, node.Tiers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession("a", st, Config{Steps: 1, ErrorControl: true, Bound: 0.01}); err == nil {
		t.Fatal("error control without a ladder accepted")
	}
	s, err := NewSession("a", st, Config{Policy: CrossLayer, Steps: 4, Window: 2, RefitEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(4*60 + 600); err != nil {
		t.Fatal(err)
	}
	if len(s.Stats()) != 4 {
		t.Fatalf("steps = %d", len(s.Stats()))
	}
}

func TestSessionOnSingleLevelHierarchy(t *testing.T) {
	// L=1: no augmentations; the base IS the dataset and lives on the
	// fast tier. The whole pipeline must still run.
	field := testField(3)
	h, err := refactor.Decompose(field, refactor.Options{Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := container.NewNode("n1")
	node.MustAddDevice(device.SSD("ssd"))
	node.MustAddDevice(device.HDD("hdd"))
	st, err := staging.Stage(h, node.Tiers())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession("a", st, Config{Policy: CrossLayer, Steps: 3, Window: 2, RefitEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(3*60 + 600); err != nil {
		t.Fatal(err)
	}
	for _, stp := range s.Stats() {
		if stp.Cursor != 0 || stp.Bytes <= 0 {
			t.Fatalf("step stats = %+v", stp)
		}
	}
}

func TestSummaryPercentiles(t *testing.T) {
	var stats []StepStats
	for i := 1; i <= 100; i++ {
		stats = append(stats, StepStats{IOTime: float64(i)})
	}
	s := Summarize(stats, 0)
	if s.P50IO != 50 {
		t.Fatalf("p50 = %v", s.P50IO)
	}
	if s.P95IO != 95 {
		t.Fatalf("p95 = %v", s.P95IO)
	}
	one := Summarize(stats[:1], 0)
	if one.P50IO != 1 || one.P95IO != 1 {
		t.Fatalf("single-sample percentiles: %+v", one)
	}
	empty := Summarize(nil, 0)
	if empty.P50IO != 0 || empty.P95IO != 0 {
		t.Fatalf("empty percentiles: %+v", empty)
	}
	// Percentiles bracket the extremes.
	if s.P50IO < s.MinIO || s.P95IO > s.MaxIO {
		t.Fatal("percentiles outside [min,max]")
	}
}
