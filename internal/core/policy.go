// Package core implements Tango's cross-layer controller: the per-step
// loop of Algorithm 1 (interference estimation → augmentation degree →
// per-bucket blkio weight → tiered retrieval → recomposition), and the
// three comparison policies the paper evaluates against (no adaptivity,
// storage-layer only, application-layer only).
package core

import (
	"fmt"

	"tango/internal/abplot"
	"tango/internal/cache"
	"tango/internal/coordinator"
	"tango/internal/device"
	"tango/internal/resil"
	"tango/internal/staging"
	"tango/internal/tokenctl"
	"tango/internal/trace"
	"tango/internal/weightfn"
)

// Policy selects which layers adapt (paper Fig 8/9).
type Policy int

const (
	// NoAdapt retrieves the full augmentation at the default weight:
	// the conventional access pattern, no adaptivity at either layer.
	NoAdapt Policy = iota
	// StorageOnly retrieves the full augmentation but sets the blkio
	// weight proportionally to the retrieval size (single-layer,
	// storage adaptivity).
	StorageOnly
	// AppOnly performs dynamic augmentation from the interference
	// estimate but never adjusts the weight (single-layer, application
	// adaptivity; the approach of refs [3], [2]).
	AppOnly
	// CrossLayer is Tango: dynamic augmentation plus the weight
	// function at the storage layer.
	CrossLayer
	// CrossLayerPrefetch is CrossLayer plus the fast-tier cache and
	// idle-window prefetcher (internal/cache): forecast quiet windows
	// pre-stage upcoming augmentation HDD→SSD through a floor-weight
	// background flow, so high-interference steps read from the fast
	// tier instead.
	CrossLayerPrefetch
)

// String returns the policy name as used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case NoAdapt:
		return "no-adaptivity"
	case StorageOnly:
		return "single-layer/storage"
	case AppOnly:
		return "single-layer/application"
	case CrossLayer:
		return "cross-layer"
	case CrossLayerPrefetch:
		return "cross-layer+prefetch"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AllPolicies lists the four policies in the paper's presentation order.
func AllPolicies() []Policy {
	return []Policy{NoAdapt, StorageOnly, AppOnly, CrossLayer}
}

// ExtendedPolicies is AllPolicies plus the beyond-paper cross-layer
// variant with the predictive fast-tier cache.
func ExtendedPolicies() []Policy {
	return append(AllPolicies(), CrossLayerPrefetch)
}

// adjustsWeights reports whether the policy writes blkio weights (and so
// must probe for default-share bandwidth samples).
func (p Policy) adjustsWeights() bool {
	return p == StorageOnly || p == CrossLayer || p == CrossLayerPrefetch
}

// crossLayer reports whether the policy plans its cursor against the
// bandwidth share its elevated weight will earn.
func (p Policy) crossLayer() bool {
	return p == CrossLayer || p == CrossLayerPrefetch
}

// Config parameterizes an analysis session. Zero values take the paper's
// defaults (§IV-A).
type Config struct {
	Policy Policy

	// Priority p of this data analytics (1 low, 5 medium, 10 high).
	Priority float64

	// ErrorControl enables the prescribed bound: the session never
	// retrieves less than the bound's rung, regardless of interference.
	ErrorControl bool
	// Bound is the prescribed error bound ε_i; it must be one of the
	// bounds the hierarchy was decomposed with, unless InterpolateBound
	// is set.
	Bound float64
	// InterpolateBound accepts a Bound between (or looser than) the
	// hierarchy's ladder bounds: the mandatory cursor is interpolated
	// from the accuracy curve the decomposition sweep recorded, instead
	// of requiring an exact rung. Off by default — exact rungs keep the
	// retrieval plan identical to the paper's ladder semantics, and the
	// curve only exists for hierarchies decomposed in this process (it
	// is not persisted by Encode/Decode).
	InterpolateBound bool

	// Plot is the augmentation-bandwidth plot (default 30–120 MB/s).
	Plot abplot.Plot

	// ThreshFrac is the DFT amplitude threshold (default 0.5).
	ThreshFrac float64
	// Window is the estimator window in steps (default 30).
	Window int
	// SlidingDFT enables the estimator's opt-in sliding-DFT update mode:
	// each observed step advances the spectrum incrementally in O(Window)
	// and refits skip the forward transform. Off by default — the
	// incremental summation order differs from the batch FFT, so fitted
	// models (and therefore experiment output) are not byte-identical to
	// the default mode, though still deterministic for a given seed.
	SlidingDFT bool
	// RefitEvery re-runs the estimation every this many steps
	// (default 30).
	RefitEvery int

	// Period is the analytics step period in seconds (default 60).
	Period float64
	// Steps is the number of analysis steps to run (required).
	Steps int

	// ProbeBytes is read from the capacity tier when a step otherwise
	// touched it too little to measure bandwidth (default 4 MB,
	// 0 keeps the default; negative disables probing).
	ProbeBytes float64

	// Weight-function ablations (Fig 13).
	DisablePriorityTerm bool
	DisableAccuracyTerm bool

	// ParallelTierReads overlaps each bucket's per-tier transfers with
	// one concurrent reader per tier (an optimization beyond the paper's
	// sequential Algorithm 1 loop; see the ablation-parallel
	// experiment).
	ParallelTierReads bool

	// Retry bounds the sequential read path's reaction to transient
	// read errors (injected by internal/fault): optional augmentation
	// gets a bounded retry budget per segment and then degrades, while
	// base and bound-mandated data retry until the fault clears. Zero
	// values take the staging defaults.
	Retry staging.RetryPolicy

	// RegimeTol and RegimeRun drive misprediction-triggered refits:
	// when the relative error between predicted and measured
	// capacity-tier bandwidth exceeds RegimeTol for RegimeRun
	// consecutive steps (an interference regime change the periodic
	// refit has not caught up with), the estimator refits immediately.
	// Defaults 0.5 and 4; RegimeRun < 0 disables the detector.
	RegimeTol float64
	RegimeRun int

	// Trace, when non-nil, receives structured controller events
	// (steps, weight adjustments, estimator refits).
	Trace *trace.Recorder

	// Allocator, when non-nil, arbitrates this session's weight requests
	// against other sessions on the node, rescaling concurrent requests
	// so priority ratios are preserved (see internal/coordinator).
	Allocator *coordinator.Allocator

	// Tokens, when non-nil, selects decentralized token-bucket weight
	// control instead of the central Allocator: the session funds its
	// weight from a per-session bucket and borrows bounded shortfalls
	// from idle peers (see internal/tokenctl). Mutually exclusive with
	// Allocator.
	Tokens *tokenctl.Controller

	// Cache configures the fast-tier augmentation cache and its
	// prefetcher (see internal/cache). nil leaves caching off unless the
	// policy is CrossLayerPrefetch, which defaults it.
	Cache *cache.Config

	// Resil, when non-nil, routes every I/O-issuing layer of this
	// session — staging guarded reads and probes, session and
	// coordinator weight writes, the prefetcher's heal loop and staging
	// reads — through the resilience control plane (see internal/resil):
	// policy-keyed retries, retry budgets, circuit breakers, and
	// forecast-driven hedged reads. nil keeps the legacy ad-hoc
	// recovery paths.
	Resil *resil.Controller
}

func (c Config) withDefaults() Config {
	if c.Priority == 0 {
		c.Priority = weightfn.PriorityHigh
	}
	if c.Plot == (abplot.Plot{}) {
		c.Plot = abplot.Default()
	}
	if c.ThreshFrac == 0 {
		c.ThreshFrac = 0.5
	}
	if c.Window == 0 {
		c.Window = 30
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 30
	}
	if c.Period == 0 {
		c.Period = 60
	}
	if c.ProbeBytes == 0 {
		c.ProbeBytes = 4 * device.MB
	}
	if c.RegimeTol == 0 {
		c.RegimeTol = 0.5
	}
	if c.RegimeRun == 0 {
		c.RegimeRun = 4
	}
	if c.Policy == CrossLayerPrefetch && c.Cache == nil {
		cc := cache.DefaultConfig()
		c.Cache = &cc
	}
	return c
}

func (c Config) validate() error {
	if c.Steps <= 0 {
		return fmt.Errorf("core: Steps must be > 0")
	}
	if c.Priority <= 0 {
		return fmt.Errorf("core: Priority must be > 0")
	}
	if err := c.Plot.Validate(); err != nil {
		return err
	}
	if c.ThreshFrac < 0 || c.ThreshFrac > 1 {
		return fmt.Errorf("core: ThreshFrac %v out of [0,1]", c.ThreshFrac)
	}
	if c.Period <= 0 {
		return fmt.Errorf("core: Period must be > 0")
	}
	if c.RegimeTol <= 0 {
		return fmt.Errorf("core: RegimeTol must be > 0")
	}
	if c.Allocator != nil && c.Tokens != nil {
		return fmt.Errorf("core: Allocator and Tokens are mutually exclusive weight-control modes")
	}
	return nil
}
