package core

import (
	"math"
	"sort"
)

// Summary aggregates a session's step records the way the paper reports
// them: average I/O time with its variation (error bars), plus tail
// percentiles (I/O *consistency*, not just averages, is the problem the
// paper targets — see its Related Work critique of peak-only metrics).
type Summary struct {
	Steps     int
	MeanIO    float64 // mean per-step I/O time (s)
	StdIO     float64 // sample standard deviation
	MinIO     float64
	MaxIO     float64
	P50IO     float64 // median per-step I/O time
	P95IO     float64 // 95th-percentile per-step I/O time
	MeanBytes float64
	MeanBW    float64 // mean perceived bandwidth (bytes/s)
}

// percentile returns the q-quantile (0..1) of sorted xs by nearest-rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summarize aggregates the given steps; steps before `skip` are dropped
// (e.g. to exclude the full-retrieval warm-up while the estimator trains).
func Summarize(stats []StepStats, skip int) Summary {
	if skip < 0 {
		skip = 0
	}
	if skip > len(stats) {
		skip = len(stats)
	}
	stats = stats[skip:]
	s := Summary{Steps: len(stats), MinIO: math.Inf(1), MaxIO: math.Inf(-1)}
	if len(stats) == 0 {
		s.MinIO, s.MaxIO = 0, 0
		return s
	}
	var sumIO, sumBytes, sumBW float64
	for _, st := range stats {
		sumIO += st.IOTime
		sumBytes += st.Bytes
		if st.IOTime > 0 {
			sumBW += st.Bytes / st.IOTime
		}
		if st.IOTime < s.MinIO {
			s.MinIO = st.IOTime
		}
		if st.IOTime > s.MaxIO {
			s.MaxIO = st.IOTime
		}
	}
	n := float64(len(stats))
	s.MeanIO = sumIO / n
	s.MeanBytes = sumBytes / n
	s.MeanBW = sumBW / n
	if len(stats) > 1 {
		var ss float64
		for _, st := range stats {
			d := st.IOTime - s.MeanIO
			ss += d * d
		}
		s.StdIO = math.Sqrt(ss / (n - 1))
	}
	ios := make([]float64, 0, len(stats))
	for _, st := range stats {
		ios = append(ios, st.IOTime)
	}
	sort.Float64s(ios)
	s.P50IO = percentile(ios, 0.50)
	s.P95IO = percentile(ios, 0.95)
	return s
}

// Summary returns the session's aggregate over all steps after skip.
func (s *Session) Summary(skip int) Summary { return Summarize(s.stats, skip) }
