// Package benchdiff compares two tangobench -json suite documents and
// flags regressions: headline metrics that moved more than a threshold in
// the bad direction between a baseline run and a candidate run. CI
// uploads the suite JSON as an artifact; scripts/benchdiff.sh diffs two
// of them.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Suite mirrors the document tangobench -json emits
// (harness.WriteSuiteJSON): one entry per experiment, rows keyed by
// header name.
type Suite struct {
	Results []Result `json:"results"`
}

// Result is one experiment's table.
type Result struct {
	ID     string              `json:"id"`
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   []map[string]string `json:"rows"`
	Notes  []string            `json:"notes,omitempty"`
}

// ReadSuite decodes a suite document.
func ReadSuite(r io.Reader) (*Suite, error) {
	var s Suite
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("benchdiff: decoding suite: %w", err)
	}
	return &s, nil
}

// Direction classifies how a metric column should move.
type Direction int

const (
	Ignore Direction = iota // identity or neutral column
	LowerBetter
	HigherBetter
)

// ColumnDirection infers a header's metric direction from its name.
// Time-like and error-like columns regress upward; bandwidth-like and
// hit-ratio columns regress downward; everything else (identity columns,
// counters with no quality direction) is ignored.
func ColumnDirection(header string) Direction {
	h := strings.ToLower(header)
	for _, k := range []string{"bw", "mb/s", "hit", "throughput", "dof"} {
		if strings.Contains(h, k) {
			return HigherBetter
		}
	}
	for _, k := range []string{"i/o", "io (", "io(", "latency", "time", "viol", "nrmse", "err", "std", "retries", "(s)"} {
		if strings.Contains(h, k) {
			return LowerBetter
		}
	}
	return Ignore
}

// Delta is one metric cell compared across the two suites.
type Delta struct {
	Experiment string
	Row        string // identity key built from the non-numeric cells
	Column     string
	Old, New   float64
	Pct        float64 // relative change in percent, signed
	Regression bool    // moved more than the threshold in the bad direction
}

func (d Delta) String() string {
	tag := "ok"
	if d.Regression {
		tag = "REGRESSION"
	}
	return fmt.Sprintf("%-10s %-12s %-32s %-16s %10.3f -> %-10.3f %+7.1f%%",
		tag, d.Experiment, d.Row, d.Column, d.Old, d.New, d.Pct)
}

// Report is the outcome of a suite comparison.
type Report struct {
	Deltas []Delta  // metric cells compared in both suites, row-matched
	Notes  []string // experiments or rows present in only one suite
}

// Regressions returns the deltas flagged as regressions.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// rowKey identifies a row by its non-numeric cells (app name, policy,
// filesystem, ...) in header order, so reordered rows still match.
func rowKey(header []string, row map[string]string) string {
	var parts []string
	for _, h := range header {
		cell := row[h]
		if cell == "" || cell == "-" {
			continue
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			parts = append(parts, cell)
		}
	}
	return strings.Join(parts, "/")
}

func indexRows(res Result) (map[string]map[string]string, []string) {
	idx := make(map[string]map[string]string, len(res.Rows))
	var keys []string
	for i, row := range res.Rows {
		k := rowKey(res.Header, row)
		if k == "" {
			k = fmt.Sprintf("row%d", i)
		}
		if _, dup := idx[k]; dup {
			k = fmt.Sprintf("%s#%d", k, i)
		}
		idx[k] = row
		keys = append(keys, k)
	}
	return idx, keys
}

// Compare diffs every metric cell present in both suites. A cell is a
// regression when it moved more than thresholdPct in its bad direction.
func Compare(oldS, newS *Suite, thresholdPct float64) *Report {
	rep := &Report{}
	oldByID := map[string]Result{}
	for _, r := range oldS.Results {
		oldByID[r.ID] = r
	}
	seen := map[string]bool{}
	for _, nr := range newS.Results {
		or, ok := oldByID[nr.ID]
		if !ok {
			rep.Notes = append(rep.Notes, fmt.Sprintf("experiment %q only in new suite", nr.ID))
			continue
		}
		seen[nr.ID] = true
		oldIdx, _ := indexRows(or)
		newIdx, newKeys := indexRows(nr)
		for _, key := range newKeys {
			oldRow, ok := oldIdx[key]
			if !ok {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: row %q only in new suite", nr.ID, key))
				continue
			}
			for _, h := range nr.Header {
				dir := ColumnDirection(h)
				if dir == Ignore {
					continue
				}
				ov, oerr := strconv.ParseFloat(oldRow[h], 64)
				nv, nerr := strconv.ParseFloat(newIdx[key][h], 64)
				if oerr != nil || nerr != nil {
					continue // "-" placeholders and the like
				}
				d := Delta{Experiment: nr.ID, Row: key, Column: h, Old: ov, New: nv}
				if ov != 0 {
					d.Pct = 100 * (nv - ov) / ov
				} else if nv != 0 {
					d.Pct = 100 // from zero: any growth is "100%"
				}
				switch dir {
				case LowerBetter:
					d.Regression = d.Pct > thresholdPct
				case HigherBetter:
					d.Regression = d.Pct < -thresholdPct
				}
				rep.Deltas = append(rep.Deltas, d)
			}
		}
	}
	for id := range oldByID {
		if !seen[id] {
			rep.Notes = append(rep.Notes, fmt.Sprintf("experiment %q only in old suite", id))
		}
	}
	sort.Strings(rep.Notes)
	return rep
}
