package benchdiff

import (
	"bytes"
	"strings"
	"testing"

	"tango/internal/harness"
)

func suiteOf(t *testing.T, rs ...*harness.Result) *Suite {
	t.Helper()
	var buf bytes.Buffer
	if err := harness.WriteSuiteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func bench(meanIO, bw string) *harness.Result {
	r := &harness.Result{
		ID:     "prefetch",
		Title:  "demo",
		Header: []string{"app", "policy", "mean I/O (s)", "fg BW MB/s", "bound viol"},
	}
	r.Add("XGC", "cross-layer", meanIO, bw, "0")
	return r
}

func TestColumnDirection(t *testing.T) {
	cases := map[string]Direction{
		"mean I/O (s)": LowerBetter,
		"latency":      LowerBetter,
		"bound viol":   LowerBetter,
		"NRMSE":        LowerBetter,
		"fg BW MB/s":   HigherBetter,
		"hit %":        HigherBetter,
		"app":          Ignore,
		"policy":       Ignore,
		"filesystem":   Ignore,
	}
	for h, want := range cases {
		if got := ColumnDirection(h); got != want {
			t.Fatalf("ColumnDirection(%q) = %v, want %v", h, got, want)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := suiteOf(t, bench("1.000", "40.0"))

	// Identical run: no regressions.
	rep := Compare(old, suiteOf(t, bench("1.000", "40.0")), 10)
	if len(rep.Regressions()) != 0 || len(rep.Deltas) != 3 {
		t.Fatalf("identical suites: %d regressions, %d deltas", len(rep.Regressions()), len(rep.Deltas))
	}

	// I/O time up 25% and bandwidth down 25%: two regressions.
	rep = Compare(old, suiteOf(t, bench("1.250", "30.0")), 10)
	reg := rep.Regressions()
	if len(reg) != 2 {
		t.Fatalf("regressions = %v", reg)
	}
	if reg[0].Column != "mean I/O (s)" || reg[0].Pct != 25 {
		t.Fatalf("unexpected first regression: %+v", reg[0])
	}
	if reg[1].Column != "fg BW MB/s" || reg[1].Pct != -25 {
		t.Fatalf("unexpected second regression: %+v", reg[1])
	}
	if !strings.Contains(reg[0].String(), "REGRESSION") {
		t.Fatalf("regression not tagged: %s", reg[0])
	}

	// Within threshold or improving: clean.
	rep = Compare(old, suiteOf(t, bench("1.050", "44.0")), 10)
	if len(rep.Regressions()) != 0 {
		t.Fatalf("small moves flagged: %v", rep.Regressions())
	}

	// Violations appearing from zero regress immediately.
	worse := bench("1.000", "40.0")
	worse.Rows[0][4] = "2"
	rep = Compare(old, suiteOf(t, worse), 10)
	if reg := rep.Regressions(); len(reg) != 1 || reg[0].Column != "bound viol" {
		t.Fatalf("zero-to-nonzero violations not flagged: %v", rep.Regressions())
	}
}

func TestCompareNotesMismatches(t *testing.T) {
	onlyOld := suiteOf(t, bench("1.0", "40.0"))
	other := bench("1.0", "40.0")
	other.ID = "chaos"
	rep := Compare(onlyOld, suiteOf(t, other), 10)
	if len(rep.Deltas) != 0 {
		t.Fatalf("nothing should compare: %v", rep.Deltas)
	}
	found := 0
	for _, n := range rep.Notes {
		if strings.Contains(n, "only in") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("notes = %v", rep.Notes)
	}

	// Row present only in the candidate is noted, not compared.
	extra := bench("1.0", "40.0")
	extra.Add("CFD", "cross-layer", "2.0", "38.0", "0")
	rep = Compare(onlyOld, suiteOf(t, extra), 10)
	if len(rep.Regressions()) != 0 {
		t.Fatalf("unmatched row flagged: %v", rep.Regressions())
	}
	ok := false
	for _, n := range rep.Notes {
		ok = ok || strings.Contains(n, "CFD")
	}
	if !ok {
		t.Fatalf("missing new-row note: %v", rep.Notes)
	}
}
