// Package errmetric implements the error metrics the paper uses to
// characterize and control the fidelity of reduced representations:
// RMSE, NRMSE and PSNR (§III-B1) for error control, plus SSIM and Dice's
// coefficient for the GenASiS rendering analysis (§IV-A) and relative
// error for scalar analysis outcomes.
package errmetric

import (
	"fmt"
	"math"
)

// Kind selects which error metric governs error control.
type Kind int

const (
	// NRMSE is root-mean-square error normalized by the data range;
	// smaller is more accurate.
	NRMSE Kind = iota
	// PSNR is peak signal-to-noise ratio in dB; larger is more accurate.
	PSNR
)

// String returns the metric name.
func (k Kind) String() string {
	switch k {
	case NRMSE:
		return "NRMSE"
	case PSNR:
		return "PSNR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Better reports whether accuracy a is strictly better than b under k.
func (k Kind) Better(a, b float64) bool {
	if k == PSNR {
		return a > b
	}
	return a < b
}

// Satisfies reports whether achieved accuracy meets bound under k
// (achieved at least as accurate as the bound).
func (k Kind) Satisfies(achieved, bound float64) bool {
	if k == PSNR {
		return achieved >= bound
	}
	return achieved <= bound
}

// MSE returns the mean squared error between x and xhat. The slices must
// have equal nonzero length.
func MSE(x, xhat []float64) float64 {
	if len(x) != len(xhat) {
		panic(fmt.Sprintf("errmetric: length mismatch %d vs %d", len(x), len(xhat)))
	}
	if len(x) == 0 {
		panic("errmetric: empty input")
	}
	var sum float64
	for i := range x {
		d := x[i] - xhat[i]
		sum += d * d
	}
	return sum / float64(len(x))
}

// RMSE returns the root mean squared error.
func RMSE(x, xhat []float64) float64 { return math.Sqrt(MSE(x, xhat)) }

// Range returns max(x) - min(x).
func Range(x []float64) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// NRMSEOf returns RMSE normalized by the range of x:
//
//	NRMSE = sqrt(mean((x-x̂)²)) / (x_max - x_min)
//
// A constant signal (zero range) with any mismatch yields +Inf; a perfect
// reconstruction yields 0 even at zero range.
func NRMSEOf(x, xhat []float64) float64 {
	rmse := RMSE(x, xhat)
	r := Range(x)
	if r == 0 {
		if rmse == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return rmse / r
}

// PSNROf returns the peak signal-to-noise ratio in dB:
//
//	PSNR = 10·log10(x_max² / mean((x-x̂)²))
//
// following the paper's formula, with x_max taken as the peak magnitude of
// the reference signal. A perfect reconstruction yields +Inf.
func PSNROf(x, xhat []float64) float64 {
	mse := MSE(x, xhat)
	var peak float64
	for _, v := range x {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if mse == 0 {
		return math.Inf(1)
	}
	if peak == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(peak*peak/mse)
}

// Measure computes the accuracy of xhat against x under k.
func Measure(k Kind, x, xhat []float64) float64 {
	if k == PSNR {
		return PSNROf(x, xhat)
	}
	return NRMSEOf(x, xhat)
}

// RelErr returns |got-want| / |want|. A zero reference with a nonzero
// value yields +Inf; 0/0 is 0.
func RelErr(want, got float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// EquivalentNRMSE converts an accuracy expressed under k into the NRMSE
// domain so quantities measured under different metrics can be ranked.
// For NRMSE it is the identity. For PSNR it inverts the PSNR formula
// assuming a unit-peak signal: NRMSE ≈ 10^(-PSNR/20).
func EquivalentNRMSE(k Kind, acc float64) float64 {
	if k == NRMSE {
		return acc
	}
	return math.Pow(10, -acc/20)
}
