// Package errmetric implements the error metrics the paper uses to
// characterize and control the fidelity of reduced representations:
// RMSE, NRMSE and PSNR (§III-B1) for error control, plus SSIM and Dice's
// coefficient for the GenASiS rendering analysis (§IV-A) and relative
// error for scalar analysis outcomes.
package errmetric

import (
	"fmt"
	"math"
)

// Kind selects which error metric governs error control.
type Kind int

const (
	// NRMSE is root-mean-square error normalized by the data range;
	// smaller is more accurate.
	NRMSE Kind = iota
	// PSNR is peak signal-to-noise ratio in dB; larger is more accurate.
	PSNR
)

// String returns the metric name.
func (k Kind) String() string {
	switch k {
	case NRMSE:
		return "NRMSE"
	case PSNR:
		return "PSNR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Better reports whether accuracy a is strictly better than b under k.
func (k Kind) Better(a, b float64) bool {
	if k == PSNR {
		return a > b
	}
	return a < b
}

// Satisfies reports whether achieved accuracy meets bound under k
// (achieved at least as accurate as the bound).
func (k Kind) Satisfies(achieved, bound float64) bool {
	if k == PSNR {
		return achieved >= bound
	}
	return achieved <= bound
}

// MSE returns the mean squared error between x and xhat. The slices must
// have equal nonzero length.
func MSE(x, xhat []float64) float64 {
	if len(x) != len(xhat) {
		panic(fmt.Sprintf("errmetric: length mismatch %d vs %d", len(x), len(xhat)))
	}
	if len(x) == 0 {
		panic("errmetric: empty input")
	}
	var sum float64
	for i := range x {
		d := x[i] - xhat[i]
		sum += d * d
	}
	return sum / float64(len(x))
}

// RMSE returns the root mean squared error.
func RMSE(x, xhat []float64) float64 { return math.Sqrt(MSE(x, xhat)) }

// Range returns max(x) - min(x).
func Range(x []float64) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// Stats holds single-pass statistics of a reference field, precomputed
// once so hot loops that measure many reconstructions against the same
// reference (the refactor ladder sweep, per-ratio accuracy tables) stop
// re-scanning it for Range/peak on every call. All derived values are
// bit-identical to what the free functions compute: min/max/peak are
// order-independent and the formulas are shared.
type Stats struct {
	Min, Max float64 // data range endpoints (Range() = Max − Min)
	Peak     float64 // max |v|, PSNR's reference peak
	Mean     float64
	N        int
}

// NewStats scans x once. It panics on empty input, as MSE does.
func NewStats(x []float64) Stats {
	if len(x) == 0 {
		panic("errmetric: empty input")
	}
	min, max := math.Inf(1), math.Inf(-1)
	var peak, sum float64
	for _, v := range x {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		if a := math.Abs(v); a > peak {
			peak = a
		}
		sum += v
	}
	return Stats{Min: min, Max: max, Peak: peak, Mean: sum / float64(len(x)), N: len(x)}
}

// Range returns max(x) − min(x), as the free Range computes it.
func (s Stats) Range() float64 { return s.Max - s.Min }

// NRMSE is NRMSEOf with the reference range precomputed.
func (s Stats) NRMSE(x, xhat []float64) float64 {
	return s.nrmseFromRMSE(RMSE(x, xhat))
}

func (s Stats) nrmseFromRMSE(rmse float64) float64 {
	r := s.Range()
	if r == 0 {
		if rmse == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return rmse / r
}

// PSNR is PSNROf with the reference peak precomputed.
func (s Stats) PSNR(x, xhat []float64) float64 {
	return s.psnrFromMSE(MSE(x, xhat))
}

func (s Stats) psnrFromMSE(mse float64) float64 {
	if mse == 0 {
		return math.Inf(1)
	}
	if s.Peak == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(s.Peak*s.Peak/mse)
}

// Measure computes the accuracy of xhat against the reference x the
// stats were built from, under k.
func (s Stats) Measure(k Kind, x, xhat []float64) float64 {
	if k == PSNR {
		return s.PSNR(x, xhat)
	}
	return s.NRMSE(x, xhat)
}

// FromSSE converts a sum of squared errors over the reference's N points
// into the metric value, using the same formulas as the free functions —
// the incremental path of refactor's single-sweep ladder construction.
func (s Stats) FromSSE(k Kind, sse float64) float64 {
	mse := sse / float64(s.N)
	if k == PSNR {
		return s.psnrFromMSE(mse)
	}
	return s.nrmseFromRMSE(math.Sqrt(mse))
}

// SSEBudget returns the largest sum of squared errors over N points that
// still satisfies bound under k (FromSSE inverted at the bound), so a
// running SSE can be checked with one comparison instead of a sqrt or
// log10 per probe. Degenerate references (zero range, zero peak) get a
// zero budget: only an exact reconstruction satisfies.
func (s Stats) SSEBudget(k Kind, bound float64) float64 {
	if k == PSNR {
		if s.Peak == 0 {
			return 0
		}
		return s.Peak * s.Peak * float64(s.N) * math.Pow(10, -bound/10)
	}
	r := s.Range()
	if r == 0 {
		return 0
	}
	t := bound * r
	return t * t * float64(s.N)
}

// NRMSEOf returns RMSE normalized by the range of x:
//
//	NRMSE = sqrt(mean((x-x̂)²)) / (x_max - x_min)
//
// A constant signal (zero range) with any mismatch yields +Inf; a perfect
// reconstruction yields 0 even at zero range.
func NRMSEOf(x, xhat []float64) float64 {
	return NewStats(x).NRMSE(x, xhat)
}

// PSNROf returns the peak signal-to-noise ratio in dB:
//
//	PSNR = 10·log10(x_max² / mean((x-x̂)²))
//
// following the paper's formula, with x_max taken as the peak magnitude of
// the reference signal. A perfect reconstruction yields +Inf.
func PSNROf(x, xhat []float64) float64 {
	return NewStats(x).PSNR(x, xhat)
}

// Measure computes the accuracy of xhat against x under k.
func Measure(k Kind, x, xhat []float64) float64 {
	if k == PSNR {
		return PSNROf(x, xhat)
	}
	return NRMSEOf(x, xhat)
}

// RelErr returns |got-want| / |want|. A zero reference with a nonzero
// value yields +Inf; 0/0 is 0.
func RelErr(want, got float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// EquivalentNRMSE converts an accuracy expressed under k into the NRMSE
// domain so quantities measured under different metrics can be ranked.
// For NRMSE it is the identity. For PSNR it inverts the PSNR formula
// assuming a unit-peak signal: NRMSE ≈ 10^(-PSNR/20).
func EquivalentNRMSE(k Kind, acc float64) float64 {
	if k == NRMSE {
		return acc
	}
	return math.Pow(10, -acc/20)
}
