package errmetric

import (
	"fmt"
	"math"
)

// SSIM computes the mean structural similarity index between two 2D
// images (row-major, rows×cols), following Wang et al. 2004 with an 8×8
// sliding window and the standard stabilizing constants. Pixel values are
// first normalized to [0,1] by the reference image's range, so dynamic
// range L = 1, C1 = (0.01)², C2 = (0.03)².
//
// SSIM is 1 for identical images and decreases toward 0 (or below) as
// structure diverges; the paper uses it to judge GenASiS renderings of
// reduced data against full-data renderings.
func SSIM(ref, img []float64, rows, cols int) float64 {
	if rows <= 0 || cols <= 0 || rows*cols != len(ref) || len(ref) != len(img) {
		panic(fmt.Sprintf("errmetric: SSIM shape mismatch rows=%d cols=%d len=%d/%d",
			rows, cols, len(ref), len(img)))
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range ref {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	scale := max - min
	if scale == 0 {
		scale = 1
	}
	norm := func(src []float64) []float64 {
		out := make([]float64, len(src))
		for i, v := range src {
			out[i] = (v - min) / scale
		}
		return out
	}
	a, b := norm(ref), norm(img)

	const (
		win = 8
		c1  = 0.01 * 0.01
		c2  = 0.03 * 0.03
	)
	stepR, stepC := win/2, win/2
	var total float64
	var windows int
	for r0 := 0; r0 < rows; r0 += stepR {
		r1 := r0 + win
		if r1 > rows {
			r1 = rows
		}
		if r1-r0 < 2 {
			continue
		}
		for c0 := 0; c0 < cols; c0 += stepC {
			c1e := c0 + win
			if c1e > cols {
				c1e = cols
			}
			if c1e-c0 < 2 {
				continue
			}
			n := float64((r1 - r0) * (c1e - c0))
			var sa, sb float64
			for r := r0; r < r1; r++ {
				for c := c0; c < c1e; c++ {
					sa += a[r*cols+c]
					sb += b[r*cols+c]
				}
			}
			ma, mb := sa/n, sb/n
			var va, vb, cov float64
			for r := r0; r < r1; r++ {
				for c := c0; c < c1e; c++ {
					da := a[r*cols+c] - ma
					db := b[r*cols+c] - mb
					va += da * da
					vb += db * db
					cov += da * db
				}
			}
			va /= n - 1
			vb /= n - 1
			cov /= n - 1
			ssim := ((2*ma*mb + c1) * (2*cov + c2)) /
				((ma*ma + mb*mb + c1) * (va + vb + c2))
			total += ssim
			windows++
		}
	}
	if windows == 0 {
		panic("errmetric: SSIM image too small for any window")
	}
	return total / float64(windows)
}

// Dice computes Dice's coefficient between two boolean masks:
// 2|A∩B| / (|A|+|B|). Two empty masks are defined as perfectly similar
// (1). The paper uses Dice on thresholded renderings.
func Dice(a, b []bool) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("errmetric: Dice length mismatch %d vs %d", len(a), len(b)))
	}
	var inter, na, nb int
	for i := range a {
		if a[i] {
			na++
		}
		if b[i] {
			nb++
		}
		if a[i] && b[i] {
			inter++
		}
	}
	if na+nb == 0 {
		return 1
	}
	return 2 * float64(inter) / float64(na+nb)
}

// ThresholdMask returns the mask x >= thresh.
func ThresholdMask(x []float64, thresh float64) []bool {
	m := make([]bool, len(x))
	for i, v := range x {
		m[i] = v >= thresh
	}
	return m
}
