package errmetric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSEKnownValues(t *testing.T) {
	x := []float64{0, 0, 0, 0}
	xhat := []float64{1, 1, 1, 1}
	if got := RMSE(x, xhat); got != 1 {
		t.Fatalf("RMSE = %v, want 1", got)
	}
	if got := MSE([]float64{3}, []float64{1}); got != 4 {
		t.Fatalf("MSE = %v, want 4", got)
	}
}

func TestRMSEPerfect(t *testing.T) {
	x := []float64{1, 2, 3}
	if got := RMSE(x, x); got != 0 {
		t.Fatalf("RMSE(x,x) = %v", got)
	}
}

func TestNRMSENormalization(t *testing.T) {
	x := []float64{0, 10} // range 10
	xhat := []float64{1, 10}
	// RMSE = sqrt(0.5); NRMSE = sqrt(0.5)/10
	want := math.Sqrt(0.5) / 10
	if got := NRMSEOf(x, xhat); math.Abs(got-want) > 1e-15 {
		t.Fatalf("NRMSE = %v, want %v", got, want)
	}
}

func TestNRMSEZeroRange(t *testing.T) {
	x := []float64{5, 5}
	if got := NRMSEOf(x, x); got != 0 {
		t.Fatalf("perfect zero-range NRMSE = %v", got)
	}
	if got := NRMSEOf(x, []float64{5, 6}); !math.IsInf(got, 1) {
		t.Fatalf("imperfect zero-range NRMSE = %v, want +Inf", got)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// peak = 10, MSE = 1 -> PSNR = 10*log10(100) = 20 dB.
	x := []float64{10, 0}
	xhat := []float64{10 - math.Sqrt2, 0} // d² sums to 2, mean 1
	got := PSNROf(x, xhat)
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("PSNR = %v, want 20", got)
	}
}

func TestPSNRPerfectIsInf(t *testing.T) {
	x := []float64{1, 2}
	if got := PSNROf(x, x); !math.IsInf(got, 1) {
		t.Fatalf("PSNR = %v", got)
	}
}

func TestKindSemantics(t *testing.T) {
	if !NRMSE.Better(0.01, 0.1) || NRMSE.Better(0.1, 0.01) {
		t.Fatal("NRMSE: smaller is better")
	}
	if !PSNR.Better(80, 30) || PSNR.Better(30, 80) {
		t.Fatal("PSNR: larger is better")
	}
	if !NRMSE.Satisfies(0.01, 0.01) || !NRMSE.Satisfies(0.005, 0.01) || NRMSE.Satisfies(0.02, 0.01) {
		t.Fatal("NRMSE Satisfies wrong")
	}
	if !PSNR.Satisfies(35, 30) || PSNR.Satisfies(25, 30) {
		t.Fatal("PSNR Satisfies wrong")
	}
	if NRMSE.String() != "NRMSE" || PSNR.String() != "PSNR" {
		t.Fatal("String names")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(10, 12); math.Abs(got-0.2) > 1e-15 {
		t.Fatalf("RelErr = %v", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Fatalf("RelErr(0,0) = %v", got)
	}
	if got := RelErr(0, 1); !math.IsInf(got, 1) {
		t.Fatalf("RelErr(0,1) = %v", got)
	}
	if got := RelErr(-4, -5); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("RelErr negative = %v", got)
	}
}

func TestMeasureDispatch(t *testing.T) {
	x := []float64{0, 10}
	xhat := []float64{1, 10}
	if Measure(NRMSE, x, xhat) != NRMSEOf(x, xhat) {
		t.Fatal("Measure NRMSE mismatch")
	}
	if Measure(PSNR, x, xhat) != PSNROf(x, xhat) {
		t.Fatal("Measure PSNR mismatch")
	}
}

func TestEquivalentNRMSE(t *testing.T) {
	if got := EquivalentNRMSE(NRMSE, 0.03); got != 0.03 {
		t.Fatalf("identity = %v", got)
	}
	// PSNR 40 dB -> 10^-2 = 0.01
	if got := EquivalentNRMSE(PSNR, 40); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("psnr equiv = %v", got)
	}
	// Monotone: higher PSNR -> smaller equivalent NRMSE.
	if !(EquivalentNRMSE(PSNR, 80) < EquivalentNRMSE(PSNR, 30)) {
		t.Fatal("not monotone")
	}
}

func TestNRMSEScaleInvarianceProperty(t *testing.T) {
	// NRMSE is invariant to affine rescaling of both signals.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(64)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = x[i] + 0.1*rng.NormFloat64()
		}
		base := NRMSEOf(x, y)
		a, b := 3.7, -11.0
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range x {
			xs[i] = a*x[i] + b
			ys[i] = a*y[i] + b
		}
		scaled := NRMSEOf(xs, ys)
		return math.Abs(base-scaled) < 1e-9*(1+base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPSNRMonotoneInNoiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		noisy := func(sigma float64) []float64 {
			r2 := rand.New(rand.NewSource(seed + 1))
			y := make([]float64, n)
			for i := range y {
				y[i] = x[i] + sigma*r2.NormFloat64()
			}
			return y
		}
		return PSNROf(x, noisy(0.01)) > PSNROf(x, noisy(1.0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestSSIMIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := make([]float64, 32*32)
	for i := range img {
		img[i] = rng.Float64()
	}
	if got := SSIM(img, img, 32, 32); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SSIM(x,x) = %v", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, cols := 32, 32
	ref := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ref[r*cols+c] = math.Sin(float64(r)/4) * math.Cos(float64(c)/4)
		}
	}
	noisy := func(sigma float64) []float64 {
		out := make([]float64, len(ref))
		for i := range out {
			out[i] = ref[i] + sigma*rng.NormFloat64()
		}
		return out
	}
	low := SSIM(ref, noisy(0.05), rows, cols)
	high := SSIM(ref, noisy(0.8), rows, cols)
	if !(low > high) {
		t.Fatalf("SSIM not monotone: %v vs %v", low, high)
	}
	if !(low > 0.7) {
		t.Fatalf("light noise SSIM too low: %v", low)
	}
}

func TestSSIMShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SSIM(make([]float64, 10), make([]float64, 10), 3, 3)
}

func TestDice(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	// |A∩B|=1, |A|=2, |B|=2 -> 2/4 = 0.5
	if got := Dice(a, b); got != 0.5 {
		t.Fatalf("Dice = %v", got)
	}
	if got := Dice(a, a); got != 1 {
		t.Fatalf("Dice(x,x) = %v", got)
	}
	if got := Dice([]bool{false}, []bool{false}); got != 1 {
		t.Fatalf("Dice(empty,empty) = %v", got)
	}
	if got := Dice([]bool{true}, []bool{false}); got != 0 {
		t.Fatalf("disjoint Dice = %v", got)
	}
}

func TestThresholdMask(t *testing.T) {
	m := ThresholdMask([]float64{1, 2, 3}, 2)
	if m[0] || !m[1] || !m[2] {
		t.Fatalf("mask = %v", m)
	}
}

// TestStatsMatchesFreeFunctions pins the precomputed-stats path to the
// free functions bit for bit across varied signals, including
// degenerate ones (constant, zero-peak is impossible with nonzero data,
// so an all-zero reference covers it).
func TestStatsMatchesFreeFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	signals := [][]float64{
		make([]float64, 64), // all zeros: zero range, zero peak
		{5, 5, 5, 5},        // constant, nonzero
		{-3, 0, 7, 1e-9, -2.5},
	}
	big := make([]float64, 10000)
	for i := range big {
		big[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
	}
	signals = append(signals, big)
	for si, x := range signals {
		st := NewStats(x)
		if st.N != len(x) {
			t.Errorf("signal %d: N=%d want %d", si, st.N, len(x))
		}
		if got, want := st.Range(), Range(x); got != want {
			t.Errorf("signal %d: Range %v != %v", si, got, want)
		}
		for trial := 0; trial < 3; trial++ {
			xhat := make([]float64, len(x))
			for i := range xhat {
				xhat[i] = x[i] + rng.NormFloat64()*0.1*float64(trial)
			}
			if got, want := st.NRMSE(x, xhat), NRMSEOf(x, xhat); got != want {
				t.Errorf("signal %d trial %d: NRMSE %v != %v", si, trial, got, want)
			}
			if got, want := st.PSNR(x, xhat), PSNROf(x, xhat); got != want {
				t.Errorf("signal %d trial %d: PSNR %v != %v", si, trial, got, want)
			}
			for _, k := range []Kind{NRMSE, PSNR} {
				if got, want := st.Measure(k, x, xhat), Measure(k, x, xhat); got != want {
					t.Errorf("signal %d trial %d: Measure(%v) %v != %v", si, trial, k, got, want)
				}
			}
		}
	}
}

// TestStatsFromSSERoundTrip checks that FromSSE applied to the exact sum
// of squared errors reproduces the direct metric computation, and that
// SSEBudget inverts FromSSE at the bound.
func TestStatsFromSSERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 5000)
	xhat := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
		xhat[i] = x[i] + rng.NormFloat64()*0.01
	}
	st := NewStats(x)
	var sse float64
	for i := range x {
		d := x[i] - xhat[i]
		sse += d * d
	}
	for _, k := range []Kind{NRMSE, PSNR} {
		got := st.FromSSE(k, sse)
		want := Measure(k, x, xhat)
		if got != want {
			t.Errorf("FromSSE(%v) = %v, direct measure %v", k, got, want)
		}
	}
	// Budget inversion: an SSE exactly at the budget satisfies the
	// bound; slightly above does not (up to the round trip's rounding,
	// checked with a 1-ulp-scale margin via Nextafter).
	for _, tc := range []struct {
		k     Kind
		bound float64
	}{{NRMSE, 1e-3}, {NRMSE, 0.5}, {PSNR, 30}, {PSNR, 80}} {
		budget := st.SSEBudget(tc.k, tc.bound)
		if budget <= 0 {
			t.Fatalf("budget %v for %v bound %v", budget, tc.k, tc.bound)
		}
		if acc := st.FromSSE(tc.k, budget); !tc.k.Satisfies(acc, tc.bound) {
			// The analytic inversion can land a rounding step past the
			// bound; it must be within one ulp of satisfying.
			if acc2 := st.FromSSE(tc.k, math.Nextafter(budget, 0)); !tc.k.Satisfies(acc2, tc.bound) {
				t.Errorf("%v bound %v: FromSSE(budget)=%v does not satisfy", tc.k, tc.bound, acc)
			}
		}
		if acc := st.FromSSE(tc.k, budget*1.01); tc.k.Satisfies(acc, tc.bound) {
			t.Errorf("%v bound %v: SSE 1%% over budget still satisfies (%v)", tc.k, tc.bound, acc)
		}
	}
	// Degenerate references get a zero budget.
	zero := NewStats(make([]float64, 8))
	if b := zero.SSEBudget(NRMSE, 0.1); b != 0 {
		t.Errorf("zero-range NRMSE budget %v, want 0", b)
	}
	if b := zero.SSEBudget(PSNR, 30); b != 0 {
		t.Errorf("zero-peak PSNR budget %v, want 0", b)
	}
}

// TestNewStatsPanicsOnEmpty matches MSE's contract.
func TestNewStatsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStats(nil)
}
