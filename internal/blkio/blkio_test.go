package blkio

import (
	"testing"
	"testing/quick"
)

func TestClampWeight(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 100}, {99, 100}, {100, 100}, {500, 500}, {1000, 1000}, {5000, 1000}, {-7, 100},
	}
	for _, c := range cases {
		if got := ClampWeight(c.in); got != c.want {
			t.Errorf("ClampWeight(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClampWeightProperty(t *testing.T) {
	f := func(w int) bool {
		c := ClampWeight(w)
		return c >= MinWeight && c <= MaxWeight &&
			(w < MinWeight || w > MaxWeight || c == w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewCgroupDefaults(t *testing.T) {
	cg := NewCgroup("analytics")
	if cg.Name() != "analytics" {
		t.Fatalf("name = %q", cg.Name())
	}
	if cg.Weight() != DefaultWeight {
		t.Fatalf("weight = %d, want %d", cg.Weight(), DefaultWeight)
	}
	if cg.ReadBpsLimit() != 0 || cg.WriteBpsLimit() != 0 {
		t.Fatal("new cgroup should be unthrottled")
	}
}

func TestSetWeightClampsAndNotifies(t *testing.T) {
	cg := NewCgroup("a")
	calls := 0
	cg.Subscribe(func() { calls++ })
	cg.SetWeight(5000)
	if cg.Weight() != MaxWeight {
		t.Fatalf("weight = %d", cg.Weight())
	}
	cg.SetWeight(1)
	if cg.Weight() != MinWeight {
		t.Fatalf("weight = %d", cg.Weight())
	}
	if calls != 2 {
		t.Fatalf("subscriber calls = %d, want 2", calls)
	}
}

func TestThrottleSettersNotify(t *testing.T) {
	cg := NewCgroup("a")
	calls := 0
	cg.Subscribe(func() { calls++ })
	cg.SetReadBpsLimit(100)
	cg.SetWriteBpsLimit(200)
	cg.SetReadBpsLimit(-5) // negative disables
	if cg.ReadBpsLimit() != 0 {
		t.Fatalf("read limit = %v, want 0", cg.ReadBpsLimit())
	}
	if cg.WriteBpsLimit() != 200 {
		t.Fatalf("write limit = %v", cg.WriteBpsLimit())
	}
	if calls != 3 {
		t.Fatalf("subscriber calls = %d, want 3", calls)
	}
}

func TestAccounting(t *testing.T) {
	cg := NewCgroup("a")
	cg.Account(100, false)
	cg.Account(50, true)
	cg.Account(25, false)
	if cg.BytesRead() != 125 {
		t.Fatalf("read = %v", cg.BytesRead())
	}
	if cg.BytesWritten() != 50 {
		t.Fatalf("written = %v", cg.BytesWritten())
	}
}

func TestControllerLifecycle(t *testing.T) {
	ctl := NewController()
	a, err := ctl.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Create("a"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	ctl.MustCreate("b")
	if ctl.Lookup("a") != a {
		t.Fatal("lookup mismatch")
	}
	names := ctl.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	ctl.Remove("a")
	if ctl.Lookup("a") != nil {
		t.Fatal("removed cgroup still present")
	}
}

func TestMustCreatePanicsOnDuplicate(t *testing.T) {
	ctl := NewController()
	ctl.MustCreate("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctl.MustCreate("x")
}
