// Package blkio emulates the Linux cgroups block-I/O controller as used by
// container runtimes: per-cgroup proportional weight (blkio.weight,
// 100–1000), per-device byte-rate throttles
// (blkio.throttle.read_bps_device / write_bps_device), and runtime
// adjustment without restarting the container.
//
// The semantics mirror the kernel's CFQ/BFQ proportional-share behaviour
// that the Tango paper relies on: weights divide the device bandwidth that
// is actually available, so a static weight cannot provide performance
// isolation when the number of competitors changes (paper Fig 1 /
// Motivation 2), while a runtime-adjusted weight can steer allocation
// (paper §III-C step 3).
package blkio

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Weight bounds as enforced by the kernel (and Docker's --blkio-weight).
const (
	MinWeight     = 100
	MaxWeight     = 1000
	DefaultWeight = 100 // the paper's default container weight (§IV-A)
)

// ClampWeight restricts w to the valid blkio weight range.
func ClampWeight(w int) int {
	if w < MinWeight {
		return MinWeight
	}
	if w > MaxWeight {
		return MaxWeight
	}
	return w
}

// Cgroup is a control group with block-I/O parameters. A Cgroup is shared
// by reference between the container that owns it and the devices that
// schedule its flows. Mutations notify subscribed devices so that
// proportional shares are recomputed immediately (runtime adjustment).
type Cgroup struct {
	mu   sync.Mutex
	name string // immutable after construction

	weight     int     // guarded by mu
	readBps    float64 // guarded by mu (0 = unlimited)
	writeBps   float64 // guarded by mu (0 = unlimited)
	weightFail bool    // guarded by mu; injected fault: weight writes error

	subs []func() // guarded by mu; snapshot before invoking outside the lock

	// accounting
	bytesRead    float64 // guarded by mu
	bytesWritten float64 // guarded by mu
}

// NewCgroup creates a cgroup with the default weight and no throttles.
func NewCgroup(name string) *Cgroup {
	return &Cgroup{name: name, weight: DefaultWeight}
}

// Name returns the cgroup name.
func (c *Cgroup) Name() string { return c.name }

// Weight returns the current proportional weight.
func (c *Cgroup) Weight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.weight
}

// ErrWeightWrite is returned by TrySetWeight while a weight-write fault
// is injected (the kernel rejecting the blkio.weight write: EIO on the
// cgroupfs file, a crashed agent, a read-only remount).
var ErrWeightWrite = errors.New("blkio: weight write failed")

// SetWeight adjusts the proportional weight at runtime, clamping to
// [MinWeight, MaxWeight], and notifies subscribers. This mirrors a
// fire-and-forget write to blkio.weight: it requires neither
// administrator access nor a container restart (paper §III-C), and —
// like shell redirection into cgroupfs — it silently does nothing while
// a weight-write fault is injected. Fault-tolerant callers use
// TrySetWeight and re-apply.
func (c *Cgroup) SetWeight(w int) {
	_ = c.TrySetWeight(w)
}

// TrySetWeight is SetWeight on a fallible path: while a weight-write
// fault is injected (SetWeightFailing) it returns ErrWeightWrite and
// leaves the weight unchanged.
func (c *Cgroup) TrySetWeight(w int) error {
	c.mu.Lock()
	if c.weightFail {
		c.mu.Unlock()
		return fmt.Errorf("cgroup %q: %w", c.name, ErrWeightWrite)
	}
	c.weight = ClampWeight(w)
	subs := c.subs
	c.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
	return nil
}

// SetWeightFailing toggles the injected weight-write fault (see
// internal/fault). While failing, TrySetWeight errors and SetWeight is a
// silent no-op; reads and throttle writes are unaffected.
func (c *Cgroup) SetWeightFailing(fail bool) {
	c.mu.Lock()
	c.weightFail = fail
	c.mu.Unlock()
}

// WeightFailing reports whether weight writes are currently failing.
func (c *Cgroup) WeightFailing() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.weightFail
}

// ReadBpsLimit returns the read throttle in bytes/sec (0 = unlimited).
func (c *Cgroup) ReadBpsLimit() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readBps
}

// WriteBpsLimit returns the write throttle in bytes/sec (0 = unlimited).
func (c *Cgroup) WriteBpsLimit() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeBps
}

// SetReadBpsLimit sets blkio.throttle.read_bps_device (0 disables).
func (c *Cgroup) SetReadBpsLimit(bps float64) {
	c.mu.Lock()
	if bps < 0 {
		bps = 0
	}
	c.readBps = bps
	subs := c.subs
	c.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}

// SetWriteBpsLimit sets blkio.throttle.write_bps_device (0 disables).
func (c *Cgroup) SetWriteBpsLimit(bps float64) {
	c.mu.Lock()
	if bps < 0 {
		bps = 0
	}
	c.writeBps = bps
	subs := c.subs
	c.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}

// Subscribe registers fn to be invoked after any parameter change. Devices
// subscribe once per cgroup so weight updates reshape in-flight shares.
func (c *Cgroup) Subscribe(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, fn)
}

// Account records served bytes (called by devices on flow completion).
func (c *Cgroup) Account(bytes float64, write bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if write {
		c.bytesWritten += bytes
	} else {
		c.bytesRead += bytes
	}
}

// BytesRead returns cumulative bytes read through this cgroup.
func (c *Cgroup) BytesRead() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesRead
}

// BytesWritten returns cumulative bytes written through this cgroup.
func (c *Cgroup) BytesWritten() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesWritten
}

// Controller is a registry of cgroups on a node, analogous to the blkio
// cgroup hierarchy root.
type Controller struct {
	mu     sync.Mutex
	groups map[string]*Cgroup // guarded by mu
}

// NewController returns an empty cgroup registry.
func NewController() *Controller {
	return &Controller{groups: make(map[string]*Cgroup)}
}

// Create registers and returns a new cgroup. It fails if the name exists.
func (ctl *Controller) Create(name string) (*Cgroup, error) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	if _, ok := ctl.groups[name]; ok {
		return nil, fmt.Errorf("blkio: cgroup %q already exists", name)
	}
	cg := NewCgroup(name)
	ctl.groups[name] = cg
	return cg, nil
}

// MustCreate is Create that panics on duplicates; used by scenario setup
// code where names are program constants.
func (ctl *Controller) MustCreate(name string) *Cgroup {
	cg, err := ctl.Create(name)
	if err != nil {
		panic(err)
	}
	return cg
}

// Lookup returns the named cgroup, or nil.
func (ctl *Controller) Lookup(name string) *Cgroup {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.groups[name]
}

// Remove deletes the named cgroup from the registry.
func (ctl *Controller) Remove(name string) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	delete(ctl.groups, name)
}

// Names returns the registered cgroup names in sorted order.
func (ctl *Controller) Names() []string {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	names := make([]string, 0, len(ctl.groups))
	for n := range ctl.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
