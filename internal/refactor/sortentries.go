package refactor

import (
	"math"
	"slices"
)

// radixMin is the slice length above which sortEntries switches from
// comparison sorting to the radix path; below it the histogram passes
// cost more than pdqsort.
const radixMin = 1 << 12

// sortEntries orders entries by descending |value|, ties broken by
// ascending index — the order compareEntries defines. Large slices use
// a stable LSD radix sort on the complemented IEEE bit pattern of
// |value|: bits(|v|) is monotone in |v| for non-NaN values, so
// ascending passes over the complement yield descending magnitude, and
// stability supplies the index tiebreak because extraction emits
// entries in ascending index order. The result matches compareEntries
// for every non-NaN input; NaN differences (possible only from
// Inf−Inf) order deterministically before +Inf here, whereas a NaN is
// incomparable under compareEntries and pdqsort may place it
// arbitrarily — the radix order is the better-defined of the two.
func sortEntries(entries []Entry) {
	n := len(entries)
	if n < radixMin {
		slices.SortFunc(entries, compareEntries)
		return
	}

	keys := make([]uint64, n)
	for i, e := range entries {
		keys[i] = ^math.Float64bits(math.Abs(e.Value))
	}

	// One scan builds all eight digit histograms; digit counts do not
	// depend on the order of earlier passes.
	var count [8][256]int
	for _, k := range keys {
		for b := uint(0); b < 8; b++ {
			count[b][byte(k>>(8*b))]++
		}
	}

	tmpE := make([]Entry, n)
	tmpK := make([]uint64, n)
	src, dst := entries, tmpE
	ksrc, kdst := keys, tmpK
	for b := uint(0); b < 8; b++ {
		c := &count[b]
		// A digit every key shares permutes nothing; skip the pass.
		if c[byte(ksrc[0]>>(8*b))] == n {
			continue
		}
		var offs [256]int
		off := 0
		for v := 0; v < 256; v++ {
			offs[v] = off
			off += c[v]
		}
		for i := 0; i < n; i++ {
			k := ksrc[i]
			v := byte(k >> (8 * b))
			o := offs[v]
			offs[v] = o + 1
			dst[o] = src[i]
			kdst[o] = k
		}
		src, dst = dst, src
		ksrc, kdst = kdst, ksrc
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}
