// Package refactor implements the paper's error-bounded refactorization
// (§III-B): hierarchical decomposition of a tensor into a base
// representation plus per-level augmentations, with augmentation data
// points sorted by magnitude and bucketed so that any prescribed NRMSE or
// PSNR bound maps to a contiguous prefix of the stored stream, and the
// inverse recomposition used at analysis time (§III-C, Algorithm 1).
package refactor

import (
	"fmt"

	"tango/internal/par"
	"tango/internal/tensor"
)

// unravel fills idx with the multi-index of flat offset off for dims.
func unravel(off int, dims, idx []int) {
	for i := len(dims) - 1; i >= 0; i-- {
		idx[i] = off % dims[i]
		off /= dims[i]
	}
}

// increment advances idx to the next row-major multi-index within dims.
func increment(idx, dims []int) {
	for i := len(dims) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < dims[i] {
			return
		}
		idx[i] = 0
	}
}

// CoarseDims returns the dimensions of the restriction of a grid with
// dims by decimation factor d: indices {0, d, 2d, …} are retained along
// each dimension.
func CoarseDims(dims []int, d int) []int {
	out := make([]int, len(dims))
	for i, n := range dims {
		out[i] = (n-1)/d + 1
	}
	return out
}

// Restrict retains every d-th data point of t along each dimension
// (paper §III-B2 step 1). d must be >= 2.
func Restrict(t *tensor.Tensor, d int) *tensor.Tensor {
	if d < 2 {
		panic(fmt.Sprintf("refactor: decimation factor %d must be >= 2", d))
	}
	dims := t.Dims()
	cd := CoarseDims(dims, d)
	out := tensor.New(cd...)
	src := t.Data()
	dst := out.Data()

	rank := len(dims)
	// Workers own disjoint output ranges, so the parallel execution is
	// bit-identical to the sequential one.
	par.For(len(dst), func(lo, hi int) {
		idx := make([]int, rank) // coarse multi-index
		unravel(lo, cd, idx)
		for off := lo; off < hi; off++ {
			// Map the coarse multi-index to its fine row-major offset.
			fineOff := 0
			for i := 0; i < rank; i++ {
				fineOff = fineOff*dims[i] + idx[i]*d
			}
			dst[off] = src[fineOff]
			increment(idx, cd)
		}
	})
	return out
}

// Prolongate interpolates a coarse tensor back onto a fine grid with the
// given dims using multilinear interpolation (paper §III-B2 step 2,
// "prolongate(·)"). Coarse nodes sit at fine indices {0, d, 2d, …}; fine
// points beyond the last coarse node along a dimension clamp to it.
// Prolongation is exact at coarse-node positions, which is what makes
// augmentation values zero there.
func Prolongate(coarse *tensor.Tensor, fineDims []int, d int) *tensor.Tensor {
	if d < 2 {
		panic(fmt.Sprintf("refactor: decimation factor %d must be >= 2", d))
	}
	cd := coarse.Dims()
	want := CoarseDims(fineDims, d)
	if len(cd) != len(fineDims) {
		panic("refactor: rank mismatch in Prolongate")
	}
	for i := range cd {
		if cd[i] != want[i] {
			panic(fmt.Sprintf("refactor: coarse dims %v incompatible with fine dims %v at d=%d", cd, fineDims, d))
		}
	}
	rank := len(fineDims)
	out := tensor.New(fineDims...)
	src := coarse.Data()
	dst := out.Data()

	// Per-dimension interpolation tables: for each fine coordinate x,
	// the lower coarse node, and the fractional weight of the upper node.
	lo := make([][]int, rank)
	fr := make([][]float64, rank)
	for i := 0; i < rank; i++ {
		n := fineDims[i]
		nc := cd[i]
		lo[i] = make([]int, n)
		fr[i] = make([]float64, n)
		for x := 0; x < n; x++ {
			p := x / d
			f := float64(x-p*d) / float64(d)
			if p >= nc-1 {
				p = nc - 1
				f = 0
			}
			lo[i][x] = p
			fr[i][x] = f
		}
	}

	cStrides := make([]int, rank)
	st := 1
	for i := rank - 1; i >= 0; i-- {
		cStrides[i] = st
		st *= cd[i]
	}

	corners := 1 << rank
	par.For(len(dst), func(from, to int) {
		idx := make([]int, rank)
		unravel(from, fineDims, idx)
		for off := from; off < to; off++ {
			var v float64
			for c := 0; c < corners; c++ {
				w := 1.0
				cOff := 0
				for i := 0; i < rank; i++ {
					x := idx[i]
					if c&(1<<i) != 0 {
						f := fr[i][x]
						if f == 0 {
							w = 0
							break
						}
						w *= f
						cOff += (lo[i][x] + 1) * cStrides[i]
					} else {
						w *= 1 - fr[i][x]
						cOff += lo[i][x] * cStrides[i]
					}
				}
				if w != 0 {
					v += w * src[cOff]
				}
			}
			dst[off] = v
			increment(idx, fineDims)
		}
	})
	return out
}
