package refactor

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"tango/internal/analytics"
	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// referenceLadder is the pre-sweep ladder construction, kept verbatim as
// the differential oracle: per-bound binary search over exact Achieved
// measures, with the coarse-step re-verify for non-monotone wobble. The
// sweep must reproduce its rungs bit for bit.
func referenceLadder(h *Hierarchy, orig *tensor.Tensor) ([]Rung, error) {
	var rungs []Rung
	push := func(bound, achieved float64, cursor, prevCursor int) {
		rungs = append(rungs, Rung{
			Bound:       bound,
			Achieved:    achieved,
			Cursor:      cursor,
			Cardinality: cursor - prevCursor,
			Bytes:       h.BytesForRange(prevCursor, cursor),
			Level:       h.LevelOfCursor(cursor),
		})
	}
	prevCursor := 0
	total := h.TotalEntries()
	for _, bound := range h.opts.Bounds {
		lo, hi := prevCursor, total
		if acc := h.Achieved(orig, lo); h.opts.Metric.Satisfies(acc, bound) {
			push(bound, acc, lo, prevCursor)
			prevCursor = lo
			continue
		}
		for lo < hi {
			mid := (lo + hi) / 2
			if h.opts.Metric.Satisfies(h.Achieved(orig, mid), bound) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cursor := lo
		step := maxInt(1, total/256)
		acc := h.Achieved(orig, cursor)
		for !h.opts.Metric.Satisfies(acc, bound) && cursor < total {
			cursor = min(cursor+step, total)
			acc = h.Achieved(orig, cursor)
		}
		if !h.opts.Metric.Satisfies(acc, bound) {
			return nil, fmt.Errorf("bound %v unreachable (achieves %v)", bound, acc)
		}
		push(bound, acc, cursor, prevCursor)
		prevCursor = cursor
	}
	return rungs, nil
}

// sweepCases spans the three applications, both metrics, and several
// bound ladders (including ones that land rungs in coarse-level zones).
func sweepCases() []struct {
	name string
	gen  func() *tensor.Tensor
	opts Options
} {
	apps := analytics.Apps()
	var cases []struct {
		name string
		gen  func() *tensor.Tensor
		opts Options
	}
	boundSets := []struct {
		tag    string
		metric errmetric.Kind
		bounds []float64
		levels int
	}{
		{"nrmse3", errmetric.NRMSE, []float64{1e-1, 1e-2, 1e-3}, 3},
		{"nrmse-loose", errmetric.NRMSE, []float64{0.5, 0.2}, 4},
		{"nrmse-tight", errmetric.NRMSE, []float64{1e-4}, 2},
		{"psnr3", errmetric.PSNR, []float64{20, 40, 60}, 3},
		{"psnr-deep", errmetric.PSNR, []float64{10, 30, 50, 70}, 4},
	}
	for _, app := range apps {
		app := app
		for _, bs := range boundSets {
			cases = append(cases, struct {
				name string
				gen  func() *tensor.Tensor
				opts Options
			}{
				name: app.Name + "/" + bs.tag,
				gen:  func() *tensor.Tensor { return app.Generate(129, 42) },
				opts: Options{Levels: bs.levels, Metric: bs.metric, Bounds: bs.bounds},
			})
		}
	}
	return cases
}

// TestSweepMatchesBinarySearch pins the tentpole's contract: the
// single-sweep ladder produces exactly the rungs the per-bound binary
// search produced — same cursors, same recorded accuracies (bitwise),
// same cardinalities, bytes, and levels.
func TestSweepMatchesBinarySearch(t *testing.T) {
	for _, tc := range sweepCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.gen()
			h, err := Decompose(orig, tc.opts)
			if err != nil {
				t.Fatalf("Decompose: %v", err)
			}
			want, err := referenceLadder(h, orig)
			if err != nil {
				t.Fatalf("referenceLadder: %v", err)
			}
			got := h.Rungs()
			if len(got) != len(want) {
				t.Fatalf("rung count %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("rung %d:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSweepBaseAccuracy pins the shared base-accuracy computation to the
// standalone exact measure.
func TestSweepBaseAccuracy(t *testing.T) {
	for _, tc := range sweepCases()[:3] {
		orig := tc.gen()
		h, err := Decompose(orig, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if want := h.Achieved(orig, 0); h.BaseAccuracy() != want {
			t.Errorf("%s: BaseAccuracy %v, want %v", tc.name, h.BaseAccuracy(), want)
		}
	}
}

// TestProberMatchesAchieved drives the stateful prober over random
// cursor sequences (jumps and ±1 runs across zone boundaries) and
// checks every probe bitwise against the full reconstruction.
func TestProberMatchesAchieved(t *testing.T) {
	apps := analytics.Apps()
	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			orig := app.Generate(65, 7)
			h, err := Decompose(orig, Options{Levels: 3, Bounds: []float64{1e-1, 1e-3}})
			if err != nil {
				t.Fatal(err)
			}
			st := errmetric.NewStats(orig.Data())
			sw := h.runSweep(orig, st)
			pr := newProber(h, st, orig, sw.floors)
			total := h.TotalEntries()
			rng := rand.New(rand.NewSource(1))
			cursor := rng.Intn(total + 1)
			for i := 0; i < 200; i++ {
				switch rng.Intn(4) {
				case 0: // long jump
					cursor = rng.Intn(total + 1)
				case 1: // step down
					cursor = maxInt(cursor-1, 0)
				default: // step up
					cursor = min(cursor+1, total)
				}
				got := pr.achieved(cursor)
				want := h.achievedWith(st, orig, cursor)
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("step %d cursor %d: prober %v, Achieved %v", i, cursor, got, want)
				}
			}
		})
	}
}

// TestProber3D exercises the support-recompute path on a rank-3 grid,
// where clamped edges and corner weights are hardest to get right.
func TestProber3D(t *testing.T) {
	orig := tensor.New(17, 17, 17)
	d := orig.Data()
	for i := range d {
		d[i] = math.Sin(float64(i)) * float64(i%13)
	}
	h, err := Decompose(orig, Options{Levels: 3, Bounds: []float64{1e-1, 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	st := errmetric.NewStats(orig.Data())
	sw := h.runSweep(orig, st)
	pr := newProber(h, st, orig, sw.floors)
	total := h.TotalEntries()
	for cursor := 0; cursor <= total; cursor += maxInt(1, total/97) {
		got := pr.achieved(cursor)
		want := h.achievedWith(st, orig, cursor)
		if got != want {
			t.Fatalf("cursor %d: prober %v, Achieved %v", cursor, got, want)
		}
	}
	// Walk backward over a zone boundary: un-apply must restore exactly.
	for cursor := total; cursor >= 0; cursor -= maxInt(1, total/53) {
		got := pr.achieved(cursor)
		want := h.achievedWith(st, orig, cursor)
		if got != want {
			t.Fatalf("backward cursor %d: prober %v, Achieved %v", cursor, got, want)
		}
	}
}

// TestAccuracyCurve checks the sweep's recorded curve: cursor-ascending,
// spanning base to full stream, monotone-improving under the metric, and
// agreeing with a fresh exact measure to within a tight relative
// tolerance (boundary points are exact up to reduction order; interior
// points carry only ulp-scale incremental drift).
func TestAccuracyCurve(t *testing.T) {
	orig := analytics.XGCApp().Generate(129, 3)
	h, err := Decompose(orig, Options{Levels: 3, Bounds: []float64{1e-1, 1e-2, 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	curve := h.AccuracyCurve()
	if len(curve) < 3 {
		t.Fatalf("curve too short: %d points", len(curve))
	}
	if curve[0].Cursor != 0 {
		t.Errorf("curve starts at cursor %d, want 0", curve[0].Cursor)
	}
	if last := curve[len(curve)-1]; last.Cursor != h.TotalEntries() {
		t.Errorf("curve ends at cursor %d, want %d", last.Cursor, h.TotalEntries())
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Cursor <= curve[i-1].Cursor {
			t.Fatalf("curve not cursor-ascending at %d: %d after %d", i, curve[i].Cursor, curve[i-1].Cursor)
		}
	}
	for _, p := range curve {
		want := h.Achieved(orig, p.Cursor)
		if want == 0 || math.IsInf(want, 0) {
			continue
		}
		// Incremental drift is ulp-scale on the SSE; relative error on
		// the metric grows as the residual shrinks toward zero
		// (cancellation), so the tail of the curve sits around 1e-8.
		if rel := math.Abs(p.Achieved-want) / math.Abs(want); rel > 1e-6 {
			t.Errorf("cursor %d: curve %v vs exact %v (rel %v)", p.Cursor, p.Achieved, want, rel)
		}
	}
	// The returned slice is a copy.
	curve[0].Achieved = -1
	if h.AccuracyCurve()[0].Achieved == -1 {
		t.Error("AccuracyCurve returned internal slice, not a copy")
	}
}

// TestCursorForAccuracy checks interpolation between rungs: targets
// between two ladder bounds map to cursors between (and tighter targets
// to larger cursors than) the bracketing rungs, and the returned
// prefix's exact accuracy satisfies the target to curve tolerance.
func TestCursorForAccuracy(t *testing.T) {
	orig := analytics.CFDApp().Generate(129, 5)
	h, err := Decompose(orig, Options{Levels: 3, Bounds: []float64{1e-1, 1e-2, 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	rungs := h.Rungs()
	target := 3e-2 // between 1e-1 and 1e-2
	c, err := h.CursorForAccuracy(target)
	if err != nil {
		t.Fatal(err)
	}
	if c > rungs[1].Cursor {
		t.Errorf("interpolated cursor %d exceeds tighter rung's %d", c, rungs[1].Cursor)
	}
	acc := h.Achieved(orig, c)
	// Conservative rounding plus curve drift: allow a sliver over.
	if acc > target*(1+1e-6) {
		t.Errorf("cursor %d achieves %v, wanted <= %v", c, acc, target)
	}
	// A looser target must not need more entries.
	cLoose, err := h.CursorForAccuracy(6e-2)
	if err != nil {
		t.Fatal(err)
	}
	if cLoose > c {
		t.Errorf("looser target cursor %d > tighter target cursor %d", cLoose, c)
	}
	// Unreachable target errors.
	if _, err := h.CursorForAccuracy(0); err == nil {
		t.Error("expected error for unreachable target 0")
	}
	// No curve (built without bounds) errors.
	h2, err := Decompose(orig, Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.CursorForAccuracy(1e-2); err == nil {
		t.Error("expected error for hierarchy built without bounds")
	}
}

// TestSortEntriesMatchesComparator pins the radix sort to the
// comparison order on adversarial value patterns: duplicated
// magnitudes, ±0, sign pairs, denormals, and infinities.
func TestSortEntriesMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := []float64{0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, math.Inf(1), math.Inf(-1), 1e-300, 2.5, -2.5}
	n := radixMin + 1000 // force the radix path
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Index: i, Value: vals[rng.Intn(len(vals))] * (1 + float64(rng.Intn(3)))}
	}
	want := append([]Entry(nil), entries...)
	slices.SortFunc(want, compareEntries)
	sortEntries(entries)
	for i := range entries {
		if entries[i] != want[i] {
			t.Fatalf("order differs at %d: got %+v, want %+v", i, entries[i], want[i])
		}
	}
	// Small slices take the comparison path; spot-check it too.
	small := []Entry{{3, 1}, {1, -2}, {2, 1}, {0, 2}}
	sortEntries(small)
	wantSmall := []Entry{{0, 2}, {1, -2}, {2, 1}, {3, 1}}
	for i := range small {
		if small[i] != wantSmall[i] {
			t.Fatalf("small sort: got %v, want %v", small, wantSmall)
		}
	}
}

// TestExtractEntriesParallelMatchesSequential forces the chunked
// extraction path and compares it against the simple scan.
func TestExtractEntriesParallelMatchesSequential(t *testing.T) {
	n := 1 << 16 // above par.Threshold: multiple chunks
	fine := make([]float64, n)
	pd := make([]float64, n)
	rng := rand.New(rand.NewSource(11))
	for i := range fine {
		fine[i] = rng.Float64()
		if rng.Intn(3) == 0 {
			pd[i] = fine[i] // zero diff: must be skipped
		} else {
			pd[i] = rng.Float64()
		}
	}
	got := extractEntries(fine, pd)
	var want []Entry
	for i, v := range fine {
		if diff := v - pd[i]; diff != 0 {
			want = append(want, Entry{Index: i, Value: diff})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// All-equal input returns nil, matching the sequential scan's nil.
	if e := extractEntries(fine, fine); e != nil {
		t.Errorf("expected nil for zero-diff input, got %d entries", len(e))
	}
}
