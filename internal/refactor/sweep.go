package refactor

import (
	"fmt"
	"math"

	"tango/internal/errmetric"
	"tango/internal/par"
	"tango/internal/tensor"
)

// Single-sweep incremental ladder construction.
//
// The retrieval order applies each level's entries only after every
// coarser level is complete, so for all cursors inside one level the
// reconstruction is
//
//	rec(c) = prolongate⁰(floor_l) + Σ_{applied e} e.Value · B_e
//
// where floor_l is the running level-l field before any of level l's
// entries and B_e is entry e's basis prolongated to the original grid.
// The prolongated floor is therefore fixed once per level boundary:
// the sweep re-anchors the error field err = orig − prolongate⁰(floor_l)
// and its sum of squared errors there (one O(n) pass), then updates both
// in O(|support(B_e)|) as the cursor advances — O(1) for level-0 entries
// (the bulk of the stream; their basis is a single point) and a small
// constant box for the few coarse-level entries. One pass over the
// whole hierarchy costs O(n·L + TotalEntries) instead of the
// O(B·n·L·log n) of per-bound binary search with a full Recompose and
// full-array measure per probe.

// CurvePoint is one sample of the cursor→accuracy curve the ladder
// sweep records while walking the augmentation stream.
type CurvePoint struct {
	Cursor   int
	Achieved float64
}

// maxCurveSamples bounds the evenly spaced samples of the stored curve;
// level boundaries and the stream's endpoints are always included.
const maxCurveSamples = 512

// wpt is one (fine position, weight) pair of a composed 1-D
// prolongation column.
type wpt struct {
	pos int
	w   float64
}

type sweepResult struct {
	// candidates[i] is the first cursor whose swept SSE satisfies
	// bounds[i], or -1 if the sweep never crossed that budget.
	candidates []int
	curve      []CurvePoint
	// floors[pos] is the level-order[pos] field at that zone's boundary
	// (coarser zones fully applied, none of this zone's entries) — the
	// state Recompose reaches right after its pos-th prolongation.
	// exactAchieved resumes a reconstruction from here instead of
	// replaying the whole prolongate-and-add chain from the base.
	floors []*tensor.Tensor
	// baseAcc is the exact (sequential-measure) accuracy of the base
	// alone, computed from the first boundary's prolongated floor —
	// bit-identical to Achieved(orig, 0), one reconstruction cheaper.
	baseAcc float64
}

// composedColumns returns, for one dimension, the level-lvl → level-0
// prolongation columns: cols[j] lists the (fine position, weight) pairs
// of coarse node j's composed basis along that dimension. Prolongation
// is separable, so a level-lvl entry's full basis is the tensor product
// of its per-dimension columns.
func (h *Hierarchy) composedColumns(lvl, dim int) [][]wpt {
	d := h.opts.Decimation
	m := func(l int) int { return h.levelDims[l][dim] }
	cols := make([][]wpt, m(lvl))
	for j := range cols {
		w := make([]float64, m(lvl))
		w[j] = 1
		for l := lvl; l >= 1; l-- {
			nf, nc := m(l-1), m(l)
			fine := make([]float64, nf)
			for x := 0; x < nf; x++ {
				p := x / d
				f := float64(x-p*d) / float64(d)
				if p >= nc-1 {
					p, f = nc-1, 0
				}
				if f == 0 {
					fine[x] = w[p]
				} else {
					fine[x] = (1-f)*w[p] + f*w[p+1]
				}
			}
			w = fine
		}
		var col []wpt
		for x, v := range w {
			if v != 0 {
				col = append(col, wpt{x, v})
			}
		}
		cols[j] = col
	}
	return cols
}

// runSweep walks the augmentation stream once in retrieval order,
// maintaining the reconstruction error against orig, and returns the
// per-bound candidate cursors plus the sampled accuracy curve. The
// per-entry updates are sequential in stream order and the boundary
// re-anchor uses chunk-ordered reduction, so the result is deterministic
// at any worker count.
func (h *Hierarchy) runSweep(orig *tensor.Tensor, st errmetric.Stats) sweepResult {
	ref := orig.Data()
	n := len(ref)
	metric := h.opts.Metric
	bounds := h.opts.Bounds
	total := h.TotalEntries()

	res := sweepResult{candidates: make([]int, len(bounds))}
	budgets := make([]float64, len(bounds))
	for i, b := range bounds {
		res.candidates[i] = -1
		budgets[i] = st.SSEBudget(metric, b)
	}

	sampleEvery := 1
	if total > maxCurveSamples {
		sampleEvery = (total + maxCurveSamples - 1) / maxCurveSamples
	}

	errv := make([]float64, n)
	var sse float64
	cursor := 0
	nextBound := 0

	check := func() {
		for nextBound < len(bounds) && sse <= budgets[nextBound] {
			res.candidates[nextBound] = cursor
			nextBound++
		}
	}
	nextSample := 0
	sample := func(force bool) {
		if !force && cursor < nextSample {
			return
		}
		nextSample = cursor - cursor%sampleEvery + sampleEvery
		if k := len(res.curve); k > 0 && res.curve[k-1].Cursor == cursor {
			return
		}
		res.curve = append(res.curve, CurvePoint{cursor, st.FromSSE(metric, sse)})
	}

	dims0 := h.levelDims[0]
	rank := len(dims0)
	strides0 := make([]int, rank)
	stv := 1
	for i := rank - 1; i >= 0; i-- {
		strides0[i] = stv
		stv *= dims0[i]
	}

	d := h.opts.Decimation
	res.floors = make([]*tensor.Tensor, len(h.order))
	cur := h.base.Clone()
	for pos, lvl := range h.order {
		cur = Prolongate(cur, h.levelDims[lvl], d)
		res.floors[pos] = cur.Clone()
		floor := cur
		for j := lvl - 1; j >= 0; j-- {
			floor = Prolongate(floor, h.levelDims[j], d)
		}
		fd := floor.Data()
		if pos == 0 {
			// fd is Recompose(0)'s data; measure ε_0 here sequentially
			// rather than reconstructing it a second time.
			res.baseAcc = st.Measure(metric, ref, fd)
		}
		// Re-anchor err and SSE at the level boundary: the prolongated
		// floor is fixed for every cursor inside this level.
		sse = par.MapReduce(n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				e := ref[i] - fd[i]
				errv[i] = e
				s += e * e
			}
			return s
		}, func(a, b float64) float64 { return a + b })
		check()
		sample(true)

		curData := cur.Data()
		if lvl == 0 {
			// Finest level: the basis is a single point — O(1) per entry.
			// Nothing prolongates after this zone, so cur itself needs no
			// update (the cached floor was cloned above).
			for _, e := range h.augs[0] {
				old := errv[e.Index]
				nw := old - e.Value
				sse += nw*nw - old*old
				errv[e.Index] = nw
				cursor++
				check()
				sample(cursor == total)
			}
			continue
		}

		cols := make([][][]wpt, rank)
		for dim := range cols {
			cols[dim] = h.composedColumns(lvl, dim)
		}
		cd := h.levelDims[lvl]
		idx := make([]int, rank)
		var v float64
		var apply func(dim, off int, w float64)
		apply = func(dim, off int, w float64) {
			if dim == rank {
				old := errv[off]
				nw := old - v*w
				sse += nw*nw - old*old
				errv[off] = nw
				return
			}
			for _, p := range cols[dim][idx[dim]] {
				apply(dim+1, off+p.pos*strides0[dim], w*p.w)
			}
		}
		for _, e := range h.augs[lvl] {
			curData[e.Index] += e.Value
			unravel(e.Index, cd, idx)
			v = e.Value
			apply(0, 0, 1)
			cursor++
			check()
			sample(cursor == total)
		}
	}
	return res
}

// AccuracyCurve returns the sampled cursor→accuracy curve the ladder
// sweep recorded (cursor-ascending, from the base-only point to the full
// stream), or nil when the hierarchy was built without bounds or decoded
// from storage — the sweep runs only during Decompose with a ladder.
// Level-boundary points are freshly measured (no incremental drift);
// points between boundaries come from the incrementally maintained SSE.
// Both agree with a fresh Achieved measure to within a few ulps. The
// returned slice is a copy.
func (h *Hierarchy) AccuracyCurve() []CurvePoint {
	return append([]CurvePoint(nil), h.curve...)
}

// CursorForAccuracy maps an accuracy target to the smallest cursor whose
// swept accuracy satisfies it, interpolating linearly between curve
// samples and rounding up so the returned prefix is conservative. Unlike
// CursorForBound it accepts targets between (or looser than) ladder
// bounds — the controller uses it to interpolate retrieval targets
// between rungs instead of snapping up to the next rung boundary.
func (h *Hierarchy) CursorForAccuracy(target float64) (int, error) {
	if len(h.curve) == 0 {
		return 0, fmt.Errorf("refactor: no accuracy curve (hierarchy built without bounds, or decoded)")
	}
	m := h.opts.Metric
	for i, p := range h.curve {
		if !m.Satisfies(p.Achieved, target) {
			continue
		}
		if i == 0 {
			return p.Cursor, nil
		}
		prev := h.curve[i-1]
		den := p.Achieved - prev.Achieved
		gap := p.Cursor - prev.Cursor
		if den == 0 || gap <= 1 {
			return p.Cursor, nil
		}
		f := (target - prev.Achieved) / den
		if f < 0 {
			f = 0
		} else if f > 1 {
			f = 1
		}
		c := prev.Cursor + int(math.Ceil(f*float64(gap)))
		if c > p.Cursor {
			c = p.Cursor
		}
		if c <= prev.Cursor {
			c = prev.Cursor + 1
		}
		return c, nil
	}
	last := h.curve[len(h.curve)-1]
	return 0, fmt.Errorf("refactor: accuracy %v unreachable (curve ends at %v)", target, last.Achieved)
}
