package refactor

import (
	"cmp"
	"fmt"
	"math"

	"tango/internal/errmetric"
	"tango/internal/par"
	"tango/internal/tensor"
)

// Decompose refactors orig into a Hierarchy per opts. The decomposition
// is lossless at full augmentation: applying every entry reconstructs
// orig up to floating-point rounding (a few ulps — entries store the
// difference fine − prolongated, and (a−b)+b is not bit-exact in IEEE
// arithmetic). Complexity is O(n·L) for the level pyramid plus
// O(n log n) for magnitude sorting, matching the paper's O(n log n).
func Decompose(orig *tensor.Tensor, opts Options) (*Hierarchy, error) {
	opts = opts.withDefaults()
	if opts.Levels < 1 {
		return nil, fmt.Errorf("refactor: Levels %d < 1", opts.Levels)
	}
	if opts.Decimation < 2 {
		return nil, fmt.Errorf("refactor: Decimation %d < 2", opts.Decimation)
	}
	if err := validateBounds(opts.Metric, opts.Bounds); err != nil {
		return nil, err
	}

	// Clamp levels: restricting a grid whose dims are all 1 is useless.
	maxL := 1
	dims := orig.Dims()
	for !allOnes(dims) {
		dims = CoarseDims(dims, opts.Decimation)
		maxL++
	}
	if opts.Levels > maxL {
		opts.Levels = maxL
	}
	L := opts.Levels

	// Build the level pyramid and augmentations.
	levels := make([]*tensor.Tensor, L)
	levels[0] = orig
	levelDims := make([][]int, L)
	levelDims[0] = append([]int(nil), orig.Dims()...)
	for l := 1; l < L; l++ {
		levels[l] = Restrict(levels[l-1], opts.Decimation)
		levelDims[l] = append([]int(nil), levels[l].Dims()...)
	}

	h := &Hierarchy{
		opts:      opts,
		levelDims: levelDims,
		base:      levels[L-1].Clone(),
		augs:      make([][]Entry, maxInt(L-1, 0)),
		origLen:   orig.Len(),
	}

	for l := 0; l < L-1; l++ {
		pro := Prolongate(levels[l+1], levelDims[l], opts.Decimation)
		entries := extractEntries(levels[l].Data(), pro.Data())
		// Descending |value|; ties broken by index for determinism.
		// (NoSort keeps index order — ablation of §III-B2 step 3.)
		if !opts.NoSort {
			sortEntries(entries)
		}
		h.augs[l] = entries
	}

	// Retrieval order: coarsest augmentation first.
	for l := L - 2; l >= 0; l-- {
		h.order = append(h.order, l)
	}
	h.cum = make([]int, len(h.order))
	c := 0
	for i, l := range h.order {
		c += len(h.augs[l])
		h.cum[i] = c
	}

	// Per-level encoded-size prefix sums.
	h.byteCum = make([][]int64, maxInt(L-1, 0))
	for l := 0; l < L-1; l++ {
		pre := make([]int64, len(h.augs[l])+1)
		for i, e := range h.augs[l] {
			pre[i+1] = pre[i] + int64(entrySize(e))
		}
		h.byteCum[l] = pre
	}

	if len(opts.Bounds) == 0 || len(h.order) == 0 {
		h.baseAcc = h.Achieved(orig, 0)
	}
	if err := h.buildLadder(orig); err != nil {
		return nil, err
	}
	return h, nil
}

func allOnes(dims []int) bool {
	for _, d := range dims {
		if d > 1 {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func validateBounds(k errmetric.Kind, bounds []float64) error {
	for i, b := range bounds {
		if math.IsNaN(b) {
			return fmt.Errorf("refactor: bound %d is NaN", i)
		}
		if k == errmetric.NRMSE && b <= 0 {
			return fmt.Errorf("refactor: NRMSE bound %v must be > 0", b)
		}
		if i > 0 && !k.Better(b, bounds[i-1]) {
			return fmt.Errorf("refactor: bounds must be ordered loose→tight; %v does not tighten %v under %s",
				b, bounds[i-1], k)
		}
	}
	return nil
}

// extractEntries collects the nonzero fine−prolongated differences in
// index order. Chunks are counted and filled in parallel into disjoint
// output ranges; chunk-ordered offsets make the concatenation identical
// to a sequential scan.
func extractEntries(fine, pd []float64) []Entry {
	n := len(fine)
	nc := par.NumChunks(n)
	if nc <= 1 {
		var entries []Entry
		for i, v := range fine {
			if diff := v - pd[i]; diff != 0 {
				entries = append(entries, Entry{Index: i, Value: diff})
			}
		}
		return entries
	}
	counts := make([]int, nc)
	par.ForChunk(n, func(c, lo, hi int) {
		k := 0
		for i := lo; i < hi; i++ {
			if fine[i]-pd[i] != 0 {
				k++
			}
		}
		counts[c] = k
	})
	offs := make([]int, nc+1)
	for c, k := range counts {
		offs[c+1] = offs[c] + k
	}
	if offs[nc] == 0 {
		return nil
	}
	entries := make([]Entry, offs[nc])
	par.ForChunk(n, func(c, lo, hi int) {
		k := offs[c]
		for i := lo; i < hi; i++ {
			if diff := fine[i] - pd[i]; diff != 0 {
				entries[k] = Entry{Index: i, Value: diff}
				k++
			}
		}
	})
	return entries
}

// compareEntries orders augmentation entries by descending |value|, ties
// by ascending index — a strict total order, so the (unstable) pdqsort
// result is unique and deterministic.
func compareEntries(a, b Entry) int {
	av, bv := math.Abs(a.Value), math.Abs(b.Value)
	switch {
	case av > bv:
		return -1
	case av < bv:
		return 1
	}
	return cmp.Compare(a.Index, b.Index)
}

// buildLadder finds, for each bound, the smallest cursor whose
// reconstruction satisfies it. A single incremental sweep (sweep.go)
// walks the whole augmentation stream once in retrieval order,
// maintaining the sum of squared errors of the running reconstruction,
// and records the first cursor crossing each bound's SSE budget —
// O(n·L + TotalEntries) for the whole hierarchy, versus O(B·n·L·log n)
// for per-bound binary search with a full Recompose and full-array
// measure per probe. The reported accuracy then comes from one exact
// Achieved call per rung, and a ±1-step verification against that exact
// measure absorbs the few-ulp difference between the incrementally
// maintained SSE and a fresh measure, so rung cursors and recorded
// accuracies are the ones the probing search produced. (This also
// retires the old coarse-step "non-monotone wobble" re-verify loop: the
// sweep observes every cursor, not just probe midpoints.)
func (h *Hierarchy) buildLadder(orig *tensor.Tensor) error {
	h.rungs = h.rungs[:0]
	if len(h.opts.Bounds) == 0 {
		return nil
	}
	st := errmetric.NewStats(orig.Data())
	if len(h.order) == 0 {
		// Degenerate single-level hierarchy: the base is the original;
		// every bound is satisfied (or unreachable) at cursor 0.
		acc := h.achievedWith(st, orig, 0)
		for _, bound := range h.opts.Bounds {
			if !h.opts.Metric.Satisfies(acc, bound) {
				return fmt.Errorf("refactor: bound %v unreachable (full reconstruction achieves %v)", bound, acc)
			}
			h.pushRung(bound, acc, 0, 0)
		}
		return nil
	}
	sw := h.runSweep(orig, st)
	h.curve = sw.curve
	h.baseAcc = sw.baseAcc
	pr := newProber(h, st, orig, sw.floors)
	total := h.TotalEntries()
	prevCursor := 0
	for bi, bound := range h.opts.Bounds {
		cursor := sw.candidates[bi]
		if cursor < 0 {
			cursor = total
		}
		if cursor < prevCursor {
			cursor = prevCursor
		}
		acc := pr.achieved(cursor)
		// Forward: the swept SSE can sit a few ulps under the exact
		// measure right at the crossing; advance until exact agreement.
		for !h.opts.Metric.Satisfies(acc, bound) && cursor < total {
			cursor++
			acc = pr.achieved(cursor)
		}
		if !h.opts.Metric.Satisfies(acc, bound) {
			return fmt.Errorf("refactor: bound %v unreachable (full reconstruction achieves %v)", bound, acc)
		}
		// Backward: or a few ulps over; retreat to the smallest cursor
		// the exact measure accepts.
		for cursor > prevCursor {
			a := pr.achieved(cursor - 1)
			if !h.opts.Metric.Satisfies(a, bound) {
				break
			}
			cursor--
			acc = a
		}
		h.pushRung(bound, acc, cursor, prevCursor)
		prevCursor = cursor
	}
	return nil
}

// achievedWith is Achieved with the reference statistics precomputed;
// bit-identical results, one fewer reference scan per probe.
func (h *Hierarchy) achievedWith(st errmetric.Stats, orig *tensor.Tensor, cursor int) float64 {
	rec := h.Recompose(cursor)
	return st.Measure(h.opts.Metric, orig.Data(), rec.Data())
}

func (h *Hierarchy) pushRung(bound, achieved float64, cursor, prevCursor int) {
	h.rungs = append(h.rungs, Rung{
		Bound:       bound,
		Achieved:    achieved,
		Cursor:      cursor,
		Cardinality: cursor - prevCursor,
		Bytes:       h.BytesForRange(prevCursor, cursor),
		Level:       h.LevelOfCursor(cursor),
	})
}
