package refactor

import (
	"fmt"
	"math"
	"sort"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// Decompose refactors orig into a Hierarchy per opts. The decomposition
// is lossless at full augmentation: applying every entry reconstructs
// orig up to floating-point rounding (a few ulps — entries store the
// difference fine − prolongated, and (a−b)+b is not bit-exact in IEEE
// arithmetic). Complexity is O(n·L) for the level pyramid plus
// O(n log n) for magnitude sorting, matching the paper's O(n log n).
func Decompose(orig *tensor.Tensor, opts Options) (*Hierarchy, error) {
	opts = opts.withDefaults()
	if opts.Levels < 1 {
		return nil, fmt.Errorf("refactor: Levels %d < 1", opts.Levels)
	}
	if opts.Decimation < 2 {
		return nil, fmt.Errorf("refactor: Decimation %d < 2", opts.Decimation)
	}
	if err := validateBounds(opts.Metric, opts.Bounds); err != nil {
		return nil, err
	}

	// Clamp levels: restricting a grid whose dims are all 1 is useless.
	maxL := 1
	dims := orig.Dims()
	for !allOnes(dims) {
		dims = CoarseDims(dims, opts.Decimation)
		maxL++
	}
	if opts.Levels > maxL {
		opts.Levels = maxL
	}
	L := opts.Levels

	// Build the level pyramid and augmentations.
	levels := make([]*tensor.Tensor, L)
	levels[0] = orig
	levelDims := make([][]int, L)
	levelDims[0] = append([]int(nil), orig.Dims()...)
	for l := 1; l < L; l++ {
		levels[l] = Restrict(levels[l-1], opts.Decimation)
		levelDims[l] = append([]int(nil), levels[l].Dims()...)
	}

	h := &Hierarchy{
		opts:      opts,
		levelDims: levelDims,
		base:      levels[L-1].Clone(),
		augs:      make([][]Entry, maxInt(L-1, 0)),
		origLen:   orig.Len(),
	}

	for l := 0; l < L-1; l++ {
		pro := Prolongate(levels[l+1], levelDims[l], opts.Decimation)
		fine := levels[l].Data()
		pd := pro.Data()
		var entries []Entry
		for i := range fine {
			diff := fine[i] - pd[i]
			if diff != 0 {
				entries = append(entries, Entry{Index: i, Value: diff})
			}
		}
		// Descending |value|; ties broken by index for determinism.
		// (NoSort keeps index order — ablation of §III-B2 step 3.)
		if !opts.NoSort {
			sort.Slice(entries, func(a, b int) bool {
				av, bv := math.Abs(entries[a].Value), math.Abs(entries[b].Value)
				if av != bv {
					return av > bv
				}
				return entries[a].Index < entries[b].Index
			})
		}
		h.augs[l] = entries
	}

	// Retrieval order: coarsest augmentation first.
	for l := L - 2; l >= 0; l-- {
		h.order = append(h.order, l)
	}
	h.cum = make([]int, len(h.order))
	c := 0
	for i, l := range h.order {
		c += len(h.augs[l])
		h.cum[i] = c
	}

	// Per-level encoded-size prefix sums.
	h.byteCum = make([][]int64, maxInt(L-1, 0))
	for l := 0; l < L-1; l++ {
		pre := make([]int64, len(h.augs[l])+1)
		for i, e := range h.augs[l] {
			pre[i+1] = pre[i] + int64(entrySize(e))
		}
		h.byteCum[l] = pre
	}

	h.baseAcc = h.Achieved(orig, 0)
	if err := h.buildLadder(orig); err != nil {
		return nil, err
	}
	return h, nil
}

func allOnes(dims []int) bool {
	for _, d := range dims {
		if d > 1 {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func validateBounds(k errmetric.Kind, bounds []float64) error {
	for i, b := range bounds {
		if math.IsNaN(b) {
			return fmt.Errorf("refactor: bound %d is NaN", i)
		}
		if k == errmetric.NRMSE && b <= 0 {
			return fmt.Errorf("refactor: NRMSE bound %v must be > 0", b)
		}
		if i > 0 && !k.Better(b, bounds[i-1]) {
			return fmt.Errorf("refactor: bounds must be ordered loose→tight; %v does not tighten %v under %s",
				b, bounds[i-1], k)
		}
	}
	return nil
}

// buildLadder finds, for each bound, the smallest cursor whose
// reconstruction satisfies it. Because entries are magnitude-ordered the
// achieved error is (near-)monotone in the cursor; we binary-search and
// then verify, advancing if local non-monotonicity fooled the search.
func (h *Hierarchy) buildLadder(orig *tensor.Tensor) error {
	h.rungs = h.rungs[:0]
	prevCursor := 0
	total := h.TotalEntries()
	for _, bound := range h.opts.Bounds {
		lo, hi := prevCursor, total
		// Early out: previous rung (or base) may already satisfy.
		if acc := h.Achieved(orig, lo); h.opts.Metric.Satisfies(acc, bound) {
			h.pushRung(bound, acc, lo, prevCursor)
			prevCursor = lo
			continue
		}
		for lo < hi {
			mid := (lo + hi) / 2
			if h.opts.Metric.Satisfies(h.Achieved(orig, mid), bound) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cursor := lo
		// Verify; on rare non-monotone wobble, advance in coarse steps.
		step := maxInt(1, total/256)
		acc := h.Achieved(orig, cursor)
		for !h.opts.Metric.Satisfies(acc, bound) && cursor < total {
			cursor = min(cursor+step, total)
			acc = h.Achieved(orig, cursor)
		}
		if !h.opts.Metric.Satisfies(acc, bound) {
			return fmt.Errorf("refactor: bound %v unreachable (full reconstruction achieves %v)", bound, acc)
		}
		h.pushRung(bound, acc, cursor, prevCursor)
		prevCursor = cursor
	}
	return nil
}

func (h *Hierarchy) pushRung(bound, achieved float64, cursor, prevCursor int) {
	h.rungs = append(h.rungs, Rung{
		Bound:       bound,
		Achieved:    achieved,
		Cursor:      cursor,
		Cardinality: cursor - prevCursor,
		Bytes:       h.BytesForRange(prevCursor, cursor),
		Level:       h.LevelOfCursor(cursor),
	})
}
