package refactor

import (
	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// prober evaluates the exact achieved accuracy at a sequence of ladder
// cursors, reusing reconstruction state between probes. The ladder
// refinement probes runs of adjacent cursors (a sweep candidate, then
// its ±1 neighbours), so rebuilding the full prolongate-and-add chain
// per probe — what Achieved does — redoes almost identical work each
// time. The prober instead keeps the cursor zone's coarse field and its
// prolongation, and on a cursor step:
//
//   - applies (or exactly un-applies, from saved pre-apply values) the
//     delta entries to the coarse field, and
//   - recomputes only the fine points inside the changed coarse nodes'
//     interpolation support, with the same corner-sum expression
//     Prolongate evaluates.
//
// Every fine point is therefore either untouched or recomputed from
// identical inputs with identical arithmetic, so the probed accuracy is
// bit-identical to Achieved at the same cursor. Zones more than one
// prolongation away from the finest level fall back to re-running the
// chain below the zone (still skipping everything at or above it);
// their entries are a geometrically small share of the stream.
type prober struct {
	h      *Hierarchy
	st     errmetric.Stats
	ref    []float64
	floors []*tensor.Tensor

	pos    int // current zone (order position); -1 before the first probe
	take   int // entries of zone pos currently applied to coarse
	coarse *tensor.Tensor
	saved  []float64 // pre-apply coarse values, aligned with entry order
	rec    *tensor.Tensor

	// Single-prolongation fast path (zone level interpolates straight to
	// the finest level): Prolongate's per-dimension interpolation tables,
	// rebuilt on zone entry.
	direct   bool
	fineDims []int
	cd       []int
	lo       [][]int
	fr       [][]float64
	cStrides []int
	fStrides []int

	jbuf, idxbuf, lobuf, hibuf []int // recomputeSupport scratch
}

func newProber(h *Hierarchy, st errmetric.Stats, orig *tensor.Tensor, floors []*tensor.Tensor) *prober {
	return &prober{h: h, st: st, ref: orig.Data(), floors: floors, pos: -1}
}

// achieved returns the exact accuracy of Recompose(cursor) against the
// reference — bit-identical to Achieved(orig, cursor).
func (p *prober) achieved(cursor int) float64 {
	pos, take := p.h.split(cursor)
	if pos != p.pos {
		p.enterZone(pos, take)
	} else {
		p.moveTo(take)
	}
	return p.st.Measure(p.h.opts.Metric, p.ref, p.rec.Data())
}

// enterZone initializes probe state for the zone at order position pos
// with take entries applied.
func (p *prober) enterZone(pos, take int) {
	h := p.h
	lvl := h.order[pos]
	p.pos = pos
	p.coarse = p.floors[pos].Clone()
	p.saved = p.saved[:0]
	data := p.coarse.Data()
	for _, e := range h.augs[lvl][:take] {
		p.saved = append(p.saved, data[e.Index])
		data[e.Index] += e.Value
	}
	p.take = take
	switch len(h.order) - pos - 1 {
	case 0:
		// Finest zone: the coarse field is the reconstruction.
		p.direct = false
		p.rec = p.coarse
	case 1:
		p.direct = true
		p.buildTables()
		p.rec = Prolongate(p.coarse, p.fineDims, h.opts.Decimation)
	default:
		p.direct = false
		p.rec = p.reprolongate()
	}
}

// moveTo steps the applied-entry count of the current zone to take.
func (p *prober) moveTo(take int) {
	h := p.h
	lvl := h.order[p.pos]
	data := p.coarse.Data()
	lo, hi := take, p.take // changed entry range [lo, hi)
	switch {
	case take == p.take:
		return
	case take > p.take:
		lo, hi = p.take, take
		for _, e := range h.augs[lvl][lo:hi] {
			p.saved = append(p.saved, data[e.Index])
			data[e.Index] += e.Value
		}
	default:
		// Un-apply by restoring saved values: exact, where subtracting
		// the entry back out would round.
		for i := p.take - 1; i >= take; i-- {
			data[h.augs[lvl][i].Index] = p.saved[i]
		}
		p.saved = p.saved[:take]
	}
	p.take = take
	switch {
	case p.rec == p.coarse:
		// Finest zone: the single-point coarse writes were the update.
	case p.direct:
		sup := 1
		for range p.cd {
			sup *= 2*h.opts.Decimation - 1
		}
		if (hi-lo)*sup >= p.rec.Len() {
			p.rec = Prolongate(p.coarse, p.fineDims, h.opts.Decimation)
			return
		}
		for _, e := range h.augs[lvl][lo:hi] {
			p.recomputeSupport(e.Index)
		}
	default:
		p.rec = p.reprolongate()
	}
}

// reprolongate runs the prolongation chain below the current zone.
func (p *prober) reprolongate() *tensor.Tensor {
	h := p.h
	r := p.coarse
	for _, j := range h.order[p.pos+1:] {
		r = Prolongate(r, h.levelDims[j], h.opts.Decimation)
	}
	return r
}

// buildTables precomputes Prolongate's per-dimension interpolation
// tables for the current zone's single-step prolongation, so support
// recomputation evaluates the identical corner sums.
func (p *prober) buildTables() {
	h := p.h
	d := h.opts.Decimation
	p.fineDims = h.levelDims[h.order[p.pos+1]]
	p.cd = p.coarse.Dims()
	rank := len(p.fineDims)
	p.lo = make([][]int, rank)
	p.fr = make([][]float64, rank)
	for i := 0; i < rank; i++ {
		n, nc := p.fineDims[i], p.cd[i]
		p.lo[i] = make([]int, n)
		p.fr[i] = make([]float64, n)
		for x := 0; x < n; x++ {
			q := x / d
			f := float64(x-q*d) / float64(d)
			if q >= nc-1 {
				q = nc - 1
				f = 0
			}
			p.lo[i][x] = q
			p.fr[i][x] = f
		}
	}
	p.cStrides = rowMajorStrides(p.cd)
	p.fStrides = rowMajorStrides(p.fineDims)
	p.jbuf = make([]int, rank)
	p.idxbuf = make([]int, rank)
	p.lobuf = make([]int, rank)
	p.hibuf = make([]int, rank)
}

// recomputeSupport refreshes the fine points whose interpolation reads
// the coarse node at flat offset coarseOff.
func (p *prober) recomputeSupport(coarseOff int) {
	d := p.h.opts.Decimation
	rank := len(p.cd)
	j := p.jbuf
	unravel(coarseOff, p.cd, j)
	for i := 0; i < rank; i++ {
		nf, nc := p.fineDims[i], p.cd[i]
		lo := (j[i]-1)*d + 1
		if lo < 0 {
			lo = 0
		}
		hi := (j[i]+1)*d - 1
		// Fine points past the last coarse node clamp to it.
		if j[i] == nc-1 || hi > nf-1 {
			hi = nf - 1
		}
		p.lobuf[i], p.hibuf[i] = lo, hi
		p.idxbuf[i] = lo
	}
	for {
		p.recomputePoint(p.idxbuf)
		i := rank - 1
		for ; i >= 0; i-- {
			p.idxbuf[i]++
			if p.idxbuf[i] <= p.hibuf[i] {
				break
			}
			p.idxbuf[i] = p.lobuf[i]
		}
		if i < 0 {
			return
		}
	}
}

// recomputePoint re-evaluates one fine point exactly as Prolongate's
// inner loop does: same corner order, same weight products, same
// accumulation order.
func (p *prober) recomputePoint(idx []int) {
	rank := len(idx)
	corners := 1 << rank
	src := p.coarse.Data()
	var v float64
	for c := 0; c < corners; c++ {
		w := 1.0
		cOff := 0
		for i := 0; i < rank; i++ {
			x := idx[i]
			if c&(1<<i) != 0 {
				f := p.fr[i][x]
				if f == 0 {
					w = 0
					break
				}
				w *= f
				cOff += (p.lo[i][x] + 1) * p.cStrides[i]
			} else {
				w *= 1 - p.fr[i][x]
				cOff += p.lo[i][x] * p.cStrides[i]
			}
		}
		if w != 0 {
			v += w * src[cOff]
		}
	}
	off := 0
	for i := 0; i < rank; i++ {
		off += idx[i] * p.fStrides[i]
	}
	p.rec.Data()[off] = v
}

// rowMajorStrides returns the row-major strides of dims.
func rowMajorStrides(dims []int) []int {
	s := make([]int, len(dims))
	st := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = st
		st *= dims[i]
	}
	return s
}
