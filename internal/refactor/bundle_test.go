package refactor

import (
	"bytes"
	"testing"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

func bundleVars(t *testing.T) []Var {
	t.Helper()
	return []Var{
		{Name: "potential", Data: smoothField(33, 1)},
		{Name: "density", Data: smoothField(33, 2)},
		{Name: "temperature", Data: smoothField(33, 3)},
	}
}

func bundleOpts() Options {
	return Options{Levels: 3, Bounds: []float64{0.1, 0.01}}
}

func TestBundleDecompose(t *testing.T) {
	b, err := DecomposeBundle(bundleVars(t), bundleOpts())
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	names := b.Names()
	if names[0] != "potential" || names[2] != "temperature" {
		t.Fatalf("names = %v", names)
	}
	if b.Hierarchy("density") == nil || b.Hierarchy("nope") != nil {
		t.Fatal("hierarchy lookup broken")
	}
	if b.TotalBytes() <= 0 {
		t.Fatal("no staged bytes")
	}
}

func TestBundleValidation(t *testing.T) {
	if _, err := DecomposeBundle(nil, bundleOpts()); err == nil {
		t.Fatal("empty bundle accepted")
	}
	vars := bundleVars(t)
	vars[1].Name = ""
	if _, err := DecomposeBundle(vars, bundleOpts()); err == nil {
		t.Fatal("empty name accepted")
	}
	vars = bundleVars(t)
	vars[1].Name = vars[0].Name
	if _, err := DecomposeBundle(vars, bundleOpts()); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestBundleUniformBound(t *testing.T) {
	vars := bundleVars(t)
	b, err := DecomposeBundle(vars, bundleOpts())
	if err != nil {
		t.Fatal(err)
	}
	cursors, err := b.CursorsForBound(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(cursors) != 3 {
		t.Fatalf("cursors = %v", cursors)
	}
	recs, err := b.RecomposeAll(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		rec := recs[v.Name]
		if rec == nil {
			t.Fatalf("missing reconstruction for %s", v.Name)
		}
		if acc := errmetric.NRMSEOf(v.Data.Data(), rec.Data()); acc > 0.01+1e-12 {
			t.Fatalf("%s achieved %v > 0.01", v.Name, acc)
		}
	}
	if _, err := b.CursorsForBound(0.5); err == nil {
		t.Fatal("unknown bound accepted")
	}
}

func TestBundleWorstAchieved(t *testing.T) {
	b, err := DecomposeBundle(bundleVars(t), bundleOpts())
	if err != nil {
		t.Fatal(err)
	}
	worst, err := b.WorstAchieved(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.01+1e-12 || worst <= 0 {
		t.Fatalf("worst achieved = %v", worst)
	}
	// It must equal the max across variables (NRMSE: bigger = worse).
	var max float64
	for _, name := range b.Names() {
		for _, r := range b.Hierarchy(name).Rungs() {
			if r.Bound == 0.01 && r.Achieved > max {
				max = r.Achieved
			}
		}
	}
	if worst != max {
		t.Fatalf("worst = %v, want %v", worst, max)
	}
	if _, err := b.WorstAchieved(0.123); err == nil {
		t.Fatal("unknown bound accepted")
	}
}

func TestBundleCodecRoundTrip(t *testing.T) {
	vars := bundleVars(t)
	b, err := DecomposeBundle(vars, bundleOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := DecodeBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Len() != b.Len() {
		t.Fatalf("len %d vs %d", b2.Len(), b.Len())
	}
	for i, n := range b.Names() {
		if b2.Names()[i] != n {
			t.Fatalf("names %v vs %v", b2.Names(), b.Names())
		}
	}
	// Reconstructions identical after round trip.
	r1, err := b.RecomposeAll(0.01)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b2.RecomposeAll(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for name := range r1 {
		if r1[name].AbsDiffMax(r2[name]) != 0 {
			t.Fatalf("%s differs after round trip", name)
		}
	}
}

func TestBundleDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBundle(bytes.NewReader([]byte("garbage stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
	b, err := DecomposeBundle(bundleVars(t), bundleOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()*2/3]
	if _, err := DecodeBundle(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated bundle accepted")
	}
}

func TestSingleVarBundleMatchesPlainHierarchy(t *testing.T) {
	data := smoothField(33, 9)
	b, err := DecomposeBundle([]Var{{Name: "only", Data: data}}, bundleOpts())
	if err != nil {
		t.Fatal(err)
	}
	h, err := Decompose(data, bundleOpts())
	if err != nil {
		t.Fatal(err)
	}
	hb := b.Hierarchy("only")
	if hb.TotalEntries() != h.TotalEntries() {
		t.Fatal("bundle hierarchy differs from plain decomposition")
	}
	c1, _ := hb.CursorForBound(0.01)
	c2, _ := h.CursorForBound(0.01)
	if c1 != c2 {
		t.Fatalf("cursors differ: %d vs %d", c1, c2)
	}
	var _ = tensor.New // keep tensor import if unused elsewhere
}
