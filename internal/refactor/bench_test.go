package refactor

import (
	"math"
	"testing"

	"tango/internal/tensor"
)

func benchGrid(n int) *tensor.Tensor {
	t := tensor.New(n, n)
	d := t.Data()
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			d[r*n+c] = math.Sin(8*math.Pi*float64(r)/float64(n)) +
				math.Cos(6*math.Pi*float64(c)/float64(n))
		}
	}
	return t
}

func BenchmarkRestrict1025(b *testing.B) {
	f := benchGrid(1025)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Restrict(f, 2)
	}
}

func BenchmarkProlongate1025(b *testing.B) {
	f := benchGrid(1025)
	c := Restrict(f, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prolongate(c, []int{1025, 1025}, 2)
	}
}

func BenchmarkProlongate3D(b *testing.B) {
	f := tensor.New(65, 65, 65)
	for i := range f.Data() {
		f.Data()[i] = float64(i % 17)
	}
	c := Restrict(f, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prolongate(c, []int{65, 65, 65}, 2)
	}
}

func BenchmarkLadderSearch513(b *testing.B) {
	f := benchGrid(513)
	opts := Options{Levels: 3, Bounds: []float64{1e-1, 1e-2, 1e-3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompose1025 measures the decomposition kernels alone
// (pyramid, chunked extraction, radix sort) without ladder search.
func BenchmarkDecompose1025(b *testing.B) {
	f := benchGrid(1025)
	opts := Options{Levels: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLadder1025 measures the full decomposition with ladder
// construction at the large grid — the single-sweep path end to end.
func BenchmarkLadder1025(b *testing.B) {
	f := benchGrid(1025)
	opts := Options{Levels: 4, Bounds: []float64{1e-1, 1e-2, 1e-3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeEntries isolates the entry-stream encoder; the alloc
// count is the point (scratch batching keeps it at zero).
func BenchmarkEncodeEntries(b *testing.B) {
	f := benchGrid(257)
	h, err := Decompose(f, Options{Levels: 2})
	if err != nil {
		b.Fatal(err)
	}
	entries := h.augs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if _, err := EncodeEntries(&buf, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentsQuery(b *testing.B) {
	f := benchGrid(513)
	h, err := Decompose(f, Options{Levels: 4})
	if err != nil {
		b.Fatal(err)
	}
	total := h.TotalEntries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Segments(total/4, 3*total/4)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	f := benchGrid(257)
	h, err := Decompose(f, Options{Levels: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := h.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// writeCounter is an io.Writer that only counts (avoids buffer growth in
// the encode benchmark).
type writeCounter int64

func (w *writeCounter) Write(p []byte) (int, error) {
	*w += writeCounter(len(p))
	return len(p), nil
}
