package refactor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"tango/internal/tensor"
)

// Var is one named variable of a multi-variable dataset (production
// simulation outputs carry several physics fields on the same mesh —
// e.g. XGC's potential, density, and temperature).
type Var struct {
	Name string
	Data *tensor.Tensor
}

// Bundle refactors several variables together under one ladder of error
// bounds: a bound ε then addresses every variable at accuracy ε, so an
// analysis spanning variables gets a uniform guarantee and one retrieval
// plan.
type Bundle struct {
	names []string
	hs    map[string]*Hierarchy
	opts  Options
}

// DecomposeBundle refactors each variable with the same options. Variable
// names must be unique and non-empty; order is preserved. Variables are
// decomposed on parallel goroutines (they are independent, and
// decomposition dominates offline refactorization cost).
func DecomposeBundle(vars []Var, opts Options) (*Bundle, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("refactor: empty bundle")
	}
	b := &Bundle{hs: make(map[string]*Hierarchy, len(vars)), opts: opts.withDefaults()}
	for _, v := range vars {
		if v.Name == "" {
			return nil, fmt.Errorf("refactor: bundle variable with empty name")
		}
		if _, dup := b.hs[v.Name]; dup {
			return nil, fmt.Errorf("refactor: duplicate bundle variable %q", v.Name)
		}
		b.names = append(b.names, v.Name)
		b.hs[v.Name] = nil // reserve slot; filled below
	}

	hs := make([]*Hierarchy, len(vars))
	errs := make([]error, len(vars))
	var wg sync.WaitGroup
	for i, v := range vars {
		i, v := i, v
		wg.Add(1)
		go func() {
			defer wg.Done()
			hs[i], errs[i] = Decompose(v.Data, opts)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("refactor: variable %q: %w", vars[i].Name, err)
		}
		b.hs[vars[i].Name] = hs[i]
	}
	return b, nil
}

// Names returns the variable names in declaration order.
func (b *Bundle) Names() []string { return append([]string(nil), b.names...) }

// Hierarchy returns the hierarchy of one variable, or nil.
func (b *Bundle) Hierarchy(name string) *Hierarchy { return b.hs[name] }

// Len returns the number of variables.
func (b *Bundle) Len() int { return len(b.names) }

// TotalBytes returns the staged size of all variables (bases plus full
// augmentation streams).
func (b *Bundle) TotalBytes() int64 {
	var total int64
	for _, name := range b.names {
		h := b.hs[name]
		total += h.BaseBytes() + h.TotalAugBytes()
	}
	return total
}

// CursorsForBound returns, per variable, the cursor achieving the bound.
// The bound must belong to the bundle's ladder.
func (b *Bundle) CursorsForBound(bound float64) (map[string]int, error) {
	out := make(map[string]int, len(b.names))
	for _, name := range b.names {
		cur, err := b.hs[name].CursorForBound(bound)
		if err != nil {
			return nil, fmt.Errorf("refactor: variable %q: %w", name, err)
		}
		out[name] = cur
	}
	return out, nil
}

// RecomposeAll reconstructs every variable at the given bound.
func (b *Bundle) RecomposeAll(bound float64) (map[string]*tensor.Tensor, error) {
	cursors, err := b.CursorsForBound(bound)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*tensor.Tensor, len(b.names))
	for _, name := range b.names {
		out[name] = b.hs[name].Recompose(cursors[name])
	}
	return out, nil
}

// WorstAchieved returns the least accurate per-variable achieved accuracy
// at the given bound — the bundle-level guarantee.
func (b *Bundle) WorstAchieved(bound float64) (float64, error) {
	metric := b.opts.Metric
	worst := 0.0
	first := true
	for _, name := range b.names {
		for _, r := range b.hs[name].Rungs() {
			if r.Bound == bound {
				if first || metric.Better(worst, r.Achieved) {
					worst = r.Achieved
				}
				first = false
			}
		}
	}
	if first {
		return 0, fmt.Errorf("refactor: bound %v not in bundle ladder", bound)
	}
	return worst, nil
}

const bundleMagic = "TNGB1\n"

// Encode serializes the bundle (all variables).
func (b *Bundle) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(bundleMagic); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	writeU := func(v uint64) error {
		n := binary.PutUvarint(lenBuf[:], v)
		_, err := bw.Write(lenBuf[:n])
		return err
	}
	if err := writeU(uint64(len(b.names))); err != nil {
		return err
	}
	for _, name := range b.names {
		if err := writeU(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := b.hs[name].Encode(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeBundle reads a bundle written by Encode.
func DecodeBundle(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(bundleMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("refactor: bundle magic: %w", err)
	}
	if string(magic) != bundleMagic {
		return nil, fmt.Errorf("refactor: bad bundle magic %q", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count == 0 || count > 1<<16 {
		return nil, fmt.Errorf("refactor: implausible bundle size %d", count)
	}
	b := &Bundle{hs: make(map[string]*Hierarchy, count)}
	for i := uint64(0); i < count; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > 4096 {
			return nil, fmt.Errorf("refactor: implausible name length %d", nameLen)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, err
		}
		h, err := Decode(br)
		if err != nil {
			return nil, fmt.Errorf("refactor: variable %q: %w", nameBytes, err)
		}
		name := string(nameBytes)
		if _, dup := b.hs[name]; dup {
			return nil, fmt.Errorf("refactor: duplicate variable %q in bundle", name)
		}
		b.names = append(b.names, name)
		b.hs[name] = h
		b.opts = h.Opts()
	}
	return b, nil
}
