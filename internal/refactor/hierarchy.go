package refactor

import (
	"fmt"
	"math"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// Options configures a decomposition.
type Options struct {
	// Levels is the total number of representation levels L (paper's
	// {Ω^l}): level 0 is the original, level L-1 the base. Levels >= 1;
	// it is clamped to the deepest restriction the grid admits.
	Levels int
	// Decimation is the per-level decimation factor d (default 2).
	Decimation int
	// Metric selects the error metric for the bound ladder.
	Metric errmetric.Kind
	// Bounds is the ladder of error bounds ε_1 … ε_b ordered loose →
	// tight (decreasing for NRMSE, increasing for PSNR). May be empty,
	// in which case only fraction-based augmentation is available.
	Bounds []float64
	// NoSort disables the descending-|value| ordering of augmentation
	// entries (paper §III-B2 step 3). ABLATION ONLY: index order is used
	// instead, demonstrating why magnitude ordering reaches a bound with
	// far fewer retrieved entries.
	NoSort bool
}

func (o Options) withDefaults() Options {
	if o.Decimation == 0 {
		o.Decimation = 2
	}
	if o.Levels == 0 {
		o.Levels = 2
	}
	return o
}

// LevelsForRatio returns the number of levels L whose base representation
// is about `ratio` times smaller (in points) than the original for a grid
// of the given rank: each level shrinks the point count by roughly d^rank.
// This converts the paper's "decimation ratio" figure axis (16, 512,
// 8192, …) into a level count.
func LevelsForRatio(ratio float64, rank, d int) int {
	if ratio <= 1 || rank <= 0 || d < 2 {
		return 1
	}
	perLevel := math.Pow(float64(d), float64(rank))
	l := int(math.Round(math.Log(ratio)/math.Log(perLevel))) + 1
	if l < 2 {
		l = 2
	}
	return l
}

// Entry is one augmentation data point: a flat offset on its level's grid
// and the correction value added during recomposition.
type Entry struct {
	Index int
	Value float64
}

// Rung is one step of the error-bound ladder: retrieving the global
// augmentation stream up to Cursor achieves (at least) the accuracy
// Bound. Cardinality and Bytes are incremental relative to the previous
// rung — the paper's |Aug_{ε_m}| used by the weight function.
type Rung struct {
	Bound       float64
	Achieved    float64
	Cursor      int
	Cardinality int
	Bytes       int64
	Level       int // the paper's L(ε): level of the rung's last entries
}

// Segment is a contiguous run of entries at one level, with its encoded
// size; staging uses segments to split a retrieval across tiers.
type Segment struct {
	Level      int
	Start, End int // entry range within the level (End exclusive)
	Bytes      int64
}

// Hierarchy is the refactored dataset: base representation, per-level
// augmentation streams (each sorted by descending |value| — paper
// §III-B2 step 3), and the error-bound ladder. A cursor c in
// [0, TotalEntries()] addresses the retrieval prefix: entries are
// consumed coarse level first (L-2 … 0), by descending magnitude within
// each level.
type Hierarchy struct {
	opts      Options
	levelDims [][]int // [level][dim], level 0 = original
	base      *tensor.Tensor
	augs      [][]Entry // [level 0..L-2]
	order     []int     // retrieval order of levels: L-2 … 0
	cum       []int     // cumulative entry counts per order position
	byteCum   [][]int64 // per level: prefix encoded sizes (len+1)
	rungs     []Rung
	curve     []CurvePoint // sampled cursor→accuracy curve (sweep.go)
	baseAcc   float64
	origLen   int
}

// Opts returns the (defaulted) options the hierarchy was built with.
func (h *Hierarchy) Opts() Options { return h.opts }

// Levels returns the actual number of levels (after clamping).
func (h *Hierarchy) Levels() int { return len(h.levelDims) }

// Dims returns the original (level-0) grid dimensions.
func (h *Hierarchy) Dims() []int { return h.levelDims[0] }

// Base returns the base representation Ω^{L-1} (do not mutate).
func (h *Hierarchy) Base() *tensor.Tensor { return h.base }

// BaseBytes returns the encoded size of the base representation.
func (h *Hierarchy) BaseBytes() int64 { return int64(h.base.Len() * 8) }

// BaseAccuracy returns ε_0, the accuracy of the base alone.
func (h *Hierarchy) BaseAccuracy() float64 { return h.baseAcc }

// TotalEntries returns the size of the full augmentation stream.
func (h *Hierarchy) TotalEntries() int {
	if len(h.cum) == 0 {
		return 0
	}
	return h.cum[len(h.cum)-1]
}

// TotalAugBytes returns the encoded size of the full augmentation stream.
func (h *Hierarchy) TotalAugBytes() int64 { return h.BytesForRange(0, h.TotalEntries()) }

// Rungs returns the error-bound ladder (loose → tight).
func (h *Hierarchy) Rungs() []Rung { return h.rungs }

// CursorForBound returns the cursor of the rung for the given bound. The
// bound must be one of the configured Bounds.
func (h *Hierarchy) CursorForBound(bound float64) (int, error) {
	for _, r := range h.rungs {
		if r.Bound == bound {
			return r.Cursor, nil
		}
	}
	return 0, fmt.Errorf("refactor: bound %v not in ladder", bound)
}

// CursorForFraction maps an augmentation degree in [0,1] (the paper's
// abplot output) to a cursor: the fraction of the total augmentation
// stream to retrieve.
func (h *Hierarchy) CursorForFraction(f float64) int {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return h.TotalEntries()
	}
	return int(math.Round(f * float64(h.TotalEntries())))
}

// DoFFraction returns the fraction of the original degrees of freedom
// covered by the base plus the first `cursor` augmentation entries
// (Fig 11's y-axis).
func (h *Hierarchy) DoFFraction(cursor int) float64 {
	return (float64(h.base.Len()) + float64(cursor)) / float64(h.origLen)
}

// levelAt returns (order position, level, entries taken at that level)
// for a cursor.
func (h *Hierarchy) split(cursor int) (pos int, take int) {
	if cursor < 0 || cursor > h.TotalEntries() {
		panic(fmt.Sprintf("refactor: cursor %d out of range [0,%d]", cursor, h.TotalEntries()))
	}
	prev := 0
	for i, c := range h.cum {
		if cursor <= c {
			return i, cursor - prev
		}
		prev = c
	}
	return len(h.cum) - 1, 0 // unreachable for valid cursors
}

// LevelOfCursor returns the paper's L(ε) for the prefix ending at cursor:
// the level of the last entry included, or L-1 (the base level) when
// cursor is 0.
func (h *Hierarchy) LevelOfCursor(cursor int) int {
	if cursor == 0 {
		return len(h.levelDims) - 1
	}
	pos, take := h.split(cursor)
	if take == 0 && pos > 0 {
		pos--
	}
	return h.order[pos]
}

// Segments returns the per-level contiguous runs covering the cursor
// range [from, to).
func (h *Hierarchy) Segments(from, to int) []Segment {
	if from > to {
		panic(fmt.Sprintf("refactor: invalid segment range [%d,%d)", from, to))
	}
	var segs []Segment
	prev := 0
	for i, c := range h.cum {
		lvl := h.order[i]
		lo, hi := prev, c
		s := max(from, lo)
		e := min(to, hi)
		if s < e {
			start, end := s-lo, e-lo
			segs = append(segs, Segment{
				Level: lvl,
				Start: start,
				End:   end,
				Bytes: h.byteCum[lvl][end] - h.byteCum[lvl][start],
			})
		}
		prev = c
	}
	return segs
}

// LevelBytes returns the encoded size of the level-local entry range
// [start, end) of one augmentation level. Callers that track per-level
// prefixes (the fast-tier cache) use this to price partial levels
// without walking global-cursor segments.
func (h *Hierarchy) LevelBytes(level, start, end int) int64 {
	if level < 0 || level >= len(h.byteCum) {
		panic(fmt.Sprintf("refactor: no augmentation level %d", level))
	}
	cum := h.byteCum[level]
	if start < 0 || end < start || end > len(cum)-1 {
		panic(fmt.Sprintf("refactor: invalid level-%d entry range [%d,%d)", level, start, end))
	}
	return cum[end] - cum[start]
}

// LevelEntries returns the number of augmentation entries at one level.
func (h *Hierarchy) LevelEntries(level int) int {
	if level < 0 || level >= len(h.augs) {
		panic(fmt.Sprintf("refactor: no augmentation level %d", level))
	}
	return len(h.augs[level])
}

// BytesForRange returns the encoded size of the cursor range [from, to).
func (h *Hierarchy) BytesForRange(from, to int) int64 {
	var total int64
	for _, s := range h.Segments(from, to) {
		total += s.Bytes
	}
	return total
}

// Recompose reconstructs the level-0 representation from the base plus
// the first `cursor` augmentation entries, mirroring Algorithm 1's
// prolongate-and-add loop: coarser levels are fully applied before finer
// ones, and the result is interpolated up to the original grid.
func (h *Hierarchy) Recompose(cursor int) *tensor.Tensor {
	pos, take := h.split(cursor)
	r := h.base.Clone()
	d := h.opts.Decimation
	for i, lvl := range h.order {
		r = Prolongate(r, h.levelDims[lvl], d)
		var n int
		switch {
		case i < pos:
			n = len(h.augs[lvl])
		case i == pos:
			n = take
		default:
			n = 0
		}
		data := r.Data()
		for _, e := range h.augs[lvl][:n] {
			data[e.Index] += e.Value
		}
	}
	return r
}

// RecomposeAtLevel reconstructs the representation at a chosen level
// (0 = original resolution, L-1 = base) from the base plus the first
// `cursor` augmentation entries. Entries at levels finer than `level` are
// ignored — Fig 3's scenario where a low-accuracy analysis runs directly
// on a coarser grid without interpolating to full resolution.
func (h *Hierarchy) RecomposeAtLevel(cursor, level int) *tensor.Tensor {
	if level < 0 || level >= len(h.levelDims) {
		panic(fmt.Sprintf("refactor: level %d out of range [0,%d)", level, len(h.levelDims)))
	}
	pos, take := h.split(cursor)
	r := h.base.Clone()
	d := h.opts.Decimation
	for i, lvl := range h.order {
		if lvl < level {
			break
		}
		r = Prolongate(r, h.levelDims[lvl], d)
		var n int
		switch {
		case i < pos:
			n = len(h.augs[lvl])
		case i == pos:
			n = take
		default:
			n = 0
		}
		data := r.Data()
		for _, e := range h.augs[lvl][:n] {
			data[e.Index] += e.Value
		}
	}
	return r
}

// Achieved measures the accuracy (under the configured metric) of the
// reconstruction at `cursor` against the original data.
func (h *Hierarchy) Achieved(orig *tensor.Tensor, cursor int) float64 {
	rec := h.Recompose(cursor)
	return errmetric.Measure(h.opts.Metric, orig.Data(), rec.Data())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
