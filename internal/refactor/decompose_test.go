package refactor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// smoothField builds a 2D field with large-scale structure plus detail,
// representative of analysis output.
func smoothField(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := math.Sin(4*math.Pi*float64(r)/float64(n))*math.Cos(2*math.Pi*float64(c)/float64(n)) +
				0.3*math.Sin(16*math.Pi*float64(c)/float64(n)) +
				0.05*rng.NormFloat64()
			t.Set(v, r, c)
		}
	}
	return t
}

func mustDecompose(t *testing.T, orig *tensor.Tensor, opts Options) *Hierarchy {
	t.Helper()
	h, err := Decompose(orig, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFullRecompositionIsLossless(t *testing.T) {
	orig := smoothField(33, 1)
	h := mustDecompose(t, orig, Options{Levels: 4})
	rec := h.Recompose(h.TotalEntries())
	// Lossless up to IEEE rounding of (a−b)+b.
	if d := rec.AbsDiffMax(orig); d > 1e-12*orig.Range() {
		t.Fatalf("full recomposition not exact: max diff %v", d)
	}
}

func TestBaseOnlyRecomposition(t *testing.T) {
	orig := smoothField(33, 2)
	h := mustDecompose(t, orig, Options{Levels: 3})
	rec := h.Recompose(0)
	if !sameInts(rec.Dims(), orig.Dims()) {
		t.Fatalf("recomposed dims %v", rec.Dims())
	}
	// Base-only must equal iterated prolongation of the base.
	want := h.Base().Clone()
	want = Prolongate(want, h.levelDims[1], 2)
	want = Prolongate(want, h.levelDims[0], 2)
	if rec.AbsDiffMax(want) != 0 {
		t.Fatal("base-only recomposition differs from prolongated base")
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestErrorDecreasesWithCursor(t *testing.T) {
	orig := smoothField(33, 3)
	h := mustDecompose(t, orig, Options{Levels: 4})
	total := h.TotalEntries()
	prev := math.Inf(1)
	for _, frac := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		acc := h.Achieved(orig, int(frac*float64(total)))
		if acc > prev+1e-12 {
			t.Fatalf("error increased at fraction %v: %v > %v", frac, acc, prev)
		}
		prev = acc
	}
}

func TestLadderSatisfiesBoundsNRMSE(t *testing.T) {
	orig := smoothField(65, 4)
	bounds := []float64{0.1, 0.03, 0.01, 0.003, 0.001}
	h := mustDecompose(t, orig, Options{Levels: 4, Metric: errmetric.NRMSE, Bounds: bounds})
	rungs := h.Rungs()
	if len(rungs) != len(bounds) {
		t.Fatalf("rungs = %d", len(rungs))
	}
	prevCursor := -1
	for i, r := range rungs {
		if !errmetric.NRMSE.Satisfies(r.Achieved, r.Bound) {
			t.Errorf("rung %d: achieved %v does not satisfy %v", i, r.Achieved, r.Bound)
		}
		// Re-measure to confirm the recorded accuracy.
		if acc := h.Achieved(orig, r.Cursor); !errmetric.NRMSE.Satisfies(acc, r.Bound) {
			t.Errorf("rung %d: re-measured %v violates %v", i, acc, r.Bound)
		}
		if r.Cursor < prevCursor {
			t.Errorf("rung %d cursor %d not monotone", i, r.Cursor)
		}
		prevCursor = r.Cursor
	}
	// Tighter bounds need at least as many entries.
	for i := 1; i < len(rungs); i++ {
		if rungs[i].Cursor < rungs[i-1].Cursor {
			t.Fatal("ladder not monotone")
		}
	}
}

func TestLadderSatisfiesBoundsPSNR(t *testing.T) {
	orig := smoothField(65, 5)
	bounds := []float64{30, 40, 50, 60}
	h := mustDecompose(t, orig, Options{Levels: 4, Metric: errmetric.PSNR, Bounds: bounds})
	for i, r := range h.Rungs() {
		if !errmetric.PSNR.Satisfies(r.Achieved, r.Bound) {
			t.Errorf("rung %d: %v dB does not satisfy %v dB", i, r.Achieved, r.Bound)
		}
	}
}

func TestMinimalityOfLadderCursor(t *testing.T) {
	orig := smoothField(33, 6)
	h := mustDecompose(t, orig, Options{Levels: 3, Metric: errmetric.NRMSE, Bounds: []float64{0.01}})
	r := h.Rungs()[0]
	if r.Cursor == 0 {
		t.Skip("base already satisfies the bound; nothing to minimize")
	}
	// One fewer entry must violate the bound (true when error is locally
	// monotone, which magnitude ordering gives us here).
	if acc := h.Achieved(orig, r.Cursor-1); errmetric.NRMSE.Satisfies(acc, r.Bound) &&
		math.Abs(acc-r.Bound) > r.Bound*0.01 {
		t.Fatalf("cursor %d not minimal: %v still well under %v", r.Cursor, acc, r.Bound)
	}
}

func TestBoundsValidation(t *testing.T) {
	orig := smoothField(17, 7)
	// Wrong order for NRMSE (tight -> loose).
	if _, err := Decompose(orig, Options{Levels: 3, Metric: errmetric.NRMSE, Bounds: []float64{0.01, 0.1}}); err == nil {
		t.Fatal("unordered NRMSE bounds accepted")
	}
	// Wrong order for PSNR.
	if _, err := Decompose(orig, Options{Levels: 3, Metric: errmetric.PSNR, Bounds: []float64{50, 30}}); err == nil {
		t.Fatal("unordered PSNR bounds accepted")
	}
	// Non-positive NRMSE bound.
	if _, err := Decompose(orig, Options{Levels: 3, Metric: errmetric.NRMSE, Bounds: []float64{0}}); err == nil {
		t.Fatal("zero NRMSE bound accepted")
	}
	// NaN bound.
	if _, err := Decompose(orig, Options{Levels: 3, Bounds: []float64{math.NaN()}}); err == nil {
		t.Fatal("NaN bound accepted")
	}
	// Bad decimation.
	if _, err := Decompose(orig, Options{Levels: 3, Decimation: 1}); err == nil {
		t.Fatal("decimation 1 accepted")
	}
}

func TestLevelsClampedToGrid(t *testing.T) {
	orig := tensor.FromData([]float64{1, 2, 3, 4, 5}, 5)
	h := mustDecompose(t, orig, Options{Levels: 50})
	// 5 -> 3 -> 2 -> 1: at most 4 levels.
	if h.Levels() > 4 {
		t.Fatalf("levels = %d", h.Levels())
	}
	rec := h.Recompose(h.TotalEntries())
	if rec.AbsDiffMax(orig) != 0 {
		t.Fatal("clamped hierarchy not lossless")
	}
}

func TestAugsSortedByMagnitude(t *testing.T) {
	orig := smoothField(33, 8)
	h := mustDecompose(t, orig, Options{Levels: 3})
	for l, entries := range h.augs {
		for i := 1; i < len(entries); i++ {
			if math.Abs(entries[i].Value) > math.Abs(entries[i-1].Value) {
				t.Fatalf("level %d entries not sorted at %d", l, i)
			}
		}
	}
}

func TestCoarseLevelsRetrievedFirst(t *testing.T) {
	orig := smoothField(33, 9)
	h := mustDecompose(t, orig, Options{Levels: 4})
	// order must be L-2, ..., 0
	want := []int{2, 1, 0}
	for i, l := range h.order {
		if l != want[i] {
			t.Fatalf("order = %v", h.order)
		}
	}
	// LevelOfCursor: cursor 0 -> base level (L-1).
	if got := h.LevelOfCursor(0); got != 3 {
		t.Fatalf("LevelOfCursor(0) = %d", got)
	}
	// A cursor inside the first block is at level L-2.
	if h.cum[0] > 0 {
		if got := h.LevelOfCursor(1); got != 2 {
			t.Fatalf("LevelOfCursor(1) = %d", got)
		}
	}
	// Last cursor is at level 0.
	if got := h.LevelOfCursor(h.TotalEntries()); got != 0 {
		t.Fatalf("LevelOfCursor(total) = %d", got)
	}
}

func TestSegmentsPartitionRange(t *testing.T) {
	orig := smoothField(33, 10)
	h := mustDecompose(t, orig, Options{Levels: 4})
	total := h.TotalEntries()
	segs := h.Segments(0, total)
	var count int
	var bytes int64
	for _, s := range segs {
		count += s.End - s.Start
		bytes += s.Bytes
	}
	if count != total {
		t.Fatalf("segments cover %d of %d entries", count, total)
	}
	if bytes != h.TotalAugBytes() {
		t.Fatalf("segment bytes %d != total %d", bytes, h.TotalAugBytes())
	}
	// Split ranges must add up.
	mid := total / 3
	if h.BytesForRange(0, mid)+h.BytesForRange(mid, total) != h.TotalAugBytes() {
		t.Fatal("byte ranges not additive")
	}
	if len(h.Segments(5, 5)) != 0 {
		t.Fatal("empty range should have no segments")
	}
}

func TestCursorForFraction(t *testing.T) {
	orig := smoothField(17, 11)
	h := mustDecompose(t, orig, Options{Levels: 3})
	if h.CursorForFraction(0) != 0 || h.CursorForFraction(-1) != 0 {
		t.Fatal("fraction 0")
	}
	if h.CursorForFraction(1) != h.TotalEntries() || h.CursorForFraction(2) != h.TotalEntries() {
		t.Fatal("fraction 1")
	}
	half := h.CursorForFraction(0.5)
	if half <= 0 || half >= h.TotalEntries() {
		t.Fatalf("fraction 0.5 -> %d", half)
	}
}

func TestDoFFraction(t *testing.T) {
	orig := smoothField(33, 12)
	h := mustDecompose(t, orig, Options{Levels: 3})
	f0 := h.DoFFraction(0)
	if f0 <= 0 || f0 >= 1 {
		t.Fatalf("base DoF fraction = %v", f0)
	}
	fFull := h.DoFFraction(h.TotalEntries())
	// Base + all entries ≈ all points (entries exclude exact zeros).
	if fFull > 1.0001 || fFull < 0.9 {
		t.Fatalf("full DoF fraction = %v", fFull)
	}
	if !(f0 < fFull) {
		t.Fatal("DoF not increasing")
	}
}

func TestCursorForBound(t *testing.T) {
	orig := smoothField(33, 13)
	h := mustDecompose(t, orig, Options{Levels: 3, Bounds: []float64{0.1, 0.01}})
	if _, err := h.CursorForBound(0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CursorForBound(0.5); err == nil {
		t.Fatal("unknown bound accepted")
	}
}

func TestLevelsForRatio(t *testing.T) {
	// 2D, d=2: each level shrinks by 4. ratio 16 -> 2 aug levels + base.
	if got := LevelsForRatio(16, 2, 2); got != 3 {
		t.Fatalf("LevelsForRatio(16,2,2) = %d", got)
	}
	if got := LevelsForRatio(1, 2, 2); got != 1 {
		t.Fatalf("ratio 1 -> %d", got)
	}
	// 8192 in 2D: log4(8192) = 6.5 -> 7 aug levels (rounds to nearest).
	if got := LevelsForRatio(8192, 2, 2); got < 7 || got > 8 {
		t.Fatalf("LevelsForRatio(8192,2,2) = %d", got)
	}
	// Monotone in ratio.
	if !(LevelsForRatio(512, 2, 2) <= LevelsForRatio(8192, 2, 2)) {
		t.Fatal("not monotone")
	}
}

func TestBaseAccuracyRecorded(t *testing.T) {
	orig := smoothField(33, 14)
	h := mustDecompose(t, orig, Options{Levels: 4})
	if got := h.Achieved(orig, 0); got != h.BaseAccuracy() {
		t.Fatalf("base accuracy %v vs recorded %v", got, h.BaseAccuracy())
	}
	if h.BaseAccuracy() <= 0 {
		t.Fatalf("base accuracy = %v (decimated base should not be exact)", h.BaseAccuracy())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	orig := smoothField(33, 15)
	h := mustDecompose(t, orig, Options{Levels: 3, Bounds: []float64{0.05, 0.01}})
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.TotalEntries() != h.TotalEntries() {
		t.Fatalf("entries %d vs %d", h2.TotalEntries(), h.TotalEntries())
	}
	if h2.BaseAccuracy() != h.BaseAccuracy() {
		t.Fatal("base accuracy mismatch")
	}
	if len(h2.Rungs()) != len(h.Rungs()) {
		t.Fatal("rung count mismatch")
	}
	for i := range h.Rungs() {
		if h.Rungs()[i] != h2.Rungs()[i] {
			t.Fatalf("rung %d mismatch: %+v vs %+v", i, h.Rungs()[i], h2.Rungs()[i])
		}
	}
	a := h.Recompose(h.TotalEntries())
	b := h2.Recompose(h2.TotalEntries())
	if a.AbsDiffMax(b) != 0 {
		t.Fatal("recomposition differs after round trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a tango file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	orig := smoothField(17, 16)
	h := mustDecompose(t, orig, Options{Levels: 3})
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	entries := []Entry{{0, 1.5}, {1000000, -2.25}, {7, 0}, {42, math.Pi}}
	var buf bytes.Buffer
	n, err := EncodeEntries(&buf, entries)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("reported %d wrote %d", n, buf.Len())
	}
	got, err := DecodeEntries(&buf, len(entries))
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got[i], entries[i])
		}
	}
}

func TestLosslessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 9 + rng.Intn(24)
		orig := tensor.New(n, n)
		for i := range orig.Data() {
			orig.Data()[i] = rng.NormFloat64() * 100
		}
		h, err := Decompose(orig, Options{Levels: 2 + rng.Intn(3)})
		if err != nil {
			return false
		}
		return h.Recompose(h.TotalEntries()).AbsDiffMax(orig) <= 1e-11*orig.Range()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicDecomposition(t *testing.T) {
	orig := smoothField(33, 17)
	h1 := mustDecompose(t, orig, Options{Levels: 3, Bounds: []float64{0.01}})
	h2 := mustDecompose(t, orig, Options{Levels: 3, Bounds: []float64{0.01}})
	if h1.Rungs()[0] != h2.Rungs()[0] {
		t.Fatal("nondeterministic ladder")
	}
	for l := range h1.augs {
		if len(h1.augs[l]) != len(h2.augs[l]) {
			t.Fatal("aug lengths differ")
		}
		for i := range h1.augs[l] {
			if h1.augs[l][i] != h2.augs[l][i] {
				t.Fatal("aug entries differ")
			}
		}
	}
}

func TestSingleLevelHierarchy(t *testing.T) {
	orig := smoothField(17, 18)
	h := mustDecompose(t, orig, Options{Levels: 1})
	if h.TotalEntries() != 0 {
		t.Fatalf("L=1 should have no augmentations, got %d", h.TotalEntries())
	}
	rec := h.Recompose(0)
	if rec.AbsDiffMax(orig) != 0 {
		t.Fatal("L=1 base must equal original")
	}
	if h.BaseAccuracy() != 0 {
		t.Fatalf("L=1 base accuracy = %v", h.BaseAccuracy())
	}
}

func TestRecomposeAtLevel(t *testing.T) {
	orig := smoothField(33, 30)
	h := mustDecompose(t, orig, Options{Levels: 4})

	// Level 0 with full cursor equals the standard recomposition.
	full := h.RecomposeAtLevel(h.TotalEntries(), 0)
	if full.AbsDiffMax(h.Recompose(h.TotalEntries())) != 0 {
		t.Fatal("level-0 recomposition differs from Recompose")
	}

	// Level L-1 is the base itself regardless of cursor.
	base := h.RecomposeAtLevel(h.TotalEntries(), h.Levels()-1)
	if base.AbsDiffMax(h.Base()) != 0 {
		t.Fatal("base-level recomposition differs from Base()")
	}

	// An intermediate level with full augmentation equals the exact
	// restriction chain of the original (the decomposition's Ω^l).
	lvl := 1
	inter := h.RecomposeAtLevel(h.TotalEntries(), lvl)
	want := orig.Clone()
	for l := 0; l < lvl; l++ {
		want = Restrict(want, 2)
	}
	if d := inter.AbsDiffMax(want); d > 1e-12*orig.Range() {
		t.Fatalf("intermediate level diff %v", d)
	}

	// Dims match the level's grid.
	if !sameInts(inter.Dims(), h.levelDims[lvl]) {
		t.Fatalf("dims %v, want %v", inter.Dims(), h.levelDims[lvl])
	}
}

func TestRecomposeAtLevelPanicsOutOfRange(t *testing.T) {
	orig := smoothField(17, 31)
	h := mustDecompose(t, orig, Options{Levels: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.RecomposeAtLevel(0, 5)
}

func TestLadderBoundsPropertyAcrossRandomFields(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 17 + 2*rng.Intn(12)
		orig := tensor.New(n, n)
		for i := range orig.Data() {
			// Smooth base + noise so the ladder is nontrivial.
			orig.Data()[i] = math.Sin(float64(i)/13) + 0.1*rng.NormFloat64()
		}
		bounds := []float64{0.2, 0.05, 0.01}
		h, err := Decompose(orig, Options{Levels: 2 + rng.Intn(2), Bounds: bounds})
		if err != nil {
			return false
		}
		for _, r := range h.Rungs() {
			if !errmetric.NRMSE.Satisfies(h.Achieved(orig, r.Cursor), r.Bound+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
