package refactor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// The on-disk layout mirrors the paper's step-3 "shuffle and tag": each
// level's augmentation stream is stored contiguously in retrieval order
// (descending magnitude), so any bound's bucket is a contiguous byte
// range that can be read sequentially from its tier.

// entrySize returns the encoded size of one entry: uvarint index plus 8
// value bytes.
func entrySize(e Entry) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], uint64(e.Index)) + 8
}

// EncodeEntries writes a run of entries to w. Entries are staged into a
// stack scratch buffer and flushed in batches, so a long stream costs a
// handful of w.Write calls (and zero heap allocations) instead of one
// per entry — the per-entry buffer would otherwise escape through the
// io.Writer and dominate Encode's allocation profile.
//
//tango:hotpath
func EncodeEntries(w io.Writer, entries []Entry) (int64, error) {
	var buf [4096]byte
	var total int64
	k := 0
	for _, e := range entries {
		if k+binary.MaxVarintLen64+8 > len(buf) {
			m, err := w.Write(buf[:k])
			total += int64(m)
			if err != nil {
				return total, err
			}
			k = 0
		}
		k += binary.PutUvarint(buf[k:], uint64(e.Index))
		binary.LittleEndian.PutUint64(buf[k:], math.Float64bits(e.Value))
		k += 8
	}
	if k > 0 {
		m, err := w.Write(buf[:k])
		total += int64(m)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DecodeEntries reads exactly n entries from r.
func DecodeEntries(r io.ByteReader, n int) ([]Entry, error) {
	entries := make([]Entry, n)
	for i := 0; i < n; i++ {
		idx, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("refactor: entry %d index: %w", i, err)
		}
		var vb [8]byte
		for j := 0; j < 8; j++ {
			b, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("refactor: entry %d value: %w", i, err)
			}
			vb[j] = b
		}
		entries[i] = Entry{
			Index: int(idx),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(vb[:])),
		}
	}
	return entries, nil
}

const fileMagic = "TNGO1\n"

// Encode serializes the hierarchy (options, ladder, base, augmentation
// streams) to w. The format is self-contained: Decode reconstructs an
// equivalent hierarchy without access to the original data.
func (h *Hierarchy) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	// bufio.Writer errors are sticky: the final Flush reports the first
	// failure, so per-write errors are explicitly discarded here. The
	// scratch buffer is shared by both closures so it escapes once per
	// Encode, not once per write.
	var scratch [binary.MaxVarintLen64 + 8]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		_, _ = bw.Write(scratch[:n])
	}
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
		_, _ = bw.Write(scratch[:8])
	}

	writeU(uint64(h.opts.Levels))
	writeU(uint64(h.opts.Decimation))
	writeU(uint64(h.opts.Metric))
	writeU(uint64(len(h.opts.Bounds)))
	for _, b := range h.opts.Bounds {
		writeF(b)
	}

	dims := h.levelDims[0]
	writeU(uint64(len(dims)))
	for _, d := range dims {
		writeU(uint64(d))
	}
	writeU(uint64(h.origLen))
	writeF(h.baseAcc)

	writeU(uint64(h.base.Len()))
	for _, v := range h.base.Data() {
		writeF(v)
	}

	writeU(uint64(len(h.augs)))
	for _, entries := range h.augs {
		writeU(uint64(len(entries)))
		if _, err := EncodeEntries(bw, entries); err != nil {
			return err
		}
	}

	writeU(uint64(len(h.rungs)))
	for _, r := range h.rungs {
		writeF(r.Bound)
		writeF(r.Achieved)
		writeU(uint64(r.Cursor))
		writeU(uint64(r.Cardinality))
		writeU(uint64(r.Bytes))
		writeU(uint64(r.Level))
	}
	return bw.Flush()
}

// Decode reads a hierarchy previously written by Encode. When r is
// already a *bufio.Reader it is used directly (no read-ahead beyond the
// hierarchy's own bytes is introduced), so hierarchies can be decoded
// back-to-back from one stream (see DecodeBundle).
func Decode(r io.Reader) (*Hierarchy, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("refactor: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("refactor: bad magic %q", magic)
	}
	var firstErr error
	readU := func() uint64 {
		v, err := binary.ReadUvarint(br)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	var fbuf [8]byte
	readF := func() float64 {
		if _, err := io.ReadFull(br, fbuf[:]); err != nil && firstErr == nil {
			firstErr = err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(fbuf[:]))
	}

	h := &Hierarchy{}
	h.opts.Levels = int(readU())
	h.opts.Decimation = int(readU())
	h.opts.Metric = errmetric.Kind(readU())
	nb := int(readU())
	if firstErr != nil {
		return nil, firstErr
	}
	if nb < 0 || nb > 1<<20 {
		return nil, fmt.Errorf("refactor: implausible bound count %d", nb)
	}
	h.opts.Bounds = make([]float64, nb)
	for i := range h.opts.Bounds {
		h.opts.Bounds[i] = readF()
	}

	rank := int(readU())
	if firstErr != nil {
		return nil, firstErr
	}
	if rank <= 0 || rank > 8 {
		return nil, fmt.Errorf("refactor: implausible rank %d", rank)
	}
	if h.opts.Levels < 1 || h.opts.Levels > 64 {
		return nil, fmt.Errorf("refactor: implausible level count %d", h.opts.Levels)
	}
	if h.opts.Decimation < 2 || h.opts.Decimation > 1<<16 {
		return nil, fmt.Errorf("refactor: implausible decimation %d", h.opts.Decimation)
	}
	dims := make([]int, rank)
	points := 1
	for i := range dims {
		dims[i] = int(readU())
		if dims[i] <= 0 || dims[i] > 1<<24 {
			return nil, fmt.Errorf("refactor: implausible dimension %d", dims[i])
		}
		points *= dims[i]
		if points > 1<<28 {
			return nil, fmt.Errorf("refactor: grid too large (> 2^28 points)")
		}
	}
	h.origLen = int(readU())
	if h.origLen != points {
		return nil, fmt.Errorf("refactor: origLen %d does not match dims %v", h.origLen, dims)
	}
	h.baseAcc = readF()

	// Rebuild level dims from the original dims.
	h.levelDims = [][]int{append([]int(nil), dims...)}
	for l := 1; l < h.opts.Levels; l++ {
		h.levelDims = append(h.levelDims, CoarseDims(h.levelDims[l-1], h.opts.Decimation))
	}

	baseLen := int(readU())
	if firstErr != nil {
		return nil, firstErr
	}
	want := 1
	for _, d := range h.levelDims[len(h.levelDims)-1] {
		want *= d
	}
	if baseLen != want {
		return nil, fmt.Errorf("refactor: base length %d does not match dims (want %d)", baseLen, want)
	}
	baseData := make([]float64, baseLen)
	for i := range baseData {
		baseData[i] = readF()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	h.base = tensor.FromData(baseData, h.levelDims[len(h.levelDims)-1]...)

	nAugs := int(readU())
	if firstErr != nil {
		return nil, firstErr
	}
	if nAugs != h.opts.Levels-1 {
		return nil, fmt.Errorf("refactor: aug level count %d, want %d", nAugs, h.opts.Levels-1)
	}
	h.augs = make([][]Entry, nAugs)
	for l := range h.augs {
		n := int(readU())
		if firstErr != nil {
			return nil, firstErr
		}
		levelLen := 1
		for _, d := range h.levelDims[l] {
			levelLen *= d
		}
		if n < 0 || n > levelLen {
			return nil, fmt.Errorf("refactor: level %d entry count %d exceeds grid size %d", l, n, levelLen)
		}
		entries, err := DecodeEntries(br, n)
		if err != nil {
			return nil, err
		}
		for i, e := range entries {
			if e.Index < 0 || e.Index >= levelLen {
				return nil, fmt.Errorf("refactor: level %d entry %d index %d out of grid", l, i, e.Index)
			}
		}
		h.augs[l] = entries
	}

	for l := h.opts.Levels - 2; l >= 0; l-- {
		h.order = append(h.order, l)
	}
	h.cum = make([]int, len(h.order))
	c := 0
	for i, l := range h.order {
		c += len(h.augs[l])
		h.cum[i] = c
	}
	h.byteCum = make([][]int64, nAugs)
	for l := 0; l < nAugs; l++ {
		pre := make([]int64, len(h.augs[l])+1)
		for i, e := range h.augs[l] {
			pre[i+1] = pre[i] + int64(entrySize(e))
		}
		h.byteCum[l] = pre
	}

	nRungs := int(readU())
	if firstErr != nil {
		return nil, firstErr
	}
	if nRungs < 0 || nRungs > 1<<20 {
		return nil, fmt.Errorf("refactor: implausible rung count %d", nRungs)
	}
	h.rungs = make([]Rung, nRungs)
	for i := range h.rungs {
		h.rungs[i] = Rung{
			Bound:       readF(),
			Achieved:    readF(),
			Cursor:      int(readU()),
			Cardinality: int(readU()),
			Bytes:       int64(readU()),
			Level:       int(readU()),
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return h, nil
}
