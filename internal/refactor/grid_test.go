package refactor

import (
	"math"
	"math/rand"
	"testing"

	"tango/internal/tensor"
)

func TestCoarseDims(t *testing.T) {
	cases := []struct {
		dims []int
		d    int
		want []int
	}{
		{[]int{5}, 2, []int{3}},
		{[]int{4}, 2, []int{2}},
		{[]int{9, 9}, 2, []int{5, 5}},
		{[]int{1}, 2, []int{1}},
		{[]int{10, 7}, 3, []int{4, 3}},
	}
	for _, c := range cases {
		got := CoarseDims(c.dims, c.d)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("CoarseDims(%v,%d) = %v, want %v", c.dims, c.d, got, c.want)
			}
		}
	}
}

func TestRestrict1D(t *testing.T) {
	f := tensor.FromData([]float64{0, 1, 2, 3, 4, 5, 6}, 7)
	c := Restrict(f, 2)
	want := []float64{0, 2, 4, 6}
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("restrict = %v, want %v", c.Data(), want)
		}
	}
}

func TestRestrict2D(t *testing.T) {
	f := tensor.New(5, 5)
	for r := 0; r < 5; r++ {
		for cc := 0; cc < 5; cc++ {
			f.Set(float64(r*10+cc), r, cc)
		}
	}
	c := Restrict(f, 2)
	if c.Dims()[0] != 3 || c.Dims()[1] != 3 {
		t.Fatalf("dims = %v", c.Dims())
	}
	// Kept rows/cols: 0, 2, 4.
	if c.At(1, 2) != 24 || c.At(2, 0) != 40 || c.At(0, 0) != 0 {
		t.Fatalf("restricted values wrong: %v", c.Data())
	}
}

func TestRestrictPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Restrict(tensor.New(4), 1)
}

func TestProlongateExactAtNodes(t *testing.T) {
	f := tensor.FromData([]float64{3, 0, 7, 0, -2}, 5)
	c := Restrict(f, 2) // [3 7 -2]
	p := Prolongate(c, []int{5}, 2)
	for _, i := range []int{0, 2, 4} {
		if p.Data()[i] != f.Data()[i] {
			t.Fatalf("prolongation not exact at node %d: %v", i, p.Data())
		}
	}
	// Midpoints are averages.
	if p.Data()[1] != 5 || p.Data()[3] != 2.5 {
		t.Fatalf("midpoints wrong: %v", p.Data())
	}
}

func TestProlongateReproducesLinearField(t *testing.T) {
	// Multilinear interpolation is exact for affine functions (within
	// the span of coarse nodes).
	f := tensor.New(9, 9)
	for r := 0; r < 9; r++ {
		for c := 0; c < 9; c++ {
			f.Set(2*float64(r)-3*float64(c)+1, r, c)
		}
	}
	c := Restrict(f, 2)
	p := Prolongate(c, []int{9, 9}, 2)
	if p.AbsDiffMax(f) > 1e-12 {
		t.Fatalf("linear field not reproduced: max err %v", p.AbsDiffMax(f))
	}
}

func TestProlongateClampsTail(t *testing.T) {
	// n=6, d=2: coarse nodes at 0,2,4; indices 5 is beyond the last node
	// and must clamp to it.
	f := tensor.FromData([]float64{0, 0, 0, 0, 8, 0}, 6)
	c := Restrict(f, 2) // values at 0,2,4 -> [0 0 8]
	p := Prolongate(c, []int{6}, 2)
	if p.Data()[5] != 8 {
		t.Fatalf("tail clamp: %v", p.Data())
	}
	if p.Data()[4] != 8 || p.Data()[3] != 4 {
		t.Fatalf("interior: %v", p.Data())
	}
}

func TestProlongate3D(t *testing.T) {
	f := tensor.New(5, 5, 5)
	rng := rand.New(rand.NewSource(1))
	for i := range f.Data() {
		f.Data()[i] = rng.NormFloat64()
	}
	c := Restrict(f, 2)
	p := Prolongate(c, []int{5, 5, 5}, 2)
	// Exact at all kept points.
	for r := 0; r < 5; r += 2 {
		for s := 0; s < 5; s += 2 {
			for u := 0; u < 5; u += 2 {
				if p.At(r, s, u) != f.At(r, s, u) {
					t.Fatalf("3D node (%d,%d,%d) mismatch", r, s, u)
				}
			}
		}
	}
	// Center point (1,1,1) is the mean of the 8 surrounding nodes.
	var sum float64
	for _, r := range []int{0, 2} {
		for _, s := range []int{0, 2} {
			for _, u := range []int{0, 2} {
				sum += f.At(r, s, u)
			}
		}
	}
	if math.Abs(p.At(1, 1, 1)-sum/8) > 1e-12 {
		t.Fatalf("trilinear center wrong: %v vs %v", p.At(1, 1, 1), sum/8)
	}
}

func TestProlongateShapeMismatchPanics(t *testing.T) {
	c := tensor.New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Prolongate(c, []int{100}, 2) // CoarseDims(100,2)=50 != 3
}

func TestRestrictDecimation4(t *testing.T) {
	f := tensor.New(9)
	for i := range f.Data() {
		f.Data()[i] = float64(i)
	}
	c := Restrict(f, 4)
	want := []float64{0, 4, 8}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("d=4 restrict: %v", c.Data())
		}
	}
	p := Prolongate(c, []int{9}, 4)
	if p.Data()[2] != 2 { // linear between 0 and 4
		t.Fatalf("d=4 prolongate: %v", p.Data())
	}
}
