package refactor

import (
	"bytes"
	"testing"
)

// fuzz seeds: a valid hierarchy, a valid bundle, and garbage.
func validHierarchyBytes(tb testing.TB) []byte {
	tb.Helper()
	h, err := Decompose(smoothField(17, 1), Options{Levels: 3, Bounds: []float64{0.1}})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func validBundleBytes(tb testing.TB) []byte {
	tb.Helper()
	b, err := DecomposeBundle([]Var{
		{Name: "a", Data: smoothField(17, 2)},
		{Name: "b", Data: smoothField(17, 3)},
	}, Options{Levels: 2})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode: Decode must never panic or over-allocate on adversarial
// input — it either returns a hierarchy or an error.
func FuzzDecode(f *testing.F) {
	valid := validHierarchyBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TNGO1\n"))
	f.Add(valid[:len(valid)/2])
	// Corrupt single bytes at strategic offsets.
	for _, off := range []int{6, 7, 8, 20, len(valid) / 2} {
		c := append([]byte(nil), valid...)
		if off < len(c) {
			c[off] ^= 0xff
			f.Add(c)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded hierarchy must be internally usable.
		_ = h.TotalEntries()
		_ = h.Recompose(0)
		if h.TotalEntries() > 0 {
			_ = h.Segments(0, h.TotalEntries())
		}
	})
}

// FuzzDecodeBundle: same contract for bundle streams.
func FuzzDecodeBundle(f *testing.F) {
	valid := validBundleBytes(f)
	f.Add(valid)
	f.Add([]byte("TNGB1\n"))
	f.Add(valid[:len(valid)*2/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = b.Names()
		_ = b.TotalBytes()
	})
}

// TestFuzzSeedsAsRegressions runs the seed corpus deterministically in a
// regular `go test` invocation (the fuzz engine itself only runs under
// -fuzz).
func TestFuzzSeedsAsRegressions(t *testing.T) {
	valid := validHierarchyBytes(t)
	if _, err := Decode(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	for _, off := range []int{6, 7, 8, 20, len(valid) / 2} {
		c := append([]byte(nil), valid...)
		if off < len(c) {
			c[off] ^= 0xff
			// Either decodes or errors; must not panic.
			_, _ = Decode(bytes.NewReader(c))
		}
	}
	vb := validBundleBytes(t)
	if _, err := DecodeBundle(bytes.NewReader(vb)); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
}
