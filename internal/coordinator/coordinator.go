// Package coordinator arbitrates blkio weights between multiple Tango
// sessions on one node. Each session's weight function produces a
// *desired* weight on the absolute [100,1000] scale; when several
// sessions are retrieving simultaneously their independent requests can
// saturate the top of the range (losing the priority differentiation the
// weight encodes) or sit far below it (wasting share against the
// interfering containers). The allocator rescales the desired weights of
// all concurrently active sessions so that the largest maps to MaxWeight
// while mutual ratios — and hence priority differentiation — are
// preserved exactly.
//
// The rescale is incremental: the allocator maintains a count of active
// sessions per desired weight, so the scale (the max active desired) is
// known without a sweep, and a Request/Release that does not move the
// scale touches only the one session whose grant changed. The full
// sweep runs only when the scale itself moves or a faulted weight write
// is waiting to be re-applied. Grants land through a reusable scratch
// slice — the steady-state hot path performs no allocation.
//
// This is an extension beyond the paper, which evaluates one analytics
// container per node but motivates the multi-analytics scenario.
package coordinator

import (
	"fmt"
	"sync"

	"tango/internal/blkio"
	"tango/internal/resil"
	"tango/internal/trace"
)

// Allocator coordinates the weights of registered sessions. It is safe
// for use from a single simulation engine (its mutexes additionally
// allow multi-engine tests to share one instance, though that is not
// the intended deployment). Lock order: applyMu, then mu. applyMu
// serializes whole operations so the grant scratch can be reused;
// weight writes happen with mu released (they notify device
// subscribers).
type Allocator struct {
	applyMu sync.Mutex // serializes Request/Release/Detach end to end
	mu      sync.Mutex
	list    []*entry          // guarded by mu (insertion order: keeps rebalancing deterministic)
	entries map[string]*entry // guarded by mu
	rec     *trace.Recorder   // guarded by mu
	now     func() float64    // guarded by mu
	kApply  *resil.Key        // guarded by mu (coord.weight.apply; nil = legacy path)

	active      int                        // guarded by mu: sessions between Request and Release
	pendingAct  int                        // guarded by mu: active entries with a failed write to retry
	desireCount [blkio.MaxWeight + 1]int32 // guarded by mu: active sessions per desired weight
	maxDesired  int                        // guarded by mu: largest active desired (the scale)
	lastMax     int                        // guarded by mu: scale the current grants were computed at
	targets     []target                   // guarded by applyMu: reusable write scratch
}

type entry struct {
	name    string
	cg      *blkio.Cgroup
	desired int
	grant   int // the weight last successfully written by the allocator
	active  bool
	pending bool // last weight write failed; force a re-apply next time
}

type target struct {
	e       *entry
	w       int
	pending bool
}

// New returns an empty allocator.
func New() *Allocator {
	return &Allocator{entries: map[string]*entry{}}
}

// Attach registers a session's cgroup. It fails on duplicate names.
func (a *Allocator) Attach(name string, cg *blkio.Cgroup) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.entries[name]; ok {
		return fmt.Errorf("coordinator: session %q already attached", name)
	}
	e := &entry{name: name, cg: cg, grant: cg.Weight()}
	a.entries[name] = e
	a.list = append(a.list, e)
	return nil
}

// SetTrace routes the allocator's recovery events (tolerated and
// re-applied weight writes) to rec, timestamped via now (typically the
// node engine's Now). Either may be nil.
func (a *Allocator) SetTrace(rec *trace.Recorder, now func() float64) {
	a.mu.Lock()
	a.rec = rec
	a.now = now
	a.mu.Unlock()
}

// SetResil routes the allocator's weight writes through the
// coord.weight.apply policy: breaker-gated per cgroup, so a wedged
// weight file is probed on the breaker's half-open schedule instead of
// re-written on every rebalance. Pass nil to restore the legacy ad-hoc
// tolerate-and-retry path.
func (a *Allocator) SetResil(rc *resil.Controller) {
	a.mu.Lock()
	if rc == nil {
		a.kApply = nil
	} else {
		a.kApply = rc.Key(resil.KeyCoordWeightApply)
	}
	a.mu.Unlock()
}

// setWeight performs one weight write through the resil key when one is
// attached (breaker-gated, self-tracing) or directly otherwise. It
// reports whether the write landed; skipped (breaker-suppressed) and
// failed writes both leave the entry pending for the next rebalance.
func (a *Allocator) setWeight(cg *blkio.Cgroup, w int) bool {
	a.mu.Lock()
	k := a.kApply
	a.mu.Unlock()
	if k != nil {
		return k.Weight(cg, w).OK
	}
	return cg.TrySetWeight(w) == nil
}

func (a *Allocator) emit(format string, args ...any) {
	a.mu.Lock()
	rec, now := a.rec, a.now
	a.mu.Unlock()
	t := 0.0
	if now != nil {
		t = now()
	}
	rec.Emit(t, "allocator", trace.KindRecover, format, args...)
}

// setPendingLocked flips the entry's pending flag, keeping the count of
// active pending entries (the sweep trigger) in step.
//
//tango:hotpath
func (a *Allocator) setPendingLocked(e *entry, v bool) {
	if e.pending == v {
		return
	}
	e.pending = v
	if e.active {
		if v {
			a.pendingAct++
		} else {
			a.pendingAct--
		}
	}
}

// countAddLocked registers an active desired weight in the scale index.
//
//tango:hotpath
func (a *Allocator) countAddLocked(d int) {
	a.desireCount[d]++
	if d > a.maxDesired {
		a.maxDesired = d
	}
}

// countRemoveLocked drops an active desired weight from the scale
// index. The downward rescan is bounded by the weight range, not the
// session count.
//
//tango:hotpath
func (a *Allocator) countRemoveLocked(d int) {
	a.desireCount[d]--
	if d != a.maxDesired || a.desireCount[d] > 0 {
		return
	}
	m := a.maxDesired
	for m >= blkio.MinWeight && a.desireCount[m] == 0 {
		m--
	}
	if m < blkio.MinWeight {
		m = 0
	}
	a.maxDesired = m
}

// rebalanceLocked queues the weight writes this operation requires into
// the targets scratch (in attach order, like the full-sweep original).
// If the scale is unchanged and no faulted write awaits retry, only the
// touched entry is considered — O(1); the sweep runs only when the
// scale moved (every active grant changes) or a pending write must be
// retried.
//
//tango:hotpath
func (a *Allocator) rebalanceLocked(touched *entry) {
	a.targets = a.targets[:0]
	max := a.maxDesired
	scaleMoved := max != a.lastMax
	a.lastMax = max
	if max == 0 {
		return
	}
	if !scaleMoved && a.pendingAct == 0 {
		if touched == nil || !touched.active {
			return
		}
		g := blkio.ClampWeight(touched.desired * blkio.MaxWeight / max)
		if g != touched.grant || touched.pending {
			a.targets = append(a.targets, target{touched, g, touched.pending})
		}
		return
	}
	for _, e := range a.list {
		if !e.active {
			continue
		}
		g := blkio.ClampWeight(e.desired * blkio.MaxWeight / max)
		if g != e.grant || e.pending {
			a.targets = append(a.targets, target{e, g, e.pending})
		}
	}
}

// grantLocked is the rescaled weight the entry holds at the current
// scale.
//
//tango:hotpath
func (a *Allocator) grantLocked(e *entry) int {
	return blkio.ClampWeight(e.desired * blkio.MaxWeight / a.maxDesired)
}

// Request declares that the named session wants the given desired weight
// for its current retrieval, and rebalances every active session whose
// grant that moves. It returns the granted weight.
func (a *Allocator) Request(name string, desired int) (int, error) {
	a.applyMu.Lock()
	defer a.applyMu.Unlock()
	a.mu.Lock()
	e, ok := a.entries[name]
	if !ok {
		a.mu.Unlock()
		return 0, fmt.Errorf("coordinator: session %q not attached", name)
	}
	if e.active {
		a.countRemoveLocked(e.desired)
	} else {
		a.active++
		if e.pending {
			a.pendingAct++
		}
	}
	e.desired = blkio.ClampWeight(desired)
	e.active = true
	a.countAddLocked(e.desired)
	a.rebalanceLocked(e)
	granted := a.grantLocked(e)
	a.mu.Unlock()
	a.applyLocked()
	return granted, nil
}

// Release marks the session's retrieval finished: its weight reverts to
// the default and the remaining active sessions rebalance.
func (a *Allocator) Release(name string) {
	a.applyMu.Lock()
	defer a.applyMu.Unlock()
	a.mu.Lock()
	e, ok := a.entries[name]
	if ok && e.active {
		a.countRemoveLocked(e.desired)
		a.active--
		if e.pending {
			a.pendingAct--
		}
		e.active = false
	}
	a.rebalanceLocked(nil)
	a.mu.Unlock()
	if ok {
		a.revert(e, true)
	}
	a.applyLocked()
}

// Detach removes a session: its weight reverts to the default and the
// remaining active sessions rebalance (without this, the largest
// departing desired weight would keep the survivors' grants scaled down
// against interferers until their next Request).
func (a *Allocator) Detach(name string) {
	a.applyMu.Lock()
	defer a.applyMu.Unlock()
	a.mu.Lock()
	e, ok := a.entries[name]
	if ok {
		delete(a.entries, name)
		for i, x := range a.list {
			if x == e {
				a.list = append(a.list[:i], a.list[i+1:]...)
				break
			}
		}
		if e.active {
			a.countRemoveLocked(e.desired)
			a.active--
			if e.pending {
				a.pendingAct--
			}
			e.active = false
		}
	}
	a.rebalanceLocked(nil)
	a.mu.Unlock()
	if ok {
		a.revert(e, false)
	}
	a.applyLocked()
}

// revert returns a departing or released session's cgroup to the
// default weight, tolerating injected weight-write faults: the failure
// is recorded and, while the session stays attached, the next rebalance
// re-applies.
func (a *Allocator) revert(e *entry, attached bool) {
	landed := a.setWeight(e.cg, blkio.DefaultWeight)
	a.mu.Lock()
	legacy := a.kApply == nil
	if attached {
		if landed {
			e.grant = blkio.DefaultWeight
		}
		a.setPendingLocked(e, !landed)
	}
	a.mu.Unlock()
	if !landed && legacy {
		a.emit("weight revert failed for %s: tolerated, cgroup keeps w=%d", e.name, e.cg.Weight())
	}
}

// applyLocked pushes the queued grants to the cgroups outside the state lock
// (weight writes notify device subscribers). Failed writes (injected
// weight faults) are tolerated and recorded: the entry is marked
// pending so the write is retried on every subsequent rebalance until
// it lands, at which point the re-apply is recorded as the recovery.
// The caller holds applyMu, which owns the targets scratch.
func (a *Allocator) applyLocked() {
	for i := range a.targets {
		t := &a.targets[i]
		if t.e.cg.Weight() == t.w && !t.pending {
			continue
		}
		landed := a.setWeight(t.e.cg, t.w)
		a.mu.Lock()
		legacy := a.kApply == nil
		if landed {
			t.e.grant = t.w
		}
		a.setPendingLocked(t.e, !landed)
		a.mu.Unlock()
		if legacy {
			if !landed {
				a.emit("weight write failed for %s (w=%d): will re-apply", t.e.name, t.w)
			} else if t.pending {
				a.emit("weight write recovered for %s: re-applied w=%d", t.e.name, t.w)
			}
		}
	}
	a.targets = a.targets[:0]
}

// Active reports how many sessions are currently retrieving. The count
// is maintained incrementally; no sweep.
func (a *Allocator) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}
