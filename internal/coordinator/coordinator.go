// Package coordinator arbitrates blkio weights between multiple Tango
// sessions on one node. Each session's weight function produces a
// *desired* weight on the absolute [100,1000] scale; when several
// sessions are retrieving simultaneously their independent requests can
// saturate the top of the range (losing the priority differentiation the
// weight encodes) or sit far below it (wasting share against the
// interfering containers). The allocator rescales the desired weights of
// all concurrently active sessions so that the largest maps to MaxWeight
// while mutual ratios — and hence priority differentiation — are
// preserved exactly.
//
// This is an extension beyond the paper, which evaluates one analytics
// container per node but motivates the multi-analytics scenario.
package coordinator

import (
	"fmt"
	"sync"

	"tango/internal/blkio"
)

// Allocator coordinates the weights of registered sessions. It is safe
// for use from a single simulation engine (its mutex additionally allows
// multi-engine tests to share one instance, though that is not the
// intended deployment).
type Allocator struct {
	mu      sync.Mutex
	names   []string          // guarded by mu (insertion order: keeps rebalancing deterministic)
	entries map[string]*entry // guarded by mu
}

type entry struct {
	cg      *blkio.Cgroup
	desired int
	active  bool
}

// New returns an empty allocator.
func New() *Allocator {
	return &Allocator{entries: map[string]*entry{}}
}

// Attach registers a session's cgroup. It fails on duplicate names.
func (a *Allocator) Attach(name string, cg *blkio.Cgroup) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.entries[name]; ok {
		return fmt.Errorf("coordinator: session %q already attached", name)
	}
	a.entries[name] = &entry{cg: cg}
	a.names = append(a.names, name)
	return nil
}

// Detach removes a session (weight reverts to the default).
func (a *Allocator) Detach(name string) {
	a.mu.Lock()
	e, ok := a.entries[name]
	delete(a.entries, name)
	for i, n := range a.names {
		if n == name {
			a.names = append(a.names[:i], a.names[i+1:]...)
			break
		}
	}
	a.mu.Unlock()
	if ok {
		e.cg.SetWeight(blkio.DefaultWeight)
	}
}

// Request declares that the named session wants the given desired weight
// for its current retrieval, and rebalances every active session. It
// returns the granted weight.
func (a *Allocator) Request(name string, desired int) (int, error) {
	a.mu.Lock()
	e, ok := a.entries[name]
	if !ok {
		a.mu.Unlock()
		return 0, fmt.Errorf("coordinator: session %q not attached", name)
	}
	e.desired = blkio.ClampWeight(desired)
	e.active = true
	grants := a.rebalanceLocked()
	a.mu.Unlock()
	a.apply(grants)
	return grants[name], nil
}

// Release marks the session's retrieval finished: its weight reverts to
// the default and the remaining active sessions rebalance.
func (a *Allocator) Release(name string) {
	a.mu.Lock()
	e, ok := a.entries[name]
	if ok {
		e.active = false
	}
	grants := a.rebalanceLocked()
	cg := (*blkio.Cgroup)(nil)
	if ok {
		cg = e.cg
	}
	a.mu.Unlock()
	if cg != nil {
		cg.SetWeight(blkio.DefaultWeight)
	}
	a.apply(grants)
}

// rebalanceLocked computes grants for all active sessions: scale so the
// largest desired maps to MaxWeight, preserving ratios.
func (a *Allocator) rebalanceLocked() map[string]int {
	maxDesired := 0
	for _, name := range a.names {
		if e := a.entries[name]; e.active && e.desired > maxDesired {
			maxDesired = e.desired
		}
	}
	grants := map[string]int{}
	if maxDesired == 0 {
		return grants
	}
	for _, name := range a.names {
		if e := a.entries[name]; e.active {
			grants[name] = blkio.ClampWeight(e.desired * blkio.MaxWeight / maxDesired)
		}
	}
	return grants
}

// apply pushes grants to the cgroups outside the allocator lock (SetWeight
// notifies device subscribers).
func (a *Allocator) apply(grants map[string]int) {
	a.mu.Lock()
	type target struct {
		cg *blkio.Cgroup
		w  int
	}
	var targets []target
	for _, name := range a.names {
		if w, ok := grants[name]; ok {
			targets = append(targets, target{a.entries[name].cg, w})
		}
	}
	a.mu.Unlock()
	for _, t := range targets {
		if t.cg.Weight() != t.w {
			t.cg.SetWeight(t.w)
		}
	}
}

// Active reports how many sessions are currently retrieving.
func (a *Allocator) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, e := range a.entries {
		if e.active {
			n++
		}
	}
	return n
}
