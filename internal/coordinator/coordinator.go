// Package coordinator arbitrates blkio weights between multiple Tango
// sessions on one node. Each session's weight function produces a
// *desired* weight on the absolute [100,1000] scale; when several
// sessions are retrieving simultaneously their independent requests can
// saturate the top of the range (losing the priority differentiation the
// weight encodes) or sit far below it (wasting share against the
// interfering containers). The allocator rescales the desired weights of
// all concurrently active sessions so that the largest maps to MaxWeight
// while mutual ratios — and hence priority differentiation — are
// preserved exactly.
//
// This is an extension beyond the paper, which evaluates one analytics
// container per node but motivates the multi-analytics scenario.
package coordinator

import (
	"fmt"
	"sync"

	"tango/internal/blkio"
	"tango/internal/resil"
	"tango/internal/trace"
)

// Allocator coordinates the weights of registered sessions. It is safe
// for use from a single simulation engine (its mutex additionally allows
// multi-engine tests to share one instance, though that is not the
// intended deployment).
type Allocator struct {
	mu      sync.Mutex
	names   []string          // guarded by mu (insertion order: keeps rebalancing deterministic)
	entries map[string]*entry // guarded by mu
	rec     *trace.Recorder   // guarded by mu
	now     func() float64    // guarded by mu
	kApply  *resil.Key        // guarded by mu (coord.weight.apply; nil = legacy path)
}

type entry struct {
	cg      *blkio.Cgroup
	desired int
	active  bool
	pending bool // last weight write failed; force a re-apply next time
}

// New returns an empty allocator.
func New() *Allocator {
	return &Allocator{entries: map[string]*entry{}}
}

// Attach registers a session's cgroup. It fails on duplicate names.
func (a *Allocator) Attach(name string, cg *blkio.Cgroup) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.entries[name]; ok {
		return fmt.Errorf("coordinator: session %q already attached", name)
	}
	a.entries[name] = &entry{cg: cg}
	a.names = append(a.names, name)
	return nil
}

// SetTrace routes the allocator's recovery events (tolerated and
// re-applied weight writes) to rec, timestamped via now (typically the
// node engine's Now). Either may be nil.
func (a *Allocator) SetTrace(rec *trace.Recorder, now func() float64) {
	a.mu.Lock()
	a.rec = rec
	a.now = now
	a.mu.Unlock()
}

// SetResil routes the allocator's weight writes through the
// coord.weight.apply policy: breaker-gated per cgroup, so a wedged
// weight file is probed on the breaker's half-open schedule instead of
// re-written on every rebalance. Pass nil to restore the legacy ad-hoc
// tolerate-and-retry path.
func (a *Allocator) SetResil(rc *resil.Controller) {
	a.mu.Lock()
	if rc == nil {
		a.kApply = nil
	} else {
		a.kApply = rc.Key(resil.KeyCoordWeightApply)
	}
	a.mu.Unlock()
}

// setWeight performs one weight write through the resil key when one is
// attached (breaker-gated, self-tracing) or directly otherwise. It
// reports whether the write landed; skipped (breaker-suppressed) and
// failed writes both leave the entry pending for the next rebalance.
func (a *Allocator) setWeight(cg *blkio.Cgroup, w int) bool {
	a.mu.Lock()
	k := a.kApply
	a.mu.Unlock()
	if k != nil {
		return k.Weight(cg, w).OK
	}
	return cg.TrySetWeight(w) == nil
}

func (a *Allocator) emit(format string, args ...any) {
	a.mu.Lock()
	rec, now := a.rec, a.now
	a.mu.Unlock()
	t := 0.0
	if now != nil {
		t = now()
	}
	rec.Emit(t, "allocator", trace.KindRecover, format, args...)
}

// Detach removes a session: its weight reverts to the default and the
// remaining active sessions rebalance (without this, the largest
// departing desired weight would keep the survivors' grants scaled down
// against interferers until their next Request).
func (a *Allocator) Detach(name string) {
	a.mu.Lock()
	e, ok := a.entries[name]
	delete(a.entries, name)
	for i, n := range a.names {
		if n == name {
			a.names = append(a.names[:i], a.names[i+1:]...)
			break
		}
	}
	grants := a.rebalanceLocked()
	a.mu.Unlock()
	if ok {
		a.revert(name, e.cg)
	}
	a.apply(grants)
}

// revert returns a departing or released session's cgroup to the
// default weight, tolerating injected weight-write faults: the failure
// is recorded and, while the session stays attached, the next rebalance
// re-applies.
func (a *Allocator) revert(name string, cg *blkio.Cgroup) {
	landed := a.setWeight(cg, blkio.DefaultWeight)
	a.mu.Lock()
	legacy := a.kApply == nil
	if e, ok := a.entries[name]; ok {
		e.pending = !landed
	}
	a.mu.Unlock()
	if !landed && legacy {
		a.emit("weight revert failed for %s: tolerated, cgroup keeps w=%d", name, cg.Weight())
	}
}

// Request declares that the named session wants the given desired weight
// for its current retrieval, and rebalances every active session. It
// returns the granted weight.
func (a *Allocator) Request(name string, desired int) (int, error) {
	a.mu.Lock()
	e, ok := a.entries[name]
	if !ok {
		a.mu.Unlock()
		return 0, fmt.Errorf("coordinator: session %q not attached", name)
	}
	e.desired = blkio.ClampWeight(desired)
	e.active = true
	grants := a.rebalanceLocked()
	a.mu.Unlock()
	a.apply(grants)
	return grants[name], nil
}

// Release marks the session's retrieval finished: its weight reverts to
// the default and the remaining active sessions rebalance.
func (a *Allocator) Release(name string) {
	a.mu.Lock()
	e, ok := a.entries[name]
	if ok {
		e.active = false
	}
	grants := a.rebalanceLocked()
	cg := (*blkio.Cgroup)(nil)
	if ok {
		cg = e.cg
	}
	a.mu.Unlock()
	if cg != nil {
		a.revert(name, cg)
	}
	a.apply(grants)
}

// rebalanceLocked computes grants for all active sessions: scale so the
// largest desired maps to MaxWeight, preserving ratios.
func (a *Allocator) rebalanceLocked() map[string]int {
	maxDesired := 0
	for _, name := range a.names {
		if e := a.entries[name]; e.active && e.desired > maxDesired {
			maxDesired = e.desired
		}
	}
	grants := map[string]int{}
	if maxDesired == 0 {
		return grants
	}
	for _, name := range a.names {
		if e := a.entries[name]; e.active {
			grants[name] = blkio.ClampWeight(e.desired * blkio.MaxWeight / maxDesired)
		}
	}
	return grants
}

// apply pushes grants to the cgroups outside the allocator lock (weight
// writes notify device subscribers). Failed writes (injected weight
// faults) are tolerated and recorded: the entry is marked pending so the
// write is retried on every subsequent rebalance until it lands, at
// which point the re-apply is recorded as the recovery.
func (a *Allocator) apply(grants map[string]int) {
	a.mu.Lock()
	type target struct {
		name    string
		cg      *blkio.Cgroup
		w       int
		pending bool
	}
	var targets []target
	for _, name := range a.names {
		if w, ok := grants[name]; ok {
			e := a.entries[name]
			targets = append(targets, target{name, e.cg, w, e.pending})
		}
	}
	a.mu.Unlock()
	for _, t := range targets {
		if t.cg.Weight() == t.w && !t.pending {
			continue
		}
		landed := a.setWeight(t.cg, t.w)
		a.mu.Lock()
		legacy := a.kApply == nil
		if e, ok := a.entries[t.name]; ok {
			e.pending = !landed
		}
		a.mu.Unlock()
		if legacy {
			if !landed {
				a.emit("weight write failed for %s (w=%d): will re-apply", t.name, t.w)
			} else if t.pending {
				a.emit("weight write recovered for %s: re-applied w=%d", t.name, t.w)
			}
		}
	}
}

// Active reports how many sessions are currently retrieving.
func (a *Allocator) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, e := range a.entries {
		if e.active {
			n++
		}
	}
	return n
}
