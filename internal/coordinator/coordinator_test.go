package coordinator

import (
	"math/rand"
	"strings"
	"testing"

	"tango/internal/blkio"
	"tango/internal/trace"
)

func TestAttachDetach(t *testing.T) {
	a := New()
	cg := blkio.NewCgroup("s1")
	if err := a.Attach("s1", cg); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("s1", cg); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if _, err := a.Request("s1", 500); err != nil {
		t.Fatal(err)
	}
	a.Detach("s1")
	if cg.Weight() != blkio.DefaultWeight {
		t.Fatalf("weight after detach = %d", cg.Weight())
	}
	if _, err := a.Request("s1", 500); err == nil {
		t.Fatal("request after detach accepted")
	}
}

func TestSingleSessionScalesToMax(t *testing.T) {
	a := New()
	cg := blkio.NewCgroup("s1")
	if err := a.Attach("s1", cg); err != nil {
		t.Fatal(err)
	}
	granted, err := a.Request("s1", 300)
	if err != nil {
		t.Fatal(err)
	}
	// Alone, the session's desired weight is the largest: it gets the
	// full range.
	if granted != blkio.MaxWeight {
		t.Fatalf("granted = %d, want %d", granted, blkio.MaxWeight)
	}
	if cg.Weight() != blkio.MaxWeight {
		t.Fatalf("cgroup weight = %d", cg.Weight())
	}
}

func TestRatiosPreservedAcrossSessions(t *testing.T) {
	a := New()
	hi, lo := blkio.NewCgroup("hi"), blkio.NewCgroup("lo")
	if err := a.Attach("hi", hi); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("lo", lo); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("hi", 600); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("lo", 150); err != nil {
		t.Fatal(err)
	}
	// hi scales to 1000; lo keeps the 4:1 ratio -> 250.
	if hi.Weight() != 1000 || lo.Weight() != 250 {
		t.Fatalf("weights = %d, %d", hi.Weight(), lo.Weight())
	}
	if a.Active() != 2 {
		t.Fatalf("active = %d", a.Active())
	}
	// Releasing hi re-scales lo to the full range.
	a.Release("hi")
	if hi.Weight() != blkio.DefaultWeight {
		t.Fatalf("released weight = %d", hi.Weight())
	}
	if lo.Weight() != blkio.MaxWeight {
		t.Fatalf("remaining session weight = %d", lo.Weight())
	}
	if a.Active() != 1 {
		t.Fatalf("active = %d", a.Active())
	}
}

func TestRatioFloorClamped(t *testing.T) {
	a := New()
	hi, lo := blkio.NewCgroup("hi"), blkio.NewCgroup("lo")
	if err := a.Attach("hi", hi); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("lo", lo); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("hi", 1000); err != nil {
		t.Fatal(err)
	}
	granted, err := a.Request("lo", 100) // would scale to 100 exactly
	if err != nil {
		t.Fatal(err)
	}
	if granted < blkio.MinWeight || granted > blkio.MaxWeight {
		t.Fatalf("granted = %d", granted)
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	a := New()
	a.Release("ghost") // must not panic
	a.Detach("ghost")
	if a.Active() != 0 {
		t.Fatal("phantom active session")
	}
}

// TestDetachRebalancesRemaining covers a session detaching while others
// are mid-retrieval: without the rebalance in Detach, the departed
// session's large desired weight would keep the survivors' grants scaled
// down until their next Request.
func TestDetachRebalancesRemaining(t *testing.T) {
	a := New()
	big, small := blkio.NewCgroup("big"), blkio.NewCgroup("small")
	if err := a.Attach("big", big); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("small", small); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("big", 900); err != nil {
		t.Fatal(err)
	}
	granted, err := a.Request("small", 300)
	if err != nil {
		t.Fatal(err)
	}
	if granted >= blkio.MaxWeight/2 {
		t.Fatalf("small granted %d while big active", granted)
	}
	a.Detach("big")
	if big.Weight() != blkio.DefaultWeight {
		t.Fatalf("detached weight = %d", big.Weight())
	}
	// The surviving retrieval's desired weight is now the largest: it
	// must have been rescaled to the top of the range immediately.
	if small.Weight() != blkio.MaxWeight {
		t.Fatalf("survivor weight = %d, want %d", small.Weight(), blkio.MaxWeight)
	}
	if a.Active() != 1 {
		t.Fatalf("active = %d", a.Active())
	}
}

// TestDetachToleratesWeightFault: reverting the departing session's
// weight can itself fail (injected weight-write fault); Detach must not
// panic, must still rebalance survivors, and the stale weight is
// tolerated.
func TestDetachToleratesWeightFault(t *testing.T) {
	a := New()
	rec := trace.New(64)
	a.SetTrace(rec, func() float64 { return 7 })
	big, small := blkio.NewCgroup("big"), blkio.NewCgroup("small")
	if err := a.Attach("big", big); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("small", small); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("big", 900); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("small", 300); err != nil {
		t.Fatal(err)
	}
	before := big.Weight()
	big.SetWeightFailing(true)
	a.Detach("big")
	if big.Weight() != before {
		t.Fatalf("faulted revert changed weight to %d", big.Weight())
	}
	if small.Weight() != blkio.MaxWeight {
		t.Fatalf("survivor weight = %d", small.Weight())
	}
	if len(rec.Filter(trace.KindRecover)) == 0 {
		t.Fatal("tolerated revert not recorded")
	}
}

// TestApplyReappliesAfterWeightFault: a grant that could not be written
// while the cgroup's weight writes were failing is re-applied by the
// next rebalance after the fault clears, and both the toleration and the
// recovery are recorded.
func TestApplyReappliesAfterWeightFault(t *testing.T) {
	a := New()
	rec := trace.New(64)
	a.SetTrace(rec, func() float64 { return 7 })
	cg := blkio.NewCgroup("s1")
	if err := a.Attach("s1", cg); err != nil {
		t.Fatal(err)
	}
	cg.SetWeightFailing(true)
	granted, err := a.Request("s1", 300)
	if err != nil {
		t.Fatal(err)
	}
	if granted != blkio.MaxWeight {
		t.Fatalf("granted = %d", granted)
	}
	if cg.Weight() == blkio.MaxWeight {
		t.Fatal("faulted write landed")
	}
	if len(rec.Filter(trace.KindRecover)) == 0 {
		t.Fatal("tolerated write not recorded")
	}
	cg.SetWeightFailing(false)
	// Same desired weight: without the pending flag the rebalance would
	// skip the unchanged grant and the cgroup would stay at the default.
	if _, err := a.Request("s1", 300); err != nil {
		t.Fatal(err)
	}
	if cg.Weight() != blkio.MaxWeight {
		t.Fatalf("weight after fault cleared = %d, want %d", cg.Weight(), blkio.MaxWeight)
	}
	found := false
	for _, ev := range rec.Filter(trace.KindRecover) {
		if strings.Contains(ev.Msg, "re-applied") {
			found = true
		}
	}
	if !found {
		t.Fatal("re-apply not recorded")
	}
}

// TestIncrementalMatchesSweep drives a seeded random schedule through
// the allocator and checks, after every operation, that each cgroup
// carries exactly the weight the original full-sweep rebalance would
// have written: actives at clamp(desired×Max/maxActiveDesired),
// everyone else at the default.
func TestIncrementalMatchesSweep(t *testing.T) {
	a := New()
	type model struct {
		cg      *blkio.Cgroup
		desired int
		active  bool
	}
	names := []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"}
	m := map[string]*model{}
	for _, n := range names {
		cg := blkio.NewCgroup(n)
		if err := a.Attach(n, cg); err != nil {
			t.Fatal(err)
		}
		m[n] = &model{cg: cg}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		n := names[rng.Intn(len(names))]
		switch rng.Intn(3) {
		case 0, 1:
			d := blkio.MinWeight + rng.Intn(blkio.MaxWeight-blkio.MinWeight+1)
			if _, err := a.Request(n, d); err != nil {
				t.Fatal(err)
			}
			m[n].desired, m[n].active = d, true
		case 2:
			a.Release(n)
			m[n].active = false
		}
		maxD := 0
		for _, mo := range m {
			if mo.active && mo.desired > maxD {
				maxD = mo.desired
			}
		}
		nActive := 0
		for _, x := range names {
			mo := m[x]
			want := blkio.DefaultWeight
			if mo.active {
				nActive++
				want = blkio.ClampWeight(mo.desired * blkio.MaxWeight / maxD)
			}
			if got := mo.cg.Weight(); got != want {
				t.Fatalf("op %d: %s weight = %d, want %d (active=%v desired=%d max=%d)",
					i, x, got, want, mo.active, mo.desired, maxD)
			}
		}
		if a.Active() != nActive {
			t.Fatalf("op %d: Active() = %d, want %d", i, a.Active(), nActive)
		}
	}
}

// TestRequestZeroAlloc guards the coordinator fast path: with the scale
// steady and no faults outstanding, a request/release cycle performs no
// heap allocation.
func TestRequestZeroAlloc(t *testing.T) {
	a := New()
	names := []string{"z0", "z1", "z2", "z3"}
	for _, n := range names {
		if err := a.Attach(n, blkio.NewCgroup(n)); err != nil {
			t.Fatal(err)
		}
	}
	// An anchor session pins the scale so the cycling sessions stay on
	// the O(1) path; one full cycle warms the targets scratch.
	if _, err := a.Request("z0", 1000); err != nil {
		t.Fatal(err)
	}
	for _, n := range names[1:] {
		if _, err := a.Request(n, 400); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		n := names[1+i%3]
		if _, err := a.Request(n, 300+100*(i%5)); err != nil {
			t.Fatal(err)
		}
		a.Release(n)
		i++
	})
	if allocs != 0 {
		t.Fatalf("request/release allocates %.1f per run, want 0", allocs)
	}
}

// TestActiveCountSurvivesChurn: the incrementally maintained active
// count stays exact through request/re-request/release/detach churn.
func TestActiveCountSurvivesChurn(t *testing.T) {
	a := New()
	for _, n := range []string{"a", "b", "c"} {
		if err := a.Attach(n, blkio.NewCgroup(n)); err != nil {
			t.Fatal(err)
		}
	}
	mustActive := func(want int) {
		t.Helper()
		if got := a.Active(); got != want {
			t.Fatalf("Active() = %d, want %d", got, want)
		}
	}
	mustActive(0)
	a.Request("a", 500)
	a.Request("a", 700) // re-request: still one active session
	mustActive(1)
	a.Request("b", 200)
	a.Request("c", 900)
	mustActive(3)
	a.Release("b")
	a.Release("b") // double release: no drift
	mustActive(2)
	a.Detach("c") // detach while active
	mustActive(1)
	a.Release("a")
	mustActive(0)
}
