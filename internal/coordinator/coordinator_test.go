package coordinator

import (
	"testing"

	"tango/internal/blkio"
)

func TestAttachDetach(t *testing.T) {
	a := New()
	cg := blkio.NewCgroup("s1")
	if err := a.Attach("s1", cg); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("s1", cg); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if _, err := a.Request("s1", 500); err != nil {
		t.Fatal(err)
	}
	a.Detach("s1")
	if cg.Weight() != blkio.DefaultWeight {
		t.Fatalf("weight after detach = %d", cg.Weight())
	}
	if _, err := a.Request("s1", 500); err == nil {
		t.Fatal("request after detach accepted")
	}
}

func TestSingleSessionScalesToMax(t *testing.T) {
	a := New()
	cg := blkio.NewCgroup("s1")
	if err := a.Attach("s1", cg); err != nil {
		t.Fatal(err)
	}
	granted, err := a.Request("s1", 300)
	if err != nil {
		t.Fatal(err)
	}
	// Alone, the session's desired weight is the largest: it gets the
	// full range.
	if granted != blkio.MaxWeight {
		t.Fatalf("granted = %d, want %d", granted, blkio.MaxWeight)
	}
	if cg.Weight() != blkio.MaxWeight {
		t.Fatalf("cgroup weight = %d", cg.Weight())
	}
}

func TestRatiosPreservedAcrossSessions(t *testing.T) {
	a := New()
	hi, lo := blkio.NewCgroup("hi"), blkio.NewCgroup("lo")
	if err := a.Attach("hi", hi); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("lo", lo); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("hi", 600); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("lo", 150); err != nil {
		t.Fatal(err)
	}
	// hi scales to 1000; lo keeps the 4:1 ratio -> 250.
	if hi.Weight() != 1000 || lo.Weight() != 250 {
		t.Fatalf("weights = %d, %d", hi.Weight(), lo.Weight())
	}
	if a.Active() != 2 {
		t.Fatalf("active = %d", a.Active())
	}
	// Releasing hi re-scales lo to the full range.
	a.Release("hi")
	if hi.Weight() != blkio.DefaultWeight {
		t.Fatalf("released weight = %d", hi.Weight())
	}
	if lo.Weight() != blkio.MaxWeight {
		t.Fatalf("remaining session weight = %d", lo.Weight())
	}
	if a.Active() != 1 {
		t.Fatalf("active = %d", a.Active())
	}
}

func TestRatioFloorClamped(t *testing.T) {
	a := New()
	hi, lo := blkio.NewCgroup("hi"), blkio.NewCgroup("lo")
	if err := a.Attach("hi", hi); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach("lo", lo); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Request("hi", 1000); err != nil {
		t.Fatal(err)
	}
	granted, err := a.Request("lo", 100) // would scale to 100 exactly
	if err != nil {
		t.Fatal(err)
	}
	if granted < blkio.MinWeight || granted > blkio.MaxWeight {
		t.Fatalf("granted = %d", granted)
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	a := New()
	a.Release("ghost") // must not panic
	a.Detach("ghost")
	if a.Active() != 0 {
		t.Fatal("phantom active session")
	}
}
