package objstore

import (
	"math"
	"testing"

	"tango/internal/blkio"
	"tango/internal/sim"
)

func TestDefaultOversubscribed(t *testing.T) {
	p := Default(100)
	if p.TotalEgress >= p.NodeBandwidth*100 {
		t.Fatalf("total egress %.0f should be oversubscribed vs %d node frontends of %.0f",
			p.TotalEgress, 100, p.NodeBandwidth)
	}
	if got := Default(1); got.TotalEgress < got.NodeBandwidth {
		t.Fatalf("single-node store must cover one frontend: %.0f < %.0f",
			got.TotalEgress, got.NodeBandwidth)
	}
}

func TestReshareWaterFilling(t *testing.T) {
	p := Default(4)
	p.NodeBandwidth = 100 * mb
	p.TotalEgress = 160 * mb
	s := New(p)
	for i := 0; i < 4; i++ {
		s.Attach(sim.NewEngine())
	}
	// Demands: one small, one medium, two saturating. The small ones are
	// fully satisfied; the leftovers split evenly between the big two.
	grants := s.Reshare([]float64{10 * mb, 30 * mb, 500 * mb, 500 * mb})
	if grants[0] != 10*mb || grants[1] != 30*mb {
		t.Fatalf("small demands must be met exactly: %v", grants)
	}
	want := (160.0 - 10 - 30) / 2 * mb
	if math.Abs(grants[2]-want) > 1 || math.Abs(grants[3]-want) > 1 {
		t.Fatalf("big demands should split the residual (%f each): %v", want, grants)
	}
	var sum float64
	for _, g := range grants {
		sum += g
	}
	if sum > p.TotalEgress+1 {
		t.Fatalf("granted %.0f exceeds total egress %.0f", sum, p.TotalEgress)
	}
}

func TestReshareFloorAndCap(t *testing.T) {
	p := Default(2)
	p.NodeBandwidth = 100 * mb
	p.TotalEgress = 400 * mb
	s := New(p)
	r0 := s.Attach(sim.NewEngine())
	r1 := s.Attach(sim.NewEngine())
	grants := s.Reshare([]float64{0, 1e12})
	if grants[0] != mb { // 1% floor of 100 MB/s
		t.Fatalf("zero demand should get the 1%% floor, got %.0f", grants[0])
	}
	if grants[1] != 100*mb {
		t.Fatalf("huge demand must cap at the frontend: %.0f", grants[1])
	}
	if r0.Granted() != grants[0] || r1.Granted() != grants[1] {
		t.Fatalf("Granted mismatch: %v vs %v/%v", grants, r0.Granted(), r1.Granted())
	}
}

func TestReshareFloorNeverOversubscribes(t *testing.T) {
	// Floors are paid for out of the shared link before water-filling:
	// even when every node is starved and the link cannot cover the
	// nominal 1% floors, the grants shrink to an even split instead of
	// exceeding TotalEgress.
	p := Default(20)
	p.NodeBandwidth = 100 * mb
	p.TotalEgress = 10 * mb // 20 nominal 1% floors would be 20 MB/s
	s := New(p)
	demands := make([]float64, 20)
	for range demands {
		s.Attach(sim.NewEngine())
	}
	grants := s.Reshare(demands)
	var sum float64
	for i, g := range grants {
		if g <= 0 {
			t.Fatalf("in-service node %d granted %v, want a positive floor", i, g)
		}
		sum += g
	}
	if sum > p.TotalEgress+1 {
		t.Fatalf("floors oversubscribe the link: granted %.0f of %.0f", sum, p.TotalEgress)
	}
}

func TestReshareSkipsOutOfServiceNodes(t *testing.T) {
	p := Default(2)
	p.NodeBandwidth = 100 * mb
	p.TotalEgress = 100 * mb
	s := New(p)
	r0 := s.Attach(sim.NewEngine())
	s.Attach(sim.NewEngine())
	s.Reshare([]float64{30 * mb, 30 * mb})
	before := r0.Device().Share()
	// Negative demand marks node 0 out of service: no grant, no floor,
	// and its (abandoned) frontend device is left untouched.
	grants := s.Reshare([]float64{-1, 1e12})
	if grants[0] != 0 {
		t.Fatalf("out-of-service node granted %v", grants[0])
	}
	if got := r0.Device().Share(); got != before {
		t.Fatalf("out-of-service frontend touched: share %v -> %v", before, got)
	}
	if grants[1] != 100*mb {
		t.Fatalf("survivor should absorb the whole link up to its frontend: %v", grants[1])
	}
}

func TestReshareDeterministic(t *testing.T) {
	run := func() []float64 {
		s := New(Default(8))
		demands := make([]float64, 8)
		for i := range demands {
			s.Attach(sim.NewEngine())
			demands[i] = float64(i*37%11) * 13 * mb
		}
		g := s.Reshare(demands)
		out := make([]float64, len(g))
		copy(out, g)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d drifted: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRemoteTransferAndHarvest(t *testing.T) {
	eng := sim.NewEngine()
	s := New(Default(1))
	r := s.Attach(eng)
	cg := blkio.NewCgroup("sess0")
	var elapsed float64
	eng.Spawn("get", func(p *sim.Proc) {
		elapsed = r.Device().Read(p, cg, 100*mb)
		r.AccountGet(100 * mb)
		r.Device().Write(p, cg, 10*mb)
		r.AccountPut(10 * mb)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 100 MB at 200 MB/s plus 30 ms request latency.
	want := 100.0/200.0 + 0.030
	if math.Abs(elapsed-want) > 1e-6 {
		t.Fatalf("GET elapsed %.4f, want %.4f", elapsed, want)
	}
	if p := r.Pending(); p.EgressBytes != 100*mb || p.IngressBytes != 10*mb || p.Requests != 2 {
		t.Fatalf("pending ledger %+v", p)
	}
	s.Harvest()
	if r.Pending() != (Stats{}) {
		t.Fatal("harvest must drain the local ledger")
	}
	tot := s.Totals()
	if tot.EgressBytes != 100*mb || tot.IngressBytes != 10*mb || tot.Requests != 2 {
		t.Fatalf("totals %+v", tot)
	}
	if c := s.Cost(); c <= 0 {
		t.Fatalf("cost %.6f", c)
	}
}

func TestReshareSlowsTransfers(t *testing.T) {
	eng := sim.NewEngine()
	p := Default(2)
	s := New(p)
	r := s.Attach(eng)
	s.Attach(sim.NewEngine())
	// Grant this node 25% of its frontend.
	s.Reshare([]float64{50 * mb, 1e12})
	cg := blkio.NewCgroup("sess0")
	var elapsed float64
	eng.Spawn("get", func(pr *sim.Proc) {
		elapsed, _ = r.Device().TryRead(pr, cg, 50*mb)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := 50.0/50.0 + 0.030 // granted 50 MB/s of the 200 MB/s frontend
	if math.Abs(elapsed-want) > 1e-6 {
		t.Fatalf("throttled GET elapsed %.4f, want %.4f", elapsed, want)
	}
}

func TestDetachPreservesLedger(t *testing.T) {
	s := New(Default(2))
	r0 := s.Attach(sim.NewEngine())
	s.Attach(sim.NewEngine())
	r0.AccountPut(5 * mb)
	fresh := s.Detach(0, sim.NewEngine())
	if fresh.Index() != 0 {
		t.Fatalf("fresh remote index %d", fresh.Index())
	}
	if s.Totals().IngressBytes != 5*mb {
		t.Fatalf("detach must harvest the old remote: %+v", s.Totals())
	}
	if fresh.Device().Share() != 1 {
		t.Fatalf("fresh frontend share %v", fresh.Device().Share())
	}
}
