// Package objstore models the remote object-store capacity tier (L3)
// behind a fleet of simulated nodes. Each node sees the store through a
// Remote: a per-node frontend device (request latency + bounded per-node
// bandwidth, no seek thrash — object stores stream) created on the
// node's own sim engine, so all I/O against the store stays inside that
// node's deterministic event loop. What couples the nodes is the store's
// shared egress link: the cluster-level water-filling pass (Reshare)
// divides TotalEgress across the nodes' demands and grants each Remote a
// share of its frontend bandwidth, exactly the proportional-share-with-
// caps discipline internal/device applies to cgroup flows one level
// down.
//
// The store also keeps the cluster-level accounting the fleet experiment
// reports: egress/ingress bytes, request counts, and dollar cost. Per-
// node Remotes accumulate locally (inside their engine's run window);
// the cluster coordinator harvests them in node-index order at epoch
// barriers, so totals are byte-identical at any runpool worker width.
package objstore

import (
	"fmt"

	"tango/internal/device"
	"tango/internal/sim"
)

const mb = 1024 * 1024

// Params describes one object store shared by a fleet.
type Params struct {
	Name string
	// NodeBandwidth is the per-node frontend cap in bytes/s (NIC share /
	// per-client throttle). Each Remote's device peaks here.
	NodeBandwidth float64
	// TotalEgress is the store-wide egress capacity in bytes/s shared by
	// all nodes. Oversubscribed relative to nodes×NodeBandwidth, it is
	// what makes the fleet contend (Reshare water-fills it).
	TotalEgress float64
	// RequestLatency is the fixed per-request cost in seconds (HTTP
	// round trip + storage-service dispatch).
	RequestLatency float64
	// CostPerGB is the dollar cost per GB of egress+ingress traffic.
	CostPerGB float64
	// CostPerReq is the dollar cost per request.
	CostPerReq float64
}

// Default returns parameters loosely calibrated to a cloud object store
// serving a fleet of n nodes: 200 MB/s per-node frontend, a shared
// egress link oversubscribed 4:1 against the node frontends (contention
// appears exactly when the fleet bursts together, e.g. cold starts and
// mass migrations), ~30 ms per request, and list-price-shaped costs.
func Default(n int) Params {
	if n < 1 {
		n = 1
	}
	nodeBW := 200.0 * mb
	total := nodeBW * float64(n) / 4
	if total < nodeBW {
		total = nodeBW
	}
	return Params{
		Name:           "objstore",
		NodeBandwidth:  nodeBW,
		TotalEgress:    total,
		RequestLatency: 0.030,
		CostPerGB:      0.09,
		CostPerReq:     4e-7,
	}
}

func (p Params) validate() error {
	if p.NodeBandwidth <= 0 {
		return fmt.Errorf("objstore %q: NodeBandwidth must be > 0", p.Name)
	}
	if p.TotalEgress <= 0 {
		return fmt.Errorf("objstore %q: TotalEgress must be > 0", p.Name)
	}
	if p.RequestLatency < 0 || p.CostPerGB < 0 || p.CostPerReq < 0 {
		return fmt.Errorf("objstore %q: negative latency or cost", p.Name)
	}
	return nil
}

// Stats is one traffic ledger: bytes out of the store (egress, i.e. node
// reads), bytes into it (ingress: migration drains, spills), and request
// counts.
type Stats struct {
	EgressBytes  float64
	IngressBytes float64
	Requests     int
}

// add merges o into s.
func (s *Stats) add(o Stats) {
	s.EgressBytes += o.EgressBytes
	s.IngressBytes += o.IngressBytes
	s.Requests += o.Requests
}

// Store is the cluster-level view of one object store: the shared-egress
// allocator plus the harvested traffic totals. All methods must be
// called from barrier context (single-threaded, node-index order); the
// Store is never touched while node engines run in parallel.
type Store struct {
	p       Params
	remotes []*Remote
	totals  Stats

	grants []float64 // Reshare scratch, reused across barriers
	active []int     // water-filling round (node indices)
	next   []int     // next round
}

// New creates a store. It panics on invalid Params (cluster construction
// is programmer-controlled).
func New(p Params) *Store {
	if err := p.validate(); err != nil {
		panic(err)
	}
	return &Store{p: p}
}

// Params returns the store parameters.
func (s *Store) Params() Params { return s.p }

// Totals returns the harvested cluster-wide traffic ledger.
func (s *Store) Totals() Stats { return s.totals }

// Cost returns the dollar cost of the harvested traffic.
func (s *Store) Cost() float64 {
	gb := (s.totals.EgressBytes + s.totals.IngressBytes) / (1024 * mb)
	return gb*s.p.CostPerGB + float64(s.totals.Requests)*s.p.CostPerReq
}

// Attach creates the store frontend for one node: a device on the
// node's engine peaking at NodeBandwidth with the store's request
// latency and no seek thrash. Returns the node's Remote. The attach
// order fixes the node index Reshare grants are keyed by.
func (s *Store) Attach(eng *sim.Engine) *Remote {
	dev := device.New(eng, device.Params{
		Name:           s.p.Name,
		PeakBandwidth:  s.p.NodeBandwidth,
		RequestLatency: s.p.RequestLatency,
		SeekThrash:     0,
		MinEfficiency:  1,
	})
	r := &Remote{store: s, dev: dev, index: len(s.remotes)}
	s.remotes = append(s.remotes, r)
	return r
}

// Detach replaces the Remote at a node index with a fresh frontend on a
// new engine (the fleet rebuilds a node's engine when the node is killed
// and later revived — ephemeral state does not outlive the node). Any
// unharvested traffic on the old Remote is harvested first so the ledger
// never loses bytes.
func (s *Store) Detach(index int, eng *sim.Engine) *Remote {
	old := s.remotes[index]
	s.totals.add(old.take())
	dev := device.New(eng, device.Params{
		Name:           s.p.Name,
		PeakBandwidth:  s.p.NodeBandwidth,
		RequestLatency: s.p.RequestLatency,
		SeekThrash:     0,
		MinEfficiency:  1,
	})
	r := &Remote{store: s, dev: dev, index: index}
	s.remotes[index] = r
	return r
}

// Harvest folds every Remote's locally accumulated traffic into the
// store totals, in node-index order. Barrier context only.
func (s *Store) Harvest() {
	for _, r := range s.remotes {
		s.totals.add(r.take())
	}
}

// Reshare water-fills the shared egress across per-node demands
// (bytes/s, indexed like the remotes) and applies the resulting share to
// every node's frontend device. A negative demand marks a node that is
// out of service: it is granted nothing and its frontend (an abandoned
// engine's device) is left untouched. Every in-service node first
// reserves a small floor (1% of the frontend, paid for out of the shared
// link before water-filling) so a mispredicted-demand node can still
// trickle-fetch and re-observe; a node's total grant is capped by its
// frontend (NodeBandwidth), and capped or low-demand nodes release their
// excess to the others. The sum of grants never exceeds TotalEgress. The
// returned slice (valid until the next call) holds the granted bytes/s
// per node. Barrier context only: the float operation order — node
// index order within each round — is part of the determinism contract.
//
//tango:hotpath
func (s *Store) Reshare(demands []float64) []float64 {
	if len(demands) != len(s.remotes) {
		panic(fmt.Sprintf("objstore %q: %d demands for %d remotes", s.p.Name, len(demands), len(s.remotes)))
	}
	n := len(s.remotes)
	s.grants = s.grants[:0]
	for i := 0; i < n; i++ {
		s.grants = append(s.grants, 0)
	}
	// Reserve the floor for every in-service node up front — deducted
	// from the shared link, so floors can never oversubscribe it. If the
	// link cannot cover even the floors, the floor shrinks to an even
	// split (SetShare rejects 0, so keep it strictly positive).
	live := 0
	for i := 0; i < n; i++ {
		if demands[i] >= 0 {
			live++
		}
	}
	if live == 0 {
		return s.grants
	}
	floor := 0.01 * s.p.NodeBandwidth
	if floor*float64(live) > s.p.TotalEgress {
		floor = s.p.TotalEgress / float64(live)
	}
	remaining := s.p.TotalEgress - floor*float64(live)
	// Round-based water-filling of the rest: each round splits the
	// remaining egress equally among still-unsatisfied nodes; nodes
	// whose (headroom-padded) demand or frontend cap sits below the fair
	// share are granted exactly that and leave the round, releasing the
	// excess. Mirrors the cgroup water-filling in internal/device.
	cur := s.active[:0]
	for i := 0; i < n; i++ {
		if demands[i] < 0 {
			continue
		}
		s.grants[i] = floor
		cur = append(cur, i)
	}
	nxt := s.next[:0]
	for len(cur) > 0 && remaining > 1e-9 {
		fair := remaining / float64(len(cur))
		granted := false
		nxt = nxt[:0]
		for _, i := range cur {
			want := demands[i]
			if want > s.p.NodeBandwidth {
				want = s.p.NodeBandwidth
			}
			want -= floor // already granted up front
			if want < 0 {
				want = 0
			}
			if want <= fair {
				s.grants[i] += want
				remaining -= want
				granted = true
			} else {
				nxt = append(nxt, i)
			}
		}
		if !granted {
			// Everyone left wants at least the fair share: split evenly.
			for _, i := range cur {
				s.grants[i] += fair
			}
			remaining = 0
			nxt = nxt[:0]
		}
		cur, nxt = nxt, cur
	}
	s.active, s.next = cur[:0], nxt[:0]
	for i, r := range s.remotes {
		if demands[i] < 0 {
			continue // out of service: leave the abandoned frontend alone
		}
		frac := s.grants[i] / s.p.NodeBandwidth
		if frac > 1 {
			frac = 1
			s.grants[i] = s.p.NodeBandwidth
		}
		r.dev.SetShare(frac)
	}
	return s.grants
}

// Remote is one node's frontend onto the store. Its device lives on the
// node's engine; reads and writes against it are ordinary simulated
// transfers (the fleet routes miss reads through the resilience key
// fleet.read.objstore against Device()). Traffic accounting accumulates
// locally and is harvested at barriers.
type Remote struct {
	store *Store
	dev   *device.Device
	index int
	local Stats
}

// Device returns the frontend device (for resil-guarded reads and for
// direct Read/Write calls from session procs).
func (r *Remote) Device() *device.Device { return r.dev }

// Index returns the node index the store knows this remote by.
func (r *Remote) Index() int { return r.index }

// Granted returns the currently granted frontend bandwidth in bytes/s.
func (r *Remote) Granted() float64 { return r.dev.Share() * r.store.p.NodeBandwidth }

// AccountGet records one completed GET of the given bytes (egress).
// Partial transfers (cancelled or failed attempts) account what actually
// moved. Safe from the node's engine context.
//
//tango:hotpath
func (r *Remote) AccountGet(bytes float64) {
	r.local.EgressBytes += bytes
	r.local.Requests++
}

// AccountPut records one PUT of the given bytes (ingress: migration
// drains, spills). Safe from the node's engine context, and from
// barrier context for drain accounting of a node that is being killed
// (the bytes were already on its L2; the drain is the store-side copy).
//
//tango:hotpath
func (r *Remote) AccountPut(bytes float64) {
	r.local.IngressBytes += bytes
	r.local.Requests++
}

// Pending returns the locally accumulated, not-yet-harvested traffic.
func (r *Remote) Pending() Stats { return r.local }

// take drains the local ledger (harvest).
func (r *Remote) take() Stats {
	out := r.local
	r.local = Stats{}
	return out
}

// FmtGB formats bytes as gigabytes with two decimals (report columns).
func FmtGB(bytes float64) string {
	return fmt.Sprintf("%.2f", bytes/(1024*mb))
}
