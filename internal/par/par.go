// Package par provides deterministic data-parallel helpers for the
// compute-heavy kernels (restriction, prolongation, metric scans). Work
// is split into contiguous index ranges whose boundaries depend only on
// the problem size — never on GOMAXPROCS or on how many workers happen to
// run — so results are bit-identical to the sequential execution on any
// machine: For requires workers to write disjoint ranges, and MapReduce
// folds its per-chunk partials in chunk order.
//
// Worker counts are additionally gated by the number of scenario-level
// jobs currently running (see EnterBusy and internal/runpool): when the
// experiment runner fans whole simulations across cores, each kernel
// divides the remaining width instead of oversubscribing GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Threshold is the minimum problem size worth parallelizing; below it
// goroutine overhead dominates.
const Threshold = 1 << 15

// maxChunks bounds the number of chunks a problem is split into, keeping
// scheduling overhead flat for very large n. Chunk boundaries depend only
// on n (see chunkSize), which is what keeps MapReduce's reduction order —
// and therefore its floating-point result — machine-independent.
const maxChunks = 64

// busy counts scenario-level workers currently running whole-simulation
// jobs (incremented by internal/runpool around each job). Kernel-level
// helpers divide GOMAXPROCS by this count so nested parallelism does not
// oversubscribe the machine.
var busy atomic.Int32

// EnterBusy registers a coarse-grained (scenario-level) worker; pair with
// ExitBusy. While k workers are registered, For/MapReduce use at most
// GOMAXPROCS/k goroutines each. The gate changes only how many goroutines
// execute the fixed chunks, never where the chunks split, so results are
// unaffected.
func EnterBusy() { busy.Add(1) }

// ExitBusy unregisters a coarse-grained worker.
func ExitBusy() { busy.Add(-1) }

// chunkSize returns the chunk length for a problem of size n: Threshold
// at minimum, growing once n exceeds Threshold*maxChunks. A function of n
// alone — determinism of every split depends on this.
func chunkSize(n int) int {
	c := Threshold
	if min := (n + maxChunks - 1) / maxChunks; min > c {
		c = min
	}
	return c
}

// workers returns the goroutine budget for nChunks chunks under the
// current busy gate.
func workers(nChunks int) int {
	w := runtime.GOMAXPROCS(0)
	if b := int(busy.Load()); b > 1 {
		w /= b
	}
	if w > nChunks {
		w = nChunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// run executes fn over the nChunks fixed chunks of [0, n) using at most
// w goroutines pulling chunk indices from a shared counter.
func run(n, nChunks, w int, fn func(chunk, lo, hi int)) {
	size := chunkSize(n)
	if w == 1 {
		for c := 0; c < nChunks; c++ {
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// NumChunks returns how many fixed chunks [0, n) splits into — the
// partition For and ForChunk iterate. Like chunkSize it is a function of
// n alone, so callers can preallocate per-chunk result slots that line
// up across passes.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	if n < Threshold {
		return 1
	}
	size := chunkSize(n)
	return (n + size - 1) / size
}

// ForChunk is For with the chunk index passed alongside the range, for
// two-pass count/fill patterns that stage per-chunk results into
// disjoint, chunk-ordered slots (an ordered merge without locks). Same
// contract as For: fn must only write state derived from its own chunk,
// and chunk boundaries depend only on n.
func ForChunk(n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if n < Threshold {
		fn(0, 0, n)
		return
	}
	size := chunkSize(n)
	nChunks := (n + size - 1) / size
	w := workers(nChunks)
	if w == 1 && nChunks == 1 {
		fn(0, 0, n)
		return
	}
	run(n, nChunks, w, fn)
}

// For runs fn over [0, n) split into contiguous fixed-size chunks. fn
// must only write state derived from its own range. Small problems run
// inline on the calling goroutine.
func For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if n < Threshold {
		fn(0, n)
		return
	}
	size := chunkSize(n)
	nChunks := (n + size - 1) / size
	w := workers(nChunks)
	if w == 1 && nChunks == 1 {
		fn(0, n)
		return
	}
	run(n, nChunks, w, func(_, lo, hi int) { fn(lo, hi) })
}

// MapReduce runs fn over the fixed chunks of [0, n), each returning a
// partial value, and folds the partials IN CHUNK ORDER with combine.
// Because chunk boundaries depend only on n, the floating-point reduction
// is identical on every machine and at every worker count.
func MapReduce[T any](n int, fn func(lo, hi int) T, combine func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	if n < Threshold {
		return fn(0, n)
	}
	size := chunkSize(n)
	nChunks := (n + size - 1) / size
	if nChunks == 1 {
		return fn(0, n)
	}
	partials := make([]T, nChunks)
	run(n, nChunks, workers(nChunks), func(c, lo, hi int) {
		partials[c] = fn(lo, hi)
	})
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = combine(acc, p)
	}
	return acc
}
