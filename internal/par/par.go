// Package par provides deterministic data-parallel helpers for the
// compute-heavy kernels (restriction, prolongation, metric scans). Work
// is split into contiguous index ranges, so results are bit-identical to
// the sequential execution as long as workers write disjoint ranges.
package par

import (
	"runtime"
	"sync"
)

// Threshold is the minimum problem size worth parallelizing; below it
// goroutine overhead dominates.
const Threshold = 1 << 15

// maxWorkers returns the worker count for a problem of size n.
func maxWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn over [0, n) split into contiguous chunks, one per worker.
// fn must only write state derived from its own range. Small problems run
// inline on the calling goroutine.
func For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := maxWorkers(n)
	if n < Threshold || w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MapReduce runs fn over [0, n) in chunks, each returning a partial
// value, and folds the partials IN CHUNK ORDER with combine — keeping
// floating-point reductions deterministic.
func MapReduce[T any](n int, fn func(lo, hi int) T, combine func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	w := maxWorkers(n)
	if n < Threshold || w == 1 {
		return fn(0, n)
	}
	chunk := (n + w - 1) / w
	nChunks := (n + chunk - 1) / chunk
	partials := make([]T, nChunks)
	var wg sync.WaitGroup
	for i := 0; i < nChunks; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partials[i] = fn(lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = combine(acc, p)
	}
	return acc
}
