// Race-detector stress tests for the data-parallel helpers: run with
// `go test -race` (the CI `race` target). They assert the two halves of
// par's contract at once — no data races under heavy concurrent use,
// and results identical to the serial path.
package par

import (
	"math"
	"sync"
	"testing"
)

func kernel(i int) float64 { return math.Sqrt(float64(i)) * math.Sin(float64(i)/97) }

// TestForConcurrentCallersMatchSerial runs many For invocations from
// concurrent goroutines, each over a shared read-only input into its own
// output, and compares every result bitwise against the serial fill.
func TestForConcurrentCallersMatchSerial(t *testing.T) {
	const n = Threshold * 4
	serial := make([]float64, n)
	for i := range serial {
		serial[i] = kernel(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, n)
			For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = kernel(i)
				}
			})
			for i := range out {
				if out[i] != serial[i] {
					t.Errorf("index %d: parallel %v != serial %v", i, out[i], serial[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMapReduceIntExactVsSerial checks an integer reduction is exactly
// the serial answer regardless of chunking.
func TestMapReduceIntExactVsSerial(t *testing.T) {
	const n = Threshold*3 + 17
	want := 0
	for i := 0; i < n; i++ {
		want += i % 7
	}
	got := MapReduce(n, func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i % 7
		}
		return s
	}, func(a, b int) int { return a + b })
	if got != want {
		t.Fatalf("MapReduce = %d, want %d", got, want)
	}
}

// TestMapReduceFloatBitIdentical checks the documented determinism
// property: because partials fold in chunk order, two parallel runs of a
// floating-point reduction are bit-identical.
func TestMapReduceFloatBitIdentical(t *testing.T) {
	const n = Threshold * 4
	run := func() float64 {
		return MapReduce(n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += kernel(i)
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	}
	var results [8]float64
	var wg sync.WaitGroup
	for g := range results {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = run()
		}()
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if math.Float64bits(results[g]) != math.Float64bits(results[0]) {
			t.Fatalf("run %d = %x, run 0 = %x: float reduction not bit-stable", g, math.Float64bits(results[g]), math.Float64bits(results[0]))
		}
	}
}

// TestMapReduceMapMerge stresses map values: each chunk builds its own
// histogram and the combiner merges in chunk order — the pattern par
// callers must use instead of sharing one map across goroutines.
func TestMapReduceMapMerge(t *testing.T) {
	const n = Threshold * 2
	serial := map[int]int{}
	for i := 0; i < n; i++ {
		serial[i%13]++
	}
	got := MapReduce(n, func(lo, hi int) map[int]int {
		m := map[int]int{}
		for i := lo; i < hi; i++ {
			m[i%13]++
		}
		return m
	}, func(a, b map[int]int) map[int]int {
		for k, v := range b {
			a[k] += v
		}
		return a
	})
	if len(got) != len(serial) {
		t.Fatalf("bucket count %d, want %d", len(got), len(serial))
	}
	for k, v := range serial {
		if got[k] != v {
			t.Fatalf("bucket %d = %d, want %d", k, got[k], v)
		}
	}
}
