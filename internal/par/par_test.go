package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, Threshold - 1, Threshold, Threshold + 13, 1 << 18} {
		marks := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, m)
			}
		}
	}
}

func TestForDisjointChunks(t *testing.T) {
	n := 1 << 17
	out := make([]int, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * 3
		}
	})
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("index %d = %d", i, v)
		}
	}
}

func TestForNegativeAndZero(t *testing.T) {
	called := false
	For(0, func(lo, hi int) { called = true })
	For(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapReduceSum(t *testing.T) {
	n := 1 << 17
	got := MapReduce(n, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	}, func(a, b int64) int64 { return a + b })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestMapReduceDeterministicFloatOrder(t *testing.T) {
	// Chunk-ordered combining must give identical bits across runs.
	n := 1<<16 + 37
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	run := func() float64 {
		return MapReduce(n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	}
	first := run()
	for i := 0; i < 10; i++ {
		if run() != first {
			t.Fatal("nondeterministic float reduction")
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, func(lo, hi int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("empty reduce = %d", got)
	}
}

func TestMapReduceSmallInline(t *testing.T) {
	got := MapReduce(5, func(lo, hi int) int { return hi - lo }, func(a, b int) int { return a + b })
	if got != 5 {
		t.Fatalf("inline reduce = %d", got)
	}
}

func TestMapReduceBitsUnchangedByBusyGate(t *testing.T) {
	// The busy gate may shrink the goroutine budget, but chunk boundaries
	// are a function of n alone, so a gated reduction must be bit-identical
	// to an ungated one.
	n := 1<<18 + 101
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+3)
	}
	run := func() float64 {
		return MapReduce(n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	}
	free := run()
	for k := 0; k < 4; k++ {
		EnterBusy()
	}
	gated := run()
	for k := 0; k < 4; k++ {
		ExitBusy()
	}
	if free != gated {
		t.Fatalf("busy gate changed reduction bits: %x vs %x", free, gated)
	}
}

func TestChunkSizeDependsOnlyOnN(t *testing.T) {
	for _, n := range []int{1, Threshold, Threshold * maxChunks, Threshold*maxChunks + 1, 1 << 26} {
		c := chunkSize(n)
		if c < Threshold {
			t.Fatalf("chunkSize(%d) = %d below Threshold", n, c)
		}
		if nChunks := (n + c - 1) / c; nChunks > maxChunks {
			t.Fatalf("chunkSize(%d) = %d yields %d chunks (> %d)", n, c, nChunks, maxChunks)
		}
		if c2 := chunkSize(n); c2 != c {
			t.Fatalf("chunkSize(%d) unstable: %d then %d", n, c, c2)
		}
	}
}

func TestForMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%100000 + 100000)
		a := make([]float64, n)
		b := make([]float64, n)
		fn := func(dst []float64) func(lo, hi int) {
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = float64(i) * 1.000001
				}
			}
		}
		fn(a)(0, n)
		For(n, fn(b))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestForChunkCoversRangeWithChunkIDs(t *testing.T) {
	for _, n := range []int{0, 1, Threshold - 1, Threshold, Threshold*3 + 17, Threshold*maxChunks + 5} {
		nc := NumChunks(n)
		seen := make([]int32, n)
		var calls atomic.Int32
		maxChunk := int32(-1)
		var mu sync.Mutex
		ForChunk(n, func(chunk, lo, hi int) {
			calls.Add(1)
			mu.Lock()
			if int32(chunk) > maxChunk {
				maxChunk = int32(chunk)
			}
			mu.Unlock()
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if n == 0 {
			if calls.Load() != 0 {
				t.Errorf("n=0: fn called %d times", calls.Load())
			}
			continue
		}
		if int(calls.Load()) != nc {
			t.Errorf("n=%d: %d calls, NumChunks says %d", n, calls.Load(), nc)
		}
		if int(maxChunk) != nc-1 {
			t.Errorf("n=%d: max chunk id %d, want %d", n, maxChunk, nc-1)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

// TestNumChunksMatchesForChunkPartition pins the preallocation contract:
// chunk ids from ForChunk index exactly [0, NumChunks(n)).
func TestNumChunksMatchesForChunkPartition(t *testing.T) {
	if got := NumChunks(0); got != 0 {
		t.Errorf("NumChunks(0) = %d", got)
	}
	if got := NumChunks(-5); got != 0 {
		t.Errorf("NumChunks(-5) = %d", got)
	}
	if got := NumChunks(1); got != 1 {
		t.Errorf("NumChunks(1) = %d", got)
	}
	if got := NumChunks(Threshold - 1); got != 1 {
		t.Errorf("NumChunks(Threshold-1) = %d", got)
	}
	n := Threshold * 4
	slots := make([][2]int, NumChunks(n))
	ForChunk(n, func(chunk, lo, hi int) {
		slots[chunk] = [2]int{lo, hi}
	})
	prev := 0
	for c, s := range slots {
		if s[0] != prev {
			t.Fatalf("chunk %d starts at %d, want %d", c, s[0], prev)
		}
		if s[1] <= s[0] {
			t.Fatalf("chunk %d empty: %v", c, s)
		}
		prev = s[1]
	}
	if prev != n {
		t.Fatalf("chunks end at %d, want %d", prev, n)
	}
}
