package staging

import (
	"testing"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/sim"
)

func stagedFixture(t *testing.T) (*sim.Engine, *Store, *device.Device, *device.Device) {
	t.Helper()
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(65, 21), refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	return eng, s, ssd, hdd
}

func TestParallelReadSameBytesAsSequential(t *testing.T) {
	eng, s, ssd, hdd := stagedFixture(t)
	h := s.Hierarchy()
	cg := blkio.NewCgroup("a")
	var seq, par *TierStats
	eng.Spawn("seq", func(p *sim.Proc) {
		seq = s.ReadRange(p, cg, 0, h.TotalEntries())
		par = s.ReadRangeParallel(p, cg, 0, h.TotalEntries())
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if seq.BytesOn(ssd) != par.BytesOn(ssd) || seq.BytesOn(hdd) != par.BytesOn(hdd) {
		t.Fatalf("byte mismatch: seq ssd=%v hdd=%v, par ssd=%v hdd=%v",
			seq.BytesOn(ssd), seq.BytesOn(hdd), par.BytesOn(ssd), par.BytesOn(hdd))
	}
}

func TestParallelReadOverlapsTiers(t *testing.T) {
	eng, s, _, _ := stagedFixture(t)
	h := s.Hierarchy()
	cg := blkio.NewCgroup("a")
	var tSeq, tPar float64
	eng.Spawn("driver", func(p *sim.Proc) {
		start := p.Now()
		s.ReadRange(p, cg, 0, h.TotalEntries())
		tSeq = p.Now() - start
		start = p.Now()
		s.ReadRangeParallel(p, cg, 0, h.TotalEntries())
		tPar = p.Now() - start
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Overlapping tiers must not be slower; with both tiers carrying
	// data it must be strictly faster than the serial sum.
	if !(tPar < tSeq) {
		t.Fatalf("parallel %v not faster than sequential %v", tPar, tSeq)
	}
}

func TestParallelReadEmptyAndSingleTierRanges(t *testing.T) {
	eng, s, _, hdd := stagedFixture(t)
	h := s.Hierarchy()
	cg := blkio.NewCgroup("a")
	eng.Spawn("driver", func(p *sim.Proc) {
		// Empty range.
		ts := s.ReadRangeParallel(p, cg, 5, 5)
		if b, _ := ts.Total(); b != 0 {
			t.Errorf("empty range read %v bytes", b)
		}
		// A range confined to the finest level lives on one tier only.
		segs := h.Segments(0, h.TotalEntries())
		last := segs[len(segs)-1]
		if last.Level != 0 {
			t.Fatalf("unexpected segment layout: %+v", segs)
		}
		from := h.TotalEntries() - (last.End - last.Start)
		ts = s.ReadRangeParallel(p, cg, from, h.TotalEntries())
		if ts.BytesOn(hdd) == 0 {
			t.Error("single-tier range read nothing from hdd")
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelReadDeterministic(t *testing.T) {
	run := func() float64 {
		eng, s, _, _ := stagedFixture(t)
		h := s.Hierarchy()
		cg := blkio.NewCgroup("a")
		var elapsed float64
		eng.Spawn("driver", func(p *sim.Proc) {
			start := p.Now()
			s.ReadRangeParallel(p, cg, 0, h.TotalEntries())
			elapsed = p.Now() - start
		})
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic parallel read: %v vs %v", a, b)
	}
}
