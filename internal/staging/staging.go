// Package staging places a refactored dataset onto the local ephemeral
// storage hierarchy and provides the tier-aware read path used during
// analysis. Placement follows the paper's Fig 3: the base representation
// Ω^{L-1} lives on the fastest tier, and the augmentation of level l is
// staged on tier ST^l — finest (largest) augmentation on the slowest
// (capacity) tier, coarser augmentations on faster tiers. Before a job
// starts the data is staged in; after it exits, Release erases it
// (ephemeral storage).
package staging

import (
	"fmt"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/resil"
	"tango/internal/sim"
	"tango/internal/trace"
)

// CacheView is the read-side interface of the fast-tier augmentation
// cache (implemented by internal/cache). Staging depends only on this
// interface so the layering stays acyclic: cache imports staging, never
// the reverse.
type CacheView interface {
	// Serve reports how many leading entries of the level-local entry
	// range [start, end) are resident in the cache, and the device
	// holding them. Serve also performs the cache's own bookkeeping
	// (hit/miss counters, reuse statistics, trace events), so the store
	// consults it exactly once per segment actually read.
	Serve(level, start, end int) (dev *device.Device, entries int)
}

// Store is a staged hierarchy: every piece has a tier assignment and the
// capacity has been reserved on the devices.
type Store struct {
	h        *refactor.Hierarchy
	baseDev  *device.Device
	levelDev []*device.Device // aug level -> device
	scale    float64
	released bool
	cache    CacheView

	// Resilience control plane (nil = legacy ad-hoc retry loops). Key
	// handles are resolved once at SetResil time so the read paths pay
	// no lookups.
	rc     *resil.Controller
	kBase  *resil.Key // staging.read.base
	kMand  *resil.Key // staging.read.capacity
	kOpt   *resil.Key // staging.read.optional
	kHedge *resil.Key // staging.read.hedge
	kProbe *resil.Key // staging.probe.capacity
}

// SetCache attaches a fast-tier cache to the augmentation read paths:
// each segment's cached prefix is read from the cache device instead of
// the level's home tier. Pass nil to detach.
func (s *Store) SetCache(c CacheView) { s.cache = c }

// SetResil routes the guarded read paths (and Probe) through the
// resilience control plane: per-attempt deadlines, classified retries,
// budgets, breakers, and — when the controller enables it — hedged reads
// racing a cache-resident prefix against its capacity-tier home copy.
// With a nil controller the store keeps its legacy ad-hoc retry loop.
func (s *Store) SetResil(rc *resil.Controller) {
	s.rc = rc
	if rc == nil {
		s.kBase, s.kMand, s.kOpt, s.kHedge, s.kProbe = nil, nil, nil, nil, nil
		return
	}
	s.kBase = rc.Key(resil.KeyStagingReadBase)
	s.kMand = rc.Key(resil.KeyStagingReadCapacity)
	s.kOpt = rc.Key(resil.KeyStagingReadOptional)
	s.kHedge = rc.Key(resil.KeyStagingReadHedge)
	s.kProbe = rc.Key(resil.KeyStagingProbe)
}

// Stage places h across the given tiers (fastest first, as returned by
// container.Node.Tiers) and reserves capacity. It fails if any tier would
// exceed its capacity.
func Stage(h *refactor.Hierarchy, tiers []*device.Device) (*Store, error) {
	return StageScaled(h, tiers, 1)
}

// StageScaled is Stage with a per-point payload scale factor: every byte
// count (reservation and reads) is multiplied by scale. This models
// datasets whose points carry more than one float64 — the paper's
// production meshes hold tens of millions of elements with multiple
// variables, so a simulated grid of n points staged at scale s behaves
// like an n·s-byte-per-8 dataset on the I/O path while keeping the
// decomposition arithmetic at grid scale. Entry cardinalities (used by
// the weight function) are unaffected.
func StageScaled(h *refactor.Hierarchy, tiers []*device.Device, scale float64) (*Store, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("staging: no tiers")
	}
	if scale <= 0 {
		return nil, fmt.Errorf("staging: scale %v must be > 0", scale)
	}
	s := &Store{h: h, baseDev: tiers[0], scale: scale}
	augLevels := h.Levels() - 1
	s.levelDev = make([]*device.Device, augLevels)
	for l := 0; l < augLevels; l++ {
		// Paper tier indexing: ST^0 is the slowest. tiers[] is fastest
		// first, so aug level l (0 = finest) maps to tiers[len-1-l],
		// clamped to the fastest tier for deep hierarchies.
		ti := len(tiers) - 1 - l
		if ti < 0 {
			ti = 0
		}
		s.levelDev[l] = tiers[ti]
	}

	// Reserve capacity; roll back on failure.
	type reservation struct {
		dev   *device.Device
		bytes float64
	}
	var done []reservation
	reserve := func(dev *device.Device, bytes float64) error {
		if err := dev.Reserve(bytes); err != nil {
			return err
		}
		done = append(done, reservation{dev, bytes})
		return nil
	}
	rollback := func() {
		for _, r := range done {
			r.dev.Release(r.bytes)
		}
	}
	if err := reserve(s.baseDev, float64(h.BaseBytes())*scale); err != nil {
		rollback()
		return nil, fmt.Errorf("staging: base: %w", err)
	}
	for l := 0; l < augLevels; l++ {
		bytes := s.levelBytes(l)
		if err := reserve(s.levelDev[l], bytes); err != nil {
			rollback()
			return nil, fmt.Errorf("staging: aug level %d: %w", l, err)
		}
	}
	return s, nil
}

// levelBytes returns the staged size of one level's full augmentation.
func (s *Store) levelBytes(level int) float64 {
	var total float64
	for _, seg := range s.h.Segments(0, s.h.TotalEntries()) {
		if seg.Level == level {
			total += float64(seg.Bytes)
		}
	}
	return total * s.scale
}

// Scale returns the store's payload scale factor.
func (s *Store) Scale() float64 { return s.scale }

// Hierarchy returns the staged hierarchy.
func (s *Store) Hierarchy() *refactor.Hierarchy { return s.h }

// BaseDevice returns the tier holding the base representation.
func (s *Store) BaseDevice() *device.Device { return s.baseDev }

// DeviceForLevel returns the tier holding augmentation level l.
func (s *Store) DeviceForLevel(l int) *device.Device {
	if l < 0 || l >= len(s.levelDev) {
		panic(fmt.Sprintf("staging: no augmentation level %d", l))
	}
	return s.levelDev[l]
}

// SlowestDevice returns the slowest tier used by this store (the device
// holding the finest augmentation, or the base device if L == 1).
func (s *Store) SlowestDevice() *device.Device {
	if len(s.levelDev) == 0 {
		return s.baseDev
	}
	return s.levelDev[0]
}

// TierStats is the per-read breakdown returned by the read methods. It
// accumulates in insertion order (not map order) so downstream float
// arithmetic stays deterministic across runs.
type TierStats struct {
	entries []tierEntry
}

type tierEntry struct {
	dev         *device.Device
	bytes, time float64
}

func newTierStats() *TierStats { return &TierStats{} }

func (ts *TierStats) add(dev *device.Device, bytes, t float64) {
	for i := range ts.entries {
		if ts.entries[i].dev == dev {
			ts.entries[i].bytes += bytes
			ts.entries[i].time += t
			return
		}
	}
	ts.entries = append(ts.entries, tierEntry{dev, bytes, t})
}

// Merge folds other into ts.
func (ts *TierStats) Merge(other *TierStats) {
	for _, e := range other.entries {
		ts.add(e.dev, e.bytes, e.time)
	}
}

// BytesOn returns the bytes read from dev.
func (ts *TierStats) BytesOn(dev *device.Device) float64 {
	for _, e := range ts.entries {
		if e.dev == dev {
			return e.bytes
		}
	}
	return 0
}

// TimeOn returns the time spent reading from dev.
func (ts *TierStats) TimeOn(dev *device.Device) float64 {
	for _, e := range ts.entries {
		if e.dev == dev {
			return e.time
		}
	}
	return 0
}

// Total returns the summed bytes and time across tiers.
func (ts *TierStats) Total() (bytes, t float64) {
	for _, e := range ts.entries {
		bytes += e.bytes
		t += e.time
	}
	return bytes, t
}

// ReadBase reads the base representation under cg, blocking p. Returns
// per-tier stats.
func (s *Store) ReadBase(p *sim.Proc, cg *blkio.Cgroup) *TierStats {
	ts := newTierStats()
	bytes := float64(s.h.BaseBytes()) * s.scale
	el := s.baseDev.Read(p, cg, bytes)
	ts.add(s.baseDev, bytes, el)
	return ts
}

// segPart is one device-homogeneous piece of a segment read: with a
// cache attached a segment splits into a cached prefix (served by the
// cache device) and an uncached remainder (served by the home tier).
type segPart struct {
	dev     *device.Device
	entries int
	bytes   float64
}

// segmentParts splits one segment read across the cache and the level's
// home tier. Without a cache (or on a full miss) it returns the segment
// as a single home-tier part.
func (s *Store) segmentParts(seg refactor.Segment) []segPart {
	home := s.DeviceForLevel(seg.Level)
	whole := segPart{home, seg.End - seg.Start, float64(seg.Bytes) * s.scale}
	if s.cache == nil {
		return []segPart{whole}
	}
	cdev, cached := s.cache.Serve(seg.Level, seg.Start, seg.End)
	if cached <= 0 || cdev == nil || cdev == home {
		return []segPart{whole}
	}
	if cached > whole.entries {
		cached = whole.entries
	}
	mid := seg.Start + cached
	parts := []segPart{{cdev, cached, float64(s.h.LevelBytes(seg.Level, seg.Start, mid)) * s.scale}}
	if rest := seg.End - mid; rest > 0 {
		parts = append(parts, segPart{home, rest, float64(s.h.LevelBytes(seg.Level, mid, seg.End)) * s.scale})
	}
	return parts
}

// ReadRange reads the augmentation cursor range [from, to) under cg,
// visiting tiers coarse-level first (the order Algorithm 1 retrieves
// buckets). Returns per-tier stats.
func (s *Store) ReadRange(p *sim.Proc, cg *blkio.Cgroup, from, to int) *TierStats {
	ts := newTierStats()
	for _, seg := range s.h.Segments(from, to) {
		for _, part := range s.segmentParts(seg) {
			el := part.dev.Read(p, cg, part.bytes)
			ts.add(part.dev, part.bytes, el)
		}
	}
	return ts
}

// ReadRangeParallel reads the augmentation cursor range [from, to) with
// one concurrent reader per tier, overlapping fast- and capacity-tier
// transfers. The caller's process blocks until every tier finishes. This
// is an optimization beyond the paper's sequential Algorithm 1 loop
// (evaluated by the ablation-parallel experiment): it shortens the total
// step time but gives up the coarse-first completion order that the
// sequential path provides.
func (s *Store) ReadRangeParallel(p *sim.Proc, cg *blkio.Cgroup, from, to int) *TierStats {
	type group struct {
		dev   *device.Device
		parts []segPart
	}
	var groups []*group
	byDev := map[*device.Device]*group{}
	// Split every segment once up front (Serve does per-call hit/miss
	// bookkeeping, so it must run exactly once per segment), then group
	// the resulting parts by device.
	for _, seg := range s.h.Segments(from, to) {
		for _, part := range s.segmentParts(seg) {
			g, ok := byDev[part.dev]
			if !ok {
				g = &group{dev: part.dev}
				byDev[part.dev] = g
				groups = append(groups, g)
			}
			g.parts = append(g.parts, part)
		}
	}
	ts := newTierStats()
	if len(groups) == 0 {
		return ts
	}
	if len(groups) == 1 {
		// Single tier: no concurrency to exploit.
		for _, part := range groups[0].parts {
			el := part.dev.Read(p, cg, part.bytes)
			ts.add(part.dev, part.bytes, el)
		}
		return ts
	}
	eng := p.Engine()
	results := make([]*TierStats, len(groups))
	wg := sim.NewWaitGroup(eng)
	for i, g := range groups {
		i, g := i, g
		wg.Go("tier-read", func(cp *sim.Proc) {
			r := newTierStats()
			for _, part := range g.parts {
				el := g.dev.Read(cp, cg, part.bytes)
				r.add(g.dev, part.bytes, el)
			}
			results[i] = r
		})
	}
	wg.Wait(p)
	for _, r := range results {
		ts.Merge(r)
	}
	return ts
}

// RetryPolicy bounds the guarded read paths' reaction to transient read
// errors (see internal/fault): each failed request is retried after a
// virtual-time backoff that grows by Factor per attempt, capped at Max.
// Zero values take the defaults.
type RetryPolicy struct {
	// Attempts is the retry budget per segment for OPTIONAL augmentation
	// (beyond the prescribed bound). Exhausting it degrades the read —
	// the remaining optional augmentation is skipped — instead of
	// blocking the step (default 4). Mandatory data (the base
	// representation and augmentation the error bound requires) is
	// retried indefinitely: degradation must never violate the bound.
	Attempts int
	// Backoff is the first retry delay in virtual seconds (default 0.05).
	Backoff float64
	// Factor multiplies the delay per attempt (default 2).
	Factor float64
	// Max caps the delay (default 5 s).
	Max float64
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Attempts == 0 {
		rp.Attempts = 4
	}
	if rp.Backoff == 0 {
		rp.Backoff = 0.05
	}
	if rp.Factor == 0 {
		rp.Factor = 2
	}
	if rp.Max == 0 {
		rp.Max = 5
	}
	return rp
}

// GuardedOutcome reports what a guarded read actually achieved.
type GuardedOutcome struct {
	Cursor   int  // absolute cursor reached (== `to` unless degraded)
	Retries  int  // failed requests that were retried
	Degraded bool // optional augmentation was abandoned mid-range
}

// Notify receives recovery actions as they happen (kind is a
// trace.Kind* string, msg is formatted); nil disables notification.
type Notify func(kind, msg string)

// retryRead reads bytes from dev, retrying transient errors with
// exponential virtual-time backoff. If bounded is true the retry budget
// is pol.Attempts, after which it gives up and reports failure;
// otherwise it retries until the fault clears. Returns the elapsed time
// (including backoff sleeps), the retries spent, and success.
func retryRead(p *sim.Proc, dev *device.Device, cg *blkio.Cgroup, bytes float64,
	pol RetryPolicy, bounded bool, notify Notify) (float64, int, bool) {
	start := p.Now()
	delay := pol.Backoff
	retries := 0
	for attempt := 1; ; attempt++ {
		_, err := dev.TryRead(p, cg, bytes)
		if err == nil {
			return p.Now() - start, retries, true
		}
		if bounded && attempt >= pol.Attempts {
			return p.Now() - start, retries, false
		}
		retries++
		if notify != nil {
			notify(trace.KindRecover, fmt.Sprintf("retry dev=%s attempt=%d backoff=%.3fs bytes=%.0f", dev.Name(), attempt, delay, bytes))
		}
		p.Sleep(delay)
		delay *= pol.Factor
		if delay > pol.Max {
			delay = pol.Max
		}
	}
}

// ReadBaseGuarded is ReadBase with unbounded retry: the base
// representation is mandatory at every step, so a transient fault delays
// the read rather than failing it.
func (s *Store) ReadBaseGuarded(p *sim.Proc, cg *blkio.Cgroup, pol RetryPolicy, notify Notify) (*TierStats, GuardedOutcome) {
	pol = pol.withDefaults()
	ts := newTierStats()
	bytes := float64(s.h.BaseBytes()) * s.scale
	if s.rc != nil {
		res := s.kBase.Read(p, s.baseDev, cg, bytes)
		ts.add(s.baseDev, res.Moved, res.Elapsed)
		return ts, GuardedOutcome{Cursor: 0, Retries: res.Retries}
	}
	el, retries, _ := retryRead(p, s.baseDev, cg, bytes, pol, false, notify)
	ts.add(s.baseDev, bytes, el)
	return ts, GuardedOutcome{Cursor: 0, Retries: retries}
}

// ReadRangeGuarded is ReadRange hardened against injected read errors.
// Segments whose entries fall at or below `mandatory` (the cursor the
// prescribed error bound requires) are retried until they succeed;
// optional segments get pol.Attempts tries each, after which the read
// DEGRADES: the remaining optional augmentation is skipped and the
// outcome reports the cursor actually reached. The caller's accuracy
// never drops below the bound — only above-bound augmentation is shed.
func (s *Store) ReadRangeGuarded(p *sim.Proc, cg *blkio.Cgroup, from, to, mandatory int,
	pol RetryPolicy, notify Notify) (*TierStats, GuardedOutcome) {
	pol = pol.withDefaults()
	ts := newTierStats()
	out := GuardedOutcome{Cursor: from}
	for _, seg := range s.h.Segments(from, to) {
		home := s.DeviceForLevel(seg.Level)
		for _, part := range s.segmentParts(seg) {
			needed := out.Cursor < mandatory // part starts inside the mandatory prefix
			var retries int
			var ok bool
			if s.rc != nil {
				retries, ok = s.resilPart(p, cg, ts, part, home, needed)
			} else {
				var el float64
				el, retries, ok = retryRead(p, part.dev, cg, part.bytes, pol, !needed, notify)
				ts.add(part.dev, part.bytes, el)
			}
			out.Retries += retries
			if !ok {
				out.Degraded = true
				if notify != nil {
					notify(trace.KindRecover, fmt.Sprintf("degrade dev=%s cursor=%d of %d (fall back to lower augmentation)", part.dev.Name(), out.Cursor, to))
				}
				return ts, out
			}
			out.Cursor += part.entries
		}
	}
	return ts, out
}

// resilPart reads one segment part through the resilience control plane.
// A cache-resident prefix (part.dev != home) is a hedging opportunity:
// the same byte range exists on both the cache device and the level's
// home tier, so the controller may race them and cancel the loser. On
// any non-hedged (or failed-hedge) path the part goes through the
// policy-keyed guarded read: unbounded for mandatory data, bounded and
// degradable for optional augmentation.
func (s *Store) resilPart(p *sim.Proc, cg *blkio.Cgroup, ts *TierStats, part segPart, home *device.Device, needed bool) (retries int, ok bool) {
	if part.dev != home {
		hr := s.kHedge.HedgedRead(p, part.dev, home, cg, part.bytes)
		if hr.OK {
			winDev, loserDev := part.dev, home
			winMoved, loserMoved := hr.FastMoved, hr.SlowMoved
			if !hr.FastWon {
				winDev, loserDev = home, part.dev
				winMoved, loserMoved = hr.SlowMoved, hr.FastMoved
			}
			ts.add(winDev, winMoved, hr.Elapsed)
			if loserMoved > 0 {
				// The cancelled leg's partial bytes are real transfers on
				// that device; its time overlapped the winner's, so only
				// the bytes are recorded.
				ts.add(loserDev, loserMoved, 0)
			}
			return 0, true
		}
		// Hedged but both legs failed (the controller counted the waste):
		// fall through to the single-device policy path.
	}
	k := s.kOpt
	if needed {
		k = s.kMand
	}
	res := k.Read(p, part.dev, cg, part.bytes)
	ts.add(part.dev, res.Moved, res.Elapsed)
	return res.Retries, res.OK
}

// Probe reads `bytes` from the slowest tier to sample its available
// bandwidth; used by the controller when a step retrieved nothing from
// the capacity tier but the estimator still needs a measurement. With
// the resilience control plane attached the probe is deadlined
// (staging.probe.capacity): a stuck capacity tier can no longer wedge
// the control loop — the partial transfer still yields an honest (low)
// bandwidth sample, and a probe that moved nothing yields no sample,
// which the controller treats like a step with no capacity-tier reads.
func (s *Store) Probe(p *sim.Proc, cg *blkio.Cgroup, bytes float64) *TierStats {
	ts := newTierStats()
	dev := s.SlowestDevice()
	if s.rc != nil {
		res := s.kProbe.Read(p, dev, cg, bytes)
		if res.Moved > 0 {
			ts.add(dev, res.Moved, res.Elapsed)
		}
		return ts
	}
	el := dev.Read(p, cg, bytes)
	ts.add(dev, bytes, el)
	return ts
}

// Release frees the reserved capacity (the ephemeral data is erased when
// the job exits). Release is idempotent.
func (s *Store) Release() {
	if s.released {
		return
	}
	s.released = true
	s.baseDev.Release(float64(s.h.BaseBytes()) * s.scale)
	for l, dev := range s.levelDev {
		dev.Release(s.levelBytes(l))
	}
}
