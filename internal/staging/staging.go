// Package staging places a refactored dataset onto the local ephemeral
// storage hierarchy and provides the tier-aware read path used during
// analysis. Placement follows the paper's Fig 3: the base representation
// Ω^{L-1} lives on the fastest tier, and the augmentation of level l is
// staged on tier ST^l — finest (largest) augmentation on the slowest
// (capacity) tier, coarser augmentations on faster tiers. Before a job
// starts the data is staged in; after it exits, Release erases it
// (ephemeral storage).
package staging

import (
	"fmt"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/sim"
)

// Store is a staged hierarchy: every piece has a tier assignment and the
// capacity has been reserved on the devices.
type Store struct {
	h        *refactor.Hierarchy
	baseDev  *device.Device
	levelDev []*device.Device // aug level -> device
	scale    float64
	released bool
}

// Stage places h across the given tiers (fastest first, as returned by
// container.Node.Tiers) and reserves capacity. It fails if any tier would
// exceed its capacity.
func Stage(h *refactor.Hierarchy, tiers []*device.Device) (*Store, error) {
	return StageScaled(h, tiers, 1)
}

// StageScaled is Stage with a per-point payload scale factor: every byte
// count (reservation and reads) is multiplied by scale. This models
// datasets whose points carry more than one float64 — the paper's
// production meshes hold tens of millions of elements with multiple
// variables, so a simulated grid of n points staged at scale s behaves
// like an n·s-byte-per-8 dataset on the I/O path while keeping the
// decomposition arithmetic at grid scale. Entry cardinalities (used by
// the weight function) are unaffected.
func StageScaled(h *refactor.Hierarchy, tiers []*device.Device, scale float64) (*Store, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("staging: no tiers")
	}
	if scale <= 0 {
		return nil, fmt.Errorf("staging: scale %v must be > 0", scale)
	}
	s := &Store{h: h, baseDev: tiers[0], scale: scale}
	augLevels := h.Levels() - 1
	s.levelDev = make([]*device.Device, augLevels)
	for l := 0; l < augLevels; l++ {
		// Paper tier indexing: ST^0 is the slowest. tiers[] is fastest
		// first, so aug level l (0 = finest) maps to tiers[len-1-l],
		// clamped to the fastest tier for deep hierarchies.
		ti := len(tiers) - 1 - l
		if ti < 0 {
			ti = 0
		}
		s.levelDev[l] = tiers[ti]
	}

	// Reserve capacity; roll back on failure.
	type reservation struct {
		dev   *device.Device
		bytes float64
	}
	var done []reservation
	reserve := func(dev *device.Device, bytes float64) error {
		if err := dev.Reserve(bytes); err != nil {
			return err
		}
		done = append(done, reservation{dev, bytes})
		return nil
	}
	rollback := func() {
		for _, r := range done {
			r.dev.Release(r.bytes)
		}
	}
	if err := reserve(s.baseDev, float64(h.BaseBytes())*scale); err != nil {
		rollback()
		return nil, fmt.Errorf("staging: base: %w", err)
	}
	for l := 0; l < augLevels; l++ {
		bytes := s.levelBytes(l)
		if err := reserve(s.levelDev[l], bytes); err != nil {
			rollback()
			return nil, fmt.Errorf("staging: aug level %d: %w", l, err)
		}
	}
	return s, nil
}

// levelBytes returns the staged size of one level's full augmentation.
func (s *Store) levelBytes(level int) float64 {
	var total float64
	for _, seg := range s.h.Segments(0, s.h.TotalEntries()) {
		if seg.Level == level {
			total += float64(seg.Bytes)
		}
	}
	return total * s.scale
}

// Scale returns the store's payload scale factor.
func (s *Store) Scale() float64 { return s.scale }

// Hierarchy returns the staged hierarchy.
func (s *Store) Hierarchy() *refactor.Hierarchy { return s.h }

// BaseDevice returns the tier holding the base representation.
func (s *Store) BaseDevice() *device.Device { return s.baseDev }

// DeviceForLevel returns the tier holding augmentation level l.
func (s *Store) DeviceForLevel(l int) *device.Device {
	if l < 0 || l >= len(s.levelDev) {
		panic(fmt.Sprintf("staging: no augmentation level %d", l))
	}
	return s.levelDev[l]
}

// SlowestDevice returns the slowest tier used by this store (the device
// holding the finest augmentation, or the base device if L == 1).
func (s *Store) SlowestDevice() *device.Device {
	if len(s.levelDev) == 0 {
		return s.baseDev
	}
	return s.levelDev[0]
}

// TierStats is the per-read breakdown returned by the read methods. It
// accumulates in insertion order (not map order) so downstream float
// arithmetic stays deterministic across runs.
type TierStats struct {
	entries []tierEntry
}

type tierEntry struct {
	dev         *device.Device
	bytes, time float64
}

func newTierStats() *TierStats { return &TierStats{} }

func (ts *TierStats) add(dev *device.Device, bytes, t float64) {
	for i := range ts.entries {
		if ts.entries[i].dev == dev {
			ts.entries[i].bytes += bytes
			ts.entries[i].time += t
			return
		}
	}
	ts.entries = append(ts.entries, tierEntry{dev, bytes, t})
}

// Merge folds other into ts.
func (ts *TierStats) Merge(other *TierStats) {
	for _, e := range other.entries {
		ts.add(e.dev, e.bytes, e.time)
	}
}

// BytesOn returns the bytes read from dev.
func (ts *TierStats) BytesOn(dev *device.Device) float64 {
	for _, e := range ts.entries {
		if e.dev == dev {
			return e.bytes
		}
	}
	return 0
}

// TimeOn returns the time spent reading from dev.
func (ts *TierStats) TimeOn(dev *device.Device) float64 {
	for _, e := range ts.entries {
		if e.dev == dev {
			return e.time
		}
	}
	return 0
}

// Total returns the summed bytes and time across tiers.
func (ts *TierStats) Total() (bytes, t float64) {
	for _, e := range ts.entries {
		bytes += e.bytes
		t += e.time
	}
	return bytes, t
}

// ReadBase reads the base representation under cg, blocking p. Returns
// per-tier stats.
func (s *Store) ReadBase(p *sim.Proc, cg *blkio.Cgroup) *TierStats {
	ts := newTierStats()
	bytes := float64(s.h.BaseBytes()) * s.scale
	el := s.baseDev.Read(p, cg, bytes)
	ts.add(s.baseDev, bytes, el)
	return ts
}

// ReadRange reads the augmentation cursor range [from, to) under cg,
// visiting tiers coarse-level first (the order Algorithm 1 retrieves
// buckets). Returns per-tier stats.
func (s *Store) ReadRange(p *sim.Proc, cg *blkio.Cgroup, from, to int) *TierStats {
	ts := newTierStats()
	for _, seg := range s.h.Segments(from, to) {
		dev := s.DeviceForLevel(seg.Level)
		bytes := float64(seg.Bytes) * s.scale
		el := dev.Read(p, cg, bytes)
		ts.add(dev, bytes, el)
	}
	return ts
}

// ReadRangeParallel reads the augmentation cursor range [from, to) with
// one concurrent reader per tier, overlapping fast- and capacity-tier
// transfers. The caller's process blocks until every tier finishes. This
// is an optimization beyond the paper's sequential Algorithm 1 loop
// (evaluated by the ablation-parallel experiment): it shortens the total
// step time but gives up the coarse-first completion order that the
// sequential path provides.
func (s *Store) ReadRangeParallel(p *sim.Proc, cg *blkio.Cgroup, from, to int) *TierStats {
	type group struct {
		dev  *device.Device
		segs []refactor.Segment
	}
	var groups []*group
	byDev := map[*device.Device]*group{}
	for _, seg := range s.h.Segments(from, to) {
		dev := s.DeviceForLevel(seg.Level)
		g, ok := byDev[dev]
		if !ok {
			g = &group{dev: dev}
			byDev[dev] = g
			groups = append(groups, g)
		}
		g.segs = append(g.segs, seg)
	}
	ts := newTierStats()
	if len(groups) == 0 {
		return ts
	}
	if len(groups) == 1 {
		// Single tier: no concurrency to exploit.
		return s.ReadRange(p, cg, from, to)
	}
	eng := p.Engine()
	results := make([]*TierStats, len(groups))
	wg := sim.NewWaitGroup(eng)
	for i, g := range groups {
		i, g := i, g
		wg.Go("tier-read", func(cp *sim.Proc) {
			r := newTierStats()
			for _, seg := range g.segs {
				bytes := float64(seg.Bytes) * s.scale
				el := g.dev.Read(cp, cg, bytes)
				r.add(g.dev, bytes, el)
			}
			results[i] = r
		})
	}
	wg.Wait(p)
	for _, r := range results {
		ts.Merge(r)
	}
	return ts
}

// Probe reads `bytes` from the slowest tier to sample its available
// bandwidth; used by the controller when a step retrieved nothing from
// the capacity tier but the estimator still needs a measurement.
func (s *Store) Probe(p *sim.Proc, cg *blkio.Cgroup, bytes float64) *TierStats {
	ts := newTierStats()
	dev := s.SlowestDevice()
	el := dev.Read(p, cg, bytes)
	ts.add(dev, bytes, el)
	return ts
}

// Release frees the reserved capacity (the ephemeral data is erased when
// the job exits). Release is idempotent.
func (s *Store) Release() {
	if s.released {
		return
	}
	s.released = true
	s.baseDev.Release(float64(s.h.BaseBytes()) * s.scale)
	for l, dev := range s.levelDev {
		dev.Release(s.levelBytes(l))
	}
}
