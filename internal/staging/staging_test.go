package staging

import (
	"math"
	"math/rand"
	"testing"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/sim"
	"tango/internal/tensor"
)

func field(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			t.Set(math.Sin(float64(r)/3)*math.Cos(float64(c)/5)+0.1*rng.NormFloat64(), r, c)
		}
	}
	return t
}

func twoTier(eng *sim.Engine) (ssd, hdd *device.Device) {
	sp := device.Params{Name: "ssd", PeakBandwidth: 500 * device.MB, MinEfficiency: 1}
	hp := device.Params{Name: "hdd", PeakBandwidth: 100 * device.MB, MinEfficiency: 1}
	return device.New(eng, sp), device.New(eng, hp)
}

func TestStagePlacementFollowsFig3(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(33, 1), refactor.Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	if s.BaseDevice() != ssd {
		t.Fatal("base must live on the fastest tier")
	}
	// Finest augmentation (level 0) on the slowest tier.
	if s.DeviceForLevel(0) != hdd {
		t.Fatal("finest augmentation must live on the capacity tier")
	}
	// Coarser augmentations on the fast tier (clamped).
	if s.DeviceForLevel(1) != ssd || s.DeviceForLevel(2) != ssd {
		t.Fatal("coarse augmentations should live on the fast tier")
	}
	if s.SlowestDevice() != hdd {
		t.Fatal("slowest device should be the hdd")
	}
}

func TestStageReservesAndReleases(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(33, 2), refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Used() == 0 || hdd.Used() == 0 {
		t.Fatalf("reservations missing: ssd=%v hdd=%v", ssd.Used(), hdd.Used())
	}
	s.Release()
	if ssd.Used() != 0 || hdd.Used() != 0 {
		t.Fatalf("release incomplete: ssd=%v hdd=%v", ssd.Used(), hdd.Used())
	}
	s.Release() // idempotent
	if ssd.Used() != 0 {
		t.Fatal("double release corrupted accounting")
	}
}

func TestStageCapacityFailureRollsBack(t *testing.T) {
	eng := sim.NewEngine()
	sp := device.Params{Name: "ssd", PeakBandwidth: 500, MinEfficiency: 1, Capacity: 64} // tiny
	ssd := device.New(eng, sp)
	_, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(33, 3), refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stage(h, []*device.Device{ssd, hdd}); err == nil {
		t.Fatal("staging should fail on tiny fast tier")
	}
	if ssd.Used() != 0 || hdd.Used() != 0 {
		t.Fatalf("rollback incomplete: ssd=%v hdd=%v", ssd.Used(), hdd.Used())
	}
}

func TestStageNoTiers(t *testing.T) {
	h, err := refactor.Decompose(field(17, 4), refactor.Options{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stage(h, nil); err == nil {
		t.Fatal("no tiers accepted")
	}
}

func TestReadBaseTouchesOnlyFastTier(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(33, 5), refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	cg := blkio.NewCgroup("a")
	var ts *TierStats
	eng.Spawn("r", func(p *sim.Proc) { ts = s.ReadBase(p, cg) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ts.BytesOn(ssd) != float64(h.BaseBytes()) {
		t.Fatalf("base bytes on ssd = %v, want %v", ts.BytesOn(ssd), h.BaseBytes())
	}
	if ts.BytesOn(hdd) != 0 {
		t.Fatal("base read touched the capacity tier")
	}
	bytes, tm := ts.Total()
	if bytes != float64(h.BaseBytes()) || tm <= 0 {
		t.Fatalf("total = %v, %v", bytes, tm)
	}
}

func TestReadRangeSplitsAcrossTiers(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(33, 6), refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	cg := blkio.NewCgroup("a")
	var ts *TierStats
	eng.Spawn("r", func(p *sim.Proc) { ts = s.ReadRange(p, cg, 0, h.TotalEntries()) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Level-1 entries (coarse) come from ssd, level-0 (fine) from hdd.
	if ts.BytesOn(ssd) == 0 || ts.BytesOn(hdd) == 0 {
		t.Fatalf("range should touch both tiers: ssd=%v hdd=%v", ts.BytesOn(ssd), ts.BytesOn(hdd))
	}
	if got, want := ts.BytesOn(ssd)+ts.BytesOn(hdd), float64(h.TotalAugBytes()); got != want {
		t.Fatalf("total range bytes %v, want %v", got, want)
	}
}

func TestProbeReadsSlowTier(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(17, 7), refactor.Options{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	cg := blkio.NewCgroup("a")
	var ts *TierStats
	eng.Spawn("r", func(p *sim.Proc) { ts = s.Probe(p, cg, 1024) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ts.BytesOn(hdd) != 1024 || ts.BytesOn(ssd) != 0 {
		t.Fatal("probe must read from the slowest tier only")
	}
}

func TestTierStatsMerge(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	a, b := newTierStats(), newTierStats()
	a.add(ssd, 10, 1)
	b.add(ssd, 5, 0.5)
	b.add(hdd, 20, 2)
	a.Merge(b)
	if a.BytesOn(ssd) != 15 || a.BytesOn(hdd) != 20 {
		t.Fatalf("merge: ssd=%v hdd=%v", a.BytesOn(ssd), a.BytesOn(hdd))
	}
	if a.TimeOn(ssd) != 1.5 || a.TimeOn(hdd) != 2 {
		t.Fatal("merge times wrong")
	}
	bytes, tm := a.Total()
	if bytes != 35 || tm != 3.5 {
		t.Fatalf("total = %v %v", bytes, tm)
	}
	_ = eng
}

func TestDeviceForLevelPanicsOutOfRange(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(17, 8), refactor.Options{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.DeviceForLevel(5)
}

// stubCache is a CacheView for exercising the store-side read split
// without importing internal/cache (which would be an import cycle). It
// may over-claim entries; the store must clamp to the segment.
type stubCache struct {
	dev    *device.Device
	prefix int // level-0 entries claimed resident
	calls  int
}

func (sc *stubCache) Serve(level, start, end int) (*device.Device, int) {
	sc.calls++
	if level != 0 || start >= sc.prefix {
		return nil, 0
	}
	return sc.dev, sc.prefix - start
}

func TestCachedReadSplitsSegmentAndConsultsOnce(t *testing.T) {
	eng := sim.NewEngine()
	ssd, hdd := twoTier(eng)
	h, err := refactor.Decompose(field(33, 5), refactor.Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stage(h, []*device.Device{ssd, hdd})
	if err != nil {
		t.Fatal(err)
	}
	cg := blkio.NewCgroup("app")
	total := h.TotalEntries()
	read := func(parallel bool) *TierStats {
		var ts *TierStats
		eng.Spawn("reader", func(p *sim.Proc) {
			if parallel {
				ts = s.ReadRangeParallel(p, cg, 0, total)
			} else {
				ts = s.ReadRange(p, cg, 0, total)
			}
		})
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return ts
	}

	coldHDD := read(false).BytesOn(hdd)
	if coldHDD == 0 {
		t.Fatal("expected level-0 traffic on the capacity tier")
	}
	ssdUsed, hddUsed := ssd.Used(), hdd.Used()

	n0 := h.LevelEntries(0)
	sc := &stubCache{dev: ssd, prefix: n0 / 2}
	s.SetCache(sc)
	segs := len(h.Segments(0, total))
	warm := read(false)
	if sc.calls != segs {
		t.Fatalf("sequential read consulted cache %d times, want once per segment (%d)", sc.calls, segs)
	}
	wantHDD := coldHDD - float64(h.LevelBytes(0, 0, n0/2))
	if got := warm.BytesOn(hdd); math.Abs(got-wantHDD) > 1e-6 {
		t.Fatalf("cached read moved %v HDD bytes, want %v", got, wantHDD)
	}

	sc.calls = 0
	if got := read(true).BytesOn(hdd); math.Abs(got-wantHDD) > 1e-6 {
		t.Fatalf("parallel cached read moved %v HDD bytes, want %v", got, wantHDD)
	}
	if sc.calls != segs {
		t.Fatalf("parallel read consulted cache %d times, want %d", sc.calls, segs)
	}

	// An over-claiming cache is clamped to the segment: the whole level
	// is served fast, never more.
	sc.prefix = 2 * total
	if got := read(false).BytesOn(hdd); got != 0 {
		t.Fatalf("over-claiming cache left %v bytes on the HDD", got)
	}

	// Probe must bypass the cache so capacity-tier bandwidth samples
	// stay truthful.
	sc.calls = 0
	var probe *TierStats
	eng.Spawn("probe", func(p *sim.Proc) {
		probe = s.Probe(p, cg, 4*device.MB)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if sc.calls != 0 {
		t.Fatal("Probe consulted the cache")
	}
	if probe.BytesOn(hdd) != 4*device.MB {
		t.Fatalf("probe read %v from the capacity tier", probe.BytesOn(hdd))
	}

	// Cached reads never touch staging reservations.
	if ssd.Used() != ssdUsed || hdd.Used() != hddUsed {
		t.Fatalf("reservations moved: ssd %v->%v hdd %v->%v", ssdUsed, ssd.Used(), hddUsed, hdd.Used())
	}
}
