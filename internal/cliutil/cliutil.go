// Package cliutil holds the argument parsing and raw-grid file I/O shared
// by the command-line tools, kept out of package main so it is testable.
package cliutil

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"tango/internal/core"
	"tango/internal/tokenctl"
)

// ParseDims parses "512x512x128"-style grid dimensions.
func ParseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dims %q", s)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("empty dims")
	}
	return dims, nil
}

// ParseBounds parses a comma-separated list of error bounds; an empty
// string yields nil.
func ParseBounds(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParsePolicy maps user-facing policy names onto core policies.
func ParsePolicy(s string) (core.Policy, error) {
	switch strings.ToLower(s) {
	case "none", "noadapt", "no-adapt":
		return core.NoAdapt, nil
	case "storage", "storage-only":
		return core.StorageOnly, nil
	case "app", "app-only", "application":
		return core.AppOnly, nil
	case "cross", "cross-layer", "tango":
		return core.CrossLayer, nil
	case "prefetch", "cross-prefetch", "cross-layer+prefetch":
		return core.CrossLayerPrefetch, nil
	}
	return 0, fmt.Errorf("unknown policy %q (none|storage|app|cross|prefetch)", s)
}

// ParseControl maps user-facing weight-control mode names onto tokenctl
// modes: central (coordinator rescale), tokens (decentralized buckets),
// or hybrid (tokens with periodic coordinator-style resync).
func ParseControl(s string) (tokenctl.Mode, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	if v == "token" { // common singular spelling
		v = "tokens"
	}
	return tokenctl.ParseMode(v)
}

// ReadRawFloat64s reads n little-endian float64 values from path.
func ReadRawFloat64s(path string, n int) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	data := make([]float64, n)
	var b [8]byte
	for i := range data {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, fmt.Errorf("reading point %d: %w", i, err)
		}
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	}
	return data, nil
}

// WriteRawFloat64s writes data as little-endian float64 values to path.
func WriteRawFloat64s(path string, data []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	var b [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := bw.Write(b[:]); err != nil {
			_ = f.Close() // best-effort cleanup; the write error wins
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close() // best-effort cleanup; the flush error wins
		return err
	}
	return f.Close()
}
