package cliutil

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"tango/internal/core"
	"tango/internal/tokenctl"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"512x512", []int{512, 512}, true},
		{"64", []int{64}, true},
		{"4x4x4", []int{4, 4, 4}, true},
		{" 8 x 8 ", []int{8, 8}, true},
		{"", nil, false},
		{"0x4", nil, false},
		{"-3", nil, false},
		{"axb", nil, false},
	}
	for _, c := range cases {
		got, err := ParseDims(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseDims(%q) err = %v", c.in, err)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseDims(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseDims(%q) = %v", c.in, got)
			}
		}
	}
}

func TestParseBounds(t *testing.T) {
	got, err := ParseBounds("0.1, 0.01,1e-3")
	if err != nil || len(got) != 3 || got[2] != 1e-3 {
		t.Fatalf("ParseBounds = %v, %v", got, err)
	}
	if got, err := ParseBounds(""); err != nil || got != nil {
		t.Fatalf("empty = %v, %v", got, err)
	}
	if _, err := ParseBounds("0.1,oops"); err == nil {
		t.Fatal("bad bound accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]core.Policy{
		"none": core.NoAdapt, "NoAdapt": core.NoAdapt,
		"storage": core.StorageOnly, "storage-only": core.StorageOnly,
		"app": core.AppOnly, "application": core.AppOnly,
		"cross": core.CrossLayer, "TANGO": core.CrossLayer,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestParseControl(t *testing.T) {
	cases := map[string]tokenctl.Mode{
		"central": tokenctl.ModeCentral, "Central": tokenctl.ModeCentral,
		"tokens": tokenctl.ModeTokens, "token": tokenctl.ModeTokens,
		"hybrid": tokenctl.ModeHybrid,
	}
	for in, want := range cases {
		got, err := ParseControl(in)
		if err != nil || got != want {
			t.Errorf("ParseControl(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseControl("bogus"); err == nil {
		t.Fatal("bogus control mode accepted")
	}
}

func TestRawFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.raw")
	data := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	if err := WriteRawFloat64s(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRawFloat64s(path, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("value %d: %v vs %v", i, got[i], data[i])
		}
	}
	// Short file rejected.
	if _, err := ReadRawFloat64s(path, len(data)+1); err == nil {
		t.Fatal("short file accepted")
	}
	// Missing file.
	if _, err := ReadRawFloat64s(filepath.Join(t.TempDir(), "nope"), 1); err == nil {
		t.Fatal("missing file accepted")
	}
	_ = os.Remove(path)
}
