package trace

import "testing"

// BenchmarkEmitPreformatted measures the no-argument fast path used by
// hot call sites that already hold a complete message.
func BenchmarkEmitPreformatted(b *testing.B) {
	b.ReportAllocs()
	r := New(4096)
	for i := 0; i < b.N; i++ {
		r.Emit(float64(i), "sess", KindStep, "step complete")
	}
}

// BenchmarkEmitFormatted measures the formatting path the controller's
// per-step telemetry takes.
func BenchmarkEmitFormatted(b *testing.B) {
	b.ReportAllocs()
	r := New(4096)
	for i := 0; i < b.N; i++ {
		r.Emit(float64(i), "sess", KindStep, "step=%d io=%.3f", i, 0.25)
	}
}

// BenchmarkEmitNilRecorder pins the disabled path: a nil recorder must
// cost nothing measurable.
func BenchmarkEmitNilRecorder(b *testing.B) {
	b.ReportAllocs()
	var r *Recorder
	for i := 0; i < b.N; i++ {
		r.Emit(float64(i), "sess", KindStep, "step=%d", i)
	}
}
