// Package trace records structured events from a simulation run — weight
// adjustments, bucket retrievals, estimator refits — for debugging and
// for experiments that plot controller behavior over time (e.g. Fig 15).
// A Recorder is a bounded ring buffer: cheap enough to leave enabled, and
// safe for the concurrent multi-node runs of the weak-scaling experiment.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Event kinds emitted by the controller, the coordinator, and the fault
// injector. Call sites use these constants (not string literals) so
// filters and event consumers cannot drift from the emitters.
const (
	KindStep    = "step"    // one analysis step completed (core)
	KindWeight  = "weight"  // a blkio weight applied for a bucket (core)
	KindBucket  = "bucket"  // one augmentation bucket retrieved (core)
	KindRefit   = "refit"   // estimator refit: periodic or regime-triggered (core)
	KindFault   = "fault"   // a fault injected or cleared (internal/fault)
	KindRecover = "recover" // a recovery action: retry, degrade, weight re-apply

	// Fast-tier cache / prefetcher events (internal/cache).
	KindCacheHit   = "cache-hit"   // a read served (partly) from the fast-tier cache
	KindCacheMiss  = "cache-miss"  // a read that went to the home tier
	KindCacheEvict = "cache-evict" // cache blocks evicted to make room or shrink
	KindPrefetch   = "prefetch"    // background pre-staging: staged, paused, or skipped

	// Resilience control plane events (internal/resil). Every recovery
	// decision is on the timeline: which attempt, under which policy key,
	// and why it was retried, denied, hedged, or degraded.
	KindAttempt = "attempt" // a policy-keyed attempt failed, was retried, or degraded
	KindBreaker = "breaker" // a circuit breaker opened, half-opened, or closed
	KindHedge   = "hedge"   // a hedged read launched or resolved (winner + loser)
	KindBudget  = "budget"  // the retry budget denied or paced an attempt

	// Fleet-scale cluster events (internal/fleet + internal/objstore).
	KindPlace   = "place"   // a session placed on a node by the cluster coordinator
	KindMigrate = "migrate" // a session drained/restored through the object store
	KindEgress  = "egress"  // the shared-egress water-filling regranted node shares

	// Decentralized token-control events (internal/tokenctl).
	KindBorrow = "borrow" // a session borrowed or recalled weight points from a peer bucket
	KindRepay  = "repay"  // a borrow ledger debt cleared (refill-paced) or epoch-forgiven
)

// Event is one recorded occurrence at virtual time T.
type Event struct {
	T      float64
	Source string // e.g. the session or device name
	Kind   string // one of the Kind* constants
	Msg    string
}

// Recorder is a bounded event buffer. The zero value is inert (Disabled);
// construct with New.
type Recorder struct {
	mu     sync.Mutex
	events []Event       // guarded by mu
	next   int           // guarded by mu
	filled bool          // guarded by mu
	cap    int           // immutable after construction
	subs   []func(Event) // guarded by mu; snapshot before invoking outside the lock
}

// New creates a recorder retaining the most recent max events (max <= 0
// defaults to 4096).
func New(max int) *Recorder {
	if max <= 0 {
		max = 4096
	}
	return &Recorder{events: make([]Event, 0, max), cap: max}
}

// Subscribe registers fn to be invoked synchronously on every event.
func (r *Recorder) Subscribe(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, fn)
}

// Emit records an event. A nil recorder ignores it, so call sites do not
// need to guard. When called with no args the format string is recorded
// verbatim — hot call sites that already hold a complete message skip the
// fmt.Sprintf pass (and its argument boxing) entirely.
//
//tango:hotpath
func (r *Recorder) Emit(t float64, source, kind, format string, args ...any) {
	if r == nil {
		return
	}
	msg := format
	if len(args) > 0 {
		//lint:ignore hotpath the formatted path is opt-in: hot call sites pass zero args and skip it (documented above); cold call sites pay for their own formatting
		msg = fmt.Sprintf(format, args...)
	}
	ev := Event{T: t, Source: source, Kind: kind, Msg: msg}
	r.mu.Lock()
	if len(r.events) < r.cap {
		r.events = append(r.events, ev)
	} else {
		r.events[r.next] = ev
		r.next = (r.next + 1) % r.cap
		r.filled = true
	}
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns retained events of one kind.
func (r *Recorder) Filter(kind string) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// FilterKinds returns retained events matching any of the given kinds,
// in chronological order.
func (r *Recorder) FilterKinds(kinds ...string) []Event {
	var out []Event
	for _, ev := range r.Events() {
		for _, k := range kinds {
			if ev.Kind == k {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return r.cap
	}
	return len(r.events)
}

// WriteTo dumps the retained events as text lines.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, ev := range r.Events() {
		n, err := fmt.Fprintf(w, "%10.3f %-12s %-8s %s\n", ev.T, ev.Source, ev.Kind, ev.Msg)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
