package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Emit(1, "x", "k", "msg %d", 1) // must not panic
	if r.Events() != nil || r.Len() != 0 {
		t.Fatal("nil recorder should be empty")
	}
	r.Subscribe(func(Event) {})
}

func TestEmitAndEvents(t *testing.T) {
	r := New(10)
	r.Emit(1.5, "sess", "step", "step %d", 0)
	r.Emit(2.5, "sess", "weight", "w=%d", 300)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Msg != "step 0" || evs[1].Msg != "w=300" {
		t.Fatalf("messages: %+v", evs)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Emit(float64(i), "s", "k", "%d", i)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d", len(evs))
	}
	want := []string{"4", "5", "6"}
	for i, w := range want {
		if evs[i].Msg != w {
			t.Fatalf("events = %+v", evs)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestFilter(t *testing.T) {
	r := New(10)
	r.Emit(1, "s", "a", "x")
	r.Emit(2, "s", "b", "y")
	r.Emit(3, "s", "a", "z")
	as := r.Filter("a")
	if len(as) != 2 || as[1].Msg != "z" {
		t.Fatalf("filter = %+v", as)
	}
	if len(r.Filter("missing")) != 0 {
		t.Fatal("bogus kind matched")
	}
}

func TestSubscribe(t *testing.T) {
	r := New(10)
	var got []Event
	r.Subscribe(func(ev Event) { got = append(got, ev) })
	r.Emit(1, "s", "k", "hello")
	if len(got) != 1 || got[0].Msg != "hello" {
		t.Fatalf("subscriber: %+v", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := New(0)
	for i := 0; i < 5000; i++ {
		r.Emit(float64(i), "s", "k", "")
	}
	if r.Len() != 4096 {
		t.Fatalf("default cap = %d", r.Len())
	}
}

func TestWriteTo(t *testing.T) {
	r := New(4)
	r.Emit(1.25, "dev", "flow", "done")
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dev") || !strings.Contains(sb.String(), "done") {
		t.Fatalf("output: %q", sb.String())
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(float64(i), "g", "k", "%d", g)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 128 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestKindValuesPinned pins the string value of every Kind constant.
// Recorded traces are replayed by value (trace-replay interferers, fault
// pairing, dashboards), so renaming a constant's value would silently
// break every consumer of an already-recorded trace. Adding a kind means
// adding a row here; changing a value must fail this test.
func TestKindValuesPinned(t *testing.T) {
	pinned := map[string]string{
		"KindStep":       KindStep,
		"KindWeight":     KindWeight,
		"KindBucket":     KindBucket,
		"KindRefit":      KindRefit,
		"KindFault":      KindFault,
		"KindRecover":    KindRecover,
		"KindCacheHit":   KindCacheHit,
		"KindCacheMiss":  KindCacheMiss,
		"KindCacheEvict": KindCacheEvict,
		"KindPrefetch":   KindPrefetch,
		"KindAttempt":    KindAttempt,
		"KindBreaker":    KindBreaker,
		"KindHedge":      KindHedge,
		"KindBudget":     KindBudget,
		"KindPlace":      KindPlace,
		"KindMigrate":    KindMigrate,
		"KindEgress":     KindEgress,
		"KindBorrow":     KindBorrow,
		"KindRepay":      KindRepay,
	}
	want := map[string]string{
		"KindStep":       "step",
		"KindWeight":     "weight",
		"KindBucket":     "bucket",
		"KindRefit":      "refit",
		"KindFault":      "fault",
		"KindRecover":    "recover",
		"KindCacheHit":   "cache-hit",
		"KindCacheMiss":  "cache-miss",
		"KindCacheEvict": "cache-evict",
		"KindPrefetch":   "prefetch",
		"KindAttempt":    "attempt",
		"KindBreaker":    "breaker",
		"KindHedge":      "hedge",
		"KindBudget":     "budget",
		"KindPlace":      "place",
		"KindMigrate":    "migrate",
		"KindEgress":     "egress",
		"KindBorrow":     "borrow",
		"KindRepay":      "repay",
	}
	for name, got := range pinned {
		if got != want[name] {
			t.Errorf("%s = %q, want %q (pinned; recorded traces replay by value)", name, got, want[name])
		}
	}
	// Distinctness: two kinds sharing a value would merge in filters.
	seen := make(map[string]string, len(pinned))
	for name, v := range pinned {
		if prev, dup := seen[v]; dup {
			t.Errorf("kinds %s and %s share value %q", prev, name, v)
		}
		seen[v] = name
	}
}
