// Package device models local block devices (HDD, SSD, NVMe) shared by
// multiple cgroups, using a fluid-flow approximation of the kernel block
// layer: at any instant, the set of active flows divides the device's
// effective bandwidth proportionally to their cgroups' blkio weights,
// subject to per-cgroup byte-rate throttles (water-filling redistribution
// of excess).
//
// The model captures the three storage phenomena the Tango paper builds
// on:
//
//  1. Proportional sharing by weight without isolation: equal static
//     weights yield shrinking shares as competitors join (Fig 1).
//  2. Total-throughput collapse on rotational media under concurrent
//     streams (seek thrash): with n concurrent flows, the device delivers
//     peak × eff(n) where eff(n) = max(minEff, 1/(1+thrash·(n−1))). This
//     is why storage-layer weight adjustment alone merely redistributes a
//     shrinking pie once the device saturates (Fig 8 discussion), whereas
//     application-layer adaptivity that removes load genuinely helps.
//  3. Per-request latency (seek/setup cost) paid before streaming.
//
// Flows run inside the sim engine; a Read/Write call blocks the calling
// simulated process until the flow drains.
package device

import (
	"errors"
	"fmt"
	"math"

	"tango/internal/blkio"
	"tango/internal/sim"
)

// ErrRead is returned by TryRead while a transient read-error fault is
// injected on the device (media error, controller reset — the request is
// issued, pays its latency, and fails without transferring data).
var ErrRead = errors.New("device: transient read error")

// ErrCanceled is returned by TryReadCancel when the transfer's Token is
// cancelled mid-flight (a per-attempt timeout fired, or a hedged read's
// other leg won). The bytes actually moved before the cancel are
// accounted to the cgroup and reported by Token.Moved.
var ErrCanceled = errors.New("device: transfer canceled")

// Scheduler selects how concurrent flows share the device.
type Scheduler int

const (
	// ProportionalShare divides bandwidth by cgroup weight (CFQ/BFQ
	// semantics — the substrate Tango builds on). Default.
	ProportionalShare Scheduler = iota
	// FIFO serves one flow at a time in arrival order, ignoring weights
	// — an ablation showing why cgroup proportional share matters: any
	// long checkpoint write head-of-line-blocks the analytics.
	FIFO
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case ProportionalShare:
		return "proportional-share"
	case FIFO:
		return "fifo"
	default:
		return "Scheduler(?)"
	}
}

// Params describes the performance envelope of a device.
type Params struct {
	Name           string
	PeakBandwidth  float64 // bytes/sec of a single sequential READ stream
	RequestLatency float64 // seconds of fixed cost per request (seek/setup)
	SeekThrash     float64 // efficiency loss coefficient per extra concurrent flow
	MinEfficiency  float64 // floor on eff(n), in (0, 1]
	Capacity       float64 // bytes of usable capacity (0 = unlimited)
	Scheduler      Scheduler
	// WriteFactor scales the service rate of write flows relative to
	// reads (e.g. 0.9 = writes stream 10% slower, typical for drives
	// with write verification or SSDs with program latency). 0 means 1.
	WriteFactor float64
}

// Presets loosely calibrated to the paper's testbed (§IV-A): a Seagate
// 7200 RPM SAS HDD and an Intel SATA SSD, with the HDD operating range
// matching the paper's BW_low=30 MB/s … BW_high=120 MB/s augmentation-
// bandwidth plot.
const MB = 1024 * 1024

// HDD returns parameters for a 7200 RPM hard disk: ~160 MB/s sequential,
// heavy seek thrash under concurrency, ~8 ms per request.
func HDD(name string) Params {
	return Params{
		Name:           name,
		PeakBandwidth:  160 * MB,
		RequestLatency: 0.008,
		SeekThrash:     0.35,
		MinEfficiency:  0.18,
		Capacity:       2048 * 1024 * MB, // 2 TB
	}
}

// SSD returns parameters for a SATA SSD: ~500 MB/s, negligible seek
// penalty, ~0.1 ms per request.
func SSD(name string) Params {
	return Params{
		Name:           name,
		PeakBandwidth:  500 * MB,
		RequestLatency: 0.0001,
		SeekThrash:     0.02,
		MinEfficiency:  0.70,
		Capacity:       400 * 1024 * MB, // 400 GB
	}
}

// NVMe returns parameters for an NVMe drive: ~3 GB/s, effectively no
// contention collapse at these flow counts.
func NVMe(name string) Params {
	return Params{
		Name:           name,
		PeakBandwidth:  3000 * MB,
		RequestLatency: 0.00002,
		SeekThrash:     0.005,
		MinEfficiency:  0.85,
		Capacity:       100 * 1024 * MB,
	}
}

func (p Params) validate() error {
	if p.PeakBandwidth <= 0 {
		return fmt.Errorf("device %q: PeakBandwidth must be > 0", p.Name)
	}
	if p.MinEfficiency <= 0 || p.MinEfficiency > 1 {
		return fmt.Errorf("device %q: MinEfficiency must be in (0,1]", p.Name)
	}
	if p.SeekThrash < 0 {
		return fmt.Errorf("device %q: SeekThrash must be >= 0", p.Name)
	}
	if p.RequestLatency < 0 {
		return fmt.Errorf("device %q: RequestLatency must be >= 0", p.Name)
	}
	if p.WriteFactor < 0 || p.WriteFactor > 1 {
		return fmt.Errorf("device %q: WriteFactor must be in [0,1] (0 = unset)", p.Name)
	}
	return nil
}

// flow is one in-flight request stream. Structs are recycled through the
// device's freelist: the issuing process returns its flow after observing
// done, at which point the device holds no reference to it.
type flow struct {
	id       int64
	d        *Device // owning device, for the Fire callback (fast path only)
	cg       *blkio.Cgroup
	proc     *sim.Proc
	bytes    float64 // total requested
	bytesRem float64
	rate     float64 // current bytes/sec
	write    bool
	start    float64
	done     bool
	canceled bool // aborted via Token.Cancel; issuer observes and recycles
	fallible bool // fast path only: check readErr at issue time
	failed   bool // fast path only: read error observed at issue time
	gi       int  // reshape scratch: index into Device.groups
}

// Fire issues the flow after its request-latency wait; it is the
// sim.Callback body for the event transferFast schedules, carrying the
// per-transfer state without a per-call closure.
func (f *flow) Fire() { f.d.issue(f) }

// wfGroup is reshape scratch: one (cgroup, direction) aggregation used by
// the water-filling pass. Held in a reusable slice on the Device so the
// per-request service loop does not allocate.
type wfGroup struct {
	cg      *blkio.Cgroup
	write   bool
	weight  float64
	cap     float64 // 0 = unlimited
	alloc   float64
	perFlow float64 // alloc / nflows, hoisted out of the per-flow loop
	nflows  int
}

// Device is a simulated shared block device. All methods must be called
// from sim context (a process body or event callback).
type Device struct {
	eng *sim.Engine
	p   Params

	flows      []*flow // ordered by id for deterministic iteration
	nextID     int64
	lastUpdate float64
	epoch      int64
	armedEpoch int64 // epoch at which the completion timer was armed
	timer      sim.Timer
	onTimer    func() // cached completion callback; one alloc per device
	onTouch    func() // cached Touch bound-method value for cgroup subscriptions

	// wrappedReadErr is the "device %q: ErrRead" chain TryRead returns,
	// built once at construction so the fallible read path does not call
	// fmt.Errorf per request. wrappedCancelErr is the same idiom for
	// ErrCanceled on the cancellable path.
	wrappedReadErr   error
	wrappedCancelErr error

	flowFree []*flow   // recycled flow structs
	groups   []wfGroup // reshape scratch: groups in first-appearance order
	wfActive []int     // reshape scratch: water-filling round (group indices)
	wfNext   []int     // reshape scratch: next round
	wfCapped []int     // reshape scratch: groups capped this round
	effMemo  []float64 // Efficiency(n) memo, indexed by n

	subscribed map[*blkio.Cgroup]bool

	// Injected degradation (see internal/fault): bwFactor scales the
	// delivered bandwidth (1 = healthy, 0 = stuck device), extraLatency
	// adds to the per-request cost, and readErr makes TryRead fail.
	bwFactor     float64
	extraLatency float64
	readErr      bool

	// share is an externally managed bandwidth share in (0,1]: the
	// fraction of the device a cluster-level allocator grants this node
	// (e.g. the object store's shared-egress water-filling in
	// internal/objstore). It composes multiplicatively with bwFactor so
	// fault injection and egress shaping remain independent knobs.
	share float64

	// accounting
	totalBytes float64
	busyUntil  float64
	busyTime   float64
	used       float64 // staged bytes (capacity accounting)
}

// New creates a device bound to an engine. It panics on invalid Params
// (scenario construction is programmer-controlled).
func New(eng *sim.Engine, p Params) *Device {
	if err := p.validate(); err != nil {
		panic(err)
	}
	d := &Device{
		eng:        eng,
		p:          p,
		bwFactor:   1,
		share:      1,
		nextID:     1, // 0 is reserved so a zero Token can never match a live flow
		subscribed: make(map[*blkio.Cgroup]bool),
	}
	d.onTimer = func() {
		if d.armedEpoch != d.epoch {
			return
		}
		d.advance()
		d.reshape()
	}
	d.onTouch = d.Touch
	d.wrappedReadErr = fmt.Errorf("device %q: %w", p.Name, ErrRead)
	d.wrappedCancelErr = fmt.Errorf("device %q: %w", p.Name, ErrCanceled)
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.p.Name }

// Params returns the device parameters.
func (d *Device) Params() Params { return d.p }

// Engine returns the engine the device runs on.
func (d *Device) Engine() *sim.Engine { return d.eng }

// ActiveFlows reports the number of in-flight flows.
func (d *Device) ActiveFlows() int { return len(d.flows) }

// TotalBytes returns cumulative bytes transferred.
func (d *Device) TotalBytes() float64 { return d.totalBytes }

// BusyTime returns cumulative seconds during which at least one flow was
// active.
func (d *Device) BusyTime() float64 {
	d.advance()
	return d.busyTime
}

// Efficiency returns eff(n) for n concurrent flows. Values are memoized
// per flow count (the parameters are immutable after New), so the per-
// reshape cost is an indexed load.
func (d *Device) Efficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	if n < len(d.effMemo) {
		if v := d.effMemo[n]; v != 0 {
			return v
		}
	} else if n <= 1024 {
		grown := make([]float64, n+1)
		copy(grown, d.effMemo)
		d.effMemo = grown
	}
	eff := math.Max(1/(1+d.p.SeekThrash*float64(n-1)), d.p.MinEfficiency)
	if n < len(d.effMemo) {
		d.effMemo[n] = eff
	}
	return eff
}

// EffectiveBandwidth returns the aggregate bandwidth the device delivers
// with n concurrent flows, including any injected degradation.
func (d *Device) EffectiveBandwidth(n int) float64 {
	return d.p.PeakBandwidth * d.bwFactor * d.share * d.Efficiency(n)
}

// SetShare sets the externally allocated bandwidth share in (0,1]. The
// cluster-level egress allocator (internal/objstore) calls this when the
// water-filling pass regrants per-node shares of the shared link; it is
// orthogonal to SetFault, so injected degradation and egress shaping
// compose. In-flight flows reshape immediately. Must be called from sim
// context.
func (d *Device) SetShare(frac float64) {
	if frac <= 0 || frac > 1 || math.IsNaN(frac) {
		panic(fmt.Sprintf("device %q: share %v out of (0,1]", d.p.Name, frac))
	}
	if frac == d.share {
		return
	}
	d.share = frac
	d.Touch()
}

// Share returns the externally allocated bandwidth share (1 = whole
// device).
func (d *Device) Share() float64 { return d.share }

// SetFault injects a device-level degradation: bwFactor scales the
// delivered bandwidth (0 = stuck device: all flows stall until the fault
// clears), extraLatency adds seconds of per-request cost. In-flight flows
// reshape immediately. Must be called from sim context.
func (d *Device) SetFault(bwFactor, extraLatency float64) {
	if bwFactor < 0 || bwFactor > 1 || math.IsNaN(bwFactor) {
		panic(fmt.Sprintf("device %q: fault bwFactor %v out of [0,1]", d.p.Name, bwFactor))
	}
	if extraLatency < 0 || math.IsNaN(extraLatency) {
		panic(fmt.Sprintf("device %q: negative fault latency %v", d.p.Name, extraLatency))
	}
	d.bwFactor = bwFactor
	d.extraLatency = extraLatency
	d.Touch()
}

// ClearFault restores healthy bandwidth and latency; stalled flows resume.
// Must be called from sim context.
func (d *Device) ClearFault() {
	d.bwFactor = 1
	d.extraLatency = 0
	d.Touch()
}

// Faulted reports whether a degradation fault is currently injected.
func (d *Device) Faulted() bool { return d.bwFactor != 1 || d.extraLatency != 0 }

// SetReadError toggles transient read errors: while enabled, TryRead
// pays the request latency and then fails without transferring. Read and
// Write are unaffected (writes land in the page cache; the fault models a
// read path returning EIO).
func (d *Device) SetReadError(fail bool) { d.readErr = fail }

// ReadErrorActive reports whether read errors are being injected.
func (d *Device) ReadErrorActive() bool { return d.readErr }

// Reserve accounts bytes of staged capacity on the device. It returns an
// error if the device would exceed its capacity; staging planners use this
// to decide tier placement.
func (d *Device) Reserve(bytes float64) error {
	if bytes < 0 {
		return fmt.Errorf("device %q: negative reservation", d.p.Name)
	}
	if d.p.Capacity > 0 && d.used+bytes > d.p.Capacity {
		return fmt.Errorf("device %q: capacity exceeded (%.0f + %.0f > %.0f bytes)",
			d.p.Name, d.used, bytes, d.p.Capacity)
	}
	d.used += bytes
	return nil
}

// Release returns previously reserved capacity (ephemeral data erased
// after a job exits).
func (d *Device) Release(bytes float64) {
	d.used -= bytes
	if d.used < 0 {
		d.used = 0
	}
}

// Used returns currently reserved bytes.
func (d *Device) Used() float64 { return d.used }

// Read transfers `bytes` from the device under cgroup cg, blocking the
// calling process until complete. It returns the elapsed virtual time.
// Read never fails (injected read errors affect only TryRead; see
// internal/fault).
//
// The request path (transfer → reshape → water-filling) is the device
// service loop; tangolint's hotpath analyzer verifies it allocates only
// through the flow freelist (BenchmarkDeviceServiceLoop).
//
//tango:hotpath
func (d *Device) Read(p *sim.Proc, cg *blkio.Cgroup, bytes float64) float64 {
	el, _ := d.transfer(p, cg, bytes, false, false, nil)
	return el
}

// TryRead is Read on a fallible path: while a read-error fault is
// injected it pays the request latency and returns ErrRead without
// transferring. Fault-aware read paths (staging retries) use this.
//
//tango:hotpath
func (d *Device) TryRead(p *sim.Proc, cg *blkio.Cgroup, bytes float64) (float64, error) {
	return d.transfer(p, cg, bytes, false, true, nil)
}

// Write transfers `bytes` to the device under cgroup cg, blocking the
// calling process until complete. It returns the elapsed virtual time.
//
//tango:hotpath
func (d *Device) Write(p *sim.Proc, cg *blkio.Cgroup, bytes float64) float64 {
	el, _ := d.transfer(p, cg, bytes, true, false, nil)
	return el
}

// Token identifies one in-flight cancellable transfer. The issuing call
// (TryReadCancel) arms it; another event callback or process may then
// call Cancel to abort the transfer. Tokens are plain values owned by the
// caller and are re-armed on every call, so one long-lived Token per
// retry context is the intended (zero-alloc) usage.
type Token struct {
	d     *Device
	f     *flow
	id    int64
	pre   bool    // cancelled during the request-latency phase, before the flow was issued
	spent bool    // the transfer has finished (success, error, or cancel); Cancel is a no-op
	moved float64 // bytes actually transferred when the call returned
}

// Moved reports the bytes the last transfer actually moved: the full
// request on success, the partial progress on cancel, 0 on a read error.
func (t *Token) Moved() float64 { return t.moved }

// Cancel aborts the token's in-flight transfer, if any. It reports
// whether a transfer was actually cancelled. Safe to call at any time
// (including after completion, where it is a no-op) and from any sim
// context — typically a timeout timer callback or the winning leg of a
// hedged read.
//
//tango:hotpath
func (t *Token) Cancel() bool {
	if t.f != nil {
		return t.d.cancelFlow(t.f, t.id)
	}
	if t.d == nil || t.spent || t.pre {
		return false
	}
	t.pre = true // transfer is still paying request latency; fail it on wake
	return true
}

// TryReadCancel is TryRead with cooperative cancellation: tok is re-armed
// for this transfer, and tok.Cancel() aborts it mid-flight (per-attempt
// timeouts, hedged-read losers). A cancelled transfer accounts the bytes
// it actually moved to the cgroup and returns an error wrapping
// ErrCanceled; tok.Moved reports the partial progress. A nil tok degrades
// to TryRead.
//
//tango:hotpath
func (d *Device) TryReadCancel(p *sim.Proc, cg *blkio.Cgroup, bytes float64, tok *Token) (float64, error) {
	if tok != nil {
		*tok = Token{d: d}
	}
	return d.transfer(p, cg, bytes, false, true, tok)
}

func (d *Device) transfer(p *sim.Proc, cg *blkio.Cgroup, bytes float64, write, fallible bool, tok *Token) (float64, error) {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("device %q: invalid transfer size %v", d.p.Name, bytes))
	}
	start := d.eng.Now()
	if tok == nil && bytes > 0 {
		return d.transferFast(p, cg, bytes, write, fallible, start)
	}
	if lat := d.p.RequestLatency + d.extraLatency; lat > 0 {
		p.Sleep(lat)
	}
	if tok != nil && tok.pre {
		// Cancelled while paying the request latency: no flow was issued,
		// nothing transferred.
		tok.spent = true
		return d.eng.Now() - start, d.wrappedCancelErr
	}
	if fallible && d.readErr {
		if tok != nil {
			tok.spent = true
		}
		return d.eng.Now() - start, d.wrappedReadErr
	}
	if bytes == 0 {
		if tok != nil {
			tok.spent = true
		}
		return d.eng.Now() - start, nil
	}
	f := d.newFlow()
	f.d = d
	f.cg = cg
	f.proc = p
	f.bytes = bytes
	f.bytesRem = bytes
	f.write = write
	f.start = start
	d.issue(f)
	if tok != nil {
		tok.f, tok.id = f, f.id
	}
	for !f.done && !f.canceled {
		p.Suspend()
	}
	canceled := f.canceled
	moved := bytes
	if canceled {
		moved = f.bytes - f.bytesRem
		if moved < 0 {
			moved = 0
		}
	}
	// The device dropped its reference (completeDrained or cancelFlow);
	// the struct is ours to recycle.
	*f = flow{}
	d.flowFree = append(d.flowFree, f)
	if tok != nil {
		tok.f = nil
		tok.spent = true
		tok.moved = moved
	}
	cg.Account(moved, write)
	if canceled {
		return d.eng.Now() - start, d.wrappedCancelErr
	}
	return d.eng.Now() - start, nil
}

// cancelFlow aborts a live flow: it integrates progress to now, credits
// the partial bytes to the device counters, removes the flow from the
// active set, and wakes the issuing process, which observes f.canceled
// and returns ErrCanceled. The (pointer, id) pair guards against struct
// recycling: a stale token whose flow already drained is a no-op.
func (d *Device) cancelFlow(f *flow, id int64) bool {
	if f.id != id || f.done || f.canceled {
		return false
	}
	d.advance()
	f.canceled = true
	f.rate = 0
	d.totalBytes += f.bytes - f.bytesRem
	kept := d.flows[:0]
	for _, g := range d.flows {
		if g != f {
			kept = append(kept, g)
		}
	}
	for i := len(kept); i < len(d.flows); i++ {
		d.flows[i] = nil
	}
	d.flows = kept
	d.eng.Wake(f.proc)
	d.reshape()
	return true
}

// transferFast is the token-less transfer path (plain Read/Write and
// TryRead): the flow is issued from an engine-side event at
// start+latency instead of sleeping the process just to issue the flow
// and park again — the issue event occupies exactly the queue slot
// Sleep's resume event occupied, so the simulation stays byte-identical
// while each transfer saves a full goroutine round-trip. Cancellable
// (token-carrying) transfers keep the slow path in transfer: a
// latency-phase cancel must resume user code at that queue slot, which
// only the process itself can do.
//
//tango:hotpath
func (d *Device) transferFast(p *sim.Proc, cg *blkio.Cgroup, bytes float64, write, fallible bool, start float64) (float64, error) {
	f := d.newFlow()
	f.d = d
	f.cg = cg
	f.proc = p
	f.bytes = bytes
	f.bytesRem = bytes
	f.write = write
	f.fallible = fallible
	f.start = start
	if lat := d.p.RequestLatency + d.extraLatency; lat > 0 {
		d.eng.AtCall(start+lat, f)
	} else {
		d.issue(f)
	}
	for !f.done && !f.canceled {
		p.Suspend()
	}
	failed := f.failed
	*f = flow{}
	d.flowFree = append(d.flowFree, f)
	if failed {
		return d.eng.Now() - start, d.wrappedReadErr
	}
	cg.Account(bytes, write)
	return d.eng.Now() - start, nil
}

// issue adds a prepared flow to the active set at the current instant:
// check the injected read-error state (fast fallible path), subscribe
// the cgroup, stamp the id, integrate progress to now, and reshape. It
// runs inline on the issuing process (zero request latency, or the slow
// path after its Sleep) or as the flow's Fire event after the fast
// path's latency wait — the same operations in the same order either
// way.
//
//tango:hotpath
func (d *Device) issue(f *flow) {
	if f.fallible && d.readErr {
		// The same instant the slow path would observe the error at; no
		// flow was issued, nothing transfers. Wake no-ops when the issue
		// ran inline (the process is still running and sees f.done).
		f.failed = true
		f.done = true
		d.eng.Wake(f.proc)
		return
	}
	if !d.subscribed[f.cg] {
		d.subscribed[f.cg] = true
		f.cg.Subscribe(d.onTouch)
	}
	f.id = d.nextID
	d.nextID++
	d.advance()
	d.flows = append(d.flows, f)
	d.reshape()
}

// newFlow takes a zeroed struct off the freelist or allocates one.
func (d *Device) newFlow() *flow {
	if n := len(d.flowFree); n > 0 {
		f := d.flowFree[n-1]
		d.flowFree[n-1] = nil
		d.flowFree = d.flowFree[:n-1]
		return f
	}
	return new(flow)
}

// Touch forces a share recomputation at the current instant; cgroup
// parameter changes call this so weight adjustments take effect on
// in-flight flows immediately.
//
//tango:hotpath
func (d *Device) Touch() {
	if len(d.flows) == 0 {
		return
	}
	d.advance()
	d.reshape()
}

// advance integrates flow progress from lastUpdate to now at current
// rates and updates busy-time accounting.
func (d *Device) advance() {
	now := d.eng.Now()
	dt := now - d.lastUpdate
	if dt < 0 {
		dt = 0
	}
	if len(d.flows) > 0 && dt > 0 {
		for _, f := range d.flows {
			f.bytesRem -= f.rate * dt
			if f.bytesRem < 0 {
				f.bytesRem = 0
			}
		}
		d.busyTime += dt
	}
	d.lastUpdate = now
}

// reshape recomputes per-flow rates (proportional share with throttle
// water-filling), completes drained flows, and schedules the next
// completion event.
func (d *Device) reshape() {
	d.completeDrained()
	n := len(d.flows)
	if n == 0 {
		d.cancelTimer()
		return
	}
	if d.p.Scheduler == FIFO {
		// Head-of-line service: the oldest flow gets the full single-
		// stream bandwidth, everyone else waits.
		for i, f := range d.flows {
			if i == 0 {
				f.rate = d.p.PeakBandwidth * d.bwFactor * d.share
			} else {
				f.rate = 0
			}
		}
		d.scheduleCompletion()
		return
	}
	total := d.EffectiveBandwidth(n)

	// Group flows by (cgroup, direction): the kernel throttles read and
	// write bytes separately per cgroup, and weight applies per cgroup.
	// Groups are built in flow-id order so every run allocates identically,
	// and keyed by cgroup identity (not name): distinct cgroups that happen
	// to share a name still schedule independently. The group slice and the
	// water-filling index slices are reusable scratch — the group count is
	// small, so a linear membership scan beats a per-call map.
	d.groups = d.groups[:0]
	for _, f := range d.flows {
		gi := -1
		for j := range d.groups {
			if d.groups[j].cg == f.cg && d.groups[j].write == f.write {
				gi = j
				break
			}
		}
		if gi < 0 {
			cap := f.cg.ReadBpsLimit()
			if f.write {
				cap = f.cg.WriteBpsLimit()
			}
			d.groups = append(d.groups, wfGroup{
				cg: f.cg, write: f.write,
				weight: float64(f.cg.Weight()), cap: cap,
			})
			gi = len(d.groups) - 1
		}
		d.groups[gi].nflows++
		f.gi = gi
	}

	// Water-filling: proportional-by-weight allocation with per-group caps;
	// capped groups' excess is redistributed among uncapped groups. Each
	// round classifies against the round's starting `remaining`, then
	// subtracts the caps in group order — the float operation order is part
	// of the determinism contract.
	cur := d.wfActive[:0]
	for j := range d.groups {
		cur = append(cur, j)
	}
	nxt := d.wfNext[:0]
	capped := d.wfCapped[:0]
	remaining := total
	for len(cur) > 0 && remaining > 1e-9 {
		var sumW float64
		for _, j := range cur {
			sumW += d.groups[j].weight
		}
		if sumW <= 0 {
			break
		}
		capped = capped[:0]
		nxt = nxt[:0]
		for _, j := range cur {
			g := &d.groups[j]
			tent := remaining * g.weight / sumW
			if g.cap > 0 && tent >= g.cap {
				capped = append(capped, j)
			} else {
				nxt = append(nxt, j)
			}
		}
		if len(capped) == 0 {
			for _, j := range cur {
				g := &d.groups[j]
				g.alloc = remaining * g.weight / sumW
			}
			break
		}
		for _, j := range capped {
			g := &d.groups[j]
			g.alloc = g.cap
			remaining -= g.cap
		}
		if remaining < 0 {
			remaining = 0
		}
		cur, nxt = nxt, cur
	}
	d.wfActive, d.wfNext, d.wfCapped = cur[:0], nxt[:0], capped[:0]

	// Within a group, CFQ services flows round-robin: equal split.
	// Write flows stream at WriteFactor of their allocated rate.
	wf := d.p.WriteFactor
	if wf == 0 {
		wf = 1
	}
	for j := range d.groups {
		g := &d.groups[j]
		g.perFlow = g.alloc / float64(g.nflows)
	}
	for _, f := range d.flows {
		per := d.groups[f.gi].perFlow
		if f.write {
			f.rate = per * wf
		} else {
			f.rate = per
		}
	}
	d.scheduleCompletion()
}

// scheduleCompletion arms a timer for the earliest flow completion under
// the current rates.
func (d *Device) scheduleCompletion() {
	next := math.Inf(1)
	for _, f := range d.flows {
		if f.rate > 0 {
			t := f.bytesRem / f.rate
			if t < next {
				next = t
			}
		}
	}
	d.cancelTimer()
	if !math.IsInf(next, 1) {
		d.epoch++
		d.armedEpoch = d.epoch
		d.timer = d.eng.After(next, d.onTimer)
	}
}

func (d *Device) completeDrained() {
	kept := d.flows[:0]
	for _, f := range d.flows {
		// A flow is done when less than a nanosecond of work remains at
		// its current rate (plus an absolute floor for idle rates). A
		// fixed byte tolerance is not enough: clock arithmetic like
		// (t0+dt)-t0 loses ~1e-13 s of precision, which at 100 MB/s
		// leaves ~1e-5 bytes behind and would otherwise reschedule
		// zero-length timers forever (a Zeno loop).
		tiny := 1e-6 + f.rate*1e-9
		if f.bytesRem <= tiny {
			f.bytesRem = 0
			f.done = true
			d.totalBytes += f.bytes
			d.eng.Wake(f.proc)
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(d.flows); i++ {
		d.flows[i] = nil
	}
	d.flows = kept
}

func (d *Device) cancelTimer() {
	d.timer.Stop()
	d.timer = sim.Timer{}
	d.epoch++
}
