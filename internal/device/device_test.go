package device

import (
	"math"
	"testing"

	"tango/internal/blkio"
	"tango/internal/sim"
)

// flatParams returns a device with no latency and no seek thrash so share
// arithmetic can be checked exactly.
func flatParams(peak float64) Params {
	return Params{Name: "flat", PeakBandwidth: peak, MinEfficiency: 1, SeekThrash: 0}
}

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	var elapsed float64
	eng.Spawn("reader", func(p *sim.Proc) {
		elapsed = d.Read(p, cg, 1000)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, elapsed, 10, 1e-9, "1000 bytes at 100 B/s")
	almost(t, d.TotalBytes(), 1000, 1e-9, "total bytes")
}

func TestEqualWeightsSplitEvenly(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	a, b := blkio.NewCgroup("a"), blkio.NewCgroup("b")
	var ta, tb float64
	eng.Spawn("a", func(p *sim.Proc) { ta = d.Read(p, a, 1000) })
	eng.Spawn("b", func(p *sim.Proc) { tb = d.Read(p, b, 1000) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Both at 50 B/s for the duration: both finish at t=20.
	almost(t, ta, 20, 1e-9, "flow a")
	almost(t, tb, 20, 1e-9, "flow b")
}

func TestWeightedShares(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	a, b := blkio.NewCgroup("a"), blkio.NewCgroup("b")
	a.SetWeight(300)
	b.SetWeight(100)
	var ta, tb float64
	eng.Spawn("a", func(p *sim.Proc) { ta = d.Read(p, a, 900) })
	eng.Spawn("b", func(p *sim.Proc) { tb = d.Read(p, b, 900) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// a gets 75 B/s, b 25 B/s. a finishes at t=12. Then b has
	// 900-25*12 = 600 bytes left at full 100 B/s -> finishes at t=18.
	almost(t, ta, 12, 1e-9, "heavy flow")
	almost(t, tb, 18, 1e-9, "light flow")
}

func TestStaticWeightDoesNotIsolate(t *testing.T) {
	// The Motivation-2 phenomenon: with equal weights, a target app's
	// share shrinks as more competitors join.
	share := func(nCompetitors int) float64 {
		eng := sim.NewEngine()
		d := New(eng, flatParams(100))
		target := blkio.NewCgroup("target")
		var elapsed float64
		eng.Spawn("target", func(p *sim.Proc) { elapsed = d.Read(p, target, 100) })
		for i := 0; i < nCompetitors; i++ {
			cg := blkio.NewCgroup("noise")
			eng.Spawn("noise", func(p *sim.Proc) { d.Read(p, cg, 1e9) })
		}
		eng.Run(1e9)
		return 100 / elapsed // perceived bandwidth
	}
	if s1, s2 := share(1), share(2); !(s2 < s1) {
		t.Fatalf("share should shrink with competitors: 1->%v 2->%v", s1, s2)
	}
	almost(t, share(1), 50, 1e-6, "one competitor: half")
	almost(t, share(2), 100.0/3, 1e-6, "two competitors: third")
}

func TestThrottleCapsRate(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	cg.SetReadBpsLimit(10)
	var elapsed float64
	eng.Spawn("a", func(p *sim.Proc) { elapsed = d.Read(p, cg, 100) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, elapsed, 10, 1e-9, "throttled to 10 B/s")
}

func TestThrottleExcessRedistributed(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	a, b := blkio.NewCgroup("a"), blkio.NewCgroup("b")
	a.SetReadBpsLimit(20)
	var ta, tb float64
	eng.Spawn("a", func(p *sim.Proc) { ta = d.Read(p, a, 200) })
	eng.Spawn("b", func(p *sim.Proc) { tb = d.Read(p, b, 800) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// a capped at 20, b gets the remaining 80: both finish at t=10.
	almost(t, ta, 10, 1e-9, "capped flow")
	almost(t, tb, 10, 1e-9, "beneficiary flow")
}

func TestRuntimeWeightChangeReshapesInFlight(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	a, b := blkio.NewCgroup("a"), blkio.NewCgroup("b")
	var ta float64
	eng.Spawn("a", func(p *sim.Proc) { ta = d.Read(p, a, 1000) })
	eng.Spawn("b", func(p *sim.Proc) { d.Read(p, b, 1e6) })
	eng.Spawn("adjuster", func(p *sim.Proc) {
		p.Sleep(10)
		a.SetWeight(900) // 900:100 -> a gets 90 B/s from t=10
	})
	eng.Run(1e6)
	// t<10: a at 50 B/s -> 500 bytes done. After: 500 bytes at 90 B/s
	// -> 5.555..s more.
	almost(t, ta, 10+500.0/90, 1e-6, "reweighted flow")
}

func TestSeekThrashCollapsesAggregate(t *testing.T) {
	eng := sim.NewEngine()
	p := flatParams(100)
	p.SeekThrash = 0.5
	p.MinEfficiency = 0.1
	d := New(eng, p)
	if got := d.EffectiveBandwidth(1); got != 100 {
		t.Fatalf("eff bw(1) = %v", got)
	}
	almost(t, d.EffectiveBandwidth(2), 100/1.5, 1e-9, "two flows")
	almost(t, d.EffectiveBandwidth(3), 100/2.0, 1e-9, "three flows")
	// Floor applies far out.
	almost(t, d.EffectiveBandwidth(1000), 10, 1e-9, "min efficiency floor")
}

func TestRequestLatencyCharged(t *testing.T) {
	eng := sim.NewEngine()
	p := flatParams(100)
	p.RequestLatency = 0.5
	d := New(eng, p)
	cg := blkio.NewCgroup("a")
	var elapsed float64
	eng.Spawn("a", func(p *sim.Proc) { elapsed = d.Read(p, cg, 100) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, elapsed, 1.5, 1e-9, "latency + stream")
}

func TestZeroByteTransfer(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	var elapsed float64
	eng.Spawn("a", func(p *sim.Proc) { elapsed = d.Read(p, cg, 0) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, elapsed, 0, 1e-12, "zero-byte read")
}

func TestWriteAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	eng.Spawn("a", func(p *sim.Proc) {
		d.Write(p, cg, 300)
		d.Read(p, cg, 200)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, cg.BytesWritten(), 300, 0, "bytes written")
	almost(t, cg.BytesRead(), 200, 0, "bytes read")
}

func TestReadWriteThrottledIndependently(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	cg.SetReadBpsLimit(10)
	var tw float64
	eng.Spawn("w", func(p *sim.Proc) { tw = d.Write(p, cg, 450) })
	eng.Spawn("r", func(p *sim.Proc) { d.Read(p, cg, 1000) })
	eng.Run(1e6)
	// Read capped at 10; write group (same weight) takes 45 after
	// water-filling (read r-group and write w-group have equal weight 100;
	// read capped at 10, excess to write: write gets 90).
	almost(t, tw, 5, 1e-9, "write not limited by read throttle")
}

func TestCapacityReservation(t *testing.T) {
	eng := sim.NewEngine()
	p := flatParams(100)
	p.Capacity = 1000
	d := New(eng, p)
	if err := d.Reserve(600); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(500); err == nil {
		t.Fatal("over-capacity reservation should fail")
	}
	d.Release(200)
	if err := d.Reserve(500); err != nil {
		t.Fatalf("after release: %v", err)
	}
	almost(t, d.Used(), 900, 0, "used bytes")
}

func TestBusyTimeAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	eng.Spawn("a", func(p *sim.Proc) {
		p.Sleep(5)
		d.Read(p, cg, 1000) // 10 s busy
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, d.BusyTime(), 10, 1e-9, "busy time")
}

func TestDeterministicManyFlows(t *testing.T) {
	run := func() []float64 {
		eng := sim.NewEngine()
		p := flatParams(100)
		p.SeekThrash = 0.3
		p.MinEfficiency = 0.2
		d := New(eng, p)
		out := make([]float64, 8)
		for i := 0; i < 8; i++ {
			i := i
			cg := blkio.NewCgroup("cg")
			cg.SetWeight(100 + 100*i)
			eng.Spawn("f", func(pr *sim.Proc) {
				pr.Sleep(float64(i) * 0.1)
				out[i] = d.Read(pr, cg, float64(1000+i*100))
			})
		}
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPresetsValid(t *testing.T) {
	for _, p := range []Params{HDD("h"), SSD("s"), NVMe("n")} {
		if err := p.validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", p.Name, err)
		}
	}
	if !(HDD("h").PeakBandwidth < SSD("s").PeakBandwidth) {
		t.Fatal("HDD should be slower than SSD")
	}
	if !(SSD("s").PeakBandwidth < NVMe("n").PeakBandwidth) {
		t.Fatal("SSD should be slower than NVMe")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid params")
		}
	}()
	New(sim.NewEngine(), Params{Name: "bad"})
}
