package device

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tango/internal/blkio"
	"tango/internal/sim"
)

// TestConservationOfBytes: whatever is submitted is eventually served,
// exactly once, regardless of weights, throttles, and arrival patterns.
func TestConservationOfBytes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		p := Params{
			Name:          "dev",
			PeakBandwidth: 50 + rng.Float64()*200,
			SeekThrash:    rng.Float64() * 0.5,
			MinEfficiency: 0.1 + rng.Float64()*0.5,
		}
		d := New(eng, p)
		var want float64
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			bytes := 10 + rng.Float64()*1000
			want += bytes
			cg := blkio.NewCgroup("cg")
			cg.SetWeight(100 + rng.Intn(900))
			if rng.Intn(3) == 0 {
				cg.SetReadBpsLimit(5 + rng.Float64()*50)
			}
			delay := rng.Float64() * 5
			write := rng.Intn(2) == 0
			eng.Spawn("f", func(pr *sim.Proc) {
				pr.Sleep(delay)
				if write {
					d.Write(pr, cg, bytes)
				} else {
					d.Read(pr, cg, bytes)
				}
			})
		}
		if err := eng.RunAll(); err != nil {
			return false
		}
		diff := d.TotalBytes() - want
		return diff < 1e-6 && diff > -1e-6 && d.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateNeverExceedsEffectiveBandwidth: over any busy interval the
// device cannot serve more than peak bandwidth times the interval (the
// efficiency factor only lowers this).
func TestAggregateNeverExceedsEffectiveBandwidth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		p := Params{Name: "dev", PeakBandwidth: 100, SeekThrash: 0.3, MinEfficiency: 0.2}
		d := New(eng, p)
		for i := 0; i < 5; i++ {
			bytes := 100 + rng.Float64()*2000
			cg := blkio.NewCgroup("cg")
			eng.Spawn("f", func(pr *sim.Proc) {
				pr.Sleep(rng.Float64() * 3)
				d.Read(pr, cg, bytes)
			})
		}
		if err := eng.RunAll(); err != nil {
			return false
		}
		// bytes served <= peak * busyTime (efficiency <= 1).
		return d.TotalBytes() <= p.PeakBandwidth*d.BusyTime()*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedFairness: two flows whose sizes are proportional to their
// weights must finish at the same instant — the defining property of
// proportional sharing.
func TestWeightedFairness(t *testing.T) {
	for _, ratio := range []struct{ w1, w2 int }{{100, 100}, {200, 100}, {900, 100}, {500, 250}} {
		eng := sim.NewEngine()
		d := New(eng, Params{Name: "dev", PeakBandwidth: 100, MinEfficiency: 1})
		a, b := blkio.NewCgroup("a"), blkio.NewCgroup("b")
		a.SetWeight(ratio.w1)
		b.SetWeight(ratio.w2)
		bytes := 10000.0
		var ta, tb float64
		eng.Spawn("a", func(p *sim.Proc) { ta = d.Read(p, a, bytes*float64(ratio.w1)) })
		eng.Spawn("b", func(p *sim.Proc) { tb = d.Read(p, b, bytes*float64(ratio.w2)) })
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		if diff := ta - tb; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("w=%d:%d flows did not finish together: %v vs %v", ratio.w1, ratio.w2, ta, tb)
		}
	}
}

// TestWeightChangeConservesWork: adjusting weights mid-flight must not
// create or destroy bytes.
func TestWeightChangeConservesWork(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Params{Name: "dev", PeakBandwidth: 100, MinEfficiency: 1})
	a, b := blkio.NewCgroup("a"), blkio.NewCgroup("b")
	eng.Spawn("a", func(p *sim.Proc) { d.Read(p, a, 3000) })
	eng.Spawn("b", func(p *sim.Proc) { d.Read(p, b, 3000) })
	eng.Spawn("chaos", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 20; i++ {
			p.Sleep(rng.Float64() * 3)
			a.SetWeight(100 + rng.Intn(900))
			b.SetWeight(100 + rng.Intn(900))
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := d.TotalBytes(); got != 6000 {
		t.Fatalf("total bytes = %v, want 6000", got)
	}
	if a.BytesRead() != 3000 || b.BytesRead() != 3000 {
		t.Fatalf("per-cgroup accounting: %v, %v", a.BytesRead(), b.BytesRead())
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	eng := sim.NewEngine()
	p := Params{Name: "dev", PeakBandwidth: 100, MinEfficiency: 1, Scheduler: FIFO}
	d := New(eng, p)
	long, short := blkio.NewCgroup("long"), blkio.NewCgroup("short")
	short.SetWeight(1000) // weights are ignored under FIFO
	var tLong, tShort float64
	eng.Spawn("long", func(pr *sim.Proc) { tLong = d.Read(pr, long, 10000) })
	eng.Spawn("short", func(pr *sim.Proc) {
		pr.Sleep(1)
		tShort = d.Read(pr, short, 100)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Long flow finishes at 100s; short waited from t=1 to t=100 then
	// ran 1s: elapsed 100s despite needing 1s of service.
	if tLong != 100 {
		t.Fatalf("long = %v", tLong)
	}
	if tShort < 99 || tShort > 101 {
		t.Fatalf("short = %v, want head-of-line blocked ~100", tShort)
	}
}

func TestFIFOStillConservesBytes(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, Params{Name: "dev", PeakBandwidth: 100, MinEfficiency: 1, Scheduler: FIFO})
	for i := 0; i < 5; i++ {
		cg := blkio.NewCgroup("cg")
		eng.Spawn("f", func(pr *sim.Proc) { d.Read(pr, cg, 100) })
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if d.TotalBytes() != 500 {
		t.Fatalf("bytes = %v", d.TotalBytes())
	}
	if eng.Now() != 5 {
		t.Fatalf("finished at %v, want 5 (serial service)", eng.Now())
	}
}

func TestSchedulerString(t *testing.T) {
	if ProportionalShare.String() == "" || FIFO.String() == "" || Scheduler(9).String() == "" {
		t.Fatal("scheduler names")
	}
}

func TestWriteFactorSlowsWrites(t *testing.T) {
	eng := sim.NewEngine()
	p := Params{Name: "dev", PeakBandwidth: 100, MinEfficiency: 1, WriteFactor: 0.5}
	d := New(eng, p)
	cg := blkio.NewCgroup("a")
	var tr, tw float64
	eng.Spawn("r", func(pr *sim.Proc) { tr = d.Read(pr, cg, 1000) })
	eng.Spawn("w", func(pr *sim.Proc) {
		pr.Sleep(20) // after the read drains: solo write
		tw = d.Write(pr, cg, 1000)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, tr, 10, 1e-9, "read at full rate")
	almost(t, tw, 20, 1e-9, "write at half rate")
}

func TestWriteFactorValidation(t *testing.T) {
	bad := Params{Name: "dev", PeakBandwidth: 1, MinEfficiency: 1, WriteFactor: 1.5}
	if err := bad.validate(); err == nil {
		t.Fatal("WriteFactor > 1 accepted")
	}
	ok := bad
	ok.WriteFactor = 0 // unset = 1
	if err := ok.validate(); err != nil {
		t.Fatal(err)
	}
}
