package device

import (
	"errors"
	"testing"

	"tango/internal/blkio"
	"tango/internal/sim"
)

func TestCancelMidFlightAccountsPartialBytes(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	var tok Token
	var elapsed float64
	var err error
	eng.Spawn("reader", func(p *sim.Proc) {
		elapsed, err = d.TryReadCancel(p, cg, 1000, &tok)
	})
	eng.Spawn("canceller", func(p *sim.Proc) {
		p.Sleep(4)
		if !tok.Cancel() {
			t.Error("mid-flight cancel should succeed")
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	almost(t, elapsed, 4, 1e-9, "cancelled at t=4")
	almost(t, tok.Moved(), 400, 1e-9, "partial bytes at 100 B/s")
	almost(t, d.TotalBytes(), 400, 1e-9, "device credits partial progress")
	almost(t, cg.BytesRead(), 400, 1e-9, "cgroup accounting of partial bytes")
}

func TestCancelDuringLatencyMovesNothing(t *testing.T) {
	eng := sim.NewEngine()
	pp := flatParams(100)
	pp.RequestLatency = 0.5
	d := New(eng, pp)
	cg := blkio.NewCgroup("a")
	var tok Token
	var err error
	eng.Spawn("reader", func(p *sim.Proc) {
		_, err = d.TryReadCancel(p, cg, 1000, &tok)
	})
	eng.Spawn("canceller", func(p *sim.Proc) {
		p.Sleep(0.2) // inside the latency phase: no flow exists yet
		if !tok.Cancel() {
			t.Error("pre-flow cancel should succeed")
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	almost(t, tok.Moved(), 0, 0, "no bytes before the flow starts")
	almost(t, d.TotalBytes(), 0, 0, "device untouched")
}

func TestCancelAfterCompletionIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	var tok Token
	eng.Spawn("reader", func(p *sim.Proc) {
		if _, err := d.TryReadCancel(p, cg, 1000, &tok); err != nil {
			t.Errorf("unfaulted read: %v", err)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if tok.Cancel() {
		t.Fatal("cancel after completion must be a no-op")
	}
	almost(t, tok.Moved(), 1000, 0, "full payload reported")
	almost(t, d.TotalBytes(), 1000, 0, "payload accounted once")
}

func TestStaleTokenDoesNotCancelLaterFlow(t *testing.T) {
	// A timer firing after its transfer finished must not kill whatever
	// flow reused the struct: the (pointer, id) pair guards recycling.
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	cg := blkio.NewCgroup("a")
	var tok1, tok2 Token
	eng.Spawn("reader", func(p *sim.Proc) {
		if _, err := d.TryReadCancel(p, cg, 100, &tok1); err != nil {
			t.Errorf("first read: %v", err)
		}
		if _, err := d.TryReadCancel(p, cg, 100, &tok2); err != nil {
			t.Errorf("second read: %v", err)
		}
	})
	eng.Spawn("stale", func(p *sim.Proc) {
		p.Sleep(1.5) // mid-second-transfer; tok1's flow is long done
		if tok1.Cancel() {
			t.Error("stale token must not cancel a recycled flow")
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	almost(t, d.TotalBytes(), 200, 1e-9, "both transfers complete")
}

func TestCancelRedistributesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	a, b := blkio.NewCgroup("a"), blkio.NewCgroup("b")
	var tok Token
	var tb float64
	eng.Spawn("a", func(p *sim.Proc) {
		d.TryReadCancel(p, a, 1e6, &tok)
	})
	eng.Spawn("b", func(p *sim.Proc) { tb = d.Read(p, b, 1000) })
	eng.Spawn("canceller", func(p *sim.Proc) {
		p.Sleep(10)
		tok.Cancel()
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// b at 50 B/s until t=10 (500 bytes), then alone at 100 B/s: 5 s more.
	almost(t, tb, 15, 1e-9, "survivor picks up the freed share")
	almost(t, tok.Moved(), 500, 1e-9, "cancelled flow's partial progress")
}

func TestNilTokenDegradesToTryRead(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, flatParams(100))
	d.SetReadError(true)
	cg := blkio.NewCgroup("a")
	var err error
	eng.Spawn("reader", func(p *sim.Proc) {
		_, err = d.TryReadCancel(p, cg, 1000, nil)
	})
	if e := eng.RunAll(); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrRead) {
		t.Fatalf("want ErrRead through nil-token path, got %v", err)
	}
}
