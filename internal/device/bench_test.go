package device

import (
	"fmt"
	"testing"

	"tango/internal/blkio"
	"tango/internal/sim"
)

// benchServiceLoop drives nFlows processes issuing back-to-back small
// reads against one HDD — the device service loop (transfer, reshape,
// water-filling, completion timer) is the whole cost. Reported per
// request.
func benchServiceLoop(b *testing.B, nFlows int) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	d := New(eng, HDD("hdd"))
	perFlow := b.N/nFlows + 1
	for j := 0; j < nFlows; j++ {
		cg := blkio.NewCgroup(fmt.Sprintf("cg%d", j))
		cg.SetWeight(100 + 100*j)
		if j%3 == 1 {
			cg.SetReadBpsLimit(40 * MB) // exercise the water-filling path
		}
		eng.Spawn(fmt.Sprintf("f%d", j), func(p *sim.Proc) {
			for i := 0; i < perFlow; i++ {
				d.Read(p, cg, 4*MB)
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServiceLoop1Flow(b *testing.B)  { benchServiceLoop(b, 1) }
func BenchmarkServiceLoop4Flows(b *testing.B) { benchServiceLoop(b, 4) }
func BenchmarkServiceLoop8Flows(b *testing.B) { benchServiceLoop(b, 8) }

// BenchmarkReshapeChurn measures weight churn against long-lived flows:
// every Touch recomputes the proportional-share allocation for the whole
// flow set, the path the cross-layer controller hits on each weight write.
func BenchmarkReshapeChurn(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	d := New(eng, HDD("hdd"))
	cgs := make([]*blkio.Cgroup, 6)
	for j := range cgs {
		cgs[j] = blkio.NewCgroup(fmt.Sprintf("cg%d", j))
		cgs[j].SetWeight(100 + 10*j)
		cg := cgs[j]
		eng.Spawn(fmt.Sprintf("f%d", j), func(p *sim.Proc) {
			d.Read(p, cg, 1e15) // effectively infinite: stays in-flight
		})
	}
	n := b.N
	eng.Spawn("churn", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			cgs[i%len(cgs)].SetWeight(100 + i%900)
			p.Sleep(0.001)
		}
	})
	if err := eng.Run(float64(n) * 0.001); err != nil {
		b.Fatal(err)
	}
}
