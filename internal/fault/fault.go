// Package fault is a deterministic fault-injection subsystem for the
// simulated storage stack. A Plan is a virtual-time schedule of
// injectable events — device degradations (bandwidth collapse, latency
// spikes, stuck devices, transient read errors), cgroup faults
// (weight-write failures, throttle resets), and workload churn
// (interferers joining, leaving, or changing period mid-run) — and an
// Injector arms the plan against a node, recording every injection and
// clearance through internal/trace.
//
// The paper's premise is that ephemeral-storage interference is dynamic:
// competitors join, leave, and misbehave while the analytics runs. The
// fault layer makes that concrete and repeatable — the same (seed, plan)
// pair always produces byte-identical runs, so graceful degradation is a
// regression-testable property rather than an assumption. Recovery lives
// in the layers themselves: staging retries reads with virtual-time
// backoff and degrades augmentation before violating an error bound,
// core detects estimator regime changes and refits, and blkio/
// coordinator re-apply failed weight writes (see docs/faults.md).
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tango/internal/workload"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// BWCollapse scales the target device's delivered bandwidth by
	// Factor for Duration seconds (a competitor saturating the
	// controller, thermal throttling, RAID rebuild).
	BWCollapse Kind = iota
	// LatencySpike adds Factor seconds of per-request latency on the
	// target device for Duration seconds.
	LatencySpike
	// ReadError makes fallible reads (device.TryRead) on the target
	// device fail for Duration seconds (transient media errors on the
	// capacity tier).
	ReadError
	// Stuck stops all service on the target device for Duration seconds:
	// in-flight flows stall and resume when the fault clears.
	Stuck
	// WeightFail makes blkio weight writes on the target cgroup fail for
	// Duration seconds (cgroupfs rejecting the write).
	WeightFail
	// ThrottleReset clobbers the target cgroup's read throttle to Factor
	// MB/s (0 = removes all throttles) for Duration seconds, then
	// restores the previous limits.
	ThrottleReset
	// Join launches a new interfering container (Noise) at At.
	Join
	// Leave stops the named interferer after its in-flight checkpoint.
	Leave
	// PeriodChange sets the named interferer's checkpoint period to
	// Factor seconds (its producing simulation was rescaled).
	PeriodChange
	// NodeKill takes a whole fleet node out of service for Duration
	// seconds: its sessions are rebalanced to surviving nodes and its L2
	// contents are lost (ephemeral storage does not outlive the node).
	// Interpreted by the cluster coordinator (internal/fleet); a
	// single-node Injector records a skip.
	NodeKill
)

var kindNames = map[Kind]string{
	BWCollapse:    "bw-collapse",
	LatencySpike:  "latency",
	ReadError:     "read-err",
	Stuck:         "stuck",
	WeightFail:    "weight-fail",
	ThrottleReset: "throttle-reset",
	Join:          "join",
	Leave:         "leave",
	PeriodChange:  "period",
	NodeKill:      "node-kill",
}

// String returns the kind's spec-grammar name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// windowed reports whether the kind has a clearance event after Duration.
func (k Kind) windowed() bool {
	switch k {
	case BWCollapse, LatencySpike, ReadError, Stuck, WeightFail, ThrottleReset, NodeKill:
		return true
	}
	return false
}

// DeviceFault reports whether the kind targets a device. Exported for
// cluster-scope plan filtering: internal/fleet arms only device faults
// on each node's local injector and interprets NodeKill itself.
func (k Kind) DeviceFault() bool { return k.deviceFault() }

// deviceFault reports whether the kind targets a device.
func (k Kind) deviceFault() bool {
	switch k {
	case BWCollapse, LatencySpike, ReadError, Stuck:
		return true
	}
	return false
}

// Event is one scheduled fault.
type Event struct {
	At   float64 // virtual time of injection (seconds)
	Kind Kind
	// Target names the faulted object: a device (BWCollapse,
	// LatencySpike, ReadError, Stuck), a cgroup (WeightFail,
	// ThrottleReset), a fleet node (NodeKill), or an interferer (Join,
	// Leave, PeriodChange).
	Target string
	// Factor is the kind-specific magnitude: bandwidth fraction
	// (BWCollapse), extra latency seconds (LatencySpike), read-throttle
	// MB/s (ThrottleReset, 0 = clear), or new period seconds
	// (PeriodChange).
	Factor float64
	// Duration is the fault window in seconds (windowed kinds only).
	Duration float64
	// Noise describes the joining interferer (Join only); Noise.Name
	// must equal Target.
	Noise workload.Noise
}

func (e Event) validate() error {
	if e.At < 0 || math.IsNaN(e.At) {
		return fmt.Errorf("fault: %s at invalid time %v", e.Kind, e.At)
	}
	if e.Target == "" {
		return fmt.Errorf("fault: %s at t=%g has no target", e.Kind, e.At)
	}
	if e.Kind.windowed() && !(e.Duration > 0) {
		return fmt.Errorf("fault: %s on %q needs a positive duration", e.Kind, e.Target)
	}
	switch e.Kind {
	case BWCollapse:
		if e.Factor < 0 || e.Factor > 1 {
			return fmt.Errorf("fault: bw-collapse factor %v out of [0,1]", e.Factor)
		}
	case LatencySpike:
		if e.Factor <= 0 {
			return fmt.Errorf("fault: latency spike needs a positive add, got %v", e.Factor)
		}
	case ThrottleReset:
		if e.Factor < 0 {
			return fmt.Errorf("fault: throttle-reset MB/s %v must be >= 0", e.Factor)
		}
	case PeriodChange:
		if e.Factor <= 0 {
			return fmt.Errorf("fault: period change needs a positive period, got %v", e.Factor)
		}
	case Join:
		if e.Noise.Name != e.Target {
			return fmt.Errorf("fault: join noise name %q != target %q", e.Noise.Name, e.Target)
		}
		if e.Noise.Period <= 0 || e.Noise.CheckpointBytes <= 0 {
			return fmt.Errorf("fault: join %q needs positive period and bytes", e.Target)
		}
	}
	return nil
}

// Plan is a virtual-time schedule of fault events. Plans are immutable
// once armed; the same plan may be armed on any number of nodes (the
// chaos experiment arms one copy per policy run).
type Plan struct {
	Events []Event
}

// Validate checks every event and returns the first problem.
func (p *Plan) Validate() error {
	for _, e := range p.Events {
		if err := e.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Sorted returns the events ordered by injection time (stable, so
// same-instant events keep their plan order).
func (p *Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Horizon returns the virtual time at which the last fault window closes.
func (p *Plan) Horizon() float64 {
	var h float64
	for _, e := range p.Events {
		end := e.At + e.Duration
		if end > h {
			h = end
		}
	}
	return h
}

// String renders the plan in the spec grammar accepted by ParsePlan.
func (p *Plan) String() string {
	var b strings.Builder
	for i, e := range p.Sorted() {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s@%g:", e.Kind, e.At)
		var params []string
		add := func(k string, v string) { params = append(params, k+"="+v) }
		switch {
		case e.Kind.deviceFault():
			add("dev", e.Target)
		case e.Kind == WeightFail || e.Kind == ThrottleReset:
			add("cg", e.Target)
		case e.Kind == NodeKill:
			add("node", e.Target)
		default:
			add("name", e.Target)
		}
		switch e.Kind {
		case BWCollapse:
			add("factor", fmt.Sprintf("%g", e.Factor))
		case LatencySpike:
			add("add", fmt.Sprintf("%g", e.Factor))
		case ThrottleReset:
			add("mb", fmt.Sprintf("%g", e.Factor))
		case PeriodChange:
			add("period", fmt.Sprintf("%g", e.Factor))
		case Join:
			add("period", fmt.Sprintf("%g", e.Noise.Period))
			add("mb", fmt.Sprintf("%g", e.Noise.CheckpointBytes/mb))
			if e.Noise.Phase != 0 {
				add("phase", fmt.Sprintf("%g", e.Noise.Phase))
			}
			if e.Noise.Jitter != 0 {
				add("jitter", fmt.Sprintf("%g", e.Noise.Jitter))
			}
			if e.Noise.Seed != 0 {
				add("seed", fmt.Sprintf("%d", e.Noise.Seed))
			}
		}
		if e.Kind.windowed() {
			add("dur", fmt.Sprintf("%g", e.Duration))
		}
		b.WriteString(strings.Join(params, ","))
	}
	return b.String()
}

const mb = 1024 * 1024
