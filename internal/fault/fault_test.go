package fault

import (
	"strings"
	"testing"

	"tango/internal/container"
	"tango/internal/device"
	"tango/internal/sim"
	"tango/internal/trace"
	"tango/internal/workload"
)

const spec = "bw-collapse@900:dev=hdd,factor=0.2,dur=120; read-err@1500:dev=hdd,dur=45; " +
	"weight-fail@600:cg=analytics,dur=180; join@1800:name=noise7,period=90,mb=512; " +
	"leave@2400:name=noise1; period@3000:name=noise2,period=75"

func TestParseRoundTrip(t *testing.T) {
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 6 {
		t.Fatalf("events = %d", len(p.Events))
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Fatalf("round trip drifted:\n%s\n%s", p, p2)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"",
		"explode@10:dev=hdd,dur=5",              // unknown kind
		"bw-collapse@10:dev=hdd,dur=5",          // missing factor
		"bw-collapse@10:dev=hdd,factor=2,dur=5", // factor out of range
		"bw-collapse@10:factor=0.5,dur=5",       // missing target
		"stuck@10:dev=hdd",                      // windowed kind without duration
		"join@10:name=x,period=60",              // join without mb
		"leave@10:name=x,bogus=1",               // unknown param
		"bw-collapse@ten:dev=hdd,factor=0.5,dur=5",
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("spec %q accepted", s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := GenerateOptions{
		Horizon: 3600, Device: "hdd", Cgroup: "analytics",
		Interferers: []string{"noise1", "noise2"}, Events: 9,
	}
	a, err := Generate(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c, err := Generate(8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical plans")
	}
	if len(a.Events) != 9 {
		t.Fatalf("events = %d", len(a.Events))
	}
	// Generated plans round-trip through the spec grammar.
	if _, err := ParsePlan(a.String()); err != nil {
		t.Fatalf("generated plan does not re-parse: %v", err)
	}
}

func testNode(t *testing.T) *container.Node {
	t.Helper()
	node := container.NewNode("faulttest")
	node.MustAddDevice(device.SSD("ssd"))
	node.MustAddDevice(device.HDD("hdd"))
	return node
}

func TestInjectorDeviceFaultWindowsCompose(t *testing.T) {
	node := testNode(t)
	rec := trace.New(256)
	plan := &Plan{Events: []Event{
		{At: 10, Kind: BWCollapse, Target: "hdd", Factor: 0.5, Duration: 20},
		{At: 15, Kind: BWCollapse, Target: "hdd", Factor: 0.2, Duration: 10},
	}}
	in := NewInjector(node, rec, plan)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	dev := node.Device("hdd")
	check := func(at float64, want bool) {
		node.Engine().At(at, func() {
			if dev.Faulted() != want {
				t.Errorf("t=%g: Faulted() = %v, want %v", at, dev.Faulted(), want)
			}
		})
	}
	check(5, false)
	check(12, true)  // first window open
	check(20, true)  // overlap
	check(27, true)  // second cleared, first still open
	check(35, false) // both cleared
	if err := node.Engine().Run(100); err != nil {
		t.Fatal(err)
	}
	if in.Injected() != 2 || in.Cleared() != 2 || in.Skipped() != 0 {
		t.Fatalf("counts = %d/%d/%d", in.Injected(), in.Cleared(), in.Skipped())
	}
	if got := len(rec.Filter(trace.KindFault)); got != 4 {
		t.Fatalf("fault events = %d, want 4 (2 inject + 2 clear)", got)
	}
}

func TestInjectorReadErrorWindow(t *testing.T) {
	node := testNode(t)
	plan := &Plan{Events: []Event{{At: 10, Kind: ReadError, Target: "hdd", Duration: 20}}}
	in := NewInjector(node, nil, plan)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	dev := node.Device("hdd")
	var during, after error
	node.MustLaunch("reader", func(c *container.Container, p *sim.Proc) {
		p.Sleep(15)
		_, during = dev.TryRead(p, c.Cgroup(), 1024)
		p.Sleep(30)
		_, after = dev.TryRead(p, c.Cgroup(), 1024)
	})
	if err := node.Engine().Run(100); err != nil {
		t.Fatal(err)
	}
	if during == nil {
		t.Fatal("read inside the window succeeded")
	}
	if after != nil {
		t.Fatalf("read after the window failed: %v", after)
	}
}

func TestInjectorWeightFailWindow(t *testing.T) {
	node := testNode(t)
	node.MustLaunch("analytics", func(c *container.Container, p *sim.Proc) { p.Sleep(50) })
	plan := &Plan{Events: []Event{{At: 10, Kind: WeightFail, Target: "analytics", Duration: 10}}}
	in := NewInjector(node, nil, plan)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	cg := node.Cgroups().Lookup("analytics")
	node.Engine().At(15, func() {
		if err := cg.TrySetWeight(500); err == nil {
			t.Error("weight write inside the window succeeded")
		}
	})
	node.Engine().At(25, func() {
		if err := cg.TrySetWeight(500); err != nil {
			t.Errorf("weight write after the window failed: %v", err)
		}
	})
	if err := node.Engine().Run(100); err != nil {
		t.Fatal(err)
	}
	if cg.Weight() != 500 {
		t.Fatalf("weight = %d", cg.Weight())
	}
}

func TestInjectorSkipsMissingTargets(t *testing.T) {
	node := testNode(t)
	rec := trace.New(64)
	plan := &Plan{Events: []Event{
		{At: 5, Kind: WeightFail, Target: "ghost", Duration: 10},
		{At: 6, Kind: Leave, Target: "ghost"},
	}}
	in := NewInjector(node, rec, plan)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(50); err != nil {
		t.Fatal(err)
	}
	if in.Skipped() != 2 || in.Injected() != 0 {
		t.Fatalf("skipped = %d injected = %d", in.Skipped(), in.Injected())
	}
}

func TestInjectorUnknownDeviceRejectedAtArm(t *testing.T) {
	node := testNode(t)
	plan := &Plan{Events: []Event{{At: 5, Kind: Stuck, Target: "nvme", Duration: 1}}}
	if err := NewInjector(node, nil, plan).Arm(); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestInjectorChurn(t *testing.T) {
	node := testNode(t)
	hdd := node.Device("hdd")
	noises := workload.LaunchNoiseSetControlled(node, hdd, []workload.Noise{
		{Name: "n1", Period: 30, CheckpointBytes: device.MB, Seed: 1},
		{Name: "n2", Period: 30, CheckpointBytes: device.MB, Seed: 2},
	})
	plan := &Plan{Events: []Event{
		{At: 40, Kind: Leave, Target: "n1"},
		{At: 40, Kind: PeriodChange, Target: "n2", Factor: 75},
		{At: 50, Kind: Join, Target: "extra", Noise: workload.Noise{
			Name: "extra", Period: 60, CheckpointBytes: device.MB, Seed: 3,
		}},
	}}
	in := NewInjector(node, nil, plan)
	in.RegisterNoise(noises)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(200); err != nil {
		t.Fatal(err)
	}
	if !noises["n1"].Stopped() {
		t.Fatal("leave did not stop the interferer")
	}
	if noises["n2"].Stopped() {
		t.Fatal("period change stopped the interferer")
	}
	if node.Container("extra") == nil {
		t.Fatal("join did not launch the interferer")
	}
	if in.Injected() != 3 {
		t.Fatalf("injected = %d", in.Injected())
	}
}

func TestUnpaired(t *testing.T) {
	evs := []trace.Event{
		{T: 10, Kind: trace.KindFault, Msg: "inject id=0 kind=stuck dev=hdd"},
		{T: 12, Kind: trace.KindRecover, Msg: "retry dev=hdd attempt=1"},
		{T: 20, Kind: trace.KindFault, Msg: "inject id=1 kind=leave name=n1"},
		{T: 21, Kind: trace.KindFault, Msg: "clear id=0 kind=stuck dev=hdd"},
	}
	up := Unpaired(evs)
	if len(up) != 1 || !strings.Contains(up[0].Msg, "id=1") {
		t.Fatalf("unpaired = %+v", up)
	}
	evs = append(evs, trace.Event{T: 30, Kind: trace.KindRefit, Msg: "regime change"})
	if got := Unpaired(evs); len(got) != 0 {
		t.Fatalf("unpaired after refit = %+v", got)
	}
}

func TestNodeKillParseRoundTrip(t *testing.T) {
	p, err := ParsePlan("node-kill@120:node=node3,dur=180")
	if err != nil {
		t.Fatal(err)
	}
	e := p.Events[0]
	if e.Kind != NodeKill || e.Target != "node3" || e.At != 120 || e.Duration != 180 {
		t.Fatalf("parsed %+v", e)
	}
	if got := p.String(); got != "node-kill@120:node=node3,dur=180" {
		t.Fatalf("round trip: %q", got)
	}
	if _, err := ParsePlan("node-kill@120:node=node3"); err == nil {
		t.Fatal("node-kill without dur should be rejected (windowed)")
	}
}

func TestInjectorSkipsNodeKill(t *testing.T) {
	node := container.NewNode("n")
	eng := node.Engine()
	node.MustAddDevice(device.HDD("hdd"))
	rec := trace.New(64)
	plan, err := ParsePlan("node-kill@10:node=node0,dur=60")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(node, rec, plan)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if in.Skipped() != 1 || in.Injected() != 0 {
		t.Fatalf("skipped=%d injected=%d, want 1/0 (node kills are cluster-level)", in.Skipped(), in.Injected())
	}
}
