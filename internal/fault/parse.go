package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"tango/internal/workload"
)

// ParsePlan parses the textual plan spec used by `tangosim -faults`
// (grammar documented in docs/faults.md):
//
//	plan  := event (';' event)*
//	event := kind '@' seconds ':' key '=' value (',' key '=' value)*
//
// Example:
//
//	bw-collapse@900:dev=hdd,factor=0.2,dur=120; read-err@1500:dev=hdd,dur=45;
//	weight-fail@600:cg=analytics,dur=180; join@1800:name=noise7,period=90,mb=512;
//	leave@2400:name=noise1; period@3000:name=noise2,period=75
//
// Sizes are MB, times and durations seconds; String() round-trips.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("fault: empty plan spec")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseEvent(s string) (Event, error) {
	head, params, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q missing ':' before params", s)
	}
	kindStr, atStr, ok := strings.Cut(strings.TrimSpace(head), "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q missing '@time'", s)
	}
	var kind Kind
	found := false
	for k, name := range kindNames {
		if name == strings.TrimSpace(kindStr) {
			kind, found = k, true
			break
		}
	}
	if !found {
		return Event{}, fmt.Errorf("fault: unknown kind %q (want one of %s)", kindStr, allKindNames())
	}
	at, err := strconv.ParseFloat(strings.TrimSpace(atStr), 64)
	if err != nil {
		return Event{}, fmt.Errorf("fault: bad time in %q: %v", s, err)
	}
	ev := Event{At: at, Kind: kind}
	kv := map[string]string{}
	for _, pair := range strings.Split(params, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return Event{}, fmt.Errorf("fault: param %q in %q is not key=value", pair, s)
		}
		kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	num := func(key string) (float64, bool, error) {
		v, ok := kv[key]
		if !ok {
			return 0, false, nil
		}
		delete(kv, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false, fmt.Errorf("fault: bad %s in %q: %v", key, s, err)
		}
		return f, true, nil
	}
	str := func(key string) string {
		v := kv[key]
		delete(kv, key)
		return v
	}

	switch {
	case kind.deviceFault():
		ev.Target = str("dev")
	case kind == WeightFail || kind == ThrottleReset:
		ev.Target = str("cg")
	case kind == NodeKill:
		ev.Target = str("node")
	default:
		ev.Target = str("name")
	}
	if d, ok, err := num("dur"); err != nil {
		return Event{}, err
	} else if ok {
		ev.Duration = d
	}
	factorKey := map[Kind]string{
		BWCollapse: "factor", LatencySpike: "add",
		ThrottleReset: "mb", PeriodChange: "period",
	}[kind]
	if factorKey != "" {
		if f, ok, err := num(factorKey); err != nil {
			return Event{}, err
		} else if ok {
			ev.Factor = f
		} else if kind != ThrottleReset {
			return Event{}, fmt.Errorf("fault: %s in %q needs %s=", kind, s, factorKey)
		}
	}
	if kind == Join {
		n := workload.Noise{Name: ev.Target, Jitter: 0.08}
		var ok bool
		var err error
		if n.Period, ok, err = num("period"); err != nil || !ok {
			return Event{}, fmt.Errorf("fault: join in %q needs period= (err: %v)", s, err)
		}
		var sizeMB float64
		if sizeMB, ok, err = num("mb"); err != nil || !ok {
			return Event{}, fmt.Errorf("fault: join in %q needs mb= (err: %v)", s, err)
		}
		n.CheckpointBytes = sizeMB * mb
		if v, ok, err := num("phase"); err != nil {
			return Event{}, err
		} else if ok {
			n.Phase = v
		}
		if v, ok, err := num("jitter"); err != nil {
			return Event{}, err
		} else if ok {
			n.Jitter = v
		}
		if v, ok, err := num("seed"); err != nil {
			return Event{}, err
		} else if ok {
			n.Seed = int64(v)
		} else {
			// Deterministic default: derived from the name so the same
			// spec always drives the same jitter stream.
			n.Seed = int64(7000 + len(n.Name)*131 + int(n.Period))
		}
		ev.Noise = n
	}
	if len(kv) > 0 {
		var extra []string
		for k := range kv {
			extra = append(extra, k)
		}
		// Sorted for a deterministic message.
		sort.Strings(extra)
		return Event{}, fmt.Errorf("fault: unknown params %v in %q", extra, s)
	}
	return ev, nil
}

func allKindNames() string {
	var names []string
	for k := BWCollapse; k <= NodeKill; k++ {
		names = append(names, k.String())
	}
	return strings.Join(names, "|")
}

// GenerateOptions parameterizes Generate.
type GenerateOptions struct {
	// Horizon bounds injection times: faults land in
	// [0.1·Horizon, 0.85·Horizon] so recovery is observable before the
	// run ends. Required.
	Horizon float64
	// Device is the device faults target (required for device kinds).
	Device string
	// Cgroup is the cgroup faults target (required for cgroup kinds).
	Cgroup string
	// Interferers are existing interferer names eligible for Leave and
	// PeriodChange churn (none = no such events).
	Interferers []string
	// Events is the number of faults to draw (default 6).
	Events int
}

// Generate draws a seed-deterministic random plan: same (seed, opts) ⇒
// identical plan. It cycles through the fault kinds applicable to the
// given targets so every class appears before any repeats.
func Generate(seed int64, opts GenerateOptions) (*Plan, error) {
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("fault: Generate needs a positive horizon")
	}
	if opts.Events == 0 {
		opts.Events = 6
	}
	var kinds []Kind
	if opts.Device != "" {
		kinds = append(kinds, BWCollapse, LatencySpike, ReadError, Stuck)
	}
	if opts.Cgroup != "" {
		kinds = append(kinds, WeightFail, ThrottleReset)
	}
	if opts.Device != "" {
		kinds = append(kinds, Join)
	}
	if len(opts.Interferers) > 0 {
		kinds = append(kinds, Leave, PeriodChange)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("fault: Generate needs at least one of Device, Cgroup, Interferers")
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}
	joined := 0
	for i := 0; i < opts.Events; i++ {
		k := kinds[i%len(kinds)]
		at := opts.Horizon * (0.1 + 0.75*rng.Float64())
		dur := opts.Horizon * (0.02 + 0.06*rng.Float64())
		ev := Event{At: at, Kind: k, Duration: dur}
		switch k {
		case BWCollapse:
			ev.Target = opts.Device
			ev.Factor = 0.1 + 0.4*rng.Float64()
		case LatencySpike:
			ev.Target = opts.Device
			ev.Factor = 0.02 + 0.08*rng.Float64()
		case ReadError, Stuck:
			ev.Target = opts.Device
			if k == Stuck {
				ev.Duration = minf(ev.Duration, 30)
			}
		case WeightFail:
			ev.Target = opts.Cgroup
		case ThrottleReset:
			ev.Target = opts.Cgroup
			ev.Factor = 20 + 40*rng.Float64()
		case Join:
			joined++
			name := fmt.Sprintf("chaos%d", joined)
			ev.Target = name
			ev.Duration = 0
			ev.Noise = workload.Noise{
				Name:            name,
				Period:          60 + 120*rng.Float64(),
				CheckpointBytes: (256 + 512*rng.Float64()) * mb,
				Jitter:          0.08,
				Seed:            seed + int64(1000+joined),
			}
		case Leave, PeriodChange:
			ev.Target = opts.Interferers[rng.Intn(len(opts.Interferers))]
			ev.Duration = 0
			if k == PeriodChange {
				ev.Factor = 45 + 90*rng.Float64()
			}
		}
		p.Events = append(p.Events, ev)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
