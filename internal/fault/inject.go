package fault

import (
	"fmt"

	"tango/internal/blkio"
	"tango/internal/container"
	"tango/internal/device"
	"tango/internal/trace"
	"tango/internal/workload"
)

// Injector arms a Plan against one node: every event is scheduled on the
// node's engine, applied in sim context, and recorded (injection and
// clearance) through the trace recorder with trace.KindFault events.
//
// Overlapping device faults compose: the injected bandwidth factor is
// the minimum of the active collapses, extra latency is the sum of the
// active spikes, and read errors stay active while any read-error window
// is open. Cgroup weight-write faults are reference-counted the same
// way. Throttle resets save and restore the previous limits and must not
// overlap on one cgroup.
//
// An Injector belongs to one engine; like the rest of the sim stack it
// is deterministic — arming the same plan on an identically-seeded node
// yields a byte-identical event stream.
type Injector struct {
	node    *container.Node
	rec     *trace.Recorder
	plan    *Plan
	handles map[string]*workload.Handle
	armed   bool

	active     map[string][]deviceFault // device name -> open windows
	weightFail map[string]int           // cgroup name -> open windows
	injected   int
	cleared    int
	skipped    int
}

type deviceFault struct {
	id       int
	kind     Kind
	bwFactor float64
	latency  float64
}

// NewInjector binds a validated plan to a node. The recorder may be nil
// (faults still inject, nothing is recorded). It panics on an invalid
// plan — plans are validated at parse/construction time, so this is a
// programmer error.
func NewInjector(node *container.Node, rec *trace.Recorder, plan *Plan) *Injector {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		node:       node,
		rec:        rec,
		plan:       plan,
		handles:    map[string]*workload.Handle{},
		active:     map[string][]deviceFault{},
		weightFail: map[string]int{},
	}
}

// RegisterNoise makes already-running interferers addressable by Leave
// and PeriodChange events. Interferers the injector launches itself
// (Join) are registered automatically.
func (in *Injector) RegisterNoise(handles map[string]*workload.Handle) {
	for name, h := range handles {
		in.handles[name] = h
	}
}

// Arm schedules every plan event on the node's engine. Device targets
// are validated eagerly; cgroup and interferer targets are resolved at
// fire time (sessions attach after arming), and a still-missing target
// skips the event with a recorded "skip" fault event. Arm may be called
// once.
func (in *Injector) Arm() error {
	if in.armed {
		return fmt.Errorf("fault: injector already armed")
	}
	for _, e := range in.plan.Events {
		if e.Kind.deviceFault() || e.Kind == Join {
			dev := in.targetDevice(e)
			if in.node.Device(dev) == nil {
				return fmt.Errorf("fault: %s targets unknown device %q", e.Kind, dev)
			}
		}
	}
	in.armed = true
	eng := in.node.Engine()
	for i, e := range in.plan.Sorted() {
		id, e := i, e
		eng.At(e.At, func() { in.fire(id, e) })
	}
	return nil
}

// targetDevice returns the device an event touches (for Join, the device
// the interferer writes to: the slowest tier).
func (in *Injector) targetDevice(e Event) string {
	if e.Kind == Join {
		tiers := in.node.Tiers()
		return tiers[len(tiers)-1].Name()
	}
	return e.Target
}

// Injected, Cleared, and Skipped report event counts so far.
func (in *Injector) Injected() int { return in.injected }
func (in *Injector) Cleared() int  { return in.cleared }
func (in *Injector) Skipped() int  { return in.skipped }

func (in *Injector) emit(kind, format string, args ...any) {
	in.rec.Emit(in.node.Engine().Now(), "injector", kind, format, args...)
}

// fire applies one event in sim context.
func (in *Injector) fire(id int, e Event) {
	switch {
	case e.Kind.deviceFault():
		in.fireDevice(id, e)
	case e.Kind == WeightFail:
		in.fireWeightFail(id, e)
	case e.Kind == ThrottleReset:
		in.fireThrottleReset(id, e)
	case e.Kind == Join:
		in.fireJoin(id, e)
	case e.Kind == NodeKill:
		// Node kills are cluster-level: internal/fleet interprets them at
		// epoch barriers. A single-node injector has no fleet to act on.
		in.skipped++
		in.emit(trace.KindFault, "skip id=%d kind=node-kill node=%s (no cluster)", id, e.Target)
	default: // Leave, PeriodChange
		in.fireChurn(id, e)
	}
}

func (in *Injector) fireDevice(id int, e Event) {
	dev := in.node.Device(e.Target)
	df := deviceFault{id: id, kind: e.Kind, bwFactor: 1}
	switch e.Kind {
	case BWCollapse:
		df.bwFactor = e.Factor
	case LatencySpike:
		df.latency = e.Factor
	case Stuck:
		df.bwFactor = 0
	}
	in.active[e.Target] = append(in.active[e.Target], df)
	in.applyDeviceState(dev)
	in.injected++
	in.emit(trace.KindFault, "inject id=%d kind=%s dev=%s factor=%g dur=%g", id, e.Kind, e.Target, e.Factor, e.Duration)
	in.node.Engine().After(e.Duration, func() {
		open := in.active[e.Target][:0]
		for _, f := range in.active[e.Target] {
			if f.id != id {
				open = append(open, f)
			}
		}
		in.active[e.Target] = open
		in.applyDeviceState(dev)
		in.cleared++
		in.emit(trace.KindFault, "clear id=%d kind=%s dev=%s", id, e.Kind, e.Target)
	})
}

// applyDeviceState recomputes the composed fault state of one device
// from its open windows.
func (in *Injector) applyDeviceState(dev *device.Device) {
	bw, lat, readErr := 1.0, 0.0, false
	for _, f := range in.active[dev.Name()] {
		if f.bwFactor < bw {
			bw = f.bwFactor
		}
		lat += f.latency
		if f.kind == ReadError {
			readErr = true
		}
	}
	dev.SetReadError(readErr)
	if bw == 1 && lat == 0 {
		dev.ClearFault()
	} else {
		dev.SetFault(bw, lat)
	}
}

// cgroup resolves a cgroup target at fire time, recording a skip when it
// does not exist (the session it names was never launched).
func (in *Injector) cgroup(id int, e Event) *blkio.Cgroup {
	cg := in.node.Cgroups().Lookup(e.Target)
	if cg == nil {
		in.skipped++
		in.emit(trace.KindFault, "skip id=%d kind=%s cg=%s (no such cgroup)", id, e.Kind, e.Target)
	}
	return cg
}

func (in *Injector) fireWeightFail(id int, e Event) {
	cg := in.cgroup(id, e)
	if cg == nil {
		return
	}
	in.weightFail[e.Target]++
	cg.SetWeightFailing(true)
	in.injected++
	in.emit(trace.KindFault, "inject id=%d kind=%s cg=%s dur=%g", id, e.Kind, e.Target, e.Duration)
	in.node.Engine().After(e.Duration, func() {
		in.weightFail[e.Target]--
		if in.weightFail[e.Target] == 0 {
			cg.SetWeightFailing(false)
		}
		in.cleared++
		in.emit(trace.KindFault, "clear id=%d kind=%s cg=%s", id, e.Kind, e.Target)
	})
}

func (in *Injector) fireThrottleReset(id int, e Event) {
	cg := in.cgroup(id, e)
	if cg == nil {
		return
	}
	prevR, prevW := cg.ReadBpsLimit(), cg.WriteBpsLimit()
	cg.SetReadBpsLimit(e.Factor * mb)
	cg.SetWriteBpsLimit(0)
	in.injected++
	in.emit(trace.KindFault, "inject id=%d kind=%s cg=%s mb=%g dur=%g", id, e.Kind, e.Target, e.Factor, e.Duration)
	in.node.Engine().After(e.Duration, func() {
		cg.SetReadBpsLimit(prevR)
		cg.SetWriteBpsLimit(prevW)
		in.cleared++
		in.emit(trace.KindFault, "clear id=%d kind=%s cg=%s", id, e.Kind, e.Target)
	})
}

func (in *Injector) fireJoin(id int, e Event) {
	if _, ok := in.handles[e.Target]; ok || in.node.Container(e.Target) != nil {
		in.skipped++
		in.emit(trace.KindFault, "skip id=%d kind=join name=%s (already running)", id, e.Target)
		return
	}
	tiers := in.node.Tiers()
	dev := tiers[len(tiers)-1]
	_, h := workload.LaunchNoiseControlled(in.node, dev, e.Noise)
	in.handles[e.Target] = h
	in.injected++
	in.emit(trace.KindFault, "inject id=%d kind=join name=%s period=%g mb=%g", id, e.Target, e.Noise.Period, e.Noise.CheckpointBytes/mb)
}

func (in *Injector) fireChurn(id int, e Event) {
	h := in.handles[e.Target]
	if h == nil {
		in.skipped++
		in.emit(trace.KindFault, "skip id=%d kind=%s name=%s (no such interferer)", id, e.Kind, e.Target)
		return
	}
	switch e.Kind {
	case Leave:
		h.Stop()
		in.injected++
		in.emit(trace.KindFault, "inject id=%d kind=leave name=%s", id, e.Target)
	case PeriodChange:
		h.SetPeriod(e.Factor)
		in.injected++
		in.emit(trace.KindFault, "inject id=%d kind=period name=%s period=%g", id, e.Target, e.Factor)
	}
}

// Unpaired scans a trace for injected faults with no recovery action at
// or after the injection time, returning the unpaired fault events. A
// recovery action is a trace.KindRecover or trace.KindRefit event (the
// ad-hoc recovery paths), or any resil control-plane event —
// KindAttempt/KindBreaker/KindHedge/KindBudget — since each of those
// records an explicit per-fault decision. The chaos and resil
// experiments and their tests use this to enforce the "every injected
// fault is answered by a recorded recovery" contract.
func Unpaired(events []trace.Event) []trace.Event {
	var out []trace.Event
	for _, f := range events {
		if f.Kind != trace.KindFault || len(f.Msg) < 6 || f.Msg[:6] != "inject" {
			continue
		}
		paired := false
		for _, r := range events {
			if r.T >= f.T && recoveryKind(r.Kind) {
				paired = true
				break
			}
		}
		if !paired {
			out = append(out, f)
		}
	}
	return out
}

// recoveryKind reports whether a trace kind records a recovery decision.
func recoveryKind(kind string) bool {
	switch kind {
	case trace.KindRecover, trace.KindRefit,
		trace.KindAttempt, trace.KindBreaker, trace.KindHedge, trace.KindBudget:
		return true
	}
	return false
}
