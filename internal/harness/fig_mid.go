package harness

import (
	"fmt"
	"math"

	"tango/internal/analytics"
	"tango/internal/core"
	"tango/internal/dftestim"
	"tango/internal/errmetric"
	"tango/internal/refactor"
	"tango/internal/runpool"
	"tango/internal/tensor"
)

// Fig07 reproduces Fig 7: the DFT-based estimator is trained on the first
// half of a run's measured bandwidth and predicts the second half, at
// amplitude thresholds of 25%, 50%, and 75%. Higher thresholds discard
// more components and deviate more, but all track the periodic
// interference.
func Fig07(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig7",
		Title:  "DFT-based interference estimation (6 interfering containers)",
		Header: []string{"thresh", "zeroed FCs", "MAE MB/s", "mean measured MB/s", "MAE %"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	// A measurement session: full retrieval each step, 60 steps = 3600 s.
	sess := runOne("probe", 6, h, cfg, core.Config{Policy: core.NoAdapt, Steps: 60})
	samples := make([]float64, 0, 60)
	for _, st := range sess.Stats() {
		samples = append(samples, st.SlowBW)
	}
	train, test := samples[:30], samples[30:]

	var meanBW float64
	for _, bw := range test {
		meanBW += bw
	}
	meanBW /= float64(len(test))

	for _, frac := range []float64{0.25, 0.50, 0.75} {
		est := dftestim.NewEstimator()
		est.ThreshFrac = frac
		est.Window = 30
		for _, bw := range train {
			est.Observe(bw)
		}
		if err := est.Fit(); err != nil {
			panic(err)
		}
		// Count zeroed components for reporting.
		spec := dftestim.FFTReal(train)
		zeroed := dftestim.Threshold(spec, frac)
		mae := est.MeanAbsError(30, test)
		r.Add(fmt.Sprintf("%.0f%%", frac*100), fmt.Sprintf("%d/30", zeroed),
			fmtMB(mae), fmtMB(meanBW), fmt.Sprintf("%.1f%%", 100*mae/meanBW))
	}
	r.Notef("Trained on steps 0–29 (0–1800 s), predicting steps 30–59 (1800–3600 s), as in the paper.")
	return r
}

// policySummaries runs the four policies for one app — as parallel pool
// jobs, each on its own scenario — and returns their summaries.
func policySummaries(app analytics.App, h *refactor.Hierarchy, cfg Config, base core.Config) map[core.Policy]core.Summary {
	policies := core.AllPolicies()
	tasks := make([]*runpool.Task[core.Summary], len(policies))
	for i, p := range policies {
		sc := base
		sc.Policy = p
		tasks[i] = runpool.Submit(app.Name+"/"+p.String(), func() core.Summary {
			return runOne(app.Name, 6, h, cfg, sc).Summary(cfg.SkipWarmup)
		})
	}
	out := map[core.Policy]core.Summary{}
	for i, p := range policies {
		out[p] = tasks[i].Wait()
	}
	return out
}

// Fig08 reproduces Fig 8: average I/O time and variation of the three
// applications under the four policies, with no error control.
func Fig08(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig8",
		Title:  "Cross-layer vs single-layer, no error control (avg I/O time ± std, s)",
		Header: []string{"app", "no-adapt", "storage-only", "app-only", "cross-layer"},
	}
	apps := appsUnderTest()
	rows := make([]*runpool.Task[[]string], len(apps))
	for i, app := range apps {
		rows[i] = runpool.Submit("fig8/"+app.Name, func() []string {
			h := appHierarchy(app, cfg, defaultOpts())
			s := policySummaries(app, h, cfg, core.Config{})
			return []string{app.Name,
				fmt.Sprintf("%s±%s", fmtS(s[core.NoAdapt].MeanIO), fmtS(s[core.NoAdapt].StdIO)),
				fmt.Sprintf("%s±%s", fmtS(s[core.StorageOnly].MeanIO), fmtS(s[core.StorageOnly].StdIO)),
				fmt.Sprintf("%s±%s", fmtS(s[core.AppOnly].MeanIO), fmtS(s[core.AppOnly].StdIO)),
				fmt.Sprintf("%s±%s", fmtS(s[core.CrossLayer].MeanIO), fmtS(s[core.CrossLayer].StdIO))}
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Augmentation driven purely by the estimated storage load (no prescribed bound); %d measured steps after %d warm-up.", cfg.Steps-cfg.SkipWarmup, cfg.SkipWarmup)
	return r
}

// Fig09 reproduces Fig 9: the same comparison with error control enforced
// at ε = 0.01 (NRMSE) and ε = 30 dB (PSNR).
func Fig09(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig9",
		Title:  "Interference mitigation with error control (avg I/O time ± std, s)",
		Header: []string{"app", "metric", "no-adapt", "storage-only", "app-only", "cross-layer"},
	}
	type variant struct {
		label string
		opts  refactor.Options
		bound float64
	}
	variants := []variant{
		{"NRMSE 0.01", refactor.Options{Levels: refactor.LevelsForRatio(16, 2, 2), Bounds: NRMSEBounds}, 0.01},
		{"PSNR 30dB", refactor.Options{Levels: refactor.LevelsForRatio(16, 2, 2), Metric: errmetric.PSNR, Bounds: PSNRBounds}, 30},
	}
	var rows []*runpool.Task[[]string]
	for _, app := range appsUnderTest() {
		for _, v := range variants {
			rows = append(rows, runpool.Submit("fig9/"+app.Name+"/"+v.label, func() []string {
				h := appHierarchy(app, cfg, v.opts)
				s := policySummaries(app, h, cfg, core.Config{ErrorControl: true, Bound: v.bound})
				return []string{app.Name, v.label,
					fmt.Sprintf("%s±%s", fmtS(s[core.NoAdapt].MeanIO), fmtS(s[core.NoAdapt].StdIO)),
					fmt.Sprintf("%s±%s", fmtS(s[core.StorageOnly].MeanIO), fmtS(s[core.StorageOnly].StdIO)),
					fmt.Sprintf("%s±%s", fmtS(s[core.AppOnly].MeanIO), fmtS(s[core.AppOnly].StdIO)),
					fmt.Sprintf("%s±%s", fmtS(s[core.CrossLayer].MeanIO), fmtS(s[core.CrossLayer].StdIO))}
			}))
		}
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("No-adapt and storage-only always retrieve the full augmentation, so error control does not constrain them.")
	return r
}

// Fig10 reproduces Fig 10: the relative error of the analysis outcome at
// decimation ratio 8192, ε = 0.1 NRMSE, priority 10 — cross-layer vs
// single-layer (application) vs no augmentation at all.
func Fig10(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig10",
		Title:  "Data quality of analysis outcomes (relative error; ratio 8192, eps 0.1 NRMSE, p=10)",
		Header: []string{"app", "cross-layer", "app-only", "no augmentation"},
	}
	opts := refactor.Options{
		Levels: refactor.LevelsForRatio(8192, 2, 2),
		Bounds: []float64{0.1},
	}
	apps := appsUnderTest()
	rows := make([]*runpool.Task[[]string], len(apps))
	for i, app := range apps {
		rows[i] = runpool.Submit("fig10/"+app.Name, func() []string {
			orig := appField(app, cfg)
			h := appHierarchy(app, cfg, opts)
			sc := core.Config{ErrorControl: true, Bound: 0.1, Priority: 10}

			outErr := func(policy core.Policy) *runpool.Task[float64] {
				sc := sc
				sc.Policy = policy
				return runpool.Submit("fig10/"+app.Name+"/"+policy.String(), func() float64 {
					sess := runOne(app.Name, 6, h, cfg, sc)
					// Average the outcome error over the measured steps,
					// memoizing by cursor (many steps share a cursor).
					cache := map[int]float64{}
					var sum float64
					var n int
					for _, st := range sess.Stats()[cfg.SkipWarmup:] {
						e, ok := cache[st.Cursor]
						if !ok {
							e = outcomeAt(app, orig, h, st.Cursor)
							cache[st.Cursor] = e
						}
						sum += e
						n++
					}
					return sum / float64(n)
				})
			}

			crossT := outErr(core.CrossLayer)
			appOnlyT := outErr(core.AppOnly)
			cross := crossT.Wait()
			appOnly := appOnlyT.Wait()
			noAug := outcomeAt(app, orig, h, 0)
			return []string{app.Name, fmt.Sprintf("%.4f", cross), fmt.Sprintf("%.4f", appOnly), fmt.Sprintf("%.4f", noAug)}
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Storage-only adaptivity retrieves everything and loses no accuracy, so it is omitted (as in the paper).")
	r.Notef("Both adaptive schemes stay far below the prescribed bound (0.1) while no-augmentation is unusable — the paper's qualitative conclusion. In this reproduction app-only lands slightly lower (its in-band bandwidth samples read higher than cross-layer's default-weight probes, so it retrieves a little more); the paper observed the reverse second-order ordering.")
	return r
}

func outcomeAt(app analytics.App, orig *tensor.Tensor, h *refactor.Hierarchy, cursor int) float64 {
	rec := h.Recompose(cursor)
	e := app.OutcomeErr(orig, rec)
	if math.IsNaN(e) {
		return 1
	}
	return e
}
