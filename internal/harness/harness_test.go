package harness

import (
	"fmt"
	"strings"
	"testing"
)

// smallCfg keeps unit tests fast; experiments still exercise the full
// pipeline.
func smallCfg() Config {
	return Config{GridN: 129, Seed: 7, Steps: 40, SkipWarmup: 30}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	r.Add("1", "2")
	r.Add("333", "4")
	r.Notef("hello %d", 5)
	s := r.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "333", "note: hello 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig8"); !ok {
		t.Fatal("fig8 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestTable1Static(t *testing.T) {
	r := Table1(smallCfg())
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Only ext4+cgroups has per-app runtime control.
	if r.Rows[4][1] != "yes" || r.Rows[4][2] != "yes" {
		t.Fatalf("ext4 row wrong: %v", r.Rows[4])
	}
	for i := 0; i < 4; i++ {
		if r.Rows[i][1] != "no" {
			t.Fatalf("row %d should lack per-app control", i)
		}
	}
}

func TestFig01ShowsInterferenceDrop(t *testing.T) {
	r := Fig01(smallCfg())
	if len(r.Rows) != 30 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "drop") {
		t.Fatalf("expected drop note, got %v", r.Notes)
	}
}

func TestFig02ErrorsGrowWithDecimation(t *testing.T) {
	r := Fig02(smallCfg())
	if len(r.Rows) < 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// PSNR should decrease from the first to the last ratio for XGC.
	first, last := r.Rows[0][1], r.Rows[len(r.Rows)-1][1]
	var f, l float64
	if _, err := fmtSscan(first, &f); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(last, &l); err != nil {
		t.Fatal(err)
	}
	if !(l < f) {
		t.Fatalf("PSNR should fall with decimation: %v -> %v", f, l)
	}
}

func TestFig07EstimationAccuracy(t *testing.T) {
	r := Fig07(smallCfg())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFig11DoFMonotone(t *testing.T) {
	r := Fig11(smallCfg())
	// Within the NRMSE block (first 5 rows), DoF% must not decrease as
	// bounds tighten.
	var prev float64 = -1
	for i := 0; i < 5; i++ {
		var v float64
		if _, err := fmtSscan(strings.TrimSuffix(r.Rows[i][2], "%"), &v); err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Fatalf("DoF%% decreased at row %d: %v < %v", i, v, prev)
		}
		prev = v
	}
}

func TestAblationUnsorted(t *testing.T) {
	r := AblationUnsortedBuckets(smallCfg())
	for _, row := range r.Rows {
		var inf float64
		if _, err := fmtSscan(strings.TrimSuffix(row[3], "x"), &inf); err != nil {
			t.Fatal(err)
		}
		if inf < 1 {
			t.Fatalf("unsorted should not need fewer entries: %v", row)
		}
	}
}

// fmtSscan wraps fmt.Sscan for floats.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

func sscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }
