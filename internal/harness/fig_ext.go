package harness

import (
	"fmt"

	"tango/internal/analytics"
	"tango/internal/core"
	"tango/internal/refactor"
	"tango/internal/runpool"
)

// refactorHierarchy is a local alias keeping signatures short.
type refactorHierarchy = refactor.Hierarchy

// Coexist goes beyond the paper's single-analytics runs to its motivating
// scenario: several data analytics sharing one node. An interactive
// (p=10) and a batch (p=1) Tango session run concurrently against the
// Table IV interference; the weight function's priority term buys the
// interactive job lower latency without starving the batch job. A control
// run at equal priorities shows the differentiation comes from p.
func Coexist(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "coexist",
		Title:  "Two concurrent Tango analytics (priority differentiation, NRMSE 0.01)",
		Header: []string{"configuration", "interactive mean I/O", "batch mean I/O", "interactive advantage"},
	}
	// Both sessions analyze the same XGC dataset so the only difference
	// is the priority (CFD's 0.01 rung is base-only at this decimation,
	// which would make the comparison apples-to-oranges).
	xgc := analytics.XGCApp()
	hx := appHierarchy(xgc, cfg, defaultOpts())
	hc := hx

	run := func(pInteractive, pBatch float64) (float64, float64) {
		scen := NewScenario("coexist", 4)
		mkSession := func(name string, h *refactorHierarchy, p float64) *core.Session {
			sess, err := core.NewSession(name, scen.Stage(h, cfg.DatasetMB), core.Config{
				Policy: core.CrossLayer, ErrorControl: true, Bound: 0.01,
				Priority: p, Steps: cfg.Steps,
			})
			if err != nil {
				panic(err)
			}
			if err := sess.Launch(scen.Node); err != nil {
				panic(err)
			}
			return sess
		}
		interactive := mkSession("interactive", hx, pInteractive)
		batch := mkSession("batch", hc, pBatch)
		if err := scen.Node.Engine().Run(float64(cfg.Steps)*60 + 3600); err != nil {
			panic(err)
		}
		return interactive.Summary(cfg.SkipWarmup).MeanIO, batch.Summary(cfg.SkipWarmup).MeanIO
	}

	type pair struct{ i, b float64 }
	t1 := runpool.Submit("coexist/p10-vs-p1", func() pair { i, b := run(10, 1); return pair{i, b} })
	t2 := runpool.Submit("coexist/p5-vs-p5", func() pair { i, b := run(5, 5); return pair{i, b} })
	p1 := t1.Wait()
	r.Add("p=10 vs p=1", fmtS(p1.i), fmtS(p1.b), fmt.Sprintf("%.0f%%", 100*(1-p1.i/p1.b)))
	p2 := t2.Wait()
	r.Add("p=5 vs p=5 (control)", fmtS(p2.i), fmtS(p2.b), fmt.Sprintf("%.0f%%", 100*(1-p2.i/p2.b)))
	r.Notef("Both sessions keep the 0.01 NRMSE guarantee; priority only changes who waits.")
	return r
}

// AblationParallelReads evaluates the parallel-tier-read extension: each
// bucket's SSD and HDD segments transfer concurrently instead of
// coarse-tier-first. Total step time improves; the latency to the first
// usable accuracy can regress because the fast tier no longer completes
// first unconditionally.
func AblationParallelReads(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "ablation-parallel",
		Title:  "Extension: parallel tier reads (XGC, p=10, NRMSE 0.001)",
		Header: []string{"read path", "mean I/O (s)", "latency to eps=0.01 (s)"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	var rows []*runpool.Task[[]string]
	for _, parallel := range []bool{false, true} {
		label := "sequential (Algorithm 1)"
		if parallel {
			label = "parallel per tier"
		}
		rows = append(rows, runpool.Submit("ablation-parallel/"+label, func() []string {
			sc := core.Config{
				Policy: core.CrossLayer, ErrorControl: true, Bound: 0.001,
				Priority: 10, ParallelTierReads: parallel,
			}
			sess := runOne(app.Name, 6, h, cfg, sc)
			return []string{label,
				fmtS(sess.Summary(cfg.SkipWarmup).MeanIO),
				fmtS(latencyToBound(sess, h, 0.01, cfg.SkipWarmup))}
		}))
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Parallel reads overlap tiers and shorten the step; sequential reads deliver the coarse (low-accuracy) data first.")
	return r
}
