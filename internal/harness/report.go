package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteCSV emits the result as RFC-4180 CSV (header row first). Notes are
// appended as comment-style rows prefixed with "#" in the first column.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultJSON is the stable JSON shape of a Result.
type resultJSON struct {
	ID     string              `json:"id"`
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   []map[string]string `json:"rows"`
	// Series is the same data column-major (header key -> cell values in
	// row order), the shape plotting scripts consume directly.
	Series map[string][]string `json:"series"`
	Notes  []string            `json:"notes,omitempty"`
}

// jsonKeys maps header names to unique row keys (duplicate headers get
// positional suffixes).
func (r *Result) jsonKeys() []string {
	keys := make([]string, len(r.Header))
	seen := map[string]int{}
	for i, h := range r.Header {
		k := h
		if n := seen[h]; n > 0 {
			k = fmt.Sprintf("%s_%d", h, n)
		}
		seen[h]++
		keys[i] = k
	}
	return keys
}

func (r *Result) toJSON() resultJSON {
	keys := r.jsonKeys()
	out := resultJSON{
		ID: r.ID, Title: r.Title, Header: r.Header, Notes: r.Notes,
		Series: map[string][]string{},
	}
	for _, k := range keys {
		out.Series[k] = []string{}
	}
	for _, row := range r.Rows {
		m := make(map[string]string, len(row))
		for i, cell := range row {
			key := fmt.Sprintf("col%d", i)
			if i < len(keys) {
				key = keys[i]
			}
			m[key] = cell
			out.Series[key] = append(out.Series[key], cell)
		}
		out.Rows = append(out.Rows, m)
	}
	return out
}

// WriteJSON emits the result as a JSON object whose rows are keyed by the
// header names (duplicate headers get positional suffixes), with the same
// data repeated column-major under "series".
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.toJSON())
}

// suiteJSON is the shape tangobench -json emits: every result of the run
// in one machine-readable document.
type suiteJSON struct {
	Results []resultJSON `json:"results"`
}

// WriteSuiteJSON emits several results as one JSON document.
func WriteSuiteJSON(w io.Writer, results []*Result) error {
	suite := suiteJSON{Results: []resultJSON{}}
	for _, r := range results {
		suite.Results = append(suite.Results, r.toJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(suite)
}

// Format renders the result in the named format: "table" (default),
// "csv", or "json".
func (r *Result) Format(w io.Writer, format string) error {
	switch strings.ToLower(format) {
	case "", "table", "text":
		_, err := io.WriteString(w, r.String())
		return err
	case "csv":
		return r.WriteCSV(w)
	case "json":
		return r.WriteJSON(w)
	default:
		return fmt.Errorf("harness: unknown format %q (table|csv|json)", format)
	}
}
