package harness

import (
	"strings"
	"testing"
)

func TestFig08PolicyOrdering(t *testing.T) {
	r := Fig08(smallCfg())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		noAdapt := cell(t, r, 0, 1)
		cross := cell(t, r, 0, 4)
		if !(cross <= noAdapt) {
			t.Fatalf("cross-layer should not lose to no-adapt: %v", row)
		}
	}
}

func TestFig09ErrorControlRows(t *testing.T) {
	r := Fig09(smallCfg())
	// 3 apps x 2 metrics.
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		if r.Rows[i][1] != "NRMSE 0.01" && r.Rows[i][1] != "PSNR 30dB" {
			t.Fatalf("row %d metric = %q", i, r.Rows[i][1])
		}
	}
}

func TestFig10NoAugmentationWorst(t *testing.T) {
	r := Fig10(smallCfg())
	for i := range r.Rows {
		cross := cell(t, r, i, 1)
		noAug := cell(t, r, i, 3)
		if !(noAug > cross) {
			t.Fatalf("row %d: no-augmentation %v should be worse than cross %v", i, noAug, cross)
		}
	}
}

func TestFig13AblationMonotone(t *testing.T) {
	r := Fig13(smallCfg())
	// XGC row: latency must not increase as terms are added.
	card := cell(t, r, 0, 2)
	cardPrio := cell(t, r, 0, 3)
	full := cell(t, r, 0, 4)
	if !(full <= cardPrio+1e-9 && cardPrio <= card+1e-9) {
		t.Fatalf("ablation not monotone: %v %v %v", card, cardPrio, full)
	}
}

func TestFig14aPriorityMonotone(t *testing.T) {
	r := Fig14a(smallCfg())
	for i := range r.Rows {
		p1 := cell(t, r, i, 1)
		p10 := cell(t, r, i, 3)
		if !(p10 <= p1+1e-9) {
			t.Fatalf("row %d: p=10 (%v) slower than p=1 (%v)", i, p10, p1)
		}
	}
}

func TestFig14bBoundMonotone(t *testing.T) {
	r := Fig14b(smallCfg())
	for i := range r.Rows {
		loose := cell(t, r, i, 1)
		tight := cell(t, r, i, 4)
		if !(tight >= loose-1e-9) {
			t.Fatalf("row %d: tighter bound faster (%v vs %v)", i, tight, loose)
		}
	}
}

func TestFig15WeightDecreasesWithinStep(t *testing.T) {
	r := Fig15(smallCfg())
	if len(r.Rows) == 0 {
		t.Fatal("no weight events in the window")
	}
	// Rows come in per-step runs; within a run the weight must not
	// increase as the accuracy tightens.
	var prevT, prevW float64 = -1, 1e9
	for i := range r.Rows {
		tm := cell(t, r, i, 0)
		w := cell(t, r, i, 2)
		if tm-prevT < 30 { // same step (bucket reads are seconds apart)
			if w > prevW {
				t.Fatalf("row %d: weight rose within a step (%v -> %v)", i, prevW, w)
			}
		}
		prevT, prevW = tm, w
	}
}

func TestFig07ThreshMonotone(t *testing.T) {
	r := Fig07(smallCfg())
	m25 := cell(t, r, 0, 2)
	m75 := cell(t, r, 2, 2)
	if !(m75 >= m25) {
		t.Fatalf("MAE should grow with threshold: %v vs %v", m25, m75)
	}
}

func TestHeadlinePositive(t *testing.T) {
	r := Headline(smallCfg())
	// Mean row: improvement over no-adaptivity must be positive.
	last := len(r.Rows) - 1
	if r.Rows[last][0] != "mean" {
		t.Fatalf("last row = %v", r.Rows[last])
	}
	if v := cell(t, r, last, 1); v <= 0 {
		t.Fatalf("mean improvement vs no-adapt = %v", v)
	}
}

func TestFIFOAblationCollapsesGain(t *testing.T) {
	r := AblationFIFO(smallCfg())
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	propGain := cell(t, r, 0, 3)
	fifoGain := cell(t, r, 1, 3)
	if !(fifoGain < propGain) {
		t.Fatalf("FIFO gain %v should be below proportional-share gain %v", fifoGain, propGain)
	}
}

func TestThrottleNoiseThroughputReported(t *testing.T) {
	r := ThrottleVsTango(smallCfg())
	for i := range r.Rows {
		if v := cell(t, r, i, 2); v <= 0 {
			t.Fatalf("row %d noise throughput = %v", i, v)
		}
	}
}

func TestExperimentIDsMatchResults(t *testing.T) {
	// Cheap experiments only; each must return a Result whose ID matches
	// the registry ID.
	for _, id := range []string{"table1", "fig11"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res := e.Run(smallCfg())
		if res.ID != id {
			t.Fatalf("experiment %s returned result id %s", id, res.ID)
		}
		if !strings.Contains(res.String(), res.Title) {
			t.Fatalf("rendered result missing title")
		}
	}
}
