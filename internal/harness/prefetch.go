package harness

import (
	"fmt"

	"tango/internal/core"
	"tango/internal/runpool"
)

// Prefetch evaluates the predictive fast-tier cache (internal/cache):
// each application runs CrossLayer with and without the cache+prefetcher
// against the same interference, reporting mean per-step I/O time, the
// foreground capacity-tier bandwidth (which the background prefetch flow
// must not degrade), cache hit ratio, bytes served from the fast tier,
// staged volume, prescribed-bound violations (always 0), and the
// prefetcher's pause/skip decisions.
func Prefetch(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:    "prefetch",
		Title: "Predictive fast-tier cache + idle-window prefetcher",
		Header: []string{"app", "policy", "mean I/O (s)", "fg BW MB/s", "hit %", "saved MB",
			"staged MB", "bound viol", "paused", "ticks"},
	}
	const bound = 1e-2
	const nNoise = 3
	// Each inner run is independent (own scenario); the per-app note needs
	// both policies' foreground bandwidth, so jobs return row + fgBW and the
	// collection loop rebuilds rows and notes in the original order.
	type polRes struct {
		row  []string
		fgBW float64
	}
	type appRes struct {
		name string
		pols [2]*runpool.Task[polRes]
	}
	var apps []appRes
	for _, app := range appsUnderTest() {
		h := appHierarchy(app, cfg, defaultOpts())
		mandatory, err := h.CursorForBound(bound)
		if err != nil {
			panic(err)
		}
		ar := appRes{name: app.Name}
		for i, pol := range []core.Policy{core.CrossLayer, core.CrossLayerPrefetch} {
			ar.pols[i] = runpool.Submit("prefetch/"+app.Name+"/"+pol.String(), func() polRes {
				sc := core.Config{
					Policy: pol, ErrorControl: true, Bound: bound, Priority: 10,
				}
				sess := runOne(app.Name, nNoise, h, cfg, sc)
				sum := sess.Summary(cfg.SkipWarmup)
				viol := 0
				hits, misses := 0, 0
				var savedMB, slowSum float64
				measured := sess.Stats()[min(cfg.SkipWarmup, len(sess.Stats())):]
				for _, st := range measured {
					if st.Cursor < mandatory {
						viol++
					}
					hits += st.CacheHits
					misses += st.CacheMisses
					savedMB += st.CacheHitBytes / (1024 * 1024)
					slowSum += st.SlowBW
				}
				// Foreground capacity-tier bandwidth: the default-share probe
				// sample, measured on the HDD each step. This is the quantity
				// the background prefetch flow must not depress.
				var fg float64
				if len(measured) > 0 {
					fg = slowSum / float64(len(measured))
				}
				hitPct := "-"
				if hits+misses > 0 {
					hitPct = fmt.Sprintf("%.1f", 100*float64(hits)/float64(hits+misses))
				}
				stagedMB, paused, ticks := "-", "-", "-"
				if c := sess.Cache(); c != nil {
					stagedMB = fmt.Sprintf("%.1f", c.Stats().StagedBytes/(1024*1024))
				}
				if pf := sess.Prefetcher(); pf != nil {
					ps := pf.Stats()
					paused = fmt.Sprintf("%d", ps.Paused+ps.Aborted)
					ticks = fmt.Sprintf("%d", ps.Ticks)
				}
				row := []string{app.Name, pol.String(), fmtS(sum.MeanIO), fmtMB(fg),
					hitPct, fmt.Sprintf("%.1f", savedMB), stagedMB,
					fmt.Sprintf("%d", viol), paused, ticks}
				return polRes{row: row, fgBW: fg}
			})
		}
		apps = append(apps, ar)
	}
	for _, ar := range apps {
		var fgBW [2]float64
		for i, t := range ar.pols {
			res := t.Wait()
			fgBW[i] = res.fgBW
			r.Add(res.row...)
		}
		// The prefetch flow runs at the floor weight behind byte-rate
		// caps, so the foreground's measured capacity-tier share must not
		// drop when it is enabled.
		delta := 0.0
		if fgBW[0] > 0 {
			delta = 100 * (fgBW[1] - fgBW[0]) / fgBW[0]
		}
		r.Notef("%s: foreground capacity-tier BW %+.1f%% with prefetch enabled", ar.name, delta)
	}
	r.Notef("Cache serves level prefixes from the fast tier; eviction keeps high reuse × refetch-cost runs, with prescribed-bound prefixes sticky.")
	return r
}
