package harness

import (
	"fmt"

	"tango/internal/analytics"
	"tango/internal/container"
	"tango/internal/core"
	"tango/internal/device"
	"tango/internal/fault"
	"tango/internal/refactor"
	"tango/internal/staging"
	"tango/internal/trace"
	"tango/internal/workload"
)

// Scenario is one simulated node set up per §IV-A: an SSD performance
// tier, an HDD capacity tier, and the Table IV interference containers
// targeting the HDD.
type Scenario struct {
	Node *container.Node
	SSD  *device.Device
	HDD  *device.Device
	// Noise holds control handles for the launched interferers, keyed by
	// name; the fault injector's churn events (leave, period) act on
	// these.
	Noise map[string]*workload.Handle
	// Injector is the armed fault injector when the experiment config
	// carries a FaultPlan (nil otherwise).
	Injector *fault.Injector
}

// NewScenario builds the node and launches the first nNoise interferers
// of Table IV (0–6).
func NewScenario(name string, nNoise int) *Scenario {
	node := container.NewNode(name)
	s := &Scenario{
		Node: node,
		SSD:  node.MustAddDevice(device.SSD("ssd")),
		HDD:  node.MustAddDevice(device.HDD("hdd")),
	}
	set := workload.PaperNoiseSet()
	if nNoise > len(set) {
		nNoise = len(set)
	}
	s.Noise = workload.LaunchNoiseSetControlled(node, s.HDD, set[:nNoise])
	return s
}

// hddParamsReal returns the calibrated HDD preset.
func hddParamsReal() device.Params { return device.HDD("hdd") }

// hddParamsNoThrash returns the HDD preset with the seek-thrash term
// removed (ablation #1).
func hddParamsNoThrash() device.Params {
	p := device.HDD("hdd")
	p.SeekThrash = 0
	p.MinEfficiency = 1
	return p
}

// newScenarioWithHDD builds a scenario with custom HDD parameters.
func newScenarioWithHDD(name string, nNoise int, hdd device.Params) *Scenario {
	node := container.NewNode(name)
	s := &Scenario{
		Node: node,
		SSD:  node.MustAddDevice(device.SSD("ssd")),
		HDD:  node.MustAddDevice(hdd),
	}
	set := workload.PaperNoiseSet()
	if nNoise > len(set) {
		nNoise = len(set)
	}
	s.Noise = workload.LaunchNoiseSetControlled(node, s.HDD, set[:nNoise])
	return s
}

// ArmFaults binds and arms plan on this scenario, recording injections
// into rec (which may be nil). Call after the scenario is built and
// before the engine runs.
func (s *Scenario) ArmFaults(plan *fault.Plan, rec *trace.Recorder) {
	in := fault.NewInjector(s.Node, rec, plan)
	in.RegisterNoise(s.Noise)
	if err := in.Arm(); err != nil {
		panic(fmt.Sprintf("harness: arming faults: %v", err))
	}
	s.Injector = in
}

// Stage places a hierarchy on this scenario's tiers at the payload scale
// that makes the whole staged dataset datasetMB large — the paper's
// production datasets and checkpoints are hundreds of MB to GB, and the
// adaptivity phenomena only appear when the analytics' retrieval is a
// first-class load on the capacity tier.
func (s *Scenario) Stage(h *refactor.Hierarchy, datasetMB float64) *staging.Store {
	scale := datasetMB * 1024 * 1024 / float64(h.BaseBytes()+h.TotalAugBytes())
	if scale < 1 {
		scale = 1
	}
	st, err := staging.StageScaled(h, s.Node.Tiers(), scale)
	if err != nil {
		panic(fmt.Sprintf("harness: staging: %v", err))
	}
	return st
}

// runOne stages h on a fresh scenario, runs a session to completion, and
// returns it.
func runOne(name string, nNoise int, h *refactor.Hierarchy, cfg Config, sc core.Config) *core.Session {
	scen := NewScenario(name, nNoise)
	return runOnScenario(scen, name, h, cfg, sc)
}

func runOnScenario(scen *Scenario, name string, h *refactor.Hierarchy, cfg Config, sc core.Config) *core.Session {
	if sc.Steps == 0 {
		sc.Steps = cfg.Steps
	}
	if cfg.FaultPlan != nil && scen.Injector == nil {
		scen.ArmFaults(cfg.FaultPlan, sc.Trace)
	}
	if sc.Allocator != nil && sc.Trace != nil {
		sc.Allocator.SetTrace(sc.Trace, scen.Node.Engine().Now)
	}
	sess, err := core.NewSession(name, scen.Stage(h, cfg.DatasetMB), sc)
	if err != nil {
		panic(fmt.Sprintf("harness: session %s: %v", name, err))
	}
	if err := sess.Launch(scen.Node); err != nil {
		panic(err)
	}
	horizon := float64(sc.Steps)*60 + 3600
	if err := scen.Node.Engine().Run(horizon); err != nil {
		panic(err)
	}
	if got := len(sess.Stats()); got != sc.Steps {
		panic(fmt.Sprintf("harness: %s finished %d of %d steps", name, got, sc.Steps))
	}
	return sess
}

// defaultOpts is the decomposition used by the performance experiments:
// the paper's default decimation ratio of 16 (two augmentation levels in
// 2D with d=2) and the NRMSE ladder.
func defaultOpts() refactor.Options {
	return refactor.Options{
		Levels: refactor.LevelsForRatio(16, 2, 2),
		Bounds: NRMSEBounds,
	}
}

// appsUnderTest lists the paper's three applications.
func appsUnderTest() []analytics.App { return analytics.Apps() }
