package harness

import "testing"

// TestResilControlPlaneRecovers pins the acceptance bar for the
// resilience control plane: under the standard chaos plan both resil
// arms salvage at least the ad-hoc (PR 2 recovery paths) throughput;
// the prescribed bound is never violated; retry amplification stays
// under 2× even on the mass plan that also faults the fast tier; the
// hedged arm actually races; and no injected fault is left without a
// recorded recovery action.
func TestResilControlPlaneRecovers(t *testing.T) {
	r := Resil(smallCfg())
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 arms x 2 plans", len(r.Rows))
	}
	const (
		colBW       = 3
		colRetries  = 4
		colAmp      = 5
		colViol     = 7
		colHedges   = 9
		colUnpaired = 10
	)
	// Row order: arms (ad-hoc, policy-keyed, hedged) x plans (chaos, mass).
	adhocChaosBW := cell(t, r, 0, colBW)
	if bw := cell(t, r, 2, colBW); bw < adhocChaosBW {
		t.Fatalf("policy-keyed chaos BW %v below ad-hoc %v", bw, adhocChaosBW)
	}
	if bw := cell(t, r, 4, colBW); bw < adhocChaosBW {
		t.Fatalf("hedged chaos BW %v below ad-hoc %v", bw, adhocChaosBW)
	}
	for _, i := range []int{2, 3, 4, 5} { // resil arms, both plans
		if viol := cell(t, r, i, colViol); viol != 0 {
			t.Fatalf("row %d (%s/%s): %v prescribed-bound violations",
				i, r.Rows[i][0], r.Rows[i][1], viol)
		}
		if amp := cell(t, r, i, colAmp); amp > 2 {
			t.Fatalf("row %d (%s/%s): retry amplification %v exceeds 2x",
				i, r.Rows[i][0], r.Rows[i][1], amp)
		}
	}
	// The mass plan must actually contend the retry machinery.
	if retries := cell(t, r, 3, colRetries); retries == 0 {
		t.Fatal("mass plan exercised no policy-keyed retries")
	}
	// The hedged arm must launch races under fault pressure (the mass
	// plan faults the fast tier, so the breaker path also triggers).
	if h := cell(t, r, 5, colHedges); h == 0 {
		t.Fatal("hedged arm launched no hedge races under the mass plan")
	}
	for i := range r.Rows {
		if up := cell(t, r, i, colUnpaired); up != 0 {
			t.Fatalf("row %d (%s/%s): %v faults without a recovery event",
				i, r.Rows[i][0], r.Rows[i][1], up)
		}
	}
}

// TestMassFaultPlanDeterministic pins that the mass plan is a pure
// function of the config seed (the determinism suite replays it).
func TestMassFaultPlanDeterministic(t *testing.T) {
	a := MassFaultPlan(smallCfg()).String()
	b := MassFaultPlan(smallCfg()).String()
	if a != b {
		t.Fatalf("mass plan not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a == ChaosPlan(smallCfg()).String() {
		t.Fatal("mass plan should differ from the chaos plan")
	}
}
