package harness

import (
	"strings"
	"testing"
)

func cell(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(r.Rows[row][col], "%")
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, " MB/s")
	s = strings.TrimPrefix(s, "+")
	// Keep only the value before a ± if present.
	if i := strings.IndexRune(s, '±'); i >= 0 {
		s = s[:i]
	}
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func TestCoexistEqualPriorityIsSymmetric(t *testing.T) {
	r := Coexist(smallCfg())
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Control row: equal priority -> identical performance.
	if ci, cb := cell(t, r, 1, 1), cell(t, r, 1, 2); ci != cb {
		t.Fatalf("equal-priority sessions differ: %v vs %v", ci, cb)
	}
	// Differentiated row: interactive no slower than batch.
	if ii, ib := cell(t, r, 0, 1), cell(t, r, 0, 2); ii > ib {
		t.Fatalf("high-priority session slower: %v vs %v", ii, ib)
	}
}

func TestRegimeStaleModelWindowWorst(t *testing.T) {
	r := Regime(smallCfg())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	before := cell(t, r, 0, 2)
	stale := cell(t, r, 1, 2)
	if !(stale > before) {
		t.Fatalf("stale-model MAE %v should exceed settled MAE %v", stale, before)
	}
}

func TestThrottleExperimentShape(t *testing.T) {
	r := ThrottleVsTango(smallCfg())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	baseline := cell(t, r, 0, 1)
	tango := cell(t, r, 2, 1)
	if !(tango < baseline) {
		t.Fatalf("tango %v should beat baseline %v", tango, baseline)
	}
}

func TestRandomNoisePerturbationSmallerWithThreshold(t *testing.T) {
	r := RandomNoiseRobustness(smallCfg())
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	p0 := cell(t, r, 0, 3)
	p50 := cell(t, r, 1, 3)
	if !(p50 <= p0+0.5) { // allow 0.5 MB/s tolerance at test scale
		t.Fatalf("thresholded perturbation %v should not exceed unthresholded %v", p50, p0)
	}
}

func TestParallelAblationNotSlower(t *testing.T) {
	r := AblationParallelReads(smallCfg())
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	seq := cell(t, r, 0, 1)
	par := cell(t, r, 1, 1)
	if !(par <= seq+1e-9) {
		t.Fatalf("parallel %v slower than sequential %v", par, seq)
	}
}

func TestAblationSeekNarrowsGap(t *testing.T) {
	r := AblationNoSeekThrash(smallCfg())
	withRatio := cell(t, r, 0, 3)
	withoutRatio := cell(t, r, 1, 3)
	if !(withoutRatio >= withRatio) {
		t.Fatalf("gap should narrow without thrash: %v vs %v", withoutRatio, withRatio)
	}
}

func TestFig12StorageDegradesWithNoise(t *testing.T) {
	r := Fig12(smallCfg())
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	s3 := cell(t, r, 0, 2)
	s6 := cell(t, r, 3, 2)
	if !(s6 >= s3) {
		t.Fatalf("storage-only should degrade 3->6 noises: %v -> %v", s3, s6)
	}
}

func TestFig16FlatScaling(t *testing.T) {
	r := Fig16(smallCfg())
	one := cell(t, r, 0, 1)
	four := cell(t, r, 3, 1)
	if one != four {
		t.Fatalf("weak scaling not flat: %v vs %v", one, four)
	}
}

func TestCSVAndJSONFormats(t *testing.T) {
	r := Table1(smallCfg())
	var csvB, jsonB strings.Builder
	if err := r.Format(&csvB, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvB.String(), "Lustre") {
		t.Fatal("csv missing data")
	}
	if err := r.Format(&jsonB, "json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonB.String(), "\"id\": \"table1\"") {
		t.Fatal("json missing id")
	}
	if err := r.Format(&csvB, "bogus"); err == nil {
		t.Fatal("bogus format accepted")
	}
}

// TestChaosCrossLayerRecovers pins the acceptance bar for the fault
// extension: under an identical generated fault plan, the cross-layer
// policy recovers at least the throughput of no-adapt and storage-only,
// never violates the prescribed bound, exercises the retry path, and
// leaves no injected fault without a later recovery/refit event.
func TestChaosCrossLayerRecovers(t *testing.T) {
	r := Chaos(smallCfg())
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want one per extended policy", len(r.Rows))
	}
	const (
		colBW       = 2
		colRetries  = 3
		colViol     = 5
		colFaults   = 6
		colUnpaired = 7
	)
	noAdaptBW := cell(t, r, 0, colBW)
	storageBW := cell(t, r, 1, colBW)
	crossBW := cell(t, r, 3, colBW)
	if crossBW < noAdaptBW || crossBW < storageBW {
		t.Fatalf("cross-layer BW %v below no-adapt %v or storage-only %v",
			crossBW, noAdaptBW, storageBW)
	}
	if viol := cell(t, r, 3, colViol); viol != 0 {
		t.Fatalf("cross-layer violated the prescribed bound in %v steps", viol)
	}
	if retries := cell(t, r, 3, colRetries); retries == 0 {
		t.Fatal("fault plan exercised no read retries")
	}
	// Prefetched data survives HDD faults at SSD speed: the cache variant
	// must recover at least cross-layer's throughput.
	if pfBW := cell(t, r, 4, colBW); pfBW < crossBW {
		t.Fatalf("cross-layer+prefetch BW %v below cross-layer %v under faults", pfBW, crossBW)
	}
	for i := range r.Rows {
		if f := cell(t, r, i, colFaults); f == 0 {
			t.Fatalf("row %d: no faults injected", i)
		}
		if up := cell(t, r, i, colUnpaired); up != 0 {
			t.Fatalf("row %d: %v injected faults without a recovery event", i, up)
		}
	}
}
