package harness

import (
	"fmt"

	"tango/internal/analytics"
	"tango/internal/coordinator"
	"tango/internal/core"
	"tango/internal/fault"
	"tango/internal/fleet"
	"tango/internal/runpool"
	"tango/internal/tokenctl"
)

// tokensHybridEpoch is the hybrid arm's resync period: token control
// with one coordinator-style rescale every five analysis steps.
const tokensHybridEpoch = 300

// tokensMassFailPlan fails every session cgroup's weight writes at once
// for a sustained window — the decentralized analog of losing the
// coordinator: no control write lands anywhere, and each arm must keep
// serving on the weights already in force.
func tokensMassFailPlan(cfg Config) *fault.Plan {
	horizon := float64(cfg.Steps) * 60
	at, dur := 0.4*horizon, 0.3*horizon
	return &fault.Plan{Events: []fault.Event{
		{At: at, Kind: fault.WeightFail, Target: "interactive", Duration: dur},
		{At: at, Kind: fault.WeightFail, Target: "batch", Duration: dur},
	}}
}

// tokensChaosPlan draws seed-deterministic cgroup faults (weight-fail /
// throttle-reset cycles) against the interactive session.
func tokensChaosPlan(cfg Config) *fault.Plan {
	plan, err := fault.Generate(cfg.Seed, fault.GenerateOptions{
		Horizon: float64(cfg.Steps) * 60,
		Cgroup:  "interactive",
		Events:  4,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: tokens chaos plan: %v", err))
	}
	return plan
}

// Tokens evaluates the decentralized token-bucket weight controller
// (internal/tokenctl) against the central coordinator and the hybrid
// mode: two concurrent sessions (p=10 and p=1) per arm, each control
// mode run quiet, through a mass weight-write failure (coordinator
// loss), and through a seeded cgroup-fault chaos schedule. The fleet
// arms in the notes run the same three modes through a node-kill plan.
func Tokens(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:    "tokens",
		Title: "Extension: decentralized token-bucket weight control",
		Header: []string{"arm", "interactive I/O (s)", "batch I/O (s)", "bound viol",
			"borrows", "repays", "recalls"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	const bound = 0.01
	mandatory, err := h.CursorForBound(bound)
	if err != nil {
		panic(err)
	}

	modes := []tokenctl.Mode{tokenctl.ModeCentral, tokenctl.ModeTokens, tokenctl.ModeHybrid}
	type planArm struct {
		name string
		plan func() *fault.Plan
	}
	planArms := []planArm{
		{"quiet", func() *fault.Plan { return nil }},
		{"weight-fail", func() *fault.Plan {
			if cfg.FaultPlan != nil {
				return cfg.FaultPlan
			}
			return tokensMassFailPlan(cfg)
		}},
		{"chaos", func() *fault.Plan { return tokensChaosPlan(cfg) }},
	}

	run := func(mode tokenctl.Mode, pa planArm) []string {
		scen := NewScenario(fmt.Sprintf("tok-%s-%s", mode, pa.name), 4)
		if plan := pa.plan(); plan != nil {
			scen.ArmFaults(plan, nil)
		}
		var alloc *coordinator.Allocator
		var ctl *tokenctl.Controller
		switch mode {
		case tokenctl.ModeCentral:
			alloc = coordinator.New()
		case tokenctl.ModeTokens:
			ctl = tokenctl.New(scen.Node.Engine().Now, tokenctl.Options{})
		case tokenctl.ModeHybrid:
			ctl = tokenctl.New(scen.Node.Engine().Now, tokenctl.Options{EpochSec: tokensHybridEpoch})
		}
		mk := func(name string, p float64) *core.Session {
			sess, err := core.NewSession(name, scen.Stage(h, cfg.DatasetMB), core.Config{
				Policy: core.CrossLayer, ErrorControl: true, Bound: bound,
				Priority: p, Steps: cfg.Steps, Allocator: alloc, Tokens: ctl,
			})
			if err != nil {
				panic(err)
			}
			if err := sess.Launch(scen.Node); err != nil {
				panic(err)
			}
			return sess
		}
		interactive := mk("interactive", 10)
		batch := mk("batch", 1)
		if err := scen.Node.Engine().Run(float64(cfg.Steps)*60 + 3600); err != nil {
			panic(err)
		}
		viol := 0
		for _, sess := range []*core.Session{interactive, batch} {
			for i, st := range sess.Stats() {
				if i >= cfg.SkipWarmup && st.Cursor < mandatory {
					viol++
				}
			}
		}
		borrows, repays, recalls := "-", "-", "-"
		if ctl != nil {
			st := ctl.Stats()
			borrows = fmt.Sprintf("%d", st.Borrows)
			repays = fmt.Sprintf("%d", st.Repays)
			recalls = fmt.Sprintf("%d", st.Recalls)
		}
		return []string{mode.String() + "/" + pa.name,
			fmtS(interactive.Summary(cfg.SkipWarmup).MeanIO),
			fmtS(batch.Summary(cfg.SkipWarmup).MeanIO),
			fmt.Sprintf("%d", viol), borrows, repays, recalls}
	}

	rows := make([]*runpool.Task[[]string], 0, len(modes)*len(planArms))
	for _, mode := range modes {
		for _, pa := range planArms {
			mode, pa := mode, pa
			rows = append(rows, runpool.Submit("tokens/"+mode.String()+"/"+pa.name,
				func() []string { return run(mode, pa) }))
		}
	}

	// Fleet arms: the same three control modes through a node-kill plan
	// (4 nodes, 24 sessions; max(1, N/10) nodes out at the epoch-4
	// barrier). The per-node mode must survive the kill/rebuild cycle.
	fleetRows := make([]*runpool.Task[string], len(modes))
	for i, mode := range modes {
		mode := mode
		fleetRows[i] = runpool.Submit("tokens/fleet/"+mode.String(), func() string {
			c, err := fleet.New(fleet.Config{
				Nodes: 4, Sessions: 24, Seed: cfg.Seed,
				Plan:    fleetKillPlan(4),
				Control: mode,
			})
			if err != nil {
				panic(err)
			}
			rep, err := c.Run()
			if err != nil {
				panic(err)
			}
			return fmt.Sprintf("fleet/%s under node-kill: %s; ledger borrows=%d repays=%d recalls=%d",
				mode, rep.TotalsLine(), rep.Tokens.Borrows, rep.Tokens.Repays, rep.Tokens.Recalls)
		})
	}

	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	for _, t := range fleetRows {
		r.Notef("%s", t.Wait())
	}
	r.Notef("Modes: central = coordinator.Allocator global rescale; tokens = per-session buckets with bounded borrowing from idle peers; hybrid = tokens with a coordinator-style resync every %d s.", tokensHybridEpoch)
	r.Notef("weight-fail arm fails every session cgroup's weight writes at once for 30%% of the run (coordinator loss): all modes must keep serving on in-force weights with zero bound violations.")
	return r
}
