package harness

import (
	"fmt"
	"math"

	"tango/internal/analytics"
	"tango/internal/container"
	"tango/internal/core"
	"tango/internal/device"
	"tango/internal/workload"
)

// Regime tests the paper's claim that "when the interference pattern
// changes, the estimation can be re-adjusted" (§III-C step 1): the run
// starts with three interferers, and three more join mid-run. Prediction
// error spikes in the window right after the change (the fitted model is
// stale) and recovers after the next periodic refit.
func Regime(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "regime",
		Title:  "Estimator re-adjustment under an interference regime change (XGC)",
		Header: []string{"window (steps)", "interferers", "mean |pred-actual| MB/s", "mean I/O (s)"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())

	// Custom scenario: noises 1-3 from the start, 4-6 join at t=3600 s
	// (step 60).
	node := container.NewNode("regime")
	node.MustAddDevice(device.SSD("ssd"))
	hdd := node.MustAddDevice(device.HDD("hdd"))
	set := workload.PaperNoiseSet()
	const joinAt = 3600.0
	for i, n := range set {
		if i >= 3 {
			n.Phase += joinAt
		}
		workload.LaunchNoise(node, hdd, n)
	}
	scen := &Scenario{Node: node, SSD: node.Device("ssd"), HDD: hdd}

	steps := 120
	sc := core.Config{
		Policy: core.CrossLayer, ErrorControl: true, Bound: 0.01, Priority: 10,
		Steps: steps, RefitEvery: 15, Window: 30,
	}
	sess := runOnScenario(scen, app.Name, h, cfg, sc)

	type window struct {
		label      string
		lo, hi     int
		interferer string
	}
	windows := []window{
		{"30-60 (settled, before change)", 30, 60, "3"},
		{"60-75 (stale model)", 60, 75, "6"},
		{"90-120 (after refits)", 90, 120, "6"},
	}
	for _, w := range windows {
		var absErr, io float64
		var n int
		for _, st := range sess.Stats()[w.lo:w.hi] {
			if st.Predicted > 0 {
				absErr += math.Abs(st.Predicted - st.SlowBW)
			}
			io += st.IOTime
			n++
		}
		r.Add(w.label, w.interferer,
			fmt.Sprintf("%.1f", absErr/float64(n)/(1024*1024)),
			fmtS(io/float64(n)))
	}
	r.Notef("Refits every 15 steps over a 30-step window; the stale-model window shows the largest prediction error, recovering once refits absorb the new regime.")
	return r
}
