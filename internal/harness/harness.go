// Package harness defines one runnable experiment per table and figure of
// the paper's evaluation (§IV), sharing a common scenario builder: a
// two-tier node (SSD + HDD), the Table IV interference set, and the three
// applications' refactored datasets. Each experiment returns a Result —
// the same rows/series the paper reports — that cmd/tangobench prints and
// the root bench suite regenerates.
package harness

import (
	"fmt"
	"strings"
	"sync"

	"tango/internal/analytics"
	"tango/internal/errmetric"
	"tango/internal/fault"
	"tango/internal/refactor"
	"tango/internal/tensor"
)

// Config sets experiment scale. Zero values take defaults tuned so the
// full suite runs in seconds while preserving the paper's operating
// regime (per-step retrievals of a few MB against multi-hundred-MB
// periodic checkpoints on a ~100 MB/s capacity tier).
type Config struct {
	// GridN is the side of the (GridN × GridN) analysis fields
	// (default 513; use 1025+ for paper-scale runs).
	GridN int
	// Seed drives all synthetic data and noise randomness (default 42).
	Seed int64
	// Steps is the number of analysis steps per session (default 90:
	// 30 warm-up + 60 measured at the paper's 60 s period).
	Steps int
	// SkipWarmup drops this many leading steps from summaries
	// (default 30, the paper's estimation period).
	SkipWarmup int
	// DatasetMB is the staged on-disk size of each application's
	// refactored dataset (default 2048 MB — the paper's production
	// meshes hold ~60–95M elements, i.e. GB-scale payloads whose
	// retrieval occupies a significant part of each 60 s analysis
	// period). The grid is staged at the payload scale that reaches
	// this size; see staging.StageScaled.
	DatasetMB float64
	// FleetScale multiplies the fleet experiment's canonical sweep
	// (10→1000 nodes, 100→100k sessions). Default 1; tests and quick
	// runs use small fractions (e.g. 0.02). Other experiments ignore it.
	FleetScale float64
	// FaultPlan, when non-nil, is armed on every scenario the
	// experiment builds: each run replays the same virtual-time fault
	// schedule (see internal/fault and the chaos experiment). Events
	// naming a cgroup resolve against the session launched on that
	// scenario; events naming interferers resolve against the Table IV
	// noise set.
	FaultPlan *fault.Plan
}

func (c Config) withDefaults() Config {
	if c.GridN == 0 {
		c.GridN = 513
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Steps == 0 {
		c.Steps = 90
	}
	if c.SkipWarmup == 0 {
		c.SkipWarmup = 30
	}
	if c.DatasetMB == 0 {
		c.DatasetMB = 2048
	}
	if c.FleetScale == 0 {
		c.FleetScale = 1
	}
	return c
}

// Default NRMSE and PSNR ladders used across experiments.
var (
	NRMSEBounds = []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}
	PSNRBounds  = []float64{30, 40, 50, 60, 70, 80}
)

// Result is a generic experiment output table.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (r *Result) Add(cells ...string) { r.Rows = append(r.Rows, cells) }

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Result
}

// Experiments returns the full suite in the paper's order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "QoS in HPC file systems (survey, Table I)", Table1},
		{"fig1", "Equal static blkio weights do not isolate (Fig 1)", Fig01},
		{"fig2", "Accuracy of reduced representations (Fig 2)", Fig02},
		{"fig7", "DFT-based interference estimation (Fig 7)", Fig07},
		{"fig8", "Cross-layer vs single-layer, no error control (Fig 8)", Fig08},
		{"fig9", "Interference mitigation with error control (Fig 9)", Fig09},
		{"fig10", "Data quality of analysis outcomes (Fig 10)", Fig10},
		{"fig11", "Degrees of freedom vs error bound (Fig 11)", Fig11},
		{"fig12", "Sensitivity to noise intensity (Fig 12)", Fig12},
		{"fig13", "Weight-function ablation latency (Fig 13)", Fig13},
		{"fig14a", "Impact of priority (Fig 14a)", Fig14a},
		{"fig14b", "Impact of error bound (Fig 14b)", Fig14b},
		{"fig15", "Weight assignment across time (Fig 15)", Fig15},
		{"fig16", "Weak scaling across nodes (Fig 16)", Fig16},
		{"headline", "Headline improvement vs baselines (§I, §IV)", Headline},
		{"ablation-seek", "Ablation: HDD seek-thrash model (DESIGN.md #1)", AblationNoSeekThrash},
		{"ablation-sort", "Ablation: magnitude-ordered buckets (DESIGN.md #3)", AblationUnsortedBuckets},
		{"ablation-parallel", "Extension: parallel tier reads", AblationParallelReads},
		{"coexist", "Extension: concurrent analytics with priorities", Coexist},
		{"regime", "Extension: interference regime change", Regime},
		{"throttle", "Extension: static throttling vs Tango", ThrottleVsTango},
		{"coordinated", "Extension: node-level weight coordination", Coordinated},
		{"ablation-fifo", "Ablation: FIFO vs proportional-share scheduling", AblationFIFO},
		{"random-noise", "Extension: DFT robustness to aperiodic noise", RandomNoiseRobustness},
		{"tracking", "Extension: blob dynamics on reduced data", Tracking},
		{"chaos", "Extension: fault injection and cross-layer recovery", Chaos},
		{"prefetch", "Extension: predictive fast-tier cache + prefetcher", Prefetch},
		{"resil", "Extension: resilience control plane (retries, breakers, hedging)", Resil},
		{"fleet", "Extension: fleet-scale cluster with object-store capacity tier", Fleet},
		{"tokens", "Extension: decentralized token-bucket weight control", Tokens},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// LookupErr is Lookup with a helpful error: unknown IDs name the closest
// registered experiment (by edit distance) before pointing at -list.
func LookupErr(id string) (Experiment, error) {
	if e, ok := Lookup(id); ok {
		return e, nil
	}
	best, bestDist := "", -1
	for _, e := range Experiments() {
		if d := editDistance(id, e.ID); bestDist < 0 || d < bestDist {
			best, bestDist = e.ID, d
		}
	}
	if best != "" && bestDist <= (len(id)+1)/2 {
		return Experiment{}, fmt.Errorf("unknown experiment %q (did you mean %q? use -list for all)", id, best)
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q (use -list)", id)
}

// editDistance is the Levenshtein distance between two ASCII IDs.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// hierKey memoizes decompositions: they are deterministic, read-only at
// analysis time, and by far the most expensive setup step.
type hierKey struct {
	app    string
	n      int
	seed   int64
	levels int
	metric errmetric.Kind
	bounds string
	noSort bool
}

// hierEntry / fieldEntry make the caches single-flight: the map lookup
// inserts a once-guarded entry under the lock, then the expensive compute
// runs inside the entry's Once outside the lock. Concurrent callers with
// the same key block on the Once instead of duplicating the work (the old
// code dropped the lock around Decompose, so two parallel scenarios could
// each decompose the same hierarchy).
type hierEntry struct {
	once sync.Once
	h    *refactor.Hierarchy
}

type fieldEntry struct {
	once sync.Once
	t    *tensor.Tensor
}

type statsEntry struct {
	once sync.Once
	st   errmetric.Stats
}

var (
	hierMu     sync.Mutex
	hierCache  = map[hierKey]*hierEntry{}  // guarded by hierMu
	fieldCache = map[hierKey]*fieldEntry{} // guarded by hierMu
	statsCache = map[hierKey]*statsEntry{} // guarded by hierMu
)

// appField returns the app's (memoized) synthetic field.
func appField(app analytics.App, cfg Config) *tensor.Tensor {
	key := hierKey{app: app.Name, n: cfg.GridN, seed: cfg.Seed}
	hierMu.Lock()
	e, ok := fieldCache[key]
	if !ok {
		e = &fieldEntry{}
		fieldCache[key] = e
	}
	hierMu.Unlock()
	e.once.Do(func() { e.t = app.Generate(cfg.GridN, cfg.Seed) })
	return e.t
}

// appStats returns the (memoized, single-flight) reference statistics of
// the app's field, so figures that measure many reconstructions against
// it (Fig 2's PSNR table) scan the reference once per field instead of
// once per ratio. Stats are order-independent, so the derived metrics
// are bit-identical to the unmemoized free functions.
func appStats(app analytics.App, cfg Config) errmetric.Stats {
	key := hierKey{app: app.Name, n: cfg.GridN, seed: cfg.Seed}
	hierMu.Lock()
	e, ok := statsCache[key]
	if !ok {
		e = &statsEntry{}
		statsCache[key] = e
	}
	hierMu.Unlock()
	e.once.Do(func() { e.st = errmetric.NewStats(appField(app, cfg).Data()) })
	return e.st
}

// appHierarchy decomposes (memoized, single-flight) the app's field.
func appHierarchy(app analytics.App, cfg Config, opts refactor.Options) *refactor.Hierarchy {
	key := hierKey{
		app: app.Name, n: cfg.GridN, seed: cfg.Seed,
		levels: opts.Levels, metric: opts.Metric,
		bounds: fmt.Sprint(opts.Bounds), noSort: opts.NoSort,
	}
	hierMu.Lock()
	e, ok := hierCache[key]
	if !ok {
		e = &hierEntry{}
		hierCache[key] = e
	}
	hierMu.Unlock()
	e.once.Do(func() {
		orig := appField(app, cfg)
		h, err := refactor.Decompose(orig, opts)
		if err != nil {
			panic(fmt.Sprintf("harness: decompose %s: %v", app.Name, err))
		}
		e.h = h
	})
	return e.h
}

// fmtMB formats bytes/s as MB/s.
func fmtMB(bps float64) string { return fmt.Sprintf("%.1f", bps/(1024*1024)) }

// fmtS formats seconds.
func fmtS(s float64) string { return fmt.Sprintf("%.4f", s) }
