package harness

import (
	"fmt"
	"math"

	"tango/internal/fault"
	"tango/internal/fleet"
	"tango/internal/objstore"
	"tango/internal/runpool"
)

// fleetPoint is one sweep point of the fleet experiment: a cluster shape
// plus its non-numeric row label (the label doubles as the benchdiff row
// key — purely numeric cells are excluded from row identity).
type fleetPoint struct {
	label    string
	nodes    int
	sessions int
}

// fleetSweep scales the canonical 10→1000 node / 100→100k session sweep
// by cfg.FleetScale, keeping every point at a runnable floor.
func fleetSweep(scale float64) []fleetPoint {
	base := []fleetPoint{
		{"10n/100s", 10, 100},
		{"100n/10ks", 100, 10_000},
		{"1000n/100ks", 1000, 100_000},
	}
	out := make([]fleetPoint, len(base))
	for i, p := range base {
		n := int(math.Round(float64(p.nodes) * scale))
		s := int(math.Round(float64(p.sessions) * scale))
		if n < 2 {
			n = 2
		}
		if s < 8 {
			s = 8
		}
		out[i] = fleetPoint{p.label, n, s}
	}
	return out
}

// fleetKillPlan kills max(1, nodes/10) nodes at the epoch-4 barrier for
// two epochs — the fleet arm's canonical fault schedule.
func fleetKillPlan(nodes int) *fault.Plan {
	k := nodes / 10
	if k < 1 {
		k = 1
	}
	p := &fault.Plan{}
	for i := 0; i < k; i++ {
		p.Events = append(p.Events, fault.Event{
			At: 240, Kind: fault.NodeKill, Target: fmt.Sprintf("node%d", i), Duration: 120,
		})
	}
	return p
}

// Fleet sweeps cluster shapes from tens to (at FleetScale 1) a thousand
// nodes, with and without a mass node-kill, and reports aggregate
// delivered throughput, per-node bound violations, migrations,
// object-store egress, and post-kill throughput recovery. Each run is an
// N-node fleet of full single-node stacks over a shared object store
// (internal/fleet); the whole sweep is deterministic in cfg.Seed at any
// -parallel width. A non-nil cfg.FaultPlan replaces the canonical kill
// schedule on the faulted arm.
func Fleet(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:    "fleet",
		Title: "Fleet-scale cluster over a shared object-store capacity tier",
		Header: []string{"scale", "plan", "agg MB/s", "bound viol", "migrations",
			"kills", "egress GB", "cost $", "recovery %"},
	}
	points := fleetSweep(cfg.FleetScale)
	type arm struct {
		name string
		plan func(nodes int) *fault.Plan
	}
	arms := []arm{
		{"none", func(int) *fault.Plan { return nil }},
		{"node-kill", func(n int) *fault.Plan {
			if cfg.FaultPlan != nil {
				return cfg.FaultPlan
			}
			return fleetKillPlan(n)
		}},
	}
	rows := make([]*runpool.Task[[]string], 0, len(points)*len(arms))
	for _, p := range points {
		for _, a := range arms {
			p, a := p, a
			rows = append(rows, runpool.Submit("fleet/"+p.label+"/"+a.name, func() []string {
				c, err := fleet.New(fleet.Config{
					Nodes:    p.nodes,
					Sessions: p.sessions,
					Seed:     cfg.Seed,
					Plan:     a.plan(p.nodes),
				})
				if err != nil {
					panic(err)
				}
				rep, err := c.Run()
				if err != nil {
					panic(err)
				}
				return []string{p.label, a.name,
					fmt.Sprintf("%.1f", rep.AggMBps),
					fmt.Sprintf("%d", rep.Violations),
					fmt.Sprintf("%d", rep.Migrations),
					fmt.Sprintf("%d", rep.Kills),
					objstore.FmtGB(rep.Store.EgressBytes),
					fmt.Sprintf("%.4f", rep.StoreCost),
					fmt.Sprintf("%.0f", 100*rep.RecoveryFrac)}
			}))
		}
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Store: %s per-node frontend, 4:1 oversubscribed shared egress, 30 ms/request (objstore.Default).",
		"200 MB/s")
	r.Notef("node-kill arm takes max(1, N/10) nodes out at the epoch-4 barrier for two epochs; their sessions restart cold on survivors and settle back after revival (docs/fleet.md).")
	r.Notef("Expectations: zero bound violations on the no-fault arm, ≥80%% post-kill throughput recovery.")
	return r
}
