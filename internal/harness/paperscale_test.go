package harness

import (
	"testing"

	"tango/internal/analytics"
	"tango/internal/core"
)

// TestPaperScaleOrdering runs the headline comparison at paper scale
// (1025×1025 fields, 4 GB staged datasets, full Table IV noise) and
// checks the Fig 8 policy ordering holds there too. Heavier than the
// other tests (seconds); skipped under -short.
func TestPaperScaleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	cfg := Config{GridN: 1025, Seed: 42, Steps: 60, SkipWarmup: 30, DatasetMB: 4096}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())

	run := func(p core.Policy) core.Summary {
		return runOne(app.Name, 6, h, cfg, core.Config{Policy: p}).Summary(cfg.SkipWarmup)
	}
	noAdapt := run(core.NoAdapt)
	appOnly := run(core.AppOnly)
	cross := run(core.CrossLayer)

	if !(cross.MeanIO < noAdapt.MeanIO) {
		t.Fatalf("paper scale: cross %.3f !< no-adapt %.3f", cross.MeanIO, noAdapt.MeanIO)
	}
	if !(cross.MeanIO < appOnly.MeanIO*1.02) {
		t.Fatalf("paper scale: cross %.3f should not lose to app-only %.3f", cross.MeanIO, appOnly.MeanIO)
	}
	improvement := 100 * (1 - cross.MeanIO/noAdapt.MeanIO)
	t.Logf("paper scale: no-adapt %.2fs, app-only %.2fs, cross %.2fs (%.0f%% vs no-adapt)",
		noAdapt.MeanIO, appOnly.MeanIO, cross.MeanIO, improvement)
	if improvement < 5 {
		t.Fatalf("paper scale improvement only %.1f%%", improvement)
	}
}
