package harness

import (
	"fmt"

	"tango/internal/analytics"
	"tango/internal/core"
	"tango/internal/fault"
	"tango/internal/resil"
	"tango/internal/runpool"
	"tango/internal/trace"
)

// MassFaultPlan is the resilience experiment's heavy schedule: a denser
// capacity-tier plan than ChaosPlan plus a fast-tier (SSD) plan, so both
// legs of a hedged read see faults and the retry budget is actually
// contended. Deterministic in cfg.Seed like every generated plan.
func MassFaultPlan(cfg Config) *fault.Plan {
	cfg = cfg.withDefaults()
	horizon := float64(cfg.Steps) * 60
	hdd, err := fault.Generate(cfg.Seed, fault.GenerateOptions{
		Horizon:     horizon,
		Device:      "hdd",
		Cgroup:      chaosSession,
		Interferers: []string{"noise1", "noise2", "noise3"},
		Events:      15,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: mass plan (hdd): %v", err))
	}
	ssd, err := fault.Generate(cfg.Seed+1, fault.GenerateOptions{
		Horizon: horizon,
		Device:  "ssd",
		Events:  5,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: mass plan (ssd): %v", err))
	}
	return &fault.Plan{Events: append(hdd.Events, ssd.Events...)}
}

// Resil compares fault recovery disciplines under identical fault plans:
// the legacy ad-hoc retry loops (PR 2's recovery paths), the resilience
// control plane (policy-keyed retries, retry budgets, circuit breakers),
// and the control plane with forecast-driven hedged reads on top of the
// fast-tier cache. Two plans: the standard chaos schedule and a mass
// schedule that also faults the fast tier. The control plane must salvage
// at least the ad-hoc throughput while bounding retry amplification
// (attempts per operation) and never violating the prescribed bound.
func Resil(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:    "resil",
		Title: "Resilience control plane: ad-hoc vs policy-keyed vs hedged recovery",
		Header: []string{"recovery", "plan", "mean I/O (s)", "mean BW MB/s", "retries",
			"amp", "degraded", "bound viol", "breaker opens", "hedges", "unpaired"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	const bound = 0.01
	mandatory, err := h.CursorForBound(bound)
	if err != nil {
		panic(err)
	}
	arms := []struct {
		name  string
		pol   core.Policy
		resil bool
		hedge bool
	}{
		// The hedged arm runs on the prefetch policy: hedging races the
		// cache's fast-tier copy against the capacity tier, so it needs
		// cached prefixes to exist.
		{"ad-hoc", core.CrossLayer, false, false},
		{"policy-keyed", core.CrossLayer, true, false},
		{"hedged", core.CrossLayerPrefetch, true, true},
	}
	plans := []struct {
		name string
		plan *fault.Plan
	}{
		{"chaos", ChaosPlan(cfg)},
		{"mass", MassFaultPlan(cfg)},
	}
	rows := make([]*runpool.Task[[]string], 0, len(arms)*len(plans))
	for _, arm := range arms {
		for _, pl := range plans {
			arm, pl := arm, pl
			rows = append(rows, runpool.Submit("resil/"+arm.name+"/"+pl.name, func() []string {
				rec := trace.New(32768)
				scen := NewScenario(fmt.Sprintf("resil-%s-%s", arm.name, pl.name), 3)
				runCfg := cfg
				runCfg.FaultPlan = pl.plan
				sc := core.Config{
					Policy: arm.pol, ErrorControl: true, Bound: bound, Priority: 10,
					RefitEvery: 10, Trace: rec,
				}
				var rc *resil.Controller
				if arm.resil {
					rc = resil.New(scen.Node.Engine(), resil.Options{
						Trace: rec,
						Hedge: resil.HedgeConfig{Enabled: arm.hedge},
					})
					sc.Resil = rc
				}
				sess := runOnScenario(scen, chaosSession, h, runCfg, sc)
				sum := sess.Summary(cfg.SkipWarmup)
				viol := 0
				stepRetries := 0
				for _, st := range sess.Stats() {
					stepRetries += st.Retries
					if st.Cursor < mandatory {
						viol++
					}
				}
				unpaired := len(fault.Unpaired(rec.Events()))
				retries, amp, degraded, opens, hedges := stepRetries, "-", "-", "-", "-"
				if rc != nil {
					tot := rc.Totals()
					retries = tot.Retries
					amp = fmt.Sprintf("%.3f", tot.Amplification())
					degraded = fmt.Sprintf("%d", tot.Degraded)
					opens = fmt.Sprintf("%d", tot.BreakerOpens)
					hedges = fmt.Sprintf("%d", tot.Hedges)
				}
				return []string{arm.name, pl.name, fmtS(sum.MeanIO), fmtMB(sum.MeanBW),
					fmt.Sprintf("%d", retries), amp, degraded,
					fmt.Sprintf("%d", viol), opens, hedges,
					fmt.Sprintf("%d", unpaired)}
			}))
		}
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Identical plans per arm — chaos: %s", plans[0].plan)
	r.Notef("mass adds SSD-tier faults: %s", plans[1].plan)
	r.Notef("Policy catalog: mandatory reads retry unbounded (budget-paced when dry), optional reads are deadlined at a minimum useful bandwidth and degrade, weight writes are breaker-gated per cgroup, hedged reads race the cache tier against the capacity tier during forecast-contended windows (see docs/resil.md).")
	return r
}
