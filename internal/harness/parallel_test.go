package harness

import (
	"bytes"
	"testing"

	"tango/internal/runpool"
)

// TestParallelSuiteByteIdentical is the runner's determinism contract:
// the JSON a tangobench -json run emits must be byte-identical whether
// scenario jobs run inline on one worker or concurrently on four. The
// subset mixes a pure-compute fan-out (fig2), a session fan-out with
// nested jobs (fig10), and the fault-injection rows (chaos).
func TestParallelSuiteByteIdentical(t *testing.T) {
	cfg := Config{GridN: 65, Seed: 7, Steps: 20, SkipWarmup: 5, DatasetMB: 256}
	ids := []string{"fig2", "fig10", "chaos"}
	suite := func(workers int) []byte {
		runpool.SetWorkers(workers)
		defer runpool.SetWorkers(0)
		var results []*Result
		for _, id := range ids {
			e, ok := Lookup(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			results = append(results, e.Run(cfg))
		}
		var buf bytes.Buffer
		if err := WriteSuiteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := suite(1)
	par := suite(4)
	if !bytes.Equal(seq, par) {
		sl, pl := bytes.Split(seq, []byte("\n")), bytes.Split(par, []byte("\n"))
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if !bytes.Equal(sl[i], pl[i]) {
				t.Fatalf("parallel output diverges at line %d:\nseq: %s\npar: %s", i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("parallel output length differs: seq %d bytes, par %d bytes", len(seq), len(par))
	}
}
