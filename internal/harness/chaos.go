package harness

import (
	"fmt"

	"tango/internal/analytics"
	"tango/internal/core"
	"tango/internal/fault"
	"tango/internal/runpool"
	"tango/internal/trace"
)

// chaosSession is the fixed session name the chaos plan's cgroup faults
// target, shared by every policy run so one plan applies to all.
const chaosSession = "analytics"

// ChaosPlan is the deterministic fault schedule the chaos experiment
// replays identically for every policy: one event of every fault class,
// drawn from the config seed against the standard scenario (HDD capacity
// tier, the analytics session's cgroup, the first three Table IV
// interferers).
func ChaosPlan(cfg Config) *fault.Plan {
	cfg = cfg.withDefaults()
	plan, err := fault.Generate(cfg.Seed, fault.GenerateOptions{
		Horizon:     float64(cfg.Steps) * 60,
		Device:      "hdd",
		Cgroup:      chaosSession,
		Interferers: []string{"noise1", "noise2", "noise3"},
		Events:      9,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: chaos plan: %v", err))
	}
	return plan
}

// Chaos runs the four policies through an identical fault schedule —
// device degradations, cgroup faults, and workload churn — and reports
// what each salvaged: perceived bandwidth, retries spent, steps that
// shed above-bound augmentation, prescribed-bound violations (always 0:
// mandatory data retries through faults), and faults left without a
// recorded recovery action.
func Chaos(cfg Config) *Result {
	cfg = cfg.withDefaults()
	plan := ChaosPlan(cfg)
	if cfg.FaultPlan != nil {
		plan = cfg.FaultPlan
	}
	r := &Result{
		ID:     "chaos",
		Title:  "Fault injection and cross-layer recovery (XGC)",
		Header: []string{"policy", "mean I/O (s)", "mean BW MB/s", "retries", "degraded steps", "bound viol", "faults", "unpaired"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	const bound = 0.01
	mandatory, err := h.CursorForBound(bound)
	if err != nil {
		panic(err)
	}
	// ExtendedPolicies adds cross-layer+prefetch: pre-staged fast-tier
	// data keeps serving through capacity-tier bandwidth collapses, so
	// the cache variant should salvage more perceived bandwidth. Each
	// policy replays the same immutable plan on its own scenario, so the
	// runs are independent pool jobs.
	policies := core.ExtendedPolicies()
	rows := make([]*runpool.Task[[]string], len(policies))
	for i, pol := range policies {
		rows[i] = runpool.Submit("chaos/"+pol.String(), func() []string {
			rec := trace.New(32768)
			scen := NewScenario(fmt.Sprintf("chaos-%d", int(pol)), 3)
			runCfg := cfg
			runCfg.FaultPlan = plan
			// RefitEvery 10 keeps the recovery cadence dense enough that a
			// refit (periodic or regime-triggered) lands after the last
			// scheduled fault for any step count divisible by 10.
			sc := core.Config{
				Policy: pol, ErrorControl: true, Bound: bound, Priority: 10,
				RefitEvery: 10, Trace: rec,
			}
			sess := runOnScenario(scen, chaosSession, h, runCfg, sc)
			sum := sess.Summary(cfg.SkipWarmup)
			retries, degraded, viol := 0, 0, 0
			for _, st := range sess.Stats() {
				retries += st.Retries
				if st.Degraded {
					degraded++
				}
				if st.Cursor < mandatory {
					viol++
				}
			}
			unpaired := len(fault.Unpaired(rec.Events()))
			return []string{pol.String(), fmtS(sum.MeanIO), fmtMB(sum.MeanBW),
				fmt.Sprintf("%d", retries), fmt.Sprintf("%d", degraded),
				fmt.Sprintf("%d", viol),
				fmt.Sprintf("%d", scen.Injector.Injected()),
				fmt.Sprintf("%d", unpaired)}
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Identical fault plan per policy: %s", plan)
	r.Notef("Recovery paths: staging retries reads with backoff and sheds only above-bound augmentation; the controller refits on sustained misprediction; failed weight writes are tolerated and re-applied.")
	return r
}
