package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestLookupErrSuggests(t *testing.T) {
	if e, err := LookupErr("prefetch"); err != nil || e.ID != "prefetch" {
		t.Fatalf("LookupErr(prefetch) = %v, %v", e.ID, err)
	}
	_, err := LookupErr("prefetchh")
	if err == nil || !strings.Contains(err.Error(), `did you mean "prefetch"`) {
		t.Fatalf("no typo suggestion: %v", err)
	}
	_, err = LookupErr("zzzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("far-off id should not get a suggestion: %v", err)
	}
	if !strings.Contains(err.Error(), "-list") {
		t.Fatalf("error should point at -list: %v", err)
	}
}

func TestPrefetchBeatsCrossLayer(t *testing.T) {
	r := Prefetch(smallCfg())
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 apps x 2 policies", len(r.Rows))
	}
	parse := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, col, err)
		}
		return v
	}
	for i := 0; i < len(r.Rows); i += 2 {
		base, pf := r.Rows[i], r.Rows[i+1]
		if base[0] != pf[0] {
			t.Fatalf("row pairing broken: %v vs %v", base, pf)
		}
		if base[1] != "cross-layer" || pf[1] != "cross-layer+prefetch" {
			t.Fatalf("policy order: %v / %v", base[1], pf[1])
		}
		if baseIO, pfIO := parse(base, 2), parse(pf, 2); pfIO >= baseIO {
			t.Fatalf("%s: prefetch mean I/O %.3f not below cross-layer %.3f", base[0], pfIO, baseIO)
		}
		if base[7] != "0" || pf[7] != "0" {
			t.Fatalf("%s: bound violations %s/%s", base[0], base[7], pf[7])
		}
		if hit := parse(pf, 4); hit <= 0 {
			t.Fatalf("%s: cache hit ratio %.1f%%", pf[0], hit)
		}
		if parse(pf, 6) <= 0 {
			t.Fatalf("%s: nothing staged", pf[0])
		}
	}
	// Every app gets a foreground-bandwidth note.
	bwNotes := 0
	for _, n := range r.Notes {
		if strings.Contains(n, "capacity-tier BW") {
			bwNotes++
		}
	}
	if bwNotes != 3 {
		t.Fatalf("fg BW notes = %d, want 3", bwNotes)
	}
}
