package harness

import (
	"fmt"

	"tango/internal/analytics"
	"tango/internal/core"
	"tango/internal/device"
	"tango/internal/dftestim"
	"tango/internal/refactor"
	"tango/internal/runpool"
	"tango/internal/synth"
	"tango/internal/tensor"
	"tango/internal/workload"
)

// ThrottleVsTango contrasts the QoS mechanism the file systems of Table I
// offer — static administrator-set throttling of the interferers — with
// Tango's cross-layer adaptation. On rotational media throttling
// backfires: capping each checkpoint's rate stretches its write window,
// raising the duty cycle of contention and the number of concurrently
// active streams (seek thrash), so the analytics gets slower even though
// every individual interferer is "tamed". Tango needs no administrator
// action and adapts at runtime (Motivations 1/2).
func ThrottleVsTango(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "throttle",
		Title:  "Static throttling (Table I style) vs Tango (XGC, NRMSE 0.01)",
		Header: []string{"mechanism", "analytics mean I/O (s)", "noise throughput (MB/s)"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())

	run := func(throttleBps float64, policy core.Policy) (float64, float64) {
		scen := NewScenario("qos", 6)
		if throttleBps > 0 {
			for _, n := range workload.PaperNoiseSet() {
				if c := scen.Node.Container(n.Name); c != nil {
					c.Cgroup().SetWriteBpsLimit(throttleBps)
				}
			}
		}
		sc := core.Config{Policy: policy, ErrorControl: true, Bound: 0.01, Priority: 10}
		sess := runOnScenario(scen, app.Name, h, cfg, sc)
		var noiseBytes float64
		for _, n := range workload.PaperNoiseSet() {
			if c := scen.Node.Container(n.Name); c != nil {
				noiseBytes += c.Cgroup().BytesWritten()
			}
		}
		elapsed := scen.Node.Engine().Now()
		return sess.Summary(cfg.SkipWarmup).MeanIO, noiseBytes / elapsed / device.MB
	}

	type res struct{ io, noise float64 }
	submit := func(label string, throttleBps float64, policy core.Policy) *runpool.Task[res] {
		return runpool.Submit("throttle/"+label, func() res {
			io, n := run(throttleBps, policy)
			return res{io, n}
		})
	}
	t0 := submit("baseline", 0, core.NoAdapt)
	t1 := submit("throttled", 10*device.MB, core.NoAdapt)
	t2 := submit("tango", 0, core.CrossLayer)
	v0 := t0.Wait()
	r.Add("none (baseline)", fmtS(v0.io), fmt.Sprintf("%.1f", v0.noise))
	v1 := t1.Wait()
	r.Add("admin throttles noise to 10 MB/s each", fmtS(v1.io), fmt.Sprintf("%.1f", v1.noise))
	v2 := t2.Wait()
	r.Add("tango cross-layer (no admin action)", fmtS(v2.io), fmt.Sprintf("%.1f", v2.noise))
	r.Notef("Static throttling stretches each checkpoint's write window (1 GB at 10 MB/s holds the disk ~100 s), so interference becomes near-continuous and seek thrash collapses aggregate throughput — the analytics gets SLOWER. Tango improves the analytics without admin action and without taxing the checkpoints.")
	return r
}

// RandomNoiseRobustness tests the §II claim that non-recurrent random
// activity (compilation, shell commands) is low-impact and is filtered
// out by DFT thresholding: adding an aperiodic writer barely moves the
// thresholded estimator's accuracy, while an unthresholded fit chases the
// noise.
func RandomNoiseRobustness(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "random-noise",
		Title:  "DFT thresholding filters aperiodic noise (XGC probe run)",
		Header: []string{"thresh", "MAE periodic-only (MB/s)", "MAE +aperiodic (MB/s)", "perturbation"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())

	collect := func(withRandom bool) []float64 {
		scen := NewScenario("rnd", 4)
		if withRandom {
			workload.RandomNoise(scen.Node, scen.HDD, "adhoc", 25, 8*device.MB, 64*device.MB, 77)
		}
		sess := runOnScenario(scen, app.Name, h, cfg, core.Config{Policy: core.NoAdapt, Steps: 60})
		out := make([]float64, 0, 60)
		for _, st := range sess.Stats() {
			out = append(out, st.SlowBW)
		}
		return out
	}

	cleanT := runpool.Submit("random-noise/periodic-only", func() []float64 { return collect(false) })
	noisyT := runpool.Submit("random-noise/with-aperiodic", func() []float64 { return collect(true) })
	clean := cleanT.Wait()
	noisy := noisyT.Wait()
	mae := func(samples []float64, frac float64) float64 {
		est := dftestim.NewEstimator()
		est.ThreshFrac = frac
		est.Window = 30
		for _, bw := range samples[:30] {
			est.Observe(bw)
		}
		if err := est.Fit(); err != nil {
			panic(err)
		}
		return est.MeanAbsError(30, samples[30:])
	}
	for _, frac := range []float64{0, 0.5} {
		mc := mae(clean, frac)
		mn := mae(noisy, frac)
		r.Add(fmt.Sprintf("%.0f%%", frac*100), fmtMB(mc), fmtMB(mn),
			fmt.Sprintf("+%.1f MB/s", (mn-mc)/device.MB))
	}
	r.Notef("The claim under test (§II): aperiodic activity is filtered by thresholding. The perturbation column — how much the aperiodic writer degrades prediction — is smaller with the 50%% threshold than without it.")
	return r
}

// AblationFIFO replaces the HDD's proportional-share scheduler with FIFO
// head-of-line service. FIFO ignores cgroup weights entirely, so the
// storage layer loses its control knob and cross-layer degenerates to
// application-only adaptivity — why Tango presumes the "Ext4 with
// cgroups" row of Table I (proportional-share semantics) as its
// substrate.
func AblationFIFO(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "ablation-fifo",
		Title:  "Ablation: FIFO removes the storage-layer knob (XGC, NRMSE 0.01, p=10)",
		Header: []string{"scheduler", "app-only mean I/O (s)", "cross-layer mean I/O (s)", "cross-layer gain"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	type pair struct {
		sched          device.Scheduler
		appOnly, cross *runpool.Task[float64]
	}
	var pairs []pair
	for _, sched := range []device.Scheduler{device.ProportionalShare, device.FIFO} {
		run := func(policy core.Policy) *runpool.Task[float64] {
			return runpool.Submit("ablation-fifo/"+sched.String()+"/"+policy.String(), func() float64 {
				hdd := device.HDD("hdd")
				hdd.Scheduler = sched
				scen := newScenarioWithHDD("fifo", 6, hdd)
				sc := core.Config{Policy: policy, ErrorControl: true, Bound: 0.01, Priority: 10}
				return runOnScenario(scen, app.Name, h, cfg, sc).Summary(cfg.SkipWarmup).MeanIO
			})
		}
		pairs = append(pairs, pair{sched, run(core.AppOnly), run(core.CrossLayer)})
	}
	for _, p := range pairs {
		appOnly, cross := p.appOnly.Wait(), p.cross.Wait()
		r.Add(p.sched.String(), fmtS(appOnly), fmtS(cross),
			fmt.Sprintf("%.0f%%", 100*(1-cross/appOnly)))
	}
	r.Notef("Under FIFO the weight function has nothing to act on, so the cross-layer gain over application-only adaptivity collapses; proportional share is the substrate assumption.")
	return r
}

// Tracking extends Fig 2's static accuracy story to blob DYNAMICS, the
// physics the XGC analysis actually chases: blobs are tracked across a
// short sequence of frames, on full data versus bound-controlled
// reconstructions. The temporal statistics (track count, persistence,
// convective speed) survive moderate bounds.
func Tracking(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "tracking",
		Title:  "Blob tracking on reduced data (XGC sequence, 6 frames)",
		Header: []string{"data", "tracks", "mean length", "mean speed", "outcome err"},
	}
	opts := synth.DefaultXGC(minInt(cfg.GridN, 257), cfg.Seed)
	opts.Blobs = 8
	frames, _ := synth.XGCSequence(opts, 6, 1.5)
	o := analytics.DefaultBlobOptions()
	ref := analytics.SummarizeTracks(analytics.TrackBlobs(frames, o, 8), 2)
	r.Add("full", fmt.Sprintf("%d", ref.Tracks), fmt.Sprintf("%.1f", ref.MeanLength),
		fmt.Sprintf("%.2f", ref.MeanSpeed), "0.0000")

	bounds := []float64{0.05, 0.1}
	rows := make([]*runpool.Task[[]string], len(bounds))
	for i, bound := range bounds {
		rows[i] = runpool.Submit(fmt.Sprintf("tracking/nrmse%g", bound), func() []string {
			var reduced []*tensor.Tensor
			for _, f := range frames {
				h, err := refactor.Decompose(f, refactor.Options{Levels: 3, Bounds: []float64{bound}})
				if err != nil {
					panic(err)
				}
				cur, err := h.CursorForBound(bound)
				if err != nil {
					panic(err)
				}
				reduced = append(reduced, h.Recompose(cur))
			}
			st := analytics.SummarizeTracks(analytics.TrackBlobs(reduced, o, 8), 2)
			return []string{fmt.Sprintf("NRMSE %g", bound), fmt.Sprintf("%d", st.Tracks),
				fmt.Sprintf("%.1f", st.MeanLength), fmt.Sprintf("%.2f", st.MeanSpeed),
				fmt.Sprintf("%.4f", st.RelErrVs(ref))}
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Greedy nearest-centroid tracking, gate 8 cells/frame; blobs drift 1.5 cells/frame.")
	return r
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
