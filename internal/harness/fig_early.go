package harness

import (
	"fmt"

	"tango/internal/device"
	"tango/internal/refactor"
	"tango/internal/runpool"
	"tango/internal/workload"
)

// Table1 reproduces the paper's Table I: the QoS capabilities of major
// HPC file systems (a static survey motivating node-local cgroup-based
// control, which Ext4-with-cgroups uniquely provides per-application and
// at runtime).
func Table1(cfg Config) *Result {
	r := &Result{
		ID:     "table1",
		Title:  "QoS in HPC file systems",
		Header: []string{"File system", "Per-app control", "Runtime adjust", "QoS mechanism", "Scheduling"},
	}
	r.Add("Lustre (>2.6)", "no", "no", "throttling", "token bucket filter")
	r.Add("Spectrum Scale (5.0.4)", "no", "no", "throttling per pool (2 classes)", "unknown")
	r.Add("Ceph (13.2.6)", "no", "no", "throttling", "dmclock")
	r.Add("OrangeFS (2.9.7)", "no", "no", "none", "none")
	r.Add("Ext4 with cgroups", "yes", "yes", "proportional weight, throttling", "completely fair scheduling")
	r.Notef("Motivation 1: only node-local cgroups offer per-application, runtime-adjustable QoS.")
	return r
}

// Fig01 reproduces Fig 1: three data analytics containers with equal
// blkio weights reading periodically from the shared HDD. The perceived
// bandwidth of each collapses while the others' reads and the checkpoint
// noise overlap, and recovers when a container runs alone — static
// proportional weights do not isolate.
func Fig01(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig1",
		Title:  "I/O performance of data analytics with equal weights (shared HDD)",
		Header: []string{"t(s)", "XGC MB/s", "GenASiS MB/s", "CFD MB/s"},
	}
	scen := NewScenario("fig1", 3) // moderate background noise

	type series struct {
		name  string
		steps int
		bw    map[int]float64
	}
	// Different lifetimes: CFD exits first, then GenASiS; XGC runs on and
	// should see its bandwidth recover.
	apps := []*series{
		{name: "XGC", steps: 30, bw: map[int]float64{}},
		{name: "GenASiS", steps: 18, bw: map[int]float64{}},
		{name: "CFD", steps: 10, bw: map[int]float64{}},
	}
	readBytes := 256 * float64(device.MB)
	for _, a := range apps {
		a := a
		workload.PeriodicReader(scen.Node, scen.HDD, a.name, 60, a.steps,
			func(step int) float64 { return readBytes },
			func(step int, start, ioTime, bytes float64) {
				a.bw[step] = bytes / ioTime
			})
	}
	if err := scen.Node.Engine().Run(30*60 + 600); err != nil {
		panic(err)
	}
	for step := 0; step < 30; step++ {
		row := []string{fmt.Sprintf("%d", step*60)}
		for _, a := range apps {
			if bw, ok := a.bw[step]; ok {
				row = append(row, fmtMB(bw))
			} else {
				row = append(row, "-")
			}
		}
		r.Add(row...)
	}
	// Quantify the recovery: XGC's mean bandwidth alone vs while all
	// three analytics run. Iterate step indices in order (not map order)
	// so the float sums are deterministic.
	var contended, alone float64
	var nc, na int
	for step := 0; step < apps[0].steps; step++ {
		bw, ok := apps[0].bw[step]
		if !ok {
			continue
		}
		if step < 10 {
			contended += bw
			nc++
		} else if step >= 18 {
			alone += bw
			na++
		}
	}
	if nc > 0 && na > 0 {
		r.Notef("XGC perceived bandwidth: %.1f MB/s with 3 analytics running vs %.1f MB/s after the others exit (%.0f%% drop under equal weights).",
			contended/float64(nc)/(1024*1024), alone/float64(na)/(1024*1024),
			100*(1-(contended/float64(nc))/(alone/float64(na))))
	}
	return r
}

// Fig02 reproduces Fig 2: PSNR of the reduced representation and the
// relative error of each analysis outcome as the decimation ratio grows.
// Even at extreme ratios the outcome error stays bounded (Motivation 3).
func Fig02(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:    "fig2",
		Title: "Accuracy of using a reduced representation",
		Header: []string{"decimation", "XGC PSNR", "XGC relerr", "GenASiS PSNR", "GenASiS relerr",
			"CFD PSNR", "CFD relerr"},
	}
	ratios := []float64{4, 16, 64, 256, 512, 8192}
	rows := make([]*runpool.Task[[]string], len(ratios))
	for i, ratio := range ratios {
		rows[i] = runpool.Submit(fmt.Sprintf("fig2/ratio%.0f", ratio), func() []string {
			row := []string{fmt.Sprintf("%.0f", ratio)}
			for _, app := range appsUnderTest() {
				orig := appField(app, cfg)
				levels := refactor.LevelsForRatio(ratio, 2, 2)
				h := appHierarchy(app, cfg, refactor.Options{Levels: levels})
				rec := h.Recompose(0) // reduced representation only
				psnr := appStats(app, cfg).PSNR(orig.Data(), rec.Data())
				relerr := app.OutcomeErr(orig, rec)
				row = append(row, fmt.Sprintf("%.1f", psnr), fmt.Sprintf("%.3f", relerr))
			}
			return row
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Reduced representation = base level only (no augmentation); ratio maps to levels via LevelsForRatio (achieved point-count ratio is the nearest power of 4).")
	return r
}
