package harness

import (
	"fmt"

	"tango/internal/analytics"
	"tango/internal/coordinator"
	"tango/internal/core"
	"tango/internal/runpool"
)

// Coordinated evaluates the node-level weight allocator extension: two
// concurrent Tango sessions (p=10 and p=1) run with independent weight
// requests versus with the coordinator rescaling concurrent requests to
// the full blkio range while preserving the priority ratio. Coordination
// buys both sessions more share against the interfering containers
// without collapsing the differentiation.
func Coordinated(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "coordinated",
		Title:  "Node-level weight coordination across sessions (NRMSE 0.01)",
		Header: []string{"mode", "interactive mean I/O", "batch mean I/O", "interactive advantage"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())

	run := func(withAllocator bool) (float64, float64) {
		scen := NewScenario("coord", 4)
		var alloc *coordinator.Allocator
		if withAllocator {
			alloc = coordinator.New()
		}
		mk := func(name string, p float64) *core.Session {
			sess, err := core.NewSession(name, scen.Stage(h, cfg.DatasetMB), core.Config{
				Policy: core.CrossLayer, ErrorControl: true, Bound: 0.01,
				Priority: p, Steps: cfg.Steps, Allocator: alloc,
			})
			if err != nil {
				panic(err)
			}
			if err := sess.Launch(scen.Node); err != nil {
				panic(err)
			}
			return sess
		}
		interactive := mk("interactive", 10)
		batch := mk("batch", 1)
		if err := scen.Node.Engine().Run(float64(cfg.Steps)*60 + 3600); err != nil {
			panic(err)
		}
		return interactive.Summary(cfg.SkipWarmup).MeanIO, batch.Summary(cfg.SkipWarmup).MeanIO
	}

	type pair struct{ i, b float64 }
	tu := runpool.Submit("coordinated/uncoordinated", func() pair { i, b := run(false); return pair{i, b} })
	tc := runpool.Submit("coordinated/coordinated", func() pair { i, b := run(true); return pair{i, b} })
	pu := tu.Wait()
	r.Add("uncoordinated", fmtS(pu.i), fmtS(pu.b), fmt.Sprintf("%.0f%%", 100*(1-pu.i/pu.b)))
	pc := tc.Wait()
	r.Add("coordinated", fmtS(pc.i), fmtS(pc.b), fmt.Sprintf("%.0f%%", 100*(1-pc.i/pc.b)))
	r.Notef("The allocator rescales concurrent desired weights so the largest uses the full blkio range with ratios preserved; both sessions gain share against the Table IV noise.")
	return r
}
