package harness

import (
	"fmt"
	"math"

	"tango/internal/analytics"
	"tango/internal/core"
	"tango/internal/errmetric"
	"tango/internal/refactor"
	"tango/internal/runpool"
)

// Fig11 reproduces Fig 11: the percentage of the degrees of freedom that
// must be retrieved to satisfy each error bound, per application, for
// both metrics.
func Fig11(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig11",
		Title:  "Percentage of degrees of freedom vs error bound",
		Header: []string{"metric", "bound", "XGC DoF%", "GenASiS DoF%", "CFD DoF%"},
	}
	type variant struct {
		metric errmetric.Kind
		bounds []float64
	}
	for _, v := range []variant{
		{errmetric.NRMSE, NRMSEBounds},
		{errmetric.PSNR, PSNRBounds},
	} {
		// One hierarchy per app with the full ladder; the decompositions
		// are independent, so they build as parallel pool jobs.
		tasks := map[string]*runpool.Task[*refactor.Hierarchy]{}
		for _, app := range appsUnderTest() {
			tasks[app.Name] = runpool.Submit("fig11/"+v.metric.String()+"/"+app.Name, func() *refactor.Hierarchy {
				return appHierarchy(app, cfg, refactor.Options{
					Levels: refactor.LevelsForRatio(16, 2, 2),
					Metric: v.metric,
					Bounds: v.bounds,
				})
			})
		}
		hs := map[string]*refactor.Hierarchy{}
		for _, app := range appsUnderTest() {
			hs[app.Name] = tasks[app.Name].Wait()
		}
		for _, bound := range v.bounds {
			row := []string{v.metric.String(), fmt.Sprintf("%g", bound)}
			for _, app := range appsUnderTest() {
				h := hs[app.Name]
				cur, err := h.CursorForBound(bound)
				if err != nil {
					panic(err)
				}
				row = append(row, fmt.Sprintf("%.1f%%", 100*h.DoFFraction(cur)))
			}
			r.Add(row...)
		}
	}
	r.Notef("DoF%% counts the base representation plus retrieved augmentation entries over all original points.")
	return r
}

// Fig12 reproduces Fig 12: average I/O time of cross-layer vs
// single-layer (storage) as interfering containers are added 3 → 6
// (containers #1–#3 first, then #4, #5, #6 — Table IV).
func Fig12(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig12",
		Title:  "Performance vs noise intensity (XGC, p=10, NRMSE 0.01; avg I/O time ± std, s)",
		Header: []string{"noises", "cross-layer", "single-layer/storage"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	run := func(n int, p core.Policy) *runpool.Task[core.Summary] {
		sc := core.Config{ErrorControl: true, Bound: 0.01, Priority: 10, Policy: p}
		return runpool.Submit(fmt.Sprintf("fig12/n%d/%s", n, p), func() core.Summary {
			return runOne(app.Name, n, h, cfg, sc).Summary(cfg.SkipWarmup)
		})
	}
	type pair struct{ cross, storage *runpool.Task[core.Summary] }
	var pairs []pair
	for n := 3; n <= 6; n++ {
		pairs = append(pairs, pair{run(n, core.CrossLayer), run(n, core.StorageOnly)})
	}
	for i, p := range pairs {
		cross, storage := p.cross.Wait(), p.storage.Wait()
		r.Add(fmt.Sprintf("%d", i+3),
			fmt.Sprintf("%s±%s", fmtS(cross.MeanIO), fmtS(cross.StdIO)),
			fmt.Sprintf("%s±%s", fmtS(storage.MeanIO), fmtS(storage.StdIO)))
	}
	r.Notef("Cross-layer stays nearly flat; the storage-only mean and variance degrade with noise intensity (Fig 12's observation).")
	return r
}

// latencyToBound averages, over measured steps, the time from step start
// until the retrieval has covered the rung of `bound`: the base read time
// when the base alone satisfies the bound, otherwise the completion time
// of the bucket whose range reaches the rung cursor.
func latencyToBound(sess *core.Session, h *refactor.Hierarchy, bound float64, skip int) float64 {
	rung, err := h.CursorForBound(bound)
	if err != nil {
		panic(err)
	}
	var sum float64
	var n int
	for _, st := range sess.Stats()[skip:] {
		lt := math.NaN()
		if rung == 0 {
			lt = st.BaseTime
		} else {
			for _, b := range st.Buckets {
				if b.To >= rung {
					lt = b.Start + b.Elapsed - st.Start
					break
				}
			}
		}
		if !math.IsNaN(lt) {
			sum += lt
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Fig13 reproduces Fig 13: the latency to retrieve the augmentation that
// elevates the accuracy to ε₁ = 0.01, as the weight function
// progressively incorporates cardinality, priority, and accuracy —
// against the single-layer (application) baseline.
func Fig13(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig13",
		Title:  "Latency to elevate accuracy to 0.01 NRMSE (p=10; avg s)",
		Header: []string{"app", "single-layer", "cardinality", "card+priority", "card+prio+accuracy"},
	}
	apps := appsUnderTest()
	rows := make([]*runpool.Task[[]string], len(apps))
	for i, app := range apps {
		rows[i] = runpool.Submit("fig13/"+app.Name, func() []string {
			h := appHierarchy(app, cfg, defaultOpts())
			base := core.Config{ErrorControl: true, Bound: 0.01, Priority: 10}

			run := func(label string, policy core.Policy, disablePrio, disableAcc bool) *runpool.Task[float64] {
				sc := base
				sc.Policy = policy
				sc.DisablePriorityTerm = disablePrio
				sc.DisableAccuracyTerm = disableAcc
				return runpool.Submit("fig13/"+app.Name+"/"+label, func() float64 {
					return latencyToBound(runOne(app.Name, 6, h, cfg, sc), h, 0.01, cfg.SkipWarmup)
				})
			}
			single := run("single", core.AppOnly, false, false)
			cardOnly := run("card", core.CrossLayer, true, true)
			cardPrio := run("card+prio", core.CrossLayer, false, true)
			full := run("full", core.CrossLayer, false, false)
			return []string{app.Name, fmtS(single.Wait()), fmtS(cardOnly.Wait()), fmtS(cardPrio.Wait()), fmtS(full.Wait())}
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Cardinality-only equals single-layer storage adaptivity (paper note under Fig 13).")
	return r
}

// Fig14a reproduces Fig 14a: cross-layer average I/O time at ε = 0.01 for
// priorities 1, 5, 10.
func Fig14a(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig14a",
		Title:  "Impact of priority (NRMSE 0.01; avg I/O time ± std, s)",
		Header: []string{"app", "p=1", "p=5", "p=10"},
	}
	apps := appsUnderTest()
	rows := make([]*runpool.Task[[]string], len(apps))
	for i, app := range apps {
		rows[i] = runpool.Submit("fig14a/"+app.Name, func() []string {
			h := appHierarchy(app, cfg, defaultOpts())
			prios := []float64{1, 5, 10}
			tasks := make([]*runpool.Task[core.Summary], len(prios))
			for j, p := range prios {
				sc := core.Config{Policy: core.CrossLayer, ErrorControl: true, Bound: 0.01, Priority: p}
				tasks[j] = runpool.Submit(fmt.Sprintf("fig14a/%s/p%g", app.Name, p), func() core.Summary {
					return runOne(app.Name, 6, h, cfg, sc).Summary(cfg.SkipWarmup)
				})
			}
			row := []string{app.Name}
			for _, t := range tasks {
				s := t.Wait()
				row = append(row, fmt.Sprintf("%s±%s", fmtS(s.MeanIO), fmtS(s.StdIO)))
			}
			return row
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Doubling priority does not halve I/O time: weight shares are relative (paper's 100→200 weight example yields 100→133 MB/s).")
	return r
}

// Fig14b reproduces Fig 14b: cross-layer average I/O time at p = 10
// across error bounds.
func Fig14b(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig14b",
		Title:  "Impact of error bound (p=10; avg I/O time ± std, s)",
		Header: []string{"app", "eps=1e-1", "eps=1e-2", "eps=1e-3", "eps=1e-4"},
	}
	apps := appsUnderTest()
	rows := make([]*runpool.Task[[]string], len(apps))
	for i, app := range apps {
		rows[i] = runpool.Submit("fig14b/"+app.Name, func() []string {
			h := appHierarchy(app, cfg, defaultOpts())
			bounds := []float64{1e-1, 1e-2, 1e-3, 1e-4}
			tasks := make([]*runpool.Task[core.Summary], len(bounds))
			for j, eps := range bounds {
				sc := core.Config{Policy: core.CrossLayer, ErrorControl: true, Bound: eps, Priority: 10}
				tasks[j] = runpool.Submit(fmt.Sprintf("fig14b/%s/eps%g", app.Name, eps), func() core.Summary {
					return runOne(app.Name, 6, h, cfg, sc).Summary(cfg.SkipWarmup)
				})
			}
			row := []string{app.Name}
			for _, t := range tasks {
				s := t.Wait()
				row = append(row, fmt.Sprintf("%s±%s", fmtS(s.MeanIO), fmtS(s.StdIO)))
			}
			return row
		})
	}
	for _, t := range rows {
		r.Add(t.Wait()...)
	}
	r.Notef("Tighter bounds force larger mandatory retrievals, raising I/O time.")
	return r
}

// Fig15 reproduces Fig 15: the weight assignment over time for XGC in the
// window 1800–1950 s (p=10, target NRMSE 0.01): within each step the
// accuracy rises 1e-2 → 1e-4 and the weight is lowered accordingly.
func Fig15(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig15",
		Title:  "Weight assignment across time (XGC, p=10, target NRMSE 0.01)",
		Header: []string{"t(s)", "accuracy", "weight", "bucket entries"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	sc := core.Config{Policy: core.CrossLayer, ErrorControl: true, Bound: 1e-4, Priority: 10}
	sess := runOne(app.Name, 6, h, cfg, sc)
	for _, st := range sess.Stats() {
		if st.Start < 1800 || st.Start >= 1980 {
			continue
		}
		for _, b := range st.Buckets {
			if b.Weight == 0 {
				continue
			}
			r.Add(fmt.Sprintf("%.1f", b.Start), fmt.Sprintf("%g", b.Bound),
				fmt.Sprintf("%d", b.Weight), fmt.Sprintf("%d", b.To-b.From))
		}
	}
	r.Notef("The target bound is set to 1e-4 so each step walks the ladder 1e-1→1e-4; weight decreases as accuracy tightens (the design favors low accuracy).")
	return r
}

// Fig16 reproduces Fig 16: weak scaling. Tango's recomposition needs no
// inter-node communication, so per-node average I/O time stays flat from
// 1 to 4 nodes. Node simulations run on real parallel goroutines.
func Fig16(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "fig16",
		Title:  "Weak scaling (p=10, NRMSE 0.01; per-node avg I/O time, s)",
		Header: []string{"nodes", "mean of per-node avg I/O", "max deviation across nodes"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	for _, nodes := range []int{1, 2, 3, 4} {
		tasks := make([]*runpool.Task[float64], nodes)
		for i := 0; i < nodes; i++ {
			name := fmt.Sprintf("xgc-node%d", i)
			tasks[i] = runpool.Submit("fig16/"+name, func() float64 {
				sc := core.Config{Policy: core.CrossLayer, ErrorControl: true, Bound: 0.01, Priority: 10}
				sess := runOne(name, 6, h, cfg, sc)
				return sess.Summary(cfg.SkipWarmup).MeanIO
			})
		}
		means := make([]float64, nodes)
		for i, t := range tasks {
			means[i] = t.Wait()
		}
		var sum, maxDev float64
		for _, m := range means {
			sum += m
		}
		mean := sum / float64(nodes)
		for _, m := range means {
			if d := math.Abs(m - mean); d > maxDev {
				maxDev = d
			}
		}
		r.Add(fmt.Sprintf("%d", nodes), fmtS(mean), fmtS(maxDev))
	}
	r.Notef("Each node is an independent simulation run on its own goroutine (embarrassingly parallel, as in the paper).")
	return r
}

// Headline aggregates the Fig 8 data into the paper's headline claim:
// I/O performance improvement of cross-layer vs no adaptivity and vs the
// best single-layer approach.
func Headline(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "headline",
		Title:  "Headline improvement (from Fig 8 conditions)",
		Header: []string{"app", "vs no-adaptivity", "vs best single-layer"},
	}
	type imp struct{ no, single float64 }
	apps := appsUnderTest()
	tasks := make([]*runpool.Task[imp], len(apps))
	for i, app := range apps {
		tasks[i] = runpool.Submit("headline/"+app.Name, func() imp {
			h := appHierarchy(app, cfg, defaultOpts())
			s := policySummaries(app, h, cfg, core.Config{})
			cross := s[core.CrossLayer].MeanIO
			noAd := s[core.NoAdapt].MeanIO
			single := math.Min(s[core.StorageOnly].MeanIO, s[core.AppOnly].MeanIO)
			return imp{100 * (1 - cross/noAd), 100 * (1 - cross/single)}
		})
	}
	var aggNo, aggSingle, n float64
	for i, app := range apps {
		v := tasks[i].Wait()
		aggNo += v.no
		aggSingle += v.single
		n++
		r.Add(app.Name, fmt.Sprintf("%.0f%%", v.no), fmt.Sprintf("%.0f%%", v.single))
	}
	r.Add("mean", fmt.Sprintf("%.0f%%", aggNo/n), fmt.Sprintf("%.0f%%", aggSingle/n))
	r.Notef("Paper reports 52%% vs no adaptivity and 36%% vs single-layer on Chameleon; shape (ordering and rough magnitude), not absolute numbers, is the reproduction target.")
	return r
}

// AblationNoSeekThrash removes the HDD's concurrency-collapse term: the
// advantage of application adaptivity over storage-only weight
// redistribution shrinks, confirming the model ingredient behind Fig 8's
// explanation ("weight adjustment only re-distributes bandwidth").
func AblationNoSeekThrash(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "ablation-seek",
		Title:  "Ablation: HDD seek-thrash term (XGC, no error control)",
		Header: []string{"HDD model", "storage-only", "cross-layer", "cross/storage"},
	}
	app := analytics.XGCApp()
	h := appHierarchy(app, cfg, defaultOpts())
	type pair struct {
		variant     string
		storage, cr *runpool.Task[core.Summary]
	}
	var pairs []pair
	for _, variant := range []string{"with seek thrash", "no seek thrash"} {
		hdd := hddParamsReal()
		if variant == "no seek thrash" {
			hdd = hddParamsNoThrash()
		}
		run := func(p core.Policy) *runpool.Task[core.Summary] {
			return runpool.Submit("ablation-seek/"+variant+"/"+p.String(), func() core.Summary {
				scen := newScenarioWithHDD("abl", 6, hdd)
				sess := runOnScenario(scen, app.Name, h, cfg, core.Config{Policy: p})
				return sess.Summary(cfg.SkipWarmup)
			})
		}
		pairs = append(pairs, pair{variant, run(core.StorageOnly), run(core.CrossLayer)})
	}
	for _, p := range pairs {
		st, cr := p.storage.Wait(), p.cr.Wait()
		r.Add(p.variant, fmtS(st.MeanIO), fmtS(cr.MeanIO), fmt.Sprintf("%.2f", cr.MeanIO/st.MeanIO))
	}
	r.Notef("Without the thrash term the gap narrows: weight redistribution alone suffices when total throughput never collapses.")
	return r
}

// AblationUnsortedBuckets disables the magnitude ordering of augmentation
// entries (paper §III-B2 step 3) and measures how many more entries each
// bound needs — the ingredient behind Fig 11's feasibility.
func AblationUnsortedBuckets(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{
		ID:     "ablation-sort",
		Title:  "Ablation: magnitude-ordered buckets (XGC, NRMSE ladder)",
		Header: []string{"bound", "sorted DoF%", "unsorted DoF%", "inflation"},
	}
	app := analytics.XGCApp()
	sortedT := runpool.Submit("ablation-sort/sorted", func() *refactor.Hierarchy {
		return appHierarchy(app, cfg, defaultOpts())
	})
	unsortedT := runpool.Submit("ablation-sort/unsorted", func() *refactor.Hierarchy {
		opts := defaultOpts()
		opts.NoSort = true
		return appHierarchy(app, cfg, opts)
	})
	sorted, unsorted := sortedT.Wait(), unsortedT.Wait()
	for _, bound := range []float64{1e-1, 1e-2, 1e-3} {
		cs, err := sorted.CursorForBound(bound)
		if err != nil {
			panic(err)
		}
		cu, err := unsorted.CursorForBound(bound)
		if err != nil {
			panic(err)
		}
		ds, du := sorted.DoFFraction(cs), unsorted.DoFFraction(cu)
		r.Add(fmt.Sprintf("%g", bound),
			fmt.Sprintf("%.1f%%", 100*ds), fmt.Sprintf("%.1f%%", 100*du),
			fmt.Sprintf("%.2fx", du/ds))
	}
	r.Notef("Descending-|value| ordering reaches each bound with fewer retrieved entries.")
	return r
}
