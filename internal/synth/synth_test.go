package synth

import (
	"math"
	"testing"
)

func TestXGCDeterministicPerSeed(t *testing.T) {
	a, ba := XGC(DefaultXGC(128, 7))
	b, bb := XGC(DefaultXGC(128, 7))
	if a.AbsDiffMax(b) != 0 {
		t.Fatal("same seed produced different fields")
	}
	if len(ba) != len(bb) {
		t.Fatal("blob lists differ")
	}
	c, _ := XGC(DefaultXGC(128, 8))
	if a.AbsDiffMax(c) == 0 {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestXGCBlobsAreVisible(t *testing.T) {
	f, blobs := XGC(DefaultXGC(256, 1))
	if len(blobs) == 0 {
		t.Fatal("no blobs injected")
	}
	// Field values at blob centers should greatly exceed the background
	// (amplitudes are >= 6 sigma).
	min, max := f.MinMax()
	if !(max > 5) {
		t.Fatalf("max %v too low for blob amplitudes", max)
	}
	if min > 0 {
		t.Fatalf("background should fluctuate below zero, min %v", min)
	}
	for _, b := range blobs {
		v := f.At(int(b.Row), int(b.Col))
		if v < b.Amplitude*0.5 {
			t.Fatalf("blob at (%v,%v) amp %v not visible: field %v", b.Row, b.Col, b.Amplitude, v)
		}
	}
}

func TestXGCBlobsSeparated(t *testing.T) {
	_, blobs := XGC(DefaultXGC(256, 2))
	for i := range blobs {
		for j := i + 1; j < len(blobs); j++ {
			d := math.Hypot(blobs[i].Row-blobs[j].Row, blobs[i].Col-blobs[j].Col)
			if d < 2*(blobs[i].Radius+blobs[j].Radius) {
				t.Fatalf("blobs %d and %d overlap (distance %v)", i, j, d)
			}
		}
	}
}

func TestGenASiSShockStructure(t *testing.T) {
	n := 128
	f := GenASiS(n, 3)
	// Velocity near the center (inside the shock) must exceed the far
	// exterior.
	inner := f.At(n/2, n/2+n/8)
	outer := f.At(2, 2)
	if !(inner > 2*outer) {
		t.Fatalf("no shock contrast: inner %v outer %v", inner, outer)
	}
	if f.AbsDiffMax(GenASiS(n, 3)) != 0 {
		t.Fatal("not deterministic")
	}
}

func TestCFDStagnationPressure(t *testing.T) {
	n := 128
	f := CFD(n, 4)
	// Pressure at the nose exceeds free stream (≈1) substantially.
	nose := f.At(n/2, n/5)
	far := f.At(2, n-3)
	if !(nose > far+1) {
		t.Fatalf("no stagnation bump: nose %v far %v", nose, far)
	}
	if f.AbsDiffMax(CFD(n, 4)) != 0 {
		t.Fatal("not deterministic")
	}
}

func TestGeneratorsFiniteValues(t *testing.T) {
	x, _ := XGC(DefaultXGC(64, 5))
	for _, f := range []interface{ Data() []float64 }{x, GenASiS(64, 5), CFD(64, 5)} {
		for i, v := range f.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite value at %d: %v", i, v)
			}
		}
	}
}
