package synth

import (
	"math"
	"math/rand"

	"tango/internal/tensor"
)

// XGCSequence generates a time series of potential fields in which the
// injected blobs drift with per-blob velocities (the convective
// blob-filament transport the XGC analysis studies) while the background
// turbulence decorrelates slowly. Frame 0 matches XGC(o) blob-for-blob.
// Returned per frame: the field and the ground-truth blob positions.
func XGCSequence(o XGCOptions, steps int, speed float64) ([]*tensor.Tensor, [][]Blob) {
	rng := rand.New(rand.NewSource(o.Seed))
	n := o.N

	// Background modes (shared across frames, phases drift per frame).
	type mode struct{ kr, kc, phase, amp, drift float64 }
	modes := make([]mode, 12)
	for i := range modes {
		modes[i] = mode{
			kr:    (rng.Float64() - 0.5) * 24 * math.Pi / float64(n),
			kc:    (rng.Float64() - 0.5) * 24 * math.Pi / float64(n),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   0.2 + 0.3*rng.Float64(),
			drift: (rng.Float64() - 0.5) * 0.2,
		}
	}

	// Initial blobs + per-blob velocities.
	base, blobs0 := XGC(o)
	_ = base // frame 0 is regenerated below with the same seed-derived layout
	type mover struct {
		b      Blob
		vr, vc float64
	}
	movers := make([]mover, len(blobs0))
	vr2 := rand.New(rand.NewSource(o.Seed + 7777))
	for i, b := range blobs0 {
		ang := vr2.Float64() * 2 * math.Pi
		movers[i] = mover{b: b, vr: speed * math.Sin(ang), vc: speed * math.Cos(ang)}
	}

	frames := make([]*tensor.Tensor, steps)
	truth := make([][]Blob, steps)
	noise := rand.New(rand.NewSource(o.Seed + 31337))
	for s := 0; s < steps; s++ {
		t := tensor.New(n, n)
		data := t.Data()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				v := 0.3 * noise.NormFloat64()
				for _, m := range modes {
					v += m.amp * math.Sin(m.kr*float64(r)+m.kc*float64(c)+m.phase+m.drift*float64(s))
				}
				data[r*n+c] = v
			}
		}
		var cur []Blob
		for _, m := range movers {
			b := m.b
			b.Row += m.vr * float64(s)
			b.Col += m.vc * float64(s)
			// Blobs that drift off the grid wrap (periodic domain).
			b.Row = wrap(b.Row, float64(n))
			b.Col = wrap(b.Col, float64(n))
			cur = append(cur, b)
			paintBlob(t, b)
		}
		frames[s] = t
		truth[s] = cur
	}
	return frames, truth
}

func wrap(x, n float64) float64 {
	x = math.Mod(x, n)
	if x < 0 {
		x += n
	}
	return x
}

// paintBlob adds a Gaussian bump (no wraparound painting: a blob near the
// edge is clipped, as in a real bounded field of view).
func paintBlob(t *tensor.Tensor, b Blob) {
	n := t.Dims()[0]
	data := t.Data()
	r0, r1 := int(b.Row-4*b.Radius), int(b.Row+4*b.Radius)
	c0, c1 := int(b.Col-4*b.Radius), int(b.Col+4*b.Radius)
	for r := maxI(0, r0); r <= minI(n-1, r1); r++ {
		for c := maxI(0, c0); c <= minI(n-1, c1); c++ {
			dr, dc := float64(r)-b.Row, float64(c)-b.Col
			data[r*n+c] += b.Amplitude * math.Exp(-(dr*dr+dc*dc)/(2*b.Radius*b.Radius))
		}
	}
}
