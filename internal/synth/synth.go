// Package synth generates the synthetic analysis datasets substituting
// for the paper's production data (XGC, GenASiS, CFD — §IV-A), which are
// not publicly redistributable. Each generator produces a seeded,
// deterministic 2D field whose statistical structure exercises the same
// analysis code paths as the original data:
//
//   - XGC: electrostatic potential (dpot) with coherent high-potential
//     blobs over broadband background turbulence — blob detection.
//   - GenASiS: velocity magnitude of a core-collapse shock — 2D rendering
//     judged by SSIM and Dice.
//   - CFD: pressure near the leading edge of a plane — high-pressure area
//     and total force.
package synth

import (
	"math"
	"math/rand"

	"tango/internal/tensor"
)

// Blob describes one injected XGC blob (ground truth for tests).
type Blob struct {
	Row, Col  float64
	Radius    float64
	Amplitude float64
}

// XGCOptions configures the XGC-like field generator.
type XGCOptions struct {
	N         int // grid side
	Blobs     int
	MinRadius float64 // in cells
	MaxRadius float64
	MinAmp    float64 // in units of the background sigma
	MaxAmp    float64
	Seed      int64
}

// DefaultXGC gives a field with a dozen well-separated blobs on a 2D grid.
func DefaultXGC(n int, seed int64) XGCOptions {
	return XGCOptions{
		N: n, Blobs: 12,
		MinRadius: float64(n) / 64, MaxRadius: float64(n) / 24,
		MinAmp: 6, MaxAmp: 12,
		Seed: seed,
	}
}

// XGC generates the potential field and returns the injected blobs.
func XGC(o XGCOptions) (*tensor.Tensor, []Blob) {
	rng := rand.New(rand.NewSource(o.Seed))
	n := o.N
	t := tensor.New(n, n)
	data := t.Data()

	// Background: band-limited turbulence from a few random Fourier
	// modes plus white noise, unit-ish sigma.
	type mode struct{ kr, kc, phase, amp float64 }
	modes := make([]mode, 12)
	for i := range modes {
		modes[i] = mode{
			kr:    (rng.Float64() - 0.5) * 24 * math.Pi / float64(n),
			kc:    (rng.Float64() - 0.5) * 24 * math.Pi / float64(n),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   0.2 + 0.3*rng.Float64(),
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := 0.3 * rng.NormFloat64()
			for _, m := range modes {
				v += m.amp * math.Sin(m.kr*float64(r)+m.kc*float64(c)+m.phase)
			}
			data[r*n+c] = v
		}
	}

	// Blobs: Gaussian bumps with centers kept away from the boundary and
	// from each other.
	blobs := make([]Blob, 0, o.Blobs)
	const maxTries = 1000
	for len(blobs) < o.Blobs {
		tries := 0
		var b Blob
		for {
			tries++
			if tries > maxTries {
				break
			}
			rad := o.MinRadius + rng.Float64()*(o.MaxRadius-o.MinRadius)
			margin := 3 * rad
			b = Blob{
				Row:       margin + rng.Float64()*(float64(n)-2*margin),
				Col:       margin + rng.Float64()*(float64(n)-2*margin),
				Radius:    rad,
				Amplitude: o.MinAmp + rng.Float64()*(o.MaxAmp-o.MinAmp),
			}
			ok := true
			for _, e := range blobs {
				dr, dc := b.Row-e.Row, b.Col-e.Col
				if math.Hypot(dr, dc) < 4*(b.Radius+e.Radius) {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		if tries > maxTries {
			break
		}
		blobs = append(blobs, b)
		// Paint the blob onto the grid.
		r0, r1 := int(b.Row-4*b.Radius), int(b.Row+4*b.Radius)
		c0, c1 := int(b.Col-4*b.Radius), int(b.Col+4*b.Radius)
		for r := maxI(0, r0); r <= minI(n-1, r1); r++ {
			for c := maxI(0, c0); c <= minI(n-1, c1); c++ {
				dr, dc := float64(r)-b.Row, float64(c)-b.Col
				data[r*n+c] += b.Amplitude * math.Exp(-(dr*dr+dc*dc)/(2*b.Radius*b.Radius))
			}
		}
	}
	return t, blobs
}

// GenASiS generates a core-collapse velocity-magnitude field: a
// quasi-circular shock front with angular perturbations; velocity is high
// behind the shock (infall region) and low outside, with a sharp
// transition at the front.
func GenASiS(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n, n)
	data := t.Data()
	cr, cc := float64(n)/2, float64(n)/2
	shockR := float64(n) * 0.31
	// Angular perturbation of the shock radius (the SASI instability the
	// GenASiS paper studies is a low-mode angular oscillation).
	a1, a2 := 0.08+0.04*rng.Float64(), 0.05+0.03*rng.Float64()
	p1, p2 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	width := float64(n) * 0.012
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			dr, dc := float64(r)-cr, float64(c)-cc
			rad := math.Hypot(dr, dc)
			theta := math.Atan2(dr, dc)
			front := shockR * (1 + a1*math.Sin(2*theta+p1) + a2*math.Sin(3*theta+p2))
			// Behind the shock: accretion velocity rising toward the
			// center (capped at small radii); outside: slow wind.
			inner := 1.0 / math.Sqrt(math.Max(rad/float64(n)*8, 0.05))
			outer := 0.15
			s := 1 / (1 + math.Exp((rad-front)/width)) // 1 inside, 0 outside
			v := s*inner + (1-s)*outer + 0.01*rng.NormFloat64()
			data[r*n+c] = v
		}
	}
	return t
}

// CFD generates a pressure field near the leading edge of a plane: a
// stagnation region of high pressure around the nose, decaying along the
// chord and across the boundary layer, over a free-stream baseline.
func CFD(n int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n, n)
	data := t.Data()
	// Nose at (n/2, n/5); chord along +col.
	nr, nc := float64(n)/2, float64(n)/5
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			dr, dc := float64(r)-nr, float64(c)-nc
			d := math.Hypot(dr, dc)
			// Stagnation pressure bump.
			p := 2.5 * math.Exp(-d/(float64(n)*0.06))
			// Suction (low pressure) lobes above/below the chord
			// downstream of the nose.
			if dc > 0 {
				p -= 0.9 * math.Exp(-math.Abs(math.Abs(dr)-float64(n)*0.08)/(float64(n)*0.05)) *
					math.Exp(-dc/(float64(n)*0.5))
			}
			// Free stream + measurement noise.
			p += 1.0 + 0.02*rng.NormFloat64()
			data[r*n+c] = p
		}
	}
	return t
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
