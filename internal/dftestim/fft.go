// Package dftestim implements the paper's signal-processing based
// interference estimator (§III-C step 1, Algorithm 1 lines 2–5): measured
// per-step bandwidth is transformed with a DFT, frequency components with
// amplitude below a threshold (non-recurrent random noise) are discarded,
// and the inverse transform — extended periodically — predicts the
// available bandwidth at future analysis steps.
package dftestim

import (
	"fmt"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x:
//
//	X[k] = Σ_n x[n]·e^(−2πi·kn/N)
//
// For power-of-two lengths it runs an iterative radix-2 Cooley–Tukey FFT
// in O(N log N) over precomputed, process-shared twiddle tables; for other
// lengths it falls back to the O(N²) direct transform (table-driven up to
// length 128 — window sizes here are tens of samples, so this is cheap and
// keeps the implementation dependency-free). Output is bit-identical to
// the original per-call twiddle evaluation; see plan.go.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	planFor(n).fft(out, x, false)
	return out
}

// IFFT computes the inverse DFT with 1/N normalization, so
// IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	planFor(n).fft(out, x, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal transforms a real series.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	p := planFor(n)
	if p.pow2 {
		p.fftReal(out, x)
		return out
	}
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	p.direct(out, c, false)
	return out
}

// Amplitudes returns |X[k]| for each frequency component.
func Amplitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Threshold zeroes every component of spec whose amplitude is below
// frac × (maximum non-DC amplitude). The DC component (k=0, the mean
// bandwidth level) is always kept: thresholding targets recurring
// interference versus random noise, not the baseline. Conjugate symmetry
// is preserved because symmetric components have equal amplitudes. It
// returns the number of zeroed components.
func Threshold(spec []complex128, frac float64) int {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("dftestim: threshold fraction %v out of [0,1]", frac))
	}
	var maxAmp float64
	for k := 1; k < len(spec); k++ {
		if a := cmplx.Abs(spec[k]); a > maxAmp {
			maxAmp = a
		}
	}
	cut := frac * maxAmp
	zeroed := 0
	for k := 1; k < len(spec); k++ {
		if cmplx.Abs(spec[k]) < cut {
			spec[k] = 0
			zeroed++
		}
	}
	return zeroed
}
