// Package dftestim implements the paper's signal-processing based
// interference estimator (§III-C step 1, Algorithm 1 lines 2–5): measured
// per-step bandwidth is transformed with a DFT, frequency components with
// amplitude below a threshold (non-recurrent random noise) are discarded,
// and the inverse transform — extended periodically — predicts the
// available bandwidth at future analysis steps.
package dftestim

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x:
//
//	X[k] = Σ_n x[n]·e^(−2πi·kn/N)
//
// For power-of-two lengths it runs an iterative radix-2 Cooley–Tukey FFT
// in O(N log N); for other lengths it falls back to the O(N²) direct
// transform (window sizes here are tens of samples, so this is cheap and
// keeps the implementation dependency-free).
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return radix2(x, false)
	}
	return direct(x, false)
}

// IFFT computes the inverse DFT with 1/N normalization, so
// IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = radix2(x, true)
	} else {
		out = direct(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// radix2 is an iterative in-place Cooley–Tukey FFT on a copy of x.
// inverse selects the conjugate twiddle direction (no normalization).
func radix2(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i, v := range x {
		out[bits.Reverse64(uint64(i))>>shift] = v
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := out[start+k]
				odd := out[start+k+half] * w
				out[start+k] = even + odd
				out[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
	return out
}

// direct is the O(N²) reference transform, also used for non-power-of-two
// lengths.
func direct(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// FFTReal transforms a real series.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// Amplitudes returns |X[k]| for each frequency component.
func Amplitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, v := range spec {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Threshold zeroes every component of spec whose amplitude is below
// frac × (maximum non-DC amplitude). The DC component (k=0, the mean
// bandwidth level) is always kept: thresholding targets recurring
// interference versus random noise, not the baseline. Conjugate symmetry
// is preserved because symmetric components have equal amplitudes. It
// returns the number of zeroed components.
func Threshold(spec []complex128, frac float64) int {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("dftestim: threshold fraction %v out of [0,1]", frac))
	}
	var maxAmp float64
	for k := 1; k < len(spec); k++ {
		if a := cmplx.Abs(spec[k]); a > maxAmp {
			maxAmp = a
		}
	}
	cut := frac * maxAmp
	zeroed := 0
	for k := 1; k < len(spec); k++ {
		if cmplx.Abs(spec[k]) < cut {
			spec[k] = 0
			zeroed++
		}
	}
	return zeroed
}
