package dftestim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func complexAlmost(t *testing.T, got, want complex128, tol float64, msg string) {
	t.Helper()
	if cmplx.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v", msg, got, want)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all-ones.
	x := make([]complex128, 8)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		complexAlmost(t, v, 1, 1e-12, "impulse")
		_ = k
	}
}

func TestFFTConstant(t *testing.T) {
	// FFT of a constant is N at DC, 0 elsewhere.
	x := make([]complex128, 16)
	for i := range x {
		x[i] = 3
	}
	X := FFT(x)
	complexAlmost(t, X[0], 48, 1e-9, "DC")
	for k := 1; k < len(X); k++ {
		complexAlmost(t, X[k], 0, 1e-9, "non-DC")
	}
}

func TestFFTSingleTone(t *testing.T) {
	// cos(2π·3n/N) puts N/2 at bins 3 and N-3.
	n := 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*3*float64(i)/float64(n)), 0)
	}
	X := FFT(x)
	complexAlmost(t, X[3], complex(float64(n)/2, 0), 1e-9, "bin 3")
	complexAlmost(t, X[n-3], complex(float64(n)/2, 0), 1e-9, "bin N-3")
	for k := range X {
		if k != 3 && k != n-3 {
			complexAlmost(t, X[k], 0, 1e-9, "other bins")
		}
	}
}

func TestFFTRoundTripPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := IFFT(FFT(x))
	for i := range x {
		complexAlmost(t, y[i], x[i], 1e-9, "round trip")
	}
}

func TestFFTRoundTripNonPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 7, 30, 45} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
		}
		y := IFFT(FFT(x))
		for i := range x {
			complexAlmost(t, y[i], x[i], 1e-8, "non-pow2 round trip")
		}
	}
}

func TestRadix2MatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 32)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	p := planFor(len(x))
	fast := make([]complex128, len(x))
	p.fft(fast, x, false)
	slow := make([]complex128, len(x))
	p.direct(slow, x, false) // pow-of-two plans carry no direct table: on-the-fly O(N²) path
	for i := range x {
		complexAlmost(t, fast[i], slow[i], 1e-8, "radix2 vs direct")
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.NormFloat64(), 0)
			b[i] = complex(rng.NormFloat64(), 0)
			sum[i] = a[i] + b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(fs[i]-(fa[i]+fb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² == (1/N)·Σ|X|²
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		var tEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tEnergy += real(x[i]) * real(x[i])
		}
		X := FFT(x)
		var fEnergy float64
		for _, v := range X {
			fEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		fEnergy /= float64(n)
		return math.Abs(tEnergy-fEnergy) < 1e-7*(1+tEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFFT(t *testing.T) {
	if FFT(nil) != nil || IFFT(nil) != nil {
		t.Fatal("empty transform should be nil")
	}
}

func TestAmplitudes(t *testing.T) {
	spec := []complex128{3 + 4i, 1}
	a := Amplitudes(spec)
	if math.Abs(a[0]-5) > 1e-12 || math.Abs(a[1]-1) > 1e-12 {
		t.Fatalf("amplitudes = %v", a)
	}
}

func TestThresholdKeepsDCAndStrongTones(t *testing.T) {
	n := 32
	x := make([]float64, n)
	for i := range x {
		// 10 mean + strong tone at bin 2 + weak tone at bin 7
		x[i] = 10 + 4*math.Cos(2*math.Pi*2*float64(i)/float64(n)) +
			0.2*math.Cos(2*math.Pi*7*float64(i)/float64(n))
	}
	spec := FFTReal(x)
	zeroed := Threshold(spec, 0.5)
	if zeroed == 0 {
		t.Fatal("weak tone should be zeroed")
	}
	if spec[0] == 0 {
		t.Fatal("DC must be preserved")
	}
	if spec[2] == 0 || spec[n-2] == 0 {
		t.Fatal("strong tone must survive")
	}
	if spec[7] != 0 || spec[n-7] != 0 {
		t.Fatal("weak tone must be zeroed")
	}
	// Reconstruction should track the strong structure.
	rec := IFFT(spec)
	var maxErr float64
	for i := range x {
		clean := 10 + 4*math.Cos(2*math.Pi*2*float64(i)/float64(n))
		if d := math.Abs(real(rec[i]) - clean); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-9 {
		t.Fatalf("denoised reconstruction error %v", maxErr)
	}
}

func TestThresholdFracBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Threshold([]complex128{1, 2}, 1.5)
}
