package dftestim

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// maxDirectTable bounds the per-length memory of the precomputed O(N²)
// twiddle table for non-power-of-two transforms: n ≤ 128 costs at most
// 128²·16 B = 256 KiB per direction. Larger non-power-of-two lengths
// (rare: window sizes here are tens of samples) evaluate the twiddles on
// the fly, exactly as the transform always did.
const maxDirectTable = 128

// plan holds the precomputed twiddle tables for one transform length n.
// A plan is immutable after construction and shared process-wide through
// planFor, so a fleet of 100k estimators fitting the same window length
// pays for one table, not 100k.
//
// Byte-identity contract: every table entry is generated with the same
// float expressions — and, for the radix-2 stages, the same w *= wBase
// recurrence — that the transform previously evaluated inline per call.
// Each butterfly and each direct-sum term therefore sees bit-identical
// operands, and the transform output is bit-identical to the seed
// implementation (pinned by TestFFTMatchesSeedImplementation).
type plan struct {
	n     int
	pow2  bool
	shift uint // bit-reversal shift for the radix-2 permutation

	// Radix-2 stage twiddles, flattened stage-major (stage of size 2
	// contributes 1 entry, size 4 contributes 2, …; n−1 entries total).
	fwd, inv []complex128

	// Direct-transform tables for non-power-of-two n ≤ maxDirectTable:
	// dfwd[k*n+j] = e^(−2πi·kj/n), dinv its conjugate direction. nil for
	// larger lengths (on-the-fly fallback).
	dfwd, dinv []complex128
}

var (
	planMu sync.Mutex
	plans  map[int]*plan
)

// planFor returns the shared plan for length n, building it on first use.
// The estimator caches the returned pointer, so the mutex is off the
// steady-state path.
func planFor(n int) *plan {
	planMu.Lock()
	if plans == nil {
		plans = make(map[int]*plan, 16)
	}
	p := plans[n]
	if p == nil {
		p = newPlan(n)
		plans[n] = p
	}
	planMu.Unlock()
	return p
}

func newPlan(n int) *plan {
	p := &plan{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.shift = 64 - uint(bits.TrailingZeros(uint(n)))
		p.fwd = stageTwiddles(n, -1.0)
		p.inv = stageTwiddles(n, 1.0)
		return p
	}
	if n <= maxDirectTable {
		p.dfwd = directTable(n, -1.0)
		p.dinv = directTable(n, 1.0)
	}
	return p
}

// stageTwiddles replays the seed transform's per-stage twiddle recurrence
// (w starts at 1 and multiplies by e^(sign·2πi/size) per butterfly) into a
// flat table. The recurrence — not a closed-form cmplx.Exp per entry — is
// what keeps the table bit-identical to the values the inline loop used.
func stageTwiddles(n int, sign float64) []complex128 {
	tbl := make([]complex128, 0, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			tbl = append(tbl, w)
			w *= wBase
		}
	}
	return tbl
}

// directTable tabulates e^(sign·2πi·kj/n) with the exact angle expression
// the O(N²) loop used, preserving bit-identity of every term.
func directTable(n int, sign float64) []complex128 {
	tbl := make([]complex128, n*n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			tbl[k*n+j] = cmplx.Exp(complex(0, angle))
		}
	}
	return tbl
}

// fft computes the unnormalized DFT (or conjugate-direction inverse) of
// src into dst without allocating. dst and src must have length n and must
// not alias. Callers that need the 1/N inverse normalization replicate the
// seed's out[i] *= inv multiply themselves.
func (p *plan) fft(dst, src []complex128, inverse bool) {
	if p.pow2 {
		for i, v := range src {
			dst[bits.Reverse64(uint64(i))>>p.shift] = v
		}
		p.stages(dst, inverse)
		return
	}
	p.direct(dst, src, inverse)
}

// fftReal is the forward transform of a real-valued source: the
// real→complex widening happens during the bit-reversal copy (power-of-two
// n) so no complex staging buffer is needed.
func (p *plan) fftReal(dst []complex128, src []float64) {
	for i, v := range src {
		dst[bits.Reverse64(uint64(i))>>p.shift] = complex(v, 0)
	}
	p.stages(dst, false)
}

// stages runs the iterative radix-2 butterflies in place over dst, reading
// twiddles from the precomputed stage table. Pairing, operand order, and
// twiddle values match the seed loop exactly.
func (p *plan) stages(dst []complex128, inverse bool) {
	tbl := p.fwd
	if inverse {
		tbl = p.inv
	}
	n := p.n
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stage := tbl[off : off+half]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				even := dst[start+k]
				odd := dst[start+k+half] * stage[k]
				dst[start+k] = even + odd
				dst[start+k+half] = even - odd
			}
		}
		off += half
	}
}

// direct is the O(N²) transform for non-power-of-two lengths: table-driven
// when a table exists, otherwise the seed's on-the-fly evaluation.
func (p *plan) direct(dst, src []complex128, inverse bool) {
	n := p.n
	tbl := p.dfwd
	if inverse {
		tbl = p.dinv
	}
	if tbl != nil {
		for k := 0; k < n; k++ {
			row := tbl[k*n : k*n+n]
			var sum complex128
			for j, v := range src {
				sum += v * row[j]
			}
			dst[k] = sum
		}
		return
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += src[j] * cmplx.Exp(complex(0, angle))
		}
		dst[k] = sum
	}
}
