package dftestim

// Differential tests pinning the table-driven transforms and the
// ring-buffered estimator bit-identical to the seed implementation. The
// seed code (per-call twiddle evaluation, unbounded sample slice) is
// reproduced verbatim below as the reference: if a refactor of fft.go /
// plan.go / estimator.go perturbs a single float operation, these tests
// fail on the exact size and index.

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"
)

// ---- seed FFT (verbatim reference) ----------------------------------------

func seedFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		return seedRadix2(x, false)
	}
	return seedDirect(x, false)
}

func seedIFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = seedRadix2(x, true)
	} else {
		out = seedDirect(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

func seedRadix2(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i, v := range x {
		out[bits.Reverse64(uint64(i))>>shift] = v
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := out[start+k]
				odd := out[start+k+half] * w
				out[start+k] = even + odd
				out[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
	return out
}

func seedDirect(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func seedFFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return seedFFT(c)
}

// ---- seed estimator (verbatim reference over an unbounded slice) ----------

type seedEstimator struct {
	ThreshFrac float64
	Window     int

	samples []float64
	model   []float64
	fitAt   int
	fitted  bool
}

func (e *seedEstimator) Observe(bw float64) {
	e.samples = append(e.samples, bw)
}

func (e *seedEstimator) Fit() error {
	w := e.Window
	if w <= 0 {
		w = 30
	}
	if len(e.samples) < 4 {
		return fmt.Errorf("dftestim: need at least 4 samples, have %d", len(e.samples))
	}
	if w > len(e.samples) {
		w = len(e.samples)
	}
	start := len(e.samples) - w
	window := e.samples[start:]

	spec := seedFFTReal(window)
	Threshold(spec, e.ThreshFrac)
	rec := seedIFFT(spec)

	e.model = make([]float64, w)
	for i, v := range rec {
		bw := real(v)
		if bw < 0 {
			bw = 0
		}
		e.model[i] = bw
	}
	e.fitAt = start
	e.fitted = true
	return nil
}

func (e *seedEstimator) Predict(step int) float64 {
	n := len(e.model)
	idx := (step - e.fitAt) % n
	if idx < 0 {
		idx += n
	}
	return e.model[idx]
}

func (e *seedEstimator) PredictNext() float64 {
	return e.Predict(len(e.samples))
}

// ---- bit-identity helpers -------------------------------------------------

func sameBitsC(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

func sameBitsF(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// diffSizes spans 4–4096: every power of two plus non-power-of-two lengths
// on both sides of the maxDirectTable cutoff (≤128 table-driven, >128
// on-the-fly fallback).
var diffSizes = []int{
	4, 5, 6, 7, 8, 12, 16, 30, 31, 32, 45, 64, 100, 127, 128,
	129, 200, 256, 512, 1000, 1024, 2048, 4096,
}

func TestFFTMatchesSeedImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range diffSizes {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for _, inverse := range []bool{false, true} {
			var got, want []complex128
			if inverse {
				got, want = IFFT(x), seedIFFT(x)
			} else {
				got, want = FFT(x), seedFFT(x)
			}
			for i := range want {
				if !sameBitsC(got[i], want[i]) {
					t.Fatalf("n=%d inverse=%v index %d: got %v want %v (bits differ)",
						n, inverse, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFFTRealMatchesSeedImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range diffSizes {
		x := make([]float64, n)
		for i := range x {
			x[i] = 100 + 40*rng.NormFloat64()
		}
		got, want := FFTReal(x), seedFFTReal(x)
		for i := range want {
			if !sameBitsC(got[i], want[i]) {
				t.Fatalf("n=%d index %d: got %v want %v (bits differ)", n, i, got[i], want[i])
			}
		}
	}
}

// TestEstimatorMatchesSeedImplementation drives the ring-buffered
// estimator and the seed unbounded-slice estimator through the same random
// observe/fit schedule and requires bit-identical models and predictions —
// including after the ring has wrapped many times and for fits whose
// window is still partially filled.
func TestEstimatorMatchesSeedImplementation(t *testing.T) {
	for _, window := range []int{0, 5, 8, 30, 32} {
		rng := rand.New(rand.NewSource(int64(40 + window)))
		e := &Estimator{ThreshFrac: 0.5, Window: window}
		ref := &seedEstimator{ThreshFrac: 0.5, Window: window}
		for step := 0; step < 400; step++ {
			bw := 100 + 40*math.Sin(2*math.Pi*float64(step)/10) + 5*rng.Float64()
			e.Observe(bw)
			ref.Observe(bw)
			if e.Samples() != step+1 {
				t.Fatalf("window=%d: Samples()=%d want %d", window, e.Samples(), step+1)
			}
			if step >= 3 && rng.Intn(7) == 0 {
				errGot, errWant := e.Fit(), ref.Fit()
				if (errGot == nil) != (errWant == nil) {
					t.Fatalf("window=%d step=%d: fit error mismatch %v vs %v", window, step, errGot, errWant)
				}
				model, refModel := e.Model(), ref.model
				if len(model) != len(refModel) {
					t.Fatalf("window=%d step=%d: model len %d want %d", window, step, len(model), len(refModel))
				}
				for i := range refModel {
					if !sameBitsF(model[i], refModel[i]) {
						t.Fatalf("window=%d step=%d model[%d]: got %v want %v (bits differ)",
							window, step, i, model[i], refModel[i])
					}
				}
				for probe := -50; probe < 450; probe += 13 {
					if !sameBitsF(e.Predict(probe), ref.Predict(probe)) {
						t.Fatalf("window=%d step=%d Predict(%d): got %v want %v",
							window, step, probe, e.Predict(probe), ref.Predict(probe))
					}
				}
				if !sameBitsF(e.PredictNext(), ref.PredictNext()) {
					t.Fatalf("window=%d step=%d: PredictNext mismatch", window, step)
				}
			}
		}
	}
}

// TestEstimatorFitZeroAlloc pins the tentpole property: once the window
// buffers exist, Observe + Fit + Predict run without a single heap
// allocation.
func TestEstimatorFitZeroAlloc(t *testing.T) {
	est := NewEstimator()
	for i := 0; i < 64; i++ {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(i)/10))
	}
	if err := est.Fit(); err != nil {
		t.Fatal(err)
	}
	step := 64
	allocs := testing.AllocsPerRun(200, func() {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(step)/10))
		step++
		if err := est.Fit(); err != nil {
			t.Fatal(err)
		}
		_ = est.Predict(step + 1)
		_ = est.PredictNext()
		_ = est.ModelAt(0)
		_ = est.ModelLen()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe+Fit+Predict allocates %.1f/op, want 0", allocs)
	}
}

// TestEstimatorMemoryBounded is the regression test for the unbounded
// samples growth: one million observed steps must neither grow the ring
// beyond the window nor allocate once warm.
func TestEstimatorMemoryBounded(t *testing.T) {
	est := NewEstimator()
	for i := 0; i < 64; i++ {
		est.Observe(float64(i % 50))
	}
	if err := est.Fit(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 1_000_000; i++ {
			est.Observe(float64(i % 50))
		}
	})
	if allocs != 0 {
		t.Fatalf("1M observes allocated %.1f times, want 0 (unbounded growth?)", allocs)
	}
	if est.Samples() != 64+2_000_000 {
		t.Fatalf("absolute step count lost: Samples()=%d", est.Samples())
	}
	if len(est.ring) != 30 || cap(est.ring) != 30 {
		t.Fatalf("ring grew: len=%d cap=%d want 30", len(est.ring), cap(est.ring))
	}
	if err := est.Fit(); err != nil { // still fits fine after 2M steps
		t.Fatal(err)
	}
	if est.ModelLen() != 30 {
		t.Fatalf("model len %d want 30", est.ModelLen())
	}
}

// TestSlidingDFTTracksExact checks the opt-in incremental mode: the
// maintained spectrum must keep Fit's model within numerical-drift
// distance of the exact batch recompute, deterministically.
func TestSlidingDFTTracksExact(t *testing.T) {
	signal := func(i int) float64 {
		return 100 + 40*math.Sin(2*math.Pi*float64(i)/10) + 10*math.Cos(2*math.Pi*float64(i)/5)
	}
	slide := &Estimator{ThreshFrac: 0.5, Window: 30, Sliding: true}
	exact := &Estimator{ThreshFrac: 0.5, Window: 30}
	for i := 0; i < 30; i++ {
		slide.Observe(signal(i))
		exact.Observe(signal(i))
	}
	if err := slide.Fit(); err != nil { // anchors the sliding spectrum
		t.Fatal(err)
	}
	if !slide.slideValid {
		t.Fatal("full-window Fit should anchor the sliding spectrum")
	}
	for i := 30; i < 400; i++ {
		slide.Observe(signal(i))
		exact.Observe(signal(i))
		if err := slide.Fit(); err != nil {
			t.Fatal(err)
		}
		if err := exact.Fit(); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < slide.ModelLen(); k++ {
			if d := math.Abs(slide.ModelAt(k) - exact.ModelAt(k)); d > 1e-6 {
				t.Fatalf("step %d model[%d]: sliding %v vs exact %v (drift %v)",
					i, k, slide.ModelAt(k), exact.ModelAt(k), d)
			}
		}
	}
	// Determinism: an identical second run reproduces the model bits.
	redo := &Estimator{ThreshFrac: 0.5, Window: 30, Sliding: true}
	for i := 0; i < 400; i++ {
		redo.Observe(signal(i))
		if i == 29 || i >= 30 {
			if err := redo.Fit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := 0; k < slide.ModelLen(); k++ {
		if !sameBitsF(slide.ModelAt(k), redo.ModelAt(k)) {
			t.Fatalf("sliding mode not deterministic at model[%d]", k)
		}
	}
}

// TestSlidingDFTResync verifies the periodic exact recompute bounds drift:
// after slideResyncEvery incremental updates the next Fit re-anchors.
func TestSlidingDFTResync(t *testing.T) {
	est := &Estimator{ThreshFrac: 0.5, Window: 8, Sliding: true}
	for i := 0; i < 8; i++ {
		est.Observe(float64(10 + i%4))
	}
	if err := est.Fit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < slideResyncEvery+5; i++ {
		est.Observe(float64(10 + i%4))
	}
	if est.slideAge <= slideResyncEvery {
		t.Fatalf("slideAge=%d, expected past resync threshold", est.slideAge)
	}
	if err := est.Fit(); err != nil {
		t.Fatal(err)
	}
	if est.slideAge != 0 {
		t.Fatalf("Fit past the resync threshold should re-anchor; slideAge=%d", est.slideAge)
	}
	// The re-anchored spectrum matches a fresh batch fit bit-for-bit.
	exact := &Estimator{ThreshFrac: 0.5, Window: 8}
	for i := 0; i < 8+slideResyncEvery+5; i++ {
		exact.Observe(float64(10 + i%4))
	}
	if err := exact.Fit(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < est.ModelLen(); k++ {
		if !sameBitsF(est.ModelAt(k), exact.ModelAt(k)) {
			t.Fatalf("re-anchored model[%d] differs from batch fit", k)
		}
	}
}

// TestSlidingAppliesOnlyWhenEnabled: default mode must never take the
// incremental path even after many full-window fits.
func TestSlidingAppliesOnlyWhenEnabled(t *testing.T) {
	est := NewEstimator()
	for i := 0; i < 90; i++ {
		est.Observe(float64(i % 7))
		if i >= 30 {
			if err := est.Fit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if est.slideValid || est.slide != nil {
		t.Fatal("default mode must not maintain a sliding spectrum")
	}
}

func TestModelAtAppendModel(t *testing.T) {
	est := NewEstimator()
	for i := 0; i < 30; i++ {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(i)/10))
	}
	if err := est.Fit(); err != nil {
		t.Fatal(err)
	}
	model := est.Model()
	if est.ModelLen() != len(model) {
		t.Fatalf("ModelLen %d != len(Model()) %d", est.ModelLen(), len(model))
	}
	for i, v := range model {
		if !sameBitsF(est.ModelAt(i), v) {
			t.Fatalf("ModelAt(%d) mismatch", i)
		}
	}
	buf := make([]float64, 0, 64)
	buf = est.AppendModel(buf[:0])
	if len(buf) != len(model) {
		t.Fatalf("AppendModel len %d want %d", len(buf), len(model))
	}
	for i := range buf {
		if !sameBitsF(buf[i], model[i]) {
			t.Fatalf("AppendModel[%d] mismatch", i)
		}
	}
}
