package dftestim

import (
	"math"
	"math/rand"
	"testing"
)

// periodicBW synthesizes a bandwidth series: base level minus periodic
// interference dips plus optional random noise.
func periodicBW(steps int, noiseSigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, steps)
	for i := range out {
		bw := 100.0
		bw -= 40 * (0.5 + 0.5*math.Cos(2*math.Pi*float64(i)/10)) // period-10 dip
		bw -= 15 * (0.5 + 0.5*math.Sin(2*math.Pi*float64(i)/6))  // period-6 dip
		bw += noiseSigma * rng.NormFloat64()
		if bw < 0 {
			bw = 0
		}
		out[i] = bw
	}
	return out
}

func TestFitRequiresSamples(t *testing.T) {
	e := NewEstimator()
	if err := e.Fit(); err == nil {
		t.Fatal("Fit with no samples should fail")
	}
	e.Observe(1)
	e.Observe(2)
	e.Observe(3)
	if err := e.Fit(); err == nil {
		t.Fatal("Fit with 3 samples should fail")
	}
	if e.Ready() {
		t.Fatal("estimator should not be ready")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	e := NewEstimator()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Predict(0)
}

func TestObserveRejectsInvalid(t *testing.T) {
	e := NewEstimator()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Observe(-1)
}

func TestCleanPeriodicSignalPredictedExactly(t *testing.T) {
	e := NewEstimator()
	e.Window = 30
	e.ThreshFrac = 0 // keep everything: pure periodic extension
	series := periodicBW(60, 0, 1)
	for _, bw := range series[:30] {
		e.Observe(bw)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	// Signal has periods 10 and 6 -> overall period 30 == window, so the
	// periodic extension is exact.
	for s := 30; s < 60; s++ {
		if d := math.Abs(e.Predict(s) - series[s]); d > 1e-9 {
			t.Fatalf("step %d: predicted %v actual %v", s, e.Predict(s), series[s])
		}
	}
}

func TestThresholdingFiltersRandomNoise(t *testing.T) {
	// With noise, a thresholded fit should predict the clean future
	// better than the noisy observations would suggest.
	clean := periodicBW(90, 0, 1)
	noisy := periodicBW(90, 6, 2)

	fit := func(frac float64) *Estimator {
		e := NewEstimator()
		e.Window = 30
		e.ThreshFrac = frac
		for _, bw := range noisy[30:60] {
			e.Observe(bw)
		}
		// fitAt will be 0 relative to its own samples; align manually.
		if err := e.Fit(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	e50 := fit(0.5)
	var err50 float64
	for i := 0; i < 30; i++ {
		err50 += math.Abs(e50.Predict(30+i) - clean[60+i])
	}
	err50 /= 30
	// The thresholded prediction should stay well within the noise level.
	if err50 > 8 {
		t.Fatalf("thresholded prediction error too high: %v", err50)
	}
}

func TestHigherThresholdDiscardsMore(t *testing.T) {
	noisy := periodicBW(30, 4, 3)
	zeroedAt := func(frac float64) int {
		spec := FFTReal(noisy)
		return Threshold(spec, frac)
	}
	z25, z50, z75 := zeroedAt(0.25), zeroedAt(0.5), zeroedAt(0.75)
	if !(z25 <= z50 && z50 <= z75) {
		t.Fatalf("zeroed counts not monotone: %d %d %d", z25, z50, z75)
	}
	if z75 == z25 {
		t.Fatalf("thresholds indistinguishable: %d %d %d", z25, z50, z75)
	}
}

func TestWindowUsesMostRecentSamples(t *testing.T) {
	e := NewEstimator()
	e.Window = 4
	e.ThreshFrac = 0
	// Old regime: 100. New regime: 20.
	for i := 0; i < 10; i++ {
		e.Observe(100)
	}
	for i := 0; i < 4; i++ {
		e.Observe(20)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	if got := e.PredictNext(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("prediction %v should reflect the recent regime", got)
	}
}

func TestPredictionNonNegative(t *testing.T) {
	e := NewEstimator()
	e.Window = 8
	e.ThreshFrac = 0.9 // aggressive thresholding can ring below zero
	for _, bw := range []float64{0, 100, 0, 100, 0, 100, 0, 100} {
		e.Observe(bw)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if e.Predict(s) < 0 {
			t.Fatalf("negative bandwidth prediction at step %d", s)
		}
	}
}

func TestMeanAbsErrorZeroOnExactModel(t *testing.T) {
	e := NewEstimator()
	e.Window = 10
	e.ThreshFrac = 0
	series := make([]float64, 20)
	for i := range series {
		series[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/5)
	}
	for _, bw := range series[:10] {
		e.Observe(bw)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	if got := e.MeanAbsError(10, series[10:]); got > 1e-9 {
		t.Fatalf("MAE = %v, want ~0", got)
	}
	if got := e.MeanAbsError(10, nil); got != 0 {
		t.Fatalf("MAE on empty = %v", got)
	}
}

func TestModelReturnsCopy(t *testing.T) {
	e := NewEstimator()
	e.Window = 4
	for _, bw := range []float64{1, 2, 3, 4} {
		e.Observe(bw)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	m := e.Model()
	m[0] = 999
	if e.Model()[0] == 999 {
		t.Fatal("Model() must return a copy")
	}
	if e.Samples() != 4 {
		t.Fatalf("Samples = %d", e.Samples())
	}
}

func TestPredictBeforeFitWindowWraps(t *testing.T) {
	e := NewEstimator()
	e.Window = 4
	e.ThreshFrac = 0
	for _, bw := range []float64{10, 20, 30, 40, 10, 20, 30, 40} {
		e.Observe(bw)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	// fitAt = 4; querying steps before the window wraps modulo the
	// period rather than panicking.
	if got := e.Predict(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Predict(0) = %v, want 10", got)
	}
	if got := e.Predict(9); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Predict(9) = %v, want 20", got)
	}
}

func TestFitWindowLargerThanSamples(t *testing.T) {
	e := NewEstimator()
	e.Window = 100
	for _, bw := range []float64{5, 6, 7, 8, 9} {
		e.Observe(bw)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	if len(e.Model()) != 5 {
		t.Fatalf("model length = %d, want clamped to 5", len(e.Model()))
	}
}

func TestRefitTracksNewWindow(t *testing.T) {
	e := NewEstimator()
	e.Window = 4
	e.ThreshFrac = 0
	for i := 0; i < 4; i++ {
		e.Observe(100)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	first := e.PredictNext()
	for i := 0; i < 4; i++ {
		e.Observe(10)
	}
	if err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	second := e.PredictNext()
	if !(second < first) {
		t.Fatalf("refit did not track the new regime: %v -> %v", first, second)
	}
}
