package dftestim

import (
	"math"
	"testing"
)

// benchEstimatorFit measures the steady-state Observe+Fit+Predict cycle at
// a given window length: the tentpole target is 0 allocs/op and ≥3× the
// seed's per-call twiddle evaluation.
func benchEstimatorFit(b *testing.B, window int) {
	est := &Estimator{ThreshFrac: 0.5, Window: window}
	for i := 0; i < window; i++ {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(i)/10))
	}
	if err := est.Fit(); err != nil {
		b.Fatal(err)
	}
	step := window
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(step)/10))
		step++
		if err := est.Fit(); err != nil {
			b.Fatal(err)
		}
		_ = est.PredictNext()
	}
}

func BenchmarkEstimatorFit30(b *testing.B)   { benchEstimatorFit(b, 30) }
func BenchmarkEstimatorFit1024(b *testing.B) { benchEstimatorFit(b, 1024) }

// BenchmarkEstimatorFitSliding1024 is the opt-in incremental mode at the
// same window length: Observe does the O(W) spectrum advance, Fit skips
// the forward transform.
func BenchmarkEstimatorFitSliding1024(b *testing.B) {
	est := &Estimator{ThreshFrac: 0.5, Window: 1024, Sliding: true}
	for i := 0; i < 1024; i++ {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(i)/10))
	}
	if err := est.Fit(); err != nil {
		b.Fatal(err)
	}
	step := 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Observe(100 + 40*math.Sin(2*math.Pi*float64(step)/10))
		step++
		if err := est.Fit(); err != nil {
			b.Fatal(err)
		}
		_ = est.PredictNext()
	}
}

// BenchmarkFFTIterative1024 measures the table-driven radix-2 kernel alone
// (no output allocation), the quantity the shared plan cache amortizes.
func BenchmarkFFTIterative1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)/7), 0)
	}
	out := make([]complex128, 1024)
	p := planFor(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.fft(out, x, false)
	}
}
