package dftestim

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// slideResyncEvery bounds the floating-point drift of the sliding-DFT
// update mode: after this many incremental spectrum rotations the next Fit
// recomputes the spectrum exactly from the sample window and re-anchors
// the recurrence.
const slideResyncEvery = 1024

// errTooFewSamples is the static Fit error; Fit is a //tango:hotpath and
// may not build a formatted error per call.
var errTooFewSamples = errors.New("dftestim: need at least 4 samples")

// Estimator predicts per-step available bandwidth from a window of
// measured per-step bandwidths. It implements Algorithm 1 lines 2–5:
//
//	{FC_i}  ← DFT({BW_i})
//	F̃C_i   ← 0 if FC_i < thresh (relative to the max non-DC amplitude)
//	{B̃W_i} ← IDFT({F̃C_i})
//
// and extrapolates B̃W to future steps using the periodicity of the HPC
// workload pattern Σ_i I_i(C_i^x W_i)* F_i. Estimation is re-run
// periodically (the paper refits every 30 steps) so the model tracks
// workload changes.
//
// Memory is bounded: samples live in a ring sized to the window, and the
// spectral scratch, model, and twiddle tables are reused across refits, so
// a long-running (tangod-length) session neither grows nor allocates in
// steady state. Absolute step indexing is preserved — Samples(), Predict,
// and PredictNext see the same step numbers as the unbounded-history
// implementation they replaced.
type Estimator struct {
	// ThreshFrac is the amplitude threshold as a fraction of the maximum
	// non-DC amplitude (the paper evaluates 25%, 50%, 75%; default 50%).
	ThreshFrac float64
	// Window is the number of most recent samples fitted (default 30,
	// the paper's re-estimation period). Set it before the first Observe:
	// the ring holds only Window samples, so growing it mid-run fits the
	// retained suffix until enough new samples arrive.
	Window int
	// Sliding enables the opt-in sliding-DFT update mode: once a Fit has
	// anchored the spectrum of a full window, each Observe advances it
	// incrementally in O(W) — S'_k = (S_k + x_new − x_old)·e^(2πik/W) —
	// and Fit skips the forward transform. Off by default: the incremental
	// summation order differs from the batch FFT, so fitted models are not
	// bit-identical to the default mode (they are still deterministic for
	// a given seed, with an exact recompute every slideResyncEvery updates
	// to bound drift).
	Sliding bool

	ring  []float64 // sample ring; slot for step s is s % len(ring)
	count int       // total samples observed; the next sample's step index

	model  []float64 // denoised one-period reconstruction (reused)
	fitAt  int       // step index of the first sample in the fitted window
	fitted bool

	plan   *plan        // shared twiddle tables for the fitted length
	spec   []complex128 // forward spectrum, thresholded in place (reused)
	rec    []complex128 // inverse-transform scratch (reused)
	winBuf []float64    // linearized window scratch (reused)

	slide      []complex128 // sliding mode: maintained pre-threshold spectrum
	rot        []complex128 // sliding mode: e^(2πik/W) advance factors
	slideValid bool
	slideAge   int // incremental updates since the last exact recompute
}

// NewEstimator returns an estimator with the paper's defaults.
func NewEstimator() *Estimator {
	return &Estimator{ThreshFrac: 0.5, Window: 30}
}

func (e *Estimator) effWindow() int {
	if e.Window > 0 {
		return e.Window
	}
	return 30
}

// Observe records the measured bandwidth of the next step.
//
//tango:hotpath
func (e *Estimator) Observe(bw float64) {
	if math.IsNaN(bw) || bw < 0 {
		panic(fmt.Sprintf("dftestim: invalid bandwidth sample %v", bw))
	}
	w := e.effWindow()
	if len(e.ring) != w {
		e.resizeRing(w)
	}
	slot := e.count % w
	if e.slideValid {
		if e.count >= w && len(e.slide) == w {
			// ring[slot] is the sample about to drop out of the window;
			// capture it before the overwrite.
			delta := complex(bw-e.ring[slot], 0)
			for k, s := range e.slide {
				e.slide[k] = (s + delta) * e.rot[k]
			}
			e.slideAge++
		} else {
			e.slideValid = false
		}
	}
	e.ring[slot] = bw
	e.count++
}

// resizeRing rebuilds the ring at the new window size, preserving the most
// recent samples (up to the smaller of both capacities) at their absolute
// step slots.
func (e *Estimator) resizeRing(w int) {
	old := e.ring
	avail := e.count
	if avail > len(old) {
		avail = len(old)
	}
	if avail > w {
		avail = w
	}
	ring := make([]float64, w)
	for i := 0; i < avail; i++ {
		step := e.count - avail + i
		ring[step%w] = old[step%len(old)]
	}
	e.ring = ring
	e.slideValid = false
}

// Samples returns the number of observed steps.
//
//tango:hotpath
func (e *Estimator) Samples() int { return e.count }

// Ready reports whether a model has been fitted.
func (e *Estimator) Ready() bool { return e.fitted }

// Fit builds the denoised periodic model from the most recent Window
// samples. It returns an error if fewer than 4 samples are available.
// Steady state (unchanged window length) is allocation-free: the spectrum,
// scratch, and model buffers are reused and the twiddle plan is shared.
//
//tango:hotpath
func (e *Estimator) Fit() error {
	if e.count < 4 {
		return errTooFewSamples
	}
	w := e.effWindow()
	if len(e.ring) != w {
		e.resizeRing(w)
	}
	avail := e.count
	if avail > len(e.ring) {
		avail = len(e.ring)
	}
	if w > avail {
		w = avail
	}
	e.ensureScratch(w)
	start := e.count - w

	if e.Sliding && e.slideValid && len(e.slide) == w && e.slideAge < slideResyncEvery {
		copy(e.spec, e.slide)
	} else {
		e.gatherWindow(start, w)
		e.forward()
		if e.Sliding && w == len(e.ring) && e.count >= w {
			e.anchorSlide(w)
		}
	}

	Threshold(e.spec, e.ThreshFrac)
	e.inverse()

	// Replicates the seed's IFFT normalization (out[i] *= inv as a complex
	// multiply) followed by the clamp loop, so models stay bit-identical.
	inv := complex(1/float64(w), 0)
	for i, v := range e.rec {
		v *= inv
		bw := real(v)
		if bw < 0 {
			bw = 0 // bandwidth cannot be negative; clamp ringing
		}
		e.model[i] = bw
	}
	e.fitAt = start
	e.fitted = true
	return nil
}

// ensureScratch sizes the fit buffers for window length w, reusing their
// backing arrays whenever the capacity suffices.
func (e *Estimator) ensureScratch(w int) {
	if e.plan == nil || e.plan.n != w {
		e.plan = planFor(w)
		e.slideValid = false
	}
	if cap(e.spec) < w {
		e.spec = make([]complex128, w)
		e.rec = make([]complex128, w)
	}
	if cap(e.winBuf) < w {
		e.winBuf = make([]float64, w)
		e.model = make([]float64, w)
	}
	e.spec = e.spec[:w]
	e.rec = e.rec[:w]
	e.winBuf = e.winBuf[:w]
	e.model = e.model[:w]
}

// gatherWindow linearizes ring samples [start, start+w) into winBuf.
func (e *Estimator) gatherWindow(start, w int) {
	r := e.ring
	pos := start % len(r)
	n := copy(e.winBuf, r[pos:])
	if n < w {
		copy(e.winBuf[n:], r[:w-n])
	}
}

// forward computes the spectrum of winBuf into spec.
func (e *Estimator) forward() {
	p := e.plan
	if p.pow2 {
		p.fftReal(e.spec, e.winBuf)
		return
	}
	for i, v := range e.winBuf {
		e.rec[i] = complex(v, 0)
	}
	p.direct(e.spec, e.rec, false)
}

// inverse computes the unnormalized inverse transform of spec into rec.
func (e *Estimator) inverse() {
	p := e.plan
	if p.pow2 {
		p.fft(e.rec, e.spec, true)
		return
	}
	p.direct(e.rec, e.spec, true)
}

// anchorSlide snapshots the exact pre-threshold spectrum as the sliding
// recurrence's new anchor and (re)builds the advance factors.
func (e *Estimator) anchorSlide(w int) {
	if cap(e.slide) < w {
		e.slide = make([]complex128, w)
		e.rot = make([]complex128, w)
	}
	e.slide = e.slide[:w]
	e.rot = e.rot[:w]
	copy(e.slide, e.spec)
	for k := range e.rot {
		e.rot[k] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)/float64(w)))
	}
	e.slideValid = true
	e.slideAge = 0
}

// Predict returns B̃W for the given absolute step index, extrapolating the
// fitted window periodically. It panics if Fit has not succeeded.
//
//tango:hotpath
func (e *Estimator) Predict(step int) float64 {
	if !e.fitted {
		panic("dftestim: Predict before successful Fit")
	}
	n := len(e.model)
	idx := (step - e.fitAt) % n
	if idx < 0 {
		idx += n
	}
	return e.model[idx]
}

// PredictNext returns the prediction for the step after the last observed
// one.
//
//tango:hotpath
func (e *Estimator) PredictNext() float64 {
	return e.Predict(e.count)
}

// Model returns a copy of the fitted one-period reconstruction.
func (e *Estimator) Model() []float64 {
	out := make([]float64, len(e.model))
	copy(out, e.model)
	return out
}

// ModelLen returns the fitted model's period length (0 before Fit).
//
//tango:hotpath
func (e *Estimator) ModelLen() int { return len(e.model) }

// ModelAt returns the fitted model value at index i without copying; it is
// the zero-alloc companion to Model for hot callers. i must be in
// [0, ModelLen()).
//
//tango:hotpath
func (e *Estimator) ModelAt(i int) float64 { return e.model[i] }

// AppendModel appends the fitted model to dst and returns the extended
// slice, for callers that batch models into reused buffers.
func (e *Estimator) AppendModel(dst []float64) []float64 {
	return append(dst, e.model...)
}

// MeanAbsError reports the mean absolute prediction error of the fitted
// model against a slice of actual future bandwidths beginning at
// firstStep. It is used by the Fig 7 experiment to score estimation
// accuracy per threshold level.
func (e *Estimator) MeanAbsError(firstStep int, actual []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	var sum float64
	for i, a := range actual {
		sum += math.Abs(e.Predict(firstStep+i) - a)
	}
	return sum / float64(len(actual))
}
