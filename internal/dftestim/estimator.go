package dftestim

import (
	"fmt"
	"math"
)

// Estimator predicts per-step available bandwidth from a window of
// measured per-step bandwidths. It implements Algorithm 1 lines 2–5:
//
//	{FC_i}  ← DFT({BW_i})
//	F̃C_i   ← 0 if FC_i < thresh (relative to the max non-DC amplitude)
//	{B̃W_i} ← IDFT({F̃C_i})
//
// and extrapolates B̃W to future steps using the periodicity of the HPC
// workload pattern Σ_i I_i(C_i^x W_i)* F_i. Estimation is re-run
// periodically (the paper refits every 30 steps) so the model tracks
// workload changes.
type Estimator struct {
	// ThreshFrac is the amplitude threshold as a fraction of the maximum
	// non-DC amplitude (the paper evaluates 25%, 50%, 75%; default 50%).
	ThreshFrac float64
	// Window is the number of most recent samples fitted (default 30,
	// the paper's re-estimation period).
	Window int

	samples []float64 // measured BW per step, step-indexed from 0
	model   []float64 // denoised one-period reconstruction
	fitAt   int       // step index of the first sample in the fitted window
	fitted  bool
}

// NewEstimator returns an estimator with the paper's defaults.
func NewEstimator() *Estimator {
	return &Estimator{ThreshFrac: 0.5, Window: 30}
}

// Observe appends the measured bandwidth of the next step.
func (e *Estimator) Observe(bw float64) {
	if math.IsNaN(bw) || bw < 0 {
		panic(fmt.Sprintf("dftestim: invalid bandwidth sample %v", bw))
	}
	e.samples = append(e.samples, bw)
}

// Samples returns the number of observed steps.
func (e *Estimator) Samples() int { return len(e.samples) }

// Ready reports whether a model has been fitted.
func (e *Estimator) Ready() bool { return e.fitted }

// Fit builds the denoised periodic model from the most recent Window
// samples. It returns an error if fewer than 4 samples are available.
func (e *Estimator) Fit() error {
	w := e.Window
	if w <= 0 {
		w = 30
	}
	if len(e.samples) < 4 {
		return fmt.Errorf("dftestim: need at least 4 samples, have %d", len(e.samples))
	}
	if w > len(e.samples) {
		w = len(e.samples)
	}
	start := len(e.samples) - w
	window := e.samples[start:]

	spec := FFTReal(window)
	Threshold(spec, e.ThreshFrac)
	rec := IFFT(spec)

	e.model = make([]float64, w)
	for i, v := range rec {
		bw := real(v)
		if bw < 0 {
			bw = 0 // bandwidth cannot be negative; clamp ringing
		}
		e.model[i] = bw
	}
	e.fitAt = start
	e.fitted = true
	return nil
}

// Predict returns B̃W for the given absolute step index, extrapolating the
// fitted window periodically. It panics if Fit has not succeeded.
func (e *Estimator) Predict(step int) float64 {
	if !e.fitted {
		panic("dftestim: Predict before successful Fit")
	}
	n := len(e.model)
	idx := (step - e.fitAt) % n
	if idx < 0 {
		idx += n
	}
	return e.model[idx]
}

// PredictNext returns the prediction for the step after the last observed
// one.
func (e *Estimator) PredictNext() float64 {
	return e.Predict(len(e.samples))
}

// Model returns a copy of the fitted one-period reconstruction.
func (e *Estimator) Model() []float64 {
	out := make([]float64, len(e.model))
	copy(out, e.model)
	return out
}

// MeanAbsError reports the mean absolute prediction error of the fitted
// model against a slice of actual future bandwidths beginning at
// firstStep. It is used by the Fig 7 experiment to score estimation
// accuracy per threshold level.
func (e *Estimator) MeanAbsError(firstStep int, actual []float64) float64 {
	if len(actual) == 0 {
		return 0
	}
	var sum float64
	for i, a := range actual {
		sum += math.Abs(e.Predict(firstStep+i) - a)
	}
	return sum / float64(len(actual))
}
