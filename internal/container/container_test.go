package container

import (
	"testing"

	"tango/internal/device"
	"tango/internal/sim"
)

func testNode(t *testing.T) *Node {
	t.Helper()
	n := NewNode("node0")
	n.MustAddDevice(device.Params{Name: "ssd", PeakBandwidth: 500, MinEfficiency: 1})
	n.MustAddDevice(device.Params{Name: "hdd", PeakBandwidth: 100, MinEfficiency: 1})
	return n
}

func TestNodeDevices(t *testing.T) {
	n := testNode(t)
	if n.Device("ssd") == nil || n.Device("hdd") == nil {
		t.Fatal("devices missing")
	}
	if n.Device("nvme") != nil {
		t.Fatal("unexpected device")
	}
	tiers := n.Tiers()
	if len(tiers) != 2 || tiers[0].Name() != "ssd" || tiers[1].Name() != "hdd" {
		t.Fatalf("tiers = %v", n.DeviceNames())
	}
	names := n.DeviceNames()
	if len(names) != 2 || names[0] != "hdd" || names[1] != "ssd" {
		t.Fatalf("names = %v", names)
	}
}

func TestDuplicateDeviceRejected(t *testing.T) {
	n := testNode(t)
	if _, err := n.AddDevice(device.Params{Name: "ssd", PeakBandwidth: 1, MinEfficiency: 1}); err == nil {
		t.Fatal("duplicate device should fail")
	}
}

func TestLaunchAndIO(t *testing.T) {
	n := testNode(t)
	var elapsed float64
	n.MustLaunch("analytics", func(c *Container, p *sim.Proc) {
		elapsed = c.Read(p, n.Device("hdd"), 1000)
	})
	if err := n.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 10 {
		t.Fatalf("elapsed = %v, want 10", elapsed)
	}
	c := n.Container("analytics")
	if c == nil || c.Name() != "analytics" || c.Node() != n {
		t.Fatal("container lookup broken")
	}
	if c.Cgroup().BytesRead() != 1000 {
		t.Fatalf("cgroup read accounting = %v", c.Cgroup().BytesRead())
	}
	if !c.Proc().Done() {
		t.Fatal("proc should be done")
	}
}

func TestDuplicateContainerRejected(t *testing.T) {
	n := testNode(t)
	n.MustLaunch("a", func(c *Container, p *sim.Proc) {})
	if _, err := n.Launch("a", func(c *Container, p *sim.Proc) {}); err == nil {
		t.Fatal("duplicate launch should fail")
	}
}

func TestSetWeightAffectsSharing(t *testing.T) {
	n := testNode(t)
	hdd := n.Device("hdd")
	var tHeavy, tLight float64
	n.MustLaunch("heavy", func(c *Container, p *sim.Proc) {
		c.SetWeight(900)
		tHeavy = c.Read(p, hdd, 900)
	})
	n.MustLaunch("light", func(c *Container, p *sim.Proc) {
		tLight = c.Read(p, hdd, 900)
	})
	if err := n.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if !(tHeavy < tLight) {
		t.Fatalf("heavy %v should beat light %v", tHeavy, tLight)
	}
}

func TestNodesAreIsolated(t *testing.T) {
	// Two nodes have independent engines and clocks.
	a, b := testNode(t), testNode(t)
	a.MustLaunch("x", func(c *Container, p *sim.Proc) { p.Sleep(100) })
	if err := a.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if a.Engine().Now() != 100 {
		t.Fatalf("node a clock = %v", a.Engine().Now())
	}
	if b.Engine().Now() != 0 {
		t.Fatalf("node b clock moved: %v", b.Engine().Now())
	}
	if a.Cgroups() == b.Cgroups() {
		t.Fatal("nodes share a cgroup controller")
	}
}

func TestContainerCgroupNameMatches(t *testing.T) {
	n := testNode(t)
	c := n.MustLaunch("myapp", func(c *Container, p *sim.Proc) {})
	if c.Cgroup().Name() != "myapp" {
		t.Fatalf("cgroup name = %q", c.Cgroup().Name())
	}
	if n.Cgroups().Lookup("myapp") != c.Cgroup() {
		t.Fatal("cgroup not registered with the node controller")
	}
}
