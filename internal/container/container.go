// Package container models the containerized, non-exclusive node usage
// scenario the paper targets: a compute node with a local ephemeral
// storage hierarchy (performance tier + capacity tier) shared by several
// containers, each bound to its own blkio cgroup (§II "Runtime resource
// control via cgroups").
package container

import (
	"fmt"
	"sort"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/sim"
)

// Node is one compute node: an engine, a set of local devices forming the
// ephemeral storage hierarchy, and the containers running on it.
type Node struct {
	name string
	eng  *sim.Engine
	ctl  *blkio.Controller

	devices    map[string]*device.Device
	tiers      []*device.Device // fastest first (ST^{L-1} … ST^0)
	containers map[string]*Container
}

// NewNode creates an empty node with its own simulation engine.
func NewNode(name string) *Node {
	return &Node{
		name:       name,
		eng:        sim.NewEngine(),
		ctl:        blkio.NewController(),
		devices:    make(map[string]*device.Device),
		containers: make(map[string]*Container),
	}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Engine returns the node's simulation engine.
func (n *Node) Engine() *sim.Engine { return n.eng }

// Cgroups returns the node's blkio controller.
func (n *Node) Cgroups() *blkio.Controller { return n.ctl }

// AddDevice creates a device on this node. Devices added in order of
// decreasing speed become the storage tiers: the first added is the
// fastest tier. Returns an error on duplicate names.
func (n *Node) AddDevice(p device.Params) (*device.Device, error) {
	if _, ok := n.devices[p.Name]; ok {
		return nil, fmt.Errorf("container: device %q already exists on node %q", p.Name, n.name)
	}
	d := device.New(n.eng, p)
	n.devices[p.Name] = d
	n.tiers = append(n.tiers, d)
	return d, nil
}

// MustAddDevice is AddDevice that panics on error.
func (n *Node) MustAddDevice(p device.Params) *device.Device {
	d, err := n.AddDevice(p)
	if err != nil {
		panic(err)
	}
	return d
}

// Device returns the named device or nil.
func (n *Node) Device(name string) *device.Device { return n.devices[name] }

// Tiers returns the storage tiers fastest-first, matching the paper's
// indexing where ST^{L-1} is the fastest/smallest and ST^0 the
// slowest/largest. Tiers[0] here is the fastest.
func (n *Node) Tiers() []*device.Device { return n.tiers }

// DeviceNames returns device names in sorted order.
func (n *Node) DeviceNames() []string {
	names := make([]string, 0, len(n.devices))
	for name := range n.devices {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Container is one application container: a name, its blkio cgroup, and
// optionally a running process.
type Container struct {
	name string
	node *Node
	cg   *blkio.Cgroup
	proc *sim.Proc
}

// Launch creates a container with a fresh cgroup and starts body as its
// process. The body receives the container so it can reach the node,
// devices, and cgroup.
func (n *Node) Launch(name string, body func(c *Container, p *sim.Proc)) (*Container, error) {
	if _, ok := n.containers[name]; ok {
		return nil, fmt.Errorf("container: %q already running on node %q", name, n.name)
	}
	cg, err := n.ctl.Create(name)
	if err != nil {
		return nil, err
	}
	c := &Container{name: name, node: n, cg: cg}
	c.proc = n.eng.Spawn(name, func(p *sim.Proc) { body(c, p) })
	n.containers[name] = c
	return c, nil
}

// MustLaunch is Launch that panics on error.
func (n *Node) MustLaunch(name string, body func(c *Container, p *sim.Proc)) *Container {
	c, err := n.Launch(name, body)
	if err != nil {
		panic(err)
	}
	return c
}

// Container returns the named container or nil.
func (n *Node) Container(name string) *Container { return n.containers[name] }

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// Node returns the node hosting this container.
func (c *Container) Node() *Node { return c.node }

// Cgroup returns the container's blkio cgroup.
func (c *Container) Cgroup() *blkio.Cgroup { return c.cg }

// Proc returns the container's main process.
func (c *Container) Proc() *sim.Proc { return c.proc }

// SetWeight adjusts the container's blkio weight at runtime.
func (c *Container) SetWeight(w int) { c.cg.SetWeight(w) }

// Read performs a read of `bytes` from dev under this container's cgroup.
func (c *Container) Read(p *sim.Proc, dev *device.Device, bytes float64) float64 {
	return dev.Read(p, c.cg, bytes)
}

// Write performs a write of `bytes` to dev under this container's cgroup.
func (c *Container) Write(p *sim.Proc, dev *device.Device, bytes float64) float64 {
	return dev.Write(p, c.cg, bytes)
}
