// Package tokenctl is the decentralized alternative to the central
// per-node weight coordinator: every session owns a token bucket sized
// from the weight function's output, and a weight adjustment touches
// only that bucket (plus at most a constant number of lender peers) —
// O(1) per Request/Release where the coordinator's global rebalance is
// O(sessions).
//
// Tokens are weight·seconds. Holding a grant above the blkio floor for
// one burst window costs (grant−MinWeight)×BurstSec tokens, paid at
// Request from the session's own bucket — incrementally within a
// window, so re-requests at any cadence spend at most one burst per
// BurstSec; the bucket refills on the sim clock at cap/RefillSec. A starved session borrows the
// shortfall from *idle* peers (AdapTBF-style): the lender's tokens move
// to the borrower immediately, the debt is recorded in a borrow ledger,
// and repayment is passive — the debtor's own refill inflow pays debts
// down before it accrues tokens, so repayment is paced to the refill
// rate and can never deadlock (idle-only lending means no borrow cycle
// can form among active sessions, and nobody ever blocks waiting for a
// repayment). Each lender's outstanding principal is hard-capped at
// LendFrac of its bucket, so a lender that turns active again still
// holds most of its capacity — and it can recall in-force points from
// its debtors on the spot (an O(1) weight rewrite per debtor) instead
// of sweeping the node.
//
// The controller is engine-serialized like the rest of the per-node
// stack: no locks, deterministic, and the hot path performs no
// allocation (ledger slices are bounded and preallocated).
package tokenctl

import (
	"fmt"

	"tango/internal/blkio"
	"tango/internal/resil"
	"tango/internal/trace"
)

// Mode selects how a node arbitrates session weights.
type Mode int

const (
	// ModeCentral is the existing coordinator.Allocator: global rescale
	// on every request.
	ModeCentral Mode = iota
	// ModeTokens is pure decentralized token-bucket control.
	ModeTokens
	// ModeHybrid runs token control between periodic coordinator-style
	// epochs: every EpochSec the controller settles all ledgers, forgives
	// outstanding debt, and re-applies the coordinator's rescaled grants
	// once, then hands control back to the buckets.
	ModeHybrid
)

// String returns the CLI spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeCentral:
		return "central"
	case ModeTokens:
		return "tokens"
	case ModeHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses the CLI spelling of a control mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "central":
		return ModeCentral, nil
	case "tokens":
		return ModeTokens, nil
	case "hybrid":
		return ModeHybrid, nil
	}
	return ModeCentral, fmt.Errorf("tokenctl: unknown control mode %q (want central|tokens|hybrid)", s)
}

// Options tunes the bucket and ledger geometry. The zero value selects
// the defaults noted on each field.
type Options struct {
	// BurstSec is the burst window one Request pays for up front:
	// holding G extra weight points costs G×BurstSec tokens. Default 60
	// (one controller step).
	BurstSec float64
	// RefillSec is the time a bucket takes to refill from empty to its
	// cap; the refill rate is cap/RefillSec = desired×BurstSec/RefillSec
	// tokens/sec. Default 60, so a session holding exactly its desired
	// weight breaks even and idle time accrues lendable surplus.
	RefillSec float64
	// BoostFactor bounds the grant a bucket may fund: the target grant
	// is clamp(desired×BoostFactor), so a low-priority session can at
	// most double its weight by borrowing and cannot erase the priority
	// differentiation the weight function encodes. Default 2.
	BoostFactor float64
	// LendFrac caps each lender's outstanding principal at
	// LendFrac×cap. Default 0.5.
	LendFrac float64
	// MaxLenders bounds how many peers fund one Request. Default 4.
	MaxLenders int
	// MaxDebtors bounds how many concurrent debtors one lender carries.
	// Default 8.
	MaxDebtors int
	// MaxScan bounds the rotating lender scan per Request; it is what
	// keeps Request O(1) in the session count. Default 8.
	MaxScan int
	// EpochSec > 0 enables hybrid mode: every EpochSec the controller
	// runs one coordinator-style global rescale and forgives the ledger.
	// 0 (default) is pure token mode.
	EpochSec float64
}

func (o Options) withDefaults() Options {
	if o.BurstSec <= 0 {
		o.BurstSec = 60
	}
	if o.RefillSec <= 0 {
		o.RefillSec = 60
	}
	if o.BoostFactor <= 0 {
		o.BoostFactor = 2
	}
	if o.LendFrac <= 0 {
		o.LendFrac = 0.5
	}
	if o.MaxLenders <= 0 {
		o.MaxLenders = 4
	}
	if o.MaxDebtors <= 0 {
		o.MaxDebtors = 8
	}
	if o.MaxScan <= 0 {
		o.MaxScan = 8
	}
	return o
}

// loan is one borrow-ledger entry held by the debtor. pts is the
// borrowed weight in force for the current burst (zeroed when the burst
// ends or the lender recalls); owed is the outstanding principal in
// tokens, repaid from the debtor's refill inflow.
type loan struct {
	lender *Bucket
	pts    int
	owed   float64
}

// maxLoans bounds a debtor's ledger. Fresh borrows merge into an
// existing entry for the same lender; distinct lenders beyond the cap
// are skipped for that Request.
const maxLoans = 8

// Bucket is one session's token bucket and ledger. It is a handle: the
// hot path never looks sessions up by name.
type Bucket struct {
	name    string
	cg      *blkio.Cgroup
	desired int  // last clamped desired weight
	active  bool // between Request and Release
	pending bool // last weight write failed; re-assert on next Request
	grant   int  // weight currently written while active

	cap    float64 // wantPts(desired) × BurstSec
	rate   float64 // cap / RefillSec
	tokens float64 // current fill, always in [0, cap]
	last   float64 // sim time of the last settle

	burstStart float64 // start of the burst window the session has paid into
	paidPts    int     // weight points funded for the current window

	lentOut float64   // outstanding principal across all debtors
	loans   []loan    // debts this bucket owes (len ≤ maxLoans, preallocated)
	debtors []*Bucket // buckets owing this one (len ≤ MaxDebtors, preallocated)
}

// Name returns the session name the bucket was attached under.
func (b *Bucket) Name() string { return b.name }

// Tokens returns the current fill (tokens are weight·seconds).
func (b *Bucket) Tokens() float64 { return b.tokens }

// LentOut returns the outstanding principal this bucket has on loan.
func (b *Bucket) LentOut() float64 { return b.lentOut }

// Owed returns the outstanding principal this bucket owes its lenders.
func (b *Bucket) Owed() float64 {
	t := 0.0
	for i := range b.loans {
		t += b.loans[i].owed
	}
	return t
}

// Stats counts ledger traffic for experiment reporting.
type Stats struct {
	Borrows int // loans opened or topped up
	Repays  int // loans fully cleared (refill-paced or epoch-forgiven)
	Recalls int // in-force points recalled by an underfunded lender
	Writes  int // weight writes issued (grants, reverts, recalls)
}

// Controller owns the buckets of one node. It must only be used from
// that node's engine context (engine-serialized, like blkio and the
// device layer): it holds no locks.
type Controller struct {
	opts   Options
	now    func() float64
	rec    *trace.Recorder
	kApply *resil.Key

	buckets []*Bucket
	byName  map[string]*Bucket
	cursor  int // rotating lender-scan position
	active  int // buckets between Request and Release

	nextEpoch float64
	stats     Stats
}

// New returns a controller reading the sim clock through now (nil is
// taken as a constant 0, useful in tests that drive time explicitly
// through a variable).
func New(now func() float64, opts Options) *Controller {
	c := &Controller{
		opts:   opts.withDefaults(),
		now:    now,
		byName: map[string]*Bucket{},
	}
	if c.now == nil {
		c.now = func() float64 { return 0 }
	}
	if c.opts.EpochSec > 0 {
		c.nextEpoch = c.opts.EpochSec
	}
	return c
}

// Mode reports the control mode this controller implements.
func (c *Controller) Mode() Mode {
	if c.opts.EpochSec > 0 {
		return ModeHybrid
	}
	return ModeTokens
}

// SetTrace routes borrow/repay ledger events to rec. May be nil.
func (c *Controller) SetTrace(rec *trace.Recorder) { c.rec = rec }

// SetResil routes weight writes through the tokens.weight.apply policy
// (breaker-gated per cgroup). Pass nil to restore direct TrySetWeight.
func (c *Controller) SetResil(rc *resil.Controller) {
	if rc == nil {
		c.kApply = nil
		return
	}
	c.kApply = rc.Key(resil.KeyTokenWeightApply)
}

// Stats returns the ledger-traffic counters.
func (c *Controller) Stats() Stats { return c.stats }

// Active reports how many sessions are currently retrieving.
func (c *Controller) Active() int { return c.active }

// Attach registers a session's cgroup and returns its bucket handle.
// The bucket starts full at the default-weight size; the first Request
// resizes it to the weight function's output.
func (c *Controller) Attach(name string, cg *blkio.Cgroup) (*Bucket, error) {
	if _, ok := c.byName[name]; ok {
		return nil, fmt.Errorf("tokenctl: session %q already attached", name)
	}
	b := &Bucket{
		name:    name,
		cg:      cg,
		desired: blkio.DefaultWeight,
		last:    c.now(),
		loans:   make([]loan, 0, maxLoans),
		debtors: make([]*Bucket, 0, c.opts.MaxDebtors),
	}
	b.cap = float64(c.wantPts(b.desired)) * c.opts.BurstSec
	b.rate = b.cap / c.opts.RefillSec
	b.tokens = b.cap
	c.buckets = append(c.buckets, b)
	c.byName[name] = b
	return b, nil
}

// Lookup returns the bucket attached under name, or nil.
func (c *Controller) Lookup(name string) *Bucket { return c.byName[name] }

// Detach releases the session (reverting its weight) and removes its
// bucket. Its outstanding debts are settled as far as the ledger allows
// and the remainder forgiven; principal it has on loan is written off.
func (c *Controller) Detach(b *Bucket) {
	if b == nil || c.byName[b.name] != b {
		return
	}
	c.Release(b)
	// Forgive what it still owes and write off what it lent.
	for i := range b.loans {
		l := &b.loans[i]
		l.lender.lentOut -= l.owed
		if l.lender.lentOut < 0 {
			l.lender.lentOut = 0
		}
		l.owed, l.pts = 0, 0
		l.lender.removeDebtor(b)
	}
	b.loans = b.loans[:0]
	for len(b.debtors) > 0 {
		d := b.debtors[0]
		for i := range d.loans {
			if d.loans[i].lender == b {
				d.loans[i].owed = 0
				d.loans[i].pts = 0
			}
		}
		d.compactLoans() // drops the dead entry and removes d from b.debtors
		if len(b.debtors) > 0 && b.debtors[0] == d {
			b.debtors = b.debtors[1:] // defensive: never loop on a stale entry
		}
	}
	b.lentOut = 0
	for i, x := range c.buckets {
		if x == b {
			c.buckets = append(c.buckets[:i], c.buckets[i+1:]...)
			break
		}
	}
	if c.cursor >= len(c.buckets) {
		c.cursor = 0
	}
	delete(c.byName, b.name)
}

// Request declares that the session wants the given desired weight for
// its current retrieval and returns the granted weight. It settles the
// bucket, pays for the burst window from its own tokens, borrows any
// shortfall from idle peers, and — if the bucket is itself a starved
// lender — recalls in-force points from its debtors. Payment is
// window-incremental: a re-request inside the same BurstSec window
// (the controller adjusts the weight once per bucket within a step)
// only pays for points beyond what the window has already funded, so
// the sustainable spend rate is one burst per window regardless of the
// request cadence. O(1) in the session count.
func (c *Controller) Request(b *Bucket, desired int) int {
	now := c.now()
	if c.nextEpoch > 0 && now >= c.nextEpoch {
		c.resync(now)
	}
	c.settle(b, now)
	d := blkio.ClampWeight(desired)
	if d != b.desired {
		c.resize(b, d)
	}
	if !b.active {
		c.active++
	}
	if !b.active || now-b.burstStart >= c.opts.BurstSec {
		// A fresh window: the previous burst's borrowed points fall out
		// of force and the window is re-funded from scratch.
		c.endBoost(b)
		b.burstStart = now
		b.paidPts = 0
	}

	want := c.wantPts(d)
	chargeable := want - b.paidPts
	if chargeable > 0 {
		own := int(b.tokens / c.opts.BurstSec)
		if own > chargeable {
			own = chargeable
		}
		b.tokens -= float64(own) * c.opts.BurstSec
		short := chargeable - own
		if short > 0 {
			short = c.borrow(b, short, now)
		}
		if short > 0 && b.lentOut > 0 {
			short = c.recall(b, short)
		}
		b.paidPts += chargeable - short
	}
	b.active = true
	funded := b.paidPts
	if funded > want {
		funded = want // desired dropped mid-window; no refunds
	}
	b.grant = blkio.MinWeight + funded
	c.write(b, b.grant)
	return b.grant
}

// Release marks the session's retrieval finished: the burst ends (any
// borrowed points fall out of force, though unpaid principal stays on
// the ledger) and the weight reverts to the default.
func (c *Controller) Release(b *Bucket) {
	c.settle(b, c.now())
	c.endBoost(b)
	if b.active {
		c.active--
	}
	b.active = false
	b.grant = blkio.DefaultWeight
	c.write(b, blkio.DefaultWeight)
}

// settle advances the bucket to now: refill inflow pays outstanding
// debts first (principal flows back to the lenders — repayment paced to
// the refill rate), and the remainder accrues as tokens up to the cap.
//
//tango:hotpath
func (c *Controller) settle(b *Bucket, now float64) {
	dt := now - b.last
	b.last = now
	if dt <= 0 {
		return
	}
	inflow := dt * b.rate
	for i := range b.loans {
		if inflow <= 0 {
			break
		}
		l := &b.loans[i]
		if l.owed <= 0 {
			continue
		}
		pay := inflow
		if pay > l.owed {
			pay = l.owed
		}
		l.owed -= pay
		inflow -= pay
		l.lender.lentOut -= pay
		if l.lender.lentOut < 0 {
			l.lender.lentOut = 0
		}
		l.lender.tokens += pay
		if l.lender.tokens > l.lender.cap {
			l.lender.tokens = l.lender.cap
		}
		if l.owed <= 0 && l.pts == 0 {
			c.stats.Repays++
			if c.rec != nil {
				//lint:ignore hotpath the formatted emit only runs with a recorder attached; benchmark and zero-alloc configurations leave rec nil
				c.rec.Emit(now, b.name, trace.KindRepay, "debt to %s cleared", l.lender.name)
			}
		}
	}
	b.compactLoans()
	b.tokens += inflow
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
}

// wantPts is the weight headroom one burst buys: the distance from the
// free blkio floor to the boost target clamp(desired×BoostFactor). The
// bucket is sized to fund exactly this — cap = wantPts×BurstSec — so a
// session holding its target breaks even against the refill and idle
// time accrues lendable surplus.
func (c *Controller) wantPts(desired int) int {
	t := blkio.ClampWeight(int(float64(desired) * c.opts.BoostFactor))
	return t - blkio.MinWeight
}

// resize re-sizes the bucket for a new desired weight, preserving the
// fill fraction so a change of desire neither mints nor burns tokens
// beyond the proportional adjustment. If the shrunken cap leaves more
// principal on loan than the lender cap now allows, the excess is
// written off (the debtors' owed drops with it, keeping the ledger
// invariant Σowed == Σ lentOut).
func (c *Controller) resize(b *Bucket, desired int) {
	frac := 1.0
	if b.cap > 0 {
		frac = b.tokens / b.cap
	}
	b.desired = desired
	b.cap = float64(c.wantPts(desired)) * c.opts.BurstSec
	b.rate = b.cap / c.opts.RefillSec
	b.tokens = frac * b.cap
	if excess := b.lentOut - c.opts.LendFrac*b.cap; excess > 0 {
		c.writeOff(b, excess)
	}
}

// writeOff forgives up to excess of b's outstanding principal,
// oldest debtor first.
func (c *Controller) writeOff(b *Bucket, excess float64) {
	for di := 0; di < len(b.debtors) && excess > 0; di++ {
		d := b.debtors[di]
		for i := range d.loans {
			l := &d.loans[i]
			if l.lender != b || l.owed <= 0 {
				continue
			}
			forgive := excess
			if forgive > l.owed {
				forgive = l.owed
			}
			l.owed -= forgive
			b.lentOut -= forgive
			excess -= forgive
			if l.owed <= 0 && l.pts == 0 {
				c.stats.Repays++
			}
			if excess <= 0 {
				break
			}
		}
	}
	if b.lentOut < 0 {
		b.lentOut = 0
	}
}

// endBoost takes the previous burst's borrowed points out of force.
// Fully repaid loans drop off the ledger; unpaid principal persists.
func (c *Controller) endBoost(b *Bucket) {
	for i := range b.loans {
		b.loans[i].pts = 0
	}
	b.compactLoans()
}

// borrow funds up to short weight points from idle peers, scanning at
// most MaxScan buckets from a rotating cursor and taking from at most
// MaxLenders of them. The lender's tokens move now; the debt is
// recorded on b's ledger. Returns the unfunded remainder.
//
//tango:hotpath
func (c *Controller) borrow(b *Bucket, short int, now float64) int {
	n := len(c.buckets)
	if n <= 1 {
		return short
	}
	scan := c.opts.MaxScan
	if scan > n {
		scan = n
	}
	lenders := 0
	for i := 0; i < scan && short > 0 && lenders < c.opts.MaxLenders; i++ {
		if c.cursor >= n {
			c.cursor = 0
		}
		l := c.buckets[c.cursor]
		c.cursor++
		if l == b || l.active {
			continue
		}
		c.settle(l, now)
		avail := c.opts.LendFrac*l.cap - l.lentOut
		if avail > l.tokens {
			avail = l.tokens
		}
		pts := int(avail / c.opts.BurstSec)
		if pts > short {
			pts = short
		}
		if pts <= 0 {
			continue
		}
		if !b.recordLoan(l, pts, float64(pts)*c.opts.BurstSec, c.opts.MaxDebtors) {
			continue
		}
		principal := float64(pts) * c.opts.BurstSec
		l.tokens -= principal
		l.lentOut += principal
		short -= pts
		lenders++
		c.stats.Borrows++
		if c.rec != nil {
			//lint:ignore hotpath the formatted emit only runs with a recorder attached; benchmark and zero-alloc configurations leave rec nil
			c.rec.Emit(now, b.name, trace.KindBorrow, "borrowed %d pts from %s", pts, l.name)
		}
	}
	return short
}

// recordLoan merges pts/principal into b's ledger entry for lender l
// (creating one if the ledger and l's debtor list have room). It
// reports whether the loan was recorded; the caller only moves tokens
// on success.
func (b *Bucket) recordLoan(l *Bucket, pts int, principal float64, maxDebtors int) bool {
	for i := range b.loans {
		if b.loans[i].lender == l {
			b.loans[i].pts += pts
			b.loans[i].owed += principal
			return true
		}
	}
	if len(b.loans) == maxLoans {
		return false
	}
	if !l.hasDebtor(b) {
		if len(l.debtors) == maxDebtors {
			return false
		}
		l.debtors = append(l.debtors, b)
	}
	b.loans = append(b.loans, loan{lender: l, pts: pts, owed: principal})
	return true
}

// recall lets a starved lender reclaim up to short of its in-force
// lent points: each recalled point comes straight off the debtor's
// written weight (one O(1) rewrite per debtor) and the matching
// principal is forgiven, so the ledger invariant Σowed == Σ lentOut
// holds. Returns the remainder it could not reclaim.
func (c *Controller) recall(b *Bucket, short int) int {
	for di := 0; di < len(b.debtors) && short > 0; di++ {
		d := b.debtors[di]
		for i := range d.loans {
			l := &d.loans[i]
			if l.lender != b || l.pts <= 0 {
				continue
			}
			r := short
			if r > l.pts {
				r = l.pts
			}
			if byOwed := int(l.owed / c.opts.BurstSec); r > byOwed {
				r = byOwed
			}
			if r <= 0 {
				continue
			}
			principal := float64(r) * c.opts.BurstSec
			l.pts -= r
			l.owed -= principal
			b.lentOut -= principal
			if b.lentOut < 0 {
				b.lentOut = 0
			}
			b.tokens += principal // reclaimed capacity funds this burst
			if b.tokens > b.cap {
				b.tokens = b.cap
			}
			short -= r
			c.stats.Recalls++
			if d.active {
				d.grant -= r
				if d.grant < blkio.MinWeight {
					d.grant = blkio.MinWeight
				}
				c.write(d, d.grant)
			}
			if c.rec != nil {
				c.rec.Emit(c.now(), b.name, trace.KindBorrow, "recalled %d pts from %s", r, d.name)
			}
		}
	}
	// The reclaimed principal is back in b.tokens; spend it.
	own := int(b.tokens / c.opts.BurstSec)
	if own > short {
		own = short
	}
	b.tokens -= float64(own) * c.opts.BurstSec
	return short - own
}

// resync is the hybrid epoch: settle every bucket, forgive the ledger,
// refill to full, and re-apply one coordinator-style rescale (largest
// active desired maps to MaxWeight, ratios preserved). O(sessions),
// once per EpochSec.
func (c *Controller) resync(now float64) {
	for c.nextEpoch <= now {
		c.nextEpoch += c.opts.EpochSec
	}
	maxDesired := 0
	for _, b := range c.buckets {
		c.settle(b, now)
		if b.active && b.desired > maxDesired {
			maxDesired = b.desired
		}
	}
	forgiven := 0
	for _, b := range c.buckets {
		for i := range b.loans {
			if b.loans[i].owed > 0 {
				forgiven++
			}
		}
		b.loans = b.loans[:0]
		b.debtors = b.debtors[:0]
		b.lentOut = 0
		b.tokens = b.cap
		// The epoch rewrites grants out from under the burst windows;
		// force the next Request to fund a fresh window from the refilled
		// bucket.
		b.paidPts = 0
		b.burstStart = now - c.opts.BurstSec
	}
	c.stats.Repays += forgiven
	if c.rec != nil && forgiven > 0 {
		c.rec.Emit(now, "tokenctl", trace.KindRepay, "epoch resync forgave %d debts", forgiven)
	}
	if maxDesired == 0 {
		return
	}
	for _, b := range c.buckets {
		if !b.active {
			continue
		}
		g := blkio.ClampWeight(b.desired * blkio.MaxWeight / maxDesired)
		if g != b.grant || b.pending {
			b.grant = g
			c.write(b, g)
		}
	}
}

// write issues one weight write through the resil key when attached
// (breaker-gated, self-tracing) or directly otherwise. Failures mark
// the bucket pending; the next Request re-asserts the grant.
func (c *Controller) write(b *Bucket, w int) {
	c.stats.Writes++
	if c.kApply != nil {
		b.pending = !c.kApply.Weight(b.cg, w).OK
		return
	}
	b.pending = b.cg.TrySetWeight(w) != nil
}

// compactLoans drops ledger entries that are fully repaid and out of
// force, keeping order (in-place, no allocation). A debtor holds at
// most one entry per lender, so dropping the entry also ends the
// debtor relationship.
func (b *Bucket) compactLoans() {
	out := b.loans[:0]
	for i := range b.loans {
		if b.loans[i].owed > 0 || b.loans[i].pts > 0 {
			out = append(out, b.loans[i])
		} else {
			b.loans[i].lender.removeDebtor(b)
		}
	}
	b.loans = out
}

func (b *Bucket) hasDebtor(d *Bucket) bool {
	for _, x := range b.debtors {
		if x == d {
			return true
		}
	}
	return false
}

// removeDebtor removes d from b's debtor list.
func (b *Bucket) removeDebtor(d *Bucket) {
	for i, x := range b.debtors {
		if x == d {
			b.debtors = append(b.debtors[:i], b.debtors[i+1:]...)
			return
		}
	}
}
