package tokenctl

import (
	"math/rand"
	"testing"

	"tango/internal/blkio"
	"tango/internal/trace"
)

// clock is a manual sim clock for driving settles explicitly.
type clock struct{ t float64 }

func (c *clock) now() float64       { return c.t }
func (c *clock) advance(dt float64) { c.t += dt }

func newTestCtl(t *testing.T, opts Options, names ...string) (*Controller, *clock, map[string]*Bucket) {
	t.Helper()
	ck := &clock{}
	c := New(ck.now, opts)
	bs := map[string]*Bucket{}
	for _, n := range names {
		b, err := c.Attach(n, blkio.NewCgroup(n))
		if err != nil {
			t.Fatalf("attach %s: %v", n, err)
		}
		bs[n] = b
	}
	return c, ck, bs
}

func TestModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeCentral, ModeTokens, ModeHybrid} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) did not fail")
	}
	if New(nil, Options{}).Mode() != ModeTokens {
		t.Error("EpochSec=0 should be ModeTokens")
	}
	if New(nil, Options{EpochSec: 300}).Mode() != ModeHybrid {
		t.Error("EpochSec>0 should be ModeHybrid")
	}
}

// TestSoloSessionSustainsTarget: a lone session holding its desired
// weight is self-funding — the bucket refills as fast as the burst
// drains, so the boosted grant persists across steps.
func TestSoloSessionSustainsTarget(t *testing.T) {
	c, ck, bs := newTestCtl(t, Options{}, "a")
	b := bs["a"]
	for i := 0; i < 50; i++ {
		if g := c.Request(b, 400); g != 800 {
			t.Fatalf("step %d: grant = %d, want 800 (BoostFactor=2 self-funded)", i, g)
		}
		if b.cg.Weight() != 800 {
			t.Fatalf("step %d: cgroup weight = %d", i, b.cg.Weight())
		}
		ck.advance(60)
	}
	c.Release(b)
	if b.cg.Weight() != blkio.DefaultWeight {
		t.Fatalf("released weight = %d, want default", b.cg.Weight())
	}
	if c.Active() != 0 {
		t.Fatalf("active = %d after release", c.Active())
	}
}

// TestBorrowBoostsStarvedSession: escalating the desire mid-window
// outstrips the already-drained bucket; the shortfall is funded by an
// idle peer and the debt lands on the ledger.
func TestBorrowBoostsStarvedSession(t *testing.T) {
	c, _, bs := newTestCtl(t, Options{}, "starved", "idle")
	b, l := bs["starved"], bs["idle"]
	g1 := c.Request(b, 300) // self-funded: 600, bucket drained
	if g1 != 600 {
		t.Fatalf("first grant = %d, want 600", g1)
	}
	g2 := c.Request(b, 1000) // escalation in the same window: must borrow
	if g2 <= g1 {
		t.Fatalf("escalated grant = %d: borrowing from the idle peer should fund a boost past %d", g2, g1)
	}
	if b.Owed() == 0 {
		t.Fatal("no debt recorded after borrowing")
	}
	if l.LentOut() == 0 {
		t.Fatal("lender shows no outstanding principal")
	}
	if s := c.Stats(); s.Borrows == 0 {
		t.Fatalf("stats = %+v: expected borrows", s)
	}
}

// TestLenderCapRespected: outstanding principal per lender never
// exceeds LendFrac of its cap, however hard the debtors pull.
func TestLenderCapRespected(t *testing.T) {
	c, ck, bs := newTestCtl(t, Options{LendFrac: 0.5}, "a", "b", "lender")
	l := bs["lender"]
	for i := 0; i < 10; i++ {
		c.Request(bs["a"], 300)
		c.Request(bs["a"], 1000) // escalation: drained, pulls on the lender
		c.Request(bs["b"], 300)
		c.Request(bs["b"], 1000)
		ck.advance(60)
	}
	if maxOut := c.opts.LendFrac * l.cap; l.LentOut() > maxOut+1e-9 {
		t.Fatalf("lender outstanding %.1f exceeds cap %.1f", l.LentOut(), maxOut)
	}
}

// TestRepaymentPacedToRefill: after the debtor goes idle its refill
// inflow pays the lender back; by a full drain every loan clears and
// the principal is back in the lender's bucket.
func TestRepaymentPacedToRefill(t *testing.T) {
	rec := trace.New(1024)
	c, ck, bs := newTestCtl(t, Options{}, "debtor", "lender")
	c.SetTrace(rec)
	b, l := bs["debtor"], bs["lender"]
	c.Request(b, 300)
	c.Request(b, 1000) // escalation drains the bucket and borrows
	owed := b.Owed()
	if owed == 0 {
		t.Fatal("setup failed to create debt")
	}
	c.Release(b)
	// One second of refill repays at most rate×dt; the debt must shrink
	// but not vanish instantly.
	ck.advance(1)
	c.settle(b, ck.t)
	if got := b.Owed(); got >= owed || got == 0 {
		t.Fatalf("after 1s owed = %.1f (was %.1f): want partial, refill-paced repayment", got, owed)
	}
	// A long idle drain clears everything.
	ck.advance(10 * c.opts.RefillSec)
	c.settle(b, ck.t)
	if got := b.Owed(); got != 0 {
		t.Fatalf("debt not cleared by drain: %.1f", got)
	}
	if l.LentOut() != 0 {
		t.Fatalf("lender still shows %.1f outstanding", l.LentOut())
	}
	if len(rec.Filter(trace.KindRepay)) == 0 {
		t.Fatal("no repay event on the timeline")
	}
	if s := c.Stats(); s.Repays == 0 {
		t.Fatalf("stats = %+v: expected repays", s)
	}
}

// TestRecallReclaimsInForcePoints: a lender that turns active while its
// loan is in force claws the points back — the debtor's written weight
// drops on the spot, with no global sweep.
func TestRecallReclaimsInForcePoints(t *testing.T) {
	c, _, bs := newTestCtl(t, Options{}, "debtor", "lender")
	b, l := bs["debtor"], bs["lender"]
	g1 := c.Request(b, 300)
	g2 := c.Request(b, 1000) // escalation borrows from lender
	if g2 <= g1 {
		t.Fatalf("setup: debtor grant %d, expected a borrowed boost past %d", g2, g1)
	}
	before := b.cg.Weight()
	// The lender now wants more than its lend-depleted bucket can fund:
	// it must recall.
	c.Request(l, 1000)
	if s := c.Stats(); s.Recalls == 0 {
		t.Fatalf("stats = %+v: expected recalls", s)
	}
	if after := b.cg.Weight(); after >= before {
		t.Fatalf("debtor weight %d -> %d: recall should reduce it", before, after)
	}
}

// TestLedgerInvariants drives a seeded random schedule of request /
// release / advance / detach and asserts the core invariants after
// every operation: fills in [0, cap], per-lender principal below the
// hard cap, and Σ owed == Σ lentOut across the node.
func TestLedgerInvariants(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	c, ck, bs := newTestCtl(t, Options{}, names...)
	rng := rand.New(rand.NewSource(11))
	check := func(op string, i int) {
		t.Helper()
		var owed, lent float64
		for _, b := range c.buckets {
			if b.tokens < -1e-9 || b.tokens > b.cap+1e-9 {
				t.Fatalf("op %d %s: %s tokens %.3f outside [0, %.1f]", i, op, b.name, b.tokens, b.cap)
			}
			if maxOut := c.opts.LendFrac * b.cap; b.lentOut > maxOut+1e-9 {
				t.Fatalf("op %d %s: %s lentOut %.3f > cap %.3f", i, op, b.name, b.lentOut, maxOut)
			}
			owed += b.Owed()
			lent += b.lentOut
		}
		if d := owed - lent; d > 1e-6 || d < -1e-6 {
			t.Fatalf("op %d %s: Σowed %.6f != ΣlentOut %.6f", i, op, owed, lent)
		}
	}
	for i := 0; i < 4000; i++ {
		b := bs[names[rng.Intn(len(names))]]
		var op string
		switch k := rng.Intn(10); {
		case k < 5:
			op = "request"
			c.Request(b, blkio.MinWeight+rng.Intn(blkio.MaxWeight-blkio.MinWeight))
		case k < 8:
			op = "release"
			c.Release(b)
		case k < 9:
			op = "advance"
			ck.advance(float64(rng.Intn(120)))
		default:
			op = "detach+reattach"
			c.Detach(b)
			nb, err := c.Attach(b.name, blkio.NewCgroup(b.name))
			if err != nil {
				t.Fatalf("op %d: reattach: %v", i, err)
			}
			bs[b.name] = nb
		}
		check(op, i)
	}
	// Drain: release everyone, advance far, settle — every loan repaid.
	for _, n := range names {
		c.Release(bs[n])
	}
	ck.advance(100 * c.opts.RefillSec)
	for _, n := range names {
		c.settle(bs[n], ck.t)
	}
	for _, n := range names {
		if owed := bs[n].Owed(); owed != 0 {
			t.Fatalf("drain left %s owing %.3f", n, owed)
		}
		if lent := bs[n].LentOut(); lent != 0 {
			t.Fatalf("drain left %s with %.3f outstanding", n, lent)
		}
	}
}

// TestHybridEpochResync: in hybrid mode the epoch boundary forgives the
// ledger and re-applies the coordinator's rescaled grants once.
func TestHybridEpochResync(t *testing.T) {
	c, ck, bs := newTestCtl(t, Options{EpochSec: 300}, "hi", "lo", "idle", "spike")
	hi, lo, spike := bs["hi"], bs["lo"], bs["spike"]
	c.Request(hi, 600)
	c.Request(lo, 150)
	c.Request(spike, 300)
	c.Request(spike, 1000) // escalation borrows, so the epoch has debt on the books
	if spike.Owed() == 0 {
		t.Fatal("setup: no debt before the epoch")
	}
	c.Release(spike)
	ck.advance(301)
	c.Request(hi, 600) // crosses the epoch: resync runs first
	if spike.Owed() != 0 {
		t.Fatalf("epoch left %.1f owed", spike.Owed())
	}
	// Coordinator-style rescale: 600/150 -> 1000/250.
	if w := hi.cg.Weight(); w != blkio.MaxWeight {
		t.Fatalf("hi weight after epoch = %d, want %d", w, blkio.MaxWeight)
	}
	if w := lo.cg.Weight(); w != 250 {
		t.Fatalf("lo weight after epoch = %d, want 250", w)
	}
}

// TestWeightFailMarksPending: an injected weight-write fault is
// tolerated; the next request re-asserts the grant once the fault
// clears.
func TestWeightFailMarksPending(t *testing.T) {
	c, ck, bs := newTestCtl(t, Options{}, "a")
	b := bs["a"]
	b.cg.SetWeightFailing(true)
	c.Request(b, 400)
	if !b.pending {
		t.Fatal("failed write did not mark the bucket pending")
	}
	if b.cg.Weight() != blkio.DefaultWeight {
		t.Fatalf("weight moved despite fault: %d", b.cg.Weight())
	}
	b.cg.SetWeightFailing(false)
	ck.advance(60)
	c.Request(b, 400)
	if b.pending || b.cg.Weight() != 800 {
		t.Fatalf("recovery failed: pending=%v weight=%d", b.pending, b.cg.Weight())
	}
}

func TestAttachDuplicateFails(t *testing.T) {
	c, _, _ := newTestCtl(t, Options{}, "a")
	if _, err := c.Attach("a", blkio.NewCgroup("a")); err == nil {
		t.Fatal("duplicate attach did not fail")
	}
	if c.Lookup("a") == nil || c.Lookup("ghost") != nil {
		t.Fatal("lookup misbehaves")
	}
}

// TestDetachWritesOffLedger: detaching a debtor clears its lenders'
// books; detaching a lender forgives its debtors.
func TestDetachWritesOffLedger(t *testing.T) {
	c, _, bs := newTestCtl(t, Options{}, "debtor", "lender")
	b, l := bs["debtor"], bs["lender"]
	c.Request(b, 300)
	c.Request(b, 1000)
	if l.LentOut() == 0 {
		t.Fatal("setup: nothing lent")
	}
	c.Detach(b)
	if l.LentOut() != 0 || len(l.debtors) != 0 {
		t.Fatalf("detach left lender books dirty: lentOut=%.1f debtors=%d", l.LentOut(), len(l.debtors))
	}
	// Now the reverse: a lender detaches out from under its debtor.
	b2, _ := c.Attach("debtor2", blkio.NewCgroup("debtor2"))
	c.Request(b2, 300)
	c.Request(b2, 1000)
	if b2.Owed() == 0 {
		t.Fatal("setup: no debt")
	}
	c.Detach(l)
	if b2.Owed() != 0 {
		t.Fatalf("lender detach left debtor owing %.1f", b2.Owed())
	}
}

// TestRequestZeroAllocTokens: with no recorder and no resil controller
// attached, the steady-state request/release cycle — including a
// borrow-heavy schedule — performs no allocation.
func TestRequestZeroAllocTokens(t *testing.T) {
	ck := &clock{}
	c := New(ck.now, Options{})
	var bks [8]*Bucket
	for i, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		b, err := c.Attach(n, blkio.NewCgroup(n))
		if err != nil {
			t.Fatal(err)
		}
		bks[i] = b
	}
	// Warm up: populate ledgers once.
	for i, b := range bks[:4] {
		c.Request(b, 300+100*i)
		c.Request(b, 1000)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		b := bks[i%4]
		c.Request(b, 300+(i%7)*100)
		c.Request(b, 1000) // mid-window escalation exercises borrow
		c.Release(b)
		ck.advance(7)
		i++
	})
	if allocs != 0 {
		t.Fatalf("request/release allocates %.1f per run, want 0", allocs)
	}
}
