package sim

import "testing"

func TestWaitGroupBasic(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("parent", func(p *Proc) {
		wg := NewWaitGroup(e)
		for i, d := range []float64{3, 1, 2} {
			name := string(rune('a' + i))
			dd := d
			wg.Go(name, func(c *Proc) {
				c.Sleep(dd)
				order = append(order, name)
			})
		}
		wg.Wait(p)
		order = append(order, "parent")
		if p.Now() != 3 {
			t.Errorf("parent resumed at %v, want 3", p.Now())
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "a", "parent"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestWaitGroupZeroCountReturnsImmediately(t *testing.T) {
	e := NewEngine()
	done := false
	e.Spawn("p", func(p *Proc) {
		wg := NewWaitGroup(e)
		wg.Wait(p) // no tasks
		done = true
		if p.Now() != 0 {
			t.Errorf("waited despite zero count")
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("process did not finish")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	wg.Done()
}

func TestWaitGroupCount(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(3)
	if wg.Count() != 3 {
		t.Fatalf("count = %d", wg.Count())
	}
	wg.Done()
	if wg.Count() != 2 {
		t.Fatalf("count = %d", wg.Count())
	}
}

func TestWaitGroupDoubleWaiterPanics(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(1)
	e.Spawn("w1", func(p *Proc) { wg.Wait(p) })
	e.Spawn("w2", func(p *Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on second waiter")
			}
			wg.Done() // release w1 so the engine drains
		}()
		wg.Wait(p)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}
