package sim

import (
	"fmt"
	"math"
)

// Engine is a discrete-event scheduler over a virtual clock measured in
// seconds. The zero value is not usable; construct with NewEngine.
//
// Engine methods must only be called from the goroutine that owns the
// engine (the one calling Run) or from within a simulated process or event
// callback; the engine is not safe for concurrent use from unrelated
// goroutines. Independent engines are fully isolated and may run on
// separate goroutines in parallel (this is how multi-node weak scaling is
// simulated).
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
	free   []*event // recycled event structs; bounds steady-state allocation
	procs  int      // live (not yet finished) processes
	err    error
	trace  func(t float64, msg string)
}

// NewEngine returns an engine with the clock at t=0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// SetTrace installs a trace hook invoked for engine-level events. A nil
// hook disables tracing.
func (e *Engine) SetTrace(fn func(t float64, msg string)) { e.trace = fn }

func (e *Engine) tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf(format, args...))
	}
}

// Err returns the first process failure observed by the engine, if any.
func (e *Engine) Err() error { return e.err }

// newEvent takes a struct off the freelist (or allocates one) and stamps it
// with the next sequence number. seq is monotone and never reused, so a
// Timer holding a stale pointer can always detect that its event is gone.
func (e *Engine) newEvent(t float64, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.t = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	return ev
}

// recycle returns a drained event to the freelist. The callback reference
// is dropped so the freelist does not pin closures.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.cb = nil
	e.free = append(e.free, ev)
}

// Callback is the allocation-free alternative to a func() event body: a
// hot path that would otherwise build a fresh closure per scheduling (to
// carry per-object state into the event) instead implements Fire on the
// state object itself and passes its pointer — boxing a pointer into the
// interface does not allocate. See Device's flow-issue events.
type Callback interface {
	Fire()
}

// AtCall schedules cb.Fire to run at virtual time t. Semantics (clamping,
// ordering, Timer cancellation) are identical to At; the event occupies
// the same sequence slot an At call at this point would.
//
//tango:hotpath
func (e *Engine) AtCall(t float64, cb Callback) Timer {
	if t < e.now {
		t = e.now
	}
	if math.IsNaN(t) {
		panic("sim: event scheduled at NaN time")
	}
	ev := e.newEvent(t, nil)
	ev.cb = cb
	e.events.push(ev)
	return Timer{ev: ev, seq: ev.seq, when: t}
}

// At schedules fn to run at virtual time t. Times in the past are clamped
// to the present (the event still fires, after already-scheduled events at
// the current instant). Returns a handle that can cancel the event.
//
//tango:hotpath
func (e *Engine) At(t float64, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	if math.IsNaN(t) {
		panic("sim: event scheduled at NaN time")
	}
	ev := e.newEvent(t, fn)
	e.events.push(ev)
	return Timer{ev: ev, seq: ev.seq, when: t}
}

// After schedules fn to run d seconds from now.
//
//tango:hotpath
func (e *Engine) After(d float64, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Timer is a handle to a scheduled event. Timers are small values; copy
// them freely. The zero Timer is valid and behaves as already expired.
type Timer struct {
	ev   *event
	seq  int64
	when float64
}

// Stop cancels the event if it has not fired. It reports whether the event
// was still pending. Cancellation is implemented by neutering the callback,
// so the heap entry drains harmlessly. Fired events are recycled; the
// sequence guard makes Stop on a stale handle a safe no-op even after the
// underlying struct has been reused for a later event.
//
//tango:hotpath
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.seq != t.seq || (t.ev.fn == nil && t.ev.cb == nil) {
		return false
	}
	t.ev.fn = nil
	t.ev.cb = nil
	return true
}

// When returns the virtual time at which the timer fires (or fired). It
// stays valid after the event drains and the struct is recycled.
func (t Timer) When() float64 { return t.when }

// Run processes events in order until the clock would pass `until`, then
// sets the clock to `until` and returns. Events scheduled exactly at
// `until` do fire. Returns the first process error, if any.
//
// The dispatch loop is the simulator's innermost loop
// (BenchmarkEngine*); tangolint's hotpath analyzer verifies it and
// everything it reaches stay free of per-event allocation.
//
//tango:hotpath
func (e *Engine) Run(until float64) error {
	for len(e.events) > 0 && e.err == nil {
		ev := e.events[0]
		if ev.t > until {
			break
		}
		e.events.pop()
		e.now = ev.t
		fn, cb := ev.fn, ev.cb
		e.recycle(ev) // before firing: the callback may reschedule and reuse it
		if fn != nil {
			fn()
		} else if cb != nil {
			cb.Fire()
		}
	}
	if e.err == nil && e.now < until {
		e.now = until
	}
	return e.err
}

// RunAll processes events until no events remain (all processes have
// finished or parked indefinitely). Returns the first process error.
//
//tango:hotpath
func (e *Engine) RunAll() error {
	for len(e.events) > 0 && e.err == nil {
		ev := e.events.pop()
		e.now = ev.t
		fn, cb := ev.fn, ev.cb
		e.recycle(ev)
		if fn != nil {
			fn()
		} else if cb != nil {
			cb.Fire()
		}
	}
	return e.err
}

// Pending reports the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}
