package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event scheduler over a virtual clock measured in
// seconds. The zero value is not usable; construct with NewEngine.
//
// Engine methods must only be called from the goroutine that owns the
// engine (the one calling Run) or from within a simulated process or event
// callback; the engine is not safe for concurrent use from unrelated
// goroutines. Independent engines are fully isolated and may run on
// separate goroutines in parallel (this is how multi-node weak scaling is
// simulated).
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
	procs  int // live (not yet finished) processes
	err    error
	trace  func(t float64, msg string)
}

// NewEngine returns an engine with the clock at t=0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// SetTrace installs a trace hook invoked for engine-level events. A nil
// hook disables tracing.
func (e *Engine) SetTrace(fn func(t float64, msg string)) { e.trace = fn }

func (e *Engine) tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf(format, args...))
	}
}

// Err returns the first process failure observed by the engine, if any.
func (e *Engine) Err() error { return e.err }

// At schedules fn to run at virtual time t. Times in the past are clamped
// to the present (the event still fires, after already-scheduled events at
// the current instant). Returns a handle that can cancel the event.
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	if math.IsNaN(t) {
		panic("sim: event scheduled at NaN time")
	}
	ev := &event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Stop cancels the event if it has not fired. It reports whether the event
// was still pending. Cancellation is implemented by neutering the callback,
// so the heap entry drains harmlessly.
func (t *Timer) Stop() bool {
	if t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// When returns the virtual time at which the timer fires (or fired).
func (t *Timer) When() float64 { return t.ev.t }

// Run processes events in order until the clock would pass `until`, then
// sets the clock to `until` and returns. Events scheduled exactly at
// `until` do fire. Returns the first process error, if any.
func (e *Engine) Run(until float64) error {
	for len(e.events) > 0 && e.err == nil {
		ev := e.events[0]
		if ev.t > until {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.t
		if ev.fn != nil {
			ev.fn()
		}
	}
	if e.err == nil && e.now < until {
		e.now = until
	}
	return e.err
}

// RunAll processes events until no events remain (all processes have
// finished or parked indefinitely). Returns the first process error.
func (e *Engine) RunAll() error {
	for len(e.events) > 0 && e.err == nil {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		if ev.fn != nil {
			ev.fn()
		}
	}
	return e.err
}

// Pending reports the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}
