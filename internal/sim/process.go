package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated process: a goroutine that runs user code and yields
// control back to the engine whenever it blocks on virtual time (Sleep) or
// on an external wake-up (Suspend). A Proc must only call its blocking
// methods from its own body function.
type Proc struct {
	eng  *Engine
	name string

	wake chan struct{} // engine -> proc: run until next yield
	yld  chan struct{} // proc -> engine: parked or finished

	resumeFn func() // cached e.resume(p) closure; one alloc per process, not per Sleep

	done      bool
	suspended bool
	err       error
}

// Spawn starts fn as a new simulated process. The process begins executing
// at the current virtual time, after events already scheduled at this
// instant. A panic inside fn is captured and surfaces via Engine.Err.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with the first execution scheduled at virtual time t
// instead of now (past times clamp to the present, like At). It lets a
// scheduler arm a process body directly at its start time with a single
// event, where an At(t, ...) trampoline that Spawns on firing would
// insert two.
func (e *Engine) SpawnAt(t float64, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		wake: make(chan struct{}),
		yld:  make(chan struct{}),
	}
	p.resumeFn = func() { e.resume(p) }
	e.procs++
	e.tracef("spawn %q", name)
	go func() {
		<-p.wake // wait for first resume
		defer func() {
			if r := recover(); r != nil {
				p.err = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			p.done = true
			p.eng.procs--
			p.yld <- struct{}{}
		}()
		fn(p)
	}()
	e.At(t, p.resumeFn)
	return p
}

// resume transfers control to p and blocks until p yields or finishes.
// It must be called from the engine context (an event callback).
func (e *Engine) resume(p *Proc) {
	if p.done {
		return
	}
	p.wake <- struct{}{}
	<-p.yld
	if p.err != nil {
		e.fail(p.err)
	}
}

// yield transfers control back to the engine and blocks until resumed.
func (p *Proc) yield() {
	p.yld <- struct{}{}
	<-p.wake
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep blocks the process for d seconds of virtual time. Negative
// durations are treated as zero (the process still yields, letting other
// events at the same instant run first).
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.At(e.now+d, p.resumeFn)
	p.yield()
}

// Suspend parks the process until some other process or event callback
// calls Engine.Wake (or p.Wake) on it. Suspend returns at the virtual time
// of the wake-up.
func (p *Proc) Suspend() {
	p.suspended = true
	p.yield()
}

// Wake schedules a suspended process to resume at the current virtual
// time. Waking a process that is not suspended (or already woken at this
// instant) is a no-op; this makes completion notifications idempotent.
func (e *Engine) Wake(p *Proc) {
	if p == nil || p.done || !p.suspended {
		return
	}
	p.suspended = false
	e.At(e.now, p.resumeFn)
}

// Wake is a convenience for Engine.Wake from another process context.
func (p *Proc) Wake(other *Proc) { p.eng.Wake(other) }

// WakeAt schedules a suspended process to resume at virtual time t
// (clamped to the present, like At). It is Wake with the resume placed
// in the future: the caller commits the wake-up now, with the resume
// event taking the queue slot the commit point owns, instead of firing a
// trampoline event at t that wakes the process with a second event. A
// process already woken (or not suspended) is left alone. Between the
// call and t the process no longer counts as suspended, so intervening
// Wake calls no-op rather than pull the resume earlier.
func (e *Engine) WakeAt(t float64, p *Proc) {
	if p == nil || p.done || !p.suspended {
		return
	}
	p.suspended = false
	e.At(t, p.resumeFn)
}
