// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It is the substrate on which the storage devices,
// cgroup controllers, interfering workloads, and data analytics of this
// repository run in virtual time.
//
// The engine follows the SimPy coroutine model: each simulated process is a
// goroutine that is parked and resumed by a single scheduler goroutine, so
// at any instant exactly one goroutine (either the engine or one process)
// is running. All simulation state is therefore serialized without locks,
// and runs are bit-deterministic for a given seed and spawn order.
package sim

import "container/heap"

// event is a scheduled callback. Events fire in (time, seq) order; seq is a
// monotone counter that breaks ties deterministically in FIFO order.
type event struct {
	t   float64
	seq int64
	fn  func()
}

// eventHeap is a min-heap of events ordered by time then sequence.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventHeap)(nil)
