// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It is the substrate on which the storage devices,
// cgroup controllers, interfering workloads, and data analytics of this
// repository run in virtual time.
//
// The engine follows the SimPy coroutine model: each simulated process is a
// goroutine that is parked and resumed by a single scheduler goroutine, so
// at any instant exactly one goroutine (either the engine or one process)
// is running. All simulation state is therefore serialized without locks,
// and runs are bit-deterministic for a given seed and spawn order.
package sim

// event is a scheduled callback. Events fire in (time, seq) order; seq is a
// monotone counter that breaks ties deterministically in FIFO order. Event
// structs are recycled through the engine's freelist once they drain from
// the heap; Timer handles guard against reuse via the seq field.
type event struct {
	t   float64
	seq int64
	fn  func()
	cb  Callback // used instead of fn by AtCall; exactly one of the two is set
}

// before reports whether a fires strictly before b.
func before(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventHeap is a min-heap of events ordered by time then sequence. It is a
// concrete implementation — sift operations are called directly from the
// engine's hot path, with no container/heap interface indirection.
type eventHeap []*event

// push appends ev and restores the heap property.
func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old) - 1
	ev := old[0]
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return ev
}

// siftUp bubbles the element at i toward the root, moving parents down into
// the hole rather than swapping pairwise.
func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !before(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// siftDown pushes the element at i toward the leaves.
func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && before(h[r], h[child]) {
			child = r
		}
		if !before(h[child], ev) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = ev
}
