package sim

import "fmt"

// WaitGroup coordinates a process with a set of concurrent simulated
// tasks, mirroring sync.WaitGroup but in virtual time: Add registers
// tasks, Done completes one, and Wait parks the calling process until the
// count drains. Unlike sync.WaitGroup it is engine-serialized, so no
// atomicity is needed — but only one process may Wait at a time.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiter  *Proc
	waiting bool
}

// NewWaitGroup creates a WaitGroup bound to an engine.
func NewWaitGroup(eng *Engine) *WaitGroup {
	return &WaitGroup{eng: eng}
}

// Add increases the outstanding-task count by n (n may be negative, like
// sync.WaitGroup; the count must not go below zero).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		wg.release()
	}
}

// Done completes one task.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count returns the outstanding-task count.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait parks p until the count reaches zero. It returns immediately if
// the count is already zero. Only one process may wait at a time.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	if wg.waiting {
		panic(fmt.Sprintf("sim: WaitGroup already has a waiter (%q)", wg.waiter.Name()))
	}
	wg.waiter = p
	wg.waiting = true
	for wg.waiting {
		p.Suspend()
	}
}

func (wg *WaitGroup) release() {
	if !wg.waiting {
		return
	}
	wg.waiting = false
	wg.eng.Wake(wg.waiter)
	wg.waiter = nil
}

// Go spawns fn as a new process tracked by the WaitGroup: Add(1) before
// the spawn, Done when fn returns.
func (wg *WaitGroup) Go(name string, fn func(p *Proc)) {
	wg.Add(1)
	wg.eng.Spawn(name, func(p *Proc) {
		defer wg.Done()
		fn(p)
	})
}
