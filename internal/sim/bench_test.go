package sim

import "testing"

// BenchmarkScheduleDispatch measures the raw event loop: schedule-and-run
// batches of future events through the heap, the dominant cost of every
// simulated second. Reported per event.
func BenchmarkScheduleDispatch(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fired := 0
	fn := func() { fired++ }
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		base := e.Now()
		for i := 0; i < batch; i++ {
			// Interleaved offsets exercise sift-up and sift-down paths.
			e.At(base+float64((i*7)%batch)+1, fn)
		}
		if err := e.Run(base + batch + 1); err != nil {
			b.Fatal(err)
		}
	}
	if fired == 0 {
		b.Fatal("no events fired")
	}
}

// BenchmarkTimerStop measures schedule-then-cancel, the pattern the
// device's completion timer follows on every reshape.
func BenchmarkTimerStop(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	const batch = 256
	for n := 0; n < b.N; n += batch {
		base := e.Now()
		for i := 0; i < batch; i++ {
			t := e.At(base+float64(i)+1, fn)
			t.Stop()
		}
		if err := e.Run(base + batch + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcSleepLoop measures the process round trip: one goroutine
// sleeping in a tight virtual-time loop (two channel handoffs plus one
// event per iteration).
func BenchmarkProcSleepLoop(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := b.N
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(1)
		}
	})
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}
