package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(2.0, func() { got = append(got, 2) })
	e.At(1.0, func() { got = append(got, 1) })
	e.At(3.0, func() { got = append(got, 3) })
	e.At(1.0, func() { got = append(got, 10) }) // same time: FIFO
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(5.0, func() { fired = true })
	if err := e.Run(3.0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event at t=5 fired during Run(3)")
	}
	if e.Now() != 3.0 {
		t.Fatalf("Now() = %v, want 3.0", e.Now())
	}
	if err := e.Run(5.0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event at t=5 did not fire during Run(5)")
	}
}

func TestEventAtBoundaryFires(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(3.0, func() { fired = true })
	if err := e.Run(3.0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event exactly at until-time must fire")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(1.0, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Run(10)
	var at float64 = -1
	e.At(5.0, func() { at = e.Now() })
	e.RunAll()
	if at != 10.0 {
		t.Fatalf("past event fired at %v, want clamped to 10", at)
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1.5)
			times = append(times, p.Now())
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3.0, 4.5}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i, d := range []float64{3, 1, 2} {
			name := string(rune('A' + i))
			dd := d
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(dd)
					log = append(log, name)
				}
			})
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
	// B wakes at 1,2,3; C at 2,4,6; A at 3,6,9. At t=2, C's event was
	// scheduled earlier (t=0) than B's (t=1), so FIFO puts C first.
	want := []string{"B", "C", "B", "A", "B", "C", "A", "C", "A"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("unexpected order: %v, want %v", first, want)
		}
	}
}

func TestSuspendWake(t *testing.T) {
	e := NewEngine()
	var wokenAt float64 = -1
	sleeper := e.Spawn("sleeper", func(p *Proc) {
		p.Suspend()
		wokenAt = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(7)
		p.Wake(sleeper)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 7 {
		t.Fatalf("woken at %v, want 7", wokenAt)
	}
}

func TestDoubleWakeIsIdempotent(t *testing.T) {
	e := NewEngine()
	resumes := 0
	sleeper := e.Spawn("sleeper", func(p *Proc) {
		p.Suspend()
		resumes++
		p.Sleep(100) // stay alive so a stray second resume would be visible
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		p.Wake(sleeper)
		p.Wake(sleeper) // duplicate at the same instant
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if resumes != 1 {
		t.Fatalf("resumes = %d, want 1", resumes)
	}
}

func TestWakeFinishedProcIsNoop(t *testing.T) {
	e := NewEngine()
	done := e.Spawn("quick", func(p *Proc) {})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		p.Wake(done) // must not hang or panic
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	err := e.RunAll()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestManyProcsStressDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var finish []float64
		for i := 0; i < 100; i++ {
			n := 1 + rng.Intn(5)
			d := 0.1 + rng.Float64()
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < n; j++ {
					p.Sleep(d)
				}
				finish = append(finish, p.Now())
			})
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	a := run(42)
	b := run(42)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic finish times at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if !sort.Float64sAreSorted(append([]float64(nil), a...)) {
		// finish times are appended in completion order, so they must be sorted
		t.Fatal("finish order not monotone in time")
	}
}

func TestAfterHelper(t *testing.T) {
	e := NewEngine()
	e.Run(2)
	var at float64
	e.After(3, func() { at = e.Now() })
	e.RunAll()
	if at != 5 {
		t.Fatalf("After fired at %v, want 5", at)
	}
}

func TestNestedSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childAt float64
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(2)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(3)
			childAt = c.Now()
		})
		p.Sleep(10)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if childAt != 5 {
		t.Fatalf("child finished at %v, want 5", childAt)
	}
}

func TestTraceHook(t *testing.T) {
	e := NewEngine()
	var lines []string
	e.SetTrace(func(tm float64, msg string) { lines = append(lines, msg) })
	e.Spawn("worker", func(p *Proc) { p.Sleep(1) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no trace lines emitted")
	}
	found := false
	for _, l := range lines {
		if l == `spawn "worker"` {
			found = true
		}
	}
	if !found {
		t.Fatalf("spawn trace missing: %v", lines)
	}
	e.SetTrace(nil) // disabling must be safe
	e.Spawn("w2", func(p *Proc) {})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine()
	tm := e.At(7.5, func() {})
	if tm.When() != 7.5 {
		t.Fatalf("When = %v", tm.When())
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	// Measures raw event scheduling/dispatch cost.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 10000 {
				e.After(1, tick)
			}
		}
		e.After(1, tick)
		if err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessSwitch(b *testing.B) {
	// Cost of a full park/resume round trip per simulated process step.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < 1000; j++ {
				p.Sleep(1)
			}
		})
		if err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}
