// Package tensor provides dense N-dimensional float64 tensors. The paper
// treats simulation analysis output "as a tensor (or a uniform grid)"
// (§III-B2); these tensors are the objects that the refactorization
// pipeline decomposes and recomposes.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major N-d array of float64.
type Tensor struct {
	dims    []int
	strides []int
	data    []float64
}

// New allocates a zero tensor with the given dimensions. It panics on
// empty or non-positive dimensions (shape errors are programmer errors).
func New(dims ...int) *Tensor {
	if len(dims) == 0 {
		panic("tensor: no dimensions")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d", d))
		}
		n *= d
	}
	t := &Tensor{
		dims: append([]int(nil), dims...),
		data: make([]float64, n),
	}
	t.strides = strides(t.dims)
	return t
}

// FromData wraps existing data (not copied) with the given dims. It panics
// if len(data) does not match the shape.
func FromData(data []float64, dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d", d))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), dims, n))
	}
	t := &Tensor{dims: append([]int(nil), dims...), data: data}
	t.strides = strides(t.dims)
	return t
}

func strides(dims []int) []int {
	s := make([]int, len(dims))
	st := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = st
		st *= dims[i]
	}
	return s
}

// Dims returns the tensor's dimensions (do not mutate).
func (t *Tensor) Dims() []int { return t.dims }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.dims) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order (mutable).
func (t *Tensor) Data() []float64 { return t.data }

// Offset converts a multi-index to a flat offset.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.dims) {
		panic(fmt.Sprintf("tensor: index rank %d vs tensor rank %d", len(idx), len(t.dims)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.dims[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for dims %v", idx, t.dims))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.Offset(idx...)] }

// Set stores v at the multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.Offset(idx...)] = v }

// Unravel converts a flat offset to a multi-index (allocates).
func (t *Tensor) Unravel(off int) []int {
	idx := make([]int, len(t.dims))
	for i, s := range t.strides {
		idx[i] = off / s
		off %= s
	}
	return idx
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dims...)
	copy(c.data, t.data)
	return c
}

// SameShape reports whether two tensors have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.dims) != len(o.dims) {
		return false
	}
	for i := range t.dims {
		if t.dims[i] != o.dims[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Add adds o element-wise in place. Panics on shape mismatch.
func (t *Tensor) Add(o *Tensor) {
	t.requireSameShape(o, "Add")
	for i, v := range o.data {
		t.data[i] += v
	}
}

// Sub subtracts o element-wise in place. Panics on shape mismatch.
func (t *Tensor) Sub(o *Tensor) {
	t.requireSameShape(o, "Sub")
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

func (t *Tensor) requireSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.dims, o.dims))
	}
}

// MinMax returns the minimum and maximum element values. For an empty
// tensor (impossible by construction) it would return (+Inf, -Inf).
func (t *Tensor) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range t.data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Range returns max-min.
func (t *Tensor) Range() float64 {
	min, max := t.MinMax()
	return max - min
}

// Equal reports exact element-wise equality (and shape equality).
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AbsDiffMax returns the maximum absolute element-wise difference.
// Panics on shape mismatch.
func (t *Tensor) AbsDiffMax(o *Tensor) float64 {
	t.requireSameShape(o, "AbsDiffMax")
	var m float64
	for i := range t.data {
		d := math.Abs(t.data[i] - o.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Bytes returns the in-memory size of the payload in bytes (8 per
// element), used for staging and I/O sizing.
func (t *Tensor) Bytes() float64 { return float64(len(t.data) * 8) }

// String summarizes the tensor (shape and value range) for debugging.
func (t *Tensor) String() string {
	min, max := t.MinMax()
	return fmt.Sprintf("Tensor%v[%d elems, %.4g..%.4g]", t.dims, len(t.data), min, max)
}
