package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	a := New(3, 4, 5)
	if a.Rank() != 3 || a.Len() != 60 {
		t.Fatalf("rank %d len %d", a.Rank(), a.Len())
	}
	d := a.Dims()
	if d[0] != 3 || d[1] != 4 || d[2] != 5 {
		t.Fatalf("dims %v", d)
	}
	if a.Bytes() != 480 {
		t.Fatalf("bytes %v", a.Bytes())
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][]int{{}, {0}, {-1, 3}, {3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", dims)
				}
			}()
			New(dims...)
		}()
	}
}

func TestFromDataChecksLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromData([]float64{1, 2, 3}, 2, 2)
}

func TestRowMajorLayout(t *testing.T) {
	a := New(2, 3)
	a.Set(42, 1, 2)
	if a.Data()[5] != 42 {
		t.Fatalf("row-major offset wrong: %v", a.Data())
	}
	if a.At(1, 2) != 42 {
		t.Fatalf("At(1,2) = %v", a.At(1, 2))
	}
	if a.Offset(1, 2) != 5 {
		t.Fatalf("Offset = %d", a.Offset(1, 2))
	}
}

func TestOffsetUnravelRoundTrip(t *testing.T) {
	a := New(3, 5, 7)
	for off := 0; off < a.Len(); off++ {
		idx := a.Unravel(off)
		if got := a.Offset(idx...); got != off {
			t.Fatalf("round trip %d -> %v -> %d", off, idx, got)
		}
	}
}

func TestIndexBoundsPanic(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds")
		}
	}()
	a.At(2, 0)
}

func TestRankMismatchPanic(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rank mismatch")
		}
	}()
	a.At(1)
}

func TestCloneIsDeep(t *testing.T) {
	a := New(2, 2)
	a.Set(1, 0, 0)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
	if !a.SameShape(b) {
		t.Fatal("clone shape differs")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 2, 2)
	b := FromData([]float64{10, 20, 30, 40}, 2, 2)
	a.Add(b)
	if a.At(1, 1) != 44 {
		t.Fatalf("add: %v", a.Data())
	}
	a.Sub(b)
	if a.At(0, 0) != 1 {
		t.Fatalf("sub: %v", a.Data())
	}
	a.Scale(2)
	if a.At(0, 1) != 4 {
		t.Fatalf("scale: %v", a.Data())
	}
	a.Fill(7)
	if a.At(1, 0) != 7 {
		t.Fatalf("fill: %v", a.Data())
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(4))
}

func TestMinMaxRange(t *testing.T) {
	a := FromData([]float64{3, -1, 4, 1.5}, 4)
	min, max := a.MinMax()
	if min != -1 || max != 4 {
		t.Fatalf("minmax = %v %v", min, max)
	}
	if a.Range() != 5 {
		t.Fatalf("range = %v", a.Range())
	}
}

func TestEqualAndAbsDiffMax(t *testing.T) {
	a := FromData([]float64{1, 2}, 2)
	b := FromData([]float64{1, 2.5}, 2)
	if a.Equal(b) {
		t.Fatal("unequal tensors compare equal")
	}
	if a.Equal(New(3)) {
		t.Fatal("different shapes compare equal")
	}
	if got := a.AbsDiffMax(b); got != 0.5 {
		t.Fatalf("absdiffmax = %v", got)
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := FromData(append([]float64(nil), vals...), len(vals))
		orig := a.Clone()
		b := New(len(vals))
		rng := rand.New(rand.NewSource(1))
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		a.Add(b)
		a.Sub(b)
		return a.AbsDiffMax(orig) < 1e-9*(1+orig.Range())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 2, 2)
	s := a.String()
	if s == "" {
		t.Fatal("empty summary")
	}
}
