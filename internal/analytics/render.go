package analytics

import (
	"fmt"
	"math"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// Render performs the GenASiS analysis: a simple 2D rendering of the
// velocity magnitude — normalize to [0,1] with a fixed gamma, which is
// what a grayscale colormap application does before display.
func Render(t *tensor.Tensor) []float64 {
	dims := t.Dims()
	if len(dims) != 2 {
		panic(fmt.Sprintf("analytics: Render expects 2D, got %v", dims))
	}
	min, max := t.MinMax()
	scale := max - min
	if scale == 0 {
		scale = 1
	}
	out := make([]float64, t.Len())
	for i, v := range t.Data() {
		x := (v - min) / scale
		out[i] = math.Sqrt(x) // gamma 0.5 brightens the dim exterior
	}
	return out
}

// RenderQuality compares the rendering of a reconstruction against the
// full-data rendering with the two measures the paper reports for
// GenASiS: SSIM of the images and Dice's coefficient of the bright-region
// masks (here, pixels above 60% intensity — the shock interior).
type RenderQuality struct {
	SSIM float64
	Dice float64
}

// CompareRenders renders both fields and scores the reconstruction.
func CompareRenders(ref, rec *tensor.Tensor) RenderQuality {
	dims := ref.Dims()
	if len(dims) != 2 || !ref.SameShape(rec) {
		panic("analytics: CompareRenders shape mismatch")
	}
	ri := Render(ref)
	xi := Render(rec)
	const brightCut = 0.6
	return RenderQuality{
		SSIM: errmetric.SSIM(ri, xi, dims[0], dims[1]),
		Dice: errmetric.Dice(errmetric.ThresholdMask(ri, brightCut), errmetric.ThresholdMask(xi, brightCut)),
	}
}

// RelErr converts the quality pair into a single relative-error style
// number in [0,1]: 1 − mean(SSIM, Dice), used when the paper plots
// "relative error of the analysis outcome" for GenASiS next to the other
// applications.
func (q RenderQuality) RelErr() float64 {
	m := (q.SSIM + q.Dice) / 2
	if m > 1 {
		m = 1
	}
	if m < 0 {
		m = 0
	}
	return 1 - m
}
