package analytics

import (
	"math"
	"testing"

	"tango/internal/refactor"
	"tango/internal/synth"
	"tango/internal/tensor"
)

func TestDetectComponentsCentroid(t *testing.T) {
	f := tensor.New(64, 64)
	// One crisp square blob centered at (20, 30).
	for r := 18; r <= 22; r++ {
		for c := 28; c <= 32; c++ {
			f.Set(50, r, c)
		}
	}
	comps := DetectComponents(f, BlobOptions{SigmaK: 3, MinArea: 4})
	if len(comps) != 1 {
		t.Fatalf("components = %d", len(comps))
	}
	if math.Abs(comps[0].Row-20) > 1e-9 || math.Abs(comps[0].Col-30) > 1e-9 {
		t.Fatalf("centroid = (%v, %v)", comps[0].Row, comps[0].Col)
	}
	if comps[0].Area != 25 || comps[0].Peak != 50 {
		t.Fatalf("component = %+v", comps[0])
	}
}

func TestDetectComponentsMatchesDetectBlobs(t *testing.T) {
	f, _ := synth.XGC(synth.DefaultXGC(128, 5))
	o := DefaultBlobOptions()
	comps := DetectComponents(f, o)
	stats := DetectBlobs(f, o)
	if len(comps) != stats.Count {
		t.Fatalf("components %d vs blobs %d", len(comps), stats.Count)
	}
	var area float64
	for _, c := range comps {
		area += c.Area
	}
	if area != stats.TotalArea {
		t.Fatalf("area %v vs %v", area, stats.TotalArea)
	}
}

func TestTrackBlobsFollowsMovingBlob(t *testing.T) {
	// One blob moving 2 cells/frame along the column axis.
	frames := make([]*tensor.Tensor, 6)
	for s := range frames {
		f := tensor.New(64, 64)
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				dr, dc := float64(r)-30, float64(c)-(10+2*float64(s))
				f.Set(10*math.Exp(-(dr*dr+dc*dc)/8), r, c)
			}
		}
		frames[s] = f
	}
	tracks := TrackBlobs(frames, BlobOptions{SigmaK: 3, MinArea: 4}, 5)
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	tr := tracks[0]
	if tr.Len() != 6 || tr.Start != 0 {
		t.Fatalf("track = %+v", tr)
	}
	if sp := tr.MeanSpeed(); math.Abs(sp-2) > 0.2 {
		t.Fatalf("speed = %v, want ~2", sp)
	}
}

func TestTrackBlobsGateBreaksTrack(t *testing.T) {
	// A blob that teleports farther than the gate starts a new track.
	mk := func(col float64) *tensor.Tensor {
		f := tensor.New(64, 64)
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				dr, dc := float64(r)-30, float64(c)-col
				f.Set(10*math.Exp(-(dr*dr+dc*dc)/8), r, c)
			}
		}
		return f
	}
	frames := []*tensor.Tensor{mk(10), mk(12), mk(50)}
	tracks := TrackBlobs(frames, BlobOptions{SigmaK: 3, MinArea: 4}, 5)
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2 (gate break)", len(tracks))
	}
}

func TestXGCSequenceTracking(t *testing.T) {
	opts := synth.DefaultXGC(192, 3)
	opts.Blobs = 6
	frames, truth := synth.XGCSequence(opts, 5, 1.5)
	if len(frames) != 5 || len(truth) != 5 {
		t.Fatalf("frames = %d", len(frames))
	}
	tracks := TrackBlobs(frames, DefaultBlobOptions(), 8)
	st := SummarizeTracks(tracks, 3)
	if st.Tracks == 0 {
		t.Fatal("no persistent tracks found")
	}
	// Injected blobs move 1.5 cells/frame; tracked speed should be in
	// that ballpark.
	if st.MeanSpeed < 0.5 || st.MeanSpeed > 3 {
		t.Fatalf("tracked speed = %v, want ~1.5", st.MeanSpeed)
	}
}

func TestTrackingSurvivesReduction(t *testing.T) {
	// The Motivation-3 story for dynamics: tracking statistics on
	// bound-controlled reconstructions stay close to full-data tracking.
	opts := synth.DefaultXGC(192, 7)
	opts.Blobs = 6
	frames, _ := synth.XGCSequence(opts, 4, 1.5)

	var reduced []*tensor.Tensor
	for _, f := range frames {
		h, err := refactor.Decompose(f, refactor.Options{Levels: 3, Bounds: []float64{0.05}})
		if err != nil {
			t.Fatal(err)
		}
		cur, err := h.CursorForBound(0.05)
		if err != nil {
			t.Fatal(err)
		}
		reduced = append(reduced, h.Recompose(cur))
	}
	o := DefaultBlobOptions()
	ref := SummarizeTracks(TrackBlobs(frames, o, 8), 2)
	red := SummarizeTracks(TrackBlobs(reduced, o, 8), 2)
	if e := red.RelErrVs(ref); e > 0.35 {
		t.Fatalf("tracking outcome error at bound 0.05 = %v", e)
	}
}

func TestTrackStatsRelErr(t *testing.T) {
	a := TrackStats{Tracks: 10, MeanLength: 5, MeanSpeed: 2}
	if a.RelErrVs(a) != 0 {
		t.Fatal("self relerr nonzero")
	}
	b := TrackStats{Tracks: 5, MeanLength: 5, MeanSpeed: 2}
	if e := b.RelErrVs(a); math.Abs(e-0.5/3) > 1e-12 {
		t.Fatalf("relerr = %v", e)
	}
	zero := TrackStats{}
	if e := zero.RelErrVs(a); e <= 0 || math.IsInf(e, 0) {
		t.Fatalf("zero stats relerr = %v", e)
	}
}
