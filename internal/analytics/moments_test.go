package analytics

import (
	"math"
	"math/rand"
	"testing"

	"tango/internal/refactor"
	"tango/internal/synth"
	"tango/internal/tensor"
)

func TestComputeMomentsKnownValues(t *testing.T) {
	// Constant field: variance 0, higher moments defined as 0.
	c := tensor.New(8, 8)
	c.Fill(5)
	m := ComputeMoments(c)
	if m.Mean != 5 || m.Variance != 0 || m.Skewness != 0 || m.Kurtosis != 0 {
		t.Fatalf("constant moments = %+v", m)
	}

	// Two-point symmetric distribution {-1, +1}: mean 0, var 1,
	// skew 0, excess kurtosis -2.
	d := tensor.New(2)
	d.Data()[0], d.Data()[1] = -1, 1
	m = ComputeMoments(d)
	if m.Mean != 0 || m.Variance != 1 || m.Skewness != 0 || math.Abs(m.Kurtosis+2) > 1e-12 {
		t.Fatalf("two-point moments = %+v", m)
	}
}

func TestMomentsGaussianField(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := tensor.New(256, 256)
	for i := range g.Data() {
		g.Data()[i] = 3 + 2*rng.NormFloat64()
	}
	m := ComputeMoments(g)
	if math.Abs(m.Mean-3) > 0.05 {
		t.Fatalf("mean = %v", m.Mean)
	}
	if math.Abs(m.Variance-4) > 0.15 {
		t.Fatalf("variance = %v", m.Variance)
	}
	if math.Abs(m.Skewness) > 0.05 || math.Abs(m.Kurtosis) > 0.1 {
		t.Fatalf("shape moments = %+v", m)
	}
}

func TestMomentsRelErr(t *testing.T) {
	f := synth.GenASiS(129, 2)
	ref := ComputeMoments(f)
	if got := ref.RelErrVs(ref); got != 0 {
		t.Fatalf("self relerr = %v", got)
	}
	// Statistical analysis is robust to decimation (Motivation 3): the
	// base representation's moments stay close.
	h, err := refactor.Decompose(f, refactor.Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The GenASiS shock front is sharp, so higher moments shift some at
	// 64x reduction — but the error stays well below order unity.
	base := ComputeMoments(h.Recompose(0))
	if e := base.RelErrVs(ref); e > 0.5 {
		t.Fatalf("base-only moments error = %v, want modest", e)
	}
	// A partial augmentation must not be worse than base-only.
	half := ComputeMoments(h.Recompose(h.TotalEntries() / 2))
	if e, eb := half.RelErrVs(ref), base.RelErrVs(ref); e > eb+1e-9 {
		t.Fatalf("half-augmented error %v exceeds base-only %v", e, eb)
	}
	full := ComputeMoments(h.Recompose(h.TotalEntries()))
	if e := full.RelErrVs(ref); e > 1e-9 {
		t.Fatalf("full moments error = %v", e)
	}
}

func TestMomentsZeroVarianceReference(t *testing.T) {
	c := tensor.New(4)
	c.Fill(2)
	ref := ComputeMoments(c)
	other := ComputeMoments(tensor.FromData([]float64{2, 2, 2, 3}, 4))
	if e := other.RelErrVs(ref); math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("zero-variance relerr = %v", e)
	}
}
