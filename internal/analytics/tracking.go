package analytics

import (
	"fmt"
	"math"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// Component is one detected blob with its geometry — the per-blob detail
// that temporal tracking needs (DetectBlobs only aggregates).
type Component struct {
	Row, Col float64 // centroid (cells)
	Area     float64
	Peak     float64
}

// DetectComponents runs the same threshold + 4-connected flood fill as
// DetectBlobs but returns each surviving component with its centroid.
func DetectComponents(t *tensor.Tensor, o BlobOptions) []Component {
	dims := t.Dims()
	if len(dims) != 2 {
		panic(fmt.Sprintf("analytics: DetectComponents expects 2D, got %v", dims))
	}
	rows, cols := dims[0], dims[1]
	data := t.Data()

	var mean float64
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	var variance float64
	for _, v := range data {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(data))
	if variance == 0 {
		return nil
	}
	thresh := mean + o.SigmaK*math.Sqrt(variance)

	visited := make([]bool, len(data))
	var out []Component
	var stack []int
	for start := range data {
		if visited[start] || data[start] < thresh {
			continue
		}
		var area, sumR, sumC, peak float64
		peak = math.Inf(-1)
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r, c := idx/cols, idx%cols
			area++
			sumR += float64(r)
			sumC += float64(c)
			if data[idx] > peak {
				peak = data[idx]
			}
			for _, nb := range [4][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				nr, nc := nb[0], nb[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				ni := nr*cols + nc
				if !visited[ni] && data[ni] >= thresh {
					visited[ni] = true
					stack = append(stack, ni)
				}
			}
		}
		if int(area) >= o.MinArea {
			out = append(out, Component{Row: sumR / area, Col: sumC / area, Area: area, Peak: peak})
		}
	}
	return out
}

// Track is one blob followed across frames.
type Track struct {
	Start     int         // first frame index
	Positions []Component // one per consecutive frame
}

// Len returns the track length in frames.
func (t Track) Len() int { return len(t.Positions) }

// MeanSpeed returns the mean per-frame centroid displacement (cells).
func (t Track) MeanSpeed() float64 {
	if len(t.Positions) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(t.Positions); i++ {
		dr := t.Positions[i].Row - t.Positions[i-1].Row
		dc := t.Positions[i].Col - t.Positions[i-1].Col
		sum += math.Hypot(dr, dc)
	}
	return sum / float64(len(t.Positions)-1)
}

// TrackBlobs follows detected blobs across a frame sequence by greedy
// nearest-centroid matching (gated by maxJump cells per frame) — the
// blob-filament transport analysis of the paper's XGC citations.
func TrackBlobs(frames []*tensor.Tensor, o BlobOptions, maxJump float64) []Track {
	var tracks []Track
	var prev []Component
	prevTrack := map[int]int{}

	for f, frame := range frames {
		cur := DetectComponents(frame, o)
		curTrack := map[int]int{}
		used := make([]bool, len(cur))
		// Greedy match previous components to nearest current ones.
		for pi, pc := range prev {
			best, bestD := -1, maxJump
			for ci, cc := range cur {
				if used[ci] {
					continue
				}
				d := math.Hypot(cc.Row-pc.Row, cc.Col-pc.Col)
				if d <= bestD {
					best, bestD = ci, d
				}
			}
			if best >= 0 {
				used[best] = true
				ti := prevTrack[pi]
				tracks[ti].Positions = append(tracks[ti].Positions, cur[best])
				curTrack[best] = ti
			}
		}
		// Unmatched current components start new tracks.
		for ci, cc := range cur {
			if used[ci] {
				continue
			}
			tracks = append(tracks, Track{Start: f, Positions: []Component{cc}})
			curTrack[ci] = len(tracks) - 1
		}
		prev, prevTrack = cur, curTrack
	}
	return tracks
}

// TrackStats summarizes a track set for comparison between full and
// reduced data.
type TrackStats struct {
	Tracks     int
	MeanLength float64 // frames
	MeanSpeed  float64 // cells/frame, over tracks with >= 2 frames
}

// SummarizeTracks aggregates tracks at least minLen frames long.
func SummarizeTracks(tracks []Track, minLen int) TrackStats {
	var st TrackStats
	var speedN int
	for _, t := range tracks {
		if t.Len() < minLen {
			continue
		}
		st.Tracks++
		st.MeanLength += float64(t.Len())
		if t.Len() >= 2 {
			st.MeanSpeed += t.MeanSpeed()
			speedN++
		}
	}
	if st.Tracks > 0 {
		st.MeanLength /= float64(st.Tracks)
	}
	if speedN > 0 {
		st.MeanSpeed /= float64(speedN)
	}
	return st
}

// RelErrVs returns the mean relative error of track count, length, and
// speed against a reference.
func (s TrackStats) RelErrVs(ref TrackStats) float64 {
	errs := []float64{
		errmetric.RelErr(float64(ref.Tracks), float64(s.Tracks)),
		errmetric.RelErr(ref.MeanLength, s.MeanLength),
		errmetric.RelErr(ref.MeanSpeed, s.MeanSpeed),
	}
	var sum float64
	for _, e := range errs {
		if math.IsInf(e, 1) {
			e = 1
		}
		sum += e
	}
	return sum / float64(len(errs))
}
