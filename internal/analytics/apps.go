package analytics

import (
	"tango/internal/synth"
	"tango/internal/tensor"
)

// App bundles one of the paper's three applications: its synthetic data
// generator and its outcome-error measure (relative error of the analysis
// outcome, as plotted in Figs 2 and 10).
type App struct {
	Name string
	// Generate produces the n×n analysis field for a seed.
	Generate func(n int, seed int64) *tensor.Tensor
	// OutcomeErr runs the analysis on both fields and returns the
	// relative error of the reconstruction's outcome vs the reference's.
	OutcomeErr func(ref, rec *tensor.Tensor) float64
}

// XGCApp is blob detection over the dpot-like potential field.
func XGCApp() App {
	return App{
		Name: "XGC",
		Generate: func(n int, seed int64) *tensor.Tensor {
			t, _ := synth.XGC(synth.DefaultXGC(n, seed))
			return t
		},
		OutcomeErr: func(ref, rec *tensor.Tensor) float64 {
			o := DefaultBlobOptions()
			return DetectBlobs(rec, o).RelErrVs(DetectBlobs(ref, o))
		},
	}
}

// GenASiSApp is 2D rendering of the core-collapse velocity magnitude.
func GenASiSApp() App {
	return App{
		Name:     "GenASiS",
		Generate: synth.GenASiS,
		OutcomeErr: func(ref, rec *tensor.Tensor) float64 {
			return CompareRenders(ref, rec).RelErr()
		},
	}
}

// CFDApp is the high-pressure area/force analysis. The reconstruction is
// judged against the reference run's physical threshold.
func CFDApp() App {
	return App{
		Name:     "CFD",
		Generate: synth.CFD,
		OutcomeErr: func(ref, rec *tensor.Tensor) float64 {
			refStats := AnalyzePressure(ref, DefaultPressureOptions())
			recStats := AnalyzePressureAt(rec, refStats.Threshold)
			return recStats.RelErrVs(refStats)
		},
	}
}

// Apps returns the three applications in the paper's order.
func Apps() []App {
	return []App{XGCApp(), GenASiSApp(), CFDApp()}
}
