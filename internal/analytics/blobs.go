// Package analytics implements the three data analyses of the paper's
// evaluation (§IV-A) and the outcome-error measures used in Figs 2 and
// 10: XGC blob detection (count, average diameter), GenASiS 2D rendering
// (SSIM, Dice), and CFD high-pressure area and force.
package analytics

import (
	"fmt"
	"math"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// BlobStats summarizes detected blobs in an XGC potential field.
type BlobStats struct {
	Count       int
	AvgDiameter float64 // 2·sqrt(area/π), averaged over blobs (cells)
	TotalArea   float64 // cells
	MeanPeak    float64 // mean of per-blob maxima
}

// BlobOptions configures detection.
type BlobOptions struct {
	// SigmaK: the detection threshold is mean + SigmaK·stddev of the
	// field (how much the potential "deviates from the background").
	SigmaK float64
	// MinArea discards components smaller than this many cells.
	MinArea int
}

// DefaultBlobOptions matches the synthetic XGC generator's blob scale.
func DefaultBlobOptions() BlobOptions { return BlobOptions{SigmaK: 3, MinArea: 9} }

// DetectBlobs thresholds the field at mean + SigmaK·std and extracts
// 4-connected components, the standard blob-filament detection the paper
// cites ([36], [37]).
func DetectBlobs(t *tensor.Tensor, o BlobOptions) BlobStats {
	dims := t.Dims()
	if len(dims) != 2 {
		panic(fmt.Sprintf("analytics: DetectBlobs expects 2D, got %v", dims))
	}
	rows, cols := dims[0], dims[1]
	data := t.Data()

	var mean float64
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	var variance float64
	for _, v := range data {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(data))
	if variance == 0 {
		// A constant field has no background fluctuation to deviate from.
		return BlobStats{}
	}
	thresh := mean + o.SigmaK*math.Sqrt(variance)

	// Connected components by iterative flood fill (explicit stack; the
	// grid can be millions of cells).
	visited := make([]bool, len(data))
	var stats BlobStats
	var stack []int
	for start := range data {
		if visited[start] || data[start] < thresh {
			continue
		}
		area := 0
		peak := math.Inf(-1)
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			area++
			if data[idx] > peak {
				peak = data[idx]
			}
			r, c := idx/cols, idx%cols
			for _, nb := range [4][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				nr, nc := nb[0], nb[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				ni := nr*cols + nc
				if !visited[ni] && data[ni] >= thresh {
					visited[ni] = true
					stack = append(stack, ni)
				}
			}
		}
		if area >= o.MinArea {
			stats.Count++
			stats.TotalArea += float64(area)
			stats.AvgDiameter += 2 * math.Sqrt(float64(area)/math.Pi)
			stats.MeanPeak += peak
		}
	}
	if stats.Count > 0 {
		stats.AvgDiameter /= float64(stats.Count)
		stats.MeanPeak /= float64(stats.Count)
	}
	return stats
}

// RelErrVs returns the relative error of this outcome against a reference
// (full-data) outcome, averaged over blob count and average diameter —
// the characteristics the paper reports for XGC.
func (b BlobStats) RelErrVs(ref BlobStats) float64 {
	errs := []float64{
		errmetric.RelErr(float64(ref.Count), float64(b.Count)),
		errmetric.RelErr(ref.AvgDiameter, b.AvgDiameter),
	}
	var sum float64
	for _, e := range errs {
		if math.IsInf(e, 1) {
			e = 1
		}
		sum += e
	}
	return sum / float64(len(errs))
}
