package analytics

import (
	"math"
	"testing"

	"tango/internal/refactor"
	"tango/internal/synth"
	"tango/internal/tensor"
)

func TestDetectBlobsFindsInjectedBlobs(t *testing.T) {
	f, blobs := synth.XGC(synth.DefaultXGC(256, 1))
	st := DetectBlobs(f, DefaultBlobOptions())
	if st.Count == 0 {
		t.Fatal("no blobs detected")
	}
	// Detection should find roughly the injected count (merging/missing
	// a couple is acceptable for threshold detection over turbulence).
	if st.Count < len(blobs)/2 || st.Count > len(blobs)*2 {
		t.Fatalf("detected %d, injected %d", st.Count, len(blobs))
	}
	if st.AvgDiameter <= 0 || st.TotalArea <= 0 || st.MeanPeak <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

func TestDetectBlobsEmptyField(t *testing.T) {
	f := tensor.New(64, 64) // constant zero: nothing above mean + kσ
	st := DetectBlobs(f, DefaultBlobOptions())
	if st.Count != 0 {
		t.Fatalf("blobs in constant field: %+v", st)
	}
}

func TestDetectBlobsMinAreaFilter(t *testing.T) {
	f := tensor.New(32, 32)
	f.Set(100, 5, 5) // single-cell spike
	st := DetectBlobs(f, BlobOptions{SigmaK: 3, MinArea: 4})
	if st.Count != 0 {
		t.Fatal("single-cell spike should be filtered by MinArea")
	}
	st = DetectBlobs(f, BlobOptions{SigmaK: 3, MinArea: 1})
	if st.Count != 1 {
		t.Fatalf("spike not detected with MinArea=1: %+v", st)
	}
}

func TestBlobRelErrIdentity(t *testing.T) {
	f, _ := synth.XGC(synth.DefaultXGC(128, 2))
	st := DetectBlobs(f, DefaultBlobOptions())
	if got := st.RelErrVs(st); got != 0 {
		t.Fatalf("self relative error = %v", got)
	}
}

func TestBlobsRequire2D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on 1D input")
		}
	}()
	DetectBlobs(tensor.New(16), DefaultBlobOptions())
}

func TestRenderNormalizes(t *testing.T) {
	f := synth.GenASiS(64, 3)
	img := Render(f)
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range img {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < 0 || max > 1 || max-min < 0.5 {
		t.Fatalf("render range [%v,%v]", min, max)
	}
}

func TestCompareRendersPerfect(t *testing.T) {
	f := synth.GenASiS(64, 4)
	q := CompareRenders(f, f.Clone())
	if math.Abs(q.SSIM-1) > 1e-9 || q.Dice != 1 {
		t.Fatalf("self comparison: %+v", q)
	}
	if q.RelErr() > 1e-9 {
		t.Fatalf("self RelErr = %v", q.RelErr())
	}
}

func TestCompareRendersDegradesWithDecimation(t *testing.T) {
	f := synth.GenASiS(129, 5)
	h, err := refactor.Decompose(f, refactor.Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	full := CompareRenders(f, h.Recompose(h.TotalEntries()))
	baseOnly := CompareRenders(f, h.Recompose(0))
	if !(baseOnly.SSIM < full.SSIM) {
		t.Fatalf("SSIM should degrade: base %v full %v", baseOnly.SSIM, full.SSIM)
	}
	if !(baseOnly.RelErr() > full.RelErr()) {
		t.Fatal("RelErr should grow with reduction")
	}
}

func TestAnalyzePressure(t *testing.T) {
	f := synth.CFD(128, 6)
	st := AnalyzePressure(f, DefaultPressureOptions())
	if st.HighArea == 0 || st.TotalForce <= 0 {
		t.Fatalf("no high-pressure region: %+v", st)
	}
	// Force over the area must exceed threshold*area (every cell >= thresh).
	if st.TotalForce < st.Threshold*st.HighArea {
		t.Fatalf("force accounting wrong: %+v", st)
	}
	// Fixed-threshold variant agrees with itself.
	st2 := AnalyzePressureAt(f, st.Threshold)
	if st2.HighArea != st.HighArea || st2.TotalForce != st.TotalForce {
		t.Fatalf("AnalyzePressureAt mismatch: %+v vs %+v", st2, st)
	}
	if st.RelErrVs(st) != 0 {
		t.Fatal("self relative error nonzero")
	}
}

func TestAppsOutcomeErrGrowsWithReduction(t *testing.T) {
	// Fig 2's central claim: as decimation deepens, outcome error grows
	// but stays moderate. Verify monotone-ish behavior for each app.
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			ref := app.Generate(129, 11)
			h, err := refactor.Decompose(ref, refactor.Options{Levels: 5})
			if err != nil {
				t.Fatal(err)
			}
			full := app.OutcomeErr(ref, h.Recompose(h.TotalEntries()))
			half := app.OutcomeErr(ref, h.Recompose(h.TotalEntries()/2))
			none := app.OutcomeErr(ref, h.Recompose(0))
			if full > 1e-9 {
				t.Fatalf("full reconstruction outcome error = %v", full)
			}
			if !(none >= half-1e-9) {
				t.Fatalf("outcome error should not shrink with less data: none=%v half=%v", none, half)
			}
			if none > 1 {
				t.Fatalf("outcome error at base = %v (should stay bounded)", none)
			}
		})
	}
}

func TestAppsNamed(t *testing.T) {
	apps := Apps()
	if len(apps) != 3 {
		t.Fatal("want 3 apps")
	}
	want := []string{"XGC", "GenASiS", "CFD"}
	for i, a := range apps {
		if a.Name != want[i] {
			t.Fatalf("apps[%d] = %s", i, a.Name)
		}
	}
}
