package analytics

import (
	"math"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// Moments holds the first four standardized moments of a field — the
// "statistical analysis" workload the paper cites as tolerant of reduced
// representations (§II, Motivation 3).
type Moments struct {
	Mean     float64
	Variance float64
	Skewness float64
	Kurtosis float64 // excess kurtosis (normal = 0)
}

// ComputeMoments returns the field's moments in a single pass pair.
func ComputeMoments(t *tensor.Tensor) Moments {
	data := t.Data()
	n := float64(len(data))
	var mean float64
	for _, v := range data {
		mean += v
	}
	mean /= n
	var m2, m3, m4 float64
	for _, v := range data {
		d := v - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	m2 /= n
	m3 /= n
	m4 /= n
	out := Moments{Mean: mean, Variance: m2}
	if m2 > 0 {
		s := math.Sqrt(m2)
		out.Skewness = m3 / (s * s * s)
		out.Kurtosis = m4/(m2*m2) - 3
	}
	return out
}

// RelErrVs returns the mean relative error across the four moments
// against a reference. Moments near zero are compared against the
// reference field's standard deviation scale to avoid division blow-ups.
func (m Moments) RelErrVs(ref Moments) float64 {
	scale := math.Sqrt(ref.Variance)
	if scale == 0 {
		scale = 1
	}
	relOrScaled := func(want, got float64) float64 {
		if math.Abs(want) > 1e-3*scale {
			return errmetric.RelErr(want, got)
		}
		return math.Abs(got-want) / scale
	}
	errs := []float64{
		relOrScaled(ref.Mean, m.Mean),
		relOrScaled(ref.Variance, m.Variance),
		relOrScaled(ref.Skewness, m.Skewness),
		relOrScaled(ref.Kurtosis, m.Kurtosis),
	}
	var sum float64
	for _, e := range errs {
		if math.IsInf(e, 1) {
			e = 1
		}
		sum += e
	}
	return sum / float64(len(errs))
}
