package analytics

import (
	"fmt"
	"math"

	"tango/internal/errmetric"
	"tango/internal/tensor"
)

// PressureStats is the CFD analysis outcome: the total area with high
// pressure near the front of the plane and the total force on that area
// (pressure integrated over the area), the two quantities the paper
// reports for CFD.
type PressureStats struct {
	HighArea   float64 // cells with p >= threshold
	TotalForce float64 // Σ p over those cells (unit cell area)
	Threshold  float64
}

// PressureOptions configures the analysis.
type PressureOptions struct {
	// ThresholdQuantile: the high-pressure threshold is this quantile of
	// the reference free-stream distribution; default 0 means use
	// mean + 2σ of the analyzed field.
	SigmaK float64
}

// DefaultPressureOptions uses mean + 2σ.
func DefaultPressureOptions() PressureOptions { return PressureOptions{SigmaK: 2} }

// AnalyzePressure computes the high-pressure area and force.
func AnalyzePressure(t *tensor.Tensor, o PressureOptions) PressureStats {
	if len(t.Dims()) != 2 {
		panic(fmt.Sprintf("analytics: AnalyzePressure expects 2D, got %v", t.Dims()))
	}
	data := t.Data()
	var mean float64
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	var variance float64
	for _, v := range data {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(data))
	k := o.SigmaK
	if k == 0 {
		k = 2
	}
	thresh := mean + k*math.Sqrt(variance)

	st := PressureStats{Threshold: thresh}
	for _, v := range data {
		if v >= thresh {
			st.HighArea++
			st.TotalForce += v
		}
	}
	return st
}

// AnalyzePressureAt computes area and force against a fixed threshold
// (use the reference run's threshold so reduced data is judged on the
// same physical criterion).
func AnalyzePressureAt(t *tensor.Tensor, thresh float64) PressureStats {
	st := PressureStats{Threshold: thresh}
	for _, v := range t.Data() {
		if v >= thresh {
			st.HighArea++
			st.TotalForce += v
		}
	}
	return st
}

// RelErrVs returns the relative error against a reference outcome,
// averaged over area and force.
func (p PressureStats) RelErrVs(ref PressureStats) float64 {
	errs := []float64{
		errmetric.RelErr(ref.HighArea, p.HighArea),
		errmetric.RelErr(ref.TotalForce, p.TotalForce),
	}
	var sum float64
	for _, e := range errs {
		if math.IsInf(e, 1) {
			e = 1
		}
		sum += e
	}
	return sum / float64(len(errs))
}
