// Package resil is the resilience control plane for the simulated Tango
// storage stack. Every I/O-issuing layer — staging guarded reads, blkio
// and coordinator weight writes, the cache prefetcher's heal loop —
// routes its fault handling through this package instead of carrying its
// own ad-hoc retry loop.
//
// The design (PAIO-style: a policy layer between stages and storage,
// without touching either side's internals):
//
//   - Stable policy keys per call site ("staging.read.capacity",
//     "blkio.weight.apply", "prefetch.stage", …) map to declarative
//     policies: max attempts, backoff curve, per-attempt timeout in
//     virtual time, and an outcome classifier. Keys are part of the
//     operator contract (runbooks filter traces by key), so the
//     registered set is golden-tested.
//   - Protocol-aware classifiers distinguish retryable faults (a stuck
//     or bandwidth-collapsed device surfaces as a cancelled-by-timeout
//     read, a media error as device.ErrRead, a throttle/weight fault as
//     blkio.ErrWeightWrite) from terminal outcomes.
//   - A global retry budget — a token bucket per policy key plus a
//     node-wide cap — bounds retry amplification: a degraded device
//     cannot trigger a retry storm. Over-budget bounded work degrades
//     gracefully; over-budget mandatory work is paced to the refill
//     rate instead of hammering.
//   - Circuit breakers per device/cgroup target trip after consecutive
//     failures and half-open on the sim clock, so optional work fails
//     fast and weight writes stop hammering a wedged cgroup file.
//   - Hedged reads race the fast tier against the capacity tier when
//     the DFT forecast predicts a contended window, cancelling the
//     loser (device.Token) and charging the extra leg to the budget.
//
// Everything runs in virtual time on the sim engine and is fully
// deterministic; per-attempt decisions are emitted through
// internal/trace (KindAttempt/KindBreaker/KindHedge/KindBudget) so
// every recovery is explainable from the timeline. See docs/resil.md.
package resil

import (
	"errors"
	"fmt"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/sim"
	"tango/internal/trace"
)

// Class is a classified attempt outcome.
type Class int

const (
	// ClassOK — the attempt succeeded.
	ClassOK Class = iota
	// ClassRetryable — a transient fault worth retrying under policy.
	ClassRetryable
	// ClassTerminal — retrying cannot help; fail the operation now.
	ClassTerminal
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassRetryable:
		return "retryable"
	case ClassTerminal:
		return "terminal"
	default:
		return "Class(?)"
	}
}

// Classifier maps an attempt error to a Class. Classifiers are plain
// func values so the zero-alloc attempt path can invoke them without
// interface dispatch.
type Classifier func(err error) Class

// ClassifyRead classifies read-path outcomes: transient media errors
// (device.ErrRead) and timeout cancellations (device.ErrCanceled — how
// a stuck or bandwidth-collapsed device surfaces to a deadlined read)
// are retryable; anything else is terminal.
func ClassifyRead(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, device.ErrRead), errors.Is(err, device.ErrCanceled):
		return ClassRetryable
	default:
		return ClassTerminal
	}
}

// ClassifyWeight classifies cgroup weight/limit writes: a faulted
// controller file (blkio.ErrWeightWrite — also the signature of a
// throttle-reset window) is retryable on the next control tick.
func ClassifyWeight(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, blkio.ErrWeightWrite):
		return ClassRetryable
	default:
		return ClassTerminal
	}
}

// Stable policy keys, one per call site. Renaming one breaks operator
// runbooks and trace filters; keys_test.go pins the registered set.
const (
	KeyStagingReadBase     = "staging.read.base"      // whole-range base read (mandatory, unbounded)
	KeyStagingReadCapacity = "staging.read.capacity"  // mandatory capacity-tier range read (unbounded)
	KeyStagingReadOptional = "staging.read.optional"  // above-bound augmentation read (bounded, degradable)
	KeyStagingReadHedge    = "staging.read.hedge"     // cache-resident prefix: fast-vs-capacity hedge race
	KeyStagingProbe        = "staging.probe.capacity" // background bandwidth probe on the slow tier
	KeyWeightApply         = "blkio.weight.apply"     // session weight writes to the analytics cgroup
	KeyCoordWeightApply    = "coord.weight.apply"     // coordinator grant/revert weight writes
	KeyPrefetchWeightFloor = "prefetch.weight.floor"  // prefetcher re-asserting its low-priority floor
	KeyPrefetchStage       = "prefetch.stage"         // background staging read into the fast tier
	KeyFleetReadObjstore   = "fleet.read.objstore"    // mandatory L3 object-store miss read (unbounded)
	KeyTokenWeightApply    = "tokens.weight.apply"    // token-controller grant/revert/recall weight writes
)

// Policy is the declarative resilience contract for one key.
type Policy struct {
	Key         string
	MaxAttempts int     // per operation; 0 = unbounded (mandatory work never gives up)
	Backoff     float64 // seconds before the first retry
	Factor      float64 // backoff multiplier per retry (>= 1)
	MaxBackoff  float64 // backoff ceiling in seconds

	// Per-attempt timeout in virtual time, expressed as a minimum
	// acceptable effective bandwidth: an attempt moving `bytes` is
	// cancelled after TimeoutFloor + bytes/TimeoutMinBW seconds — i.e.
	// "declare the attempt stuck if it is slower than TimeoutMinBW".
	// TimeoutMinBW == 0 disables the timeout (the attempt may block
	// until the fault clears, preserving flow progress).
	TimeoutFloor float64 // seconds of slack on top of the bandwidth bound
	TimeoutMinBW float64 // bytes/sec; 0 = no per-attempt timeout

	Classify Classifier

	// Retry budget: a token bucket per key. Each retry (and each hedge
	// leg) consumes one token from this bucket and from the node-wide
	// bucket. BudgetCap == 0 means the key draws only on the node cap.
	BudgetCap    float64 // tokens
	BudgetRefill float64 // tokens per virtual second

	// Circuit breaker per target (device or cgroup name). Threshold 0
	// disables the breaker for this key (mandatory work must never be
	// denied). The first key to touch a target fixes the breaker's
	// parameters; the catalog keeps them uniform per target class.
	BreakerThreshold int     // consecutive failures before opening
	BreakerCooldown  float64 // seconds open before a half-open probe
}

// Catalog returns the default policy catalog: one policy per registered
// key. Mandatory read keys are unbounded with no timeout (blocking on a
// stalled-but-progressing flow preserves its progress; cancelling would
// discard it), optional/augmentation keys time out at a minimum-useful
// bandwidth and degrade, and weight keys are single-attempt with a
// short-cooldown breaker (the next control tick is the retry).
func Catalog() []Policy {
	const mb = 1024 * 1024
	return []Policy{
		{Key: KeyStagingReadBase, MaxAttempts: 0, Backoff: 0.05, Factor: 2, MaxBackoff: 5,
			Classify: ClassifyRead, BudgetCap: 32, BudgetRefill: 0.5},
		{Key: KeyStagingReadCapacity, MaxAttempts: 0, Backoff: 0.05, Factor: 2, MaxBackoff: 5,
			Classify: ClassifyRead, BudgetCap: 32, BudgetRefill: 0.5},
		{Key: KeyStagingReadOptional, MaxAttempts: 3, Backoff: 0.05, Factor: 2, MaxBackoff: 5,
			TimeoutFloor: 10, TimeoutMinBW: 4 * mb,
			Classify: ClassifyRead, BudgetCap: 16, BudgetRefill: 0.25,
			BreakerThreshold: 4, BreakerCooldown: 20},
		{Key: KeyStagingReadHedge, MaxAttempts: 1, Backoff: 0.05, Factor: 2, MaxBackoff: 5,
			TimeoutFloor: 5, TimeoutMinBW: 2 * mb,
			Classify: ClassifyRead, BudgetCap: 16, BudgetRefill: 0.25},
		{Key: KeyStagingProbe, MaxAttempts: 1, Backoff: 0.05, Factor: 2, MaxBackoff: 5,
			TimeoutFloor: 5, TimeoutMinBW: 1 * mb,
			Classify: ClassifyRead, BudgetCap: 8, BudgetRefill: 0.1,
			BreakerThreshold: 4, BreakerCooldown: 20},
		{Key: KeyWeightApply, MaxAttempts: 1,
			Classify: ClassifyWeight, BreakerThreshold: 3, BreakerCooldown: 5},
		{Key: KeyCoordWeightApply, MaxAttempts: 1,
			Classify: ClassifyWeight, BreakerThreshold: 3, BreakerCooldown: 5},
		{Key: KeyPrefetchWeightFloor, MaxAttempts: 1,
			Classify: ClassifyWeight, BreakerThreshold: 3, BreakerCooldown: 5},
		{Key: KeyPrefetchStage, MaxAttempts: 2, Backoff: 0.1, Factor: 2, MaxBackoff: 5,
			TimeoutFloor: 5, TimeoutMinBW: 2 * mb,
			Classify: ClassifyRead, BudgetCap: 8, BudgetRefill: 0.1,
			BreakerThreshold: 4, BreakerCooldown: 20},
		{Key: KeyFleetReadObjstore, MaxAttempts: 0, Backoff: 0.05, Factor: 2, MaxBackoff: 5,
			Classify: ClassifyRead, BudgetCap: 32, BudgetRefill: 0.5},
		{Key: KeyTokenWeightApply, MaxAttempts: 1,
			Classify: ClassifyWeight, BreakerThreshold: 3, BreakerCooldown: 5},
	}
}

// HedgeConfig controls forecast-driven hedged reads.
type HedgeConfig struct {
	Enabled bool
	// ContentionFrac: hedge when the forecast's next-window capacity-
	// tier bandwidth falls below ContentionFrac × the model peak — the
	// regime where the storage stack is contended and tail insurance is
	// worth the extra I/O. 0 defaults to 0.5.
	ContentionFrac float64
	// MinBytes skips hedging tiny reads where the race cannot win back
	// its own request latency. 0 defaults to 4 MiB.
	MinBytes float64
}

// KeyStats counts per-key control-plane decisions.
type KeyStats struct {
	Ops           int     // operations routed through the key
	Attempts      int     // individual attempts issued
	Retries       int     // attempts beyond the first
	Timeouts      int     // attempts cancelled by the per-attempt deadline
	Failures      int     // operations that ended terminally failed
	Degraded      int     // bounded operations that gave up under policy
	BudgetDenied  int     // retries/hedges denied by the budget
	BudgetPaced   int     // mandatory retries slowed to the refill rate
	BreakerDenied int     // attempts denied by an open breaker
	Hedges        int     // hedge races launched
	HedgeFastWins int     // races won by the fast tier
	HedgeSlowWins int     // races won by the capacity tier
	WastedBytes   float64 // bytes moved by cancelled attempts and hedge losers
}

// Totals aggregates stats across every registered key.
type Totals struct {
	Ops, Attempts, Retries, Timeouts, Degraded int
	BudgetDenied, BreakerDenied, BreakerOpens  int
	Hedges, HedgeFastWins, HedgeSlowWins       int
	WastedBytes                                float64
}

// Amplification returns attempts per operation (1 = no retries). With no
// operations it reports 1.
func (t Totals) Amplification() float64 {
	if t.Ops == 0 {
		return 1
	}
	return float64(t.Attempts) / float64(t.Ops)
}

// Key is the per-call-site handle for one registered policy: call sites
// resolve theirs once (at SetResil time) and execute operations through
// it, so the per-operation path is a direct method call with no map
// lookups or allocation.
type Key struct {
	c      *Controller
	name   string
	pol    Policy
	bucket bucket
	stats  KeyStats
}

// Name returns the policy key string.
func (k *Key) Name() string { return k.name }

// Stats returns the key's counters.
func (k *Key) Stats() KeyStats { return k.stats }

// Policy returns the key's policy.
func (k *Key) Policy() Policy { return k.pol }

// Options configures a Controller.
type Options struct {
	Trace  *trace.Recorder // per-attempt timeline sink (nil = silent)
	Source string          // trace source label; default "resil"

	// Node-wide retry budget shared by all keys. Zero values default to
	// 64 tokens refilling at 0.5 tokens/s.
	NodeBudget float64
	NodeRefill float64

	Hedge HedgeConfig

	// Policies overrides the default Catalog() (tests, ablations). Nil
	// registers the catalog.
	Policies []Policy
}

// Controller owns the policy registry, budgets, breakers, and hedging
// state for one node. Like the rest of the stack it is engine-serialized:
// one controller per sim engine, no locking.
type Controller struct {
	eng *sim.Engine
	rec *trace.Recorder
	src string

	keys   []*Key // registration order (golden-tested)
	byName map[string]*Key

	node bucket // node-wide retry budget

	breakers map[string]*Breaker // by target (device or cgroup name)
	brOpens  int

	hedge    HedgeConfig
	forecast func() (next, peak float64, ok bool)

	attemptFree []*attemptCtx
}

// New creates a controller bound to an engine and registers the policy
// catalog. It panics on duplicate keys (construction is programmer-
// controlled).
func New(eng *sim.Engine, opts Options) *Controller {
	c := &Controller{
		eng:      eng,
		rec:      opts.Trace,
		src:      opts.Source,
		breakers: make(map[string]*Breaker),
		hedge:    opts.Hedge,
		byName:   make(map[string]*Key),
	}
	if c.src == "" {
		c.src = "resil"
	}
	if c.hedge.ContentionFrac == 0 {
		c.hedge.ContentionFrac = 0.5
	}
	if c.hedge.MinBytes == 0 {
		c.hedge.MinBytes = 4 * 1024 * 1024
	}
	nodeCap, nodeRefill := opts.NodeBudget, opts.NodeRefill
	if nodeCap == 0 {
		nodeCap = 64
	}
	if nodeRefill == 0 {
		nodeRefill = 0.5
	}
	c.node = bucket{cap: nodeCap, refill: nodeRefill, tokens: nodeCap}
	pols := opts.Policies
	if pols == nil {
		pols = Catalog()
	}
	for _, pol := range pols {
		c.register(pol)
	}
	return c
}

func (c *Controller) register(pol Policy) {
	if pol.Key == "" {
		panic("resil: policy with empty key")
	}
	if _, dup := c.byName[pol.Key]; dup {
		panic(fmt.Sprintf("resil: duplicate policy key %q", pol.Key))
	}
	if pol.Factor < 1 {
		pol.Factor = 2
	}
	if pol.Classify == nil {
		pol.Classify = ClassifyRead
	}
	k := &Key{
		c:    c,
		name: pol.Key,
		pol:  pol,
		bucket: bucket{
			cap: pol.BudgetCap, refill: pol.BudgetRefill, tokens: pol.BudgetCap,
		},
	}
	c.keys = append(c.keys, k)
	c.byName[pol.Key] = k
}

// Key returns the handle for a registered policy key; call sites resolve
// their handle once (SetResil time) so the per-operation path is a plain
// method call. It panics on an unknown key — a misspelled key is a
// programming error, not a runtime condition.
func (c *Controller) Key(name string) *Key {
	k, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("resil: unknown policy key %q", name))
	}
	return k
}

// Keys returns the registered policy keys in registration order.
func (c *Controller) Keys() []string {
	out := make([]string, len(c.keys))
	for i, k := range c.keys {
		out[i] = k.name
	}
	return out
}

// Stats returns the named key's counters.
func (c *Controller) Stats(name string) KeyStats { return c.Key(name).stats }

// Totals aggregates counters across all keys.
func (c *Controller) Totals() Totals {
	var t Totals
	for _, k := range c.keys {
		s := k.stats
		t.Ops += s.Ops
		t.Attempts += s.Attempts
		t.Retries += s.Retries
		t.Timeouts += s.Timeouts
		t.Degraded += s.Degraded
		t.BudgetDenied += s.BudgetDenied
		t.BreakerDenied += s.BreakerDenied
		t.Hedges += s.Hedges
		t.HedgeFastWins += s.HedgeFastWins
		t.HedgeSlowWins += s.HedgeSlowWins
		t.WastedBytes += s.WastedBytes
	}
	t.BreakerOpens = c.brOpens
	return t
}

// SetForecast wires the contention forecast consulted by the hedging
// decision: fn returns the next-window demand estimate, the model peak,
// and whether the estimator is ready. The session wires this to the
// dftestim-backed predictor it already maintains for the prefetcher.
func (c *Controller) SetForecast(fn func() (next, peak float64, ok bool)) {
	c.forecast = fn
}

// HedgingEnabled reports whether hedged reads are switched on.
func (c *Controller) HedgingEnabled() bool { return c.hedge.Enabled }

// Breaker returns the breaker for a target, or nil if no policy has
// touched it yet.
func (c *Controller) Breaker(target string) *Breaker { return c.breakers[target] }

// breakerFor lazily creates the breaker for a target using pol's
// parameters; an existing breaker is reused as-is. Keys with
// BreakerThreshold 0 get no breaker (nil).
func (c *Controller) breakerFor(target string, pol *Policy) *Breaker {
	if pol.BreakerThreshold <= 0 {
		return nil
	}
	b := c.breakers[target]
	if b == nil {
		b = &Breaker{target: target, threshold: pol.BreakerThreshold, cooldown: pol.BreakerCooldown}
		c.breakers[target] = b
	}
	return b
}

func (c *Controller) emit(kind, format string, args ...any) {
	if c.rec != nil {
		c.rec.Emit(c.eng.Now(), c.src, kind, format, args...)
	}
}
