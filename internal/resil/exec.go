package resil

import (
	"errors"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/sim"
	"tango/internal/trace"
)

// attemptCtx is a pooled per-attempt context: a cancellable device token
// plus a prebuilt timer callback that cancels it, so arming a per-attempt
// deadline costs no allocation in steady state.
type attemptCtx struct {
	tok    device.Token
	cancel func()
}

//tango:hotpath
func (c *Controller) getAttempt() *attemptCtx {
	if n := len(c.attemptFree); n > 0 {
		a := c.attemptFree[n-1]
		c.attemptFree[n-1] = nil
		c.attemptFree = c.attemptFree[:n-1]
		return a
	}
	a := new(attemptCtx)
	//lint:ignore hotpath pool refill: the closure is created once per pooled context at miss time and amortized by the freelist, the same budget as the make/new refill idiom
	a.cancel = func() { a.tok.Cancel() }
	return a
}

//tango:hotpath
func (c *Controller) putAttempt(a *attemptCtx) {
	a.tok = device.Token{}
	c.attemptFree = append(c.attemptFree, a)
}

// ReadResult reports one policy-keyed read operation.
type ReadResult struct {
	OK       bool
	Denied   bool // an open breaker denied the attempt outright
	Degraded bool // gave up under policy (attempt limit, budget, breaker)
	Attempts int
	Retries  int
	Timeouts int     // attempts cancelled by the per-attempt deadline
	Elapsed  float64 // virtual time spent, attempts plus backoff
	Moved    float64 // bytes accounted to the device across all attempts
	Err      error   // last attempt error when !OK
}

// attemptRead issues exactly one policy-governed attempt: a cancellable
// read with the policy's bandwidth-bound deadline armed, or a plain
// fallible read when the policy has no timeout. This is the non-fault
// fast path of the control plane — no tracing, no formatting, no
// allocation (the token and its timer callback come from the controller
// pool); everything above it (retries, classification consequences,
// emission) lives in the cold wrapper.
//
//tango:hotpath
func (k *Key) attemptRead(p *sim.Proc, dev *device.Device, cg *blkio.Cgroup, bytes float64) (elapsed, moved float64, err error) {
	if k.pol.TimeoutMinBW <= 0 {
		elapsed, err = dev.TryRead(p, cg, bytes)
		if err == nil {
			moved = bytes
		}
		return elapsed, moved, err
	}
	a := k.c.getAttempt()
	deadline := k.pol.TimeoutFloor + bytes/k.pol.TimeoutMinBW
	tm := k.c.eng.After(deadline, a.cancel)
	elapsed, err = dev.TryReadCancel(p, cg, bytes, &a.tok)
	tm.Stop()
	moved = a.tok.Moved()
	k.c.putAttempt(a)
	return elapsed, moved, err
}

// Read runs one guarded read of bytes from dev under the key's policy:
// breaker admission, per-attempt deadline, classified outcomes, budgeted
// exponential backoff. Unbounded (MaxAttempts 0) keys never give up —
// when the retry budget runs dry they pace to the refill rate instead.
// Must be called from a simulated process.
func (k *Key) Read(p *sim.Proc, dev *device.Device, cg *blkio.Cgroup, bytes float64) ReadResult {
	var res ReadResult
	k.stats.Ops++
	c := k.c
	br := c.breakerFor(dev.Name(), &k.pol)
	delay := k.pol.Backoff
	if delay <= 0 {
		delay = 0.05
	}
	for {
		if br != nil && !br.allow(c.eng.Now()) {
			k.stats.BreakerDenied++
			res.Denied = true
			res.Degraded = true
			if res.Attempts == 0 {
				// Deny-on-entry is the breaker doing its job; one trace
				// line per op would flood the ring, so only entry denials
				// after at least one attempt are interesting enough to log.
				return res
			}
			c.emit(trace.KindBreaker, "deny key=%s target=%s: open mid-retry", k.name, dev.Name())
			return res
		}
		res.Attempts++
		k.stats.Attempts++
		el, moved, err := k.attemptRead(p, dev, cg, bytes)
		res.Elapsed += el
		res.Moved += moved
		cls := k.pol.Classify(err)
		if cls == ClassOK {
			if br != nil && br.onSuccess() {
				c.emit(trace.KindBreaker, "close key=%s target=%s", k.name, dev.Name())
			}
			res.OK = true
			res.Err = nil
			return res
		}
		res.Err = err
		timedOut := errors.Is(err, device.ErrCanceled)
		if timedOut {
			k.stats.Timeouts++
			res.Timeouts++
			k.stats.WastedBytes += moved
		}
		now := c.eng.Now()
		if br != nil && br.onFailure(now) {
			c.brOpens++
			c.emit(trace.KindBreaker, "open key=%s target=%s fails=%d cooldown=%.3gs",
				k.name, dev.Name(), br.fails, br.cooldown)
		}
		if cls == ClassTerminal {
			k.stats.Failures++
			c.emit(trace.KindAttempt, "fail key=%s target=%s attempt=%d: terminal: %v",
				k.name, dev.Name(), res.Attempts, err)
			return res
		}
		if k.pol.MaxAttempts > 0 && res.Attempts >= k.pol.MaxAttempts {
			k.stats.Degraded++
			res.Degraded = true
			c.emit(trace.KindAttempt, "degrade key=%s target=%s attempts=%d: attempt limit reached",
				k.name, dev.Name(), res.Attempts)
			return res
		}
		paced := false
		if !k.takeToken(now) {
			if k.pol.MaxAttempts > 0 {
				k.stats.BudgetDenied++
				k.stats.Degraded++
				res.Degraded = true
				c.emit(trace.KindBudget, "deny key=%s target=%s: retry budget exhausted, degrading",
					k.name, dev.Name())
				return res
			}
			// Mandatory work: degrade to a trickle paced at the refill
			// rate rather than hammering the device or giving up.
			wait := k.tokenWait(now)
			k.stats.BudgetPaced++
			paced = true
			if wait > delay {
				delay = wait
			}
			c.emit(trace.KindBudget, "pace key=%s target=%s wait=%.3gs: budget dry",
				k.name, dev.Name(), delay)
		}
		k.stats.Retries++
		res.Retries++
		c.emit(trace.KindAttempt, "retry key=%s target=%s attempt=%d backoff=%.3gs timeout=%t",
			k.name, dev.Name(), res.Attempts+1, delay, timedOut)
		p.Sleep(delay)
		if paced {
			k.takeToken(c.eng.Now()) // best-effort: the pacing sleep covered the refill
		}
		res.Elapsed += delay
		delay *= k.pol.Factor
		if k.pol.MaxBackoff > 0 && delay > k.pol.MaxBackoff {
			delay = k.pol.MaxBackoff
		}
	}
}

// WeightResult reports one policy-keyed weight write.
type WeightResult struct {
	OK      bool
	Skipped bool // an open breaker suppressed the write; re-apply on a later tick
}

// Weight applies a cgroup weight through the key's policy: single
// attempt, breaker-gated per cgroup target. The caller's own control
// tick is the retry loop — the breaker's job is to stop a wedged cgroup
// file from being hammered every tick, and its half-open probe is the
// recovery detector. Safe to call from any sim context (no sleeping).
func (k *Key) Weight(cg *blkio.Cgroup, w int) WeightResult {
	k.stats.Ops++
	c := k.c
	br := c.breakerFor(cg.Name(), &k.pol)
	now := c.eng.Now()
	if br != nil && !br.allow(now) {
		k.stats.BreakerDenied++
		return WeightResult{Skipped: true}
	}
	k.stats.Attempts++
	err := cg.TrySetWeight(w)
	if k.pol.Classify(err) == ClassOK {
		if br != nil && br.onSuccess() {
			c.emit(trace.KindRecover, "weight write recovered key=%s target=%s: re-applied w=%d",
				k.name, cg.Name(), w)
		}
		return WeightResult{OK: true}
	}
	k.stats.Failures++
	if br != nil && br.onFailure(now) {
		c.brOpens++
		c.emit(trace.KindBreaker, "open key=%s target=%s fails=%d cooldown=%.3gs: weight writes suppressed",
			k.name, cg.Name(), br.fails, br.cooldown)
	} else {
		c.emit(trace.KindAttempt, "fail key=%s target=%s w=%d: tolerated, re-apply next tick",
			k.name, cg.Name(), w)
	}
	return WeightResult{}
}

// HedgeResult reports one hedged-read decision.
type HedgeResult struct {
	OK        bool // a leg delivered the payload
	Hedged    bool // the race was actually launched (false = decision said no)
	FastWon   bool
	Elapsed   float64
	FastMoved float64 // bytes accounted on the fast device (winner payload or cancelled partial)
	SlowMoved float64 // bytes accounted on the slow device
}

// shouldHedge is the hedging decision rule (docs/resil.md): hedge only
// reads worth the race (>= MinBytes) and only when either (a) the DFT
// forecast predicts a contended window — next-window capacity-tier
// bandwidth below ContentionFrac of the model peak, the same signal the
// prefetcher reads in the opposite direction to find quiet windows — or
// (b) the fast tier's breaker is already tripped, which is direct
// evidence the primary leg is suspect.
func (c *Controller) shouldHedge(fast *device.Device, bytes float64) bool {
	if !c.hedge.Enabled || bytes < c.hedge.MinBytes {
		return false
	}
	if b := c.breakers[fast.Name()]; b != nil && b.State(c.eng.Now()) != BreakerClosed {
		return true
	}
	if c.forecast == nil {
		return false
	}
	next, peak, ok := c.forecast()
	if !ok || peak <= 0 {
		return false
	}
	return next < c.hedge.ContentionFrac*peak
}

// HedgedRead races a fast-tier copy of the payload against the capacity
// tier, cancelling the loser mid-flight. If the decision rule says the
// race is not worth it (or the budget has no token for the extra leg) it
// returns Hedged == false and the caller proceeds on its normal path; if
// both legs fail the caller likewise falls back (OK == false). The loser
// leg's partial bytes are real I/O and are accounted to its device and
// cgroup; the result reports them so callers can track waste.
func (k *Key) HedgedRead(p *sim.Proc, fast, slow *device.Device, cg *blkio.Cgroup, bytes float64) HedgeResult {
	var res HedgeResult
	c := k.c
	if !c.shouldHedge(fast, bytes) {
		return res
	}
	now := c.eng.Now()
	if !k.takeToken(now) {
		k.stats.BudgetDenied++
		c.emit(trace.KindBudget, "deny key=%s: no budget for hedge leg", k.name)
		return res
	}
	k.stats.Ops++
	k.stats.Hedges++
	k.stats.Attempts += 2
	res.Hedged = true
	c.emit(trace.KindHedge, "launch key=%s fast=%s slow=%s bytes=%.0f",
		k.name, fast.Name(), slow.Name(), bytes)

	deadline := k.pol.TimeoutFloor + bytes/k.pol.TimeoutMinBW
	var fastTok, slowTok device.Token
	winner := -1
	wg := sim.NewWaitGroup(c.eng)
	wg.Go("hedge-fast", func(hp *sim.Proc) {
		tm := c.eng.After(deadline, func() { fastTok.Cancel() })
		_, err := fast.TryReadCancel(hp, cg, bytes, &fastTok)
		tm.Stop()
		if err == nil && winner < 0 {
			winner = 0
			slowTok.Cancel()
		}
	})
	wg.Go("hedge-slow", func(hp *sim.Proc) {
		tm := c.eng.After(deadline, func() { slowTok.Cancel() })
		_, err := slow.TryReadCancel(hp, cg, bytes, &slowTok)
		tm.Stop()
		if err == nil && winner < 0 {
			winner = 1
			fastTok.Cancel()
		}
	})
	wg.Wait(p)

	res.Elapsed = c.eng.Now() - now
	res.FastMoved = fastTok.Moved()
	res.SlowMoved = slowTok.Moved()
	if winner < 0 {
		k.stats.Degraded++
		k.stats.WastedBytes += res.FastMoved + res.SlowMoved
		c.emit(trace.KindHedge, "lose key=%s: both legs failed, falling back", k.name)
		return res
	}
	res.OK = true
	res.FastWon = winner == 0
	winDev, wasted := slow, res.FastMoved
	if res.FastWon {
		k.stats.HedgeFastWins++
		winDev, wasted = fast, res.SlowMoved
	} else {
		k.stats.HedgeSlowWins++
	}
	k.stats.WastedBytes += wasted
	c.emit(trace.KindHedge, "win key=%s winner=%s wasted=%.0f elapsed=%.3gs",
		k.name, winDev.Name(), wasted, res.Elapsed)
	return res
}
