package resil

import (
	"errors"
	"fmt"
	"testing"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/sim"
)

func flatParams(name string, peak float64) device.Params {
	return device.Params{Name: name, PeakBandwidth: peak, MinEfficiency: 1, SeekThrash: 0}
}

func TestClassifyRead(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassOK},
		{fmt.Errorf("device %q: %w", "hdd", device.ErrRead), ClassRetryable},
		{fmt.Errorf("device %q: %w", "hdd", device.ErrCanceled), ClassRetryable},
		{errors.New("disk on fire"), ClassTerminal},
	}
	for _, c := range cases {
		if got := ClassifyRead(c.err); got != c.want {
			t.Errorf("ClassifyRead(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestClassifyWeight(t *testing.T) {
	if got := ClassifyWeight(nil); got != ClassOK {
		t.Errorf("nil = %v", got)
	}
	wrapped := fmt.Errorf("cgroup %q: %w", "a", blkio.ErrWeightWrite)
	if got := ClassifyWeight(wrapped); got != ClassRetryable {
		t.Errorf("weight fault = %v", got)
	}
	if got := ClassifyWeight(errors.New("other")); got != ClassTerminal {
		t.Errorf("unknown = %v", got)
	}
}

func TestUnboundedReadRetriesUntilFaultClears(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Options{})
	d := device.New(eng, flatParams("hdd", 100))
	d.SetReadError(true)
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadCapacity)
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = k.Read(p, d, cg, 1000)
	})
	eng.Spawn("healer", func(p *sim.Proc) {
		p.Sleep(2)
		d.SetReadError(false)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("mandatory read must eventually succeed: %+v", res)
	}
	if res.Retries == 0 {
		t.Fatal("expected retries while the fault was active")
	}
	st := k.Stats()
	if st.Ops != 1 || st.Retries != res.Retries || st.Attempts != res.Attempts {
		t.Fatalf("stats mismatch: %+v vs %+v", st, res)
	}
}

func TestBoundedReadDegradesAtAttemptLimit(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Options{})
	d := device.New(eng, flatParams("hdd", 100))
	d.SetReadError(true)
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadOptional)
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = k.Read(p, d, cg, 1000)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if res.OK || !res.Degraded {
		t.Fatalf("persistent fault should degrade a bounded key: %+v", res)
	}
	if res.Attempts != k.Policy().MaxAttempts {
		t.Fatalf("attempts = %d, want MaxAttempts = %d", res.Attempts, k.Policy().MaxAttempts)
	}
	if !errors.Is(res.Err, device.ErrRead) {
		t.Fatalf("last error should surface: %v", res.Err)
	}
}

func TestDeadlineCancelsStuckDevice(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Options{})
	d := device.New(eng, flatParams("hdd", 100))
	d.SetFault(0, 0) // stuck: flows make no progress
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadOptional)
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = k.Read(p, d, cg, 1000)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatalf("stuck device should not satisfy a deadlined read: %+v", res)
	}
	if res.Timeouts != res.Attempts {
		t.Fatalf("every attempt should time out: %+v", res)
	}
	if !errors.Is(res.Err, device.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", res.Err)
	}
}

func TestTerminalErrorFailsImmediately(t *testing.T) {
	eng := sim.NewEngine()
	pols := []Policy{{Key: "t", MaxAttempts: 5, Backoff: 0.1,
		Classify: func(error) Class { return ClassTerminal }}}
	c := New(eng, Options{Policies: pols})
	d := device.New(eng, flatParams("hdd", 100))
	d.SetReadError(true)
	cg := blkio.NewCgroup("a")
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = c.Key("t").Read(p, d, cg, 1000)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Attempts != 1 || res.Retries != 0 {
		t.Fatalf("terminal outcome must not retry: %+v", res)
	}
	if c.Key("t").Stats().Failures != 1 {
		t.Fatalf("failure not counted: %+v", c.Key("t").Stats())
	}
}

func TestBudgetPacesMandatoryRetries(t *testing.T) {
	eng := sim.NewEngine()
	pols := []Policy{{Key: "m", MaxAttempts: 0, Backoff: 0.01, Factor: 1,
		Classify: ClassifyRead, BudgetCap: 2, BudgetRefill: 0.5}}
	c := New(eng, Options{Policies: pols})
	d := device.New(eng, flatParams("hdd", 100))
	d.SetReadError(true)
	cg := blkio.NewCgroup("a")
	k := c.Key("m")
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = k.Read(p, d, cg, 100)
	})
	eng.Spawn("healer", func(p *sim.Proc) {
		p.Sleep(30)
		d.SetReadError(false)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("mandatory read must survive the dry budget: %+v", res)
	}
	st := k.Stats()
	if st.BudgetPaced == 0 {
		t.Fatalf("expected pacing once the 2-token budget drained: %+v", st)
	}
	// Paced to 0.5 tokens/s: a 30 s outage admits roughly cap + 30×refill
	// attempts, not hundreds of tight-backoff ones.
	if st.Attempts > 25 {
		t.Fatalf("pacing failed to bound the retry storm: %d attempts", st.Attempts)
	}
}

func TestBudgetDeniesBoundedRetries(t *testing.T) {
	eng := sim.NewEngine()
	pols := []Policy{{Key: "b", MaxAttempts: 10, Backoff: 0.01, Factor: 1,
		Classify: ClassifyRead, BudgetCap: 2, BudgetRefill: 0.001}}
	c := New(eng, Options{Policies: pols})
	d := device.New(eng, flatParams("hdd", 100))
	d.SetReadError(true)
	cg := blkio.NewCgroup("a")
	k := c.Key("b")
	var res ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = k.Read(p, d, cg, 100)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if res.OK || !res.Degraded {
		t.Fatalf("bounded read should degrade when the budget denies: %+v", res)
	}
	if k.Stats().BudgetDenied != 1 {
		t.Fatalf("denial not counted: %+v", k.Stats())
	}
	if res.Attempts > 3 {
		t.Fatalf("budget cap 2 admits at most 3 attempts, got %d", res.Attempts)
	}
}

func TestBreakerLifecycleOnWeightWrites(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Options{})
	cg := blkio.NewCgroup("analytics")
	cg.SetWeightFailing(true)
	k := c.Key(KeyWeightApply)
	pol := k.Policy()

	eng.Spawn("ctl", func(p *sim.Proc) {
		// Failures up to the threshold trip the breaker.
		for i := 0; i < pol.BreakerThreshold; i++ {
			if res := k.Weight(cg, 500); res.OK || res.Skipped {
				t.Errorf("write %d should fail outright: %+v", i, res)
			}
			p.Sleep(1)
		}
		br := c.Breaker(cg.Name())
		if br == nil || br.State(eng.Now()) != BreakerOpen {
			t.Fatalf("breaker should be open after %d failures", pol.BreakerThreshold)
		}
		// While open: writes are suppressed, the cgroup file is untouched.
		if res := k.Weight(cg, 500); !res.Skipped {
			t.Errorf("open breaker should skip, got %+v", res)
		}
		// Past the cooldown the half-open probe is admitted; with the
		// fault still active it fails and re-opens.
		p.Sleep(pol.BreakerCooldown)
		if res := k.Weight(cg, 500); res.OK || res.Skipped {
			t.Errorf("half-open probe should be admitted and fail: %+v", res)
		}
		if br.State(eng.Now()) != BreakerOpen {
			t.Error("failed probe should re-open the breaker")
		}
		// Heal, wait out the cooldown: the next probe closes the breaker.
		cg.SetWeightFailing(false)
		p.Sleep(pol.BreakerCooldown)
		if res := k.Weight(cg, 500); !res.OK {
			t.Errorf("post-heal probe should land: %+v", res)
		}
		if br.State(eng.Now()) != BreakerClosed {
			t.Error("successful probe should close the breaker")
		}
		if cg.Weight() != 500 {
			t.Errorf("weight should be applied, got %d", cg.Weight())
		}
		if br.Opens() != 2 {
			t.Errorf("opens = %d, want 2 (trip + failed probe)", br.Opens())
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if c.Totals().BreakerOpens != 2 {
		t.Fatalf("controller opens = %d, want 2", c.Totals().BreakerOpens)
	}
}

func TestBreakerDeniesOptionalReads(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Options{})
	d := device.New(eng, flatParams("hdd", 100))
	d.SetReadError(true)
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadOptional)
	var denied ReadResult
	eng.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < 3; i++ { // trips the threshold-4 breaker
			k.Read(p, d, cg, 100)
			p.Sleep(0.5)
		}
		denied = k.Read(p, d, cg, 100)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !denied.Denied || denied.Attempts != 0 {
		t.Fatalf("open breaker should deny on entry: %+v", denied)
	}
	if k.Stats().BreakerDenied == 0 {
		t.Fatal("denial not counted")
	}
}

func hedgeController(eng *sim.Engine, contended bool) *Controller {
	c := New(eng, Options{Hedge: HedgeConfig{Enabled: true}})
	c.SetForecast(func() (next, peak float64, ok bool) {
		if contended {
			return 10, 100, true // next-window bandwidth collapsed: contended
		}
		return 90, 100, true // quiet window: no hedge
	})
	return c
}

func TestHedgedReadFastTierWins(t *testing.T) {
	eng := sim.NewEngine()
	c := hedgeController(eng, true)
	fast := device.New(eng, flatParams("ssd", 1000*1024*1024))
	slow := device.New(eng, flatParams("hdd", 10*1024*1024))
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadHedge)
	bytes := 8.0 * 1024 * 1024
	var res HedgeResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = k.HedgedRead(p, fast, slow, cg, bytes)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || !res.OK || !res.FastWon {
		t.Fatalf("fast tier should win the race: %+v", res)
	}
	if res.FastMoved != bytes {
		t.Fatalf("winner moved %v, want %v", res.FastMoved, bytes)
	}
	if res.SlowMoved >= bytes {
		t.Fatalf("loser should be cancelled early, moved %v", res.SlowMoved)
	}
	st := k.Stats()
	if st.Hedges != 1 || st.HedgeFastWins != 1 || st.WastedBytes != res.SlowMoved {
		t.Fatalf("hedge stats: %+v", st)
	}
}

func TestHedgedReadSlowTierCoversFastFault(t *testing.T) {
	eng := sim.NewEngine()
	c := hedgeController(eng, true)
	fast := device.New(eng, flatParams("ssd", 1000*1024*1024))
	fast.SetReadError(true)
	slow := device.New(eng, flatParams("hdd", 10*1024*1024))
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadHedge)
	var res HedgeResult
	eng.Spawn("reader", func(p *sim.Proc) {
		res = k.HedgedRead(p, fast, slow, cg, 8*1024*1024)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.FastWon {
		t.Fatalf("slow leg should cover the faulted fast tier: %+v", res)
	}
	if k.Stats().HedgeSlowWins != 1 {
		t.Fatalf("slow win not counted: %+v", k.Stats())
	}
}

func TestHedgeDecisionRule(t *testing.T) {
	eng := sim.NewEngine()
	quiet := hedgeController(eng, false)
	fast := device.New(eng, flatParams("ssd", 1000*1024*1024))
	slow := device.New(eng, flatParams("hdd", 10*1024*1024))
	cg := blkio.NewCgroup("a")
	eng.Spawn("reader", func(p *sim.Proc) {
		// Quiet forecast: no hedge regardless of size.
		if res := quiet.Key(KeyStagingReadHedge).HedgedRead(p, fast, slow, cg, 64*1024*1024); res.Hedged {
			t.Errorf("quiet window must not hedge: %+v", res)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}

	eng2 := sim.NewEngine()
	contended := hedgeController(eng2, true)
	fast2 := device.New(eng2, flatParams("ssd", 1000*1024*1024))
	slow2 := device.New(eng2, flatParams("hdd", 10*1024*1024))
	eng2.Spawn("reader", func(p *sim.Proc) {
		// Below MinBytes the race cannot pay for itself.
		if res := contended.Key(KeyStagingReadHedge).HedgedRead(p, fast2, slow2, blkio.NewCgroup("b"), 1024); res.Hedged {
			t.Errorf("tiny read must not hedge: %+v", res)
		}
	})
	if err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestHedgeSkippedWithoutForecast(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Options{Hedge: HedgeConfig{Enabled: true}})
	fast := device.New(eng, flatParams("ssd", 1000*1024*1024))
	slow := device.New(eng, flatParams("hdd", 10*1024*1024))
	cg := blkio.NewCgroup("a")
	eng.Spawn("reader", func(p *sim.Proc) {
		if res := c.Key(KeyStagingReadHedge).HedgedRead(p, fast, slow, cg, 64*1024*1024); res.Hedged {
			t.Errorf("no forecast and closed breaker: must not hedge: %+v", res)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestAmplification(t *testing.T) {
	if got := (Totals{}).Amplification(); got != 1 {
		t.Fatalf("no ops → 1, got %v", got)
	}
	if got := (Totals{Ops: 4, Attempts: 6}).Amplification(); got != 1.5 {
		t.Fatalf("6/4 = %v", got)
	}
}

func TestDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate key")
		}
	}()
	New(sim.NewEngine(), Options{Policies: []Policy{{Key: "x"}, {Key: "x"}}})
}

func TestUnknownKeyPanics(t *testing.T) {
	c := New(sim.NewEngine(), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown key")
		}
	}()
	c.Key("no.such.key")
}
