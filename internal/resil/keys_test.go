package resil

import (
	"reflect"
	"testing"

	"tango/internal/sim"
)

// TestRegisteredKeysAreStable pins the registered policy-key set and its
// order. Keys are part of the operator contract — runbooks and trace
// filters select on them — so renaming or reordering one is a breaking
// change that must be made deliberately, updating this golden list and
// docs/resil.md together.
func TestRegisteredKeysAreStable(t *testing.T) {
	golden := []string{
		"staging.read.base",
		"staging.read.capacity",
		"staging.read.optional",
		"staging.read.hedge",
		"staging.probe.capacity",
		"blkio.weight.apply",
		"coord.weight.apply",
		"prefetch.weight.floor",
		"prefetch.stage",
		"fleet.read.objstore",
		"tokens.weight.apply",
	}
	c := New(sim.NewEngine(), Options{})
	if got := c.Keys(); !reflect.DeepEqual(got, golden) {
		t.Fatalf("registered key set drifted:\n got  %q\n want %q", got, golden)
	}
	// The exported constants must spell the same strings the catalog
	// registers (call sites resolve handles by constant).
	consts := []string{
		KeyStagingReadBase, KeyStagingReadCapacity, KeyStagingReadOptional,
		KeyStagingReadHedge, KeyStagingProbe, KeyWeightApply,
		KeyCoordWeightApply, KeyPrefetchWeightFloor, KeyPrefetchStage,
		KeyFleetReadObjstore, KeyTokenWeightApply,
	}
	if !reflect.DeepEqual(consts, golden) {
		t.Fatalf("key constants drifted from the golden list:\n got  %q\n want %q", consts, golden)
	}
}

// TestCatalogPolicyShape pins the structural invariants the call sites
// rely on, without golden-testing every number.
func TestCatalogPolicyShape(t *testing.T) {
	c := New(sim.NewEngine(), Options{})
	for _, name := range c.Keys() {
		pol := c.Key(name).Policy()
		if pol.Classify == nil {
			t.Errorf("%s: nil classifier", name)
		}
		if pol.Factor < 1 {
			t.Errorf("%s: backoff factor %v < 1", name, pol.Factor)
		}
	}
	// Mandatory read keys: unbounded, no per-attempt timeout (cancelling
	// a stalled-but-progressing flow would discard its progress).
	for _, name := range []string{KeyStagingReadBase, KeyStagingReadCapacity, KeyFleetReadObjstore} {
		pol := c.Key(name).Policy()
		if pol.MaxAttempts != 0 || pol.TimeoutMinBW != 0 {
			t.Errorf("%s: mandatory key must be unbounded with no timeout: %+v", name, pol)
		}
		if pol.BreakerThreshold != 0 {
			t.Errorf("%s: mandatory key must not be breaker-denied", name)
		}
	}
	// Optional/background read keys: bounded and deadlined.
	for _, name := range []string{KeyStagingReadOptional, KeyStagingProbe, KeyPrefetchStage} {
		pol := c.Key(name).Policy()
		if pol.MaxAttempts == 0 || pol.TimeoutMinBW == 0 {
			t.Errorf("%s: optional key must bound attempts and deadline them: %+v", name, pol)
		}
	}
	// Weight keys: single attempt (the control tick is the retry loop),
	// breaker-gated, weight classifier.
	for _, name := range []string{KeyWeightApply, KeyCoordWeightApply, KeyPrefetchWeightFloor, KeyTokenWeightApply} {
		pol := c.Key(name).Policy()
		if pol.MaxAttempts != 1 || pol.BreakerThreshold == 0 {
			t.Errorf("%s: weight key must be single-attempt and breaker-gated: %+v", name, pol)
		}
	}
}
