package resil

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed — healthy; attempts flow through.
	BreakerClosed BreakerState = iota
	// BreakerOpen — tripped; attempts are denied until the cooldown
	// elapses on the sim clock.
	BreakerOpen
	// BreakerHalfOpen — cooldown elapsed; exactly one probe attempt is
	// admitted. Success closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "BreakerState(?)"
	}
}

// Breaker is a circuit breaker for one target (a device or cgroup name),
// shared by every policy key that addresses the target. Transitions are
// driven entirely by the virtual clock passed to allow, so breaker
// behavior is deterministic.
type Breaker struct {
	target    string
	threshold int     // consecutive failures before opening
	cooldown  float64 // seconds open before the half-open probe
	fails     int     // consecutive failures
	state     BreakerState
	until     float64 // when an open breaker half-opens
	probing   bool    // a half-open probe is in flight
	opens     int
}

// State returns the breaker position as of virtual time now (an open
// breaker whose cooldown has elapsed reports half-open).
func (b *Breaker) State(now float64) BreakerState {
	if b.state == BreakerOpen && now >= b.until {
		return BreakerHalfOpen
	}
	return b.state
}

// Target returns the device or cgroup name the breaker guards.
func (b *Breaker) Target() string { return b.target }

// Opens returns how many times the breaker has tripped.
func (b *Breaker) Opens() int { return b.opens }

// allow reports whether an attempt may proceed at virtual time now. An
// open breaker past its cooldown admits exactly one half-open probe.
//
//tango:hotpath
func (b *Breaker) allow(now float64) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < b.until {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a successful attempt. It reports whether the breaker
// closed from a tripped state (a recovery worth tracing).
//
//tango:hotpath
func (b *Breaker) onSuccess() bool {
	recovered := b.state != BreakerClosed || b.fails > 0
	b.fails = 0
	b.state = BreakerClosed
	b.probing = false
	return recovered
}

// onFailure records a failed attempt at virtual time now. It reports
// whether this failure tripped (or re-tripped) the breaker.
//
//tango:hotpath
func (b *Breaker) onFailure(now float64) bool {
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.threshold) {
		b.state = BreakerOpen
		b.probing = false
		b.until = now + b.cooldown
		b.opens++
		return true
	}
	return false
}
