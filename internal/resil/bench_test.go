package resil

import (
	"testing"

	"tango/internal/blkio"
	"tango/internal/device"
	"tango/internal/sim"
)

// BenchmarkAttemptNoTimeout measures the control-plane overhead of one
// successful policy-keyed read on a key without a per-attempt deadline
// (the mandatory-read fast path): breaker check, attempt, classification.
func BenchmarkAttemptNoTimeout(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	c := New(eng, Options{})
	d := device.New(eng, flatParams("hdd", 100*device.MB))
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadCapacity)
	n := b.N
	eng.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			k.Read(p, d, cg, 4*device.MB)
		}
	})
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAttemptDeadlined measures the deadlined attempt path: pooled
// cancel context, timer arm/stop, cancellable transfer.
func BenchmarkAttemptDeadlined(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	c := New(eng, Options{})
	d := device.New(eng, flatParams("ssd", 500*device.MB))
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadOptional)
	n := b.N
	eng.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			k.Read(p, d, cg, 4*device.MB)
		}
	})
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBreakerAllow measures the breaker admission fast path.
func BenchmarkBreakerAllow(b *testing.B) {
	b.ReportAllocs()
	br := &Breaker{target: "hdd", threshold: 4, cooldown: 20}
	for i := 0; i < b.N; i++ {
		br.allow(float64(i))
		br.onSuccess()
	}
}

// BenchmarkBudgetTake measures the token-bucket fast path.
func BenchmarkBudgetTake(b *testing.B) {
	b.ReportAllocs()
	bk := bucket{cap: 64, refill: 1e9, tokens: 64}
	for i := 0; i < b.N; i++ {
		bk.take(float64(i))
	}
}

// TestAttemptFastPathZeroAlloc pins the //tango:hotpath contract with the
// runtime allocator, complementing the static lint: successful deadlined
// attempts — pooled token context, timer, cancellable transfer, breaker
// and budget bookkeeping — allocate nothing in steady state. The sim
// engine's own freelists (timers, flows) make the whole stack warm after
// the first iteration.
func TestAttemptFastPathZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, Options{})
	d := device.New(eng, flatParams("ssd", 500*device.MB))
	cg := blkio.NewCgroup("a")
	k := c.Key(KeyStagingReadOptional)
	// Warmup must outlast the deadline/elapsed ratio: a stopped deadline
	// timer stays neutered in the event heap until its fire time, so the
	// engine's event freelist only saturates once deadline-seconds of
	// back-to-back reads have drained (~1400 events here).
	const warm, measured = 4096, 256
	var allocs float64
	eng.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < warm; i++ {
			if res := k.Read(p, d, cg, 4*device.MB); !res.OK {
				t.Errorf("warmup read failed: %+v", res)
			}
		}
		allocs = testing.AllocsPerRun(measured, func() {
			k.Read(p, d, cg, 4*device.MB)
		})
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("deadlined attempt fast path allocates %.1f objects/op, want 0", allocs)
	}
}
