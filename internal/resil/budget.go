package resil

// bucket is a token bucket in virtual time, refilled lazily on access so
// it costs nothing while idle. A zero-cap bucket is unlimited (always
// grants); retry budgets use that for keys that draw only on the
// node-wide cap.
type bucket struct {
	cap    float64 // maximum tokens; 0 = unlimited
	refill float64 // tokens per virtual second
	tokens float64
	last   float64 // virtual time of the last refill
}

// advance refills the bucket for the elapsed virtual time.
//
//tango:hotpath
func (b *bucket) advance(now float64) {
	if b.cap == 0 {
		return
	}
	if dt := now - b.last; dt > 0 {
		b.tokens += dt * b.refill
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
	}
	b.last = now
}

// has reports whether a token is available at virtual time now without
// taking it.
//
//tango:hotpath
func (b *bucket) has(now float64) bool {
	if b.cap == 0 {
		return true
	}
	b.advance(now)
	return b.tokens >= 1
}

// take consumes one token if available.
//
//tango:hotpath
func (b *bucket) take(now float64) bool {
	if b.cap == 0 {
		return true
	}
	b.advance(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// wait returns the virtual seconds until one token is available (0 if
// one is available now). Unbounded (mandatory) retries use this to pace
// themselves to the refill rate when the budget runs dry.
func (b *bucket) wait(now float64) float64 {
	if b.cap == 0 {
		return 0
	}
	b.advance(now)
	if b.tokens >= 1 {
		return 0
	}
	if b.refill <= 0 {
		return 0 // no refill configured: pacing cannot help, do not stall forever
	}
	return (1 - b.tokens) / b.refill
}

// takeToken consumes one retry/hedge token from the key's bucket and the
// node-wide bucket; both must have one (checked before either is drawn so
// a denial leaves both intact).
//
//tango:hotpath
func (k *Key) takeToken(now float64) bool {
	if !k.bucket.has(now) || !k.c.node.has(now) {
		return false
	}
	k.bucket.take(now)
	k.c.node.take(now)
	return true
}

// tokenWait returns how long until both buckets can grant a token.
func (k *Key) tokenWait(now float64) float64 {
	w := k.bucket.wait(now)
	if nw := k.c.node.wait(now); nw > w {
		w = nw
	}
	return w
}
